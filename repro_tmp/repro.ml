module F = Zkvc_field.Fr
module Opt = Zkvc_opt.Opt.Make (F)
module L = Opt.L
module Cs = Opt.Cs

let lc terms = L.of_terms (List.map (fun (v, k) -> (v, F.of_int k)) terms)

let () =
  (* wires: 0=one, aux v=1, w=2, x=3.  Rows (linear, encoded as 1*B = 0):
     v - w = 0 ; v - 2w = 0 ; v + x - 5 = 0 *)
  let row b = { Cs.a = L.constant F.one; b; c = L.zero; label = "" } in
  let cs =
    { Cs.num_inputs = 0;
      num_aux = 3;
      constraints =
        [| row (lc [ (1, 1); (2, -1) ]);
           row (lc [ (1, 1); (2, -2) ]);
           row (lc [ (0, -5); (1, 1); (3, 1) ]) |] }
  in
  match Opt.optimize cs with
  | r ->
    Format.printf "ok: %a@." Opt.pp_report r.Opt.report
  | exception e -> Format.printf "EXCEPTION: %s@." (Printexc.to_string e)
