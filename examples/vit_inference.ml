(* Verifiable ViT inference, end to end on a scaled-down CIFAR-10 model:

   1. build the paper's ViT architecture (shrunk) with the zkVC hybrid
      token mixers,
   2. run the float reference and the quantized (circuit-semantics)
      forward pass and compare predictions,
   3. compile the full model to verifiable ops and report exact constraint
      counts per layer and per strategy,
   4. prove one real layer (the patch-embedding linear layer) with
      CRPC+PSQ on Groth16 and verify it.

   Run with: dune exec examples/vit_inference.exe *)

module Fr = Zkvc_field.Fr
module T = Zkvc_nn.Tensor
module Q = Zkvc_nn.Quantize
module Tf = Zkvc_nn.Transformer
module Models = Zkvc_nn.Models
module Compiler = Zkvc_zkml.Compiler
module Ops = Zkvc_zkml.Ops
module Pm = Zkvc_zkml.Prove_model
module Mspec = Zkvc.Matmul_spec
module Cs = Zkvc_r1cs.Constraint_system.Make (Fr)
module Groth16 = Zkvc_groth16.Groth16

let cfg = Zkvc.Nonlinear.default_config

(* all Span/Api timings read wall time; the Sys.time default is process
   CPU time, which the span docs warn against (it sums across domains) *)
let () = Zkvc_obs.Span.set_clock Unix.gettimeofday

let () =
  let rng = Random.State.make [| 7 |] in
  let arch = Models.shrink Models.vit_cifar10 ~factor:4 in
  Printf.printf "model: %s  tokens=%d heads=%d\n%!" arch.Models.arch_name arch.Models.tokens
    arch.Models.heads;

  (* 1-2: float vs quantized inference *)
  let model = Models.build rng arch Models.Zkvc_hybrid in
  let qmodel = Tf.quantize cfg model in
  let patches = T.random_gaussian rng arch.Models.tokens arch.Models.patch_dim ~std:1. in
  let float_pred = Tf.predict model patches in
  let quant_pred = Tf.qpredict qmodel (Q.quantize cfg patches) in
  Printf.printf "float prediction: class %d | quantized (circuit semantics): class %d\n%!"
    float_pred quant_pred;

  (* 3: compile and count *)
  let layers = Compiler.compile arch Models.Zkvc_hybrid in
  Printf.printf "\nper-layer constraint counts (CRPC+PSQ matmuls):\n";
  List.iter
    (fun { Compiler.label; ops } ->
      let c =
        List.fold_left
          (fun acc op -> acc + (Compiler.Counter.count cfg op).Ops.constraints)
          0 ops
      in
      Printf.printf "  %-22s %10d\n" label c)
    layers;
  let total_crpc = Compiler.total_counts cfg layers in
  let total_vanilla =
    Compiler.total_counts ~strategy:Zkvc.Matmul_circuit.Vanilla cfg layers
  in
  Printf.printf "total: %d constraints with CRPC+PSQ vs %d with vanilla matmuls (%.1fx)\n%!"
    total_crpc.Ops.constraints total_vanilla.Ops.constraints
    (float_of_int total_vanilla.Ops.constraints /. float_of_int total_crpc.Ops.constraints);

  (* 4: prove the patch-embedding layer for real *)
  let d = Mspec.dims ~a:arch.Models.tokens ~n:8 ~b:8 in
  Printf.printf "\nproving patch-embedding matmul %s + rescale with Groth16...\n%!"
    (Format.asprintf "%a" Mspec.pp_dims d);
  let x =
    Array.init d.Mspec.a (fun _ ->
        Array.init d.Mspec.n (fun _ -> Random.State.int rng 512 - 256))
  in
  let w =
    Array.init d.Mspec.n (fun _ ->
        Array.init d.Mspec.b (fun _ -> Random.State.int rng 512 - 256))
  in
  let cs, assignment, _outputs = Pm.linear_layer_circuit cfg ~x ~w d in
  Cs.check_satisfied cs assignment;
  let qap = Groth16.Qap.create cs in
  let pk, vk = Groth16.setup rng qap in
  let t0 = Unix.gettimeofday () in
  let proof = Groth16.prove rng pk qap assignment in
  let t_prove = Unix.gettimeofday () -. t0 in
  let public_inputs = Array.to_list (Array.sub assignment 1 (Cs.num_inputs cs)) in
  let ok = Groth16.verify vk ~public_inputs proof in
  Printf.printf "  %d constraints, proved in %.3fs, proof %dB, verified: %b\n%!"
    (Cs.num_constraints cs) t_prove (Groth16.proof_size_bytes proof) ok;
  assert ok
