(* Verifiable BERT-style NLP inference (Table IV setting): instantiate the
   paper's 4-layer BERT with each token-mixer variant, run quantized
   inference, and compare exact verifiable-op constraint budgets, then
   prove one attention-score softmax row on the transparent backend.

   Run with: dune exec examples/bert_inference.exe *)

module Fr = Zkvc_field.Fr
module T = Zkvc_nn.Tensor
module Q = Zkvc_nn.Quantize
module Tf = Zkvc_nn.Transformer
module Models = Zkvc_nn.Models
module Compiler = Zkvc_zkml.Compiler
module Ops = Zkvc_zkml.Ops
module Pm = Zkvc_zkml.Prove_model
module Cost = Zkvc_zkml.Cost_model

let cfg = Zkvc.Nonlinear.default_config

(* all Span/Api timings read wall time; the Sys.time default is process
   CPU time, which the span docs warn against (it sums across domains) *)
let () = Zkvc_obs.Span.set_clock Unix.gettimeofday

let () =
  let rng = Random.State.make [| 11 |] in
  let arch = Models.shrink Models.bert_glue ~factor:4 in
  Printf.printf "model: %s  tokens=%d dim(s)=%s\n%!" arch.Models.arch_name arch.Models.tokens
    (String.concat ","
       (List.map (fun (_, d, _) -> string_of_int d) arch.Models.stage_spec));

  (* classify one synthetic "sentence" under every variant *)
  let sentence = T.random_gaussian rng arch.Models.tokens arch.Models.patch_dim ~std:1. in
  List.iter
    (fun variant ->
      let model = Models.build rng arch variant in
      let qmodel = Tf.quantize cfg model in
      let pred = Tf.qpredict qmodel (Q.quantize cfg sentence) in
      let counts = Compiler.total_counts cfg (Compiler.compile arch variant) in
      Printf.printf "  %-12s -> class %d  (%d constraints end-to-end)\n%!"
        (Models.variant_name variant) pred counts.Ops.constraints)
    [ Models.Soft_approx; Models.Soft_free_s; Models.Soft_free_l; Models.Zkvc_hybrid ];

  (* full-size BERT budgets, as in Table IV *)
  Printf.printf "\nfull-size BERT-4L verifiable-op budgets (exact counts):\n";
  List.iter
    (fun variant ->
      let counts = Compiler.total_counts cfg (Compiler.compile Models.bert_glue variant) in
      Printf.printf "  %-12s %12d constraints\n%!" (Models.variant_name variant)
        counts.Ops.constraints)
    [ Models.Soft_approx; Models.Soft_free_s; Models.Soft_free_l; Models.Zkvc_hybrid ];

  (* prove a softmax row (the SoftApprox. primitive) transparently *)
  Printf.printf "\nproving one attention softmax row (len 8) with Spartan...\n%!";
  let nc, t_prove, t_verify, bytes =
    Pm.prove_op Cost.Backend_spartan cfg (Ops.Op_softmax { rows = 1; len = 8 })
  in
  Printf.printf "  %d constraints, prove %.3fs, verify %.4fs, proof %dB\n%!" nc t_prove
    t_verify bytes
