(* Quickstart: prove that Y = X·W with zkVC's CRPC+PSQ encoding on the
   Groth16 backend, then verify. Run with:

     dune exec examples/quickstart.exe *)

module Fr = Zkvc_field.Fr
module Api = Zkvc.Api
module Mspec = Zkvc.Matmul_spec
module Spec = Mspec.Make (Fr)

(* all Span/Api timings read wall time; the Sys.time default is process
   CPU time, which the span docs warn against (it sums across domains) *)
let () = Zkvc_obs.Span.set_clock Unix.gettimeofday

let () =
  let rng = Random.State.make [| 42 |] in

  (* a small matrix product: X is the prover's private input (e.g. user
     data), W the private model weights, Y the public claimed output *)
  let d = Mspec.dims ~a:4 ~n:8 ~b:4 in
  let x = Spec.random_matrix rng ~rows:4 ~cols:8 ~bound:100 in
  let w = Spec.random_matrix rng ~rows:8 ~cols:4 ~bound:100 in

  Printf.printf "proving Y = X*W for %s with CRPC+PSQ on Groth16...\n%!"
    (Format.asprintf "%a" Mspec.pp_dims d);

  let _proof, m =
    Api.run ~rng Api.Backend_groth16 Zkvc.Matmul_circuit.Crpc_psq ~x ~w d
  in

  Printf.printf "  constraints : %d (vanilla would need %d)\n" m.Api.constraints
    (Zkvc.Matmul_circuit.expected_constraints Zkvc.Matmul_circuit.Vanilla d);
  Printf.printf "  proof size  : %d bytes\n" m.Api.proof_bytes;
  Printf.printf "  setup       : %.3f s (one-off)\n" m.Api.timings.Api.setup_s;
  Printf.printf "  prove       : %.3f s\n" m.Api.timings.Api.prove_s;
  Printf.printf "  verify      : %.4f s\n" m.Api.timings.Api.verify_s;
  Printf.printf "proof verified.\n";

  (* the same statement on the transparent (no-trusted-setup) backend *)
  Printf.printf "\nsame statement on Spartan (transparent)...\n%!";
  let _proof, m =
    Api.run ~rng Api.Backend_spartan Zkvc.Matmul_circuit.Crpc_psq ~x ~w d
  in
  Printf.printf "  prove %.3f s, verify %.4f s, proof %d bytes\n"
    m.Api.timings.Api.prove_s m.Api.timings.Api.verify_s m.Api.proof_bytes;
  Printf.printf "proof verified.\n"
