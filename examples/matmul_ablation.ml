(* Walk through the paper's core insight at human scale: print the actual
   R1CS produced by each of the four matmul encodings on a 2×2·2×2 product
   and show how CRPC collapses the constraint count and PSQ removes the
   intermediate wires (Figures 4 and 5 of the paper, in code).

   Run with: dune exec examples/matmul_ablation.exe *)

module Fr = Zkvc_field.Fr
module Mc = Zkvc.Matmul_circuit
module Mcf = Mc.Make (Fr)
module Mspec = Zkvc.Matmul_spec
module Bld = Zkvc_r1cs.Builder.Make (Fr)
module Cs = Zkvc_r1cs.Constraint_system.Make (Fr)
module Lin = Zkvc_r1cs.Lc.Make (Fr)

(* all Span/Api timings read wall time; the Sys.time default is process
   CPU time, which the span docs warn against (it sums across domains) *)
let () = Zkvc_obs.Span.set_clock Unix.gettimeofday

let () =
  let d = Mspec.dims ~a:2 ~n:2 ~b:2 in
  let x = [| [| Fr.of_int 1; Fr.of_int 2 |]; [| Fr.of_int 3; Fr.of_int 4 |] |] in
  let w = [| [| Fr.of_int 5; Fr.of_int 6 |]; [| Fr.of_int 7; Fr.of_int 8 |] |] in
  Printf.printf "X = [[1,2],[3,4]], W = [[5,6],[7,8]], Y = X*W = [[19,22],[43,50]]\n";
  List.iter
    (fun strategy ->
      let challenge =
        if Mc.uses_challenge strategy then Some (Fr.of_int 1000003) else None
      in
      let b = Bld.create () in
      let _wires, y = Mcf.build b strategy ?challenge ~x ~w d in
      let cs, assignment = Bld.finalize b in
      Cs.check_satisfied cs assignment;
      let s = Cs.stats cs in
      Printf.printf "\n--- %s ---\n" (Mc.strategy_name strategy);
      Printf.printf "constraints=%d variables=%d left-wires(nnz A)=%d\n" s.Cs.constraints
        s.Cs.variables s.Cs.nonzero_a;
      Array.iteri
        (fun i { Cs.a; b = bb; c; label } ->
          Format.printf "  #%d [%s]: (%a) * (%a) = %a\n" i label Lin.pp a Lin.pp bb
            Lin.pp c)
        cs.Cs.constraints;
      ignore y)
    Mc.all_strategies;
  Printf.printf
    "\nCRPC: 2 constraints encode all 8 products (paper Fig. 4); PSQ drops the\n";
  Printf.printf "intermediate product wires by accumulating on the C side (Fig. 5).\n"
