(* The paper's Section III-C pipeline in isolation: prove a complete
   single-head attention-with-softmax computation — scores = Q·Kᵀ,
   probabilities = SoftMax(scores), output = probs·V — wiring zkVC's
   CRPC matmul circuits and the softmax gadget together in one R1CS, then
   prove it on both backends.

   Run with: dune exec examples/softmax_attention.exe *)

module Fr = Zkvc_field.Fr
module Nl = Zkvc.Nonlinear
module Lc = Zkvc_zkml.Layer_circuit.Make (Fr)
module Lin = Zkvc_r1cs.Lc.Make (Fr)
module Bld = Zkvc_r1cs.Builder.Make (Fr)
module Cs = Zkvc_r1cs.Constraint_system.Make (Fr)
module Groth16 = Zkvc_groth16.Groth16
module Spartan = Zkvc_spartan.Spartan
module Mspec = Zkvc.Matmul_spec
module Q = Zkvc_nn.Quantize

let cfg = Nl.default_config
let tokens = 4
let dh = 4

(* all Span/Api timings read wall time; the Sys.time default is process
   CPU time, which the span docs warn against (it sums across domains) *)
let () = Zkvc_obs.Span.set_clock Unix.gettimeofday

let () =
  let rng = Random.State.make [| 2029 |] in
  Printf.printf "attention head: %d tokens, head dim %d\n%!" tokens dh;
  let rand_mat rows cols =
    Array.init rows (fun _ -> Array.init cols (fun _ -> Random.State.int rng 128 - 64))
  in
  let qm = rand_mat tokens dh and km = rand_mat tokens dh and vm = rand_mat tokens dh in

  (* quantized reference semantics *)
  let to_q m = Q.init (Array.length m) (Array.length m.(0)) (fun i j -> m.(i).(j)) in
  let scores_ref = Q.matmul_rescale cfg (to_q qm) (Q.transpose (to_q km)) in
  let probs_ref = Q.softmax_rows cfg scores_ref in
  let out_ref = Q.matmul_rescale cfg probs_ref (to_q vm) in

  (* one circuit for the whole head *)
  let b = Bld.create () in
  let alloc m = Array.map (Array.map (fun v -> Bld.alloc b (Fr.of_int v))) m in
  let qw = alloc qm and kw = alloc km and vw = alloc vm in
  ignore qw;
  (* scores: vanilla matmul wiring on wires we already own, then rescale
     (the CRPC variants are exercised by quickstart/vit examples) *)
  let score_wire i j =
    let acc = ref Lin.zero in
    for k = 0 to dh - 1 do
      let p = Bld.alloc b (Fr.mul (Bld.value b qw.(i).(k)) (Fr.mul (Bld.value b kw.(j).(k)) Fr.one)) in
      Bld.enforce b ~label:"qk" (Lin.of_var qw.(i).(k)) (Lin.of_var kw.(j).(k)) (Lin.of_var p);
      acc := Lin.add !acc (Lin.of_var p)
    done;
    Lc.rescale b cfg !acc
  in
  let probs =
    Array.init tokens (fun i ->
        let row = List.init tokens (fun j ->
            let s = score_wire i j in
            let w = Bld.alloc b (Bld.eval b s) in
            Bld.enforce b ~label:"score" (Lin.sub (Lin.of_var w) s) (Lin.constant Fr.one) Lin.zero;
            w)
        in
        Array.of_list (Lc.softmax_row b cfg row))
  in
  (* out = probs · V, rescaled *)
  let out =
    Array.init tokens (fun i ->
        Array.init dh (fun j ->
            let acc = ref Lin.zero in
            for k = 0 to tokens - 1 do
              let p =
                Bld.alloc b (Fr.mul (Bld.value b probs.(i).(k)) (Bld.value b vw.(k).(j)))
              in
              Bld.enforce b ~label:"pv" (Lin.of_var probs.(i).(k)) (Lin.of_var vw.(k).(j))
                (Lin.of_var p);
              acc := Lin.add !acc (Lin.of_var p)
            done;
            Lc.rescale b cfg !acc))
  in
  (* check circuit values match the quantized reference *)
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j o ->
          assert (Fr.equal (Bld.eval b o) (Fr.of_int (Q.get out_ref i j))))
        row)
    out;
  let cs, assignment = Bld.finalize b in
  Cs.check_satisfied cs assignment;
  Printf.printf "circuit: %d constraints, matches quantized reference exactly\n%!"
    (Cs.num_constraints cs);

  let public_inputs = Array.to_list (Array.sub assignment 1 (Cs.num_inputs cs)) in

  (* Groth16 *)
  let qap = Groth16.Qap.create cs in
  let pk, vk = Groth16.setup rng qap in
  let t0 = Unix.gettimeofday () in
  let proof = Groth16.prove rng pk qap assignment in
  Printf.printf "groth16: prove %.3fs, proof %dB, verified %b\n%!" (Unix.gettimeofday () -. t0)
    (Groth16.proof_size_bytes proof)
    (Groth16.verify vk ~public_inputs proof);

  (* Spartan *)
  let inst = Spartan.preprocess cs in
  let key = Spartan.setup inst in
  let t0 = Unix.gettimeofday () in
  let sproof = Spartan.prove rng key inst assignment in
  Printf.printf "spartan: prove %.3fs, proof %dB, verified %b\n%!" (Unix.gettimeofday () -. t0)
    (Spartan.proof_size_bytes sproof)
    (Spartan.verify key inst ~public_inputs sproof)
