(* Benchmark harness regenerating every table and figure of the zkVC
   paper's evaluation (see DESIGN.md, experiment index):

     tab1  scheme property matrix (Table I)
     fig3  matmul proving-time comparison vs prior work (Figure 3)
     fig6  prove/verify/proof-size/online across sizes (Figure 6)
     tab2  CRPC × PSQ ablation on groth16 and Spartan (Table II)
     tab3  ViT token-mixer comparison (Table III)
     tab4  BERT/GLUE token-mixer comparison (Table IV)
     abl   design-choice ablations called out in DESIGN.md
     micro substrate micro-benchmarks (Bechamel)

   Usage: main.exe [--full] [--only SECTIONS] [--scale N] [--jobs N]
                   [--repeat N] [--json FILE]
     --full       run matmul benches at the paper's dimensions (slow)
     --scale N    divide matmul dimensions by N (default 4; 1 = paper size)
     --jobs N     prover worker domains (0 = all cores; default
                  ZKVC_JOBS or 1)
     --only ...   comma-separated subset of {tab1,fig3,fig6,tab2,tab3,tab4,agg,abl,micro}
     --agg-max N  largest batch size the agg section measures (default 16)
     --repeat N   repeat every matmul measurement N times after one
                  untimed warmup run; tables and the report carry the
                  median (and the report the per-rep times + MAD)
     --optimize   run the R1CS optimiser pipeline (lib/opt) on every matmul
                  circuit before setup/prove; -O for short
     --json FILE  also write every matmul measurement as a schema-versioned
                  Zkvc_obs.Report (the perf trajectory diffed by
                  tools/perf_diff); "-" writes the report to stdout and
                  moves the human tables to stderr so it pipes cleanly

   Human tables go to stdout; progress and log chatter go to stderr
   (swapped as described above under --json -).

   All times are monotonic wall-clock (bechamel's clock_gettime stub),
   never [Sys.time]: that is process CPU time, which sums across worker
   domains and would report a parallel prover as no faster than a
   sequential one. Absolute times differ from the paper (OCaml vs a
   16-core Threadripper running libsnark/Rust); all claims are about the
   ratios between schemes measured under identical conditions. Rows
   labelled "(emulated)" rescale our measured baseline by the paper's
   reported ratio because the original system cannot run here
   (DESIGN.md substitution 4). *)

module Fr = Zkvc_field.Fr
module Api = Zkvc.Api
module Mc = Zkvc.Matmul_circuit
module Mspec = Zkvc.Matmul_spec
module Spec = Mspec.Make (Fr)
module Models = Zkvc_nn.Models
module Compiler = Zkvc_zkml.Compiler
module Cost = Zkvc_zkml.Cost_model
module Pm = Zkvc_zkml.Prove_model
module Ops = Zkvc_zkml.Ops
module Nl = Zkvc.Nonlinear
module Obs = Zkvc_obs
module Json = Zkvc_obs.Json

let cfg = Nl.default_config
let rng = Random.State.make [| 0xbe; 0xc4 |]

(* monotonic wall clock in seconds *)
let now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

(* ------------------------------------------------------------------ *)
(* options                                                              *)

let full = ref false
let scale = ref 4
let repeat = ref 1
let only : string list ref = ref []
let json_file : string option ref = ref None

(* --profile: attach the constraint-provenance region tree to every
   report measurement (zkvc-bench/3 "regions" block) *)
let profile = ref false

(* --optimize: run the R1CS optimiser pipeline (Zkvc_opt) on every
   matmul circuit before setup/prove *)
let optimize = ref false

(* human tables; redirected to stderr when --json - owns stdout *)
let out = ref stdout
let tbl fmt = Printf.fprintf !out fmt

(* progress / log chatter, never on the table stream *)
let progress fmt = Printf.eprintf fmt

let valid_sections = [ "tab1"; "fig3"; "fig6"; "tab2"; "tab3"; "tab4"; "agg"; "abl"; "micro" ]

(* --agg-max: largest batch size the agg section measures (the N grid is
   {1,4,16,64} clipped to this; 64 exists for the one-off EXPERIMENTS
   table, CI stays at 16) *)
let agg_max = ref 16

let usage_error msg =
  Printf.eprintf "bench: %s\n" msg;
  Printf.eprintf
    "usage: main.exe [--full] [--scale N] [--jobs N] [--only SECTIONS] [--repeat N] [--json FILE] [--profile] [--optimize]\n";
  exit 2

let () =
  let rec parse = function
    | [] -> ()
    | "--full" :: rest ->
      full := true;
      scale := 1;
      parse rest
    | "--scale" :: n :: rest ->
      (match int_of_string_opt n with
       | Some s when s >= 1 -> scale := s
       | Some s -> usage_error (Printf.sprintf "--scale must be >= 1, got %d" s)
       | None -> usage_error (Printf.sprintf "--scale expects an integer, got %S" n));
      parse rest
    | [ "--scale" ] -> usage_error "--scale expects an argument"
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
       | Some j when j >= 0 -> Zkvc_parallel.set_jobs j
       | Some j -> usage_error (Printf.sprintf "--jobs must be >= 0, got %d" j)
       | None -> usage_error (Printf.sprintf "--jobs expects an integer, got %S" n));
      parse rest
    | [ "--jobs" ] -> usage_error "--jobs expects an argument"
    | "--only" :: s :: rest ->
      let sections = String.split_on_char ',' s in
      List.iter
        (fun sec ->
          if not (List.mem sec valid_sections) then
            usage_error
              (Printf.sprintf "unknown --only section %S (valid: %s)" sec
                 (String.concat ", " valid_sections)))
        sections;
      only := sections;
      parse rest
    | [ "--only" ] -> usage_error "--only expects an argument"
    | "--repeat" :: n :: rest ->
      (match int_of_string_opt n with
       | Some r when r >= 1 -> repeat := r
       | Some r -> usage_error (Printf.sprintf "--repeat must be >= 1, got %d" r)
       | None -> usage_error (Printf.sprintf "--repeat expects an integer, got %S" n));
      parse rest
    | [ "--repeat" ] -> usage_error "--repeat expects an argument"
    | "--agg-max" :: n :: rest ->
      (match int_of_string_opt n with
       | Some r when r >= 1 -> agg_max := r
       | Some r -> usage_error (Printf.sprintf "--agg-max must be >= 1, got %d" r)
       | None -> usage_error (Printf.sprintf "--agg-max expects an integer, got %S" n));
      parse rest
    | [ "--agg-max" ] -> usage_error "--agg-max expects an argument"
    | "--json" :: f :: rest ->
      json_file := Some f;
      parse rest
    | [ "--json" ] -> usage_error "--json expects an argument"
    | "--profile" :: rest ->
      profile := true;
      parse rest
    | "--optimize" :: rest | "-O" :: rest ->
      optimize := true;
      parse rest
    | arg :: _ -> usage_error ("unknown argument: " ^ arg)
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* with the report on stdout, the human tables move to stderr so the
     machine output stays pipeable *)
  if !json_file = Some "-" then out := stderr;
  (* every Api.run / Span timing in this process reads wall time, not
     CPU time; install before any worker domain is spawned *)
  Obs.Span.set_clock now

let enabled section = !only = [] || List.mem section !only

(* ------------------------------------------------------------------ *)
(* machine-readable report (Zkvc_obs.Report, schema zkvc-bench/2)       *)

(* Commit of the measured tree, read straight from .git so the bench
   needs no subprocess: HEAD is either a detached sha or a symref into
   refs/ (possibly packed). Best effort — "unknown" on any surprise. *)
let git_rev () =
  let read_line path =
    try
      let ic = open_in path in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          Some (String.trim (input_line ic)))
    with Sys_error _ | End_of_file -> None
  in
  match read_line ".git/HEAD" with
  | None -> "unknown"
  | Some head ->
    if String.length head >= 5 && String.sub head 0 5 = "ref: " then begin
      let r = String.sub head 5 (String.length head - 5) in
      match read_line (Filename.concat ".git" r) with
      | Some sha -> sha
      | None -> (
        (* loose ref absent: look for "SHA refs/..." in packed-refs *)
        try
          let ic = open_in ".git/packed-refs" in
          Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
              let rec scan () =
                let line = input_line ic in
                match String.index_opt line ' ' with
                | Some i when String.sub line (i + 1) (String.length line - i - 1) = r ->
                  String.sub line 0 i
                | _ -> scan ()
              in
              try scan () with End_of_file -> "unknown")
        with Sys_error _ -> "unknown")
    end
    else head

let iso8601_utc_now () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

(* measurements of the report, newest first *)
let report_measurements : Obs.Report.measurement list ref = ref []

(* One report measurement from the timed reps of one (section, scheme,
   strategy, backend, dims) cell; the deterministic ledger fields are
   identical across reps, the GC fields come from the last rep. *)
let record_measurement ~section ~scheme (ms : Api.measurement list) =
  if !json_file <> None then begin
    let m = List.nth ms (List.length ms - 1) in
    let reps =
      List.map
        (fun (r : Api.measurement) ->
          { Obs.Report.setup_s = r.Api.timings.Api.setup_s;
            prove_s = r.Api.timings.Api.prove_s;
            verify_s = r.Api.timings.Api.verify_s })
        ms
    in
    let ledger =
      { Obs.Report.constraints = m.Api.constraints;
        variables = m.Api.variables;
        nonzero_a = m.Api.nonzero_a;
        nonzero_b = m.Api.nonzero_b;
        nonzero_c = m.Api.nonzero_c;
        witness = m.Api.witness;
        top_heap_words = m.Api.top_heap_words;
        major_collections = m.Api.major_collections }
    in
    (* drop synthesis/prove timing from the attached tree: the report's
       region block is the structural ledger (gated exactly by the perf
       differ), while wall time stays in the reps *)
    let regions = if !profile then Some (Obs.Attrib.strip_timing m.Api.regions) else None in
    report_measurements :=
      Obs.Report.summarize ?regions ~section ~scheme
        ~strategy:(Mc.strategy_name m.Api.strategy)
        ~backend:(Api.backend_name m.Api.backend)
        ~dims:(m.Api.dims.Mspec.a, m.Api.dims.Mspec.n, m.Api.dims.Mspec.b)
        ~reps ~proof_bytes:m.Api.proof_bytes ~ledger ()
      :: !report_measurements
  end

let write_json_report () =
  match !json_file with
  | None -> ()
  | Some file ->
    let report =
      { Obs.Report.env =
          { Obs.Report.git_rev = git_rev ();
            ocaml_version = Sys.ocaml_version;
            nproc = Domain.recommended_domain_count ();
            jobs = Zkvc_parallel.jobs ();
            scale = !scale;
            full = !full;
            clock = "monotonic";
            date = iso8601_utc_now () };
        sections = (if !only = [] then valid_sections else !only);
        measurements = List.rev !report_measurements }
    in
    let text = Json.to_string_pretty (Obs.Report.to_json report) in
    if file = "-" then print_string text
    else (
      try Obs.Export.write_file file text
      with Sys_error msg ->
        Printf.eprintf "bench: cannot write json report: %s\n" msg;
        exit 1);
    progress "bench: json report: %d measurement(s), %d rep(s) each, written to %s\n"
      (List.length !report_measurements)
      !repeat
      (if file = "-" then "stdout" else file)

let header title =
  tbl "\n======================================================================\n";
  tbl "%s\n" title;
  tbl "======================================================================\n%!"

let scaled_dims d2 =
  let d = Mspec.vit_embedding ~dim2:d2 in
  let s = !scale in
  Mspec.dims
    ~a:(Stdlib.max 2 (d.Mspec.a / s))
    ~n:(Stdlib.max 2 (d.Mspec.n / s))
    ~b:(Stdlib.max 2 (d.Mspec.b / s))

let random_instance d =
  let x = Spec.random_matrix rng ~rows:d.Mspec.a ~cols:d.Mspec.n ~bound:256 in
  let w = Spec.random_matrix rng ~rows:d.Mspec.n ~cols:d.Mspec.b ~bound:256 in
  (x, w)

(* ------------------------------------------------------------------ *)
(* Table I                                                              *)

let run_tab1 () =
  header "Table I — scheme properties";
  tbl "%-14s %6s %8s %12s %14s %10s\n" "scheme" "zk" "non-int" "const-proof"
    "no-trust-setup" "source";
  List.iter
    (fun s ->
      tbl "%-14s %6s %8s %12s %14s %10s\n" s.Cost.scheme_name "yes"
        (if s.Cost.interactive then "no" else "yes")
        (if s.Cost.constant_proof then "yes" else "no")
        (if s.Cost.trusted_setup then "no" else "yes")
        (if s.Cost.emulated then "(emulated)" else "measured"))
    Cost.schemes;
  tbl
    "zkVC-G/zkVC-S rows correspond to this repository's Groth16/Spartan backends.\n%!"

(* ------------------------------------------------------------------ *)
(* Figure 3 + Table II share matmul measurements                        *)

(* The Api.measurement shown in tables when --repeat > 1: per-phase
   medians across the reps (robust to a stray GC pause), ledger fields
   from the last rep (identical across reps anyway). *)
let median_measurement (ms : Api.measurement list) =
  match ms with
  | [ m ] -> m
  | _ ->
    let med f = Obs.Stats.median (Array.of_list (List.map f ms)) in
    let m = List.nth ms (List.length ms - 1) in
    { m with
      Api.timings =
        { Api.setup_s = med (fun r -> r.Api.timings.Api.setup_s);
          prove_s = med (fun r -> r.Api.timings.Api.prove_s);
          verify_s = med (fun r -> r.Api.timings.Api.verify_s) } }

let measure ?(section = "") ?(scheme = "") backend strategy d inst =
  let x, w = inst in
  let opt = if !optimize then Some Api.Opt.default else None in
  let run () = snd (Api.run ~rng ?optimize:opt backend strategy ~x ~w d) in
  (* one untimed warmup so the first rep doesn't pay cold-cache costs *)
  if !repeat > 1 then ignore (run ());
  let ms = List.init !repeat (fun _ -> run ()) in
  if section <> "" then record_measurement ~section ~scheme ms;
  median_measurement ms

let run_fig3 () =
  let d = scaled_dims 128 in
  header
    (Format.asprintf
       "Figure 3 — matmul proving time, dims %a (paper point: [49,64]x[64,128]%s)"
       Mspec.pp_dims d
       (if !scale = 1 then "" else Printf.sprintf ", scaled 1/%d" !scale));
  let inst = random_instance d in
  let g_vanilla = measure ~section:"fig3" ~scheme:"groth16" Api.Backend_groth16 Mc.Vanilla d inst in
  let g_zkvc = measure ~section:"fig3" ~scheme:"zkVC-G" Api.Backend_groth16 Mc.Crpc_psq d inst in
  let s_vanilla = measure ~section:"fig3" ~scheme:"Spartan" Api.Backend_spartan Mc.Vanilla d inst in
  let s_zkvc = measure ~section:"fig3" ~scheme:"zkVC-S" Api.Backend_spartan Mc.Crpc_psq d inst in
  tbl "%-14s %12s %12s %10s\n" "scheme" "prove(s)" "vs-groth16" "source";
  let base = g_vanilla.Api.timings.Api.prove_s in
  let row name t emulated =
    tbl "%-14s %12.3f %11.1fx %10s\n" name t (base /. Stdlib.max 1e-9 t)
      (if emulated then "(emulated)" else "measured")
  in
  List.iter
    (fun s ->
      if s.Cost.emulated then row s.Cost.scheme_name (base *. s.Cost.paper_prove_s /. 9.12) true)
    Cost.schemes;
  row "groth16" base false;
  row "Spartan" s_vanilla.Api.timings.Api.prove_s false;
  row "zkVC-G" g_zkvc.Api.timings.Api.prove_s false;
  row "zkVC-S" s_zkvc.Api.timings.Api.prove_s false;
  (* a REAL interactive baseline: Thaler's matmul sumcheck, the zkCNN-family
     technique (no constraint system, not zero-knowledge) *)
  let x, w = inst in
  let t0 = now () in
  let tproof = Zkvc_gkr.Thaler_matmul.prove ~a:x ~b:w in
  let t_thaler = now () -. t0 in
  row "GKR-matmul" t_thaler false;
  tbl
    "GKR-matmul = measured Thaler'13 sumcheck (interactive family, not zk),\n";
  tbl "             proof %d B vs zkVC-G's 256 B constant.\n"
    (Zkvc_gkr.Thaler_matmul.proof_size_bytes tproof);
  tbl
    "paper shape: zkVC-G ~12.5x faster than vCNN/groth16; zkVC-S ~5x faster than Spartan\n";
  tbl
    "measured   : zkVC-G %.1fx faster than groth16; zkVC-S %.1fx faster than Spartan\n%!"
    (base /. Stdlib.max 1e-9 g_zkvc.Api.timings.Api.prove_s)
    (s_vanilla.Api.timings.Api.prove_s /. Stdlib.max 1e-9 s_zkvc.Api.timings.Api.prove_s)

let run_fig6 () =
  header "Figure 6 — prove / verify / proof size / online time across embedding dims";
  let dims = [ 128; 256; 512 ] in
  tbl "%-10s %-14s %10s %10s %10s %12s\n" "dim2" "scheme" "prove(s)" "verify(s)"
    "proof(B)" "online(s)";
  List.iter
    (fun d2 ->
      let d = scaled_dims d2 in
      let inst = random_instance d in
      let rows =
        [ ("groth16", Api.Backend_groth16, Mc.Vanilla);
          ("Spartan", Api.Backend_spartan, Mc.Vanilla);
          ("zkVC-G", Api.Backend_groth16, Mc.Crpc_psq);
          ("zkVC-S", Api.Backend_spartan, Mc.Crpc_psq) ]
      in
      List.iter
        (fun (name, backend, strategy) ->
          let m = measure ~section:"fig6" ~scheme:name backend strategy d inst in
          (* non-interactive: the verifier's only online work is [verify] *)
          tbl "%-10d %-14s %10.3f %10.4f %10d %12.4f\n%!" d2 name
            m.Api.timings.Api.prove_s m.Api.timings.Api.verify_s m.Api.proof_bytes
            m.Api.timings.Api.verify_s)
        rows;
      (* zkCNN is interactive: both parties stay online through proving *)
      let zkcnn = List.find (fun s -> s.Cost.scheme_name = "zkCNN") Cost.schemes in
      tbl "%-10d %-14s %10s %10.3f %10d %12s (emulated)\n%!" d2 "zkCNN" "~"
        zkcnn.Cost.paper_verify_s
        (int_of_float (zkcnn.Cost.paper_proof_kb *. 1024.))
        "prove+verify")
    dims;
  tbl
    "shape: zkVC leads all non-interactive schemes in proving; verification and\n";
  tbl "proof size stay flat, unlike the interactive zkCNN.\n%!"

let run_tab2 () =
  let d = scaled_dims 128 in
  header
    (Format.asprintf "Table II — CRPC x PSQ ablation, dims %a%s" Mspec.pp_dims d
       (if !scale = 1 then "" else Printf.sprintf " (scaled 1/%d)" !scale));
  let inst = random_instance d in
  tbl "%-6s %-6s | %12s %12s | %12s %12s | %12s %9s\n" "CRPC" "PSQ" "g16-prove(s)"
    "g16-verify" "sp-prove(s)" "sp-verify" "constraints" "nnz(A)";
  let strategies =
    [ (false, false, Mc.Vanilla);
      (false, true, Mc.Vanilla_psq);
      (true, false, Mc.Crpc);
      (true, true, Mc.Crpc_psq) ]
  in
  let results =
    List.map
      (fun (crpc, psq, strategy) ->
        let g = measure ~section:"tab2" ~scheme:"zkVC-G" Api.Backend_groth16 strategy d inst in
        let s = measure ~section:"tab2" ~scheme:"zkVC-S" Api.Backend_spartan strategy d inst in
        tbl "%-6s %-6s | %12.3f %12.4f | %12.3f %12.4f | %12d %9d\n%!"
          (if crpc then "yes" else "no")
          (if psq then "yes" else "no")
          g.Api.timings.Api.prove_s g.Api.timings.Api.verify_s s.Api.timings.Api.prove_s
          s.Api.timings.Api.verify_s g.Api.constraints g.Api.nonzero_a;
        (crpc, psq, g, s))
      strategies
  in
  let get c p =
    let _, _, g, _ = List.find (fun (c', p', _, _) -> c = c' && p = p') results in
    g.Api.timings.Api.prove_s
  in
  tbl "\npaper Table II (16-core, [49,64]x[64,128]):\n";
  List.iter
    (fun (c, p, pg, vg, ps, vs) ->
      tbl "%-6s %-6s | %12.2f %12.3f | %12.2f %12.2f\n"
        (if c then "yes" else "no")
        (if p then "yes" else "no")
        pg vg ps vs)
    Cost.paper_table2;
  tbl
    "\nspeedup shape (prove, groth16): CRPC %.1fx, CRPC+PSQ %.1fx (paper: 9.0x, 12.5x)\n%!"
    (get false false /. Stdlib.max 1e-9 (get true false))
    (get false false /. Stdlib.max 1e-9 (get true true))

(* ------------------------------------------------------------------ *)
(* Amortised verification: batch verify + SnarkPack aggregation         *)

(* Per-proof verification cost as the batch grows: N honest proofs under
   one (challenge-free) key verified three ways — one at a time, with the
   backend's combined batch check, and (Groth16) compressed into one
   SnarkPack aggregate. Report rows (section "agg"):
     setup_s  = per-proof INDIVIDUAL verify seconds (the amortised baseline)
     prove_s  = total combined-check seconds for the whole batch (gated)
     verify_s = per-proof combined seconds — the number that must fall as
                N grows
   [proof_bytes] carries the single-proof size for batch rows and the
   aggregate blob size for snarkpack rows (constant-ish vs N x 259 B). *)
let run_agg () =
  let module Groth16 = Zkvc_groth16.Groth16 in
  let module Aggregate = Zkvc_groth16.Aggregate in
  let module Spartan = Zkvc_spartan.Spartan in
  let d = scaled_dims 128 in
  header
    (Format.asprintf "Amortised verification — batch + aggregate, dims %a%s"
       Mspec.pp_dims d
       (if !scale = 1 then "" else Printf.sprintf " (scaled 1/%d)" !scale));
  let ns = List.filter (fun n -> n <= !agg_max) [ 1; 4; 16; 64 ] in
  let n_max = List.fold_left Stdlib.max 1 ns in
  let strategy = Mc.Vanilla in
  let time f =
    let t0 = now () in
    let r = f () in
    (r, now () -. t0)
  in
  let median l = Obs.Stats.median (Array.of_list l) in
  tbl "%-8s %4s | %12s %12s %12s | %10s %10s\n" "backend" "N" "indiv(s)"
    "batched(s)" "per-proof" "amortised" "proof(B)";
  List.iter
    (fun (bname, backend) ->
      progress "agg: proving %d %s members...\n%!" n_max bname;
      let preps =
        List.init n_max (fun _ ->
            let x, w = random_instance d in
            Api.prepare strategy ~x ~w d)
      in
      let prep0 = List.hd preps in
      let keys = Api.keygen ~rng backend prep0.Api.cs in
      let members =
        List.map
          (fun (prep : Api.prepared) ->
            let publics =
              Array.to_list
                (Array.sub prep.Api.assignment 1 (Api.Cs.num_inputs prep.Api.cs))
            in
            (publics, Api.prove_with ~rng keys prep.Api.assignment))
          preps
      in
      let stats = Api.Cs.stats prep0.Api.cs in
      let ledger =
        { Obs.Report.constraints = stats.Api.Cs.constraints;
          variables = stats.Api.Cs.variables;
          nonzero_a = stats.Api.Cs.nonzero_a;
          nonzero_b = stats.Api.Cs.nonzero_b;
          nonzero_c = stats.Api.Cs.nonzero_c;
          witness = Array.length prep0.Api.assignment;
          top_heap_words = 0;
          major_collections = 0 }
      in
      let record scheme ~reps ~proof_bytes =
        if !json_file <> None then
          report_measurements :=
            Obs.Report.summarize ~section:"agg" ~scheme
              ~strategy:(Mc.strategy_name strategy)
              ~backend:(Api.backend_name backend)
              ~dims:(d.Mspec.a, d.Mspec.n, d.Mspec.b)
              ~reps ~proof_bytes ~ledger ()
            :: !report_measurements
      in
      let take n = List.filteri (fun i _ -> i < n) members in
      let single_proof_bytes =
        match snd (List.hd members) with
        | Api.Groth16_proof p -> Bytes.length (Groth16.proof_to_bytes p)
        | Api.Spartan_proof p -> Spartan.proof_size_bytes p
      in
      (* the batch check per backend; asserts acceptance so a silently
         rejecting batch cannot masquerade as a fast one *)
      let batch_check pairs =
        match keys with
        | Api.Groth16_keys { vk; _ } ->
          let pairs =
            List.map
              (function
                | io, Api.Groth16_proof p -> (io, p)
                | _ -> assert false)
              pairs
          in
          assert (Groth16.verify_batch vk pairs = Groth16.Batch_accepted)
        | Api.Spartan_keys { inst; key } ->
          let pairs =
            List.map
              (function
                | io, Api.Spartan_proof p -> (io, p)
                | _ -> assert false)
              pairs
          in
          assert (Spartan.verify_batch key inst pairs = Spartan.Batch_accepted)
      in
      List.iter
        (fun n ->
          let pairs = take n in
          let reps =
            List.init !repeat (fun _ ->
                let (), t_ind =
                  time (fun () ->
                      List.iter
                        (fun (io, p) ->
                          assert (Api.verify_with keys ~public_inputs:io p))
                        pairs)
                in
                let (), t_batch = time (fun () -> batch_check pairs) in
                { Obs.Report.setup_s = t_ind /. float_of_int n;
                  prove_s = t_batch;
                  verify_s = t_batch /. float_of_int n })
          in
          record (Printf.sprintf "batch-n%d" n) ~reps ~proof_bytes:single_proof_bytes;
          let t_ind_pp = median (List.map (fun (r : Obs.Report.rep) -> r.Obs.Report.setup_s) reps) in
          let t_batch = median (List.map (fun (r : Obs.Report.rep) -> r.Obs.Report.prove_s) reps) in
          tbl "%-8s %4d | %12.3f %12.3f %12.4f | %9.1fx %10d\n%!" bname n
            (t_ind_pp *. float_of_int n)
            t_batch
            (t_batch /. float_of_int n)
            (t_ind_pp /. Stdlib.max 1e-9 (t_batch /. float_of_int n))
            single_proof_bytes)
        ns;
      (* SnarkPack aggregation (Groth16 only): one O(log N) proof for the
         whole batch; the verifier pays ~constant pairings however large
         N grows *)
      match keys with
      | Api.Spartan_keys _ -> ()
      | Api.Groth16_keys { vk; _ } ->
        let srs, t_srs =
          time (fun () -> Aggregate.setup rng ~max_proofs:(Stdlib.max 2 n_max))
        in
        progress "agg: aggregation SRS in %.2fs\n%!" t_srs;
        List.iter
          (fun n ->
            let pairs =
              List.map
                (function
                  | io, Api.Groth16_proof p -> (io, p)
                  | _ -> assert false)
                (take n)
            in
            let ios = List.map fst pairs in
            let agg, t_agg = time (fun () -> Aggregate.aggregate srs vk pairs) in
            let blob = Aggregate.proof_size_bytes agg in
            let reps =
              List.init !repeat (fun _ ->
                  let (), t_ind =
                    time (fun () ->
                        List.iter
                          (fun (io, p) ->
                            assert
                              (Api.verify_with keys ~public_inputs:io
                                 (Api.Groth16_proof p)))
                          pairs)
                  in
                  let (), t_ver =
                    time (fun () ->
                        assert (Aggregate.verify_aggregate srs vk ios agg))
                  in
                  { Obs.Report.setup_s = t_ind /. float_of_int n;
                    prove_s = t_ver;
                    verify_s = t_ver /. float_of_int n })
            in
            record (Printf.sprintf "snarkpack-n%d" n) ~reps ~proof_bytes:blob;
            let t_ind_pp = median (List.map (fun (r : Obs.Report.rep) -> r.Obs.Report.setup_s) reps) in
            let t_ver = median (List.map (fun (r : Obs.Report.rep) -> r.Obs.Report.prove_s) reps) in
            tbl
              "%-8s %4d | %12s %12.3f %12.4f | %9.1fx %10d  (snarkpack, agg %.2fs)\n%!"
              "g16-agg" n "-" t_ver
              (t_ver /. float_of_int n)
              (t_ind_pp /. Stdlib.max 1e-9 (t_ver /. float_of_int n))
              blob t_agg)
          (List.filter (fun n -> n >= 2) ns);
        tbl
          "batched(s) = one combined check for the whole batch; amortised = per-proof\n";
        tbl
          "individual / per-proof combined. snarkpack rows verify ONE aggregate proof.\n%!")
    [ ("groth16", Api.Backend_groth16); ("spartan", Api.Backend_spartan) ]

(* ------------------------------------------------------------------ *)
(* Tables III and IV                                                    *)

let run_tab3 () =
  header "Table III — token mixers on ViT models (constraints exact; times calibrated)";
  progress "calibrating prover cost models with real proofs...\n%!";
  let calib_g = Cost.calibrate ~n1:(1 lsl 9) ~n2:(1 lsl 11) Cost.Backend_groth16 in
  let calib_s = Cost.calibrate ~n1:(1 lsl 9) ~n2:(1 lsl 11) Cost.Backend_spartan in
  tbl "%-14s %-12s %8s %14s %12s %10s %10s %12s %10s\n" "dataset" "variant"
    "top1(%)" "constraints" "est-P_G(s)" "est/SA" "paper/SA" "paper-P_G" "paper-P_S";
  let variants =
    [ Models.Soft_approx; Models.Soft_free_s; Models.Soft_free_p; Models.Zkvc_hybrid ]
  in
  List.iter
    (fun (dataset, arch) ->
      let rows =
        List.map (fun v -> Pm.table3_row ~calib_g ~calib_s cfg ~dataset arch v) variants
      in
      let approx = List.hd rows in
      List.iter
        (fun row ->
          (* normalised columns: cost relative to SoftApprox., ours vs the
             paper's — the shape claim under test *)
          let est_ratio = row.Pm.est_prove_g /. approx.Pm.est_prove_g in
          let paper_ratio =
            match row.Pm.paper_prove_g, approx.Pm.paper_prove_g with
            | Some a, Some b -> Printf.sprintf "%.2f" (a /. b)
            | _ -> "-"
          in
          tbl "%-14s %-12s %8s %14d %12.1f %10.2f %10s %12s %10s\n%!" dataset
            (Models.variant_name row.Pm.variant)
            (match row.Pm.paper_top1 with Some a -> Printf.sprintf "%.1f" a | None -> "-")
            row.Pm.constraints row.Pm.est_prove_g est_ratio paper_ratio
            (match row.Pm.paper_prove_g with Some v -> Printf.sprintf "%.1f" v | None -> "-")
            (match row.Pm.paper_prove_s with Some v -> Printf.sprintf "%.1f" v | None -> "-"))
        rows)
    [ ("Cifar-10", Models.vit_cifar10);
      ("TinyImageNet", Models.vit_tiny_imagenet);
      ("ImageNet", Models.vit_imagenet) ];
  tbl
    "\naccuracy columns are the paper's reported values (no datasets in this\n";
  tbl
    "container; DESIGN.md substitution 3). Shape to check: within each dataset\n";
  tbl "SoftFree-P < zkVC < SoftFree-S < SoftApprox in proving cost.\n%!"

let run_tab4 () =
  header "Table IV — token mixers on BERT (GLUE)";
  let calib_g = Cost.calibrate ~n1:(1 lsl 9) ~n2:(1 lsl 11) Cost.Backend_groth16 in
  let calib_s = Cost.calibrate ~n1:(1 lsl 9) ~n2:(1 lsl 11) Cost.Backend_spartan in
  tbl "%-12s %7s %7s %7s %7s %14s %12s %8s %9s %12s %12s\n" "variant" "MNLI"
    "QNLI" "SST-2" "MRPC" "constraints" "est-P_G(s)" "est/SA" "paper/SA" "paper-P_G"
    "paper-P_S";
  let sa_counts =
    (Compiler.total_counts cfg (Compiler.compile Models.bert_glue Models.Soft_approx))
      .Ops.constraints
  in
  let sa_paper = 1299.5 in
  let variants =
    [ (Models.Soft_approx, "SoftApprox.");
      (Models.Soft_free_s, "SoftFree-S");
      (Models.Soft_free_l, "SoftFree-L");
      (Models.Zkvc_hybrid, "zkVC") ]
  in
  List.iter
    (fun (variant, vname) ->
      let layers = Compiler.compile Models.bert_glue variant in
      let counts = Compiler.total_counts cfg layers in
      let paper = List.find_opt (fun (v, _, _, _, _, _, _) -> v = vname) Cost.paper_table4 in
      let acc f = match paper with Some row -> Printf.sprintf "%.1f" (f row) | None -> "-" in
      ignore calib_s;
      let est = Cost.estimate calib_g counts.Ops.constraints in
      let est_sa = Cost.estimate calib_g sa_counts in
      let paper_ratio =
        match paper with
        | Some (_, _, _, _, _, pg, _) -> Printf.sprintf "%.2f" (pg /. sa_paper)
        | None -> "-"
      in
      tbl "%-12s %7s %7s %7s %7s %14d %12.1f %8.2f %9s %12s %12s\n%!" vname
        (acc (fun (_, a, _, _, _, _, _) -> a))
        (acc (fun (_, _, a, _, _, _, _) -> a))
        (acc (fun (_, _, _, a, _, _, _) -> a))
        (acc (fun (_, _, _, _, a, _, _) -> a))
        counts.Ops.constraints est (est /. est_sa) paper_ratio
        (acc (fun (_, _, _, _, _, pg, _) -> pg))
        (acc (fun (_, _, _, _, _, _, ps) -> ps)))
    variants;
  tbl "\nshape to check: SoftFree-L < zkVC < SoftFree-S < SoftApprox.\n%!"

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md)                                                *)

let run_ablations () =
  header "Ablations";
  (* 1. PSQ wire density *)
  let d = scaled_dims 128 in
  tbl "[abl-psq] wire statistics at %s:\n" (Format.asprintf "%a" Mspec.pp_dims d);
  let x, w = random_instance d in
  List.iter
    (fun strategy ->
      let cs, _, _ = Api.build_circuit strategy ~x ~w d in
      let s = Api.Cs.stats cs in
      tbl
        "  %-12s constraints=%-8d vars=%-8d nnz(A)=%-8d nnz(B)=%-8d nnz(C)=%d\n%!"
        (Mc.strategy_name strategy) s.Api.Cs.constraints s.Api.Cs.variables
        s.Api.Cs.nonzero_a s.Api.Cs.nonzero_b s.Api.Cs.nonzero_c)
    Mc.all_strategies;
  (* 2. NTT vs schoolbook crossover *)
  tbl "[abl-ntt] polynomial multiplication crossover:\n";
  let module P = Zkvc_poly.Dense_poly.Make (Fr) in
  List.iter
    (fun deg ->
      let p1 = P.random rng ~degree:deg and p2 = P.random rng ~degree:deg in
      let time f =
        let t0 = now () in
        ignore (f ());
        now () -. t0
      in
      let ts = time (fun () -> P.mul_schoolbook p1 p2) in
      let tn = time (fun () -> P.mul_ntt p1 p2) in
      tbl "  degree %-6d schoolbook %.4fs ntt %.4fs -> %s wins\n%!" deg ts tn
        (if ts < tn then "schoolbook" else "ntt"))
    [ 16; 64; 256; 1024 ];
  (* 3. Pippenger vs naive MSM *)
  tbl "[abl-msm] MSM n=2048:\n";
  let module Msm = Zkvc_curve.Msm.Make (Zkvc_curve.G1) in
  let points = Array.init 2048 (fun _ -> Zkvc_curve.G1.random rng) in
  let scalars = Array.init 2048 (fun _ -> Fr.to_bigint (Fr.random rng)) in
  let t0 = now () in
  ignore (Msm.msm_bigint points scalars);
  let t_pip = now () -. t0 in
  let t0 = now () in
  ignore
    (Msm.msm_naive ~mul:Zkvc_curve.G1.mul (Array.sub points 0 128) (Array.sub scalars 0 128));
  let t_naive = (now () -. t0) *. (2048. /. 128.) in
  tbl "  pippenger %.3fs vs naive (extrapolated) %.3fs -> %.1fx\n%!" t_pip t_naive
    (t_naive /. Stdlib.max 1e-9 t_pip);
  (* 4. softmax squaring depth vs accuracy *)
  tbl "[abl-exp] exponential approximation error by squaring depth n:\n";
  List.iter
    (fun n ->
      let c =
        { cfg with Nl.exp_squarings = n; clip_log2 = Stdlib.min (cfg.Nl.fractional_bits + n) 11 }
      in
      let s = float_of_int (Nl.scale c) in
      let max_err = ref 0. in
      for i = 0 to 200 do
        let v = float_of_int i /. 25. in
        let approx = float_of_int (Nl.Reference.exp_neg c (int_of_float (v *. s))) /. s in
        max_err := Stdlib.max !max_err (abs_float (approx -. exp (-.v)))
      done;
      let unit_cost =
        (Compiler.Counter.count c (Ops.Op_softmax { rows = 1; len = 8 })).Ops.constraints
      in
      tbl "  n=%d  max|err|=%.4f  softmax-row(8) constraints=%d\n%!" n !max_err
        unit_cost)
    [ 2; 3; 4; 5; 6 ];
  (* 5. Spartan opening mode: Hyrax fold (sqrt) vs IPA (log) *)
  tbl "[abl-open] Spartan witness opening: Hyrax fold vs inner-product argument:\n";
  let module Spartan = Zkvc_spartan.Spartan in
  let module Bld = Zkvc_r1cs.Builder.Make (Fr) in
  let module Gg = Zkvc_r1cs.Gadgets.Make (Fr) in
  let module Lc = Zkvc_r1cs.Lc.Make (Fr) in
  let open_circuit =
    let b = Bld.create () in
    let x0 = Bld.alloc b (Fr.of_int 3) in
    let acc = ref (Lc.of_var x0) in
    for _ = 1 to 4096 do
      acc := Lc.of_var (Gg.mul b !acc !acc)
    done;
    Bld.finalize b
  in
  let cs, assignment = open_circuit in
  let inst = Spartan.preprocess cs in
  let skey = Spartan.setup inst in
  List.iter
    (fun (name, mode) ->
      let t0 = now () in
      let proof = Spartan.prove ~opening_mode:mode rng skey inst assignment in
      let t_p = now () -. t0 in
      let t0 = now () in
      let ok = Spartan.verify skey inst ~public_inputs:[] proof in
      let t_v = now () -. t0 in
      tbl "  %-12s proof=%-6dB prove=%.3fs verify=%.3fs ok=%b\n%!" name
        (Spartan.proof_size_bytes proof) t_p t_v ok)
    [ ("hyrax-fold", `Hyrax_fold); ("ipa", `Ipa) ];
  (* 6. real per-op proofs on both backends *)
  tbl "[abl-ops] real proofs of individual NN ops:\n";
  List.iter
    (fun (label, op) ->
      List.iter
        (fun (bname, backend) ->
          let nc, tp, tv, bytes = Pm.prove_op backend cfg op in
          tbl "  %-22s %-8s n=%-7d prove=%.3fs verify=%.4fs proof=%dB\n%!" label
            bname nc tp tv bytes)
        [ ("groth16", Cost.Backend_groth16); ("spartan", Cost.Backend_spartan) ])
    [ ("softmax(1x8)", Ops.Op_softmax { rows = 1; len = 8 });
      ("gelu(x32)", Ops.Op_gelu 32);
      ("layernorm(1x16)", Ops.Op_layernorm { rows = 1; cols = 16 });
      ("matmul crpc+psq 8x8x8", Ops.Op_matmul (Mspec.dims ~a:8 ~n:8 ~b:8)) ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                             *)

let run_micro () =
  header "Micro-benchmarks (Bechamel; substrate kernels)";
  let open Bechamel in
  let module D = Zkvc_poly.Domain.Make (Fr) in
  let x = Fr.random rng and y = Fr.random rng in
  let f12 = Zkvc_curve.Fq12.random rng in
  let g1a = Zkvc_curve.G1.random rng and g1b = Zkvc_curve.G1.random rng in
  let dom = D.create 1024 in
  let coeffs = Array.init 1024 (fun _ -> Fr.random rng) in
  let data = Bytes.create 1024 in
  let tests =
    [ Test.make ~name:"fr-mul" (Staged.stage (fun () -> ignore (Fr.mul x y)));
      Test.make ~name:"fr-inv" (Staged.stage (fun () -> ignore (Fr.inv x)));
      Test.make ~name:"fq12-mul" (Staged.stage (fun () -> ignore (Zkvc_curve.Fq12.mul f12 f12)));
      Test.make ~name:"g1-add" (Staged.stage (fun () -> ignore (Zkvc_curve.G1.add g1a g1b)));
      Test.make ~name:"ntt-1024"
        (Staged.stage (fun () ->
             let a = Array.copy coeffs in
             D.ntt dom a));
      Test.make ~name:"sha256-1k" (Staged.stage (fun () -> ignore (Zkvc_hash.Sha256.digest data)))
    ]
  in
  List.iter
    (fun t ->
      let results =
        Benchmark.all
          (Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ())
          [ Toolkit.Instance.monotonic_clock ] t
      in
      let res =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name r ->
          match Analyze.OLS.estimates r with
          | Some [ est ] -> tbl "  %-12s %12.1f ns/op\n%!" name est
          | Some _ | None -> tbl "  %-12s (no estimate)\n%!" name)
        res)
    tests

(* ------------------------------------------------------------------ *)

let () =
  progress "zkVC reproduction bench harness (scale=1/%d%s%s, jobs=%d, repeat=%d, clock=monotonic)\n"
    !scale
    (if !full then " full" else "")
    (if !optimize then " optimised" else "")
    (Zkvc_parallel.jobs ())
    !repeat;
  if enabled "tab1" then run_tab1 ();
  if enabled "fig3" then run_fig3 ();
  if enabled "fig6" then run_fig6 ();
  if enabled "tab2" then run_tab2 ();
  if enabled "tab3" then run_tab3 ();
  if enabled "tab4" then run_tab4 ();
  if enabled "agg" then run_agg ();
  if enabled "abl" then run_ablations ();
  if enabled "micro" then run_micro ();
  write_json_report ();
  progress "bench complete.\n"
