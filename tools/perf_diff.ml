(* Compare two bench reports (Zkvc_obs.Report, schema zkvc-bench/3;
   zkvc-bench/2 baselines still read) and gate on regressions: the
   perf-trajectory differ behind tools/ci.sh.

   Usage: perf_diff.exe [options] OLD.json NEW.json
     --threshold R   relative prove-time tolerance (default 0.25)
     --k K           MAD multiplier of the noise band (default 4.0)
     --floor S       absolute band floor in seconds (default 0.005)
     --skip-time     skip the wall-time comparison, keep the cost-ledger
                     equality check (CI uses this when the runner's core
                     count differs from the baseline's environment block)
     --json FILE     also write the JSON verdict to FILE ("-" = stdout,
                     moving the human table to stderr)

   A measurement regresses only when its prove-time delta exceeds
   max(threshold * old, k * MAD, floor) — single-run noise cannot fail
   the gate, a 2x slowdown always does. Deterministic cost-ledger fields
   (constraints, variables, nonzeros, witness length) must be exactly
   equal regardless of --skip-time. When both measurements embed a
   constraint-provenance region tree (zkvc-bench/3, bench --profile or
   zkvc_cli profile --json), per-region structural counts are held to
   the same exact-equality bar and a drift note names the owning region;
   the comparison is skipped when either side lacks the tree, so v2
   baselines keep diffing.

   Exit status: 0 = within noise, 1 = regression or ledger drift,
   2 = usage or unreadable/invalid report. *)

module Diff = Zkvc_obs.Diff
module Report = Zkvc_obs.Report
module Json = Zkvc_obs.Json

let usage_error msg =
  Printf.eprintf "perf_diff: %s\n" msg;
  Printf.eprintf
    "usage: perf_diff.exe [--threshold R] [--k K] [--floor S] [--skip-time] [--json FILE] OLD.json NEW.json\n";
  exit 2

let read_report path =
  let text =
    try
      let ic = open_in_bin path in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          really_input_string ic (in_channel_length ic))
    with Sys_error msg -> usage_error ("cannot read " ^ path ^ ": " ^ msg)
  in
  match Report.of_string text with
  | Ok r -> r
  | Error msg -> usage_error (path ^ ": " ^ msg)

let () =
  let threshold = ref 0.25 in
  let k = ref 4. in
  let floor_s = ref 0.005 in
  let check_time = ref true in
  let json_out : string option ref = ref None in
  let files = ref [] in
  let float_arg name v rest k' =
    match float_of_string_opt v with
    | Some f when f >= 0. -> k' f rest
    | _ -> usage_error (name ^ " expects a non-negative number, got " ^ v)
  in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest -> float_arg "--threshold" v rest (fun f r -> threshold := f; parse r)
    | "--k" :: v :: rest -> float_arg "--k" v rest (fun f r -> k := f; parse r)
    | "--floor" :: v :: rest -> float_arg "--floor" v rest (fun f r -> floor_s := f; parse r)
    | "--skip-time" :: rest ->
      check_time := false;
      parse rest
    | "--json" :: f :: rest ->
      json_out := Some f;
      parse rest
    | [ ("--threshold" | "--k" | "--floor" | "--json") as flag ] ->
      usage_error (flag ^ " expects an argument")
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
      usage_error ("unknown option: " ^ arg)
    | file :: rest ->
      files := file :: !files;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let old_file, new_file =
    match List.rev !files with
    | [ a; b ] -> (a, b)
    | _ -> usage_error "expected exactly two report files (OLD.json NEW.json)"
  in
  let old_ = read_report old_file and new_ = read_report new_file in
  if old_.Report.env.Report.nproc <> new_.Report.env.Report.nproc && !check_time then
    Printf.eprintf
      "perf_diff: warning: baseline ran on nproc=%d, this run on nproc=%d; wall-time \
       comparison may be meaningless (consider --skip-time)\n"
      old_.Report.env.Report.nproc new_.Report.env.Report.nproc;
  let result =
    Diff.compare_reports ~threshold:!threshold ~k:!k ~floor_s:!floor_s
      ~check_time:!check_time ~old_ ~new_ ()
  in
  (* human table; moved to stderr when the JSON verdict owns stdout *)
  let table_chan = if !json_out = Some "-" then stderr else stdout in
  Printf.fprintf table_chan "comparing %s (old) vs %s (new)%s\n%s" old_file new_file
    (if !check_time then "" else "  [wall-time comparison skipped]")
    (Diff.result_to_string result);
  let verdict = Json.to_string_pretty (Diff.result_to_json result) in
  (match !json_out with
   | None -> ()
   | Some "-" -> print_string verdict
   | Some f -> (
     try
       let oc = open_out f in
       Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
           output_string oc verdict)
     with Sys_error msg -> usage_error ("cannot write " ^ f ^ ": " ^ msg)));
  exit (if result.Diff.ok then 0 else 1)
