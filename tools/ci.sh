#!/bin/sh
# CI entry point: full build, tier-1 test suites at two job counts, a
# paired smoke bench (sequential vs parallel) that must produce non-empty
# machine-readable reports and a sane speedup ratio, a noise-aware perf
# gate that diffs the sequential smoke report against the committed
# baseline (BENCH_0008.json, region-profiled) with tools/perf_diff, a
# constraint-provenance profile stage on both backends, and an optimiser
# stage (lib/opt): optimised prove/verify on both backends, a measured
# nnz win on the ViT profile, and a second perf gate against the
# optimised baseline BENCH_0009.json.
set -eu

cd "$(dirname "$0")/.."

NPROC=$(nproc 2>/dev/null || echo 1)

echo "== dune build =="
dune build

echo "== dune runtest (jobs=1) =="
ZKVC_JOBS=1 dune runtest --force

echo "== dune runtest (jobs=max, nproc=$NPROC) =="
ZKVC_JOBS=0 dune runtest --force

echo "== smoke bench (tab2, scale 16, repeat 3, jobs=1 vs jobs=max) =="
BENCH_JSON=${BENCH_JSON:-/tmp/bench.json}
BENCH_JSON_PAR=${BENCH_JSON_PAR:-/tmp/bench-par.json}
rm -f "$BENCH_JSON" "$BENCH_JSON_PAR"
# --profile embeds the per-region constraint ledger so the perf gate
# below also holds region-level structural counts to exact equality
dune exec bench/main.exe -- --only tab2 --scale 16 --repeat 3 --jobs 1 --profile --json "$BENCH_JSON"
dune exec bench/main.exe -- --only tab2 --scale 16 --repeat 3 --jobs 0 --profile --json "$BENCH_JSON_PAR"

for f in "$BENCH_JSON" "$BENCH_JSON_PAR"; do
    if [ ! -s "$f" ]; then
        echo "ci: bench json report missing or empty: $f" >&2
        exit 1
    fi
done

# total proving seconds across the report's measurement rows
sum_prove() {
    awk -F: '/"prove_s"/ { gsub(/[ ,]/, "", $2); s += $2 } END { printf "%.6f", s }' "$1"
}
SEQ=$(sum_prove "$BENCH_JSON")
PAR=$(sum_prove "$BENCH_JSON_PAR")
echo "ci: prove totals  jobs=1 ${SEQ}s  jobs=max ${PAR}s"

if [ "$NPROC" -le 1 ]; then
    # single-core runner: worker domains timeshare one CPU, so no speedup
    # is possible; determinism and correctness were still exercised above
    echo "ci: nproc=1, skipping the parallel-not-slower assertion"
else
    # tolerate noise but catch pathological slowdowns from the pool
    awk -v seq="$SEQ" -v par="$PAR" 'BEGIN {
        if (par > seq * 1.25) {
            printf "ci: parallel bench slower than sequential (%.3fs vs %.3fs)\n", par, seq
            exit 1
        }
    }' </dev/null
fi

echo "== perf gate: tools/perf_diff vs committed baseline =="
BASELINE=${BASELINE:-BENCH_0008.json}
if [ ! -s "$BASELINE" ]; then
    echo "ci: baseline report missing: $BASELINE" >&2
    exit 1
fi

# env.nproc of a report (first "nproc" field in the file)
json_nproc() {
    grep -o '"nproc": *[0-9]*' "$1" | head -n 1 | grep -o '[0-9]*$'
}
BASE_NPROC=$(json_nproc "$BASELINE")
RUN_NPROC=$(json_nproc "$BENCH_JSON")

if [ "$BASE_NPROC" = "$RUN_NPROC" ]; then
    dune exec tools/perf_diff.exe -- "$BASELINE" "$BENCH_JSON"
else
    # wall times from a different core count are not comparable, but the
    # cost ledger is deterministic: constraint counts must never drift
    echo "ci: baseline nproc=$BASE_NPROC, runner nproc=$RUN_NPROC;"
    echo "ci: skipping wall-time comparison, still checking cost-ledger equality"
    dune exec tools/perf_diff.exe -- --skip-time "$BASELINE" "$BENCH_JSON"
fi

# schema compatibility: the previous-generation v2 baseline (no region
# blocks) must keep diffing against a freshly produced v3 report — the
# region comparison is skipped when one side lacks the tree, the global
# ledger still gates. Wall times from the v2 era are not comparable.
dune exec tools/perf_diff.exe -- --skip-time BENCH_0003.json "$BENCH_JSON" || {
    echo "ci: v2 baseline no longer diffs against a v3 report" >&2
    exit 1
}

echo "== constraint-provenance profile (both backends) =="
PROF_TMP=$(mktemp -d /tmp/zkvc-profile-ci.XXXXXX)
for BACKEND in groth16 spartan; do
    echo "-- profile $BACKEND --"
    dune exec bin/zkvc_cli.exe -- profile --backend "$BACKEND" --strategy crpc+psq \
        --dims 8,8,16 --folded "$PROF_TMP/$BACKEND.folded" \
        --json "$PROF_TMP/$BACKEND.json" | tee "$PROF_TMP/$BACKEND.out"
    # the table's region constraint sum must equal the global ledger
    grep -q "exact match" "$PROF_TMP/$BACKEND.out" || {
        echo "ci: profile region sum does not match the global ledger ($BACKEND)" >&2
        exit 1
    }
    # the folded export is non-empty and every line is `path;seg N`
    if [ ! -s "$PROF_TMP/$BACKEND.folded" ]; then
        echo "ci: folded profile missing or empty ($BACKEND)" >&2
        exit 1
    fi
    awk '!/^[^ ]+ [0-9]+$/ { bad = 1 } END { exit bad }' "$PROF_TMP/$BACKEND.folded" || {
        echo "ci: folded profile has malformed lines ($BACKEND)" >&2
        cat "$PROF_TMP/$BACKEND.folded" >&2
        exit 1
    }
    # the emitted zkvc-bench/3 report is machine-readable: diffing it
    # against itself must come out clean
    dune exec tools/perf_diff.exe -- --skip-time "$PROF_TMP/$BACKEND.json" \
        "$PROF_TMP/$BACKEND.json" > /dev/null || {
        echo "ci: profile report does not round-trip through perf_diff ($BACKEND)" >&2
        exit 1
    }
done

# the region-level gate actually gates: inject a one-count nnz change
# into a single region of a copy and require perf_diff to fail on it
sed '0,/"nnz_a": *[0-9][0-9]*/s//"nnz_a": 999999/' "$PROF_TMP/groth16.json" \
    > "$PROF_TMP/groth16-drifted.json"
if dune exec tools/perf_diff.exe -- --skip-time "$PROF_TMP/groth16.json" \
    "$PROF_TMP/groth16-drifted.json" > "$PROF_TMP/drift.out" 2>&1; then
    echo "ci: injected per-region nnz drift was not flagged" >&2
    cat "$PROF_TMP/drift.out" >&2
    exit 1
fi
grep -q "region " "$PROF_TMP/drift.out" || {
    echo "ci: drift verdict does not name the owning region" >&2
    cat "$PROF_TMP/drift.out" >&2
    exit 1
}
echo "ci: profile stage ok ($PROF_TMP)"

echo "== optimiser stage: lib/opt pipeline =="
OPT_TMP=$(mktemp -d /tmp/zkvc-opt-ci.XXXXXX)
# end-to-end on both backends: optimised keygen, optimised prove (exits
# non-zero on a failed verification), and offline verify of the optimised
# proof against the spilled key file (which carries the optimiser config)
for BACKEND in groth16 spartan; do
    echo "-- optimised prove/verify $BACKEND --"
    dune exec bin/zkvc_cli.exe -- keygen --dims 4,4,8 --backend "$BACKEND" --seed 7 \
        --optimize --out "$OPT_TMP/$BACKEND.zkvk" > /dev/null
    dune exec bin/zkvc_cli.exe -- prove --dims 4,4,8 --backend "$BACKEND" --seed 7 \
        --optimize --out "$OPT_TMP/$BACKEND.zkvp" > "$OPT_TMP/$BACKEND-prove.out" || {
        echo "ci: optimised prove failed ($BACKEND)" >&2
        cat "$OPT_TMP/$BACKEND-prove.out" >&2
        exit 1
    }
    dune exec bin/zkvc_cli.exe -- verify --key "$OPT_TMP/$BACKEND.zkvk" \
        --proof "$OPT_TMP/$BACKEND.zkvp" | grep -q "verified: true" || {
        echo "ci: offline verification of an optimised proof failed ($BACKEND)" >&2
        exit 1
    }
done

# the pipeline must actually win on a real workload: the ViT token-mixer
# profile with --optimize reports a strictly smaller nnz total, keeps the
# per-region ledger exact, and attributes every win to a region
dune exec bin/zkvc_cli.exe -- profile --arch cifar10 --variant zkvc --shrink 24 \
    --backend spartan --optimize | tee "$OPT_TMP/profile.out"
grep -q "exact match" "$OPT_TMP/profile.out" || {
    echo "ci: optimised profile region sum does not match the global ledger" >&2
    exit 1
}
awk '/^  total .* nnz / {
    before = $(NF - 2); after = $NF
    if (after + 0 >= before + 0) {
        printf "ci: optimiser did not reduce nnz (%d -> %d)\n", before, after
        exit 1
    }
    found = 1
}
END { if (!found) { print "ci: no optimiser nnz total in the profile output"; exit 1 } }' \
    "$OPT_TMP/profile.out" || exit 1

# per-pass behaviour on an injected-redundancy circuit (exact elimination
# counts, witness round trips) is asserted by test/test_opt.ml in the
# runtest stages above; here we gate the committed optimised baseline:
# same smoke bench as the perf gate, now with --optimize, against
# BENCH_0009.json — structural counts (global and per region) to exact
# equality, wall time only when the core count matches
echo "-- optimised perf gate vs BENCH_0009.json --"
BENCH_OPT_JSON=${BENCH_OPT_JSON:-/tmp/bench-opt.json}
rm -f "$BENCH_OPT_JSON"
dune exec bench/main.exe -- --only tab2 --scale 16 --repeat 3 --jobs 1 \
    --profile --optimize --json "$BENCH_OPT_JSON"
OPT_BASELINE=${OPT_BASELINE:-BENCH_0009.json}
if [ ! -s "$OPT_BASELINE" ]; then
    echo "ci: optimised baseline report missing: $OPT_BASELINE" >&2
    exit 1
fi
OPT_BASE_NPROC=$(json_nproc "$OPT_BASELINE")
if [ "$OPT_BASE_NPROC" = "$(json_nproc "$BENCH_OPT_JSON")" ]; then
    dune exec tools/perf_diff.exe -- "$OPT_BASELINE" "$BENCH_OPT_JSON"
else
    echo "ci: optimised baseline nproc=$OPT_BASE_NPROC differs; cost ledger only"
    dune exec tools/perf_diff.exe -- --skip-time "$OPT_BASELINE" "$BENCH_OPT_JSON"
fi
echo "ci: optimiser stage ok ($OPT_TMP)"

echo "== proof service smoke (socket e2e, both backends, telemetry) =="
SERVE_TMP=$(mktemp -d /tmp/zkvc-serve-ci.XXXXXX)
SOCK="$SERVE_TMP/zkvc.sock"
dune exec bin/zkvc_cli.exe -- serve --socket "$SOCK" --cache-dir "$SERVE_TMP/keys" \
    --metrics --metrics-file "$SERVE_TMP/metrics.prom" --metrics-interval 0.2 \
    --flight-file "$SERVE_TMP/flight.jsonl" --trace "$SERVE_TMP/serve-trace.json" \
    > "$SERVE_TMP/serve.log" 2>&1 &
SERVE_PID=$!
i=0
while [ ! -S "$SOCK" ] && [ "$i" -lt 100 ]; do
    sleep 0.1
    i=$((i + 1))
done
if [ ! -S "$SOCK" ]; then
    echo "ci: proof service did not come up" >&2
    cat "$SERVE_TMP/serve.log" >&2
    exit 1
fi

for BACKEND in groth16 spartan; do
    echo "-- $BACKEND --"
    # first prove is a cache miss: its proof must be byte-identical to an
    # in-process Api.run proof of the same seeded statement
    dune exec bin/zkvc_cli.exe -- client prove --socket "$SOCK" --dims 4,4,8 \
        --backend "$BACKEND" --seed 7 --out "$SERVE_TMP/$BACKEND.zkvp" \
        | tee "$SERVE_TMP/$BACKEND-prove1.out"
    grep -q "cache miss" "$SERVE_TMP/$BACKEND-prove1.out" || {
        echo "ci: first prove should miss the key cache" >&2
        exit 1
    }
    dune exec bin/zkvc_cli.exe -- prove --dims 4,4,8 --backend "$BACKEND" --seed 7 \
        --out "$SERVE_TMP/$BACKEND-local.zkvp" > /dev/null
    cmp "$SERVE_TMP/$BACKEND.zkvp" "$SERVE_TMP/$BACKEND-local.zkvp" || {
        echo "ci: served proof differs from the in-process proof" >&2
        exit 1
    }
    # keygen and a second prove for the same circuit must hit the cache
    dune exec bin/zkvc_cli.exe -- client keygen --socket "$SOCK" --dims 4,4,8 \
        --backend "$BACKEND" --seed 7 --out "$SERVE_TMP/$BACKEND.zkvk" \
        | grep -q "cache hit" || { echo "ci: keygen should hit the cache" >&2; exit 1; }
    dune exec bin/zkvc_cli.exe -- client prove --socket "$SOCK" --dims 4,4,8 \
        --backend "$BACKEND" --seed 7 | grep -q "cache hit" || {
        echo "ci: second prove should hit the key cache" >&2
        exit 1
    }
    # verify the served proof both on the server and offline via key file
    dune exec bin/zkvc_cli.exe -- client verify --socket "$SOCK" \
        --proof "$SERVE_TMP/$BACKEND.zkvp" | grep -q "verified: true" || {
        echo "ci: server-side verification failed" >&2
        exit 1
    }
    dune exec bin/zkvc_cli.exe -- verify --key "$SERVE_TMP/$BACKEND.zkvk" \
        --proof "$SERVE_TMP/$BACKEND.zkvp" | grep -q "verified: true" || {
        echo "ci: offline verification via key file failed" >&2
        exit 1
    }
done

dune exec bin/zkvc_cli.exe -- client status --socket "$SOCK" | tee "$SERVE_TMP/status.out"
grep -Eq "cache_hits=[1-9]" "$SERVE_TMP/status.out" || {
    echo "ci: status should report cache hits" >&2
    exit 1
}

echo "-- cross-process trace --"
# a traced prove: the client records its own spans, stitches the server's
# returned phase timings in, and prints the request id — which must then
# appear in BOTH the client's and (after shutdown) the server's trace
dune exec bin/zkvc_cli.exe -- client prove --socket "$SOCK" --dims 4,4,8 \
    --backend groth16 --seed 7 --trace "$SERVE_TMP/client-trace.json" \
    | tee "$SERVE_TMP/traced-prove.out"
RID=$(sed -n 's/^request //p' "$SERVE_TMP/traced-prove.out")
if [ -z "$RID" ]; then
    echo "ci: traced prove printed no request id" >&2
    exit 1
fi
grep -q "$RID" "$SERVE_TMP/client-trace.json" || {
    echo "ci: request id $RID missing from the client trace" >&2
    exit 1
}
grep -q "server.exec" "$SERVE_TMP/client-trace.json" || {
    echo "ci: server phases not stitched into the client trace" >&2
    exit 1
}

echo "-- flight recorder --"
# one JSONL record per executed job: (prove+keygen+prove+verify) x 2
# backends + the traced prove above
dune exec bin/zkvc_cli.exe -- client status --socket "$SOCK" --detail \
    > "$SERVE_TMP/detail.out" 2> "$SERVE_TMP/detail.err"
DETAIL_COUNT=$(wc -l < "$SERVE_TMP/detail.out")
if [ "$DETAIL_COUNT" -ne 9 ]; then
    echo "ci: expected 9 flight records, got $DETAIL_COUNT" >&2
    cat "$SERVE_TMP/detail.out" >&2
    exit 1
fi
grep -q "\"request_id\":\"$RID\"" "$SERVE_TMP/detail.out" || {
    echo "ci: traced request id missing from the flight dump" >&2
    exit 1
}

dune exec bin/zkvc_cli.exe -- client shutdown --socket "$SOCK"
wait "$SERVE_PID"

# shutdown flushed the same ring the live dump came from: byte-identical
cmp "$SERVE_TMP/detail.out" "$SERVE_TMP/flight.jsonl" || {
    echo "ci: flight file differs from the live status --detail dump" >&2
    exit 1
}

echo "-- metrics exposition --"
grep -Eq "^zkvc_serve_requests_total [1-9]" "$SERVE_TMP/metrics.prom" || {
    echo "ci: metrics snapshot missing a non-zero request counter" >&2
    cat "$SERVE_TMP/metrics.prom" >&2
    exit 1
}
# zkvc_cli top --file re-parses the snapshot against the exposition
# grammar and exits non-zero on any malformed line
dune exec bin/zkvc_cli.exe -- top --file "$SERVE_TMP/metrics.prom" > /dev/null || {
    echo "ci: metrics snapshot failed exposition validation" >&2
    exit 1
}
grep -q "$RID" "$SERVE_TMP/serve-trace.json" || {
    echo "ci: request id $RID missing from the server trace" >&2
    exit 1
}
if [ -S "$SOCK" ]; then
    echo "ci: socket file left behind after shutdown" >&2
    exit 1
fi
grep -q "serve.cache.hit" "$SERVE_TMP/serve.log" || {
    echo "ci: serve.cache.hit metric missing from the serve log" >&2
    cat "$SERVE_TMP/serve.log" >&2
    exit 1
}
echo "ci: proof service smoke ok ($SERVE_TMP)"

echo "== proof service smoke (--workers 2, concurrent clients) =="
# A fresh server instance with two worker threads: concurrent proves from
# separate clients must all complete, serve byte-identical proofs, and the
# metrics snapshot must expose the per-lane queue gauges.
# Concurrent `dune exec` invocations contend on dune's build lock and can
# stall one client behind the other, so this stage builds the CLI once and
# runs the binary directly for every concurrent invocation.
dune build bin/zkvc_cli.exe
ZKVC_BIN=_build/default/bin/zkvc_cli.exe
MW_TMP=$(mktemp -d /tmp/zkvc-serve-mw.XXXXXX)
MW_SOCK="$MW_TMP/zkvc.sock"
"$ZKVC_BIN" serve --socket "$MW_SOCK" --workers 2 \
    --metrics-file "$MW_TMP/metrics.prom" --metrics-interval 0.2 \
    > "$MW_TMP/serve.log" 2>&1 &
MW_PID=$!
i=0
while [ ! -S "$MW_SOCK" ] && [ "$i" -lt 100 ]; do
    sleep 0.1
    i=$((i + 1))
done
if [ ! -S "$MW_SOCK" ]; then
    echo "ci: multi-worker proof service did not come up" >&2
    cat "$MW_TMP/serve.log" >&2
    exit 1
fi

# two different circuits proved concurrently (each lands on its own worker)
"$ZKVC_BIN" client prove --socket "$MW_SOCK" --dims 4,4,8 \
    --backend spartan --seed 7 --out "$MW_TMP/a.zkvp" > "$MW_TMP/a.out" 2>&1 &
CLIENT_A=$!
"$ZKVC_BIN" client prove --socket "$MW_SOCK" --dims 4,8,4 \
    --backend spartan --seed 9 --out "$MW_TMP/b.zkvp" > "$MW_TMP/b.out" 2>&1 &
CLIENT_B=$!
wait "$CLIENT_A" || { echo "ci: concurrent prove A failed" >&2; cat "$MW_TMP/a.out" >&2; exit 1; }
wait "$CLIENT_B" || { echo "ci: concurrent prove B failed" >&2; cat "$MW_TMP/b.out" >&2; exit 1; }

# cache-miss proofs stay byte-identical to in-process proving under workers=2
"$ZKVC_BIN" prove --dims 4,4,8 --backend spartan --seed 7 \
    --out "$MW_TMP/a-local.zkvp" > /dev/null
cmp "$MW_TMP/a.zkvp" "$MW_TMP/a-local.zkvp" || {
    echo "ci: multi-worker served proof differs from the in-process proof" >&2
    exit 1
}

# concurrent verifies ride the priority lane; both must pass
"$ZKVC_BIN" client verify --socket "$MW_SOCK" \
    --proof "$MW_TMP/a.zkvp" > "$MW_TMP/va.out" 2>&1 &
VERIFY_A=$!
"$ZKVC_BIN" client verify --socket "$MW_SOCK" \
    --proof "$MW_TMP/b.zkvp" > "$MW_TMP/vb.out" 2>&1 &
VERIFY_B=$!
wait "$VERIFY_A" && wait "$VERIFY_B" || {
    echo "ci: concurrent verifies failed" >&2
    cat "$MW_TMP/va.out" "$MW_TMP/vb.out" >&2
    exit 1
}
grep -q "verified: true" "$MW_TMP/va.out" && grep -q "verified: true" "$MW_TMP/vb.out" || {
    echo "ci: concurrent verifies did not both verify" >&2
    exit 1
}

"$ZKVC_BIN" client status --socket "$MW_SOCK" | tee "$MW_TMP/status.out"
grep -Eq "workers=[0-9]+/2" "$MW_TMP/status.out" || {
    echo "ci: status should report the worker pool size" >&2
    exit 1
}

"$ZKVC_BIN" client shutdown --socket "$MW_SOCK"
wait "$MW_PID"

for METRIC in zkvc_serve_workers zkvc_serve_queue_depth_verify zkvc_serve_queue_depth_prove; do
    grep -q "^$METRIC " "$MW_TMP/metrics.prom" || {
        echo "ci: metrics snapshot missing $METRIC" >&2
        cat "$MW_TMP/metrics.prom" >&2
        exit 1
    }
done
grep -Eq "^zkvc_serve_workers 2(\.0+)?$" "$MW_TMP/metrics.prom" || {
    echo "ci: zkvc_serve_workers should report 2" >&2
    exit 1
}
echo "ci: multi-worker proof service smoke ok ($MW_TMP)"

echo "== adversary: bounded fault-injection sweep =="
# Bounded deterministic sweep: both backends, the cheap and the full CRPC
# encoding, one dimension scale. The seed is fixed and printed by the CLI
# so any accepted forgery reproduces with the printed repro line; the
# subcommand exits non-zero on any accepted forgery or verifier crash.
# (The full grid — all four strategies at two scales — runs in
# test/test_adversary.ml above.)
ADVERSARY_SEED=${ADVERSARY_SEED:-2024}
for BACKEND in groth16 spartan; do
    dune exec bin/zkvc_cli.exe -- adversary --seed "$ADVERSARY_SEED" \
        --backend "$BACKEND" --strategy vanilla --dims 2,2,2 || {
        echo "ci: adversary sweep found an accepted forgery ($BACKEND/vanilla)" >&2
        exit 1
    }
    dune exec bin/zkvc_cli.exe -- adversary --seed "$ADVERSARY_SEED" \
        --backend "$BACKEND" --strategy crpc+psq --dims 2,2,2 || {
        echo "ci: adversary sweep found an accepted forgery ($BACKEND/crpc+psq)" >&2
        exit 1
    }
done
# the same sweep against optimiser-transformed circuits: a pass that
# widened the acceptance set would surface here as an accepted forgery
dune exec bin/zkvc_cli.exe -- adversary --seed "$ADVERSARY_SEED" \
    --backend spartan --strategy crpc+psq --dims 2,2,2 --optimize || {
    echo "ci: adversary sweep found an accepted forgery on an optimised circuit" >&2
    exit 1
}
echo "ci: adversary sweep clean (seed=$ADVERSARY_SEED)"

echo "== amortised verification: batch + aggregate =="
# Offline round trip: one vanilla key reused across seeds (prove --key), a
# batched verify (one combined check for all members), a SnarkPack-style
# aggregate and its verification — then the failure paths: a member whose
# trailing Groth16 proof bytes were spliced from another statement (the
# combined check must sink and the per-item fallback must isolate it), and
# an SRS-seed mismatch (the KZG checks on the structured commitment keys
# must reject).
AGG_TMP=$(mktemp -d /tmp/zkvc-agg-ci.XXXXXX)
"$ZKVC_BIN" keygen --backend groth16 --strategy vanilla --dims 2,2,2 \
    --seed 41 --out "$AGG_TMP/k.zkvk" > /dev/null
BATCH_ARGS=""
for S in 41 42 43 44; do
    "$ZKVC_BIN" prove --key "$AGG_TMP/k.zkvk" --seed "$S" \
        --out "$AGG_TMP/p$S.zkvp" > /dev/null
    BATCH_ARGS="$BATCH_ARGS --batch $AGG_TMP/p$S.zkvp"
done
# shellcheck disable=SC2086
"$ZKVC_BIN" verify --key "$AGG_TMP/k.zkvk" $BATCH_ARGS | tee "$AGG_TMP/batch.out"
grep -q "batch of 4: batched" "$AGG_TMP/batch.out" || {
    echo "ci: batched verify should take the combined path" >&2
    exit 1
}
[ "$(grep -c "verified: true" "$AGG_TMP/batch.out")" = 4 ] || {
    echo "ci: batched verify should accept all four members" >&2
    exit 1
}
"$ZKVC_BIN" aggregate --key "$AGG_TMP/k.zkvk" --srs-seed 99 \
    --out "$AGG_TMP/agg.zkva" \
    "$AGG_TMP/p41.zkvp" "$AGG_TMP/p42.zkvp" "$AGG_TMP/p43.zkvp" "$AGG_TMP/p44.zkvp"
"$ZKVC_BIN" verify --key "$AGG_TMP/k.zkvk" --aggregate "$AGG_TMP/agg.zkva" \
    --srs-seed 99 | grep -q "verified: true" || {
    echo "ci: aggregate verification failed" >&2
    exit 1
}
if "$ZKVC_BIN" verify --key "$AGG_TMP/k.zkvk" --aggregate "$AGG_TMP/agg.zkva" \
    --srs-seed 7 > "$AGG_TMP/srs.out" 2>&1; then
    echo "ci: aggregate verified under the wrong SRS seed" >&2
    exit 1
fi
grep -q "verified: false" "$AGG_TMP/srs.out" || {
    echo "ci: wrong-SRS rejection should be a false verdict, not a crash" >&2
    cat "$AGG_TMP/srs.out" >&2
    exit 1
}
PROOF_LEN=$(wc -c < "$AGG_TMP/p41.zkvp")
head -c $((PROOF_LEN - 259)) "$AGG_TMP/p41.zkvp" > "$AGG_TMP/bad.zkvp"
tail -c 259 "$AGG_TMP/p42.zkvp" >> "$AGG_TMP/bad.zkvp"
if "$ZKVC_BIN" verify --key "$AGG_TMP/k.zkvk" --batch "$AGG_TMP/bad.zkvp" \
    --batch "$AGG_TMP/p42.zkvp" --batch "$AGG_TMP/p43.zkvp" \
    > "$AGG_TMP/fallback.out" 2>&1; then
    echo "ci: batch with a spliced member should exit non-zero" >&2
    exit 1
fi
grep -q "bad.zkvp: verified: false" "$AGG_TMP/fallback.out" \
    && grep -q "p42.zkvp: verified: true" "$AGG_TMP/fallback.out" \
    && grep -q "batch of 3: fallback" "$AGG_TMP/fallback.out" || {
    echo "ci: batch fallback should isolate the spliced member" >&2
    cat "$AGG_TMP/fallback.out" >&2
    exit 1
}

# server side: --batch-aggregate coalesces same-key Batch_verify members
# into one aggregated check; the counters must land in the Prometheus
# snapshot
AGG_SOCK="$AGG_TMP/zkvc.sock"
"$ZKVC_BIN" serve --socket "$AGG_SOCK" --batch-aggregate --metrics \
    --metrics-file "$AGG_TMP/metrics.prom" --metrics-interval 0.2 \
    > "$AGG_TMP/serve.log" 2>&1 &
AGG_PID=$!
i=0
while [ ! -S "$AGG_SOCK" ] && [ "$i" -lt 100 ]; do
    sleep 0.1
    i=$((i + 1))
done
if [ ! -S "$AGG_SOCK" ]; then
    echo "ci: batch-aggregate proof service did not come up" >&2
    cat "$AGG_TMP/serve.log" >&2
    exit 1
fi
SRV_BATCH_ARGS=""
for S in 11 12 13; do
    "$ZKVC_BIN" client prove --socket "$AGG_SOCK" --dims 2,2,2 \
        --backend groth16 --strategy vanilla --seed "$S" \
        --out "$AGG_TMP/s$S.zkvp" > /dev/null
    SRV_BATCH_ARGS="$SRV_BATCH_ARGS --batch $AGG_TMP/s$S.zkvp"
done
# shellcheck disable=SC2086
"$ZKVC_BIN" client verify --socket "$AGG_SOCK" $SRV_BATCH_ARGS \
    | tee "$AGG_TMP/srv-batch.out"
[ "$(grep -c "verified: true" "$AGG_TMP/srv-batch.out")" = 3 ] || {
    echo "ci: server-side batch verify should accept all three members" >&2
    exit 1
}
sleep 0.5
"$ZKVC_BIN" client shutdown --socket "$AGG_SOCK" > /dev/null
wait "$AGG_PID"
grep -Eq "^zkvc_serve_batch_aggregated_total [1-9]" "$AGG_TMP/metrics.prom" || {
    echo "ci: serve.batch.aggregated should have fired under --batch-aggregate" >&2
    cat "$AGG_TMP/metrics.prom" >&2
    exit 1
}
grep -Eq "^zkvc_serve_batch_groups_total [1-9]" "$AGG_TMP/metrics.prom" || {
    echo "ci: serve.batch.groups counter missing from the metrics snapshot" >&2
    exit 1
}
# the adversary families covering these paths (one-bad-member isolation,
# statement swaps, aggregate tampering, frame bit flips) at the CI seed
"$ZKVC_BIN" adversary --seed "$ADVERSARY_SEED" --backend groth16 \
    --strategy vanilla --dims 2,2,2 --only batch. || {
    echo "ci: adversary batch family found an accepted forgery" >&2
    exit 1
}
"$ZKVC_BIN" adversary --seed "$ADVERSARY_SEED" --backend groth16 \
    --strategy vanilla --dims 2,2,2 --only aggregate. || {
    echo "ci: adversary aggregate family found an accepted forgery" >&2
    exit 1
}
echo "ci: batch + aggregate round trip ok ($AGG_TMP)"

echo "-- amortisation gate vs BENCH_0010.json --"
# same agg bench that produced the committed baseline: batch-nN rows carry
# per-proof individual verify in setup_s and per-proof batched verify in
# verify_s, so perf_diff gates both against BENCH_0010.json, and the awk
# below asserts the headline claim on the fresh run — at N=16 the batched
# per-proof cost beats the individual per-proof cost on both backends
BENCH_AGG_JSON=${BENCH_AGG_JSON:-/tmp/bench-agg.json}
rm -f "$BENCH_AGG_JSON"
dune exec bench/main.exe -- --only agg --scale 16 --repeat 3 --jobs 1 \
    --agg-max 16 --json "$BENCH_AGG_JSON"
AGG_BASELINE=${AGG_BASELINE:-BENCH_0010.json}
if [ ! -s "$AGG_BASELINE" ]; then
    echo "ci: amortisation baseline report missing: $AGG_BASELINE" >&2
    exit 1
fi
AGG_BASE_NPROC=$(json_nproc "$AGG_BASELINE")
if [ "$AGG_BASE_NPROC" = "$(json_nproc "$BENCH_AGG_JSON")" ]; then
    dune exec tools/perf_diff.exe -- "$AGG_BASELINE" "$BENCH_AGG_JSON"
else
    echo "ci: amortisation baseline nproc=$AGG_BASE_NPROC differs; cost ledger only"
    dune exec tools/perf_diff.exe -- --skip-time "$AGG_BASELINE" "$BENCH_AGG_JSON"
fi
awk '
/"scheme": "batch-n16"/ { want = 1 }
want && /^      "setup_s":/ { ind = $2 + 0 }
want && /^      "verify_s":/ {
    per = $2 + 0
    if (!(per < ind)) {
        printf "ci: batch-n16 per-proof %.4fs is not cheaper than individual %.4fs\n", per, ind
        exit 1
    }
    rows += 1
    want = 0
}
END { if (rows < 2) { print "ci: expected a batch-n16 row per backend"; exit 1 } }' \
    "$BENCH_AGG_JSON" || exit 1
echo "ci: amortisation gate ok ($BENCH_AGG_JSON)"

echo "ci: ok ($BENCH_JSON, $BENCH_JSON_PAR)"
