#!/bin/sh
# CI entry point: full build, tier-1 test suites, and a smoke bench run
# that must produce a non-empty machine-readable report.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== smoke bench (tab2, scale 16) =="
BENCH_JSON=${BENCH_JSON:-/tmp/bench.json}
rm -f "$BENCH_JSON"
dune exec bench/main.exe -- --only tab2 --scale 16 --json "$BENCH_JSON"

if [ ! -s "$BENCH_JSON" ]; then
    echo "ci: bench json report missing or empty: $BENCH_JSON" >&2
    exit 1
fi
echo "ci: ok ($BENCH_JSON $(wc -c < "$BENCH_JSON") bytes)"
