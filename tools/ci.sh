#!/bin/sh
# CI entry point: full build, tier-1 test suites at two job counts, a
# paired smoke bench (sequential vs parallel) that must produce non-empty
# machine-readable reports and a sane speedup ratio, and a noise-aware
# perf gate that diffs the sequential smoke report against the committed
# baseline (BENCH_0003.json) with tools/perf_diff.
set -eu

cd "$(dirname "$0")/.."

NPROC=$(nproc 2>/dev/null || echo 1)

echo "== dune build =="
dune build

echo "== dune runtest (jobs=1) =="
ZKVC_JOBS=1 dune runtest --force

echo "== dune runtest (jobs=max, nproc=$NPROC) =="
ZKVC_JOBS=0 dune runtest --force

echo "== smoke bench (tab2, scale 16, repeat 3, jobs=1 vs jobs=max) =="
BENCH_JSON=${BENCH_JSON:-/tmp/bench.json}
BENCH_JSON_PAR=${BENCH_JSON_PAR:-/tmp/bench-par.json}
rm -f "$BENCH_JSON" "$BENCH_JSON_PAR"
dune exec bench/main.exe -- --only tab2 --scale 16 --repeat 3 --jobs 1 --json "$BENCH_JSON"
dune exec bench/main.exe -- --only tab2 --scale 16 --repeat 3 --jobs 0 --json "$BENCH_JSON_PAR"

for f in "$BENCH_JSON" "$BENCH_JSON_PAR"; do
    if [ ! -s "$f" ]; then
        echo "ci: bench json report missing or empty: $f" >&2
        exit 1
    fi
done

# total proving seconds across the report's measurement rows
sum_prove() {
    awk -F: '/"prove_s"/ { gsub(/[ ,]/, "", $2); s += $2 } END { printf "%.6f", s }' "$1"
}
SEQ=$(sum_prove "$BENCH_JSON")
PAR=$(sum_prove "$BENCH_JSON_PAR")
echo "ci: prove totals  jobs=1 ${SEQ}s  jobs=max ${PAR}s"

if [ "$NPROC" -le 1 ]; then
    # single-core runner: worker domains timeshare one CPU, so no speedup
    # is possible; determinism and correctness were still exercised above
    echo "ci: nproc=1, skipping the parallel-not-slower assertion"
else
    # tolerate noise but catch pathological slowdowns from the pool
    awk -v seq="$SEQ" -v par="$PAR" 'BEGIN {
        if (par > seq * 1.25) {
            printf "ci: parallel bench slower than sequential (%.3fs vs %.3fs)\n", par, seq
            exit 1
        }
    }' </dev/null
fi

echo "== perf gate: tools/perf_diff vs committed baseline =="
BASELINE=${BASELINE:-BENCH_0003.json}
if [ ! -s "$BASELINE" ]; then
    echo "ci: baseline report missing: $BASELINE" >&2
    exit 1
fi

# env.nproc of a report (first "nproc" field in the file)
json_nproc() {
    grep -o '"nproc": *[0-9]*' "$1" | head -n 1 | grep -o '[0-9]*$'
}
BASE_NPROC=$(json_nproc "$BASELINE")
RUN_NPROC=$(json_nproc "$BENCH_JSON")

if [ "$BASE_NPROC" = "$RUN_NPROC" ]; then
    dune exec tools/perf_diff.exe -- "$BASELINE" "$BENCH_JSON"
else
    # wall times from a different core count are not comparable, but the
    # cost ledger is deterministic: constraint counts must never drift
    echo "ci: baseline nproc=$BASE_NPROC, runner nproc=$RUN_NPROC;"
    echo "ci: skipping wall-time comparison, still checking cost-ledger equality"
    dune exec tools/perf_diff.exe -- --skip-time "$BASELINE" "$BENCH_JSON"
fi

echo "ci: ok ($BENCH_JSON, $BENCH_JSON_PAR)"
