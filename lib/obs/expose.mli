(** Prometheus text-format exposition over the {!Metrics} registry.

    {!render} serialises every registered instrument: counters as
    [<ns>_<name>_total], set gauges as gauges, histograms as summaries
    with [quantile]-labelled samples (0.5 / 0.9 / 0.99 over the retained
    reservoir) plus exact [_sum] and [_count]. Names are sanitised to
    [[a-zA-Z0-9_]] and prefixed with the namespace (default ["zkvc"]),
    so ["serve.queue.wait_s"] exposes as [zkvc_serve_queue_wait_s].

    {!parse} validates and decodes the subset of the exposition format
    this renderer emits (comments, blank lines, optional label sets,
    optional trailing timestamp) — used by [zkvc_cli top] and the ci
    round-trip check. *)

val default_namespace : string

val render : ?namespace:string -> unit -> string

(** A float as the exposition format spells it: round-trippable
    [%.17g], with [NaN] / [+Inf] / [-Inf] for the specials. *)
val float_str : float -> string

(** One sample line: metric name, label pairs in order, value. *)
type sample = { metric : string; labels : (string * string) list; value : float }

(** [parse text] decodes exposition text into samples, or [Error msg]
    naming the first offending line. *)
val parse : string -> (sample list, string) result

(** [write_snapshot ~path text] writes [text] to [path] atomically
    (write to [path ^ ".tmp"], then rename) so concurrent readers never
    observe a partial snapshot. *)
val write_snapshot : path:string -> string -> unit
