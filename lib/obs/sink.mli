(** Global recording switch for the observability layer. Spans and metrics
    are only captured while the sink is enabled; instrumentation sites
    check the flag with a single load so the disabled path stays free. *)

(** The raw flag. Exposed so hot loops can hoist the dereference; treat as
    read-only outside this library and flip it via [enable]/[disable]. *)
val enabled : bool ref

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

(** Run [f] with the sink enabled, restoring the previous state after
    (including on exceptions). *)
val with_enabled : (unit -> 'a) -> 'a
