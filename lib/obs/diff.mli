(** Noise-aware comparison of two {!Report} files (old baseline vs new
    run) — the logic behind [tools/perf_diff] and the CI regression gate.

    Measurements are matched by {!Report.key}. Wall-time comparison is
    deliberately forgiving: a prove-time increase only counts as a
    regression when the delta exceeds [max (threshold ·. old) (k ·. MAD)],
    where MAD is the larger of the two runs' median absolute deviations —
    so a single noisy rep cannot fail CI, but a real slowdown (the
    acceptance bar is 2×) always does. The cost ledger's deterministic
    fields (constraints, variables, nonzeros, witness length) are compared
    for {e exact equality} regardless of [check_time]: constraint counts
    must never drift silently. When both measurements carry a
    constraint-provenance tree (zkvc-bench/3 [regions]), per-region
    structural counts are held to the same exact-equality bar and a
    drift note names the owning region; region comparison is skipped
    when either side lacks the tree (v2 baselines keep comparing). GC
    fields ([top_heap_words], [major_collections]) are reported but
    never gate. *)

type verdict =
  | Ok_within_noise  (** |delta| inside the noise band *)
  | Improved  (** faster by more than the band *)
  | Regressed  (** slower by more than the band *)
  | Ledger_drift  (** deterministic cost-ledger fields differ *)
  | Only_old  (** key present only in the old report *)
  | Only_new  (** key present only in the new report *)

val verdict_name : verdict -> string

(** [gating v] is true when [v] must fail the gate ([Regressed],
    [Ledger_drift]). Missing/new keys are reported but do not fail: the
    bench legitimately grows and shrinks sections across PRs. *)
val gating : verdict -> bool

type entry =
  { key : string;
    verdict : verdict;
    old_prove_s : float;  (** NaN when [Only_new] *)
    new_prove_s : float;  (** NaN when [Only_old] *)
    delta_s : float;  (** new − old; NaN when either side is missing *)
    band_s : float;  (** allowed half-width: max(threshold·old, k·MAD) *)
    notes : string list  (** human-readable detail, e.g. drifted fields *)
  }

type result =
  { entries : entry list;  (** old-report order, then new-only keys *)
    regressions : int;
    drifts : int;
    ok : bool  (** no gating verdict present *) }

(** [compare_reports ~old_ ~new_]. [threshold] (default [0.25]) is the
    relative wall-time tolerance; [k] (default [4.]) scales the MAD term;
    [floor_s] (default [0.005]) is an absolute lower bound on the band so
    microsecond-scale measurements never gate; [check_time] (default
    [true]) — when false, skip the wall-time comparison entirely (CI sets
    this when the runner's core count differs from the baseline's) while
    still enforcing ledger equality. *)
val compare_reports :
  ?threshold:float ->
  ?k:float ->
  ?floor_s:float ->
  ?check_time:bool ->
  old_:Report.t ->
  new_:Report.t ->
  unit ->
  result

(** JSON verdict for machine consumers: schema ["zkvc-perf-diff/1"]. *)
val result_to_json : result -> Json.t

(** Human-readable table (one line per entry plus a summary line). *)
val result_to_string : result -> string
