(* Minimal self-contained JSON: just enough for the exporters and the
   bench report, with a parser so tests can round-trip what we emit. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing                                                            *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s -> escape_string b s
  | List l ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        emit b v)
      l;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_string b k;
        Buffer.add_char b ':';
        emit b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b v;
  Buffer.contents b

let rec emit_pretty b indent = function
  | List (_ :: _ as l) ->
    let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
    Buffer.add_string b "[\n";
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b pad';
        emit_pretty b (indent + 2) v)
      l;
    Buffer.add_char b '\n';
    Buffer.add_string b pad;
    Buffer.add_char b ']'
  | Obj (_ :: _ as kvs) ->
    let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
    Buffer.add_string b "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b pad';
        escape_string b k;
        Buffer.add_string b ": ";
        emit_pretty b (indent + 2) v)
      kvs;
    Buffer.add_char b '\n';
    Buffer.add_string b pad;
    Buffer.add_char b '}'
  | v -> emit b v

let to_string_pretty v =
  let b = Buffer.create 256 in
  emit_pretty b 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* parsing (recursive descent)                                         *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let skip_ws st =
  while
    st.pos < String.length st.src
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c = c' -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let parse_literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st ("expected " ^ word)

let parse_string_body st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
      st.pos <- st.pos + 1;
      (match peek st with
       | Some '"' -> Buffer.add_char b '"'; st.pos <- st.pos + 1
       | Some '\\' -> Buffer.add_char b '\\'; st.pos <- st.pos + 1
       | Some '/' -> Buffer.add_char b '/'; st.pos <- st.pos + 1
       | Some 'n' -> Buffer.add_char b '\n'; st.pos <- st.pos + 1
       | Some 'r' -> Buffer.add_char b '\r'; st.pos <- st.pos + 1
       | Some 't' -> Buffer.add_char b '\t'; st.pos <- st.pos + 1
       | Some 'b' -> Buffer.add_char b '\b'; st.pos <- st.pos + 1
       | Some 'f' -> Buffer.add_char b '\012'; st.pos <- st.pos + 1
       | Some 'u' ->
         if st.pos + 5 > String.length st.src then fail st "truncated \\u escape";
         let hex = String.sub st.src (st.pos + 1) 4 in
         let code =
           try int_of_string ("0x" ^ hex) with _ -> fail st "bad \\u escape"
         in
         (* we only emit \u for control characters; decode the BMP subset
            we could ever see back to bytes (ASCII range) *)
         if code < 0x80 then Buffer.add_char b (Char.chr code)
         else begin
           (* minimal UTF-8 encoding for completeness *)
           if code < 0x800 then begin
             Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
         end;
         st.pos <- st.pos + 5
       | _ -> fail st "bad escape");
      go ()
    | Some c -> Buffer.add_char b c; st.pos <- st.pos + 1; go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let continue = ref true in
  while !continue do
    match peek st with
    | Some ('0' .. '9' | '-' | '+') -> st.pos <- st.pos + 1
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      st.pos <- st.pos + 1
    | _ -> continue := false
  done;
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st "bad float literal"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None ->
      (match float_of_string_opt text with
       | Some f -> Float f
       | None -> fail st "bad number literal")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some '"' -> String (parse_string_body st)
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin st.pos <- st.pos + 1; List [] end
    else begin
      let items = ref [] in
      let rec go () =
        items := parse_value st :: !items;
        skip_ws st;
        match peek st with
        | Some ',' -> st.pos <- st.pos + 1; go ()
        | Some ']' -> st.pos <- st.pos + 1
        | _ -> fail st "expected ',' or ']'"
      in
      go ();
      List (List.rev !items)
    end
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin st.pos <- st.pos + 1; Obj [] end
    else begin
      let items = ref [] in
      let rec go () =
        skip_ws st;
        let k = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        items := (k, v) :: !items;
        skip_ws st;
        match peek st with
        | Some ',' -> st.pos <- st.pos + 1; go ()
        | Some '}' -> st.pos <- st.pos + 1
        | _ -> fail st "expected ',' or '}'"
      in
      go ();
      Obj (List.rev !items)
    end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then Error "trailing data after JSON value"
    else Ok v
  | exception Parse_error msg -> Error msg

let of_string_exn s =
  match of_string s with Ok v -> v | Error msg -> invalid_arg ("Json.of_string_exn: " ^ msg)

(* ------------------------------------------------------------------ *)
(* accessors used by tests and the bench report                        *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_list_opt = function List l -> Some l | _ -> None

let to_number_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
