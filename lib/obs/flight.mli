(** Fixed-size flight recorder: a lock-free ring retaining the last
    [capacity] records pushed. Built for "what were the last N requests
    doing" diagnostics: writers pay one atomic fetch-and-add plus a store,
    and a reader's {!snapshot} may be at most one record stale under a
    concurrent writer (every observed record is complete — there are no
    torn reads, records are boxed). *)

type 'a t

(** [create ~capacity] makes an empty ring. @raise Invalid_argument when
    [capacity <= 0]. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int

(** Append, overwriting the oldest record once the ring is full. *)
val record : 'a t -> 'a -> unit

(** Records currently retained: [min (total t) (capacity t)]. *)
val length : 'a t -> int

(** Total records ever written (monotone; exceeds [capacity] once the
    ring has wrapped). *)
val total : 'a t -> int

(** Retained records, oldest first. *)
val snapshot : 'a t -> 'a list
