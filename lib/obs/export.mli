(** Exporters for recorded spans.

    - {!tree_to_string}: indented human-readable tree with per-span
      duration and allocation;
    - {!to_jsonl}: one JSON object per span, pre-order, with [path] and
      [depth] fields;
    - {!to_chrome_trace}: Chrome [trace_event] JSON ("X" complete events,
      microsecond timestamps) loadable in chrome://tracing or Perfetto. *)

val tree_to_string : Span.t list -> string

val to_jsonl : Span.t list -> string

val to_chrome_trace : Span.t list -> Json.t

(** Write [contents] to [path], truncating. *)
val write_file : string -> string -> unit

(** [write_chrome_trace path spans] = compact {!to_chrome_trace} to a file. *)
val write_chrome_trace : string -> Span.t list -> unit
