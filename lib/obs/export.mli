(** Exporters for recorded spans.

    - {!tree_to_string}: indented human-readable tree with per-span
      duration and allocation;
    - {!to_jsonl}: one JSON object per span, pre-order, with [path],
      [depth], [tid] and (when set) [args] fields;
    - {!to_chrome_trace}: Chrome [trace_event] JSON ("X" complete events,
      microsecond timestamps) loadable in chrome://tracing or Perfetto.
      Each event's [tid] is the span's recording domain ({!Span.domain_id}),
      so concurrent-domain and stitched remote spans keep their own rows,
      and span attributes (e.g. request ids) are emitted in [args]. *)

val tree_to_string : Span.t list -> string

val to_jsonl : Span.t list -> string

val to_chrome_trace : Span.t list -> Json.t

(** Write [contents] to [path], truncating. *)
val write_file : string -> string -> unit

(** [write_chrome_trace path spans] = compact {!to_chrome_trace} to a file. *)
val write_chrome_trace : string -> Span.t list -> unit
