(* Prometheus text exposition over the Metrics registry.

   Counters render as `<name>_total`, gauges as-is, histograms as
   summaries: quantile-labelled sample lines (0.5 / 0.9 / 0.99 over the
   retained reservoir) plus exact `_sum` and `_count`. Metric names are
   sanitised into the prometheus alphabet and prefixed with the
   namespace, so `serve.queue.wait_s` becomes
   `zkvc_serve_queue_wait_s`. [parse] accepts the subset this renderer
   emits (plus arbitrary label sets), enough for `zkvc_cli top` and the
   ci round-trip check to validate snapshots without a real scraper. *)

let default_namespace = "zkvc"

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let sanitize ~namespace name =
  let b = Buffer.create (String.length name + String.length namespace + 1) in
  if namespace <> "" then begin
    Buffer.add_string b namespace;
    Buffer.add_char b '_'
  end;
  String.iter (fun c -> Buffer.add_char b (if is_name_char c then c else '_')) name;
  let s = Buffer.contents b in
  (* a leading digit is not a valid metric-name start *)
  if s <> "" && s.[0] >= '0' && s.[0] <= '9' then "_" ^ s else s

(* %.17g round-trips any float; prometheus accepts the usual spellings
   of the specials. *)
let float_str v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.17g" v

let quantiles = [ 0.5; 0.9; 0.99 ]

let render ?(namespace = default_namespace) () =
  let b = Buffer.create 1024 in
  List.iter
    (fun c ->
      let n = sanitize ~namespace (c.Metrics.c_name ^ "_total") in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" n);
      Buffer.add_string b (Printf.sprintf "%s %d\n" n (Metrics.counter_value c)))
    (Metrics.all_counters ());
  List.iter
    (fun (name, v) ->
      let n = sanitize ~namespace name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" n);
      Buffer.add_string b (Printf.sprintf "%s %s\n" n (float_str v)))
    (Metrics.all_gauges ());
  List.iter
    (fun h ->
      let n = sanitize ~namespace (Metrics.hist_name h) in
      Buffer.add_string b (Printf.sprintf "# TYPE %s summary\n" n);
      List.iter
        (fun q ->
          match Metrics.percentile h (q *. 100.) with
          | Some v ->
            Buffer.add_string b
              (Printf.sprintf "%s{quantile=\"%g\"} %s\n" n q (float_str v))
          | None -> ())
        quantiles;
      Buffer.add_string b (Printf.sprintf "%s_sum %s\n" n (float_str (Metrics.hist_sum h)));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n (Metrics.hist_count h)))
    (Metrics.all_histograms ());
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* parser                                                              *)

type sample = { metric : string; labels : (string * string) list; value : float }

let is_blank line =
  let n = String.length line in
  let rec go i = i >= n || ((line.[i] = ' ' || line.[i] = '\t') && go (i + 1)) in
  go 0

(* `name{k="v",...} value` — labels are optional; values are anything
   [float_of_string] takes plus the prometheus spellings of infinity. *)
let parse_value s =
  match String.lowercase_ascii s with
  | "+inf" | "inf" -> Some Float.infinity
  | "-inf" -> Some Float.neg_infinity
  | "nan" -> Some Float.nan
  | _ -> float_of_string_opt s

let parse_labels ~lineno s =
  (* s is the inside of the braces *)
  let err fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt in
  let n = String.length s in
  let buf = Buffer.create 16 in
  let rec pairs i acc =
    if i >= n then Ok (List.rev acc)
    else begin
      (* label name *)
      let j = ref i in
      while !j < n && is_name_char s.[!j] do incr j done;
      if !j = i then err "empty label name"
      else if !j >= n || s.[!j] <> '=' then err "expected '=' after label name"
      else begin
        let name = String.sub s i (!j - i) in
        let k = !j + 1 in
        if k >= n || s.[k] <> '"' then err "expected '\"' opening label value"
        else begin
          Buffer.clear buf;
          let rec value i =
            if i >= n then err "unterminated label value"
            else
              match s.[i] with
              | '"' -> Ok (i + 1)
              | '\\' when i + 1 < n ->
                (match s.[i + 1] with
                 | 'n' -> Buffer.add_char buf '\n'
                 | c -> Buffer.add_char buf c);
                value (i + 2)
              | c ->
                Buffer.add_char buf c;
                value (i + 1)
          in
          match value (k + 1) with
          | Error _ as e -> e
          | Ok after ->
            let acc = (name, Buffer.contents buf) :: acc in
            if after >= n then Ok (List.rev acc)
            else if s.[after] = ',' then pairs (after + 1) acc
            else err "expected ',' between labels"
        end
      end
    end
  in
  pairs 0 []

let parse_line ~lineno line =
  let err fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt in
  let n = String.length line in
  let i = ref 0 in
  while !i < n && is_name_char line.[!i] do incr i done;
  if !i = 0 then err "expected metric name"
  else begin
    let metric = String.sub line 0 !i in
    let labels_res =
      if !i < n && line.[!i] = '{' then begin
        match String.index_from_opt line !i '}' with
        | None -> err "unterminated label set"
        | Some close ->
          let inner = String.sub line (!i + 1) (close - !i - 1) in
          i := close + 1;
          parse_labels ~lineno inner
      end
      else Ok []
    in
    match labels_res with
    | Error _ as e -> e
    | Ok labels ->
      if !i >= n || line.[!i] <> ' ' then err "expected ' ' before value"
      else begin
        let rest = String.trim (String.sub line !i (n - !i)) in
        (* a trailing timestamp (second field) is legal exposition; we
           only require the value *)
        let value_str =
          match String.index_opt rest ' ' with
          | Some sp -> String.sub rest 0 sp
          | None -> rest
        in
        match parse_value value_str with
        | Some value -> Ok { metric; labels; value }
        | None -> err "bad sample value %S" value_str
      end
  end

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      if is_blank line || (String.length line > 0 && line.[0] = '#') then
        go (lineno + 1) acc rest
      else begin
        match parse_line ~lineno line with
        | Ok s -> go (lineno + 1) (s :: acc) rest
        | Error _ as e -> e
      end
  in
  go 1 [] lines

(* ------------------------------------------------------------------ *)

(* Write-then-rename so a scraper reading [path] never sees a torn
   snapshot. The tmp file sits in the same directory, so the rename
   stays within one filesystem. *)
let write_snapshot ~path text =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text);
  Sys.rename tmp path
