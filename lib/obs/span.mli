(** Hierarchical span tracing: nestable named regions capturing wall time
    plus allocation statistics from [Gc.quick_stat].

    The span stack is implicit, reentrant and scoped per (domain,
    context): every domain (including [Zkvc_parallel] workers) records
    into its own registry, and within a domain an installable context id
    ({!set_context}, default [0]) further splits the stack — the proof
    service installs [Thread.id] so concurrent worker systhreads don't
    corrupt one another's nesting. {!last_completed} and {!depth} read
    the calling context's state; {!roots} merges every context of the
    calling domain in creation order. Spans opened on worker domains are
    therefore invisible to exporters running on the coordinating domain —
    the supported pattern is to open spans on the coordinator around
    parallel regions, which is what the instrumented kernels do. While
    the {!Sink} is disabled, [with_span] costs one flag check and
    allocates no span records. *)

type t

(** [with_span name f] runs [f], recording a span named [name] nested
    under the innermost open span (or as a new root) when the sink is
    enabled; otherwise it is a direct call of [f]. Exceptions close the
    span and propagate. [args] attaches free-form string attributes
    (e.g. [("request_id", hex)]) that exporters carry through. *)
val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Graft an already-completed span observed elsewhere (e.g. server-side
    phase timings stitched into a client trace) under the innermost open
    span, or as a root. [start_s]/[dur_s] are absolute readings in this
    process's span clock; [domain] overrides the Chrome-trace track id so
    remote spans render on their own row (defaults to the calling
    domain). No-op while the sink is disabled. *)
val add_external :
  name:string ->
  start_s:float ->
  dur_s:float ->
  ?args:(string * string) list ->
  ?domain:int ->
  unit ->
  unit

(** Whether spans are currently being recorded (the sink is enabled). *)
val recording : unit -> bool

(** Install the per-domain context id used to pick the span stack.
    Defaults to [fun () -> 0] (one stack per domain). A server running
    several worker systhreads in one domain installs
    [fun () -> Thread.id (Thread.self ())] so each thread records onto
    its own stack; spans from non-default contexts render on synthetic
    Chrome track [1000 + context]. The function must be cheap and
    stable per thread. *)
val set_context : (unit -> int) -> unit

(** Drop all recorded roots, every context's open-span stack in the
    calling domain, and the sequence counter. *)
val reset : unit -> unit

(** Clock used for span timestamps; defaults to [Sys.time]. Binaries
    should install a wall clock ([Unix.gettimeofday], or the bench's
    monotonic clock) — process CPU time sums across domains and would
    misreport parallel phases. Install before spawning workers. *)
val set_clock : (unit -> float) -> unit

(** Read the currently installed clock (used by [Api.run] timings so
    measurements agree with span data even when the sink is off). *)
val now : unit -> float

(** {2 Read side} *)

val name : t -> string

(** Attributes given at open (or to {!add_external}); [[]] when none. *)
val args : t -> (string * string) list

(** Domain the span was recorded on (or the synthetic track passed to
    {!add_external}); exporters use it as a stable per-domain [tid]. *)
val domain_id : t -> int

(** Seconds between open and close. *)
val duration_s : t -> float

(** Absolute clock reading at open (exporters normalise to the first root). *)
val start_s : t -> float

(** Words allocated in the minor heap during the span. *)
val minor_words : t -> float

(** Words allocated directly in the major heap (promotions excluded). *)
val major_words : t -> float

(** Completed children, oldest first. *)
val children : t -> t list

(** Completed top-level spans, oldest first. *)
val roots : unit -> t list

(** The most recently closed span at any depth — immediately after a
    toplevel [with_span] returns, this is that span. *)
val last_completed : unit -> t option

(** Number of currently open spans (0 outside any [with_span]). *)
val depth : unit -> int

(** Depth-first search by name under a span / under all roots. *)
val find_rec : t -> string -> t option

val find_root : string -> t option
