(* Fixed-size flight recorder: a lock-free ring of the last [capacity]
   records. Writers claim a slot with one [Atomic.fetch_and_add] and then
   store the boxed record; readers snapshot by walking the ring oldest to
   newest. A reader racing a writer can observe the slot either before or
   after the overwrite — both are complete records, so the worst case is
   a snapshot that is one record stale, which is fine for a diagnostics
   ring. Slots hold ['a option] so an unwritten slot is distinguishable
   without a sentinel value. *)

type 'a t =
  { slots : 'a option array;
    cursor : int Atomic.t (* total records ever written *) }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Flight.create: capacity must be positive";
  { slots = Array.make capacity None; cursor = Atomic.make 0 }

let capacity t = Array.length t.slots

let record t x =
  let i = Atomic.fetch_and_add t.cursor 1 in
  t.slots.(i mod Array.length t.slots) <- Some x

(* Total records ever written (monotone, may exceed [capacity]). *)
let total t = Atomic.get t.cursor

let length t = Stdlib.min (total t) (Array.length t.slots)

(* Retained records, oldest first. Reads the cursor once; concurrent
   writes may have replaced the oldest slots by the time they are read,
   in which case the newer record appears in the "old" position — still a
   valid record, just newer than its neighbours. *)
let snapshot t =
  let cap = Array.length t.slots in
  let n = Atomic.get t.cursor in
  let first = if n <= cap then 0 else n - cap in
  let acc = ref [] in
  for i = n - 1 downto first do
    match t.slots.(i mod cap) with
    | Some x -> acc := x :: !acc
    | None -> () (* writer claimed the slot but has not stored yet *)
  done;
  !acc
