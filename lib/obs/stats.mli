(** Robust statistics for repeated timing measurements, shared by the
    bench harness (per-measurement summaries in {!Report}) and the
    perf-trajectory differ ({!Diff}).

    Medians and the median absolute deviation are used instead of
    mean/stddev because bench samples are few (3–10 reps) and heavy-tailed
    (GC pauses, scheduler preemption): one outlier rep must not move the
    reported centre or explode the noise band. All functions copy their
    input before sorting and raise [Invalid_argument] on an empty array. *)

val minimum : float array -> float
val maximum : float array -> float

(** Median by sorting; the mean of the two middle elements when the
    sample count is even. *)
val median : float array -> float

(** Median absolute deviation around the median: [median |x_i − median|].
    Zero for constant samples (and for a single sample). *)
val mad : float array -> float

(** [noise_band ?k xs] is [k ·. mad xs] (default [k = 4.]): the half-width
    within which a repeated measurement of the same code is considered
    noise. Monotone in [k]; zero when the samples are constant. *)
val noise_band : ?k:float -> float array -> float
