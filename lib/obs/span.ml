(* Hierarchical spans: nestable named regions capturing wall time and
   allocation deltas from [Gc.quick_stat]. The implicit stack lives in a
   domain-local registry keyed by an installable context id (0 by
   default; a server with several worker systhreads in one domain
   installs [Thread.id] via [set_context]), so [with_span] is reentrant
   AND safe to call concurrently from Zkvc_parallel worker domains or
   sibling systhreads: each (domain, context) pair records onto its own
   stack. Exporters merge the calling domain's contexts in creation
   order, so worker-domain spans are effectively discarded — the
   supported recording pattern is to open spans on the coordinating
   domain around parallel regions — while sibling-thread spans within
   the calling domain are all visible.

   When the sink is disabled, [with_span] is one flag load away from a
   direct call of the thunk: no span record, no clock read, no Gc stat. *)

type t =
  { name : string;
    seq : int; (* creation order, stable tie-break for exporters *)
    domain : int; (* recording domain (or synthetic track for externals) *)
    args : (string * string) list; (* free-form attributes, e.g. request_id *)
    start_s : float;
    mutable stop_s : float;
    start_minor : float;
    start_major : float;
    start_promoted : float;
    mutable minor_words : float; (* allocation deltas, filled on close *)
    mutable major_words : float;
    mutable rev_children : t list }

(* Default clock: [Sys.time] (portable, no unix dependency). Binaries that
   link unix should install [Unix.gettimeofday] for true wall time. *)
let clock = ref Sys.time
let set_clock f = clock := f
let now () = !clock ()

(* creation order is global (atomic) so sequence numbers stay unique even
   when worker domains open spans; the stack/roots/last triple is
   domain-local *)
let seq_counter = Atomic.make 0

type state =
  { ctx : int;
    mutable stack : t list;
    mutable rev_roots : t list;
    mutable last : t option }

(* Per-domain registry of per-context states. The context function is 0
   by default (one state per domain, exactly the old behaviour); the
   proof service installs [Thread.id] so each worker systhread gets its
   own stack. The registry lock only guards insertion of a new state —
   lookups walk an immutable list snapshot, and a thread can always find
   the state it inserted itself. *)
type registry =
  { reg_lock : Mutex.t;
    mutable states : state list }

let registry_key =
  Domain.DLS.new_key (fun () -> { reg_lock = Mutex.create (); states = [] })

let context = ref (fun () -> 0)
let set_context f = context := f

let rec find_state ctx = function
  | st :: _ when st.ctx = ctx -> Some st
  | _ :: rest -> find_state ctx rest
  | [] -> None

let state () =
  let reg = Domain.DLS.get registry_key in
  let ctx = !context () in
  match find_state ctx reg.states with
  | Some st -> st
  | None ->
    Mutex.lock reg.reg_lock;
    let st =
      match find_state ctx reg.states with
      | Some st -> st
      | None ->
        let st = { ctx; stack = []; rev_roots = []; last = None } in
        reg.states <- st :: reg.states;
        st
    in
    Mutex.unlock reg.reg_lock;
    st

(* Chrome-trace track for a recorded span: the domain id for the default
   context, a synthetic per-thread row (1000 + thread id) otherwise, so
   concurrent worker threads don't interleave on one row. *)
let track ctx = if ctx = 0 then (Domain.self () :> int) else 1000 + ctx

let recording () = !Sink.enabled

let reset () =
  let reg = Domain.DLS.get registry_key in
  Mutex.lock reg.reg_lock;
  List.iter
    (fun st ->
      st.stack <- [];
      st.rev_roots <- [];
      st.last <- None)
    reg.states;
  Mutex.unlock reg.reg_lock;
  Atomic.set seq_counter 0

let open_span ?(args = []) name =
  let q = Gc.quick_stat () in
  let st = state () in
  let s =
    { name;
      seq = Atomic.fetch_and_add seq_counter 1 + 1;
      domain = track st.ctx;
      args;
      start_s = now ();
      stop_s = Float.nan;
      start_minor = q.Gc.minor_words;
      start_major = q.Gc.major_words;
      start_promoted = q.Gc.promoted_words;
      minor_words = 0.;
      major_words = 0.;
      rev_children = [] }
  in
  st.stack <- s :: st.stack;
  s

let close_span s =
  s.stop_s <- now ();
  let q = Gc.quick_stat () in
  s.minor_words <- q.Gc.minor_words -. s.start_minor;
  s.major_words <-
    q.Gc.major_words -. s.start_major -. (q.Gc.promoted_words -. s.start_promoted);
  let st = state () in
  (match st.stack with
   | top :: rest when top == s -> st.stack <- rest
   | _ ->
     (* unbalanced close (an inner span escaped via an exception we did not
        wrap); drop frames down to this span so the stack self-heals *)
     let rec drop = function
       | top :: rest when top == s -> rest
       | _ :: rest -> drop rest
       | [] -> []
     in
     st.stack <- drop st.stack);
  (match st.stack with
   | parent :: _ -> parent.rev_children <- s :: parent.rev_children
   | [] -> st.rev_roots <- s :: st.rev_roots);
  st.last <- Some s

let with_span ?args name f =
  if not !Sink.enabled then f ()
  else begin
    let s = open_span ?args name in
    match f () with
    | r ->
      close_span s;
      r
    | exception e ->
      close_span s;
      raise e
  end

(* A completed span observed elsewhere (typically phase timings returned
   by a remote server), grafted under the innermost open span — or as a
   root — with caller-supplied absolute times in this clock's domain.
   [domain] is the synthetic track exporters use as the Chrome [tid], so
   remote spans land on their own row. *)
let add_external ~name ~start_s ~dur_s ?(args = []) ?domain () =
  if !Sink.enabled then begin
    let st = state () in
    let s =
      { name;
        seq = Atomic.fetch_and_add seq_counter 1 + 1;
        domain = (match domain with Some d -> d | None -> track st.ctx);
        args;
        start_s;
        stop_s = start_s +. dur_s;
        start_minor = 0.;
        start_major = 0.;
        start_promoted = 0.;
        minor_words = 0.;
        major_words = 0.;
        rev_children = [] }
    in
    match st.stack with
    | parent :: _ -> parent.rev_children <- s :: parent.rev_children
    | [] -> st.rev_roots <- s :: st.rev_roots
  end

(* ------------------------------------------------------------------ *)
(* read side                                                           *)

let name s = s.name
let args s = s.args
let domain_id s = s.domain
let duration_s s = s.stop_s -. s.start_s
let start_s s = s.start_s
let minor_words s = s.minor_words
let major_words s = s.major_words
let children s = List.rev s.rev_children

(* All root spans recorded in the calling domain, across every context,
   in creation order. With the default context this is exactly the old
   single-state behaviour; with per-thread contexts a coordinator thread
   (the CLI's trace writer, the server's drain path) sees its worker
   threads' spans too. *)
let roots () =
  let reg = Domain.DLS.get registry_key in
  Mutex.lock reg.reg_lock;
  let all = List.concat_map (fun st -> st.rev_roots) reg.states in
  Mutex.unlock reg.reg_lock;
  List.sort (fun a b -> compare a.seq b.seq) all

let last_completed () = (state ()).last
let depth () = List.length (state ()).stack

let rec find_rec s wanted =
  if s.name = wanted then Some s
  else
    List.fold_left
      (fun acc c -> match acc with Some _ -> acc | None -> find_rec c wanted)
      None (children s)

let find_root wanted =
  List.fold_left
    (fun acc r -> match acc with Some _ -> acc | None -> find_rec r wanted)
    None (roots ())
