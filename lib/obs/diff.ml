(* Report-vs-report comparison with a noise-aware wall-time gate and a
   strict cost-ledger equality check. See diff.mli for the contract. *)

type verdict =
  | Ok_within_noise
  | Improved
  | Regressed
  | Ledger_drift
  | Only_old
  | Only_new

let verdict_name = function
  | Ok_within_noise -> "ok"
  | Improved -> "improved"
  | Regressed -> "REGRESSED"
  | Ledger_drift -> "LEDGER-DRIFT"
  | Only_old -> "only-old"
  | Only_new -> "only-new"

let gating = function
  | Regressed | Ledger_drift -> true
  | Ok_within_noise | Improved | Only_old | Only_new -> false

type entry =
  { key : string;
    verdict : verdict;
    old_prove_s : float;
    new_prove_s : float;
    delta_s : float;
    band_s : float;
    notes : string list }

type result =
  { entries : entry list;
    regressions : int;
    drifts : int;
    ok : bool }

(* The GC fields are measurement noise (heap peaks depend on what ran
   before); everything else in the ledger is a deterministic function of
   the circuit and must match exactly. *)
let ledger_drift (o : Report.ledger) (n : Report.ledger) =
  let checks =
    [ ("constraints", o.Report.constraints, n.Report.constraints);
      ("variables", o.Report.variables, n.Report.variables);
      ("nonzero_a", o.Report.nonzero_a, n.Report.nonzero_a);
      ("nonzero_b", o.Report.nonzero_b, n.Report.nonzero_b);
      ("nonzero_c", o.Report.nonzero_c, n.Report.nonzero_c);
      ("witness", o.Report.witness, n.Report.witness) ]
  in
  List.filter_map
    (fun (name, ov, nv) ->
      if ov = nv then None else Some (Printf.sprintf "%s %d -> %d" name ov nv))
    checks

let compare_one ~threshold ~k ~floor_s ~check_time (o : Report.measurement)
    (n : Report.measurement) =
  let key = Report.key o in
  let delta = n.Report.prove_s -. o.Report.prove_s in
  let band =
    Float.max floor_s
      (Float.max (threshold *. o.Report.prove_s)
         (k *. Float.max o.Report.prove_mad_s n.Report.prove_mad_s))
  in
  (* Per-region structural counts are deterministic exactly like the
     global ledger, so they gate the same way — and a drift note names
     the owning region, localising the regression. Skipped when either
     side lacks a region tree (zkvc-bench/2 baselines, non-profiled
     runs). *)
  let region_drift =
    match (o.Report.regions, n.Report.regions) with
    | Some ot, Some nt ->
      Attrib.drift_notes ~old_:(Attrib.strip_timing ot) ~new_:(Attrib.strip_timing nt)
    | None, _ | _, None -> []
  in
  let drifted = ledger_drift o.Report.ledger n.Report.ledger @ region_drift in
  let verdict, notes =
    if drifted <> [] then (Ledger_drift, drifted)
    else if not check_time then (Ok_within_noise, [ "wall-time comparison skipped" ])
    else if delta > band then
      ( Regressed,
        [ Printf.sprintf "prove +%.1f%% exceeds band ±%.4fs"
            (100. *. delta /. Float.max 1e-9 o.Report.prove_s)
            band ] )
    else if delta < -.band then (Improved, [])
    else (Ok_within_noise, [])
  in
  { key;
    verdict;
    old_prove_s = o.Report.prove_s;
    new_prove_s = n.Report.prove_s;
    delta_s = delta;
    band_s = band;
    notes }

let compare_reports ?(threshold = 0.25) ?(k = 4.) ?(floor_s = 0.005) ?(check_time = true)
    ~(old_ : Report.t) ~(new_ : Report.t) () =
  let new_tbl = Hashtbl.create 32 in
  List.iter
    (fun m -> Hashtbl.replace new_tbl (Report.key m) m)
    new_.Report.measurements;
  let matched = Hashtbl.create 32 in
  let from_old =
    List.map
      (fun o ->
        let key = Report.key o in
        match Hashtbl.find_opt new_tbl key with
        | Some n ->
          Hashtbl.replace matched key ();
          compare_one ~threshold ~k ~floor_s ~check_time o n
        | None ->
          { key;
            verdict = Only_old;
            old_prove_s = o.Report.prove_s;
            new_prove_s = Float.nan;
            delta_s = Float.nan;
            band_s = 0.;
            notes = [] })
      old_.Report.measurements
  in
  let new_only =
    List.filter_map
      (fun n ->
        let key = Report.key n in
        if Hashtbl.mem matched key then None
        else
          Some
            { key;
              verdict = Only_new;
              old_prove_s = Float.nan;
              new_prove_s = n.Report.prove_s;
              delta_s = Float.nan;
              band_s = 0.;
              notes = [] })
      new_.Report.measurements
  in
  let entries = from_old @ new_only in
  let count v = List.length (List.filter (fun e -> e.verdict = v) entries) in
  let regressions = count Regressed and drifts = count Ledger_drift in
  { entries; regressions; drifts; ok = not (List.exists (fun e -> gating e.verdict) entries) }

let result_to_json r =
  Json.Obj
    [ ("schema", Json.String "zkvc-perf-diff/1");
      ("ok", Json.Bool r.ok);
      ("regressions", Json.Int r.regressions);
      ("ledger_drifts", Json.Int r.drifts);
      ( "entries",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [ ("key", Json.String e.key);
                   ("verdict", Json.String (verdict_name e.verdict));
                   ("old_prove_s", Json.Float e.old_prove_s);
                   ("new_prove_s", Json.Float e.new_prove_s);
                   ("delta_s", Json.Float e.delta_s);
                   ("band_s", Json.Float e.band_s);
                   ("notes", Json.List (List.map (fun s -> Json.String s) e.notes)) ])
             r.entries) ) ]

let result_to_string r =
  let b = Buffer.create 1024 in
  let width =
    List.fold_left (fun acc e -> Stdlib.max acc (String.length e.key)) 20 r.entries
  in
  Buffer.add_string b
    (Printf.sprintf "%-*s %10s %10s %9s %9s  %s\n" width "key" "old(s)" "new(s)" "delta"
       "band" "verdict");
  List.iter
    (fun e ->
      let num f = if Float.is_nan f then "-" else Printf.sprintf "%.4f" f in
      Buffer.add_string b
        (Printf.sprintf "%-*s %10s %10s %9s %9s  %s%s\n" width e.key (num e.old_prove_s)
           (num e.new_prove_s)
           (if Float.is_nan e.delta_s then "-"
            else Printf.sprintf "%+.1f%%" (100. *. e.delta_s /. Float.max 1e-9 e.old_prove_s))
           (num e.band_s) (verdict_name e.verdict)
           (match e.notes with [] -> "" | notes -> "  (" ^ String.concat "; " notes ^ ")")))
    r.entries;
  Buffer.add_string b
    (Printf.sprintf "%d key(s): %d regression(s), %d ledger drift(s) -> %s\n"
       (List.length r.entries) r.regressions r.drifts
       (if r.ok then "OK" else "FAIL"));
  Buffer.contents b
