(* Constraint provenance: a region tree attributing circuit cost
   (constraints, wires, per-matrix nonzeros, synthesis time, an
   apportioned prove-time share) to the nested regions the builder was
   inside when each constraint was emitted. The tree is produced by
   [Zkvc_r1cs.Builder] (this module deliberately knows nothing about
   R1CS — only about the counts) and consumed by the profiler CLI, the
   bench report (schema zkvc-bench/3) and the perf differ. *)

type counts =
  { constraints : int;
    variables : int;
    nnz_a : int;
    nnz_b : int;
    nnz_c : int }

let zero_counts = { constraints = 0; variables = 0; nnz_a = 0; nnz_b = 0; nnz_c = 0 }

let add_counts x y =
  { constraints = x.constraints + y.constraints;
    variables = x.variables + y.variables;
    nnz_a = x.nnz_a + y.nnz_a;
    nnz_b = x.nnz_b + y.nnz_b;
    nnz_c = x.nnz_c + y.nnz_c }

type t =
  { name : string;
    self : counts;
    witness_s : float;
    prove_share_s : float;
    children : t list }

let make ?(witness_s = 0.) ?(prove_share_s = 0.) ~name ~self children =
  { name; self; witness_s; prove_share_s; children }

let rec total n = List.fold_left (fun acc c -> add_counts acc (total c)) n.self n.children

let rec total_witness_s n =
  List.fold_left (fun acc c -> acc +. total_witness_s c) n.witness_s n.children

let rec total_prove_s n =
  List.fold_left (fun acc c -> acc +. total_prove_s c) n.prove_share_s n.children

let rec map f n = f { n with children = List.map (map f) n.children }

let strip_timing n = map (fun n -> { n with witness_s = 0.; prove_share_s = 0. }) n

let nnz c = c.nnz_a + c.nnz_b + c.nnz_c

(* Apportion a measured prove time over the tree by each node's share of
   the total nonzero count — MSM/FFT work in both backends scales with
   the populated matrix entries, so nnz share is the honest structural
   proxy for "which region the prover spent its time on". *)
let with_prove_share ~prove_s root =
  let all = nnz (total root) in
  if all = 0 then root
  else
    map
      (fun n -> { n with prove_share_s = prove_s *. float_of_int (nnz n.self) /. float_of_int all })
      root

(* Fraction (0..100) of constraints emitted outside any [in_region]
   scope: the root's self count over the tree total. *)
let unattributed_pct root =
  let tot = (total root).constraints in
  if tot = 0 then 0. else 100. *. float_of_int root.self.constraints /. float_of_int tot

(* ------------------------------------------------------------------ *)
(* folded-stack export (Brendan Gregg collapsed format)                *)

let sanitize_seg s =
  String.map (fun c -> if c = ';' || c = ' ' || c = '\t' || c = '\n' || c = '\r' then '_' else c) s
  |> fun s -> if s = "" then "_" else s

(* Every node gets a line (weight = self constraints, zero included) so
   the parse is lossless; flamegraph.pl and speedscope both accept
   zero-weight frames. Preorder, creation order. *)
let folded_entries root =
  let rec go path n acc =
    let path = path @ [ sanitize_seg n.name ] in
    let acc = (path, n.self.constraints) :: acc in
    List.fold_left (fun acc c -> go path c acc) acc n.children
  in
  List.rev (go [] root [])

let to_folded root =
  let buf = Buffer.create 256 in
  List.iter
    (fun (path, w) -> Buffer.add_string buf (String.concat ";" path ^ " " ^ string_of_int w ^ "\n"))
    (folded_entries root);
  Buffer.contents buf

let parse_folded text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  let parse_line l =
    match String.rindex_opt l ' ' with
    | None -> Error (Printf.sprintf "folded line without weight: %S" l)
    | Some i -> (
      let stack = String.sub l 0 i
      and w = String.sub l (i + 1) (String.length l - i - 1) in
      match int_of_string_opt w with
      | None -> Error (Printf.sprintf "folded line with non-integer weight: %S" l)
      | Some w when w < 0 -> Error (Printf.sprintf "negative weight: %S" l)
      | Some w -> Ok (String.split_on_char ';' stack, w))
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> ( match parse_line l with Ok e -> collect (e :: acc) rest | Error _ as e -> e)
  in
  collect [] lines

(* ------------------------------------------------------------------ *)
(* terminal table                                                      *)

let to_table root =
  let tot = total root in
  let rows = ref [] in
  let rec walk depth n =
    let t = total n in
    let pct =
      if tot.constraints = 0 then 0.
      else 100. *. float_of_int t.constraints /. float_of_int tot.constraints
    in
    rows :=
      ( String.make (2 * depth) ' ' ^ n.name,
        t.constraints,
        pct,
        t.variables,
        t.nnz_a,
        t.nnz_b,
        t.nnz_c,
        total_witness_s n,
        total_prove_s n )
      :: !rows;
    List.iter (walk (depth + 1)) n.children
  in
  walk 0 root;
  let rows = List.rev !rows in
  let name_w =
    List.fold_left (fun w (name, _, _, _, _, _, _, _, _) -> max w (String.length name)) 6 rows
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-*s %12s %6s %10s %10s %10s %10s %10s %10s\n" name_w "region" "constraints"
       "%" "vars" "nnz_a" "nnz_b" "nnz_c" "wit_ms" "prove_ms");
  List.iter
    (fun (name, cs, pct, vars, a, b, c, wit, prove) ->
      Buffer.add_string buf
        (Printf.sprintf "%-*s %12d %5.1f%% %10d %10d %10d %10d %10.2f %10.2f\n" name_w name cs pct
           vars a b c (1000. *. wit) (1000. *. prove)))
    rows;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON codec (exact round-trip, same discipline as Report)            *)

exception Bad of string

let field name v =
  match Json.member name v with Some x -> x | None -> raise (Bad ("missing field " ^ name))

let get_string name v =
  match field name v with Json.String s -> s | _ -> raise (Bad (name ^ ": expected string"))

let get_int name v =
  match field name v with Json.Int i -> i | _ -> raise (Bad (name ^ ": expected int"))

let get_float name v =
  match Json.to_number_opt (field name v) with
  | Some f -> f
  | None -> raise (Bad (name ^ ": expected number"))

let get_list name v =
  match Json.to_list_opt (field name v) with
  | Some l -> l
  | None -> raise (Bad (name ^ ": expected list"))

let rec to_json n =
  Json.Obj
    [ ("name", Json.String n.name);
      ("constraints", Json.Int n.self.constraints);
      ("variables", Json.Int n.self.variables);
      ("nnz_a", Json.Int n.self.nnz_a);
      ("nnz_b", Json.Int n.self.nnz_b);
      ("nnz_c", Json.Int n.self.nnz_c);
      ("witness_s", Json.Float n.witness_s);
      ("prove_share_s", Json.Float n.prove_share_s);
      ("children", Json.List (List.map to_json n.children)) ]

let rec node_of_json v =
  { name = get_string "name" v;
    self =
      { constraints = get_int "constraints" v;
        variables = get_int "variables" v;
        nnz_a = get_int "nnz_a" v;
        nnz_b = get_int "nnz_b" v;
        nnz_c = get_int "nnz_c" v };
    witness_s = get_float "witness_s" v;
    prove_share_s = get_float "prove_share_s" v;
    children = List.map node_of_json (get_list "children" v) }

let of_json v = match node_of_json v with n -> Ok n | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* region-level drift detection (used by Diff)                         *)

(* Flatten to path -> structural counts; duplicate paths (impossible
   from the builder, which interns by (parent, name)) merge by sum. *)
let flatten root =
  let tbl = Hashtbl.create 64 in
  let rec go path n =
    let path = path ^ "/" ^ n.name in
    let prev = Option.value (Hashtbl.find_opt tbl path) ~default:zero_counts in
    Hashtbl.replace tbl path (add_counts prev n.self);
    List.iter (go path) n.children
  in
  go "" root;
  tbl

let drift_notes ~old_ ~new_ =
  let o = flatten old_ and n = flatten new_ in
  let notes = ref [] in
  let fields c =
    [ ("constraints", c.constraints);
      ("variables", c.variables);
      ("nnz_a", c.nnz_a);
      ("nnz_b", c.nnz_b);
      ("nnz_c", c.nnz_c) ]
  in
  let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  let all = List.sort_uniq compare (keys o @ keys n) in
  List.iter
    (fun path ->
      match (Hashtbl.find_opt o path, Hashtbl.find_opt n path) with
      | Some oc, Some nc ->
        List.iter2
          (fun (f, ov) (_, nv) ->
            if ov <> nv then
              notes := Printf.sprintf "region %s: %s %d -> %d" path f ov nv :: !notes)
          (fields oc) (fields nc)
      | Some oc, None ->
        notes := Printf.sprintf "region %s: removed (%d constraints)" path oc.constraints :: !notes
      | None, Some nc ->
        notes := Printf.sprintf "region %s: added (%d constraints)" path nc.constraints :: !notes
      | None, None -> ())
    all;
  List.rev !notes

let top_regions ?(n = 3) root =
  let rec leaves path node acc =
    let path = if path = "" then node.name else path ^ "/" ^ node.name in
    let acc = if node.self.constraints > 0 then (path, node.self.constraints) :: acc else acc in
    List.fold_left (fun acc c -> leaves path c acc) acc node.children
  in
  (* drop the synthetic root segment from reported paths for brevity *)
  let stripped =
    List.concat_map (fun c -> leaves "" c []) root.children
    @ (if root.self.constraints > 0 then [ (root.name, root.self.constraints) ] else [])
  in
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) stripped in
  List.filteri (fun i _ -> i < n) sorted
