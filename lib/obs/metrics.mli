(** Named counters, gauges and histograms for prover internals (field
    multiplications, MSM sizes and window choices, NTT sizes, sumcheck and
    IPA round counts, R1CS shape).

    Instruments are interned by name: calling [counter name] twice returns
    the same instrument. All writes are guarded by the {!Sink} flag, so a
    disabled sink records nothing and costs one load + branch per write
    site. Like spans, the registry is thread-unsafe by design. *)

type counter = { c_name : string; mutable value : int }
(** Exposed as a record so hot loops can hold the instrument and bump
    [value] directly after checking [Sink.enabled]. *)

type gauge

type histogram

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float option

val observe : histogram -> float -> unit
val observe_int : histogram -> int -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float

(** Nearest-rank percentile over all retained samples, [p] in [0,100];
    [None] when empty. [percentile h 0.] is the minimum, [100.] the max. *)
val percentile : histogram -> float -> float option

(** Zero all registered instruments (registrations themselves persist). *)
val reset : unit -> unit

(** JSON object [{counters; gauges; histograms}] of everything non-empty. *)
val snapshot : unit -> Json.t

(** Human-readable dump of everything non-empty (for [--metrics]). *)
val to_string : unit -> string
