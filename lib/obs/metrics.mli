(** Named counters, gauges and histograms for prover internals (field
    multiplications, MSM sizes and window choices, NTT sizes, sumcheck and
    IPA round counts, R1CS shape).

    Instruments are interned by name: calling [counter name] twice returns
    the same instrument. All writes are guarded by the {!Sink} flag, so a
    disabled sink records nothing and costs one load + branch per write
    site.

    Domain-safety: counters use atomic increments so worker domains (see
    [Zkvc_parallel]) never lose updates; gauge and histogram writes are
    serialised by an internal mutex. Histograms retain at most
    {!reservoir_capacity} samples (deterministic reservoir sampling) while
    keeping [count] and [sum] exact, and cache the sorted view between
    observations so repeated {!percentile} queries cost O(1). *)

type counter = { c_name : string; value : int Atomic.t }
(** Exposed as a record so hot loops can hold the instrument and bump
    [value] directly (e.g. [Atomic.incr c.value]) after checking
    [Sink.enabled]. *)

type gauge

type histogram

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float option

(** Maximum samples a histogram retains; beyond it, reservoir sampling
    keeps an unbiased subset while [hist_count]/[hist_sum] stay exact. *)
val reservoir_capacity : int

val observe : histogram -> float -> unit
val observe_int : histogram -> int -> unit

(** Exact number of observations (not bounded by the reservoir). *)
val hist_count : histogram -> int

(** Exact sum of all observations. *)
val hist_sum : histogram -> float

(** Samples currently retained, at most {!reservoir_capacity}. *)
val hist_retained : histogram -> int

(** Nearest-rank percentile over the retained samples, [p] in [0,100];
    [None] when empty. [percentile h 0.] is the minimum, [100.] the max.
    Exact until {!reservoir_capacity} observations, a reservoir estimate
    after that. *)
val percentile : histogram -> float -> float option

(** Zero all registered instruments (registrations themselves persist). *)
val reset : unit -> unit

(** {2 Registry enumeration}

    For exposition renderers ({!Expose}): every registered instrument,
    name-sorted. Enumeration locks out concurrent interning; reading the
    returned instruments uses the ordinary accessors. *)

val all_counters : unit -> counter list

(** Gauges that have been [set] at least once, as [(name, value)]. *)
val all_gauges : unit -> (string * float) list

val all_histograms : unit -> histogram list

val hist_name : histogram -> string

(** JSON object [{counters; gauges; histograms}] of everything non-empty. *)
val snapshot : unit -> Json.t

(** Human-readable dump of everything non-empty (for [--metrics]). *)
val to_string : unit -> string
