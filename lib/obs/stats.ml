(* Robust statistics over small, heavy-tailed timing samples: medians and
   MAD rather than mean/stddev so a single GC pause or preempted rep does
   not move the centre or explode the noise band. *)

let check name xs =
  if Array.length xs = 0 then invalid_arg ("Stats." ^ name ^ ": empty sample")

let minimum xs =
  check "minimum" xs;
  Array.fold_left Float.min xs.(0) xs

let maximum xs =
  check "maximum" xs;
  Array.fold_left Float.max xs.(0) xs

let median xs =
  check "median" xs;
  let s = Array.copy xs in
  Array.sort Float.compare s;
  let n = Array.length s in
  if n land 1 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.

let mad xs =
  check "mad" xs;
  let m = median xs in
  median (Array.map (fun x -> Float.abs (x -. m)) xs)

let noise_band ?(k = 4.) xs = k *. mad xs
