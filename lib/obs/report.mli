(** Schema-versioned benchmark reports — the repository's perf-trajectory
    format (committed as [BENCH_NNNN.json], diffed by [tools/perf_diff]).

    A report is an environment block (who measured, on what) plus one
    {!measurement} per (section, scheme, strategy, backend, dims) key.
    Every measurement carries its per-repetition timings, the robust
    summary derived from them ({!Stats}: median + MAD), and a {b cost
    ledger} — the resource counts the zkVC paper's claims are actually
    about (R1CS constraints, variables, nonzeros per QAP column family
    A/B/C, witness length, GC peak heap) — so CRPC/PSQ ablations record
    the mechanism (fewer constraints, sparser A) next to its effect
    (lower proving time).

    JSON encoding round-trips exactly: [of_json (to_json r) = Ok r]. *)

(** Current schema identifier, ["zkvc-bench/3"]: version 2 plus an
    optional per-measurement ["regions"] constraint-provenance tree.
    Version 1 (PR 1's ad-hoc bench dump, never committed) is not
    readable. *)
val schema : string

(** ["zkvc-bench/2"], still accepted by {!of_json} — committed baselines
    parse with [regions = None], so region-free comparisons keep
    working. Writers always emit {!schema}. *)
val schema_v2 : string

type env =
  { git_rev : string;  (** commit of the measured tree, or ["unknown"] *)
    ocaml_version : string;
    nproc : int;  (** cores visible to the runner *)
    jobs : int;  (** prover worker domains ([Zkvc_parallel.jobs]) *)
    scale : int;  (** bench [--scale] divisor *)
    full : bool;
    clock : string;  (** clock source label, e.g. ["monotonic"] *)
    date : string  (** supplied by the caller; never read by this module *)
  }

(** Deterministic resource counts for one proved statement. The nonzero
    counts are per QAP column family (= R1CS matrix) A/B/C; [nonzero_a]
    is the paper's "left wires". [witness] is the private witness length
    ([num_aux]). [top_heap_words]/[major_collections] are GC cost of the
    run (the only non-deterministic fields; the differ never gates on
    them). *)
type ledger =
  { constraints : int;
    variables : int;
    nonzero_a : int;
    nonzero_b : int;
    nonzero_c : int;
    witness : int;
    top_heap_words : int;
    major_collections : int }

(** One repetition's prove/verify/setup split, seconds. *)
type rep =
  { setup_s : float;
    prove_s : float;
    verify_s : float }

type measurement =
  { section : string;  (** bench section, e.g. ["tab2"] *)
    scheme : string;  (** paper row label, e.g. ["zkVC-G"] *)
    strategy : string;  (** circuit strategy, e.g. ["crpc+psq"] *)
    backend : string;  (** ["groth16"] or ["spartan"] *)
    dims_a : int;
    dims_n : int;
    dims_b : int;
    reps : rep list;  (** timed repetitions, oldest first; never empty *)
    setup_s : float;  (** median across reps *)
    prove_s : float;  (** median across reps *)
    prove_mad_s : float;  (** MAD across reps (0 for a single rep) *)
    verify_s : float;  (** median across reps *)
    verify_mad_s : float;
    proof_bytes : int;
    ledger : ledger;
    regions : Attrib.t option
        (** constraint-provenance tree ([bench --profile] /
            [zkvc_cli profile]); [None] in zkvc-bench/2 files *) }

type t =
  { env : env;
    sections : string list;  (** bench sections that ran *)
    measurements : measurement list }

(** Build a measurement's summary fields (medians, MADs) from its reps.
    Raises [Invalid_argument] on an empty rep list. *)
val summarize :
  ?regions:Attrib.t ->
  section:string ->
  scheme:string ->
  strategy:string ->
  backend:string ->
  dims:int * int * int ->
  reps:rep list ->
  proof_bytes:int ->
  ledger:ledger ->
  unit ->
  measurement

(** Identity of a measurement across runs:
    ["section/scheme/strategy/backend/AxNxB"]. *)
val key : measurement -> string

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

(** Parse a report from raw JSON text (file contents). *)
val of_string : string -> (t, string) result
