(** Constraint provenance: per-region cost attribution for compiled
    circuits.

    A {!t} is a tree of named regions mirroring the nesting of
    [Zkvc_r1cs.Builder.in_region] scopes during synthesis. Each node
    carries the {e self} cost — constraints emitted, wires allocated and
    per-matrix nonzeros contributed while that region (and no deeper
    region) was active — plus the measured synthesis ("witness") time and
    an apportioned share of a measured prove time. Totals are
    reconstructed by folding, so child costs always sum to the parent by
    construction: the tree cannot disagree with itself.

    Exporters: an aligned terminal table ({!to_table}), collapsed-stack
    text ({!to_folded}, flamegraph.pl / speedscope compatible), and a
    JSON codec ({!to_json}/{!of_json}) with the same exact round-trip
    discipline as {!Report}. This module knows nothing about R1CS — it
    only aggregates counts the builder hands it, which keeps the obs
    library dependency-free. *)

(** Structural cost owned directly by one region (excluding children). *)
type counts =
  { constraints : int;
    variables : int;  (** wires allocated, excluding the constant-one wire *)
    nnz_a : int;  (** nonzero terms contributed to the A matrix *)
    nnz_b : int;
    nnz_c : int }

val zero_counts : counts
val add_counts : counts -> counts -> counts

type t =
  { name : string;
    self : counts;
    witness_s : float;  (** synthesis wall time spent directly in this region *)
    prove_share_s : float;  (** apportioned slice of a measured prove time *)
    children : t list  (** creation order *) }

val make : ?witness_s:float -> ?prove_share_s:float -> name:string -> self:counts -> t list -> t

(** Inclusive cost: self plus all descendants. *)
val total : t -> counts

val total_witness_s : t -> float
val total_prove_s : t -> float

(** Zero all timing fields — the structural projection, equal across
    runs regardless of clock or [--jobs]. *)
val strip_timing : t -> t

(** Distribute [prove_s] over the tree proportionally to each node's
    share of total nonzeros (the structural proxy for prover work). *)
val with_prove_share : prove_s:float -> t -> t

(** Percentage (0–100) of constraints attributed to no region: the
    root's self count over the tree total. *)
val unattributed_pct : t -> float

(** [(path, self-constraints)] per node, preorder; path segments are
    sanitized (no [';'] or whitespace). Basis of {!to_folded}. *)
val folded_entries : t -> (string list * int) list

(** Collapsed-stack text: one [root;child;leaf N] line per node, where
    [N] is the node's {e self} constraint count. Accepted by
    flamegraph.pl and speedscope. *)
val to_folded : t -> string

(** Parse collapsed-stack text back to [(path, weight)] entries.
    [parse_folded (to_folded t) = Ok (folded_entries t)]. *)
val parse_folded : string -> ((string list * int) list, string) result

(** Aligned terminal table: one row per region (indented by depth) with
    inclusive constraints, share, variables, per-matrix nnz, and witness
    / prove milliseconds. *)
val to_table : t -> string

(** Exact round-trip: [of_json (to_json t) = Ok t]. *)
val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result

(** Human-readable notes for structural differences between two trees,
    matched by path: changed counts field-by-field, plus added/removed
    regions. Empty when structurally identical. Timing fields are
    ignored. *)
val drift_notes : old_:t -> new_:t -> string list

(** The [n] (default 3) hottest regions by self constraint count, as
    [(path, constraints)] with the synthetic root segment dropped. *)
val top_regions : ?n:int -> t -> (string * int) list
