(** Minimal self-contained JSON values with a printer and a parser — just
    enough for the trace/metrics exporters and the bench report, plus
    round-trip tests of what this library emits. Not a general-purpose
    JSON implementation (no streaming, surrogate pairs unsupported). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact single-line rendering (RFC 8259 escaping; non-finite floats
    become [null]). *)
val to_string : t -> string

(** Two-space-indented rendering ending in a newline. *)
val to_string_pretty : t -> string

val of_string : string -> (t, string) result
val of_string_exn : string -> t

val member : string -> t -> t option
val to_list_opt : t -> t list option
val to_number_opt : t -> float option
