(* Exporters for recorded spans: a human-readable tree, JSON-lines, and
   Chrome trace_event format (loadable in chrome://tracing or
   https://ui.perfetto.dev). *)

(* ------------------------------------------------------------------ *)
(* span tree                                                           *)

let rec tree_lines b indent s =
  let dur_ms = Span.duration_s s *. 1e3 in
  let alloc = Span.minor_words s +. Span.major_words s in
  Buffer.add_string b
    (Printf.sprintf "%s%-*s %10.3f ms  %12.0f words\n" indent
       (Stdlib.max 1 (40 - String.length indent))
       (Span.name s) dur_ms alloc);
  List.iter (tree_lines b (indent ^ "  ")) (Span.children s)

let tree_to_string spans =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%-40s %13s  %12s\n" "span" "duration" "alloc");
  List.iter (tree_lines b "" ) spans;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* shared: flatten to (depth, path, span) pre-order                     *)

let rec flatten_with depth path s acc =
  let path = if path = "" then Span.name s else path ^ "/" ^ Span.name s in
  let acc = (depth, path, s) :: acc in
  List.fold_left (fun acc c -> flatten_with (depth + 1) path c acc) acc (Span.children s)

let flatten spans =
  List.rev (List.fold_left (fun acc s -> flatten_with 0 "" s acc) [] spans)

let time_origin spans =
  List.fold_left (fun acc s -> Stdlib.min acc (Span.start_s s)) Float.infinity spans

(* ------------------------------------------------------------------ *)
(* JSON-lines                                                          *)

let span_record ~origin depth path s =
  Json.Obj
    ([ ("name", Json.String (Span.name s));
       ("path", Json.String path);
       ("depth", Json.Int depth);
       ("tid", Json.Int (Span.domain_id s));
       ("start_us", Json.Float ((Span.start_s s -. origin) *. 1e6));
       ("dur_us", Json.Float (Span.duration_s s *. 1e6));
       ("minor_words", Json.Float (Span.minor_words s));
       ("major_words", Json.Float (Span.major_words s)) ]
    @
    match Span.args s with
    | [] -> []
    | args ->
      [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) args)) ])

let to_jsonl spans =
  let origin = time_origin spans in
  let b = Buffer.create 1024 in
  List.iter
    (fun (depth, path, s) ->
      Buffer.add_string b (Json.to_string (span_record ~origin depth path s));
      Buffer.add_char b '\n')
    (flatten spans);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Chrome trace_event format                                            *)

(* "X" (complete) events carry both ts and dur, so nesting is recovered
   by the viewer from interval containment per pid/tid track. The tid is
   the span's recording domain — spans from concurrent domains (and
   externally stitched server spans, see [Span.add_external]) get their
   own row instead of interleaving on one. Span attributes (request ids)
   travel in [args] next to the GC deltas. *)
let chrome_event ~origin s =
  Json.Obj
    [ ("name", Json.String (Span.name s));
      ("cat", Json.String "zkvc");
      ("ph", Json.String "X");
      ("ts", Json.Float ((Span.start_s s -. origin) *. 1e6));
      ("dur", Json.Float (Span.duration_s s *. 1e6));
      ("pid", Json.Int 1);
      ("tid", Json.Int (Span.domain_id s));
      ( "args",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.String v)) (Span.args s)
          @ [ ("minor_words", Json.Float (Span.minor_words s));
              ("major_words", Json.Float (Span.major_words s)) ]) ) ]

let to_chrome_trace spans =
  let origin = time_origin spans in
  let events =
    List.map (fun (_depth, _path, s) -> chrome_event ~origin s) (flatten spans)
  in
  Json.Obj
    [ ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ms");
      ("otherData", Json.Obj [ ("producer", Json.String "zkvc_obs") ]) ]

(* ------------------------------------------------------------------ *)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_chrome_trace path spans =
  write_file path (Json.to_string (to_chrome_trace spans))
