(* The single on/off switch shared by spans and metrics. Instrumented hot
   paths read [enabled] directly (one load + branch), so a disabled sink
   costs nearly nothing and records no state. *)

let enabled = ref false

let enable () = enabled := true
let disable () = enabled := false
let is_enabled () = !enabled

let with_enabled f =
  let prev = !enabled in
  enabled := true;
  Fun.protect ~finally:(fun () -> enabled := prev) f
