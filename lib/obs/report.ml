(* Perf-trajectory report format: environment block + per-key
   measurements with per-rep timings, robust summaries and the cost
   ledger. The codec must round-trip exactly — tests enforce
   [of_json (to_json r) = Ok r] — so every field is written and read
   explicitly; unknown fields are rejected nowhere (forward-compatible
   readers skip them) but missing fields are an error.

   Schema history: zkvc-bench/2 (PR 3) is the ledger format; zkvc-bench/3
   adds an optional per-measurement "regions" provenance tree. v2 files
   are still read (regions = None) so committed baselines keep
   comparing. *)

let schema = "zkvc-bench/3"
let schema_v2 = "zkvc-bench/2"

type env =
  { git_rev : string;
    ocaml_version : string;
    nproc : int;
    jobs : int;
    scale : int;
    full : bool;
    clock : string;
    date : string }

type ledger =
  { constraints : int;
    variables : int;
    nonzero_a : int;
    nonzero_b : int;
    nonzero_c : int;
    witness : int;
    top_heap_words : int;
    major_collections : int }

type rep =
  { setup_s : float;
    prove_s : float;
    verify_s : float }

type measurement =
  { section : string;
    scheme : string;
    strategy : string;
    backend : string;
    dims_a : int;
    dims_n : int;
    dims_b : int;
    reps : rep list;
    setup_s : float;
    prove_s : float;
    prove_mad_s : float;
    verify_s : float;
    verify_mad_s : float;
    proof_bytes : int;
    ledger : ledger;
    regions : Attrib.t option (* provenance tree; None in v2 files *) }

type t =
  { env : env;
    sections : string list;
    measurements : measurement list }

let summarize ?regions ~section ~scheme ~strategy ~backend ~dims:(dims_a, dims_n, dims_b) ~reps
    ~proof_bytes ~ledger () =
  if reps = [] then invalid_arg "Report.summarize: empty rep list";
  let arr (f : rep -> float) = Array.of_list (List.map f reps) in
  let setups = arr (fun r -> r.setup_s)
  and proves = arr (fun r -> r.prove_s)
  and verifies = arr (fun r -> r.verify_s) in
  { section;
    scheme;
    strategy;
    backend;
    dims_a;
    dims_n;
    dims_b;
    reps;
    setup_s = Stats.median setups;
    prove_s = Stats.median proves;
    prove_mad_s = Stats.mad proves;
    verify_s = Stats.median verifies;
    verify_mad_s = Stats.mad verifies;
    proof_bytes;
    ledger;
    regions }

let key m =
  Printf.sprintf "%s/%s/%s/%s/%dx%dx%d" m.section m.scheme m.strategy m.backend m.dims_a
    m.dims_n m.dims_b

(* ------------------------------------------------------------------ *)
(* encoding                                                            *)

let env_to_json e =
  Json.Obj
    [ ("git_rev", Json.String e.git_rev);
      ("ocaml_version", Json.String e.ocaml_version);
      ("nproc", Json.Int e.nproc);
      ("jobs", Json.Int e.jobs);
      ("scale", Json.Int e.scale);
      ("full", Json.Bool e.full);
      ("clock", Json.String e.clock);
      ("date", Json.String e.date) ]

let ledger_to_json l =
  Json.Obj
    [ ("constraints", Json.Int l.constraints);
      ("variables", Json.Int l.variables);
      ("nonzero_a", Json.Int l.nonzero_a);
      ("nonzero_b", Json.Int l.nonzero_b);
      ("nonzero_c", Json.Int l.nonzero_c);
      ("witness", Json.Int l.witness);
      ("top_heap_words", Json.Int l.top_heap_words);
      ("major_collections", Json.Int l.major_collections) ]

let rep_to_json (r : rep) =
  Json.Obj
    [ ("setup_s", Json.Float r.setup_s);
      ("prove_s", Json.Float r.prove_s);
      ("verify_s", Json.Float r.verify_s) ]

let measurement_to_json m =
  Json.Obj
    ([ ("section", Json.String m.section);
      ("scheme", Json.String m.scheme);
      ("strategy", Json.String m.strategy);
      ("backend", Json.String m.backend);
      ( "dims",
        Json.Obj [ ("a", Json.Int m.dims_a); ("n", Json.Int m.dims_n); ("b", Json.Int m.dims_b) ]
      );
      ("reps", Json.List (List.map rep_to_json m.reps));
      ("setup_s", Json.Float m.setup_s);
      ("prove_s", Json.Float m.prove_s);
      ("prove_mad_s", Json.Float m.prove_mad_s);
      ("verify_s", Json.Float m.verify_s);
      ("verify_mad_s", Json.Float m.verify_mad_s);
      ("proof_bytes", Json.Int m.proof_bytes);
      ("ledger", ledger_to_json m.ledger) ]
    @ match m.regions with None -> [] | Some r -> [ ("regions", Attrib.to_json r) ])

let to_json t =
  Json.Obj
    [ ("schema", Json.String schema);
      ("env", env_to_json t.env);
      ("sections", Json.List (List.map (fun s -> Json.String s) t.sections));
      ("measurements", Json.List (List.map measurement_to_json t.measurements)) ]

(* ------------------------------------------------------------------ *)
(* decoding                                                            *)

exception Bad of string

let field name v =
  match Json.member name v with Some x -> x | None -> raise (Bad ("missing field " ^ name))

let get_string name v =
  match field name v with Json.String s -> s | _ -> raise (Bad (name ^ ": expected string"))

let get_int name v =
  match field name v with Json.Int i -> i | _ -> raise (Bad (name ^ ": expected int"))

let get_bool name v =
  match field name v with Json.Bool b -> b | _ -> raise (Bad (name ^ ": expected bool"))

let get_float name v =
  match Json.to_number_opt (field name v) with
  | Some f -> f
  | None -> raise (Bad (name ^ ": expected number"))

let get_list name v =
  match Json.to_list_opt (field name v) with
  | Some l -> l
  | None -> raise (Bad (name ^ ": expected list"))

let env_of_json v =
  { git_rev = get_string "git_rev" v;
    ocaml_version = get_string "ocaml_version" v;
    nproc = get_int "nproc" v;
    jobs = get_int "jobs" v;
    scale = get_int "scale" v;
    full = get_bool "full" v;
    clock = get_string "clock" v;
    date = get_string "date" v }

let ledger_of_json v =
  { constraints = get_int "constraints" v;
    variables = get_int "variables" v;
    nonzero_a = get_int "nonzero_a" v;
    nonzero_b = get_int "nonzero_b" v;
    nonzero_c = get_int "nonzero_c" v;
    witness = get_int "witness" v;
    top_heap_words = get_int "top_heap_words" v;
    major_collections = get_int "major_collections" v }

let rep_of_json v : rep =
  { setup_s = get_float "setup_s" v;
    prove_s = get_float "prove_s" v;
    verify_s = get_float "verify_s" v }

let measurement_of_json v =
  let dims = field "dims" v in
  { section = get_string "section" v;
    scheme = get_string "scheme" v;
    strategy = get_string "strategy" v;
    backend = get_string "backend" v;
    dims_a = get_int "a" dims;
    dims_n = get_int "n" dims;
    dims_b = get_int "b" dims;
    reps = List.map rep_of_json (get_list "reps" v);
    setup_s = get_float "setup_s" v;
    prove_s = get_float "prove_s" v;
    prove_mad_s = get_float "prove_mad_s" v;
    verify_s = get_float "verify_s" v;
    verify_mad_s = get_float "verify_mad_s" v;
    proof_bytes = get_int "proof_bytes" v;
    ledger = ledger_of_json (field "ledger" v);
    regions =
      (match Json.member "regions" v with
       | None -> None
       | Some r -> (
         match Attrib.of_json r with
         | Ok t -> Some t
         | Error msg -> raise (Bad ("regions: " ^ msg)))) }

let of_json v =
  match
    let s = get_string "schema" v in
    if s <> schema && s <> schema_v2 then
      raise
        (Bad
           (Printf.sprintf "unsupported schema %S (this reader understands %S and %S)" s schema
              schema_v2));
    { env = env_of_json (field "env" v);
      sections =
        List.map
          (function Json.String s -> s | _ -> raise (Bad "sections: expected strings"))
          (get_list "sections" v);
      measurements = List.map measurement_of_json (get_list "measurements" v) }
  with
  | t -> Ok t
  | exception Bad msg -> Error msg

let of_string text =
  match Json.of_string text with
  | Error msg -> Error ("invalid JSON: " ^ msg)
  | Ok v -> of_json v
