(* Named counters / gauges / histograms for prover internals. Instruments
   are interned by name so hot paths can hold the record and bump it;
   every write is guarded by the shared sink flag.

   Domain-safety: counters are atomic (lock-free increments from worker
   domains); gauge and histogram writes take [write_mutex] — they sit on
   per-call paths (one observation per MSM/NTT), never in per-field-op
   loops. Histograms retain at most [reservoir_capacity] samples via
   deterministic reservoir sampling and keep [count]/[sum] exact; the
   sorted view is cached between observations so [percentile] is O(1)
   after the first query. *)

type counter = { c_name : string; value : int Atomic.t }

type gauge = { g_name : string; mutable g_value : float; mutable g_set : bool }

(** Maximum samples a histogram retains; extra observations replace
    retained ones with probability [capacity/count] (reservoir). *)
let reservoir_capacity = 1024

type histogram =
  { h_name : string;
    mutable samples : float array; (* reservoir; first [n_retained] slots live *)
    mutable n_retained : int;
    mutable h_count : int;
    mutable h_sum : float;
    mutable rng : int; (* deterministic LCG state for reservoir replacement *)
    mutable sorted : float array option (* cache, dropped on every observe *) }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 16
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

(* Guards gauge/histogram mutation and instrument interning. *)
let write_mutex = Mutex.create ()

let intern tbl name make =
  Mutex.lock write_mutex;
  let v =
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None ->
      let v = make () in
      Hashtbl.replace tbl name v;
      v
  in
  Mutex.unlock write_mutex;
  v

let counter name = intern counters name (fun () -> { c_name = name; value = Atomic.make 0 })

let gauge name =
  intern gauges name (fun () -> { g_name = name; g_value = 0.; g_set = false })

let histogram name =
  intern histograms name (fun () ->
      { h_name = name;
        samples = [||];
        n_retained = 0;
        h_count = 0;
        h_sum = 0.;
        rng = Hashtbl.hash name;
        sorted = None })

let incr c = if !Sink.enabled then Atomic.incr c.value
let add c n = if !Sink.enabled then ignore (Atomic.fetch_and_add c.value n)
let counter_value c = Atomic.get c.value

let set g v =
  if !Sink.enabled then begin
    Mutex.lock write_mutex;
    g.g_value <- v;
    g.g_set <- true;
    Mutex.unlock write_mutex
  end

let gauge_value g = if g.g_set then Some g.g_value else None

let lcg st = ((st * 25214903917) + 11) land 0x3FFFFFFFFFFFF

let observe h v =
  if !Sink.enabled then begin
    Mutex.lock write_mutex;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    h.sorted <- None;
    if h.n_retained < reservoir_capacity then begin
      if Array.length h.samples = h.n_retained then begin
        let cap =
          Stdlib.min reservoir_capacity (Stdlib.max 16 (2 * Array.length h.samples))
        in
        let grown = Array.make cap 0. in
        Array.blit h.samples 0 grown 0 h.n_retained;
        h.samples <- grown
      end;
      h.samples.(h.n_retained) <- v;
      h.n_retained <- h.n_retained + 1
    end
    else begin
      h.rng <- lcg h.rng;
      let slot = h.rng mod h.h_count in
      if slot < reservoir_capacity then h.samples.(slot) <- v
    end;
    Mutex.unlock write_mutex
  end

let observe_int h v = observe h (float_of_int v)

let hist_count h = h.h_count

let hist_sum h = h.h_sum

let hist_retained h = h.n_retained

let sorted_samples h =
  Mutex.lock write_mutex;
  let s =
    match h.sorted with
    | Some s -> s
    | None ->
      let s = Array.sub h.samples 0 h.n_retained in
      Array.sort compare s;
      h.sorted <- Some s;
      s
  in
  Mutex.unlock write_mutex;
  s

(* Nearest-rank percentile over the retained reservoir; [p] in [0, 100].
   Exact while fewer than [reservoir_capacity] samples were observed,
   an unbiased-sample estimate beyond that. *)
let percentile h p =
  if h.h_count = 0 then None
  else begin
    let arr = sorted_samples h in
    let n = Array.length arr in
    let rank =
      int_of_float (ceil (p /. 100. *. float_of_int n))
    in
    let idx = Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)) in
    Some arr.(idx)
  end

let reset () =
  Mutex.lock write_mutex;
  Hashtbl.iter (fun _ c -> Atomic.set c.value 0) counters;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.; g.g_set <- false) gauges;
  Hashtbl.iter
    (fun _ h ->
      h.samples <- [||];
      h.n_retained <- 0;
      h.h_count <- 0;
      h.h_sum <- 0.;
      h.rng <- Hashtbl.hash h.h_name;
      h.sorted <- None)
    histograms;
  Mutex.unlock write_mutex

let sorted_bindings tbl name_of =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun a b -> compare (name_of a) (name_of b))

(* Registry enumeration for exposition renderers (Expose). Iteration
   holds [write_mutex] so a concurrent [intern] can't resize the table
   under the fold; instrument reads afterwards are the usual atomic /
   mutex-guarded accessors. *)
let locked_bindings tbl name_of =
  Mutex.lock write_mutex;
  let l = Hashtbl.fold (fun _ v acc -> v :: acc) tbl [] in
  Mutex.unlock write_mutex;
  List.sort (fun a b -> compare (name_of a) (name_of b)) l

let all_counters () = locked_bindings counters (fun c -> c.c_name)

let all_gauges () =
  locked_bindings gauges (fun g -> g.g_name)
  |> List.filter_map (fun g -> if g.g_set then Some (g.g_name, g.g_value) else None)

let all_histograms () = locked_bindings histograms (fun h -> h.h_name)

let hist_name h = h.h_name

let float_or_zero = function Some v -> v | None -> 0.

let hist_stats h =
  let mn = percentile h 0. and p50 = percentile h 50. in
  let p90 = percentile h 90. and mx = percentile h 100. in
  (float_or_zero mn, float_or_zero p50, float_or_zero p90, float_or_zero mx)

let snapshot () =
  let counters_json =
    sorted_bindings counters (fun c -> c.c_name)
    |> List.filter_map (fun c ->
           let v = counter_value c in
           if v = 0 then None else Some (c.c_name, Json.Int v))
  in
  let gauges_json =
    sorted_bindings gauges (fun g -> g.g_name)
    |> List.filter_map (fun g ->
           if not g.g_set then None else Some (g.g_name, Json.Float g.g_value))
  in
  let hist_json =
    sorted_bindings histograms (fun h -> h.h_name)
    |> List.filter_map (fun h ->
           if h.h_count = 0 then None
           else begin
             let mn, p50, p90, mx = hist_stats h in
             Some
               ( h.h_name,
                 Json.Obj
                   [ ("count", Json.Int h.h_count);
                     ("sum", Json.Float h.h_sum);
                     ("min", Json.Float mn);
                     ("p50", Json.Float p50);
                     ("p90", Json.Float p90);
                     ("max", Json.Float mx) ] )
           end)
  in
  Json.Obj
    [ ("counters", Json.Obj counters_json);
      ("gauges", Json.Obj gauges_json);
      ("histograms", Json.Obj hist_json) ]

let to_string () =
  let b = Buffer.create 256 in
  let nonzero_counters =
    sorted_bindings counters (fun c -> c.c_name)
    |> List.filter (fun c -> counter_value c <> 0)
  in
  if nonzero_counters <> [] then begin
    Buffer.add_string b "counters:\n";
    List.iter
      (fun c ->
        Buffer.add_string b (Printf.sprintf "  %-32s %d\n" c.c_name (counter_value c)))
      nonzero_counters
  end;
  let set_gauges =
    sorted_bindings gauges (fun g -> g.g_name) |> List.filter (fun g -> g.g_set)
  in
  if set_gauges <> [] then begin
    Buffer.add_string b "gauges:\n";
    List.iter
      (fun g -> Buffer.add_string b (Printf.sprintf "  %-32s %g\n" g.g_name g.g_value))
      set_gauges
  end;
  let live_hists =
    sorted_bindings histograms (fun h -> h.h_name)
    |> List.filter (fun h -> h.h_count > 0)
  in
  if live_hists <> [] then begin
    Buffer.add_string b "histograms:\n";
    List.iter
      (fun h ->
        let mn, p50, p90, mx = hist_stats h in
        Buffer.add_string b
          (Printf.sprintf "  %-32s count=%d sum=%g min=%g p50=%g p90=%g max=%g\n"
             h.h_name h.h_count h.h_sum mn p50 p90 mx))
      live_hists
  end;
  Buffer.contents b
