(* Named counters / gauges / histograms for prover internals. Instruments
   are interned by name so hot paths can hold the record and bump a
   mutable field; every write is guarded by the shared sink flag. *)

type counter = { c_name : string; mutable value : int }

type gauge = { g_name : string; mutable g_value : float; mutable g_set : bool }

type histogram =
  { h_name : string;
    mutable samples : float list; (* reverse observation order *)
    mutable h_count : int;
    mutable h_sum : float }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 16
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let intern tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
    let v = make () in
    Hashtbl.replace tbl name v;
    v

let counter name = intern counters name (fun () -> { c_name = name; value = 0 })

let gauge name =
  intern gauges name (fun () -> { g_name = name; g_value = 0.; g_set = false })

let histogram name =
  intern histograms name (fun () -> { h_name = name; samples = []; h_count = 0; h_sum = 0. })

let incr c = if !Sink.enabled then c.value <- c.value + 1
let add c n = if !Sink.enabled then c.value <- c.value + n
let counter_value c = c.value

let set g v =
  if !Sink.enabled then begin
    g.g_value <- v;
    g.g_set <- true
  end

let gauge_value g = if g.g_set then Some g.g_value else None

let observe h v =
  if !Sink.enabled then begin
    h.samples <- v :: h.samples;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v
  end

let observe_int h v = observe h (float_of_int v)

let hist_count h = h.h_count

let hist_sum h = h.h_sum

(* Nearest-rank percentile over all retained samples; [p] in [0, 100]. *)
let percentile h p =
  if h.h_count = 0 then None
  else begin
    let sorted = List.sort compare h.samples in
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    let rank =
      int_of_float (ceil (p /. 100. *. float_of_int n))
    in
    let idx = Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)) in
    Some arr.(idx)
  end

let reset () =
  Hashtbl.iter (fun _ c -> c.value <- 0) counters;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.; g.g_set <- false) gauges;
  Hashtbl.iter
    (fun _ h ->
      h.samples <- [];
      h.h_count <- 0;
      h.h_sum <- 0.)
    histograms

let sorted_bindings tbl name_of =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun a b -> compare (name_of a) (name_of b))

let float_or_zero = function Some v -> v | None -> 0.

let hist_stats h =
  let mn = percentile h 0. and p50 = percentile h 50. in
  let p90 = percentile h 90. and mx = percentile h 100. in
  (float_or_zero mn, float_or_zero p50, float_or_zero p90, float_or_zero mx)

let snapshot () =
  let counters_json =
    sorted_bindings counters (fun c -> c.c_name)
    |> List.filter_map (fun c ->
           if c.value = 0 then None else Some (c.c_name, Json.Int c.value))
  in
  let gauges_json =
    sorted_bindings gauges (fun g -> g.g_name)
    |> List.filter_map (fun g ->
           if not g.g_set then None else Some (g.g_name, Json.Float g.g_value))
  in
  let hist_json =
    sorted_bindings histograms (fun h -> h.h_name)
    |> List.filter_map (fun h ->
           if h.h_count = 0 then None
           else begin
             let mn, p50, p90, mx = hist_stats h in
             Some
               ( h.h_name,
                 Json.Obj
                   [ ("count", Json.Int h.h_count);
                     ("sum", Json.Float h.h_sum);
                     ("min", Json.Float mn);
                     ("p50", Json.Float p50);
                     ("p90", Json.Float p90);
                     ("max", Json.Float mx) ] )
           end)
  in
  Json.Obj
    [ ("counters", Json.Obj counters_json);
      ("gauges", Json.Obj gauges_json);
      ("histograms", Json.Obj hist_json) ]

let to_string () =
  let b = Buffer.create 256 in
  let nonzero_counters =
    sorted_bindings counters (fun c -> c.c_name)
    |> List.filter (fun c -> c.value <> 0)
  in
  if nonzero_counters <> [] then begin
    Buffer.add_string b "counters:\n";
    List.iter
      (fun c -> Buffer.add_string b (Printf.sprintf "  %-32s %d\n" c.c_name c.value))
      nonzero_counters
  end;
  let set_gauges =
    sorted_bindings gauges (fun g -> g.g_name) |> List.filter (fun g -> g.g_set)
  in
  if set_gauges <> [] then begin
    Buffer.add_string b "gauges:\n";
    List.iter
      (fun g -> Buffer.add_string b (Printf.sprintf "  %-32s %g\n" g.g_name g.g_value))
      set_gauges
  end;
  let live_hists =
    sorted_bindings histograms (fun h -> h.h_name)
    |> List.filter (fun h -> h.h_count > 0)
  in
  if live_hists <> [] then begin
    Buffer.add_string b "histograms:\n";
    List.iter
      (fun h ->
        let mn, p50, p90, mx = hist_stats h in
        Buffer.add_string b
          (Printf.sprintf "  %-32s count=%d sum=%g min=%g p50=%g p90=%g max=%g\n"
             h.h_name h.h_count h.h_sum mn p50 p90 mx))
      live_hists
  end;
  Buffer.contents b
