(** Quadratic extension Fq12 = Fq6[w]/(w² − v), the pairing target field.
    Since v³ = ξ we get w⁶ = ξ, the relation the D-type sextic twist
    needs: untwisting maps (x', y') ∈ E'(Fq2) to (x'·w², y'·w³). *)

type t = { c0 : Fq6.t; c1 : Fq6.t }

val make : Fq6.t -> Fq6.t -> t
val zero : t
val one : t
val equal : t -> t -> bool
val is_zero : t -> bool
val is_one : t -> bool
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val sqr : t -> t
val conj : t -> t
val inv : t -> t
val pow : t -> Zkvc_num.Bigint.t -> t

(** Embedding of an E'(Fq2) x-coordinate: [x'·w²]. *)
val of_twist_x : Fq2.t -> t

(** Embedding of an E'(Fq2) y-coordinate: [y'·w³]. *)
val of_twist_y : Fq2.t -> t

(** Sparse Miller-loop line value [λ·x_Q − y_Q + c] with λ, c ∈ Fq and
    [x_Q = x'·w²], [y_Q = y'·w³]. *)
val line_value : lambda:Zkvc_field.Fq.t -> c:Zkvc_field.Fq.t -> xq:Fq2.t -> yq:Fq2.t -> t

val random : Random.State.t -> t

(** Canonical 384-byte encoding (six Fq2 coefficients in tower order) —
    used to absorb pairing-target elements into Fiat–Shamir transcripts
    and to serialise aggregated-proof commitments. *)
val size_in_bytes : int

val to_bytes : t -> Bytes.t

(** Raises [Invalid_argument] on wrong length or non-canonical limbs. *)
val of_bytes_exn : Bytes.t -> t

val pp : Format.formatter -> t -> unit
