(** Multi-scalar multiplication via Pippenger's bucket method — the
    dominant cost of the Groth16 prover, so the benchmarked CRPC/PSQ
    variable-count reductions translate directly into fewer bucket
    additions here. *)

module Bigint = Zkvc_num.Bigint
module Fr = Zkvc_field.Fr
module Metrics = Zkvc_obs.Metrics
module Parallel = Zkvc_parallel

(* Shared across group instantiations (G1, G2): how many MSMs ran, their
   input sizes and the Pippenger window widths chosen for them. *)
let msm_calls = Metrics.counter "msm.calls"
let msm_size = Metrics.histogram "msm.size"
let msm_window = Metrics.histogram "msm.window_bits"

module type Group = sig
  type t

  val zero : t
  val add : t -> t -> t
  val double : t -> t
end

module Make (G : Group) = struct
  (* Empirically reasonable window size for single-threaded Pippenger. *)
  let window_bits n =
    if n < 8 then 2
    else if n < 32 then 4
    else if n < 256 then 6
    else if n < 4096 then 9
    else if n < 65536 then 12
    else 14

  let scalar_bits = 254

  (* digit w of s in base 2^c *)
  let digit s c w =
    let lo = w * c in
    let hi = Stdlib.min (lo + c) scalar_bits in
    let d = ref 0 in
    for i = hi - 1 downto lo do
      d := (!d lsl 1) lor (if Bigint.bit s i then 1 else 0)
    done;
    !d

  let msm_bigint points scalars =
    let n = Array.length points in
    if n <> Array.length scalars then invalid_arg "Msm: length mismatch";
    if n = 0 then G.zero
    else begin
      let c = window_bits n in
      Metrics.incr msm_calls;
      Metrics.observe_int msm_size n;
      Metrics.observe_int msm_window c;
      let nwin = (scalar_bits + c - 1) / c in
      (* Each of the nwin windows accumulates its buckets independently —
         the parallel axis. The doubling ladder that stitches the window
         sums together stays sequential (it is O(scalar_bits) additions),
         so the combined result is identical for every job count. *)
      let window_sum w =
        let buckets = Array.make ((1 lsl c) - 1) G.zero in
        for i = 0 to n - 1 do
          let d = digit scalars.(i) c w in
          if d > 0 then buckets.(d - 1) <- G.add buckets.(d - 1) points.(i)
        done;
        (* sum_j j*bucket_j via a running suffix sum *)
        let running = ref G.zero and acc = ref G.zero in
        for j = Array.length buckets - 1 downto 0 do
          running := G.add !running buckets.(j);
          acc := G.add !acc !running
        done;
        !acc
      in
      let sums =
        if Parallel.jobs () > 1 && n >= 32 then
          Parallel.parallel_init nwin window_sum
        else Array.init nwin window_sum
      in
      let result = ref G.zero in
      for w = nwin - 1 downto 0 do
        for _ = 1 to c do
          result := G.double !result
        done;
        result := G.add !result sums.(w)
      done;
      !result
    end

  let msm points scalars =
    (* out-of-Montgomery conversion of the witness is itself a hot linear
       pass; map it on the pool when one is available *)
    let scalars_b =
      if Parallel.jobs () > 1 && Array.length scalars >= 1024 then
        Parallel.parallel_map Fr.to_bigint scalars
      else Array.map Fr.to_bigint scalars
    in
    msm_bigint points scalars_b

  (** Reference implementation for tests: Σ naive scalar muls. *)
  let msm_naive ~mul points scalars =
    let acc = ref G.zero in
    Array.iteri (fun i p -> acc := G.add !acc (mul p scalars.(i))) points;
    !acc
end
