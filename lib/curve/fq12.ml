(** Quadratic extension Fq12 = Fq6[w]/(w² − v). Since v³ = ξ we get w⁶ = ξ,
    which is exactly the relation the D-type sextic twist of BN254 needs:
    the untwisting map sends a G2 point (x', y') ∈ E'(Fq2) to
    (x'·w², y'·w³) ∈ E(Fq12). *)

module Bigint = Zkvc_num.Bigint

type t = { c0 : Fq6.t; c1 : Fq6.t }

let make c0 c1 = { c0; c1 }
let zero = make Fq6.zero Fq6.zero
let one = make Fq6.one Fq6.zero

let equal a b = Fq6.equal a.c0 b.c0 && Fq6.equal a.c1 b.c1
let is_zero a = equal a zero
let is_one a = equal a one

let add a b = make (Fq6.add a.c0 b.c0) (Fq6.add a.c1 b.c1)
let sub a b = make (Fq6.sub a.c0 b.c0) (Fq6.sub a.c1 b.c1)
let neg a = make (Fq6.neg a.c0) (Fq6.neg a.c1)

(* (a0 + a1 w)(b0 + b1 w) = (a0b0 + a1b1 v) + (a0b1 + a1b0) w *)
let mul a b =
  let m00 = Fq6.mul a.c0 b.c0 in
  let m11 = Fq6.mul a.c1 b.c1 in
  let cross = Fq6.mul (Fq6.add a.c0 a.c1) (Fq6.add b.c0 b.c1) in
  make (Fq6.add m00 (Fq6.mul_by_v m11)) (Fq6.sub cross (Fq6.add m00 m11))

let sqr a =
  let m00 = Fq6.sqr a.c0 in
  let m11 = Fq6.sqr a.c1 in
  let cross = Fq6.sqr (Fq6.add a.c0 a.c1) in
  make (Fq6.add m00 (Fq6.mul_by_v m11)) (Fq6.sub cross (Fq6.add m00 m11))

let conj a = make a.c0 (Fq6.neg a.c1)

let inv a =
  (* 1/(a0 + a1 w) = (a0 - a1 w)/(a0² - a1² v) *)
  let denom = Fq6.sub (Fq6.sqr a.c0) (Fq6.mul_by_v (Fq6.sqr a.c1)) in
  let dinv = Fq6.inv denom in
  make (Fq6.mul a.c0 dinv) (Fq6.neg (Fq6.mul a.c1 dinv))

let pow base e =
  if Bigint.sign e < 0 then invalid_arg "Fq12.pow";
  let nb = Bigint.num_bits e in
  let acc = ref one in
  for i = nb - 1 downto 0 do
    acc := sqr !acc;
    if Bigint.bit e i then acc := mul !acc base
  done;
  !acc

(** Embedding of an E'(Fq2) x-coordinate: x'·w² = (0, x', 0) in the c0 part. *)
let of_twist_x x' = make (Fq6.make Fq2.zero x' Fq2.zero) Fq6.zero

(** Embedding of an E'(Fq2) y-coordinate: y'·w³ = (0, y', 0)·w. *)
let of_twist_y y' = make Fq6.zero (Fq6.make Fq2.zero y' Fq2.zero)

(** Line function value λ·x_Q − y_Q + c with x_Q = x'w², y_Q = y'w³ and
    λ, c ∈ Fq: a sparse Fq12 element assembled without full multiplications. *)
let line_value ~lambda ~c ~xq ~yq =
  let a = Fq6.make (Fq2.of_fq c) (Fq2.mul_by_fq lambda xq) Fq2.zero in
  let b = Fq6.make Fq2.zero (Fq2.neg yq) Fq2.zero in
  make a b

let random st = make (Fq6.random st) (Fq6.random st)

(* Canonical encoding: the six Fq2 coefficients in tower order
   (c0.c0, c0.c1, c0.c2, c1.c0, c1.c1, c1.c2), 64 bytes each. *)
let size_in_bytes = 6 * Fq2.size_in_bytes

let to_bytes a =
  Bytes.concat Bytes.empty
    [ Fq2.to_bytes a.c0.Fq6.c0; Fq2.to_bytes a.c0.Fq6.c1; Fq2.to_bytes a.c0.Fq6.c2;
      Fq2.to_bytes a.c1.Fq6.c0; Fq2.to_bytes a.c1.Fq6.c1; Fq2.to_bytes a.c1.Fq6.c2 ]

let of_bytes_exn b =
  if Bytes.length b <> size_in_bytes then invalid_arg "Fq12.of_bytes_exn: bad length";
  let w = Fq2.size_in_bytes in
  let fq2 i = Fq2.of_bytes_exn (Bytes.sub b (i * w) w) in
  make (Fq6.make (fq2 0) (fq2 1) (fq2 2)) (Fq6.make (fq2 3) (fq2 4) (fq2 5))

let pp fmt a = Format.fprintf fmt "[%a; %a]" Fq6.pp a.c0 Fq6.pp a.c1
