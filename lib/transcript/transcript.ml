module Sha256 = Zkvc_hash.Sha256
module Bigint = Zkvc_num.Bigint

type t = { mutable state : Bytes.t; mutable counter : int }

(* state' = H(state || tag || (len || "|" || part)* || payload): every
   label part is length-prefixed, so the encoding is prefix-free and
   distinct absorption sequences cannot collide. Multi-part labels keep
   each component separately framed — ("r", 11) and ("r1", 1) hash
   differently, and a user label ending in "/hi" cannot alias the
   internal wide-challenge tag (a separate part). *)
let mix_parts state tag parts payload =
  let ctx = Sha256.init () in
  Sha256.update ctx state;
  Sha256.update_string ctx tag;
  List.iter
    (fun part ->
      Sha256.update_string ctx (string_of_int (String.length part));
      Sha256.update_string ctx "|";
      Sha256.update_string ctx part)
    parts;
  Sha256.update ctx payload;
  Sha256.finalize ctx

let mix state tag label payload = mix_parts state tag [ label ] payload

let create ~label =
  { state = mix (Bytes.make 32 '\000') "init" label Bytes.empty; counter = 0 }

let clone t = { state = Bytes.copy t.state; counter = t.counter }

let absorb_bytes t ~label data = t.state <- mix t.state "absorb" label data

let absorb_string t ~label s = absorb_bytes t ~label (Bytes.of_string s)

let absorb_int t ~label n = absorb_string t ~label (string_of_int n)

let challenge_bytes_parts t parts =
  t.counter <- t.counter + 1;
  let out =
    mix_parts t.state "challenge" parts (Bytes.of_string (string_of_int t.counter))
  in
  t.state <- out;
  out

let challenge_bytes t ~label = challenge_bytes_parts t [ label ]

module Challenge (F : Zkvc_field.Field_intf.S) = struct
  let absorb t ~label x = absorb_bytes t ~label (F.to_bytes x)

  let absorb_list t ~label xs =
    absorb_int t ~label:(label ^ "/len") (List.length xs);
    List.iter (fun x -> absorb t ~label x) xs

  let absorb_array t ~label xs =
    absorb_int t ~label:(label ^ "/len") (Array.length xs);
    Array.iter (fun x -> absorb t ~label x) xs

  (* 512 bits reduced mod F.modulus; the "hi" half travels as its own
     length-prefixed part, never concatenated onto the caller's label *)
  let challenge_parts t parts =
    let b1 = challenge_bytes_parts t parts in
    let b2 = challenge_bytes_parts t (parts @ [ "hi" ]) in
    let wide = Bytes.cat b1 b2 in
    F.of_bigint (Bigint.of_bytes_be wide)

  let challenge t ~label = challenge_parts t [ label ]

  let challenges t ~label n =
    List.init n (fun i -> challenge_parts t [ label; string_of_int i ])
end
