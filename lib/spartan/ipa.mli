(** Bulletproofs-style inner-product argument (Bünz et al., S&P 2018) over
    BN254 G1: proves [⟨a, b⟩ = c] for a Pedersen-committed vector [a] and a
    public vector [b] with a log-size proof, without revealing [a].

    Statement shape: [P = ⟨a, G⟩ + c·Q] where [G] are the commitment-key
    generators and [Q] an independent generator. Used by {!Spartan} to
    compress the Hyrax witness opening from O(√n) to O(log n). *)

module Fr = Zkvc_field.Fr
module G1 = Zkvc_curve.G1

type proof =
  { ls : G1.t array;
    rs : G1.t array;
    a_final : Fr.t }

(** 2·log₂ n points + 1 scalar. *)
val proof_size_bytes : proof -> int

(** The independent generator [Q] binding the inner-product value. *)
val q_generator : G1.t

(** [prove key tr ~a ~b]: [a], [b] of equal power-of-two length not
    exceeding the key size. Challenges come from the transcript, which
    must already bind the commitment and claimed value. *)
val prove :
  Pedersen.key -> Zkvc_transcript.Transcript.t -> a:Fr.t array -> b:Fr.t array -> proof

(** Deferred verification: the scalar side of the check, with the group
    equation left to the caller. [deferred key tr ~b proof] replays the
    round challenges (absorbing each L/R pair exactly as {!verify} does)
    and returns [Some d] such that the opening is valid iff
    [commitment + Σ d.points + ⟨d.g_scalars, G⟩ + d.q_scalar·Q = 0] —
    a linear relation a batch verifier can weight and sum with other
    openings before one shared MSM. [None] on shape mismatch. *)
type deferred =
  { g_scalars : Fr.t array;
    q_scalar : Fr.t;
    points : (G1.t * Fr.t) list }

val deferred :
  Pedersen.key -> Zkvc_transcript.Transcript.t -> b:Fr.t array -> proof -> deferred option

(** [verify key tr ~b ~commitment proof] with
    [commitment = ⟨a,G⟩ + ⟨a,b⟩·Q]. *)
val verify :
  Pedersen.key ->
  Zkvc_transcript.Transcript.t ->
  b:Fr.t array ->
  commitment:G1.t ->
  proof ->
  bool
