(** Generic sumcheck protocol (Lund–Fortnow–Karloff–Nisan), made
    non-interactive with the Fiat–Shamir transcript. The prover holds [k]
    multilinear tables and proves a statement about
    [Σ_{x ∈ {0,1}^µ} combine(t_1(x), ..., t_k(x))] where [combine] is a
    polynomial of total degree [degree] in the table values. *)

module Parallel = Zkvc_parallel

module Make (F : Zkvc_field.Field_intf.S) = struct
  module T = Zkvc_transcript.Transcript
  module Ch = T.Challenge (F)
  module Span = Zkvc_obs.Span

  let rounds_metric = Zkvc_obs.Metrics.counter "sumcheck.rounds"

  (* rounds with fewer table entries than this run sequentially *)
  let parallel_min_half = 1 lsl 10

  (** One round message: evaluations of the round polynomial at
      0, 1, ..., degree. *)
  type round = F.t array

  type proof = round list

  (* Lagrange interpolation of a degree-d polynomial given values at
     0..d, evaluated at r. *)
  let interpolate_at evals r =
    let d = Array.length evals - 1 in
    let acc = ref F.zero in
    for i = 0 to d do
      let num = ref F.one and den = ref F.one in
      for j = 0 to d do
        if j <> i then begin
          num := F.mul !num (F.sub r (F.of_int j));
          den := F.mul !den (F.of_int (i - j))
        end
      done;
      acc := F.add !acc (F.mul evals.(i) (F.div !num !den))
    done;
    !acc

  (** Prover. [tables] are equal-length power-of-two evaluation tables,
      folded in place conceptually (copies are taken, inputs untouched).
      Returns the round messages, the challenge vector and the final values
      of each table at the challenge point. *)
  let prove transcript ~label ~degree tables ~combine =
    let tables = Array.map Array.copy tables in
    let len = Array.length tables.(0) in
    Array.iter
      (fun t -> if Array.length t <> len then invalid_arg "Sumcheck.prove: ragged tables")
      tables;
    let mu =
      let rec go k p = if p = len then k else go (k + 1) (2 * p) in
      go 0 1
    in
    let xs = Array.init (degree + 1) F.of_int in
    let current_len = ref len in
    let rounds = ref [] and challenges = ref [] in
    let point_values = Array.make (Array.length tables) F.zero in
    for round_ix = 1 to mu do
      let round_body () =
        Zkvc_obs.Metrics.incr rounds_metric;
        let half = !current_len / 2 in
        let parallel = Parallel.jobs () > 1 && half >= parallel_min_half in
        (* per-index contributions to the round polynomial; the sum over
           i is a modular (exact, associative) reduction, so partial sums
           per chunk recombine to the same field elements regardless of
           how the range is split *)
        let eval_range lo_i hi_i =
          let local = Array.make (degree + 1) F.zero in
          let pv = Array.make (Array.length tables) F.zero in
          for i = lo_i to hi_i - 1 do
            for xi = 0 to degree do
              let x = xs.(xi) in
              Array.iteri
                (fun t_idx t ->
                  let lo = t.(i) and hi = t.(i + half) in
                  (* value of the table's MLE with first var := x *)
                  pv.(t_idx) <- F.add lo (F.mul x (F.sub hi lo)))
                tables;
              local.(xi) <- F.add local.(xi) (combine pv)
            done
          done;
          local
        in
        let evals =
          if parallel then
            Parallel.parallel_reduce half
              ~init:(Array.make (degree + 1) F.zero)
              ~range:eval_range
              ~combine:(fun x y -> Array.map2 F.add x y)
          else begin
            (* sequential path reuses the hoisted point_values scratch *)
            let evals = Array.make (degree + 1) F.zero in
            for i = 0 to half - 1 do
              for xi = 0 to degree do
                let x = xs.(xi) in
                Array.iteri
                  (fun t_idx t ->
                    let lo = t.(i) and hi = t.(i + half) in
                    point_values.(t_idx) <- F.add lo (F.mul x (F.sub hi lo)))
                  tables;
                evals.(xi) <- F.add evals.(xi) (combine point_values)
              done
            done;
            evals
          end
        in
        Ch.absorb_array transcript ~label:(label ^ "/round") evals;
        let r = Ch.challenge transcript ~label:(label ^ "/chal") in
        (* fold every table: first variable := r; index i touches only
           slots i and i + half, disjoint across the parallel range *)
        Array.iter
          (fun t ->
            if parallel then
              Parallel.parallel_for half (fun i ->
                  let lo = t.(i) and hi = t.(i + half) in
                  t.(i) <- F.add lo (F.mul r (F.sub hi lo)))
            else
              for i = 0 to half - 1 do
                let lo = t.(i) and hi = t.(i + half) in
                t.(i) <- F.add lo (F.mul r (F.sub hi lo))
              done)
          tables;
        current_len := half;
        rounds := evals :: !rounds;
        challenges := r :: !challenges
      in
      (* the span name is only materialised while recording, so the
         disabled path does not allocate round labels *)
      if Span.recording () then
        Span.with_span (Printf.sprintf "%s.round%d" label round_ix) round_body
      else round_body ()
    done;
    let finals = Array.map (fun t -> t.(0)) tables in
    (List.rev !rounds, List.rev !challenges, finals)

  (** Verifier: replays the transcript, checks
      [s_j(0) + s_j(1) = claim_j] each round and reduces the claim to
      [s_j(r_j)]. Returns [Some (final_claim, challenges)] or [None] on a
      consistency failure. *)
  let verify transcript ~label ~degree ~claim proof =
    let ok = ref true in
    let current = ref claim in
    let challenges = ref [] in
    List.iter
      (fun evals ->
        if Array.length evals <> degree + 1 then ok := false
        else begin
          if not (F.equal (F.add evals.(0) evals.(1)) !current) then ok := false;
          Ch.absorb_array transcript ~label:(label ^ "/round") evals;
          let r = Ch.challenge transcript ~label:(label ^ "/chal") in
          current := interpolate_at evals r;
          challenges := r :: !challenges
        end)
      proof;
    if !ok then Some (!current, List.rev !challenges) else None
end
