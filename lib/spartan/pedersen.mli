(** Pedersen vector commitments over BN254 G1 with nothing-up-my-sleeve
    generators (try-and-increment hash-to-curve from SHA-256). Binding
    under discrete log; hiding through the blinding generator. *)

module Fr = Zkvc_field.Fr
module G1 = Zkvc_curve.G1

(** Deterministic curve point with unknown discrete log. *)
val hash_to_point : string -> G1.t

type key

val create_key : int -> key
val key_size : key -> int

(** Reassemble a key from raw points (deserialisation path). Binding and
    hiding hold only if the points really came from {!create_key} — the
    caller vouches for the file's provenance. *)
val of_raw : generators:G1.t array -> blinder:G1.t -> key

(** The vector generators H_0..H_{n-1} (read-only use). *)
val generators : key -> G1.t array

(** The blinding generator U. *)
val blinder : key -> G1.t

(** [commit key v ~blind = Σ v_i·H_i + blind·U]. [v] may be shorter than
    the key. *)
val commit : key -> Fr.t array -> blind:Fr.t -> G1.t

(** Homomorphism check used by the Hyrax-style opening:
    [Σ w_i·C_i = commit(folded, blind)]. *)
val check_fold :
  key ->
  commitments:G1.t array ->
  weights:Fr.t array ->
  folded:Fr.t array ->
  blind:Fr.t ->
  bool
