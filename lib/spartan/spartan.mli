(** Spartan-style transparent zkSNARK for R1CS (Setty, CRYPTO 2020) —
    zkVC's "zkVC-S" backend. No trusted setup: the commitment key is
    derived by hashing to the curve.

    Structure (NIZK flavour, as in SpartanNIZK):
    - phase-1 sumcheck over the constraint hypercube proves
      [Σ_x eq̃(τ,x)·(Ãz·B̃z − C̃z)(x) = 0];
    - phase-2 sumcheck reduces the three matrix-vector claims to one
      evaluation of [z̃];
    - the witness half of [z̃] is opened against a Hyrax-style matrix
      Pedersen commitment (√n-size opening, no Bulletproof compression —
      see DESIGN.md substitution 2);
    - the public half is evaluated directly by the verifier.

    Verification is O(nnz) field work plus one O(√n) MSM. *)

module Fr = Zkvc_field.Fr
module Cs : module type of Zkvc_r1cs.Constraint_system.Make (Fr)

type instance

(** Pad and index an R1CS for Spartan. *)
val preprocess : Cs.t -> instance

val num_rounds_x : instance -> int
val num_rounds_y : instance -> int

type key

(** Transparent setup: derives Pedersen generators for the witness
    commitment. Deterministic — both parties can run it. *)
val setup : instance -> key

type proof

val proof_size_bytes : proof -> int

(** {2 Wire encodings}

    Length-prefixed arrays over the tagged uncompressed G1 format and the
    canonical 32-byte scalar encoding. Parsing validates every point's
    curve equation and every scalar's canonicity (the discipline of
    [Groth16.proof_of_bytes_exn]); raises [Invalid_argument] on
    truncation, unknown tags, oversized counts or trailing bytes. *)

val proof_to_bytes : proof -> Bytes.t
val proof_of_bytes_exn : Bytes.t -> proof

(** The commitment key as raw points — parsing trusts the file's
    provenance for the generators' unknown discrete logs (see
    {!Pedersen.of_raw}). *)
val key_to_bytes : key -> Bytes.t
val key_of_bytes_exn : Bytes.t -> key

(** [opening_mode] selects the witness-opening flavour:
    [`Hyrax_fold] (default) reveals the √n-size combined row vector;
    [`Ipa] compresses it with a Bulletproofs-style inner-product argument
    (log-size opening, aggregated blind revealed). *)
val prove :
  ?opening_mode:[ `Hyrax_fold | `Ipa ] ->
  Random.State.t ->
  key ->
  instance ->
  Fr.t array ->
  proof

val verify : key -> instance -> public_inputs:Fr.t list -> proof -> bool

(** Verdict of a batched verification, mirroring
    [Groth16.batch_result]: [Batch_malformed] lists the 0-based indices
    of structurally ill-shaped members (wrong public-input arity, wrong
    commitment-grid or opening shape for this key) — cheap to detect and
    attributable — while [Batch_rejected] means some weighted
    combination of the cryptographic checks failed and identifying the
    culprit needs a per-item retry. *)
type batch_result =
  | Batch_accepted
  | Batch_rejected
  | Batch_malformed of int list

(** Randomised batch verification of several (public_inputs, proof)
    pairs under one key. Per-proof field work (sumcheck replays, matrix
    MLE evaluation) still runs for every member, but the group-side
    opening checks — the expensive O(√n) MSMs — are combined: each
    proof's opening is expressed as a linear relation over the shared
    Pedersen basis, Fiat–Shamir weights are drawn from a transcript
    binding every statement and proof in the batch (label
    "zkvc.spartan.batch"), and the weighted sum is evaluated as ONE MSM.
    Soundness error ≤ N/|F_r| on top of the per-proof checks.

    Raises [Invalid_argument] on an empty batch — zero instances have no
    sound verdict. *)
val verify_batch : key -> instance -> (Fr.t list * proof) list -> batch_result

(** {2 Fault injection}

    The proof type is abstract, so the adversary harness
    ({!Zkvc_adversary}) gets its mutation surface from here instead of
    re-deriving the proof layout: {!Mutate.sites} enumerates every
    corruptible component of a concrete proof (each row commitment, each
    sumcheck-round polynomial, each claimed evaluation, each opening
    element — Hyrax fold or IPA folding rounds), and {!Mutate.apply}
    perturbs exactly one (scalar + 1, point + generator), keeping every
    component a valid field/group element. Test-only. *)
module Mutate : sig
  type site

  val sites : proof -> site list
  val site_name : site -> string

  (** Copy of the proof with exactly [site] perturbed. Raises
      [Invalid_argument] if the site refers to the other opening mode. *)
  val apply : site -> proof -> proof
end
