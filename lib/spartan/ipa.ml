module Fr = Zkvc_field.Fr
module G1 = Zkvc_curve.G1
module Msm = Zkvc_curve.Msm.Make (G1)
module T = Zkvc_transcript.Transcript
module Ch = T.Challenge (Fr)

type proof =
  { ls : G1.t array;
    rs : G1.t array;
    a_final : Fr.t }

let proof_size_bytes p = ((Array.length p.ls + Array.length p.rs) * 64) + 32

let q_generator = Pedersen.hash_to_point "ipa-q"

let rounds_metric = Zkvc_obs.Metrics.counter "ipa.rounds"

let inner a b =
  let acc = ref Fr.zero in
  Array.iteri (fun i v -> acc := Fr.add !acc (Fr.mul v b.(i))) a;
  !acc

let rec nonzero_challenge tr =
  let u = Ch.challenge tr ~label:"ipa-u" in
  if Fr.is_zero u then nonzero_challenge tr else u

let check_pow2 n = n > 0 && n land (n - 1) = 0

let prove key tr ~a ~b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Ipa.prove: length mismatch";
  if not (check_pow2 n) then invalid_arg "Ipa.prove: length must be a power of two";
  if n > Pedersen.key_size key then invalid_arg "Ipa.prove: vector longer than key";
  let a = Array.copy a and b = Array.copy b in
  let g = Array.init n (fun i -> (Pedersen.generators key).(i)) in
  let rounds = ref [] in
  let len = ref n in
  while !len > 1 do
    Zkvc_obs.Metrics.incr rounds_metric;
    let half = !len / 2 in
    let al = Array.sub a 0 half and ar = Array.sub a half half in
    let bl = Array.sub b 0 half and br = Array.sub b half half in
    let gl = Array.sub g 0 half and gr = Array.sub g half half in
    let l = G1.add (Msm.msm gr al) (G1.mul_fr q_generator (inner al br)) in
    let r = G1.add (Msm.msm gl ar) (G1.mul_fr q_generator (inner ar bl)) in
    T.absorb_bytes tr ~label:"ipa-l" (G1.to_bytes l);
    T.absorb_bytes tr ~label:"ipa-r" (G1.to_bytes r);
    let u = nonzero_challenge tr in
    let uinv = Fr.inv u in
    for i = 0 to half - 1 do
      a.(i) <- Fr.add (Fr.mul al.(i) u) (Fr.mul ar.(i) uinv);
      b.(i) <- Fr.add (Fr.mul bl.(i) uinv) (Fr.mul br.(i) u);
      g.(i) <- G1.add (G1.mul_fr gl.(i) uinv) (G1.mul_fr gr.(i) u)
    done;
    rounds := (l, r) :: !rounds;
    len := half
  done;
  let rounds = List.rev !rounds in
  { ls = Array.of_list (List.map fst rounds);
    rs = Array.of_list (List.map snd rounds);
    a_final = a.(0) }

(* Deferred form of the verification equation. The original check
     P + Σ u_i²L_i + u_i⁻²R_i = a_final·G_final + (a_final·b_final)·Q
   is rearranged into a single linear group relation that holds iff
     P + Σ points + ⟨g_scalars, G⟩ + q_scalar·Q = 0,
   so a caller batching several openings can sum the scalar sides and
   check one MSM. [deferred] replays the transcript (absorbing every
   round's L/R before drawing its challenge, exactly as [verify] did)
   and performs only field work — no group operations. *)
type deferred =
  { g_scalars : Fr.t array; (* over the first n key generators *)
    q_scalar : Fr.t;
    points : (G1.t * Fr.t) list (* the proof's own L/R round points *) }

let deferred key tr ~b proof =
  let n = Array.length b in
  if not (check_pow2 n) then None
  else begin
    let k = Array.length proof.ls in
    if Array.length proof.rs <> k || 1 lsl k <> n || n > Pedersen.key_size key then None
    else begin
      (* replay the challenges *)
      let us =
        Array.init k (fun i ->
            T.absorb_bytes tr ~label:"ipa-l" (G1.to_bytes proof.ls.(i));
            T.absorb_bytes tr ~label:"ipa-r" (G1.to_bytes proof.rs.(i));
            nonzero_challenge tr)
      in
      let uinvs = Array.map Fr.inv us in
      (* s_j = Π u_i^{±1}: +1 when bit (k-1-i) of j is set (right half at
         round i). Both G and b fold as u⁻¹·left + u·right, so
         G_final = ⟨s, G⟩ and b_final = ⟨s, b⟩ (only a folds oppositely). *)
      let s = Array.make n Fr.one in
      for j = 0 to n - 1 do
        for i = 0 to k - 1 do
          let bit = (j lsr (k - 1 - i)) land 1 in
          s.(j) <- Fr.mul s.(j) (if bit = 1 then us.(i) else uinvs.(i))
        done
      done;
      let b_final =
        let acc = ref Fr.zero in
        Array.iteri (fun j v -> acc := Fr.add !acc (Fr.mul s.(j) v)) b;
        !acc
      in
      let neg_af = Fr.neg proof.a_final in
      Some
        { g_scalars = Array.map (fun sj -> Fr.mul neg_af sj) s;
          q_scalar = Fr.neg (Fr.mul proof.a_final b_final);
          points =
            List.concat
              (List.init k (fun i ->
                   [ (proof.ls.(i), Fr.sqr us.(i)); (proof.rs.(i), Fr.sqr uinvs.(i)) ])) }
    end
  end

let verify key tr ~b ~commitment proof =
  match deferred key tr ~b proof with
  | None -> false
  | Some d ->
    let tail = (commitment, Fr.one) :: (q_generator, d.q_scalar) :: d.points in
    let points =
      Array.append
        (Array.sub (Pedersen.generators key) 0 (Array.length d.g_scalars))
        (Array.of_list (List.map fst tail))
    in
    let scalars = Array.append d.g_scalars (Array.of_list (List.map snd tail)) in
    G1.equal (Msm.msm points scalars) G1.zero
