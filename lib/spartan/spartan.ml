module Fr = Zkvc_field.Fr
module G1 = Zkvc_curve.G1
module Msm_g1 = Zkvc_curve.Msm.Make (G1)
module Cs = Zkvc_r1cs.Constraint_system.Make (Fr)
module L = Zkvc_r1cs.Lc.Make (Fr)
module Sm = Sparse_matrix.Make (Fr)
module Sc = Sumcheck.Make (Fr)
module Ml = Zkvc_poly.Multilinear.Make (Fr)
module T = Zkvc_transcript.Transcript
module Ch = T.Challenge (Fr)
module Span = Zkvc_obs.Span
module Parallel = Zkvc_parallel

type instance =
  { mu : int; (* log2 padded rows *)
    nu : int; (* log2 padded z length; first half public, second witness *)
    half : int; (* 2^(nu-1) *)
    a : Sm.t;
    b : Sm.t;
    c : Sm.t;
    num_inputs : int;
    num_aux : int }

let log2_ceil n =
  let rec go k p = if p >= n then k else go (k + 1) (2 * p) in
  go 0 1

let preprocess (cs : Cs.t) =
  let rows = Stdlib.max 2 (Cs.num_constraints cs) in
  let mu = log2_ceil rows in
  let pub_slots = 1 + Cs.num_inputs cs in
  let half = 1 lsl log2_ceil (Stdlib.max pub_slots (Stdlib.max 1 (Cs.num_aux cs))) in
  let nu = 1 + log2_ceil half in
  let ni = Cs.num_inputs cs in
  let remap j = if j <= ni then j else half + (j - ni - 1) in
  let matrix select =
    let entries = ref [] in
    Array.iteri
      (fun i c ->
        List.iter
          (fun (v, coeff) ->
            entries := { Sm.row = i; col = remap v; value = coeff } :: !entries)
          (L.terms (select c)))
      cs.Cs.constraints;
    Sm.create ~mu ~nu !entries
  in
  { mu;
    nu;
    half;
    a = matrix (fun c -> c.Cs.a);
    b = matrix (fun c -> c.Cs.b);
    c = matrix (fun c -> c.Cs.c);
    num_inputs = ni;
    num_aux = Cs.num_aux cs }

let num_rounds_x t = t.mu
let num_rounds_y t = t.nu

(* Hyrax layout of the witness half: 2^wrows × 2^wcols matrix. *)
let split_k t =
  let k = t.nu - 1 in
  let wrows = k / 2 in
  (wrows, k - wrows)

type key = { pedersen : Pedersen.key; wrows : int; wcols : int }

let setup t =
  let wrows, wcols = split_k t in
  { pedersen = Pedersen.create_key (1 lsl wcols); wrows; wcols }

(* Two ways to open w̃ at the challenge point:
   - [Fold_opening]: Hyrax-lite, reveal the L-combined row vector (O(√n));
   - [Ipa_opening]: compress the same statement with a Bulletproofs-style
     inner-product argument (O(log n) proof; the aggregated blind is
     revealed, trading perfect hiding of the fold for succinctness). *)
type opening =
  | Fold_opening of { folded : Fr.t array; (* Lᵀ·W, length 2^wcols *) fold_blind : Fr.t }
  | Ipa_opening of { blind : Fr.t; w_eval : Fr.t; ipa : Ipa.proof }

type proof =
  { comm_rows : G1.t array;
    sc1 : Sc.proof;
    va : Fr.t;
    vb : Fr.t;
    vc : Fr.t;
    sc2 : Sc.proof;
    opening : opening }

let fr_bytes = 32
let g1_bytes = 64

let proof_size_bytes p =
  let rounds_bytes sc =
    List.fold_left (fun acc evals -> acc + (Array.length evals * fr_bytes)) 0 sc
  in
  let opening_bytes =
    match p.opening with
    | Fold_opening { folded; _ } -> (Array.length folded * fr_bytes) + fr_bytes
    | Ipa_opening { ipa; _ } -> (2 * fr_bytes) + Ipa.proof_size_bytes ipa
  in
  (Array.length p.comm_rows * g1_bytes)
  + rounds_bytes p.sc1 + rounds_bytes p.sc2
  + (3 * fr_bytes)
  + opening_bytes

(* ---- wire encodings ----
   Length-prefixed arrays over the tagged uncompressed point format and
   the canonical 32-byte field encoding. Parsing validates every G1
   point's curve equation and every scalar's canonicity, matching
   Groth16's [proof_of_bytes_exn] discipline; raises [Invalid_argument]
   on truncation, bad tags, oversized counts or trailing bytes. *)

let w_u32 buf n =
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (n land 0xff))

let w_fr buf x = Buffer.add_bytes buf (Fr.to_bytes x)
let w_g1 buf p = Buffer.add_bytes buf (G1.to_bytes p)

let w_g1_array buf a =
  w_u32 buf (Array.length a);
  Array.iter (w_g1 buf) a

let w_fr_array buf a =
  w_u32 buf (Array.length a);
  Array.iter (w_fr buf) a

let w_sumcheck buf (sc : Sc.proof) =
  w_u32 buf (List.length sc);
  List.iter (w_fr_array buf) sc

type cursor = { cbuf : Bytes.t; mutable pos : int }

let need what c n =
  if c.pos + n > Bytes.length c.cbuf then
    invalid_arg (Printf.sprintf "Spartan.%s: truncated input" what)

let r_u8 what c =
  need what c 1;
  let n = Char.code (Bytes.get c.cbuf c.pos) in
  c.pos <- c.pos + 1;
  n

let r_u32 what c =
  need what c 4;
  let b i = Char.code (Bytes.get c.cbuf (c.pos + i)) in
  let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  c.pos <- c.pos + 4;
  n

let r_fr what c =
  need what c fr_bytes;
  let x = Fr.of_bytes_exn (Bytes.sub c.cbuf c.pos fr_bytes) in
  c.pos <- c.pos + fr_bytes;
  x

let r_g1 what c =
  need what c G1.size_in_bytes;
  let p = G1.of_bytes_exn (Bytes.sub c.cbuf c.pos G1.size_in_bytes) in
  c.pos <- c.pos + G1.size_in_bytes;
  p

let r_array what c width read =
  let n = r_u32 what c in
  if n > (Bytes.length c.cbuf - c.pos) / width then
    invalid_arg (Printf.sprintf "Spartan.%s: oversized array count" what);
  Array.init n (fun _ -> read what c)

let r_sumcheck what c =
  let n = r_u32 what c in
  if n > Bytes.length c.cbuf - c.pos then
    invalid_arg (Printf.sprintf "Spartan.%s: oversized round count" what);
  List.init n (fun _ -> r_array what c fr_bytes r_fr)

let finished what c =
  if c.pos <> Bytes.length c.cbuf then
    invalid_arg (Printf.sprintf "Spartan.%s: trailing bytes" what)

let proof_to_bytes p =
  let buf = Buffer.create 4096 in
  w_g1_array buf p.comm_rows;
  w_sumcheck buf p.sc1;
  w_fr buf p.va;
  w_fr buf p.vb;
  w_fr buf p.vc;
  w_sumcheck buf p.sc2;
  (match p.opening with
   | Fold_opening { folded; fold_blind } ->
     Buffer.add_char buf '\000';
     w_fr_array buf folded;
     w_fr buf fold_blind
   | Ipa_opening { blind; w_eval; ipa } ->
     Buffer.add_char buf '\001';
     w_fr buf blind;
     w_fr buf w_eval;
     w_g1_array buf ipa.Ipa.ls;
     w_g1_array buf ipa.Ipa.rs;
     w_fr buf ipa.Ipa.a_final);
  Buffer.to_bytes buf

let proof_of_bytes_exn bytes =
  let what = "proof_of_bytes_exn" in
  let c = { cbuf = bytes; pos = 0 } in
  let comm_rows = r_array what c G1.size_in_bytes r_g1 in
  let sc1 = r_sumcheck what c in
  let va = r_fr what c in
  let vb = r_fr what c in
  let vc = r_fr what c in
  let sc2 = r_sumcheck what c in
  let opening =
    match r_u8 what c with
    | 0 ->
      let folded = r_array what c fr_bytes r_fr in
      let fold_blind = r_fr what c in
      Fold_opening { folded; fold_blind }
    | 1 ->
      let blind = r_fr what c in
      let w_eval = r_fr what c in
      let ls = r_array what c G1.size_in_bytes r_g1 in
      let rs = r_array what c G1.size_in_bytes r_g1 in
      let a_final = r_fr what c in
      Ipa_opening { blind; w_eval; ipa = { Ipa.ls; rs; a_final } }
    | t -> invalid_arg (Printf.sprintf "Spartan.%s: unknown opening tag %d" what t)
  in
  finished what c;
  { comm_rows; sc1; va; vb; vc; sc2; opening }

let key_to_bytes (k : key) =
  let buf = Buffer.create 4096 in
  Buffer.add_char buf (Char.chr k.wrows);
  Buffer.add_char buf (Char.chr k.wcols);
  w_g1_array buf (Pedersen.generators k.pedersen);
  w_g1 buf (Pedersen.blinder k.pedersen);
  Buffer.to_bytes buf

let key_of_bytes_exn bytes =
  let what = "key_of_bytes_exn" in
  let c = { cbuf = bytes; pos = 0 } in
  let wrows = r_u8 what c in
  let wcols = r_u8 what c in
  (* wrows/wcols are untrusted log-dims; bound them before any [1 lsl]
     (OCaml lsl with shift >= 63 is unspecified, so wcols=64 could
     otherwise sneak past the generator-count check below) *)
  if wrows > 30 || wcols > 30 then
    invalid_arg
      (Printf.sprintf "Spartan.%s: witness grid log-dims out of range (wrows=%d wcols=%d)"
         what wrows wcols);
  let generators = r_array what c G1.size_in_bytes r_g1 in
  let blinder = r_g1 what c in
  finished what c;
  if Array.length generators <> 1 lsl wcols then
    invalid_arg (Printf.sprintf "Spartan.%s: generator count does not match wcols" what);
  { pedersen = Pedersen.of_raw ~generators ~blinder; wrows; wcols }

(* Build the padded z vector: [1; inputs; 0...0 | aux; 0...0]. *)
let build_z t assignment =
  let z = Array.make (2 * t.half) Fr.zero in
  for j = 0 to t.num_inputs do
    z.(j) <- assignment.(j)
  done;
  for j = 0 to t.num_aux - 1 do
    z.(t.half + j) <- assignment.(1 + t.num_inputs + j)
  done;
  z

(* χ_idx(point): Lagrange basis of the hypercube at a boolean index. *)
let chi point nbits idx =
  List.fold_left
    (fun (acc, i) r ->
      let bit = (idx lsr (nbits - 1 - i)) land 1 in
      (Fr.mul acc (if bit = 1 then r else Fr.sub Fr.one r), i + 1))
    (Fr.one, 0) point
  |> fst

let transcript_init t ~public_inputs =
  let tr = T.create ~label:"zkvc.spartan" in
  T.absorb_int tr ~label:"mu" t.mu;
  T.absorb_int tr ~label:"nu" t.nu;
  Ch.absorb_list tr ~label:"io" public_inputs;
  tr

let split_at k l =
  let rec go i acc rest =
    if i = 0 then (List.rev acc, rest)
    else match rest with
      | [] -> invalid_arg "split_at"
      | x :: tl -> go (i - 1) (x :: acc) tl
  in
  go k [] l

let prove ?(opening_mode = `Hyrax_fold) st key t assignment =
  let z = build_z t assignment in
  let w = Array.sub z t.half t.half in
  let nrows = 1 lsl key.wrows and ncols = 1 lsl key.wcols in
  let blinds = Array.init nrows (fun _ -> Fr.random st) in
  let comm_rows =
    (* rows commit independently; the MSM inside each commit degrades to
       its sequential path when called from a pool worker *)
    Span.with_span "prove.commit_witness" (fun () ->
        let commit_row i =
          Pedersen.commit key.pedersen (Array.sub w (i * ncols) ncols) ~blind:blinds.(i)
        in
        if Parallel.jobs () > 1 && nrows >= 4 then Parallel.parallel_init nrows commit_row
        else Array.init nrows commit_row)
  in
  let public_inputs = Array.to_list (Array.sub assignment 1 t.num_inputs) in
  let tr = transcript_init t ~public_inputs in
  Array.iter (fun c -> T.absorb_bytes tr ~label:"comm" (G1.to_bytes c)) comm_rows;
  (* phase 1 *)
  let tau = Ch.challenges tr ~label:"tau" t.mu in
  let eq_tau = Ml.evals (Ml.eq_table tau) in
  let az, bz, cz =
    Span.with_span "prove.matrix_vector" (fun () ->
        (Sm.mul_vec t.a z, Sm.mul_vec t.b z, Sm.mul_vec t.c z))
  in
  let sc1, rx, finals1 =
    Span.with_span "prove.sumcheck1" (fun () ->
        Sc.prove tr ~label:"sc1" ~degree:3 [| eq_tau; az; bz; cz |]
          ~combine:(fun v -> Fr.mul v.(0) (Fr.sub (Fr.mul v.(1) v.(2)) v.(3))))
  in
  let va = finals1.(1) and vb = finals1.(2) and vc = finals1.(3) in
  Ch.absorb_list tr ~label:"claims" [ va; vb; vc ];
  (* phase 2 *)
  let ra = Ch.challenge tr ~label:"ra" in
  let rb = Ch.challenge tr ~label:"rb" in
  let rc = Ch.challenge tr ~label:"rc" in
  let mx =
    Span.with_span "prove.matrix_fold" (fun () ->
        let weights = Ml.evals (Ml.eq_table rx) in
        let ma = Sm.fold_rows t.a weights
        and mb = Sm.fold_rows t.b weights
        and mc = Sm.fold_rows t.c weights in
        let combine j =
          Fr.add (Fr.mul ra ma.(j)) (Fr.add (Fr.mul rb mb.(j)) (Fr.mul rc mc.(j)))
        in
        let n = 2 * t.half in
        if Parallel.jobs () > 1 && n >= 1024 then Parallel.parallel_init n combine
        else Array.init n combine)
  in
  let sc2, ry, _finals2 =
    Span.with_span "prove.sumcheck2" (fun () ->
        Sc.prove tr ~label:"sc2" ~degree:2 [| mx; z |]
          ~combine:(fun v -> Fr.mul v.(0) v.(1)))
  in
  (* Hyrax-style opening of w̃ at the witness-half point *)
  let opening =
    Span.with_span "prove.opening" (fun () ->
        let ry_w = List.tl ry in
        let lcoords, _rcoords = split_at key.wrows ry_w in
        let lweights = Ml.evals (Ml.eq_table lcoords) in
        let fold_col j =
          let acc = ref Fr.zero in
          for i = 0 to nrows - 1 do
            acc := Fr.add !acc (Fr.mul lweights.(i) w.((i * ncols) + j))
          done;
          !acc
        in
        let folded =
          if Parallel.jobs () > 1 && ncols >= 64 then Parallel.parallel_init ncols fold_col
          else Array.init ncols fold_col
        in
        let fold_blind =
          let acc = ref Fr.zero in
          for i = 0 to nrows - 1 do
            acc := Fr.add !acc (Fr.mul lweights.(i) blinds.(i))
          done;
          !acc
        in
        match opening_mode with
        | `Hyrax_fold -> Fold_opening { folded; fold_blind }
        | `Ipa ->
          let _rcoords_len = key.wcols in
          let rcoords = snd (split_at key.wrows ry_w) in
          let rweights = Ml.evals (Ml.eq_table rcoords) in
          let w_eval =
            let acc = ref Fr.zero in
            Array.iteri (fun j v -> acc := Fr.add !acc (Fr.mul v rweights.(j))) folded;
            !acc
          in
          Ch.absorb tr ~label:"open-blind" fold_blind;
          Ch.absorb tr ~label:"open-eval" w_eval;
          let ipa = Ipa.prove key.pedersen tr ~a:folded ~b:rweights in
          Ipa_opening { blind = fold_blind; w_eval; ipa })
  in
  { comm_rows; sc1; va; vb; vc; sc2; opening }

(* ---- deferred-opening verification ----

   All of Spartan's verifier checks except one are field work: the
   sumcheck replays, the matrix MLE evaluation and the final
   [e2 = m̃·z̃] identity. The single group-side check — that the opening
   is consistent with the row commitments — is a linear relation over a
   fixed basis (the Pedersen generators, the blinder U, the IPA
   generator Q) plus per-proof points (row commitments, IPA round L/Rs):

     ⟨d_gen, G⟩ + d_blinder·U + d_q·Q + Σ d_points = 0.

   [verify_deferred] runs every field check and returns that relation
   instead of evaluating it, so [verify_batch] can take a random linear
   combination of N relations (the basis scalars sum; the per-proof
   points concatenate) and evaluate ONE MSM for the whole batch. *)
type deferred =
  { d_gen : Fr.t array; (* scalars over the Pedersen generators, length ncols *)
    d_blinder : Fr.t;
    d_q : Fr.t;
    d_points : (G1.t * Fr.t) list }

let verify_deferred key t ~public_inputs proof =
  if List.length public_inputs <> t.num_inputs then None
  else begin
    let nrows = 1 lsl key.wrows and ncols = 1 lsl key.wcols in
    if Array.length proof.comm_rows <> nrows then None
    else begin
      let tr = transcript_init t ~public_inputs in
      Array.iter (fun c -> T.absorb_bytes tr ~label:"comm" (G1.to_bytes c)) proof.comm_rows;
      let tau = Ch.challenges tr ~label:"tau" t.mu in
      match Sc.verify tr ~label:"sc1" ~degree:3 ~claim:Fr.zero proof.sc1 with
      | None -> None
      | Some (e1, rx) ->
        let eq_tau_rx = Ml.eq_eval tau rx in
        let expected1 =
          Fr.mul eq_tau_rx (Fr.sub (Fr.mul proof.va proof.vb) proof.vc)
        in
        if not (Fr.equal e1 expected1) then None
        else begin
          Ch.absorb_list tr ~label:"claims" [ proof.va; proof.vb; proof.vc ];
          let ra = Ch.challenge tr ~label:"ra" in
          let rb = Ch.challenge tr ~label:"rb" in
          let rc = Ch.challenge tr ~label:"rc" in
          let claim2 =
            Fr.add (Fr.mul ra proof.va) (Fr.add (Fr.mul rb proof.vb) (Fr.mul rc proof.vc))
          in
          match Sc.verify tr ~label:"sc2" ~degree:2 ~claim:claim2 proof.sc2 with
          | None -> None
          | Some (e2, ry) ->
            (* combined matrix MLE at (rx, ry), O(nnz) *)
            let m_eval =
              Span.with_span "verify.matrix_eval" (fun () ->
                  Fr.add
                    (Fr.mul ra (Sm.eval t.a ~rx ~ry))
                    (Fr.add (Fr.mul rb (Sm.eval t.b ~rx ~ry)) (Fr.mul rc (Sm.eval t.c ~rx ~ry))))
            in
            match ry with
            | [] -> None
            | ry0 :: ry_w ->
              let lcoords, rcoords = split_at key.wrows ry_w in
              let lweights = Ml.evals (Ml.eq_table lcoords) in
              let rweights = Ml.evals (Ml.eq_table rcoords) in
              let comm_terms () =
                Array.to_list (Array.mapi (fun i c -> (c, lweights.(i))) proof.comm_rows)
              in
              let opening_opt =
                match proof.opening with
                | Fold_opening { folded; fold_blind } ->
                  if Array.length folded <> ncols then None
                  else begin
                    (* check_fold rearranged:
                       Σ L_i·C_i − ⟨folded, G⟩ − fold_blind·U = 0 *)
                    let w_eval = ref Fr.zero in
                    for j = 0 to ncols - 1 do
                      w_eval := Fr.add !w_eval (Fr.mul folded.(j) rweights.(j))
                    done;
                    Some
                      ( !w_eval,
                        { d_gen = Array.map Fr.neg folded;
                          d_blinder = Fr.neg fold_blind;
                          d_q = Fr.zero;
                          d_points = comm_terms () } )
                  end
                | Ipa_opening { blind; w_eval; ipa } -> (
                  (* P = Σ L_i·C_i − blind·U + w_eval·Q, folded into the
                     IPA's own deferred relation *)
                  Ch.absorb tr ~label:"open-blind" blind;
                  Ch.absorb tr ~label:"open-eval" w_eval;
                  match Ipa.deferred key.pedersen tr ~b:rweights ipa with
                  | None -> None
                  | Some idef ->
                    Some
                      ( w_eval,
                        { d_gen = idef.Ipa.g_scalars;
                          d_blinder = Fr.neg blind;
                          d_q = Fr.add w_eval idef.Ipa.q_scalar;
                          d_points = comm_terms () @ idef.Ipa.points } ))
              in
              match opening_opt with
              | None -> None
              | Some (w_eval, d) ->
                (* public half: [1; io; 0...] evaluated directly *)
                let k = t.nu - 1 in
                let pub_eval = ref (chi ry_w k 0) in
                List.iteri
                  (fun i x ->
                    pub_eval := Fr.add !pub_eval (Fr.mul x (chi ry_w k (i + 1))))
                  public_inputs;
                let z_eval =
                  Fr.add
                    (Fr.mul (Fr.sub Fr.one ry0) !pub_eval)
                    (Fr.mul ry0 w_eval)
                in
                if Fr.equal e2 (Fr.mul m_eval z_eval) then Some d else None
        end
    end
  end

(* Evaluate a weighted sum of deferred relations as one MSM over
   [generators; U; Q; all per-proof points]. *)
let check_deferred key weighted =
  let ncols = 1 lsl key.wcols in
  let gen_scalars = Array.make ncols Fr.zero in
  let blinder_scalar = ref Fr.zero in
  let q_scalar = ref Fr.zero in
  let extra = ref [] in
  List.iter
    (fun (z, d) ->
      Array.iteri
        (fun j s -> gen_scalars.(j) <- Fr.add gen_scalars.(j) (Fr.mul z s))
        d.d_gen;
      blinder_scalar := Fr.add !blinder_scalar (Fr.mul z d.d_blinder);
      q_scalar := Fr.add !q_scalar (Fr.mul z d.d_q);
      List.iter (fun (p, s) -> extra := (p, Fr.mul z s) :: !extra) d.d_points)
    weighted;
  let tail =
    (Pedersen.blinder key.pedersen, !blinder_scalar)
    :: (Ipa.q_generator, !q_scalar)
    :: !extra
  in
  let points =
    Array.append
      (Array.sub (Pedersen.generators key.pedersen) 0 ncols)
      (Array.of_list (List.map fst tail))
  in
  let scalars = Array.append gen_scalars (Array.of_list (List.map snd tail)) in
  G1.equal (Msm_g1.msm points scalars) G1.zero

let verify key t ~public_inputs proof =
  match verify_deferred key t ~public_inputs proof with
  | None -> false
  | Some d ->
    Span.with_span "verify.opening_msm" (fun () -> check_deferred key [ (Fr.one, d) ])

(* Structural well-formedness relative to a key: shape faults a batch
   verifier reports by index (attributable to one member) rather than
   folding into the batch-wide cryptographic verdict. *)
let well_formed key t ~public_inputs proof =
  List.length public_inputs = t.num_inputs
  && Array.length proof.comm_rows = 1 lsl key.wrows
  && (match proof.opening with
     | Fold_opening { folded; _ } -> Array.length folded = 1 lsl key.wcols
     | Ipa_opening { ipa; _ } ->
       Array.length ipa.Ipa.ls = key.wcols
       && Array.length ipa.Ipa.rs = key.wcols
       && 1 lsl key.wcols <= Pedersen.key_size key.pedersen)

type batch_result =
  | Batch_accepted
  | Batch_rejected
  | Batch_malformed of int list

(* Randomised batch verification, mirroring Groth16.verify_batch's
   transcript discipline: each instance's statement and full proof bytes
   are absorbed before any weight is drawn, so every z_i depends on the
   whole batch and a prover cannot craft member i against a weight it
   can predict. Field work (sumchecks, matrix evaluation) still runs per
   proof — it is inherently per-instance — but the group side collapses
   into one MSM: the z-weighted sum of the N deferred opening relations
   over the shared generator basis. A cheating opening survives only if
   its relation's nonzero residual is annihilated by the random weights,
   probability ≤ N/|F_r|. *)
let verify_batch key t instances =
  if instances = [] then invalid_arg "Spartan.verify_batch: empty batch";
  let bad =
    let _, acc =
      List.fold_left
        (fun (i, acc) (io, p) ->
          (i + 1, if well_formed key t ~public_inputs:io p then acc else i :: acc))
        (0, []) instances
    in
    List.rev acc
  in
  match bad with
  | _ :: _ -> Batch_malformed bad
  | [] ->
    let deferreds =
      List.map (fun (io, p) -> verify_deferred key t ~public_inputs:io p) instances
    in
    if List.exists Option.is_none deferreds then Batch_rejected
    else begin
      let tr = T.create ~label:"zkvc.spartan.batch" in
      T.absorb_int tr ~label:"n" (List.length instances);
      T.absorb_int tr ~label:"mu" t.mu;
      T.absorb_int tr ~label:"nu" t.nu;
      List.iter
        (fun (io, p) ->
          Ch.absorb_list tr ~label:"io" io;
          T.absorb_bytes tr ~label:"proof" (proof_to_bytes p))
        instances;
      let weighted =
        List.map (fun d -> (Ch.challenge tr ~label:"z", Option.get d)) deferreds
      in
      let ok =
        Span.with_span "verify.batch_msm" (fun () -> check_deferred key weighted)
      in
      if ok then Batch_accepted else Batch_rejected
    end

(* Fault-injection sites for the adversary harness (lib/adversary). The
   proof type is abstract in the interface, so the enumeration of
   mutable components lives here rather than duplicating the layout
   outside. Scalars are bumped by one, points by the generator: every
   mutated proof still parses and every component is a valid field /
   group element, so rejection must come from the protocol checks. *)
module Mutate = struct
  type site =
    | Comm_row of int
    | Sc1_round of int
    | Claim_va
    | Claim_vb
    | Claim_vc
    | Sc2_round of int
    | Folded of int
    | Fold_blind
    | Ipa_blind
    | Ipa_eval
    | Ipa_l of int
    | Ipa_r of int
    | Ipa_a_final

  let site_name = function
    | Comm_row i -> Printf.sprintf "comm_row[%d]" i
    | Sc1_round r -> Printf.sprintf "sc1.round[%d]" r
    | Claim_va -> "claim.va"
    | Claim_vb -> "claim.vb"
    | Claim_vc -> "claim.vc"
    | Sc2_round r -> Printf.sprintf "sc2.round[%d]" r
    | Folded j -> Printf.sprintf "opening.folded[%d]" j
    | Fold_blind -> "opening.fold_blind"
    | Ipa_blind -> "opening.ipa_blind"
    | Ipa_eval -> "opening.ipa_eval"
    | Ipa_l i -> Printf.sprintf "opening.ipa.l[%d]" i
    | Ipa_r i -> Printf.sprintf "opening.ipa.r[%d]" i
    | Ipa_a_final -> "opening.ipa.a_final"

  let sites p =
    let comm = List.init (Array.length p.comm_rows) (fun i -> Comm_row i) in
    let sc1 = List.init (List.length p.sc1) (fun r -> Sc1_round r) in
    let sc2 = List.init (List.length p.sc2) (fun r -> Sc2_round r) in
    let opening =
      match p.opening with
      | Fold_opening { folded; _ } ->
        List.init (Array.length folded) (fun j -> Folded j) @ [ Fold_blind ]
      | Ipa_opening { ipa; _ } ->
        [ Ipa_blind; Ipa_eval ]
        @ List.init (Array.length ipa.Ipa.ls) (fun i -> Ipa_l i)
        @ List.init (Array.length ipa.Ipa.rs) (fun i -> Ipa_r i)
        @ [ Ipa_a_final ]
    in
    comm @ sc1 @ [ Claim_va; Claim_vb; Claim_vc ] @ sc2 @ opening

  let bump_fr x = Fr.add x Fr.one
  let bump_g1 p = G1.add p G1.generator

  let bump_at i f a = Array.mapi (fun j v -> if i = j then f v else v) a

  (* perturb the first evaluation of round [r] *)
  let bump_sc r sc =
    List.mapi (fun i evals -> if i = r then bump_at 0 bump_fr evals else evals) sc

  let apply site p =
    match (site, p.opening) with
    | Comm_row i, _ -> { p with comm_rows = bump_at i bump_g1 p.comm_rows }
    | Sc1_round r, _ -> { p with sc1 = bump_sc r p.sc1 }
    | Claim_va, _ -> { p with va = bump_fr p.va }
    | Claim_vb, _ -> { p with vb = bump_fr p.vb }
    | Claim_vc, _ -> { p with vc = bump_fr p.vc }
    | Sc2_round r, _ -> { p with sc2 = bump_sc r p.sc2 }
    | Folded j, Fold_opening o ->
      { p with opening = Fold_opening { o with folded = bump_at j bump_fr o.folded } }
    | Fold_blind, Fold_opening o ->
      { p with opening = Fold_opening { o with fold_blind = bump_fr o.fold_blind } }
    | Ipa_blind, Ipa_opening o ->
      { p with opening = Ipa_opening { o with blind = bump_fr o.blind } }
    | Ipa_eval, Ipa_opening o ->
      { p with opening = Ipa_opening { o with w_eval = bump_fr o.w_eval } }
    | Ipa_l i, Ipa_opening o ->
      { p with
        opening =
          Ipa_opening { o with ipa = { o.ipa with Ipa.ls = bump_at i bump_g1 o.ipa.Ipa.ls } } }
    | Ipa_r i, Ipa_opening o ->
      { p with
        opening =
          Ipa_opening { o with ipa = { o.ipa with Ipa.rs = bump_at i bump_g1 o.ipa.Ipa.rs } } }
    | Ipa_a_final, Ipa_opening o ->
      { p with
        opening =
          Ipa_opening { o with ipa = { o.ipa with Ipa.a_final = bump_fr o.ipa.Ipa.a_final } } }
    | (Folded _ | Fold_blind), Ipa_opening _
    | (Ipa_blind | Ipa_eval | Ipa_l _ | Ipa_r _ | Ipa_a_final), Fold_opening _ ->
      invalid_arg "Spartan.Mutate.apply: site does not match the proof's opening mode"
end
