(** Pedersen vector commitments over BN254 G1 with nothing-up-my-sleeve
    generators (try-and-increment hash-to-curve from SHA-256). Binding under
    the discrete log assumption; hiding through the blinding generator. *)

module Fq = Zkvc_field.Fq
module Fr = Zkvc_field.Fr
module Bigint = Zkvc_num.Bigint
module G1 = Zkvc_curve.G1
module Sha256 = Zkvc_hash.Sha256
module Msm = Zkvc_curve.Msm.Make (G1)

(* y² = x³ + 3 over Fq; q ≡ 3 (mod 4) so sqrt is a single exponentiation. *)
let sqrt_fq a =
  let e = Bigint.shift_right (Bigint.add Fq.modulus Bigint.one) 2 in
  let y = Fq.pow a e in
  if Fq.equal (Fq.sqr y) a then Some y else None

(** Deterministic point with unknown discrete log: hash the seed, use the
    digest as an x-coordinate and increment until the curve equation has a
    solution. G1 has prime order, so no cofactor clearing is needed. *)
let hash_to_point seed =
  let rec try_x x =
    let rhs = Fq.add (Fq.mul x (Fq.sqr x)) (Fq.of_int 3) in
    match sqrt_fq rhs with
    | Some y -> G1.of_affine (x, y)
    | None -> try_x (Fq.add x Fq.one)
  in
  let digest = Sha256.digest_string ("zkvc.pedersen." ^ seed) in
  try_x (Fq.of_bigint (Bigint.of_bytes_be digest))

type key =
  { generators : G1.t array; (* H_0 .. H_{n-1} *)
    blinder : G1.t (* U *) }

let create_key n =
  { generators = Array.init n (fun i -> hash_to_point (string_of_int i));
    blinder = hash_to_point "blinder" }

(** Reassemble a key from raw points (deserialisation). The caller is
    trusted about the generators' provenance — points parsed from a key
    file are curve-validated but their discrete logs are unknowable only
    if the file really came from {!create_key}. *)
let of_raw ~generators ~blinder = { generators; blinder }

let key_size key = Array.length key.generators

let generators key = key.generators
let blinder key = key.blinder

(** [commit key v ~blind = Σ v_i H_i + blind·U]. [v] may be shorter than
    the key. *)
let commit key v ~blind =
  if Array.length v > Array.length key.generators then
    invalid_arg "Pedersen.commit: vector longer than key";
  let points = Array.sub key.generators 0 (Array.length v) in
  G1.add (Msm.msm points v) (G1.mul_fr key.blinder blind)

(** Homomorphism check used by the Hyrax-style opening:
    [Σ w_i·C_i = commit(folded, blind)]. *)
let check_fold key ~commitments ~weights ~folded ~blind =
  if Array.length commitments <> Array.length weights then
    invalid_arg "Pedersen.check_fold: length mismatch";
  let lhs = Msm.msm commitments weights in
  G1.equal lhs (commit key folded ~blind)
