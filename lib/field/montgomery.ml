module Bigint = Zkvc_num.Bigint

(* One shared counter across all field instantiations (Fr, Fq, Fsmall):
   total Montgomery multiplications — the innermost prover cost unit. The
   hot path hoists the sink flag so the disabled cost is a load + branch. *)
let mul_metric = Zkvc_obs.Metrics.counter "field.mont_mul"
let obs_on = Zkvc_obs.Sink.enabled

let limb_bits = 26
let limb_base = 1 lsl limb_bits
let limb_mask = limb_base - 1

module Make (M : sig
  val modulus : string
end) : Field_intf.S = struct
  type t = int array (* Montgomery form, k limbs, canonical in [0, p) *)

  let modulus = Bigint.of_string M.modulus
  let () = assert (Bigint.gt modulus Bigint.one && not (Bigint.is_even modulus))
  let bits = Bigint.num_bits modulus
  let k = (bits + limb_bits - 1) / limb_bits
  let size_in_bytes = (bits + 7) / 8

  let limbs_of_bigint n =
    let a = Array.make k 0 in
    let rec go n i =
      if not (Bigint.is_zero n) then begin
        (match Bigint.to_int_opt (Bigint.erem n (Bigint.of_int limb_base)) with
         | Some v -> a.(i) <- v
         | None -> assert false);
        go (Bigint.shift_right n limb_bits) (i + 1)
      end
    in
    go n 0;
    a

  let bigint_of_limbs a =
    let acc = ref Bigint.zero in
    for i = k - 1 downto 0 do
      acc := Bigint.add (Bigint.shift_left !acc limb_bits) (Bigint.of_int a.(i))
    done;
    !acc

  let p_limbs = limbs_of_bigint modulus

  (* -p[0]^{-1} mod 2^26, via Newton iteration on the odd limb. *)
  let n0' =
    let p0 = p_limbs.(0) in
    let x = ref 1 in
    for _ = 1 to 5 do
      x := (!x * (2 - (p0 * !x))) land limb_mask
    done;
    (limb_base - !x) land limb_mask

  let r2 =
    let r = Bigint.shift_left Bigint.one (limb_bits * k) in
    limbs_of_bigint (Bigint.erem (Bigint.mul r r) modulus)

  let geq_p t =
    (* compare t (k limbs) with p *)
    let rec go i = if i < 0 then true else if t.(i) <> p_limbs.(i) then t.(i) > p_limbs.(i) else go (i - 1) in
    go (k - 1)

  let sub_p_inplace t =
    let borrow = ref 0 in
    for i = 0 to k - 1 do
      let s = t.(i) - p_limbs.(i) - !borrow in
      if s < 0 then begin t.(i) <- s + limb_base; borrow := 1 end
      else begin t.(i) <- s; borrow := 0 end
    done

  (* CIOS Montgomery multiplication (Koç–Acar–Kaliski). *)
  let mont_mul a b =
    if !obs_on then Atomic.incr mul_metric.Zkvc_obs.Metrics.value;
    let t = Array.make (k + 2) 0 in
    for i = 0 to k - 1 do
      let ai = a.(i) in
      let c = ref 0 in
      for j = 0 to k - 1 do
        let s = t.(j) + (ai * b.(j)) + !c in
        t.(j) <- s land limb_mask;
        c := s lsr limb_bits
      done;
      let s = t.(k) + !c in
      t.(k) <- s land limb_mask;
      t.(k + 1) <- s lsr limb_bits;
      let m = (t.(0) * n0') land limb_mask in
      let s = t.(0) + (m * p_limbs.(0)) in
      c := s lsr limb_bits;
      for j = 1 to k - 1 do
        let s = t.(j) + (m * p_limbs.(j)) + !c in
        t.(j - 1) <- s land limb_mask;
        c := s lsr limb_bits
      done;
      let s = t.(k) + !c in
      t.(k - 1) <- s land limb_mask;
      c := s lsr limb_bits;
      t.(k) <- t.(k + 1) + !c;
      t.(k + 1) <- 0
    done;
    let r = Array.sub t 0 k in
    if t.(k) <> 0 || geq_p r then sub_p_inplace r;
    r

  let zero = Array.make k 0

  let of_bigint n = mont_mul (limbs_of_bigint (Bigint.erem n modulus)) r2
  let to_bigint a =
    let one_raw = Array.make k 0 in
    one_raw.(0) <- 1;
    bigint_of_limbs (mont_mul a one_raw)

  let one = of_bigint Bigint.one

  let of_int n = of_bigint (Bigint.of_int n)
  let of_string s = of_bigint (Bigint.of_string s)
  let to_string a = Bigint.to_string (to_bigint a)

  let equal a b = a = b
  let is_zero a = equal a zero
  let is_one a = equal a one

  let add a b =
    let t = Array.make k 0 in
    let carry = ref 0 in
    for i = 0 to k - 1 do
      let s = a.(i) + b.(i) + !carry in
      t.(i) <- s land limb_mask;
      carry := s lsr limb_bits
    done;
    if !carry <> 0 || geq_p t then sub_p_inplace t;
    t

  let sub a b =
    let t = Array.make k 0 in
    let borrow = ref 0 in
    for i = 0 to k - 1 do
      let s = a.(i) - b.(i) - !borrow in
      if s < 0 then begin t.(i) <- s + limb_base; borrow := 1 end
      else begin t.(i) <- s; borrow := 0 end
    done;
    if !borrow <> 0 then begin
      let carry = ref 0 in
      for i = 0 to k - 1 do
        let s = t.(i) + p_limbs.(i) + !carry in
        t.(i) <- s land limb_mask;
        carry := s lsr limb_bits
      done
    end;
    t

  let neg a = if is_zero a then a else sub zero a
  let mul = mont_mul
  let sqr a = mont_mul a a
  let double a = add a a

  let pow base e =
    if Bigint.sign e < 0 then invalid_arg "Montgomery.pow: negative exponent";
    let nb = Bigint.num_bits e in
    let acc = ref one in
    for i = nb - 1 downto 0 do
      acc := sqr !acc;
      if Bigint.bit e i then acc := mul !acc base
    done;
    !acc

  let pow_int base e = pow base (Bigint.of_int e)

  let p_minus_2 = Bigint.sub modulus Bigint.two

  let inv a = if is_zero a then raise Division_by_zero else pow a p_minus_2

  let div a b = mul a (inv b)

  let two_adicity =
    let rec go n s = if Bigint.is_even n then go (Bigint.shift_right n 1) (s + 1) else s in
    go (Bigint.sub modulus Bigint.one) 0

  let two_adic_root =
    (* c^((p-1)/2^s) has order dividing 2^s; exact order 2^s iff its
       2^(s-1)-th power is non-trivial. *)
    let odd_part = Bigint.shift_right (Bigint.sub modulus Bigint.one) two_adicity in
    let half_order = Bigint.shift_left Bigint.one (two_adicity - 1) in
    let rec search c =
      if c > 1000 then failwith "Montgomery: no 2-adic root found"
      else begin
        let w = pow (of_int c) odd_part in
        if not (is_one (pow w half_order)) then w else search (c + 1)
      end
    in
    search 2

  let random st = of_bigint (Bigint.random st modulus)

  let to_bytes a = Bigint.to_bytes_be (to_bigint a) size_in_bytes

  let of_bytes_exn b =
    if Bytes.length b <> size_in_bytes then invalid_arg "Montgomery.of_bytes_exn: bad length";
    let n = Bigint.of_bytes_be b in
    if Bigint.ge n modulus then invalid_arg "Montgomery.of_bytes_exn: not canonical";
    of_bigint n

  let pp fmt a = Format.pp_print_string fmt (to_string a)
end
