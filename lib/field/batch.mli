(** Batch field inversion (Montgomery's trick): [n] inversions for the price
    of one inversion and [3n] multiplications. *)

module Make (F : Field_intf.S) : sig
  (** [invert_all a] inverts every non-zero element in place; zero
      entries are skipped and remain zero (they no longer corrupt the
      other outputs through the shared prefix product). *)
  val invert_all : F.t array -> unit
end
