module Make (F : Field_intf.S) = struct
  (* Montgomery's trick with zero masking: zero entries contribute F.one
     to the running products and are left untouched, so one zero no
     longer collapses the prefix product (and with it every output) to
     F.inv zero. *)
  let invert_all a =
    let n = Array.length a in
    if n > 0 then begin
      (* prefix.(i) = product of the non-zero entries among a.(0..i) *)
      let prefix = Array.make n F.one in
      let running = ref F.one in
      for i = 0 to n - 1 do
        if not (F.is_zero a.(i)) then running := F.mul !running a.(i);
        prefix.(i) <- !running
      done;
      let inv_all = ref (F.inv !running) in
      for i = n - 1 downto 1 do
        let ai = a.(i) in
        if not (F.is_zero ai) then begin
          a.(i) <- F.mul !inv_all prefix.(i - 1);
          inv_all := F.mul !inv_all ai
        end
      done;
      if not (F.is_zero a.(0)) then a.(0) <- !inv_all
    end
end
