module Fr = Zkvc_field.Fr
module Api = Zkvc.Api
module Cs = Api.Cs
module Mc = Zkvc.Matmul_circuit
module Mspec = Zkvc.Matmul_spec
module Sha256 = Zkvc_hash.Sha256

type entry =
  { id : string;
    backend : Api.backend;
    strategy : Mc.strategy;
    dims : Mspec.dims;
    challenge : Fr.t option;
    opt : Api.Opt.config option;
    keys : Api.keys }

type t =
  { capacity : int;
    dir : string option;
    mutable entries : entry list; (* most recently used first *)
    lock : Mutex.t;
    (* per-key single-flight: ids whose keygen (or disk load) is running
       right now. A second worker missing on the same id blocks on
       [flight_done] instead of running keygen again, then finds the
       first worker's entry in memory — recorded as a hit. *)
    inflight : (string, unit) Hashtbl.t;
    flight_done : Condition.t }

let default_capacity = 8

let create ?(capacity = default_capacity) ?dir () =
  if capacity < 1 then invalid_arg "Key_cache.create: capacity must be positive";
  Option.iter (fun d -> if not (Sys.file_exists d) then Unix.mkdir d 0o755) dir;
  { capacity;
    dir;
    entries = [];
    lock = Mutex.create ();
    inflight = Hashtbl.create 4;
    flight_done = Condition.create () }

let capacity t = t.capacity

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = with_lock t (fun () -> List.length t.entries)

let ids t = with_lock t (fun () -> List.map (fun e -> e.id) t.entries)

(* The id digests everything the keys depend on. The constraint system is
   folded term by term (wire index + canonical coefficient bytes), so any
   coefficient difference — e.g. a different CRPC challenge — yields a
   different id. *)
let id_of ?opt backend strategy dims ~challenge (cs : Cs.t) =
  let ctx = Sha256.init () in
  let u32 n =
    let b = Bytes.create 4 in
    Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
    Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
    Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
    Bytes.set_uint8 b 3 (n land 0xff);
    Sha256.update ctx b
  in
  Sha256.update_string ctx "zkvc-key-id-v1";
  Sha256.update_string ctx
    (match backend with Api.Backend_groth16 -> "g" | Api.Backend_spartan -> "s");
  Sha256.update_string ctx
    (match strategy with
     | Mc.Vanilla -> "v"
     | Mc.Vanilla_psq -> "vp"
     | Mc.Crpc -> "c"
     | Mc.Crpc_psq -> "cp");
  u32 dims.Mspec.a;
  u32 dims.Mspec.n;
  u32 dims.Mspec.b;
  (match challenge with
   | None -> Sha256.update_string ctx "_"
   | Some z -> Sha256.update ctx (Fr.to_bytes z));
  (* the optimiser config, so optimised and unoptimised keys can never
     collide even if a config ever left the system unchanged *)
  Sha256.update_string ctx
    (match opt with None -> "_" | Some c -> Api.Opt.config_tag c);
  u32 cs.Cs.num_inputs;
  u32 cs.Cs.num_aux;
  u32 (Array.length cs.Cs.constraints);
  let lc l =
    let terms = Cs.L.terms l in
    u32 (List.length terms);
    List.iter
      (fun (v, c) ->
        u32 v;
        Sha256.update ctx (Fr.to_bytes c))
      terms
  in
  Array.iter
    (fun { Cs.a; b; c; label = _ } ->
      lc a;
      lc b;
      lc c)
    cs.Cs.constraints;
  Bytes.to_string (Sha256.finalize ctx)

let spill_path t id =
  Option.map (fun d -> Filename.concat d (Wire.hex_of_id id ^ ".zkvk")) t.dir

let write_file path bytes =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_bytes oc bytes;
  close_out oc;
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  b

let spill t (e : entry) =
  match spill_path t e.id with
  | None -> ()
  | Some path ->
    if not (Sys.file_exists path) then
      write_file path
        (Wire.encode_key_file
           { Wire.kf_backend = e.backend;
             kf_strategy = e.strategy;
             kf_dims = e.dims;
             kf_challenge = e.challenge;
             kf_opt = e.opt;
             kf_key_id = e.id;
             kf_keys = e.keys })

let load_from_disk t id =
  match spill_path t id with
  | None -> None
  | Some path ->
    if not (Sys.file_exists path) then None
    else (
      match Wire.decode_key_file (read_file path) with
      | Ok kf when kf.Wire.kf_key_id = id ->
        Some
          { id;
            backend = kf.Wire.kf_backend;
            strategy = kf.kf_strategy;
            dims = kf.kf_dims;
            challenge = kf.kf_challenge;
            opt = kf.kf_opt;
            keys = kf.kf_keys }
      | Ok _ | Error _ -> None
      | exception Sys_error _ -> None)

(* assumes the lock is held *)
let insert_locked t e =
  t.entries <- e :: List.filter (fun e' -> e'.id <> e.id) t.entries;
  let rec trim n = function
    | [] -> []
    | _ :: _ when n = 0 -> []
    | x :: rest -> x :: trim (n - 1) rest
  in
  t.entries <- trim t.capacity t.entries

let promote_locked t id =
  match List.partition (fun e -> e.id = id) t.entries with
  | [ e ], rest ->
    t.entries <- e :: rest;
    Some e
  | _ -> None

(* Make (or load) the entry for [id], with this caller owning the
   single-flight slot for it. Runs [make]/disk IO outside the lock. *)
let fill_inflight t id backend strategy dims ~challenge ~opt ~make =
  let settle result =
    Mutex.lock t.lock;
    (match result with Some e -> insert_locked t e | None -> ());
    Hashtbl.remove t.inflight id;
    Condition.broadcast t.flight_done;
    Mutex.unlock t.lock
  in
  match
    match load_from_disk t id with
    | Some e -> (e, `Hit_disk)
    | None ->
      let keys = make () in
      let e = { id; backend; strategy; dims; challenge; opt; keys } in
      spill t e;
      (e, `Miss)
  with
  | e, outcome ->
    settle (Some e);
    (e, outcome)
  | exception ex ->
    (* release the slot so a waiter can retry (and surface its own
       failure) instead of blocking forever *)
    settle None;
    raise ex

let find_or_add ?opt t backend strategy dims ~challenge ~cs ~make =
  let id = id_of ?opt backend strategy dims ~challenge cs in
  Mutex.lock t.lock;
  let rec get () =
    match promote_locked t id with
    | Some e ->
      Mutex.unlock t.lock;
      (e, `Hit_mem)
    | None ->
      if Hashtbl.mem t.inflight id then begin
        (* another worker is generating this key: wait for it, then the
           promote above finds its entry — a memory hit, keygen ran once *)
        Condition.wait t.flight_done t.lock;
        get ()
      end
      else begin
        Hashtbl.add t.inflight id ();
        Mutex.unlock t.lock;
        fill_inflight t id backend strategy dims ~challenge ~opt ~make
      end
  in
  get ()

let find_by_id t id =
  match with_lock t (fun () -> promote_locked t id) with
  | Some e -> Some e
  | None -> (
    match load_from_disk t id with
    | Some e ->
      with_lock t (fun () -> insert_locked t e);
      Some e
    | None -> None)

let add t e =
  spill t e;
  with_lock t (fun () -> insert_locked t e)
