(** Blocking client for the proof service: one connection, synchronous
    request/response frames. Not thread-safe — use one [t] per thread.

    Every request is sent as a wire-v2 frame carrying a fresh 16-byte
    request id (see {!last_request_id}). When the [Zkvc_obs] sink is
    enabled, each request is recorded as a [client.request] span tagged
    with that id, and the server's returned timing block is stitched
    into the span tree as external spans ([server.queue.wait],
    [server.exec] and the server's own phase spans) on a synthetic
    trace track — a single Chrome trace then shows the full
    cross-process request. *)

type t

(** Connect to a server's Unix-domain socket. [origin] labels this
    client in the server's trace context (default ["pid:<pid>"]).
    Raises [Unix.Unix_error] when nothing listens there. *)
val connect : ?origin:string -> string -> t

val close : t -> unit

(** Send one request and block for the matching response. [Error] is a
    transport/framing failure; a server-side failure arrives as
    [Ok (Error _)] (a {!Wire.response}). *)
val request : t -> Wire.request -> (Wire.response, Wire.error) result

(** [request] but transport errors and server [Error] responses raise
    [Failure] with a readable message. *)
val request_exn : t -> Wire.request -> Wire.response

(** The server timing block of the most recent response, if it carried
    one. *)
val last_timing : t -> Wire.timing option

(** The 16 raw id bytes sent with the most recent request
    ({!Wire.hex_of_id} renders them). *)
val last_request_id : t -> string option

(** Run [f] over a fresh connection, closing it afterwards. *)
val with_connection : ?origin:string -> string -> (t -> 'a) -> 'a
