(** Blocking client for the proof service: one connection, synchronous
    request/response frames. Not thread-safe — use one [t] per thread. *)

type t

(** Connect to a server's Unix-domain socket. Raises [Unix.Unix_error]
    when nothing listens there. *)
val connect : string -> t

val close : t -> unit

(** Send one request and block for the matching response. [Error] is a
    transport/framing failure; a server-side failure arrives as
    [Ok (Error _)] (a {!Wire.response}). *)
val request : t -> Wire.request -> (Wire.response, Wire.error) result

(** [request] but transport errors and server [Error] responses raise
    [Failure] with a readable message. *)
val request_exn : t -> Wire.request -> Wire.response

(** Run [f] over a fresh connection, closing it afterwards. *)
val with_connection : string -> (t -> 'a) -> 'a
