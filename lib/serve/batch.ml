module Fr = Zkvc_field.Fr
module Api = Zkvc.Api
module Groth16 = Zkvc_groth16.Groth16
module Aggregate = Zkvc_groth16.Aggregate
module Spartan = Zkvc_spartan.Spartan

type path = Batched | Aggregated | Fallback | Per_item

type outcome =
  { verdicts : bool list;
    path : path;
    malformed : int list }

let verify_one keys (io, proof) =
  match Api.verify_with keys ~public_inputs:io proof with
  | ok -> ok
  | exception Invalid_argument _ -> false

let all_true items = List.map (fun _ -> true) items

let verify_each ?aggregate_srs keys items =
  if items = [] then invalid_arg "Batch.verify_each: empty batch";
  let per_item path malformed =
    { verdicts = List.map (verify_one keys) items; path; malformed }
  in
  match keys with
  | Api.Groth16_keys { vk; _ } -> (
    let groth =
      List.filter_map
        (function io, Api.Groth16_proof p -> Some (io, p) | _ -> None)
        items
    in
    match groth with
    | _ :: _ :: _ when List.length groth = List.length items -> (
      let aggregated =
        (* opt-in alternative fast path: compress the group into one
           SnarkPack aggregate and check that. Arity faults are
           pre-screened (aggregation raises on them) so they stay
           attributable; batches beyond the SRS take the plain path. *)
        match aggregate_srs with
        | Some srs when List.length groth <= Aggregate.max_proofs srs -> (
          let expected = Groth16.vk_num_inputs vk in
          if List.exists (fun (io, _) -> List.length io <> expected) groth then None
          else
            let agg = Aggregate.aggregate srs vk groth in
            Some (Aggregate.verify_aggregate srs vk (List.map fst groth) agg))
        | _ -> None
      in
      match aggregated with
      | Some true -> { verdicts = all_true items; path = Aggregated; malformed = [] }
      | Some false -> per_item Fallback []
      | None -> (
        match Groth16.verify_batch vk groth with
        | Groth16.Batch_accepted ->
          { verdicts = all_true items; path = Batched; malformed = [] }
        | Groth16.Batch_rejected ->
          (* one bad apple: fall back to per-item verdicts so honest
             members of the batch still pass *)
          per_item Fallback []
        | Groth16.Batch_malformed bad -> per_item Fallback bad))
    | _ -> per_item Per_item [])
  | Api.Spartan_keys { inst; key } -> (
    let sp =
      List.filter_map
        (function io, Api.Spartan_proof p -> Some (io, p) | _ -> None)
        items
    in
    match sp with
    | _ :: _ :: _ when List.length sp = List.length items -> (
      match Spartan.verify_batch key inst sp with
      | Spartan.Batch_accepted ->
        { verdicts = all_true items; path = Batched; malformed = [] }
      | Spartan.Batch_rejected -> per_item Fallback []
      | Spartan.Batch_malformed bad -> per_item Fallback bad)
    | _ -> per_item Per_item [])
