module Fr = Zkvc_field.Fr
module Api = Zkvc.Api
module Groth16 = Zkvc_groth16.Groth16

let verify_one keys (io, proof) =
  match Api.verify_with keys ~public_inputs:io proof with
  | ok -> ok
  | exception Invalid_argument _ -> false

let verify_each keys items =
  match keys with
  | Api.Groth16_keys { vk; _ } -> (
    let groth_items =
      List.filter_map
        (function io, Api.Groth16_proof p -> Some (io, p) | _ -> None)
        items
    in
    match groth_items with
    | _ :: _ :: _ when List.length groth_items = List.length items ->
      if Groth16.verify_batch vk groth_items then
        (List.map (fun _ -> true) items, true)
      else
        (* one bad apple: fall back to per-item verdicts *)
        (List.map (verify_one keys) items, false)
    | _ -> (List.map (verify_one keys) items, false))
  | Api.Spartan_keys _ -> (List.map (verify_one keys) items, false)
