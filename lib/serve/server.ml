module Fr = Zkvc_field.Fr
module Api = Zkvc.Api
module Cs = Api.Cs
module Spec = Zkvc.Matmul_spec
module Spec_fr = Zkvc.Matmul_spec.Make (Fr)
module Span = Zkvc_obs.Span
module Metrics = Zkvc_obs.Metrics
module Sink = Zkvc_obs.Sink
module Expose = Zkvc_obs.Expose
module Flight = Zkvc_obs.Flight
module Json = Zkvc_obs.Json
module Attrib = Zkvc_obs.Attrib

type config =
  { socket_path : string;
    queue_capacity : int;
    cache_capacity : int;
    cache_dir : string option;
    workers : int;
    jobs : int;
    job_delay_s : float;
    observe : bool;
    clock : (unit -> float) option;
    metrics_file : string option;
    metrics_interval_s : float;
    flight_capacity : int;
    flight_file : string option;
    optimize : Api.Opt.config option
        (* run the R1CS optimiser on every prepared circuit; absorbed
           into cache ids and spilled key files so optimised and
           unoptimised keys never mix *);
    batch_aggregate : bool
        (* route homogeneous Groth16 verify batches through SnarkPack
           aggregation (Batch.verify_each ?aggregate_srs) instead of the
           plain weighted batch check *) }

(* Monotonic wall clock (CLOCK_MONOTONIC via bechamel's stub), in
   seconds. Deadlines and uptime must never go through
   [Unix.gettimeofday]: an NTP step would expire every queued job at
   once — or keep deadlines from ever firing — and could make uptime
   negative. *)
let monotonic_now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let default_config ~socket_path =
  { socket_path;
    queue_capacity = 16;
    cache_capacity = Key_cache.default_capacity;
    cache_dir = None;
    workers = 1;
    jobs = 0;
    job_delay_s = 0.;
    observe = false;
    clock = None;
    metrics_file = None;
    metrics_interval_s = 1.;
    flight_capacity = 128;
    flight_file = None;
    optimize = None;
    batch_aggregate = false }

(* serve.* metrics mirror the atomic counters below; the atomics are
   authoritative (Status works with the sink disabled). *)
let m_requests = Metrics.counter "serve.requests"
let m_cache_hit = Metrics.counter "serve.cache.hit"
let m_cache_miss = Metrics.counter "serve.cache.miss"
let m_rejected = Metrics.counter "serve.queue.rejected"
let m_timeout = Metrics.counter "serve.deadline.exceeded"
let m_batched = Metrics.counter "serve.batch.coalesced"

(* batched-verification outcomes: groups that entered the batch
   verifier, groups whose combined check failed and fell back to
   per-item verdicts, and members flagged structurally malformed
   (attributable faults, distinct from honest rejection) *)
let m_batch_groups = Metrics.counter "serve.batch.groups"
let m_batch_fallback = Metrics.counter "serve.batch.fallback"
let m_batch_malformed = Metrics.counter "serve.batch.malformed"
let m_batch_aggregated = Metrics.counter "serve.batch.aggregated"

(* worker-pool utilisation: pool size (constant once started) and how
   many workers are executing a job right now *)
let m_workers = Metrics.gauge "serve.workers"
let m_workers_busy = Metrics.gauge "serve.workers.busy"

(* [refs] counts the reader thread plus every queued job that still
   references this connection; the fd is closed only on the last
   release. Closing early would let a subsequent [accept] reuse the fd
   number and a stale job's response would land in an unrelated
   client's stream. *)
type conn =
  { fd : Unix.file_descr;
    cid : int; (* scheduler client id: one fair-queueing flow per connection *)
    wlock : Mutex.t;
    refs : int Atomic.t }

let next_cid = Atomic.make 1

let conn_retain conn = Atomic.incr conn.refs

let conn_release conn =
  if Atomic.fetch_and_add conn.refs (-1) = 1 then
    try Unix.close conn.fd with Unix.Unix_error _ -> ()

type job =
  { req : Wire.request;
    conn : conn;
    deadline : float option;
    trace : Wire.trace option;
    wire_version : int; (* respond in the version the request arrived in *)
    admit_s : float;
    depth_at_admit : int;
    payload_bytes : int }

(* One completed (or failed) request, as retained by the flight
   recorder. Everything is pre-rendered to strings/numbers so dumping
   is allocation-light and deterministic. *)
type flight_record =
  { fr_request_id : string; (* hex, or "-" when the request carried no trace *)
    fr_kind : string;
    fr_lane : string; (* "verify" | "prove" *)
    fr_worker : int; (* worker index (0 .. workers-1) that executed it *)
    fr_cache : string; (* "hit" | "miss" | "-" *)
    fr_depth_at_admit : int;
    fr_wait_s : float;
    fr_exec_s : float;
    fr_bytes : int;
    fr_outcome : string; (* "ok" | wire error code *)
    fr_hot_region : string
    (* comma-separated hottest constraint regions ("path(n)"), prove
       jobs only; "-" otherwise *) }

let flight_record_to_json r =
  Json.Obj
    [ ("request_id", Json.String r.fr_request_id);
      ("kind", Json.String r.fr_kind);
      ("lane", Json.String r.fr_lane);
      ("worker", Json.Int r.fr_worker);
      ("cache", Json.String r.fr_cache);
      ("depth_at_admit", Json.Int r.fr_depth_at_admit);
      ("wait_s", Json.Float r.fr_wait_s);
      ("exec_s", Json.Float r.fr_exec_s);
      ("bytes", Json.Int r.fr_bytes);
      ("outcome", Json.String r.fr_outcome);
      ("hot_region", Json.String r.fr_hot_region) ]

type t =
  { cfg : config;
    listen_fd : Unix.file_descr;
    jobs_q : job Jobs.t;
    cache : Key_cache.t;
    agg_srs : Zkvc_groth16.Aggregate.srs Lazy.t option;
    (* aggregation SRS for --batch-aggregate, sampled on first use; the
       trapdoors are process-local toxic waste (acceptable for a
       verification accelerator — both SRS halves stay server-side) *)
    flight : flight_record Flight.t;
    started_at : float;
    requests : int Atomic.t;
    timeouts : int Atomic.t;
    rejections : int Atomic.t;
    batched : int Atomic.t;
    cache_hits : int Atomic.t;
    cache_misses : int Atomic.t;
    stopping : bool Atomic.t;
    live_workers : int Atomic.t; (* workers that have not exited yet *)
    busy_workers : int Atomic.t; (* workers executing a job right now *)
    mutable is_drained : bool;
    drain_lock : Mutex.t;
    drain_cond : Condition.t;
    mutable workers : Thread.t list;
    mutable acceptor : Thread.t option;
    mutable snapshotter : Thread.t option;
    readers_lock : Mutex.t;
    mutable readers : Thread.t list }

let config t = t.cfg

exception Expired

let respond ?version ?timing conn resp =
  Mutex.lock conn.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wlock)
    (fun () ->
      try Wire.write_frame ?version conn.fd (Wire.Response (timing, resp))
      with Unix.Unix_error _ | Sys_error _ -> (* peer gone *) ())

let respond_error ?version conn code message =
  respond ?version conn (Wire.Error { code; message })

let status t =
  { Wire.uptime_s = Span.now () -. t.started_at;
    requests = Atomic.get t.requests;
    queue_depth = Jobs.length t.jobs_q;
    queue_capacity = Jobs.capacity t.jobs_q;
    cache_hits = Atomic.get t.cache_hits;
    cache_misses = Atomic.get t.cache_misses;
    cache_entries = Key_cache.length t.cache;
    timeouts = Atomic.get t.timeouts;
    rejections = Atomic.get t.rejections;
    batched = Atomic.get t.batched;
    workers = Stdlib.max 1 t.cfg.workers;
    workers_busy = Atomic.get t.busy_workers;
    queue_depth_verify = Jobs.lane_depth t.jobs_q Jobs.Lane_verify;
    queue_depth_prove = Jobs.lane_depth t.jobs_q Jobs.Lane_prove }

(* ---------------- flight recorder / telemetry ---------------- *)

let flight_jsonl t =
  let b = Buffer.create 512 in
  List.iter
    (fun r ->
      Buffer.add_string b (Json.to_string (flight_record_to_json r));
      Buffer.add_char b '\n')
    (Flight.snapshot t.flight);
  Buffer.contents b

let write_metrics_snapshot t =
  match t.cfg.metrics_file with
  | None -> ()
  | Some path -> (
    try Expose.write_snapshot ~path (Expose.render ())
    with Sys_error _ -> ())

let flush_flight t =
  match t.cfg.flight_file with
  | None -> ()
  | Some path -> (
    try
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (flight_jsonl t))
    with Sys_error _ -> ())

let request_kind = function
  | Wire.Keygen _ -> "keygen"
  | Wire.Prove _ -> "prove"
  | Wire.Verify _ -> "verify"
  | Wire.Batch_verify _ -> "batch_verify"
  | Wire.Status -> "status"
  | Wire.Status_detail -> "status_detail"
  | Wire.Shutdown -> "shutdown"

(* Lane assignment: verification is cheap and latency-sensitive, so both
   verify shapes ride the priority lane; keygen/prove are the heavy
   throughput lane. Control requests never reach the scheduler. *)
let lane_of_req = function
  | Wire.Verify _ | Wire.Batch_verify _ -> Jobs.Lane_verify
  | Wire.Keygen _ | Wire.Prove _ | Wire.Status | Wire.Status_detail | Wire.Shutdown ->
    Jobs.Lane_prove

(* DRR cost in deficit credits (quantum = 4): one visit affords one
   prove, or four single verifies; a large batch verify costs
   proportionally more so it cannot monopolise its lane. *)
let cost_of_req = function
  | Wire.Verify _ -> 1
  | Wire.Batch_verify { items; _ } -> Stdlib.max 1 ((List.length items + 3) / 4 * 4)
  | Wire.Keygen _ | Wire.Prove _ | Wire.Status | Wire.Status_detail | Wire.Shutdown -> 4

let request_id_hex = function
  | Some { Wire.tr_request_id; _ } -> Wire.hex_of_id tr_request_id
  | None -> "-"

let zero_request_id = String.make Wire.request_id_bytes '\000'

let cache_outcome_of = function
  | Wire.Keygen_ok { cache_hit; _ } | Wire.Prove_ok { cache_hit; _ } ->
    if cache_hit then "hit" else "miss"
  | _ -> "-"

let outcome_of = function
  | Wire.Error { code; _ } -> Wire.error_code_to_string code
  | _ -> "ok"

(* Record batch metrics for one verified group and name its path for
   the group's flight records, so a malformed member (structural fault,
   attributable) is distinguishable from honest cryptographic rejection
   and from the clean batched fast path. *)
let note_batch_outcome t ~n (outcome : Batch.outcome) =
  Metrics.incr m_batch_groups;
  (match outcome.Batch.path with
   | Batch.Batched ->
     ignore (Atomic.fetch_and_add t.batched n);
     Metrics.add m_batched n
   | Batch.Aggregated ->
     ignore (Atomic.fetch_and_add t.batched n);
     Metrics.add m_batched n;
     Metrics.incr m_batch_aggregated
   | Batch.Fallback -> Metrics.incr m_batch_fallback
   | Batch.Per_item -> ());
  (match outcome.Batch.malformed with
   | [] -> ()
   | bad -> Metrics.add m_batch_malformed (List.length bad));
  match (outcome.Batch.path, outcome.Batch.malformed) with
  | _, _ :: _ -> "ok_malformed"
  | Batch.Batched, [] -> "ok_batched"
  | Batch.Aggregated, [] -> "ok_aggregated"
  | Batch.Fallback, [] -> "ok_fallback"
  | Batch.Per_item, [] -> "ok"

let aggregate_srs_of t =
  match t.agg_srs with Some l -> Some (Lazy.force l) | None -> None

(* ---------------- worker: request processing ---------------- *)

(* All deadline arithmetic reads the span clock installed by [start]
   (monotonic by default, injectable for tests) — never the wall clock. *)
let check_deadline deadline =
  match deadline with
  | Some d when Span.now () > d -> raise Expired
  | _ -> ()

let matrices_of_input dims input =
  match input with
  | Wire.Seeded { seed; bound } ->
    (* replicates the CLI's seeded instance exactly: rng -> X -> W, then
       the same rng feeds keygen and prove. On a key-cache miss the
       proof is byte-identical to a local seeded CLI prove; on a hit the
       setup's RNG draws are skipped, so the prover randomness — and the
       proof bytes — differ (the proof itself stays valid). *)
    let rng = Random.State.make [| seed |] in
    let x = Spec_fr.random_matrix rng ~rows:dims.Spec.a ~cols:dims.Spec.n ~bound in
    let w = Spec_fr.random_matrix rng ~rows:dims.Spec.n ~cols:dims.Spec.b ~bound in
    (rng, x, w)
  | Wire.Explicit { seed; x; w } ->
    let rows m = Array.length m and cols m = Array.length m.(0) in
    if rows x <> dims.Spec.a || cols x <> dims.Spec.n
       || rows w <> dims.Spec.n || cols w <> dims.Spec.b then
      invalid_arg "matrix shape does not match dims";
    (Random.State.make [| seed |], x, w)

(* prepare + cached keygen, shared by Keygen and Prove *)
let prepared_keys t backend strategy dims input ~deadline =
  let rng, x, w = matrices_of_input dims input in
  let optimize = t.cfg.optimize in
  let prep =
    Span.with_span "serve.prepare" (fun () -> Api.prepare ?optimize strategy ~x ~w dims)
  in
  check_deadline deadline;
  let entry, hit =
    Key_cache.find_or_add ?opt:optimize t.cache backend strategy dims
      ~challenge:prep.Api.challenge ~cs:prep.Api.cs
      ~make:(fun () ->
        Span.with_span "serve.keygen" (fun () -> Api.keygen ~rng backend prep.Api.cs))
  in
  (match hit with
   | `Hit_mem | `Hit_disk ->
     Atomic.incr t.cache_hits;
     Metrics.incr m_cache_hit
   | `Miss ->
     Atomic.incr t.cache_misses;
     Metrics.incr m_cache_miss);
  check_deadline deadline;
  (rng, prep, entry, hit <> `Miss)

let public_inputs_of prep =
  Array.to_list (Array.sub prep.Api.assignment 1 (Cs.num_inputs prep.Api.cs))

let process_keygen t ~backend ~strategy ~dims ~seed ~bound ~deadline =
  let _rng, prep, entry, cache_hit =
    prepared_keys t backend strategy dims (Wire.Seeded { seed; bound }) ~deadline
  in
  let key_bytes =
    Wire.encode_key_file
      { Wire.kf_backend = backend;
        kf_strategy = strategy;
        kf_dims = dims;
        kf_challenge = prep.Api.challenge;
        kf_opt = entry.Key_cache.opt;
        kf_key_id = entry.Key_cache.id;
        kf_keys = entry.Key_cache.keys }
  in
  Wire.Keygen_ok { key_id = entry.Key_cache.id; cache_hit; key_bytes }

(* The [n] hottest constraint regions of a prepared instance, rendered
   "path(count)" and comma-joined — the provenance breadcrumb attached
   to prove spans and flight records so a slow request names the
   circuit region that dominates it without re-profiling. *)
let hot_regions_of ?n prep =
  match Attrib.top_regions ?n prep.Api.regions with
  | [] -> "-"
  | tops ->
    String.concat ","
      (List.map (fun (path, c) -> Printf.sprintf "%s(%d)" path c) tops)

let process_prove t ~backend ~strategy ~dims ~input ~deadline ~hot =
  let rng, prep, entry, cache_hit = prepared_keys t backend strategy dims input ~deadline in
  let hot_s = hot_regions_of prep in
  hot := hot_s;
  let t0 = Span.now () in
  let proof =
    Span.with_span ~args:[ ("hot_regions", hot_s) ] "serve.prove" (fun () ->
        Api.prove_with ~rng entry.Key_cache.keys prep.Api.assignment)
  in
  check_deadline deadline;
  Wire.Prove_ok
    { key_id = entry.Key_cache.id;
      cache_hit;
      challenge = prep.Api.challenge;
      public_inputs = public_inputs_of prep;
      proof;
      prove_s = Span.now () -. t0 }

let unknown_key_error =
  Wire.Error { code = Wire.Unknown_key; message = "no key with this id (run keygen first)" }

(* Run one job's body and return the response (never raises; never
   writes to the socket). [args] tag every [serve.request.*] span with
   the request id so exported traces can be joined across processes. *)
let execute t job ~args ~hot ~note =
  try
    check_deadline job.deadline;
    match job.req with
    | Wire.Keygen { backend; strategy; dims; seed; bound; deadline_ms = _ } ->
      Span.with_span ~args "serve.request.keygen" (fun () ->
          process_keygen t ~backend ~strategy ~dims ~seed ~bound ~deadline:job.deadline)
    | Wire.Prove { backend; strategy; dims; input; deadline_ms = _ } ->
      Span.with_span ~args "serve.request.prove" (fun () ->
          process_prove t ~backend ~strategy ~dims ~input ~deadline:job.deadline ~hot)
    | Wire.Verify { key_id; public_inputs; proof; deadline_ms = _ } -> (
      match Key_cache.find_by_id t.cache key_id with
      | None -> unknown_key_error
      | Some entry ->
        let ok =
          Span.with_span ~args "serve.request.verify" (fun () ->
              match Api.verify_with entry.Key_cache.keys ~public_inputs proof with
              | ok -> ok
              | exception Invalid_argument _ -> false)
        in
        Wire.Verify_ok ok)
    | Wire.Batch_verify { key_id; items; deadline_ms = _ } -> (
      if items = [] then
        (* no sound verdict exists for zero instances: reject loudly
           rather than answer an empty (vacuously "all verified") list *)
        Wire.Error { code = Wire.Bad_request; message = "Batch_verify: empty batch" }
      else
        match Key_cache.find_by_id t.cache key_id with
        | None -> unknown_key_error
        | Some entry ->
          let outcome =
            Span.with_span ~args "serve.request.batch_verify" (fun () ->
                Batch.verify_each ?aggregate_srs:(aggregate_srs_of t)
                  entry.Key_cache.keys items)
          in
          note := Some (note_batch_outcome t ~n:(List.length items) outcome);
          Wire.Batch_ok outcome.Batch.verdicts)
    | Wire.Status | Wire.Status_detail | Wire.Shutdown ->
      (* handled on the reader threads; never queued *)
      Wire.Error { code = Wire.Bad_request; message = "unexpected control request in job queue" }
  with
  | Expired ->
    Atomic.incr t.timeouts;
    Metrics.incr m_timeout;
    Wire.Error { code = Wire.Deadline_exceeded; message = "deadline exceeded" }
  | Invalid_argument msg -> Wire.Error { code = Wire.Bad_request; message = msg }
  | e -> Wire.Error { code = Wire.Internal; message = Printexc.to_string e }

(* The just-completed request span and its named sub-phases, as wire
   timing phases: (name, offset from execution start, duration),
   pre-order — the [serve.request.*] root itself comes first, so the
   timing block names the request kind — truncated to the wire bound. *)
let phases_of_span root =
  let origin = Span.start_s root in
  let rec go acc s =
    let acc = (Span.name s, Span.start_s s -. origin, Span.duration_s s) :: acc in
    List.fold_left go acc (Span.children s)
  in
  let all = List.rev (go [] root) in
  List.filteri (fun i _ -> i < 256) all

(* Send [resp] with a v2 timing block (at the job's own wire version —
   v1 clients get the plain v1 frame) and push a flight record. *)
let finish ?(hot_region = "-") ?outcome t job ~wid ~wait_s ~exec_s ~phases resp =
  let timing =
    Some
      { Wire.tm_request_id =
          (match job.trace with
           | Some tr -> tr.Wire.tr_request_id
           | None -> zero_request_id);
        tm_queue_wait_s = wait_s;
        tm_exec_s = exec_s;
        tm_phases = phases }
  in
  respond ~version:job.wire_version ?timing job.conn resp;
  Flight.record t.flight
    { fr_request_id = request_id_hex job.trace;
      fr_kind = request_kind job.req;
      fr_lane = Jobs.lane_to_string (lane_of_req job.req);
      fr_worker = wid;
      fr_cache = cache_outcome_of resp;
      fr_depth_at_admit = job.depth_at_admit;
      fr_wait_s = wait_s;
      fr_exec_s = exec_s;
      fr_bytes = job.payload_bytes;
      fr_outcome = (match outcome with Some s -> s | None -> outcome_of resp);
      fr_hot_region = hot_region }

(* Run a job end to end: span-wrapped execution, timing extraction,
   versioned response, flight record. *)
let run_job t ~wid job =
  let wait_s = Span.now () -. job.admit_s in
  let args =
    ("worker", string_of_int wid)
    :: ("lane", Jobs.lane_to_string (lane_of_req job.req))
    ::
    (match job.trace with
     | Some tr -> [ ("request_id", Wire.hex_of_id tr.Wire.tr_request_id) ]
     | None -> [])
  in
  let before = Span.last_completed () in
  let hot = ref "-" in
  let note = ref None in
  let t0 = Span.now () in
  let resp = execute t job ~args ~hot ~note in
  let exec_s = Span.now () -. t0 in
  (* the span [execute] just closed, if it opened one (error paths that
     fail before any span leave [last_completed] stale — detect by
     physical identity) *)
  let root =
    match Span.last_completed () with
    | Some s when (match before with Some b -> not (s == b) | None -> true) -> Some s
    | _ -> None
  in
  let phases = match root with Some s -> phases_of_span s | None -> [] in
  finish ~hot_region:!hot ?outcome:!note t job ~wid ~wait_s ~exec_s ~phases resp

(* Coalesce queued single-proof verifies against the same key into one
   batched check; each request still gets its own [Verify_ok], timing
   block (group execution time, per-job queue wait) and flight record. *)
let process_verify_group t ~wid jobs =
  let now = Span.now () in
  let live, expired =
    List.partition
      (fun j ->
        match j.deadline with
        | Some d when now > d -> false
        | _ -> true)
      jobs
  in
  List.iter
    (fun j ->
      Atomic.incr t.timeouts;
      Metrics.incr m_timeout;
      finish t j ~wid ~wait_s:(now -. j.admit_s) ~exec_s:0. ~phases:[]
        (Wire.Error { code = Wire.Deadline_exceeded; message = "deadline exceeded" }))
    expired;
  match live with
  | [] -> ()
  | [ j ] -> run_job t ~wid j
  | _ -> (
    let key_id =
      match (List.hd live).req with
      | Wire.Verify { key_id; _ } -> key_id
      | _ -> assert false
    in
    let waits = List.map (fun j -> now -. j.admit_s) live in
    let answer_all ?outcome exec_s phases resps =
      List.iter2
        (fun (j, wait_s) resp -> finish ?outcome t j ~wid ~wait_s ~exec_s ~phases resp)
        (List.combine live waits) resps
    in
    match Key_cache.find_by_id t.cache key_id with
    | None -> answer_all 0. [] (List.map (fun _ -> unknown_key_error) live)
    | Some entry ->
      let args =
        [ ("worker", string_of_int wid);
          ("lane", "verify");
          ("coalesced", string_of_int (List.length live));
          ("request_ids", String.concat "," (List.map (fun j -> request_id_hex j.trace) live)) ]
      in
      let before = Span.last_completed () in
      let t0 = Span.now () in
      let outcome =
        Span.with_span ~args "serve.request.verify_coalesced" (fun () ->
            Batch.verify_each ?aggregate_srs:(aggregate_srs_of t)
              entry.Key_cache.keys
              (List.map
                 (fun j ->
                   match j.req with
                   | Wire.Verify { public_inputs; proof; _ } -> (public_inputs, proof)
                   | _ -> assert false)
                 live))
      in
      let exec_s = Span.now () -. t0 in
      let oc = note_batch_outcome t ~n:(List.length live) outcome in
      let root =
        match Span.last_completed () with
        | Some s when (match before with Some b -> not (s == b) | None -> true) -> Some s
        | _ -> None
      in
      let phases = match root with Some s -> phases_of_span s | None -> [] in
      answer_all ~outcome:oc exec_s phases
        (List.map (fun ok -> Wire.Verify_ok ok) outcome.Batch.verdicts))

(* dedup while preserving first-occurrence order (group client lists) *)
let distinct ints =
  List.rev
    (List.fold_left (fun acc i -> if List.mem i acc then acc else i :: acc) [] ints)

let worker_body t ~wid =
  let rec loop () =
    match Jobs.pop t.jobs_q with
    | None -> ()
    | Some ticket ->
      if t.cfg.job_delay_s > 0. then Thread.delay t.cfg.job_delay_s;
      Atomic.incr t.busy_workers;
      Metrics.set m_workers_busy (float_of_int (Atomic.get t.busy_workers));
      (* the catch-all keeps the worker alive: an unexpected exception
         (e.g. on the coalesced-verify path) must answer Internal and
         continue, not silently kill a consumer. The finally releases
         conn refs, frees every contributing scheduler client (so its
         next job can dispatch) and drops the busy gauge. *)
      let guarded jobs clients f =
        Fun.protect
          ~finally:(fun () ->
            List.iter (fun j -> conn_release j.conn) jobs;
            List.iter (fun cid -> Jobs.complete t.jobs_q ~client:cid) (distinct clients);
            ignore (Atomic.fetch_and_add t.busy_workers (-1));
            Metrics.set m_workers_busy (float_of_int (Atomic.get t.busy_workers)))
          (fun () ->
            try f ()
            with e ->
              let msg = Printexc.to_string e in
              List.iter
                (fun j -> respond_error ~version:j.wire_version j.conn Wire.Internal msg)
                jobs)
      in
      let job = ticket.Jobs.t_item in
      (match job.req with
       | Wire.Verify { key_id; _ } ->
         (* coalesce same-key single verifies that sit at the head of
            idle clients' queues — deeper entries stay put so no
            connection's responses reorder *)
         let extra =
           Jobs.drain_where t.jobs_q ~lane:Jobs.Lane_verify (fun j ->
               match j.req with
               | Wire.Verify { key_id = k; _ } -> k = key_id
               | _ -> false)
         in
         let group = job :: List.map (fun tk -> tk.Jobs.t_item) extra in
         let clients =
           ticket.Jobs.t_client :: List.map (fun tk -> tk.Jobs.t_client) extra
         in
         guarded group clients (fun () -> process_verify_group t ~wid group)
       | _ ->
         guarded [ job ] [ ticket.Jobs.t_client ] (fun () -> run_job t ~wid job));
      loop ()
  in
  loop ()

(* The finally block runs on normal drain AND when a worker dies on an
   unexpected exception. The last worker out flushes the flight ring
   and a final metrics snapshot, then releases shutdown waiters — by
   then every job has been answered, since each worker finishes its own
   job before exiting. *)
let worker_loop t ~wid =
  Fun.protect
    ~finally:(fun () ->
      if Atomic.fetch_and_add t.live_workers (-1) = 1 then begin
        flush_flight t;
        write_metrics_snapshot t;
        Mutex.lock t.drain_lock;
        t.is_drained <- true;
        Condition.broadcast t.drain_cond;
        Mutex.unlock t.drain_lock
      end)
    (fun () -> worker_body t ~wid)

(* Periodic atomic-rename metrics snapshots while the server runs; the
   final post-drain snapshot is written by the last worker's finally.
   Sleeps in short ticks rather than whole intervals (the stdlib
   [Condition] has no timed wait) so [Server.wait] returns promptly
   after drain even with a large [metrics_interval_s]. *)
let snapshot_loop t interval_s =
  let interval_s = if interval_s > 0. then interval_s else 1. in
  let tick = 0.05 in
  let rec loop next =
    if not t.is_drained then begin
      let now = monotonic_now () in
      if now >= next then begin
        write_metrics_snapshot t;
        loop (now +. interval_s)
      end
      else begin
        Thread.delay (Stdlib.min tick (next -. now));
        loop next
      end
    end
  in
  loop (monotonic_now () +. interval_s)

(* ---------------- reader threads ---------------- *)

let deadline_of arrival deadline_ms =
  if deadline_ms <= 0 then None else Some (arrival +. (float_of_int deadline_ms /. 1000.))

let request_deadline_ms = function
  | Wire.Keygen { deadline_ms; _ }
  | Wire.Prove { deadline_ms; _ }
  | Wire.Verify { deadline_ms; _ }
  | Wire.Batch_verify { deadline_ms; _ } ->
    deadline_ms
  | Wire.Status | Wire.Status_detail | Wire.Shutdown -> 0

let rec shutdown t =
  if not (Atomic.exchange t.stopping true) then begin
    Jobs.close t.jobs_q;
    (* wake a blocked [accept]: the acceptor rechecks the stop flag on
       every returned connection *)
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket_path) with _ -> ());
       Unix.close fd
     with _ -> ())
  end;
  (* everyone who asks for shutdown blocks until drained *)
  Mutex.lock t.drain_lock;
  while not t.is_drained do
    Condition.wait t.drain_cond t.drain_lock
  done;
  Mutex.unlock t.drain_lock

and handle_request t conn ~version ~trace ~payload_bytes req =
  Atomic.incr t.requests;
  Metrics.incr m_requests;
  match req with
  | Wire.Status -> respond ~version conn (Wire.Status_ok (status t))
  | Wire.Status_detail ->
    (* served on the reader thread (no proving): metrics registry and
       flight ring are both safe to read concurrently with the worker *)
    respond ~version conn
      (Wire.Status_detail_ok
         { status = status t;
           metrics_text = Expose.render ();
           flight_jsonl = flight_jsonl t })
  | Wire.Shutdown ->
    shutdown t;
    respond ~version conn Wire.Shutdown_ok
  | req -> (
    let arrival = Span.now () in
    let job =
      { req;
        conn;
        deadline = deadline_of arrival (request_deadline_ms req);
        trace;
        wire_version = version;
        admit_s = arrival;
        depth_at_admit = Jobs.length t.jobs_q;
        payload_bytes }
    in
    conn_retain conn;
    (* the queued job owns this ref; the worker releases it after responding *)
    match
      Jobs.push t.jobs_q ~client:conn.cid ~lane:(lane_of_req req)
        ~cost:(cost_of_req req) job
    with
    | `Ok -> ()
    | `Full ->
      conn_release conn;
      Atomic.incr t.rejections;
      Metrics.incr m_rejected;
      respond_error ~version conn Wire.Queue_full "job queue is full, retry later"
    | `Closed ->
      conn_release conn;
      respond_error ~version conn Wire.Shutting_down "server is shutting down")

let reader_loop t conn =
  let stop_now () = Atomic.get t.stopping && t.is_drained in
  (* the version of the last frame this peer successfully sent; error
     replies to unparseable frames use it, so a v1 client never receives
     an error frame it cannot decode. Before any good frame, assume the
     lowest version we speak — every peer decodes that. *)
  let last_version = ref Wire.min_version in
  let rec loop () =
    if not (stop_now ()) then
      match Unix.select [ conn.fd ] [] [] 0.25 with
      | [], _, _ -> loop ()
      | _ -> (
        match Wire.read_frame' conn.fd with
        | Error Wire.Eof -> ()
        | Error e ->
          (* framing is lost after a malformed frame: answer, then drop *)
          respond_error ~version:!last_version conn Wire.Bad_request
            (Wire.error_to_string e)
        | Ok (Wire.Response _, meta) ->
          last_version := meta.Wire.frame_version;
          respond_error ~version:!last_version conn Wire.Bad_request
            "unexpected response frame"
        | Ok (Wire.Request (trace, req), meta) ->
          last_version := meta.Wire.frame_version;
          handle_request t conn ~version:meta.Wire.frame_version ~trace
            ~payload_bytes:meta.Wire.payload_bytes req;
          loop ())
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> loop ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
  in
  (try loop () with _ -> ());
  (* drop the reader's ref; queued jobs for this conn keep the fd alive
     until the worker has answered them *)
  conn_release conn

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
      if Atomic.get t.stopping then (try Unix.close fd with _ -> ())
      else begin
        let conn =
          { fd;
            cid = Atomic.fetch_and_add next_cid 1;
            wlock = Mutex.create ();
            refs = Atomic.make 1 }
        in
        let th = Thread.create (fun () -> reader_loop t conn) () in
        Mutex.lock t.readers_lock;
        t.readers <- th :: t.readers;
        Mutex.unlock t.readers_lock;
        loop ()
      end
    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> loop ()
    | exception Unix.Unix_error _ -> ()
  in
  loop ();
  (try Unix.close t.listen_fd with _ -> ());
  try Sys.remove t.cfg.socket_path with Sys_error _ -> ()

(* ---------------- lifecycle ---------------- *)

let start cfg =
  (* writes to a peer that already disconnected must surface as EPIPE
     (handled in [respond]) instead of a process-killing SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* Spans, deadlines and uptime all read [Span.now]. The default is a
     monotonic clock — not [Unix.gettimeofday], which an NTP step can
     move under us, and not [Sys.time], which is process CPU time and
     sums across worker domains. Tests inject a simulated clock. *)
  Span.set_clock (match cfg.clock with Some f -> f | None -> monotonic_now);
  (* several worker systhreads share this domain: give each its own span
     stack so concurrent jobs don't corrupt one another's nesting *)
  Span.set_context (fun () -> Thread.id (Thread.self ()));
  (* metrics exposition is pointless with the sink off, so a metrics
     file implies observation *)
  if cfg.observe || cfg.metrics_file <> None then Sink.enable ();
  if cfg.jobs > 0 then Zkvc_parallel.set_jobs cfg.jobs;
  if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path)
   with e ->
     (try Unix.close listen_fd with _ -> ());
     raise e);
  Unix.listen listen_fd 64;
  let nworkers = Stdlib.max 1 cfg.workers in
  let t =
    { cfg;
      listen_fd;
      jobs_q = Jobs.create ~capacity:cfg.queue_capacity ();
      cache = Key_cache.create ~capacity:cfg.cache_capacity ?dir:cfg.cache_dir ();
      agg_srs =
        (if cfg.batch_aggregate then
           Some
             (lazy
               (Zkvc_groth16.Aggregate.setup
                  (Random.State.make_self_init ())
                  ~max_proofs:64))
         else None);
      flight = Flight.create ~capacity:(Stdlib.max 1 cfg.flight_capacity);
      started_at = Span.now ();
      requests = Atomic.make 0;
      timeouts = Atomic.make 0;
      rejections = Atomic.make 0;
      batched = Atomic.make 0;
      cache_hits = Atomic.make 0;
      cache_misses = Atomic.make 0;
      stopping = Atomic.make false;
      live_workers = Atomic.make nworkers;
      busy_workers = Atomic.make 0;
      is_drained = false;
      drain_lock = Mutex.create ();
      drain_cond = Condition.create ();
      workers = [];
      acceptor = None;
      snapshotter = None;
      readers_lock = Mutex.create ();
      readers = [] }
  in
  Metrics.set m_workers (float_of_int nworkers);
  Metrics.set m_workers_busy 0.;
  t.workers <-
    List.init nworkers (fun wid -> Thread.create (fun () -> worker_loop t ~wid) ());
  t.acceptor <- Some (Thread.create (fun () -> accept_loop t) ());
  if cfg.metrics_file <> None then begin
    write_metrics_snapshot t;
    t.snapshotter <- Some (Thread.create (fun () -> snapshot_loop t cfg.metrics_interval_s) ())
  end;
  t

let wait t =
  Option.iter Thread.join t.acceptor;
  List.iter Thread.join t.workers;
  Option.iter Thread.join t.snapshotter;
  let readers =
    Mutex.lock t.readers_lock;
    let r = t.readers in
    Mutex.unlock t.readers_lock;
    r
  in
  List.iter Thread.join readers
