module Fr = Zkvc_field.Fr
module Api = Zkvc.Api
module Cs = Api.Cs
module Spec = Zkvc.Matmul_spec
module Spec_fr = Zkvc.Matmul_spec.Make (Fr)
module Span = Zkvc_obs.Span
module Metrics = Zkvc_obs.Metrics
module Sink = Zkvc_obs.Sink

type config =
  { socket_path : string;
    queue_capacity : int;
    cache_capacity : int;
    cache_dir : string option;
    jobs : int;
    job_delay_s : float;
    observe : bool;
    clock : (unit -> float) option }

(* Monotonic wall clock (CLOCK_MONOTONIC via bechamel's stub), in
   seconds. Deadlines and uptime must never go through
   [Unix.gettimeofday]: an NTP step would expire every queued job at
   once — or keep deadlines from ever firing — and could make uptime
   negative. *)
let monotonic_now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let default_config ~socket_path =
  { socket_path;
    queue_capacity = 16;
    cache_capacity = Key_cache.default_capacity;
    cache_dir = None;
    jobs = 0;
    job_delay_s = 0.;
    observe = false;
    clock = None }

(* serve.* metrics mirror the atomic counters below; the atomics are
   authoritative (Status works with the sink disabled). *)
let m_requests = Metrics.counter "serve.requests"
let m_cache_hit = Metrics.counter "serve.cache.hit"
let m_cache_miss = Metrics.counter "serve.cache.miss"
let m_rejected = Metrics.counter "serve.queue.rejected"
let m_timeout = Metrics.counter "serve.deadline.exceeded"
let m_batched = Metrics.counter "serve.batch.coalesced"

(* [refs] counts the reader thread plus every queued job that still
   references this connection; the fd is closed only on the last
   release. Closing early would let a subsequent [accept] reuse the fd
   number and a stale job's response would land in an unrelated
   client's stream. *)
type conn = { fd : Unix.file_descr; wlock : Mutex.t; refs : int Atomic.t }

let conn_retain conn = Atomic.incr conn.refs

let conn_release conn =
  if Atomic.fetch_and_add conn.refs (-1) = 1 then
    try Unix.close conn.fd with Unix.Unix_error _ -> ()

type job = { req : Wire.request; conn : conn; deadline : float option }

type t =
  { cfg : config;
    listen_fd : Unix.file_descr;
    jobs_q : job Jobs.t;
    cache : Key_cache.t;
    started_at : float;
    requests : int Atomic.t;
    timeouts : int Atomic.t;
    rejections : int Atomic.t;
    batched : int Atomic.t;
    cache_hits : int Atomic.t;
    cache_misses : int Atomic.t;
    stopping : bool Atomic.t;
    mutable is_drained : bool;
    drain_lock : Mutex.t;
    drain_cond : Condition.t;
    mutable worker : Thread.t option;
    mutable acceptor : Thread.t option;
    readers_lock : Mutex.t;
    mutable readers : Thread.t list }

let config t = t.cfg

exception Expired

let respond conn resp =
  Mutex.lock conn.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wlock)
    (fun () ->
      try Wire.write_frame conn.fd (Wire.Response resp)
      with Unix.Unix_error _ | Sys_error _ -> (* peer gone *) ())

let respond_error conn code message =
  respond conn (Wire.Error { code; message })

let respond_timeout t conn =
  Atomic.incr t.timeouts;
  Metrics.incr m_timeout;
  respond_error conn Wire.Deadline_exceeded "deadline exceeded"

let status t =
  { Wire.uptime_s = Span.now () -. t.started_at;
    requests = Atomic.get t.requests;
    queue_depth = Jobs.length t.jobs_q;
    queue_capacity = Jobs.capacity t.jobs_q;
    cache_hits = Atomic.get t.cache_hits;
    cache_misses = Atomic.get t.cache_misses;
    cache_entries = Key_cache.length t.cache;
    timeouts = Atomic.get t.timeouts;
    rejections = Atomic.get t.rejections;
    batched = Atomic.get t.batched }

(* ---------------- worker: request processing ---------------- *)

(* All deadline arithmetic reads the span clock installed by [start]
   (monotonic by default, injectable for tests) — never the wall clock. *)
let check_deadline deadline =
  match deadline with
  | Some d when Span.now () > d -> raise Expired
  | _ -> ()

let matrices_of_input dims input =
  match input with
  | Wire.Seeded { seed; bound } ->
    (* replicates the CLI's seeded instance exactly: rng -> X -> W, then
       the same rng feeds keygen and prove. On a key-cache miss the
       proof is byte-identical to a local seeded CLI prove; on a hit the
       setup's RNG draws are skipped, so the prover randomness — and the
       proof bytes — differ (the proof itself stays valid). *)
    let rng = Random.State.make [| seed |] in
    let x = Spec_fr.random_matrix rng ~rows:dims.Spec.a ~cols:dims.Spec.n ~bound in
    let w = Spec_fr.random_matrix rng ~rows:dims.Spec.n ~cols:dims.Spec.b ~bound in
    (rng, x, w)
  | Wire.Explicit { seed; x; w } ->
    let rows m = Array.length m and cols m = Array.length m.(0) in
    if rows x <> dims.Spec.a || cols x <> dims.Spec.n
       || rows w <> dims.Spec.n || cols w <> dims.Spec.b then
      invalid_arg "matrix shape does not match dims";
    (Random.State.make [| seed |], x, w)

(* prepare + cached keygen, shared by Keygen and Prove *)
let prepared_keys t backend strategy dims input ~deadline =
  let rng, x, w = matrices_of_input dims input in
  let prep = Span.with_span "serve.prepare" (fun () -> Api.prepare strategy ~x ~w dims) in
  check_deadline deadline;
  let entry, hit =
    Key_cache.find_or_add t.cache backend strategy dims ~challenge:prep.Api.challenge
      ~cs:prep.Api.cs
      ~make:(fun () ->
        Span.with_span "serve.keygen" (fun () -> Api.keygen ~rng backend prep.Api.cs))
  in
  (match hit with
   | `Hit_mem | `Hit_disk ->
     Atomic.incr t.cache_hits;
     Metrics.incr m_cache_hit
   | `Miss ->
     Atomic.incr t.cache_misses;
     Metrics.incr m_cache_miss);
  check_deadline deadline;
  (rng, prep, entry, hit <> `Miss)

let public_inputs_of prep =
  Array.to_list (Array.sub prep.Api.assignment 1 (Cs.num_inputs prep.Api.cs))

let process_keygen t ~backend ~strategy ~dims ~seed ~bound ~deadline =
  let _rng, prep, entry, cache_hit =
    prepared_keys t backend strategy dims (Wire.Seeded { seed; bound }) ~deadline
  in
  let key_bytes =
    Wire.encode_key_file
      { Wire.kf_backend = backend;
        kf_strategy = strategy;
        kf_dims = dims;
        kf_challenge = prep.Api.challenge;
        kf_key_id = entry.Key_cache.id;
        kf_keys = entry.Key_cache.keys }
  in
  Wire.Keygen_ok { key_id = entry.Key_cache.id; cache_hit; key_bytes }

let process_prove t ~backend ~strategy ~dims ~input ~deadline =
  let rng, prep, entry, cache_hit = prepared_keys t backend strategy dims input ~deadline in
  let t0 = Span.now () in
  let proof =
    Span.with_span "serve.prove" (fun () ->
        Api.prove_with ~rng entry.Key_cache.keys prep.Api.assignment)
  in
  check_deadline deadline;
  Wire.Prove_ok
    { key_id = entry.Key_cache.id;
      cache_hit;
      challenge = prep.Api.challenge;
      public_inputs = public_inputs_of prep;
      proof;
      prove_s = Span.now () -. t0 }

let process_one t job =
  let fail_bad msg = respond_error job.conn Wire.Bad_request msg in
  try
    check_deadline job.deadline;
    match job.req with
    | Wire.Keygen { backend; strategy; dims; seed; bound; deadline_ms = _ } ->
      let resp =
        Span.with_span "serve.request.keygen" (fun () ->
            process_keygen t ~backend ~strategy ~dims ~seed ~bound ~deadline:job.deadline)
      in
      respond job.conn resp
    | Wire.Prove { backend; strategy; dims; input; deadline_ms = _ } ->
      let resp =
        Span.with_span "serve.request.prove" (fun () ->
            process_prove t ~backend ~strategy ~dims ~input ~deadline:job.deadline)
      in
      respond job.conn resp
    | Wire.Verify { key_id; public_inputs; proof; deadline_ms = _ } -> (
      match Key_cache.find_by_id t.cache key_id with
      | None -> respond_error job.conn Wire.Unknown_key "no key with this id (run keygen first)"
      | Some entry ->
        let ok =
          Span.with_span "serve.request.verify" (fun () ->
              match Api.verify_with entry.Key_cache.keys ~public_inputs proof with
              | ok -> ok
              | exception Invalid_argument _ -> false)
        in
        respond job.conn (Wire.Verify_ok ok))
    | Wire.Batch_verify { key_id; items; deadline_ms = _ } -> (
      match Key_cache.find_by_id t.cache key_id with
      | None -> respond_error job.conn Wire.Unknown_key "no key with this id (run keygen first)"
      | Some entry ->
        let verdicts, fast =
          Span.with_span "serve.request.batch_verify" (fun () ->
              Batch.verify_each entry.Key_cache.keys items)
        in
        if fast then begin
          ignore (Atomic.fetch_and_add t.batched (List.length items));
          Metrics.add m_batched (List.length items)
        end;
        respond job.conn (Wire.Batch_ok verdicts))
    | Wire.Status | Wire.Shutdown ->
      (* handled on the reader threads; never queued *)
      fail_bad "unexpected control request in job queue"
  with
  | Expired -> respond_timeout t job.conn
  | Invalid_argument msg -> fail_bad msg
  | e -> respond_error job.conn Wire.Internal (Printexc.to_string e)

(* Coalesce queued single-proof verifies against the same key into one
   batched check; each request still gets its own [Verify_ok]. *)
let process_verify_group t jobs =
  let live, expired =
    List.partition
      (fun j ->
        match j.deadline with
        | Some d when Span.now () > d -> false
        | _ -> true)
      jobs
  in
  List.iter (fun j -> respond_timeout t j.conn) expired;
  match live with
  | [] -> ()
  | [ j ] -> process_one t j
  | _ -> (
    let key_id =
      match (List.hd live).req with
      | Wire.Verify { key_id; _ } -> key_id
      | _ -> assert false
    in
    match Key_cache.find_by_id t.cache key_id with
    | None ->
      List.iter
        (fun j -> respond_error j.conn Wire.Unknown_key "no key with this id (run keygen first)")
        live
    | Some entry ->
      let items =
        List.map
          (fun j ->
            match j.req with
            | Wire.Verify { public_inputs; proof; _ } -> (public_inputs, proof)
            | _ -> assert false)
          live
      in
      let verdicts, _fast =
        Span.with_span "serve.request.verify_coalesced" (fun () ->
            Batch.verify_each entry.Key_cache.keys items)
      in
      ignore (Atomic.fetch_and_add t.batched (List.length live));
      Metrics.add m_batched (List.length live);
      List.iter2 (fun j ok -> respond j.conn (Wire.Verify_ok ok)) live verdicts)

let worker_loop t =
  let rec loop () =
    match Jobs.pop t.jobs_q with
    | None ->
      Mutex.lock t.drain_lock;
      t.is_drained <- true;
      Condition.broadcast t.drain_cond;
      Mutex.unlock t.drain_lock
    | Some job ->
      if t.cfg.job_delay_s > 0. then Thread.delay t.cfg.job_delay_s;
      (* the catch-all keeps the single worker alive: an unexpected
         exception (e.g. on the coalesced-verify path) must answer
         Internal and continue, not silently kill the only consumer *)
      let guarded jobs f =
        Fun.protect
          ~finally:(fun () -> List.iter (fun j -> conn_release j.conn) jobs)
          (fun () ->
            try f ()
            with e ->
              let msg = Printexc.to_string e in
              List.iter (fun j -> respond_error j.conn Wire.Internal msg) jobs)
      in
      (match job.req with
       | Wire.Verify { key_id; _ } ->
         let rest =
           Jobs.drain_where t.jobs_q (fun j ->
               match j.req with
               | Wire.Verify { key_id = k; _ } -> k = key_id
               | _ -> false)
         in
         let group = job :: rest in
         guarded group (fun () -> process_verify_group t group)
       | _ -> guarded [ job ] (fun () -> process_one t job));
      loop ()
  in
  loop ()

(* ---------------- reader threads ---------------- *)

let deadline_of arrival deadline_ms =
  if deadline_ms <= 0 then None else Some (arrival +. (float_of_int deadline_ms /. 1000.))

let request_deadline_ms = function
  | Wire.Keygen { deadline_ms; _ }
  | Wire.Prove { deadline_ms; _ }
  | Wire.Verify { deadline_ms; _ }
  | Wire.Batch_verify { deadline_ms; _ } ->
    deadline_ms
  | Wire.Status | Wire.Shutdown -> 0

let rec shutdown t =
  if not (Atomic.exchange t.stopping true) then begin
    Jobs.close t.jobs_q;
    (* wake a blocked [accept]: the acceptor rechecks the stop flag on
       every returned connection *)
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket_path) with _ -> ());
       Unix.close fd
     with _ -> ())
  end;
  (* everyone who asks for shutdown blocks until drained *)
  Mutex.lock t.drain_lock;
  while not t.is_drained do
    Condition.wait t.drain_cond t.drain_lock
  done;
  Mutex.unlock t.drain_lock

and handle_request t conn req =
  Atomic.incr t.requests;
  Metrics.incr m_requests;
  match req with
  | Wire.Status -> respond conn (Wire.Status_ok (status t))
  | Wire.Shutdown ->
    shutdown t;
    respond conn Wire.Shutdown_ok
  | req -> (
    let arrival = Span.now () in
    let job = { req; conn; deadline = deadline_of arrival (request_deadline_ms req) } in
    conn_retain conn;
    (* the queued job owns this ref; the worker releases it after responding *)
    match Jobs.push t.jobs_q job with
    | `Ok -> ()
    | `Full ->
      conn_release conn;
      Atomic.incr t.rejections;
      Metrics.incr m_rejected;
      respond_error conn Wire.Queue_full "job queue is full, retry later"
    | `Closed ->
      conn_release conn;
      respond_error conn Wire.Shutting_down "server is shutting down")

let reader_loop t conn =
  let stop_now () = Atomic.get t.stopping && t.is_drained in
  let rec loop () =
    if not (stop_now ()) then
      match Unix.select [ conn.fd ] [] [] 0.25 with
      | [], _, _ -> loop ()
      | _ -> (
        match Wire.read_frame conn.fd with
        | Error Wire.Eof -> ()
        | Error e ->
          (* framing is lost after a malformed frame: answer, then drop *)
          respond_error conn Wire.Bad_request (Wire.error_to_string e)
        | Ok (Wire.Response _) ->
          respond_error conn Wire.Bad_request "unexpected response frame"
        | Ok (Wire.Request req) ->
          handle_request t conn req;
          loop ())
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> loop ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
  in
  (try loop () with _ -> ());
  (* drop the reader's ref; queued jobs for this conn keep the fd alive
     until the worker has answered them *)
  conn_release conn

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
      if Atomic.get t.stopping then (try Unix.close fd with _ -> ())
      else begin
        let conn = { fd; wlock = Mutex.create (); refs = Atomic.make 1 } in
        let th = Thread.create (fun () -> reader_loop t conn) () in
        Mutex.lock t.readers_lock;
        t.readers <- th :: t.readers;
        Mutex.unlock t.readers_lock;
        loop ()
      end
    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> loop ()
    | exception Unix.Unix_error _ -> ()
  in
  loop ();
  (try Unix.close t.listen_fd with _ -> ());
  try Sys.remove t.cfg.socket_path with Sys_error _ -> ()

(* ---------------- lifecycle ---------------- *)

let start cfg =
  (* writes to a peer that already disconnected must surface as EPIPE
     (handled in [respond]) instead of a process-killing SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* Spans, deadlines and uptime all read [Span.now]. The default is a
     monotonic clock — not [Unix.gettimeofday], which an NTP step can
     move under us, and not [Sys.time], which is process CPU time and
     sums across worker domains. Tests inject a simulated clock. *)
  Span.set_clock (match cfg.clock with Some f -> f | None -> monotonic_now);
  if cfg.observe then Sink.enable ();
  if cfg.jobs > 0 then Zkvc_parallel.set_jobs cfg.jobs;
  if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path)
   with e ->
     (try Unix.close listen_fd with _ -> ());
     raise e);
  Unix.listen listen_fd 64;
  let t =
    { cfg;
      listen_fd;
      jobs_q = Jobs.create ~capacity:cfg.queue_capacity;
      cache = Key_cache.create ~capacity:cfg.cache_capacity ?dir:cfg.cache_dir ();
      started_at = Span.now ();
      requests = Atomic.make 0;
      timeouts = Atomic.make 0;
      rejections = Atomic.make 0;
      batched = Atomic.make 0;
      cache_hits = Atomic.make 0;
      cache_misses = Atomic.make 0;
      stopping = Atomic.make false;
      is_drained = false;
      drain_lock = Mutex.create ();
      drain_cond = Condition.create ();
      worker = None;
      acceptor = None;
      readers_lock = Mutex.create ();
      readers = [] }
  in
  t.worker <- Some (Thread.create (fun () -> worker_loop t) ());
  t.acceptor <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let wait t =
  Option.iter Thread.join t.acceptor;
  Option.iter Thread.join t.worker;
  let readers =
    Mutex.lock t.readers_lock;
    let r = t.readers in
    Mutex.unlock t.readers_lock;
    r
  in
  List.iter Thread.join readers
