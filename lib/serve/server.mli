(** The zkVC proof service: a Unix-domain-socket server that keeps
    circuit keys warm across requests.

    Threading model (systhreads, one OCaml domain): one accept thread,
    one reader thread per connection, and [config.workers] worker
    threads (default 1) pulling from the {!Jobs} scheduler — per-client
    FIFOs under deficit round robin with a verify lane dispatched ahead
    of the prove lane. Readers only parse, enqueue and answer
    [Status]/[Status_detail]/[Shutdown]; proving/verifying happens on
    the workers. The layers underneath are concurrency-safe for this:
    [Zkvc_parallel] admits one submitter at a time (the rest degrade to
    sequential), [Key_cache] runs keygen per-key single-flight, and
    [Zkvc_obs] spans record per-thread. At most one job per connection
    is in flight at once, so each connection's responses always arrive
    in request order regardless of worker count. Parallelism inside a
    job still comes from the domain pool ([config.jobs]).

    Backpressure: the job queue is bounded; a full queue rejects with
    [Queue_full] instead of queueing unboundedly. Deadlines are checked
    when a job is dequeued and between phases (prepare / keygen / prove),
    answering [Deadline_exceeded]. Shutdown closes the queue, drains
    in-flight jobs, answers the shutdown request, then stops accepting. *)

type config =
  { socket_path : string;
    queue_capacity : int;
    cache_capacity : int;
    cache_dir : string option;  (** enables key-file disk spill *)
    workers : int;
        (** worker-thread pool size; values [< 1] are treated as [1].
            [1] (the default) reproduces the single-worker behaviour *)
    jobs : int;  (** domain-pool size for the workers; [0] = leave as-is *)
    job_delay_s : float;
        (** test hook: sleep this long before each job (deterministic
            queue-full / deadline tests). Leave [0.] *)
    observe : bool;  (** enable the [Zkvc_obs] sink + serve.* metrics *)
    clock : (unit -> float) option;
        (** clock installed as the span clock and used for every
            deadline, uptime and duration reading. [None] (the default)
            selects a monotonic clock ([CLOCK_MONOTONIC]); tests inject
            a simulated clock here. Never [Unix.gettimeofday]: an NTP
            step would expire every queued job, or keep deadlines from
            ever firing. *)
    metrics_file : string option;
        (** write a Prometheus-exposition snapshot ([Zkvc_obs.Expose])
            here every [metrics_interval_s], atomically (tmp +
            rename), plus a final snapshot at drain. Implies the obs
            sink. *)
    metrics_interval_s : float;  (** snapshot period; default 1s *)
    flight_capacity : int;
        (** flight-recorder ring size (last N completed/failed jobs);
            default 128 *)
    flight_file : string option;
        (** dump the flight ring (JSONL) here when the last worker
            drains or dies — same bytes [Status_detail] returns *)
    optimize : Zkvc.Api.Opt.config option
        (** run the R1CS optimiser ([Zkvc_opt]) on every circuit the
            server prepares or keygens. The config is absorbed into
            cache ids and spilled key files, so optimised and
            unoptimised keys never mix. [None] (the default) leaves
            circuits untouched. *);
    batch_aggregate : bool
        (** route homogeneous Groth16 verify batches through SnarkPack
            aggregation ({!Zkvc_groth16.Aggregate}) instead of the plain
            weighted batch check. The aggregation SRS is sampled once,
            lazily, per server process. Default [false]. *) }

val default_config : socket_path:string -> config

type t

val config : t -> config

(** Bind, listen and spawn the accept + worker threads. Installs
    [config.clock] (monotonic by default) as the span clock, and
    per-thread span contexts, before any span opens or deadline is
    computed. Raises [Unix.Unix_error] if the socket can't be bound. *)
val start : config -> t

(** Request a graceful stop: close the queue, wait for every worker to
    drain, stop accepting. Idempotent; blocks until drained. *)
val shutdown : t -> unit

(** Block until the server has fully stopped (accept, worker and reader
    threads joined). *)
val wait : t -> unit

(** Current status snapshot (same data a [Status] request returns). *)
val status : t -> Wire.status

(** The flight-recorder contents, one JSON object per line, oldest
    first — exactly the bytes [Status_detail] returns and the
    [flight_file] flush writes. *)
val flight_jsonl : t -> string
