module Metrics = Zkvc_obs.Metrics
module Span = Zkvc_obs.Span

(* Queue telemetry: depth gauge maintained at every transition, wait
   histogram observed when a job leaves the queue. Timestamps use the
   span clock so they agree with span data; both instruments are no-ops
   while the obs sink is disabled. *)
let m_depth = Metrics.gauge "serve.queue.depth"
let m_wait = Metrics.histogram "serve.queue.wait_s"

type 'a t =
  { capacity : int;
    q : (float * 'a) Queue.t; (* (admit timestamp, item) *)
    lock : Mutex.t;
    nonempty : Condition.t;
    mutable closed : bool }

let create ~capacity =
  if capacity < 1 then invalid_arg "Jobs.create: capacity must be positive";
  { capacity;
    q = Queue.create ();
    lock = Mutex.create ();
    nonempty = Condition.create ();
    closed = false }

let capacity t = t.capacity

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* call with t.lock held *)
let note_depth t = Metrics.set m_depth (float_of_int (Queue.length t.q))

let note_wait admit_s = Metrics.observe m_wait (Span.now () -. admit_s)

let length t = with_lock t (fun () -> Queue.length t.q)

let push t x =
  with_lock t (fun () ->
      if t.closed then `Closed
      else if Queue.length t.q >= t.capacity then `Full
      else begin
        Queue.push (Span.now (), x) t.q;
        note_depth t;
        Condition.signal t.nonempty;
        `Ok
      end)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.q) then begin
          let admit_s, x = Queue.pop t.q in
          note_depth t;
          note_wait admit_s;
          Some x
        end
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.lock;
          wait ()
        end
      in
      wait ())

let drain_where t p =
  with_lock t (fun () ->
      let keep = Queue.create () in
      let taken = ref [] in
      Queue.iter
        (fun ((admit_s, x) as entry) ->
          if p x then begin
            note_wait admit_s;
            taken := x :: !taken
          end
          else Queue.push entry keep)
        t.q;
      Queue.clear t.q;
      Queue.transfer keep t.q;
      note_depth t;
      List.rev !taken)

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let is_closed t = with_lock t (fun () -> t.closed)
