type 'a t =
  { capacity : int;
    q : 'a Queue.t;
    lock : Mutex.t;
    nonempty : Condition.t;
    mutable closed : bool }

let create ~capacity =
  if capacity < 1 then invalid_arg "Jobs.create: capacity must be positive";
  { capacity;
    q = Queue.create ();
    lock = Mutex.create ();
    nonempty = Condition.create ();
    closed = false }

let capacity t = t.capacity

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = with_lock t (fun () -> Queue.length t.q)

let push t x =
  with_lock t (fun () ->
      if t.closed then `Closed
      else if Queue.length t.q >= t.capacity then `Full
      else begin
        Queue.push x t.q;
        Condition.signal t.nonempty;
        `Ok
      end)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.q) then Some (Queue.pop t.q)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.lock;
          wait ()
        end
      in
      wait ())

let drain_where t p =
  with_lock t (fun () ->
      let keep = Queue.create () in
      let taken = ref [] in
      Queue.iter (fun x -> if p x then taken := x :: !taken else Queue.push x keep) t.q;
      Queue.clear t.q;
      Queue.transfer keep t.q;
      List.rev !taken)

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let is_closed t = with_lock t (fun () -> t.closed)
