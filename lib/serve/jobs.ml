module Metrics = Zkvc_obs.Metrics
module Span = Zkvc_obs.Span

(* Two-lane deficit-round-robin scheduler over per-client FIFOs.

   Shape: every client (connection) owns one FIFO of (lane, cost, item)
   entries in arrival order, and sits in the dispatch ring of its head
   entry's lane. [pop] scans the verify ring strictly before the prove
   ring; within a ring each visited client earns [quantum] deficit
   credits and dispatches its head once the credits cover the head's
   cost. A client with a job in flight is skipped (rotated to the back)
   until [complete] — that single-job-in-flight rule is what keeps each
   connection's responses in request order even with many workers.

   Invariants (all under [lock]):
   - a client is in exactly one ring iff its FIFO is non-empty, and that
     ring matches its head entry's lane;
   - [depth_verify]/[depth_prove] count queued (never in-flight)
     entries, and their sum is bounded by [capacity];
   - a busy client never has a second job dispatched.

   Telemetry: total + per-lane depth gauges on every transition, total +
   per-lane wait histograms when a job leaves the queue. Timestamps use
   the span clock so they agree with span data; all instruments are
   no-ops while the obs sink is disabled. *)

let m_depth = Metrics.gauge "serve.queue.depth"
let m_depth_verify = Metrics.gauge "serve.queue.depth.verify"
let m_depth_prove = Metrics.gauge "serve.queue.depth.prove"
let m_wait = Metrics.histogram "serve.queue.wait_s"
let m_wait_verify = Metrics.histogram "serve.queue.wait_s.verify"
let m_wait_prove = Metrics.histogram "serve.queue.wait_s.prove"

type lane = Lane_verify | Lane_prove

let lane_to_string = function Lane_verify -> "verify" | Lane_prove -> "prove"

type 'a entry = { lane : lane; cost : int; admit_s : float; item : 'a }

type 'a client =
  { cid : int;
    q : 'a entry Queue.t; (* this connection's jobs, arrival order *)
    mutable deficit : int;
    mutable busy : bool (* a dispatched job is awaiting [complete] *) }

type 'a ticket = { t_item : 'a; t_client : int; t_lane : lane }

type 'a t =
  { capacity : int;
    quantum : int;
    lock : Mutex.t;
    nonempty : Condition.t;
    clients : (int, 'a client) Hashtbl.t;
    ring_verify : int Queue.t; (* cids whose head entry is a verify *)
    ring_prove : int Queue.t;
    mutable depth_verify : int;
    mutable depth_prove : int;
    mutable closed : bool }

let max_cost = 64

let clamp_cost c = if c < 1 then 1 else if c > max_cost then max_cost else c

let create ?(quantum = 4) ~capacity () =
  if capacity < 1 then invalid_arg "Jobs.create: capacity must be positive";
  if quantum < 1 then invalid_arg "Jobs.create: quantum must be positive";
  { capacity;
    quantum;
    lock = Mutex.create ();
    nonempty = Condition.create ();
    clients = Hashtbl.create 16;
    ring_verify = Queue.create ();
    ring_prove = Queue.create ();
    depth_verify = 0;
    depth_prove = 0;
    closed = false }

let capacity t = t.capacity

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let ring t = function Lane_verify -> t.ring_verify | Lane_prove -> t.ring_prove

(* the helpers below assume t.lock is held *)

let length_locked t = t.depth_verify + t.depth_prove

let note_depth t =
  Metrics.set m_depth (float_of_int (length_locked t));
  Metrics.set m_depth_verify (float_of_int t.depth_verify);
  Metrics.set m_depth_prove (float_of_int t.depth_prove)

let note_wait lane admit_s =
  let w = Span.now () -. admit_s in
  Metrics.observe m_wait w;
  Metrics.observe
    (match lane with Lane_verify -> m_wait_verify | Lane_prove -> m_wait_prove)
    w

let bump_depth t lane d =
  (match lane with
   | Lane_verify -> t.depth_verify <- t.depth_verify + d
   | Lane_prove -> t.depth_prove <- t.depth_prove + d);
  note_depth t

let ring_remove r cid =
  let keep = Queue.create () in
  Queue.iter (fun x -> if x <> cid then Queue.push x keep) r;
  Queue.clear r;
  Queue.transfer keep r

let client_of t cid =
  match Hashtbl.find_opt t.clients cid with
  | Some c -> c
  | None ->
    let c = { cid; q = Queue.create (); deficit = 0; busy = false } in
    Hashtbl.add t.clients cid c;
    c

(* Dequeue [c]'s head (already paid for) and re-ring the client under
   its new head's lane, if any. *)
let dispatch_head t c =
  let e = Queue.pop c.q in
  c.busy <- true;
  bump_depth t e.lane (-1);
  note_wait e.lane e.admit_s;
  if Queue.is_empty c.q then c.deficit <- 0
  else Queue.push c.cid (ring t (Queue.peek c.q).lane);
  { t_item = e.item; t_client = c.cid; t_lane = e.lane }

(* One DRR pass over a lane's ring. Sets [starved] when some idle
   client earned credits but its head is still too expensive — the
   caller then rescans immediately (credits accumulate) instead of
   blocking, so an expensive head always dispatches after finitely many
   passes. *)
let scan_lane t lane ~starved =
  let r = ring t lane in
  let rotations = Queue.length r in
  let rec visit i =
    if i >= rotations || Queue.is_empty r then None
    else begin
      let cid = Queue.pop r in
      match Hashtbl.find_opt t.clients cid with
      | None -> visit i (* defensive: stale slot, drop it *)
      | Some c ->
        if Queue.is_empty c.q then visit i (* defensive: stale slot *)
        else if c.busy then begin
          Queue.push cid r;
          visit (i + 1)
        end
        else begin
          let e = Queue.peek c.q in
          c.deficit <- c.deficit + t.quantum;
          if c.deficit >= e.cost then begin
            c.deficit <- c.deficit - e.cost;
            Some (dispatch_head t c)
          end
          else begin
            starved := true;
            Queue.push cid r;
            visit (i + 1)
          end
        end
    end
  in
  visit 0

let length t = with_lock t (fun () -> length_locked t)

let lane_depth t lane =
  with_lock t (fun () ->
      match lane with Lane_verify -> t.depth_verify | Lane_prove -> t.depth_prove)

let push t ~client ~lane ?(cost = 1) x =
  with_lock t (fun () ->
      if t.closed then `Closed
      else if length_locked t >= t.capacity then `Full
      else begin
        let c = client_of t client in
        let was_empty = Queue.is_empty c.q in
        Queue.push { lane; cost = clamp_cost cost; admit_s = Span.now (); item = x } c.q;
        if was_empty then Queue.push client (ring t lane);
        bump_depth t lane 1;
        Condition.broadcast t.nonempty;
        `Ok
      end)

let pop t =
  with_lock t (fun () ->
      let rec loop () =
        let starved = ref false in
        match scan_lane t Lane_verify ~starved with
        | Some tk -> Some tk
        | None -> (
          match scan_lane t Lane_prove ~starved with
          | Some tk -> Some tk
          | None ->
            if !starved then loop ()
            else if t.closed && length_locked t = 0 then None
            else begin
              (* nothing dispatchable: empty, or every backlogged client
                 is busy; [push]/[complete]/[close] wake us *)
              Condition.wait t.nonempty t.lock;
              loop ()
            end)
      in
      loop ())

let complete t ~client =
  with_lock t (fun () ->
      (match Hashtbl.find_opt t.clients client with
       | None -> ()
       | Some c ->
         c.busy <- false;
         if Queue.is_empty c.q then Hashtbl.remove t.clients client);
      Condition.broadcast t.nonempty)

let drain_where t ~lane p =
  with_lock t (fun () ->
      let taken = ref [] in
      Hashtbl.iter
        (fun cid c ->
          if (not c.busy)
             && (not (Queue.is_empty c.q))
             && (Queue.peek c.q).lane = lane
             && p (Queue.peek c.q).item then begin
            let rec take () =
              if not (Queue.is_empty c.q) then begin
                let e = Queue.peek c.q in
                if e.lane = lane && p e.item then begin
                  ignore (Queue.pop c.q);
                  bump_depth t lane (-1);
                  note_wait lane e.admit_s;
                  taken :=
                    (e.admit_s, { t_item = e.item; t_client = cid; t_lane = lane })
                    :: !taken;
                  take ()
                end
              end
            in
            take ();
            c.busy <- true;
            ring_remove (ring t lane) cid;
            if not (Queue.is_empty c.q) then
              Queue.push cid (ring t (Queue.peek c.q).lane)
          end)
        t.clients;
      (* oldest first; compare admit times only — tickets hold abstract
         blocks (fds, mutexes) that [Stdlib.compare] would choke on *)
      List.map snd (List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) !taken))

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let is_closed t = with_lock t (fun () -> t.closed)
