(** Server-side batch verification. Coalesced verify requests against one
    key take the backend's batched fast path — [Groth16.verify_batch]
    (one multi-pairing for the whole group) or [Spartan.verify_batch]
    (one shared opening MSM) — and if the batched check fails, each item
    is re-verified alone so honest proofs in a batch with one corrupted
    member still pass. *)

module Fr = Zkvc_field.Fr
module Api = Zkvc.Api

(** How the verdicts were decided. [Batched]: the fast path accepted the
    whole group in one combined check. [Aggregated]: the group was
    compressed into one SnarkPack aggregate proof and that verified.
    [Fallback]: the fast path ran and rejected (or flagged malformed
    members), so every item was re-verified individually. [Per_item]:
    the fast path never applied (singleton group, or proofs not
    homogeneous with the key's backend). *)
type path = Batched | Aggregated | Fallback | Per_item

type outcome =
  { verdicts : bool list;  (** one per item, in order *)
    path : path;
    malformed : int list
        (** 0-based indices the batch verifier flagged as structurally
            invalid (wrong arity/shape for the key) — attributable
            faults, distinct from honest cryptographic rejection *) }

(** [verify_each keys items]: batches of two or more homogeneous proofs
    take the fast path; mixed or singleton groups verify per item.
    With [?aggregate_srs], homogeneous Groth16 groups that fit the SRS
    are instead compressed into one SnarkPack aggregate
    ({!Zkvc_groth16.Aggregate}) and that single proof is checked —
    exercising the aggregation pipeline end to end on served traffic.
    Raises [Invalid_argument] on an empty list — zero instances have no
    sound verdict, and callers must not let a dropped-to-empty batch
    "verify". *)
val verify_each :
  ?aggregate_srs:Zkvc_groth16.Aggregate.srs ->
  Api.keys ->
  (Fr.t list * Api.proof) list ->
  outcome
