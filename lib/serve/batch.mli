(** Server-side batch verification. Coalesced Groth16 verify requests go
    through [Groth16.verify_batch] (one multi-pairing for the whole
    batch); if the batched check fails, each item is re-verified alone so
    honest proofs in a batch with one corrupted member still pass. *)

module Fr = Zkvc_field.Fr
module Api = Zkvc.Api

(** [verify_each keys items] returns one verdict per item, in order.
    Groth16 batches of two or more take the fast path; Spartan (whose
    verifier has no batch form here) always verifies per item. Returns
    the verdicts paired with [true] iff the batched fast path decided
    the whole list. *)
val verify_each :
  Api.keys -> (Fr.t list * Api.proof) list -> bool list * bool
