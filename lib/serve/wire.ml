(** Versioned binary wire protocol of the zkVC proof service. See the
    interface for the frame layout. Decoding is total: a private [Fail]
    exception carries the error to the entry points, every read is
    bounds-checked against the declared payload, and every scalar/point
    is validated on parse. *)

module Fr = Zkvc_field.Fr
module Api = Zkvc.Api
module Mc = Zkvc.Matmul_circuit
module Mspec = Zkvc.Matmul_spec
module Groth16 = Zkvc_groth16.Groth16
module Spartan = Zkvc_spartan.Spartan
module Sha256 = Zkvc_hash.Sha256

type error =
  | Eof
  | Bad_magic
  | Unsupported_version of int
  | Truncated
  | Oversized of int
  | Bad_tag of { what : string; tag : int }
  | Malformed of string

let error_to_string = function
  | Eof -> "connection closed"
  | Bad_magic -> "bad magic"
  | Unsupported_version v -> Printf.sprintf "unsupported protocol version %d" v
  | Truncated -> "truncated input"
  | Oversized n -> Printf.sprintf "declared length %d exceeds the frame bound" n
  | Bad_tag { what; tag } -> Printf.sprintf "unknown %s tag %d" what tag
  | Malformed msg -> Printf.sprintf "malformed payload: %s" msg

exception Fail of error

let fail e = raise (Fail e)

let magic = "ZKVC"
let version = 3
let min_version = 1
let max_payload = 1 lsl 26 (* 64 MiB *)
let header_bytes = 10
let key_id_bytes = 32
let request_id_bytes = 16
let fr_bytes = 32

(* wire sanity bounds on the v2 trace/timing blocks *)
let max_origin_bytes = 256
let max_phases = 256
let max_phase_name_bytes = 128

(* service sanity bound on matrix dimensions coming off the wire *)
let max_dim = 1 lsl 16
let max_matrix_cells = 1 lsl 22

type prove_input =
  | Seeded of { seed : int; bound : int }
  | Explicit of { seed : int; x : Fr.t array array; w : Fr.t array array }

(* v2 trace context: a client-chosen request id carried on requests and
   echoed back inside the response timing block. *)
type trace = { tr_request_id : string; tr_origin : string }

type timing =
  { tm_request_id : string;
    tm_queue_wait_s : float;
    tm_exec_s : float;
    tm_phases : (string * float * float) list }

type request =
  | Keygen of
      { backend : Api.backend;
        strategy : Mc.strategy;
        dims : Mspec.dims;
        seed : int;
        bound : int;
        deadline_ms : int }
  | Prove of
      { backend : Api.backend;
        strategy : Mc.strategy;
        dims : Mspec.dims;
        input : prove_input;
        deadline_ms : int }
  | Verify of
      { key_id : string;
        public_inputs : Fr.t list;
        proof : Api.proof;
        deadline_ms : int }
  | Batch_verify of
      { key_id : string;
        items : (Fr.t list * Api.proof) list;
        deadline_ms : int }
  | Status
  | Status_detail
  | Shutdown

type status =
  { uptime_s : float;
    requests : int;
    queue_depth : int;
    queue_capacity : int;
    cache_hits : int;
    cache_misses : int;
    cache_entries : int;
    timeouts : int;
    rejections : int;
    batched : int;
    (* scheduler block, wire version 3+ (decodes as zeros from older
       peers): worker-pool size/occupancy and per-lane queue depths *)
    workers : int;
    workers_busy : int;
    queue_depth_verify : int;
    queue_depth_prove : int }

type error_code =
  | Queue_full
  | Deadline_exceeded
  | Bad_request
  | Unknown_key
  | Shutting_down
  | Internal

let error_code_to_string = function
  | Queue_full -> "queue-full"
  | Deadline_exceeded -> "deadline-exceeded"
  | Bad_request -> "bad-request"
  | Unknown_key -> "unknown-key"
  | Shutting_down -> "shutting-down"
  | Internal -> "internal"

type response =
  | Keygen_ok of { key_id : string; cache_hit : bool; key_bytes : Bytes.t }
  | Prove_ok of
      { key_id : string;
        cache_hit : bool;
        challenge : Fr.t option;
        public_inputs : Fr.t list;
        proof : Api.proof;
        prove_s : float }
  | Verify_ok of bool
  | Batch_ok of bool list
  | Status_ok of status
  | Status_detail_ok of
      { status : status; metrics_text : string; flight_jsonl : string }
  | Shutdown_ok
  | Error of { code : error_code; message : string }

type frame =
  | Request of trace option * request
  | Response of timing option * response

type meta = { frame_version : int; payload_bytes : int }

(* ---------------- encoding primitives ---------------- *)

let w_u8 buf n = Buffer.add_char buf (Char.chr (n land 0xff))

let w_u32 buf n =
  w_u8 buf (n lsr 24);
  w_u8 buf (n lsr 16);
  w_u8 buf (n lsr 8);
  w_u8 buf n

let w_i64_bits buf n =
  for i = 7 downto 0 do
    w_u8 buf (Int64.to_int (Int64.logand (Int64.shift_right_logical n (8 * i)) 0xffL))
  done

let w_i64 buf n = w_i64_bits buf (Int64.of_int n)

(* the full 64 bits travel: OCaml ints are 63-bit, so floats must not
   round-trip through [int] (bit 62 would leak into the sign) *)
let w_f64 buf x = w_i64_bits buf (Int64.bits_of_float x)

let w_bool buf b = w_u8 buf (if b then 1 else 0)

let w_lp_bytes buf b =
  w_u32 buf (Bytes.length b);
  Buffer.add_bytes buf b

let w_lp_string buf s =
  w_u32 buf (String.length s);
  Buffer.add_string buf s

let w_fr buf x = Buffer.add_bytes buf (Fr.to_bytes x)

let w_key_id buf id =
  assert (String.length id = key_id_bytes);
  Buffer.add_string buf id

let w_backend buf = function
  | Api.Backend_groth16 -> w_u8 buf 0
  | Api.Backend_spartan -> w_u8 buf 1

let w_strategy buf (s : Mc.strategy) =
  w_u8 buf (match s with Vanilla -> 0 | Vanilla_psq -> 1 | Crpc -> 2 | Crpc_psq -> 3)

let w_dims buf { Mspec.a; n; b } =
  w_u32 buf a;
  w_u32 buf n;
  w_u32 buf b

let w_fr_opt buf = function
  | None -> w_u8 buf 0
  | Some x ->
    w_u8 buf 1;
    w_fr buf x

let w_fr_list buf l =
  w_u32 buf (List.length l);
  List.iter (w_fr buf) l

let w_matrix buf m =
  let rows = Array.length m in
  let cols = if rows = 0 then 0 else Array.length m.(0) in
  w_u32 buf rows;
  w_u32 buf cols;
  Array.iter (fun row -> Array.iter (w_fr buf) row) m

let w_proof buf = function
  | Api.Groth16_proof p ->
    w_u8 buf 0;
    w_lp_bytes buf (Groth16.proof_to_bytes p)
  | Api.Spartan_proof p ->
    w_u8 buf 1;
    w_lp_bytes buf (Spartan.proof_to_bytes p)

(* ---------------- decoding primitives ---------------- *)

type cursor = { buf : Bytes.t; mutable pos : int; limit : int }

let cursor_of_bytes b = { buf = b; pos = 0; limit = Bytes.length b }

let remaining c = c.limit - c.pos

let need c n = if remaining c < n then fail Truncated

let r_u8 c =
  need c 1;
  let n = Char.code (Bytes.get c.buf c.pos) in
  c.pos <- c.pos + 1;
  n

let r_u32 c =
  need c 4;
  let b i = Char.code (Bytes.get c.buf (c.pos + i)) in
  let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  c.pos <- c.pos + 4;
  n

let r_i64_bits c =
  need c 8;
  let n = ref 0L in
  for i = 0 to 7 do
    n := Int64.logor (Int64.shift_left !n 8)
           (Int64.of_int (Char.code (Bytes.get c.buf (c.pos + i))))
  done;
  c.pos <- c.pos + 8;
  !n

let r_i64 c = Int64.to_int (r_i64_bits c)

let r_f64 c = Int64.float_of_bits (r_i64_bits c)

let r_bool c =
  match r_u8 c with
  | 0 -> false
  | 1 -> true
  | tag -> fail (Bad_tag { what = "bool"; tag })

let r_fixed c n =
  need c n;
  let b = Bytes.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  b

let r_lp_bytes c =
  let n = r_u32 c in
  if n > remaining c then fail Truncated;
  r_fixed c n

let r_lp_string c = Bytes.to_string (r_lp_bytes c)

let r_fr c =
  match Fr.of_bytes_exn (r_fixed c fr_bytes) with
  | x -> x
  | exception Invalid_argument msg -> fail (Malformed msg)

let r_key_id c = Bytes.to_string (r_fixed c key_id_bytes)

let r_backend c =
  match r_u8 c with
  | 0 -> Api.Backend_groth16
  | 1 -> Api.Backend_spartan
  | tag -> fail (Bad_tag { what = "backend"; tag })

let r_strategy c : Mc.strategy =
  match r_u8 c with
  | 0 -> Vanilla
  | 1 -> Vanilla_psq
  | 2 -> Crpc
  | 3 -> Crpc_psq
  | tag -> fail (Bad_tag { what = "strategy"; tag })

let r_dims c =
  let a = r_u32 c in
  let n = r_u32 c in
  let b = r_u32 c in
  if a < 1 || n < 1 || b < 1 || a > max_dim || n > max_dim || b > max_dim then
    fail (Malformed "dims out of range");
  { Mspec.a; n; b }

let r_fr_opt c = if r_bool c then Some (r_fr c) else None

let r_fr_list c =
  let n = r_u32 c in
  if n > remaining c / fr_bytes then fail Truncated;
  List.init n (fun _ -> r_fr c)

let r_matrix c =
  let rows = r_u32 c in
  let cols = r_u32 c in
  if rows < 1 || cols < 1 || rows > max_dim || cols > max_dim
     || rows * cols > max_matrix_cells then
    fail (Malformed "matrix dimensions out of range");
  if rows * cols > remaining c / fr_bytes then fail Truncated;
  Array.init rows (fun _ -> Array.init cols (fun _ -> r_fr c))

let r_proof c =
  let tag = r_u8 c in
  let b = r_lp_bytes c in
  match tag with
  | 0 ->
    (try Api.Groth16_proof (Groth16.proof_of_bytes_exn b)
     with Invalid_argument msg -> fail (Malformed msg))
  | 1 ->
    (try Api.Spartan_proof (Spartan.proof_of_bytes_exn b)
     with Invalid_argument msg -> fail (Malformed msg))
  | tag -> fail (Bad_tag { what = "proof backend"; tag })

let finished c what = if remaining c <> 0 then fail (Malformed ("trailing bytes in " ^ what))

(* ---------------- trace / timing blocks (v2) ---------------- *)

let w_trace buf = function
  | None -> w_u8 buf 0
  | Some { tr_request_id; tr_origin } ->
    if String.length tr_request_id <> request_id_bytes then
      invalid_arg "Wire: trace request id must be 16 bytes";
    if String.length tr_origin > max_origin_bytes then
      invalid_arg "Wire: trace origin too long";
    w_u8 buf 1;
    Buffer.add_string buf tr_request_id;
    w_lp_string buf tr_origin

let r_trace c =
  if r_bool c then begin
    let tr_request_id = Bytes.to_string (r_fixed c request_id_bytes) in
    let tr_origin = r_lp_string c in
    if String.length tr_origin > max_origin_bytes then
      fail (Malformed "trace origin too long");
    Some { tr_request_id; tr_origin }
  end
  else None

let w_timing buf = function
  | None -> w_u8 buf 0
  | Some { tm_request_id; tm_queue_wait_s; tm_exec_s; tm_phases } ->
    if String.length tm_request_id <> request_id_bytes then
      invalid_arg "Wire: timing request id must be 16 bytes";
    if List.length tm_phases > max_phases then
      invalid_arg "Wire: too many timing phases";
    w_u8 buf 1;
    Buffer.add_string buf tm_request_id;
    w_f64 buf tm_queue_wait_s;
    w_f64 buf tm_exec_s;
    w_u32 buf (List.length tm_phases);
    List.iter
      (fun (name, off_s, dur_s) ->
        if String.length name > max_phase_name_bytes then
          invalid_arg "Wire: timing phase name too long";
        w_lp_string buf name;
        w_f64 buf off_s;
        w_f64 buf dur_s)
      tm_phases

let r_timing c =
  if r_bool c then begin
    let tm_request_id = Bytes.to_string (r_fixed c request_id_bytes) in
    let tm_queue_wait_s = r_f64 c in
    let tm_exec_s = r_f64 c in
    let n = r_u32 c in
    if n > max_phases then fail (Malformed "too many timing phases");
    let tm_phases =
      List.init n (fun _ ->
          let name = r_lp_string c in
          if String.length name > max_phase_name_bytes then
            fail (Malformed "timing phase name too long");
          let off_s = r_f64 c in
          let dur_s = r_f64 c in
          (name, off_s, dur_s))
    in
    Some { tm_request_id; tm_queue_wait_s; tm_exec_s; tm_phases }
  end
  else None

(* ---------------- payloads ---------------- *)

let kind_of_frame = function
  | Request (_, Keygen _) -> 0x01
  | Request (_, Prove _) -> 0x02
  | Request (_, Verify _) -> 0x03
  | Request (_, Batch_verify _) -> 0x04
  | Request (_, Status) -> 0x05
  | Request (_, Shutdown) -> 0x06
  | Request (_, Status_detail) -> 0x07
  | Response (_, Keygen_ok _) -> 0x81
  | Response (_, Prove_ok _) -> 0x82
  | Response (_, Verify_ok _) -> 0x83
  | Response (_, Batch_ok _) -> 0x84
  | Response (_, Status_ok _) -> 0x85
  | Response (_, Shutdown_ok) -> 0x86
  | Response (_, Status_detail_ok _) -> 0x87
  | Response (_, Error _) -> 0xff

(* the scheduler block is a v3 extension; v1/v2 status payloads stay
   byte-identical to what older builds emitted *)
let w_status ~version buf s =
  w_f64 buf s.uptime_s;
  w_i64 buf s.requests;
  w_u32 buf s.queue_depth;
  w_u32 buf s.queue_capacity;
  w_i64 buf s.cache_hits;
  w_i64 buf s.cache_misses;
  w_u32 buf s.cache_entries;
  w_i64 buf s.timeouts;
  w_i64 buf s.rejections;
  w_i64 buf s.batched;
  if version >= 3 then begin
    w_u32 buf s.workers;
    w_u32 buf s.workers_busy;
    w_u32 buf s.queue_depth_verify;
    w_u32 buf s.queue_depth_prove
  end

let encode_request buf = function
  | Keygen { backend; strategy; dims; seed; bound; deadline_ms } ->
    w_backend buf backend;
    w_strategy buf strategy;
    w_dims buf dims;
    w_i64 buf seed;
    w_u32 buf bound;
    w_u32 buf deadline_ms
  | Prove { backend; strategy; dims; input; deadline_ms } ->
    w_backend buf backend;
    w_strategy buf strategy;
    w_dims buf dims;
    w_u32 buf deadline_ms;
    (match input with
     | Seeded { seed; bound } ->
       w_u8 buf 0;
       w_i64 buf seed;
       w_u32 buf bound
     | Explicit { seed; x; w } ->
       w_u8 buf 1;
       w_i64 buf seed;
       w_matrix buf x;
       w_matrix buf w)
  | Verify { key_id; public_inputs; proof; deadline_ms } ->
    w_key_id buf key_id;
    w_u32 buf deadline_ms;
    w_fr_list buf public_inputs;
    w_proof buf proof
  | Batch_verify { key_id; items; deadline_ms } ->
    w_key_id buf key_id;
    w_u32 buf deadline_ms;
    w_u32 buf (List.length items);
    List.iter
      (fun (io, proof) ->
        w_fr_list buf io;
        w_proof buf proof)
      items
  | Status | Status_detail | Shutdown -> ()

let encode_response ~version buf = function
  | Keygen_ok { key_id; cache_hit; key_bytes } ->
    w_key_id buf key_id;
    w_bool buf cache_hit;
    w_lp_bytes buf key_bytes
  | Prove_ok { key_id; cache_hit; challenge; public_inputs; proof; prove_s } ->
    w_key_id buf key_id;
    w_bool buf cache_hit;
    w_fr_opt buf challenge;
    w_fr_list buf public_inputs;
    w_proof buf proof;
    w_f64 buf prove_s
  | Verify_ok ok -> w_bool buf ok
  | Batch_ok oks ->
    w_u32 buf (List.length oks);
    List.iter (w_bool buf) oks
  | Status_ok s -> w_status ~version buf s
  | Status_detail_ok { status; metrics_text; flight_jsonl } ->
    w_status ~version buf status;
    w_lp_string buf metrics_text;
    w_lp_string buf flight_jsonl
  | Shutdown_ok -> ()
  | Error { code; message } ->
    w_u8 buf
      (match code with
       | Queue_full -> 0
       | Deadline_exceeded -> 1
       | Bad_request -> 2
       | Unknown_key -> 3
       | Shutting_down -> 4
       | Internal -> 5);
    w_lp_string buf message

(* The v2 payload prefixes the v1 body with an optional trace block
   (requests) or timing block (responses); v1 frames carry neither. *)
let encode_payload ~version buf = function
  | Request (trace, req) ->
    if version >= 2 then w_trace buf trace;
    encode_request buf req
  | Response (timing, resp) ->
    if version >= 2 then w_timing buf timing;
    encode_response ~version buf resp

let r_status ~version c =
  let uptime_s = r_f64 c in
  let requests = r_i64 c in
  let queue_depth = r_u32 c in
  let queue_capacity = r_u32 c in
  let cache_hits = r_i64 c in
  let cache_misses = r_i64 c in
  let cache_entries = r_u32 c in
  let timeouts = r_i64 c in
  let rejections = r_i64 c in
  let batched = r_i64 c in
  let workers = if version >= 3 then r_u32 c else 0 in
  let workers_busy = if version >= 3 then r_u32 c else 0 in
  let queue_depth_verify = if version >= 3 then r_u32 c else 0 in
  let queue_depth_prove = if version >= 3 then r_u32 c else 0 in
  { uptime_s; requests; queue_depth; queue_capacity; cache_hits;
    cache_misses; cache_entries; timeouts; rejections; batched;
    workers; workers_busy; queue_depth_verify; queue_depth_prove }

let decode_payload ~version kind c =
  (* the v2 trace/timing prefix comes before the kind-specific body *)
  let trace = if kind < 0x80 && version >= 2 then r_trace c else None in
  let timing = if kind >= 0x80 && version >= 2 then r_timing c else None in
  let request r = Request (trace, r) in
  let response r = Response (timing, r) in
  let frame =
    match kind with
    | 0x01 ->
      let backend = r_backend c in
      let strategy = r_strategy c in
      let dims = r_dims c in
      let seed = r_i64 c in
      let bound = r_u32 c in
      let deadline_ms = r_u32 c in
      request (Keygen { backend; strategy; dims; seed; bound; deadline_ms })
    | 0x02 ->
      let backend = r_backend c in
      let strategy = r_strategy c in
      let dims = r_dims c in
      let deadline_ms = r_u32 c in
      let input =
        match r_u8 c with
        | 0 ->
          let seed = r_i64 c in
          let bound = r_u32 c in
          Seeded { seed; bound }
        | 1 ->
          let seed = r_i64 c in
          let x = r_matrix c in
          let w = r_matrix c in
          Explicit { seed; x; w }
        | tag -> fail (Bad_tag { what = "prove input"; tag })
      in
      request (Prove { backend; strategy; dims; input; deadline_ms })
    | 0x03 ->
      let key_id = r_key_id c in
      let deadline_ms = r_u32 c in
      let public_inputs = r_fr_list c in
      let proof = r_proof c in
      request (Verify { key_id; public_inputs; proof; deadline_ms })
    | 0x04 ->
      let key_id = r_key_id c in
      let deadline_ms = r_u32 c in
      let n = r_u32 c in
      if n > remaining c then fail Truncated;
      let items =
        List.init n (fun _ ->
            let io = r_fr_list c in
            let proof = r_proof c in
            (io, proof))
      in
      request (Batch_verify { key_id; items; deadline_ms })
    | 0x05 -> request Status
    | 0x06 -> request Shutdown
    | 0x07 when version >= 2 -> request Status_detail
    | 0x81 ->
      let key_id = r_key_id c in
      let cache_hit = r_bool c in
      let key_bytes = r_lp_bytes c in
      response (Keygen_ok { key_id; cache_hit; key_bytes })
    | 0x82 ->
      let key_id = r_key_id c in
      let cache_hit = r_bool c in
      let challenge = r_fr_opt c in
      let public_inputs = r_fr_list c in
      let proof = r_proof c in
      let prove_s = r_f64 c in
      response (Prove_ok { key_id; cache_hit; challenge; public_inputs; proof; prove_s })
    | 0x83 -> response (Verify_ok (r_bool c))
    | 0x84 ->
      let n = r_u32 c in
      if n > remaining c then fail Truncated;
      response (Batch_ok (List.init n (fun _ -> r_bool c)))
    | 0x85 -> response (Status_ok (r_status ~version c))
    | 0x86 -> response Shutdown_ok
    | 0x87 when version >= 2 ->
      let status = r_status ~version c in
      let metrics_text = r_lp_string c in
      let flight_jsonl = r_lp_string c in
      response (Status_detail_ok { status; metrics_text; flight_jsonl })
    | 0xff ->
      let code =
        match r_u8 c with
        | 0 -> Queue_full
        | 1 -> Deadline_exceeded
        | 2 -> Bad_request
        | 3 -> Unknown_key
        | 4 -> Shutting_down
        | 5 -> Internal
        | tag -> fail (Bad_tag { what = "error code"; tag })
      in
      let message = r_lp_string c in
      response (Error { code; message })
    | tag -> fail (Bad_tag { what = "frame kind"; tag })
  in
  finished c "frame payload";
  frame

(* ---------------- frames ---------------- *)

let encode_frame ?(version = version) frame =
  if version < min_version || version > 3 then
    invalid_arg "Wire.encode_frame: unsupported version";
  (match (version, frame) with
   | 1, (Request (_, Status_detail) | Response (_, Status_detail_ok _)) ->
     invalid_arg "Wire.encode_frame: Status_detail requires wire version 2"
   | _ -> ());
  let payload = Buffer.create 256 in
  encode_payload ~version payload frame;
  let n = Buffer.length payload in
  if n > max_payload then invalid_arg "Wire.encode_frame: payload exceeds max_payload";
  let buf = Buffer.create (header_bytes + n) in
  Buffer.add_string buf magic;
  w_u8 buf version;
  w_u8 buf (kind_of_frame frame);
  w_u32 buf n;
  Buffer.add_buffer buf payload;
  Buffer.to_bytes buf

let check_header c =
  need c 4;
  let m = Bytes.sub_string c.buf c.pos 4 in
  c.pos <- c.pos + 4;
  if m <> magic then fail Bad_magic;
  let v = r_u8 c in
  if v < min_version || v > version then fail (Unsupported_version v);
  let kind = r_u8 c in
  let len = r_u32 c in
  if len > max_payload then fail (Oversized len);
  (v, kind, len)

let decode_frame' bytes =
  try
    let c = cursor_of_bytes bytes in
    let v, kind, len = check_header c in
    if remaining c < len then fail Truncated;
    if remaining c > len then fail (Malformed "trailing bytes after frame");
    Ok (decode_payload ~version:v kind c, { frame_version = v; payload_bytes = len })
  with Fail e -> Error e

let decode_frame bytes = Result.map fst (decode_frame' bytes)

(* ---------------- blocking IO ---------------- *)

let rec write_all fd b pos len =
  if len > 0 then begin
    let n =
      try Unix.write fd b pos len with
      | Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd b (pos + n) (len - n)
  end

let write_frame ?version fd frame =
  let b = encode_frame ?version frame in
  write_all fd b 0 (Bytes.length b)

(* [Error Eof] only when the peer closes before the first byte of a
   frame; a mid-frame close is [Truncated]. *)
let read_exact fd n ~at_start : (Bytes.t, error) result =
  let b = Bytes.create n in
  let rec go pos =
    if pos = n then Ok b
    else
      match Unix.read fd b pos (n - pos) with
      | 0 -> Error (if pos = 0 && at_start then Eof else Truncated)
      | k -> go (pos + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
  in
  go 0

let read_frame' fd : (frame * meta, error) result =
  match read_exact fd header_bytes ~at_start:true with
  | Error e -> Error e
  | Ok header ->
    (try
       let c = cursor_of_bytes header in
       let v, kind, len = check_header c in
       match read_exact fd len ~at_start:false with
       | Error e -> Error e
       | Ok payload ->
         Ok
           ( decode_payload ~version:v kind (cursor_of_bytes payload),
             { frame_version = v; payload_bytes = len } )
     with Fail e -> Error e)

let read_frame fd : (frame, error) result = Result.map fst (read_frame' fd)

(* ---------------- codec files ---------------- *)

type proof_file =
  { pf_backend : Api.backend;
    pf_strategy : Mc.strategy;
    pf_dims : Mspec.dims;
    pf_challenge : Fr.t option;
    pf_key_id : string;
    pf_public_inputs : Fr.t list;
    pf_proof : Api.proof }

let proof_file_magic = "ZKVP"

let encode_proof_file pf =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf proof_file_magic;
  w_u8 buf version;
  w_backend buf pf.pf_backend;
  w_strategy buf pf.pf_strategy;
  w_dims buf pf.pf_dims;
  w_fr_opt buf pf.pf_challenge;
  w_key_id buf pf.pf_key_id;
  w_fr_list buf pf.pf_public_inputs;
  w_proof buf pf.pf_proof;
  Buffer.to_bytes buf

let decode_proof_file bytes =
  try
    let c = cursor_of_bytes bytes in
    need c 4;
    let m = Bytes.sub_string c.buf c.pos 4 in
    c.pos <- c.pos + 4;
    if m <> proof_file_magic then fail Bad_magic;
    let v = r_u8 c in
    if v < min_version || v > version then fail (Unsupported_version v);
    let pf_backend = r_backend c in
    let pf_strategy = r_strategy c in
    let pf_dims = r_dims c in
    let pf_challenge = r_fr_opt c in
    let pf_key_id = r_key_id c in
    let pf_public_inputs = r_fr_list c in
    let pf_proof = r_proof c in
    finished c "proof file";
    Ok { pf_backend; pf_strategy; pf_dims; pf_challenge; pf_key_id;
         pf_public_inputs; pf_proof }
  with Fail e -> Error e

type key_file =
  { kf_backend : Api.backend;
    kf_strategy : Mc.strategy;
    kf_dims : Mspec.dims;
    kf_challenge : Fr.t option;
    kf_opt : Api.Opt.config option;
    kf_key_id : string;
    kf_keys : Api.keys }

let key_file_magic = "ZKVK"

(* The optimiser block is a trailing extension: files for unoptimised
   circuits are byte-identical to the pre-optimiser format, and old files
   (no trailing bytes) decode with [kf_opt = None]. The block must ride in
   the file because the circuit-derived key halves are resynthesised at
   decode time — with the wrong config the rebuilt QAP/instance would not
   match the stored proving material. *)
let w_opt_config buf (c : Api.Opt.config) =
  if c.Api.Opt.max_rounds < 0 || c.Api.Opt.max_rounds > 0xff then
    invalid_arg "Wire.encode_key_file: optimiser max_rounds out of range";
  w_u8 buf 1;
  w_bool buf c.Api.Opt.const_fold;
  w_bool buf c.Api.Opt.unify;
  w_bool buf c.Api.Opt.dce;
  w_bool buf c.Api.Opt.cse;
  w_u8 buf c.Api.Opt.max_rounds

let encode_key_file kf =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf key_file_magic;
  w_u8 buf version;
  w_backend buf kf.kf_backend;
  w_strategy buf kf.kf_strategy;
  w_dims buf kf.kf_dims;
  w_fr_opt buf kf.kf_challenge;
  w_key_id buf kf.kf_key_id;
  (match kf.kf_keys with
   | Api.Groth16_keys { pk; vk; _ } ->
     w_lp_bytes buf (Groth16.verifying_key_to_bytes vk);
     w_lp_bytes buf (Groth16.proving_key_to_bytes pk)
   | Api.Spartan_keys { key; _ } -> w_lp_bytes buf (Spartan.key_to_bytes key));
  (match kf.kf_opt with None -> () | Some c -> w_opt_config buf c);
  Buffer.to_bytes buf

(* The circuit-derived halves (QAP, Spartan instance) are resynthesised
   from the stored (strategy, dims, challenge) descriptor — the circuit
   shape is a pure function of those (see [Api.circuit_shape]). *)
let decode_key_file bytes =
  try
    let c = cursor_of_bytes bytes in
    need c 4;
    let m = Bytes.sub_string c.buf c.pos 4 in
    c.pos <- c.pos + 4;
    if m <> key_file_magic then fail Bad_magic;
    let v = r_u8 c in
    if v < min_version || v > version then fail (Unsupported_version v);
    let kf_backend = r_backend c in
    let kf_strategy = r_strategy c in
    let kf_dims = r_dims c in
    let kf_challenge = r_fr_opt c in
    let kf_key_id = r_key_id c in
    let raw =
      match kf_backend with
      | Api.Backend_groth16 ->
        let vk_b = r_lp_bytes c in
        let pk_b = r_lp_bytes c in
        `Groth16 (vk_b, pk_b)
      | Api.Backend_spartan -> `Spartan (r_lp_bytes c)
    in
    let kf_opt =
      if remaining c = 0 then None
      else begin
        (match r_u8 c with
         | 1 -> ()
         | n -> fail (Malformed (Printf.sprintf "unknown key-file opt tag %d" n)));
        let const_fold = r_bool c in
        let unify = r_bool c in
        let dce = r_bool c in
        let cse = r_bool c in
        let max_rounds = r_u8 c in
        Some { Api.Opt.const_fold; unify; dce; cse; max_rounds }
      end
    in
    let shape () =
      try Api.circuit_shape ?optimize:kf_opt kf_strategy ?challenge:kf_challenge kf_dims
      with Invalid_argument msg -> fail (Malformed msg)
    in
    let kf_keys =
      match raw with
      | `Groth16 (vk_b, pk_b) ->
        (try
           let vk = Groth16.verifying_key_of_bytes_exn vk_b in
           let pk = Groth16.proving_key_of_bytes_exn pk_b in
           Api.Groth16_keys { qap = Groth16.Qap.create (shape ()); pk; vk }
         with Invalid_argument msg -> fail (Malformed msg))
      | `Spartan key_b ->
        (try
           let key = Spartan.key_of_bytes_exn key_b in
           Api.Spartan_keys { inst = Spartan.preprocess (shape ()); key }
         with Invalid_argument msg -> fail (Malformed msg))
    in
    finished c "key file";
    Ok { kf_backend; kf_strategy; kf_dims; kf_challenge; kf_opt; kf_key_id; kf_keys }
  with Fail e -> Error e

(* ---------------- aggregate proof files ---------------- *)

type aggregate_file =
  { af_key_id : string;
    af_statements : Fr.t list list;
    af_proof : Zkvc_groth16.Aggregate.proof }

let aggregate_file_magic = "ZKVA"

let encode_aggregate_file af =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf aggregate_file_magic;
  w_u8 buf version;
  w_key_id buf af.af_key_id;
  w_u32 buf (List.length af.af_statements);
  List.iter (w_fr_list buf) af.af_statements;
  w_lp_bytes buf (Zkvc_groth16.Aggregate.proof_to_bytes af.af_proof);
  Buffer.to_bytes buf

let decode_aggregate_file bytes =
  try
    let c = cursor_of_bytes bytes in
    need c 4;
    let m = Bytes.sub_string c.buf c.pos 4 in
    c.pos <- c.pos + 4;
    if m <> aggregate_file_magic then fail Bad_magic;
    let v = r_u8 c in
    if v < min_version || v > version then fail (Unsupported_version v);
    let af_key_id = r_key_id c in
    let n = r_u32 c in
    if n > 0xffff then fail (Oversized n);
    let af_statements = List.init n (fun _ -> r_fr_list c) in
    let af_proof =
      let b = r_lp_bytes c in
      try Zkvc_groth16.Aggregate.proof_of_bytes_exn b
      with Invalid_argument msg -> fail (Malformed msg)
    in
    finished c "aggregate file";
    Ok { af_key_id; af_statements; af_proof }
  with Fail e -> Error e

let hex_of_id id = Sha256.to_hex (Bytes.of_string id)
