type t = { fd : Unix.file_descr; mutable closed : bool }

let connect path =
  (* a server that dies mid-request must surface as EPIPE on write, not
     kill the client process with SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  { fd; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let request t req : (Wire.response, Wire.error) result =
  Wire.write_frame t.fd (Wire.Request req);
  match Wire.read_frame t.fd with
  | Ok (Wire.Response resp) -> Ok resp
  | Ok (Wire.Request _) -> Error (Wire.Malformed "server sent a request frame")
  | Error e -> Error e

let request_exn t req =
  match request t req with
  | Ok (Wire.Error { code; message }) ->
    failwith
      (Printf.sprintf "server error (%s): %s" (Wire.error_code_to_string code) message)
  | Ok resp -> resp
  | Error e -> failwith ("transport error: " ^ Wire.error_to_string e)

let with_connection path f =
  let t = connect path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
