module Sha256 = Zkvc_hash.Sha256
module Span = Zkvc_obs.Span

(* Synthetic Chrome-trace track for spans stitched from the server's
   timing block: keeps remote spans on their own row instead of
   interleaving with the client's own domain. *)
let server_track = 1000

type t =
  { fd : Unix.file_descr;
    mutable closed : bool;
    origin : string;
    mutable last_timing : Wire.timing option;
    mutable last_request_id : string option }

let id_counter = Atomic.make 0

(* Unique per request within and across processes: pid + process-local
   counter + wall clock, hashed down to the 16 wire bytes. *)
let fresh_request_id () =
  let seed =
    Printf.sprintf "%d.%d.%.9f" (Unix.getpid ())
      (Atomic.fetch_and_add id_counter 1)
      (Unix.gettimeofday ())
  in
  Bytes.sub_string (Sha256.digest_string seed) 0 Wire.request_id_bytes

let connect ?origin path =
  (* a server that dies mid-request must surface as EPIPE on write, not
     kill the client process with SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  let origin =
    match origin with
    | Some o -> o
    | None -> Printf.sprintf "pid:%d" (Unix.getpid ())
  in
  { fd; closed = false; origin; last_timing = None; last_request_id = None }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let last_timing t = t.last_timing
let last_request_id t = t.last_request_id

(* Graft the server's phase timings into the client's open span tree.
   Only durations travel on the wire, so no cross-process clock
   agreement is needed: the server block is anchored inside the
   client-observed [t_send, t_recv] window — at [t_recv - (wait+exec)],
   clamped to [t_send] — which attributes any residual gap to the
   transport rather than inventing negative time. *)
let stitch ~t_send ~t_recv (tm : Wire.timing) =
  let total = tm.Wire.tm_queue_wait_s +. tm.Wire.tm_exec_s in
  let anchor = Stdlib.max t_send (t_recv -. total) in
  let args = [ ("request_id", Wire.hex_of_id tm.Wire.tm_request_id) ] in
  let exec_start = anchor +. tm.Wire.tm_queue_wait_s in
  Span.add_external ~name:"server.queue.wait" ~start_s:anchor
    ~dur_s:tm.Wire.tm_queue_wait_s ~args ~domain:server_track ();
  Span.add_external ~name:"server.exec" ~start_s:exec_start ~dur_s:tm.Wire.tm_exec_s
    ~args ~domain:server_track ();
  List.iter
    (fun (name, off_s, dur_s) ->
      Span.add_external ~name ~start_s:(exec_start +. off_s) ~dur_s ~args
        ~domain:server_track ())
    tm.Wire.tm_phases

let request t req : (Wire.response, Wire.error) result =
  let request_id = fresh_request_id () in
  t.last_request_id <- Some request_id;
  t.last_timing <- None;
  let trace = Some { Wire.tr_request_id = request_id; tr_origin = t.origin } in
  let send_recv () =
    let t_send = Span.now () in
    Wire.write_frame t.fd (Wire.Request (trace, req));
    match Wire.read_frame t.fd with
    | Ok (Wire.Response (timing, resp)) ->
      let t_recv = Span.now () in
      t.last_timing <- timing;
      (match timing with
       | Some tm when Span.recording () -> stitch ~t_send ~t_recv tm
       | _ -> ());
      Ok resp
    | Ok (Wire.Request _) -> Error (Wire.Malformed "server sent a request frame")
    | Error e -> Error e
  in
  if Span.recording () then
    Span.with_span
      ~args:[ ("request_id", Wire.hex_of_id request_id) ]
      "client.request" send_recv
  else send_recv ()

let request_exn t req =
  match request t req with
  | Ok (Wire.Error { code; message }) ->
    failwith
      (Printf.sprintf "server error (%s): %s" (Wire.error_code_to_string code) message)
  | Ok resp -> resp
  | Error e -> failwith ("transport error: " ^ Wire.error_to_string e)

let with_connection ?origin path f =
  let t = connect ?origin path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
