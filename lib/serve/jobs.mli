(** The proof service's job scheduler: bounded per-client queues under
    deficit-round-robin fair scheduling, with two priority lanes.

    Every queued job belongs to a client (an opaque [int], one per
    connection) and a {!lane}. Each client has one FIFO — so responses
    on a connection always come back in request order — and sits in the
    dispatch ring of whatever lane its {e head} job belongs to. {!pop}
    serves the verify ring strictly before the prove ring (cheap
    verifies never wait behind queued proves), and within a ring runs
    deficit round robin: each visit grants the client [quantum] credits,
    and its head job dispatches once credits cover the job's [cost] —
    so a flooding client cannot starve a quiet one, and an expensive job
    (cost > quantum) waits a few rotations while cheaper peers proceed.

    At most one job per client is in flight at a time: {!pop} marks the
    client busy and the worker must call {!complete} after responding,
    which is what preserves per-connection response ordering with
    several workers. {!push} never blocks — the [capacity] bound counts
    queued (not in-flight) jobs across both lanes, and a full scheduler
    rejects ([`Full], the backpressure signal).

    While the obs sink is enabled the scheduler maintains the
    [serve.queue.depth] gauge and [serve.queue.wait_s] histogram plus
    their per-lane variants ([....depth.verify], [....depth.prove],
    [....wait_s.verify], [....wait_s.prove]). *)

type lane = Lane_verify | Lane_prove

val lane_to_string : lane -> string

type 'a t

(** A dispatched job: the item, the owning client (pass it back to
    {!complete}) and the lane it was queued on. *)
type 'a ticket = { t_item : 'a; t_client : int; t_lane : lane }

(** [create ~capacity ()] makes an empty scheduler. [quantum] is the
    per-visit deficit grant (default 4 — one default-cost prove per
    visit). *)
val create : ?quantum:int -> capacity:int -> unit -> 'a t

val capacity : 'a t -> int

(** Queued jobs across both lanes (in-flight jobs not counted). *)
val length : 'a t -> int

(** Queued jobs in one lane. *)
val lane_depth : 'a t -> lane -> int

(** Non-blocking: [`Full] once [length = capacity], [`Closed] after
    {!close}. [cost] (default 1, clamped to [1 .. 64]) is the job's
    deficit price — the service charges 1 for a verify and [quantum]
    for keygen/prove. *)
val push : 'a t -> client:int -> lane:lane -> ?cost:int -> 'a -> [ `Ok | `Full | `Closed ]

(** Blocks until a job is dispatchable; [None] once the scheduler is
    closed and drained. The returned ticket's client is marked busy:
    its next job dispatches only after {!complete}. *)
val pop : 'a t -> 'a ticket option

(** After a popped (or drained) job has been answered, release its
    client so the client's next queued job can dispatch. Call exactly
    once per distinct client of a dispatched group. *)
val complete : 'a t -> client:int -> unit

(** Remove consecutive head jobs in [lane] matching [p] from every idle
    client, oldest first, marking each contributing client busy (one
    {!complete} per distinct [t_client] afterwards). Lets a worker
    coalesce compatible verifies without reordering any connection's
    responses. *)
val drain_where : 'a t -> lane:lane -> ('a -> bool) -> 'a ticket list

(** Stop accepting jobs; blocked {!pop}s return once the backlog drains. *)
val close : 'a t -> unit

val is_closed : 'a t -> bool
