(** Bounded FIFO job queue with backpressure, feeding the service's
    worker. Thread-safe; [push] never blocks (full queues reject —
    that's the backpressure signal), [pop] blocks until a job or
    close-and-drained.

    While the obs sink is enabled, the queue maintains a
    [serve.queue.depth] gauge (updated on every push/pop/drain) and a
    [serve.queue.wait_s] histogram observing each job's time in the
    queue as it leaves via {!pop} or {!drain_where}. *)

type 'a t

val create : capacity:int -> 'a t

val capacity : 'a t -> int
val length : 'a t -> int

(** Non-blocking: [`Full] once [length = capacity], [`Closed] after
    {!close}. *)
val push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]

(** Blocks until a job is available; [None] once the queue is closed and
    drained. *)
val pop : 'a t -> 'a option

(** Remove and return (in FIFO order) every queued job matching [p],
    without blocking. Lets the worker coalesce compatible jobs. *)
val drain_where : 'a t -> ('a -> bool) -> 'a list

(** Stop accepting jobs; blocked [pop]s return once the backlog drains. *)
val close : 'a t -> unit

val is_closed : 'a t -> bool
