(** Versioned binary wire protocol of the zkVC proof service.

    Every message travels as one frame:

    {v
    offset  size  field
    0       4     magic "ZKVC"
    4       1     version (currently 1)
    5       1     kind (request 0x01..0x06, response 0x81..0x86, 0xff error)
    6       4     payload length, big-endian (at most {!max_payload})
    10      n     payload
    v}

    Integers are big-endian; scalars are the canonical 32-byte Fr
    encoding; curve points use the libraries' tagged uncompressed
    formats. Parsing is total: every decoding entry point returns
    [(_, error) result], never raises and never reads past the declared
    payload, and every scalar/point is validated on parse (canonicity,
    curve equation, G2 subgroup) exactly like
    [Groth16.proof_of_bytes_exn]. *)

module Fr = Zkvc_field.Fr
module Api = Zkvc.Api

(** Decode failures. [Eof] means the peer closed the stream cleanly at a
    frame boundary. *)
type error =
  | Eof
  | Bad_magic
  | Unsupported_version of int
  | Truncated
  | Oversized of int
  | Bad_tag of { what : string; tag : int }
  | Malformed of string

val error_to_string : error -> string

(** Hard upper bound on a frame payload (64 MiB): a corrupt or hostile
    length field can never trigger an over-read or a huge allocation. *)
val max_payload : int

(** How a prove request supplies the statement: [Seeded] reproduces the
    CLI's seeded-random instance — on a key-cache miss the proof is
    byte-identical to a local [zkvc_cli prove --seed]; on a cache hit
    the setup's RNG draws are skipped, so the proof bytes differ from
    the local run (the proof remains valid). [Explicit] ships the
    matrices and uses [seed] only for prover randomness. *)
type prove_input =
  | Seeded of { seed : int; bound : int }
  | Explicit of { seed : int; x : Fr.t array array; w : Fr.t array array }

(** [deadline_ms = 0] means no deadline; otherwise the server aborts the
    job (between phases, or before it starts) once that many
    milliseconds have elapsed since the request arrived. *)
type request =
  | Keygen of
      { backend : Api.backend;
        strategy : Zkvc.Matmul_circuit.strategy;
        dims : Zkvc.Matmul_spec.dims;
        seed : int;
        bound : int;
        deadline_ms : int }
  | Prove of
      { backend : Api.backend;
        strategy : Zkvc.Matmul_circuit.strategy;
        dims : Zkvc.Matmul_spec.dims;
        input : prove_input;
        deadline_ms : int }
  | Verify of
      { key_id : string;  (** 32-byte raw cache id, as returned by prove *)
        public_inputs : Fr.t list;
        proof : Api.proof;
        deadline_ms : int }
  | Batch_verify of
      { key_id : string;
        items : (Fr.t list * Api.proof) list;
        deadline_ms : int }
  | Status
  | Shutdown

type status =
  { uptime_s : float;
    requests : int;
    queue_depth : int;
    queue_capacity : int;
    cache_hits : int;
    cache_misses : int;
    cache_entries : int;
    timeouts : int;
    rejections : int;
    batched : int }

type error_code =
  | Queue_full
  | Deadline_exceeded
  | Bad_request
  | Unknown_key
  | Shutting_down
  | Internal

val error_code_to_string : error_code -> string

type response =
  | Keygen_ok of { key_id : string; cache_hit : bool; key_bytes : Bytes.t }
      (** [key_bytes] is a {!key_file} encoding — save it and verify on
          another machine. *)
  | Prove_ok of
      { key_id : string;
        cache_hit : bool;
        challenge : Fr.t option;
        public_inputs : Fr.t list;
        proof : Api.proof;
        prove_s : float }
  | Verify_ok of bool
  | Batch_ok of bool list
  | Status_ok of status
  | Shutdown_ok
  | Error of { code : error_code; message : string }

type frame = Request of request | Response of response

(** Whole-buffer codec: [decode_frame] requires exactly one well-formed
    frame (trailing bytes are an error). *)
val encode_frame : frame -> Bytes.t

val decode_frame : Bytes.t -> (frame, error) result

(** Blocking frame IO over a file descriptor. [read_frame] returns
    [Error Eof] on a clean close at a frame boundary, [Error Truncated]
    on a mid-frame close. [write_frame] raises [Unix.Unix_error] on IO
    failure. *)
val write_frame : Unix.file_descr -> frame -> unit

val read_frame : Unix.file_descr -> (frame, error) result

(** {2 Codec files}

    Self-contained on-disk artefacts sharing the frame payload
    conventions: a proof plus everything needed to verify it elsewhere,
    and a key file as written by [zkvc_cli keygen], the serve disk cache
    and {!response.Keygen_ok}. *)

type proof_file =
  { pf_backend : Api.backend;
    pf_strategy : Zkvc.Matmul_circuit.strategy;
    pf_dims : Zkvc.Matmul_spec.dims;
    pf_challenge : Fr.t option;
    pf_key_id : string;
    pf_public_inputs : Fr.t list;
    pf_proof : Api.proof }

val encode_proof_file : proof_file -> Bytes.t
val decode_proof_file : Bytes.t -> (proof_file, error) result

type key_file =
  { kf_backend : Api.backend;
    kf_strategy : Zkvc.Matmul_circuit.strategy;
    kf_dims : Zkvc.Matmul_spec.dims;
    kf_challenge : Fr.t option;
    kf_key_id : string;
    kf_keys : Api.keys
        (** Rebuilt on decode: the circuit-derived halves (Groth16 QAP,
            Spartan instance) are resynthesised from
            [Api.circuit_shape]. *) }

val encode_key_file : key_file -> Bytes.t
val decode_key_file : Bytes.t -> (key_file, error) result

(** Lowercase hex of a 32-byte key id (for display and file names). *)
val hex_of_id : string -> string
