(** Versioned binary wire protocol of the zkVC proof service.

    Every message travels as one frame:

    {v
    offset  size  field
    0       4     magic "ZKVC"
    4       1     version (1, 2 or 3; current encoders default to 3)
    5       1     kind (request 0x01..0x07, response 0x81..0x87, 0xff error)
    6       4     payload length, big-endian (at most {!max_payload})
    10      n     payload
    v}

    Version 2 prefixes every request payload with an optional {!trace}
    block (16-byte request id + origin string) and every response
    payload with an optional {!timing} block (request-id echo, queue
    wait, execution time, named phase offsets), enabling cross-process
    trace stitching. Version 3 appends a scheduler block (worker-pool
    size and occupancy, per-lane queue depths) to the {!status} payload.
    Version 1 frames carry none of these and remain fully decodable, and
    v1/v2 payloads are byte-identical to what older builds emitted;
    encoders take [?version] to speak to older peers. The
    [Status_detail] operation exists only at version 2+.

    Integers are big-endian; scalars are the canonical 32-byte Fr
    encoding; curve points use the libraries' tagged uncompressed
    formats. Parsing is total: every decoding entry point returns
    [(_, error) result], never raises and never reads past the declared
    payload, and every scalar/point is validated on parse (canonicity,
    curve equation, G2 subgroup) exactly like
    [Groth16.proof_of_bytes_exn]. *)

module Fr = Zkvc_field.Fr
module Api = Zkvc.Api

(** Decode failures. [Eof] means the peer closed the stream cleanly at a
    frame boundary. *)
type error =
  | Eof
  | Bad_magic
  | Unsupported_version of int
  | Truncated
  | Oversized of int
  | Bad_tag of { what : string; tag : int }
  | Malformed of string

val error_to_string : error -> string

(** Hard upper bound on a frame payload (64 MiB): a corrupt or hostile
    length field can never trigger an over-read or a huge allocation. *)
val max_payload : int

(** Current (highest) and lowest wire versions this build speaks. *)
val version : int

val min_version : int

(** Size of a {!trace} request id, in raw bytes (16). *)
val request_id_bytes : int

(** How a prove request supplies the statement: [Seeded] reproduces the
    CLI's seeded-random instance — on a key-cache miss the proof is
    byte-identical to a local [zkvc_cli prove --seed]; on a cache hit
    the setup's RNG draws are skipped, so the proof bytes differ from
    the local run (the proof remains valid). [Explicit] ships the
    matrices and uses [seed] only for prover randomness. *)
type prove_input =
  | Seeded of { seed : int; bound : int }
  | Explicit of { seed : int; x : Fr.t array array; w : Fr.t array array }

(** Client trace context attached to v2 requests: [tr_request_id] is 16
    raw bytes chosen by the client (unique per request), [tr_origin] a
    short free-form label of the requesting process (at most 256
    bytes). *)
type trace = { tr_request_id : string; tr_origin : string }

(** Server-side timings attached to v2 responses. [tm_request_id]
    echoes the request's trace id (all zeros when the request carried
    none); [tm_phases] are [(name, offset_s, duration_s)] with offsets
    relative to the start of execution (after [tm_queue_wait_s] of
    queueing). At most 256 phases, names at most 128 bytes. *)
type timing =
  { tm_request_id : string;
    tm_queue_wait_s : float;
    tm_exec_s : float;
    tm_phases : (string * float * float) list }

(** [deadline_ms = 0] means no deadline; otherwise the server aborts the
    job (between phases, or before it starts) once that many
    milliseconds have elapsed since the request arrived. *)
type request =
  | Keygen of
      { backend : Api.backend;
        strategy : Zkvc.Matmul_circuit.strategy;
        dims : Zkvc.Matmul_spec.dims;
        seed : int;
        bound : int;
        deadline_ms : int }
  | Prove of
      { backend : Api.backend;
        strategy : Zkvc.Matmul_circuit.strategy;
        dims : Zkvc.Matmul_spec.dims;
        input : prove_input;
        deadline_ms : int }
  | Verify of
      { key_id : string;  (** 32-byte raw cache id, as returned by prove *)
        public_inputs : Fr.t list;
        proof : Api.proof;
        deadline_ms : int }
  | Batch_verify of
      { key_id : string;
        items : (Fr.t list * Api.proof) list;
        deadline_ms : int }
  | Status
  | Status_detail
      (** Status plus a metrics-exposition snapshot and the flight
          recorder dump; v2 only. *)
  | Shutdown

type status =
  { uptime_s : float;
    requests : int;
    queue_depth : int;
    queue_capacity : int;
    cache_hits : int;
    cache_misses : int;
    cache_entries : int;
    timeouts : int;
    rejections : int;
    batched : int;
    workers : int;  (** worker-thread pool size (v3+; 0 from older peers) *)
    workers_busy : int;  (** workers executing a job right now (v3+) *)
    queue_depth_verify : int;  (** queued jobs in the verify lane (v3+) *)
    queue_depth_prove : int  (** queued jobs in the prove lane (v3+) *) }

type error_code =
  | Queue_full
  | Deadline_exceeded
  | Bad_request
  | Unknown_key
  | Shutting_down
  | Internal

val error_code_to_string : error_code -> string

type response =
  | Keygen_ok of { key_id : string; cache_hit : bool; key_bytes : Bytes.t }
      (** [key_bytes] is a {!key_file} encoding — save it and verify on
          another machine. *)
  | Prove_ok of
      { key_id : string;
        cache_hit : bool;
        challenge : Fr.t option;
        public_inputs : Fr.t list;
        proof : Api.proof;
        prove_s : float }
  | Verify_ok of bool
  | Batch_ok of bool list
  | Status_ok of status
  | Status_detail_ok of
      { status : status;
        metrics_text : string;  (** Prometheus exposition ({!Zkvc_obs.Expose}) *)
        flight_jsonl : string  (** flight-recorder dump, one JSON object per line *) }
  | Shutdown_ok
  | Error of { code : error_code; message : string }

(** Frames pair the operation with its (v2-only) trace / timing block;
    both are [None] on v1 frames and may be [None] on v2 frames. *)
type frame =
  | Request of trace option * request
  | Response of timing option * response

(** What the decoder saw on the wire: the frame's version byte and its
    payload length. Servers use [frame_version] to reply in the version
    the request arrived in. *)
type meta = { frame_version : int; payload_bytes : int }

(** Whole-buffer codec: [decode_frame] requires exactly one well-formed
    frame (trailing bytes are an error). [encode_frame ~version:1] drops
    the trace/timing block and raises [Invalid_argument] on
    [Status_detail] frames, which v1 cannot express; versions below 3
    drop the status scheduler block. The default version is 3. *)
val encode_frame : ?version:int -> frame -> Bytes.t

val decode_frame : Bytes.t -> (frame, error) result

val decode_frame' : Bytes.t -> (frame * meta, error) result

(** Blocking frame IO over a file descriptor. [read_frame] returns
    [Error Eof] on a clean close at a frame boundary, [Error Truncated]
    on a mid-frame close. [write_frame] raises [Unix.Unix_error] on IO
    failure; [?version] as in {!encode_frame}. *)
val write_frame : ?version:int -> Unix.file_descr -> frame -> unit

val read_frame : Unix.file_descr -> (frame, error) result

(** [read_frame] plus the wire {!meta} of the decoded frame. *)
val read_frame' : Unix.file_descr -> (frame * meta, error) result

(** {2 Codec files}

    Self-contained on-disk artefacts sharing the frame payload
    conventions: a proof plus everything needed to verify it elsewhere,
    and a key file as written by [zkvc_cli keygen], the serve disk cache
    and {!response.Keygen_ok}. *)

type proof_file =
  { pf_backend : Api.backend;
    pf_strategy : Zkvc.Matmul_circuit.strategy;
    pf_dims : Zkvc.Matmul_spec.dims;
    pf_challenge : Fr.t option;
    pf_key_id : string;
    pf_public_inputs : Fr.t list;
    pf_proof : Api.proof }

val encode_proof_file : proof_file -> Bytes.t
val decode_proof_file : Bytes.t -> (proof_file, error) result

type key_file =
  { kf_backend : Api.backend;
    kf_strategy : Zkvc.Matmul_circuit.strategy;
    kf_dims : Zkvc.Matmul_spec.dims;
    kf_challenge : Fr.t option;
    kf_opt : Api.Opt.config option
        (** optimiser config the keys were generated against, encoded as
            a trailing extension block: unoptimised files are
            byte-identical to the pre-optimiser format and old files
            decode as [None] *);
    kf_key_id : string;
    kf_keys : Api.keys
        (** Rebuilt on decode: the circuit-derived halves (Groth16 QAP,
            Spartan instance) are resynthesised from
            [Api.circuit_shape], optimised per [kf_opt]. *) }

val encode_key_file : key_file -> Bytes.t
val decode_key_file : Bytes.t -> (key_file, error) result

(** One SnarkPack-style aggregate proof ({!Zkvc_groth16.Aggregate}) plus
    the statements it covers — verifiable with the matching key file and
    the aggregation SRS (re-derived from its seed). Groth16-only: the
    aggregation protocol is specific to the pairing-based verifier. *)
type aggregate_file =
  { af_key_id : string;
    af_statements : Fr.t list list;  (** per-instance public inputs, in order *)
    af_proof : Zkvc_groth16.Aggregate.proof }

val encode_aggregate_file : aggregate_file -> Bytes.t
val decode_aggregate_file : Bytes.t -> (aggregate_file, error) result

(** Lowercase hex of a 32-byte key id (for display and file names). *)
val hex_of_id : string -> string
