(** Circuit-key cache of the proof service.

    Keys are cached under a 32-byte id that digests the backend, the
    circuit descriptor (strategy, dims, Fiat–Shamir challenge if any) and
    the full constraint system — CRPC circuits embed the challenge in
    their coefficients, so two proves with different statements get
    different ids and never share keys unsoundly.

    The in-memory side is a small LRU (default {!default_capacity}
    entries); when a spill directory is configured every generated key is
    also written as a {!Wire.key_file} and evicted entries can be
    reloaded from disk without re-running setup. *)

module Fr = Zkvc_field.Fr
module Api = Zkvc.Api

type entry =
  { id : string;  (** 32 raw bytes *)
    backend : Api.backend;
    strategy : Zkvc.Matmul_circuit.strategy;
    dims : Zkvc.Matmul_spec.dims;
    challenge : Fr.t option;
    opt : Api.Opt.config option;
        (** optimiser config the keys were generated against *)
    keys : Api.keys }

type t

val default_capacity : int

(** [create ?capacity ?dir ()] makes an empty cache. [dir] enables disk
    spill (created if missing). *)
val create : ?capacity:int -> ?dir:string -> unit -> t

val capacity : t -> int

(** Number of in-memory entries. *)
val length : t -> int

(** In-memory ids, most recently used first (for tests). *)
val ids : t -> string list

(** Deterministic cache id of a circuit/backend pair. The optimiser
    config ([?opt]) is absorbed into the digest alongside the (already
    optimised) constraint system, so optimised and unoptimised keys can
    never collide. *)
val id_of :
  ?opt:Api.Opt.config ->
  Api.backend ->
  Zkvc.Matmul_circuit.strategy ->
  Zkvc.Matmul_spec.dims ->
  challenge:Fr.t option ->
  Api.Cs.t ->
  string

(** [find_or_add t backend strategy dims ~challenge ~cs ~make] returns
    the cached entry for this circuit, loading it from disk or running
    [make] (which must produce keys for [cs]) on a miss. The entry is
    promoted to most-recently-used; an insertion past capacity evicts
    the least recently used entry (still on disk if spill is on).

    Thread-safe with per-key single-flight: when several workers miss on
    the same id concurrently, exactly one runs [make] ([make] itself
    executes outside the cache lock); the others block until it settles
    and return its entry as [`Hit_mem]. If [make] raises, one blocked
    waiter takes over the slot and retries. *)
val find_or_add :
  ?opt:Api.Opt.config ->
  t ->
  Api.backend ->
  Zkvc.Matmul_circuit.strategy ->
  Zkvc.Matmul_spec.dims ->
  challenge:Fr.t option ->
  cs:Api.Cs.t ->
  make:(unit -> Api.keys) ->
  entry * [ `Hit_mem | `Hit_disk | `Miss ]

(** Lookup by raw id (memory, then disk). Used by verify requests. *)
val find_by_id : t -> string -> entry option

(** Insert an externally produced entry (promotes + spills like a miss).
    Used when a client uploads a key file. *)
val add : t -> entry -> unit
