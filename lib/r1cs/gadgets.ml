(** Reusable R1CS gadgets: products, booleans, bit decomposition,
    comparisons, maxima, Euclidean division. These are the building blocks
    of zkVC's non-linear approximations (SoftMax / GELU, Section III-C of
    the paper), which reduce everything to "bit decomposition + a handful
    of multiplications". *)

module Bigint = Zkvc_num.Bigint

module Make (F : Zkvc_field.Field_intf.S) = struct
  module L = Lc.Make (F)
  module B = Builder.Make (F)

  (** [mul b x y] allocates and constrains the product wire of two LCs. *)
  let mul b x y =
    let xv = B.eval b x and yv = B.eval b y in
    let z = B.alloc b (F.mul xv yv) in
    B.enforce b ~label:"mul" x y (L.of_var z);
    z

  (** Enforce that an LC takes a boolean value: [x (1 - x) = 0]. *)
  let assert_boolean b x =
    B.enforce b ~label:"bool" x (L.sub (L.constant F.one) x) L.zero

  (** Allocate a boolean wire with the given value. *)
  let alloc_boolean b value =
    let v = B.alloc b (if value then F.one else F.zero) in
    assert_boolean b (L.of_var v);
    v

  (** Enforce equality of two LCs (one linear constraint). *)
  let assert_equal b x y = B.enforce b ~label:"eq" (L.sub x y) (L.constant F.one) L.zero

  (** Decompose the value of [x] into [width] boolean wires,
      least-significant first, and enforce [x = Σ 2^i b_i]. This doubles as
      a range proof that [0 ≤ x < 2^width]. The witness value must already
      be in range or the resulting system is unsatisfiable (checked
      eagerly: raises [Invalid_argument]). *)
  let bits_of b ~width x =
    let xv = F.to_bigint (B.eval b x) in
    if Bigint.num_bits xv > width then
      invalid_arg "Gadgets.bits_of: value exceeds width (witness out of range)";
    B.in_region b "bits" (fun () ->
        let bits =
          List.init width (fun i -> alloc_boolean b (Bigint.bit xv i))
        in
        let sum =
          List.fold_left
            (fun (acc, p2) bit -> (L.add_term acc p2 bit, F.double p2))
            (L.zero, F.one) bits
          |> fst
        in
        assert_equal b sum x;
        bits)

  (** Range-check without returning the bits. *)
  let assert_in_range b ~width x = ignore (bits_of b ~width x)

  (** [assert_le b ~width x y] enforces [x ≤ y], both interpreted as
      integers below [2^width]: range-check [y - x]. *)
  let assert_le b ~width x y = assert_in_range b ~width (L.sub y x)

  (** Boolean wire set to 1 iff the LC evaluates to zero.
      Standard construction: with witness [m] (= 1/x when x ≠ 0),
      [x·m = 1 - flag] and [x·flag = 0]. *)
  let is_zero b x =
    let xv = B.eval b x in
    let flagv = F.is_zero xv in
    let m = B.alloc b (if flagv then F.zero else F.inv xv) in
    let flag = B.alloc b (if flagv then F.one else F.zero) in
    B.enforce b ~label:"iszero-1" x (L.of_var m)
      (L.sub (L.constant F.one) (L.of_var flag));
    B.enforce b ~label:"iszero-2" x (L.of_var flag) L.zero;
    flag

  (** [select b cond a c] is [cond ? a : c]; [cond] must be boolean. *)
  let select b cond a c =
    let condv = B.eval b cond in
    let res = B.alloc b (if F.is_one condv then B.eval b a else B.eval b c) in
    (* cond (a - c) = res - c *)
    B.enforce b ~label:"select" cond (L.sub a c) (L.sub (L.of_var res) c);
    res

  (** Chained product [Π xs] using [n-1] constraints; the empty product
      is the constant 1. *)
  let product b = function
    | [] -> L.constant F.one
    | [ x ] -> x
    | x :: rest ->
      let acc = List.fold_left (fun acc y -> L.of_var (mul b acc y)) x rest in
      acc

  (** Maximum of a non-empty list of LCs, all valued in [0, 2^width):
      constrains (1) max ≥ x_j for all j via range checks and
      (2) Π (max − x_j) = 0, exactly the two conditions in the paper's
      SoftMax section. *)
  let max_of b ~width xs =
    if xs = [] then invalid_arg "Gadgets.max_of: empty";
    B.in_region b "max" (fun () ->
        let values = List.map (fun x -> F.to_bigint (B.eval b x)) xs in
        let maxv = List.fold_left Bigint.max (List.hd values) values in
        let m = B.alloc b (F.of_bigint maxv) in
        let diffs = List.map (fun x -> L.sub (L.of_var m) x) xs in
        List.iter (fun d -> assert_in_range b ~width d) diffs;
        let prod = product b diffs in
        B.enforce b ~label:"max-member" prod (L.constant F.one) L.zero;
        m)

  (** Euclidean division by a positive constant: allocates [q, r] with
      [x = q·d + r], [0 ≤ r < d], [0 ≤ q < 2^q_width]. Returns [(q, r)]. *)
  let div_by_constant b ~q_width x d =
    if Bigint.le d Bigint.zero then invalid_arg "Gadgets.div_by_constant: d <= 0";
    B.in_region b "divc" (fun () ->
        let xv = F.to_bigint (B.eval b x) in
        let qv, rv = Bigint.divmod xv d in
        let q = B.alloc b (F.of_bigint qv) in
        let r = B.alloc b (F.of_bigint rv) in
        (* linear reconstruction *)
        assert_equal b x (L.add (L.term (F.of_bigint d) q) (L.of_var r));
        assert_in_range b ~width:q_width (L.of_var q);
        (* r < d: range-check r and d-1-r *)
        let d_bits = Bigint.num_bits d in
        assert_in_range b ~width:d_bits (L.of_var r);
        assert_in_range b ~width:d_bits
          (L.sub (L.constant (F.of_bigint (Bigint.sub d Bigint.one))) (L.of_var r));
        (q, r))

  (** Division with a witness-dependent divisor: [x = q·y + r], [0 ≤ r < y].
      Used for the SoftMax normalisation [e_i·S / Σ e_j]. Costs one
      multiplication constraint plus range checks. *)
  let div_rem b ~q_width ~r_width x y =
    let xv = F.to_bigint (B.eval b x) and yv = F.to_bigint (B.eval b y) in
    if Bigint.le yv Bigint.zero then invalid_arg "Gadgets.div_rem: divisor <= 0";
    B.in_region b "divrem" (fun () ->
        let qv, rv = Bigint.divmod xv yv in
        let q = B.alloc b (F.of_bigint qv) in
        let r = B.alloc b (F.of_bigint rv) in
        (* q*y = x - r *)
        B.enforce b ~label:"divrem" (L.of_var q) y (L.sub x (L.of_var r));
        assert_in_range b ~width:q_width (L.of_var q);
        assert_in_range b ~width:r_width (L.of_var r);
        (* r < y via range check of y - 1 - r *)
        assert_in_range b ~width:r_width (L.sub (L.sub y (L.constant F.one)) (L.of_var r));
        (q, r))
end
