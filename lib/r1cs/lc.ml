(** Sparse linear combinations of R1CS wires. Wire 0 is the constant-one
    wire by convention, so constants are terms on wire 0. *)

module Make (F : Zkvc_field.Field_intf.S) = struct
  type var = int

  (** Association list sorted by variable, no zero coefficients, no
      duplicate variables. *)
  type t = (var * F.t) list

  let zero : t = []

  let constant c : t = if F.is_zero c then [] else [ (0, c) ]

  let term c v : t = if F.is_zero c then [] else [ (v, c) ]

  let of_var v : t = [ (v, F.one) ]

  let rec add (a : t) (b : t) : t =
    match a, b with
    | [], x | x, [] -> x
    | (va, ca) :: ra, (vb, cb) :: rb ->
      if va < vb then (va, ca) :: add ra b
      else if vb < va then (vb, cb) :: add a rb
      else begin
        let c = F.add ca cb in
        if F.is_zero c then add ra rb else (va, c) :: add ra rb
      end

  let scale k (a : t) : t =
    if F.is_zero k then [] else List.map (fun (v, c) -> (v, F.mul k c)) a

  let neg a = scale (F.neg F.one) a

  let sub a b = add a (neg b)

  let add_term a c v = add a (term c v)

  let terms (a : t) = a

  let num_terms (a : t) = List.length a

  let is_zero (a : t) = a = []

  (** Evaluate against a full assignment (index 0 must hold one). *)
  let eval (a : t) assignment =
    List.fold_left (fun acc (v, c) -> F.add acc (F.mul c assignment.(v))) F.zero a

  (** Canonicalise an arbitrary term list: sort by wire, merge duplicate
      wires, drop terms whose (merged) coefficient is zero. Every [t]
      entering the system through this function satisfies the sorted /
      no-zero / no-duplicate invariant the other operations rely on. *)
  let of_terms terms : t =
    let sorted = List.stable_sort (fun (v1, _) (v2, _) -> compare v1 v2) terms in
    let rec merge = function
      | [] -> []
      | [ (v, c) ] -> if F.is_zero c then [] else [ (v, c) ]
      | (v1, c1) :: ((v2, c2) :: rest as tl) ->
        if v1 = v2 then merge ((v1, F.add c1 c2) :: rest)
        else if F.is_zero c1 then merge tl
        else (v1, c1) :: merge tl
    in
    merge sorted

  (* Renaming can alias two distinct wires onto one (the optimiser's
     union-find does exactly that), so the result must be re-canonicalised,
     not merely re-sorted. *)
  let map_vars f (a : t) : t = of_terms (List.map (fun (v, c) -> (f v, c)) a)

  let pp fmt (a : t) =
    if a = [] then Format.pp_print_string fmt "0"
    else
      List.iteri
        (fun i (v, c) ->
          if i > 0 then Format.pp_print_string fmt " + ";
          Format.fprintf fmt "%a*w%d" F.pp c v)
        a
end
