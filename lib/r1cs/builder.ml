(** Mutable circuit builder. Gadgets allocate wires together with their
    values (single-pass synthesis); [finalize] permutes wires into the
    canonical input-first layout of {!Constraint_system} and returns the
    compiled system plus the full assignment.

    The circuit *shape* produced by all gadgets in this repository depends
    only on structural parameters (matrix sizes, bit widths), never on the
    witness values, so a builder run with dummy values yields the same
    compiled system — this is what the Groth16 trusted setup uses.

    Provenance: gadgets may wrap synthesis in [in_region] scopes; every
    constraint and wire produced while a region is active is attributed to
    it, and [region_tree] folds the ledger into a {!Zkvc_obs.Attrib.t}.
    Attribution happens at emission time against the builder's own wire
    numbering, so it is untouched by the canonical permutation [finalize]
    applies. *)

module Attrib = Zkvc_obs.Attrib

module Make (F : Zkvc_field.Field_intf.S) = struct
  module L = Lc.Make (F)
  module Cs = Constraint_system.Make (F)

  type kind = Input | Aux

  (* One provenance region. [r_incl_s] is inclusive wall time accumulated
     over every visit; self time is derived at export (inclusive minus
     children, clamped at zero against clock jitter). Children are interned
     by name, so re-entering [in_region b "matmul" f] accumulates into the
     same node. *)
  type region =
    { r_name : string;
      r_path : string; (* slash-joined path below the root, "" for the root *)
      mutable r_constraints : int;
      mutable r_variables : int;
      mutable r_nnz_a : int;
      mutable r_nnz_b : int;
      mutable r_nnz_c : int;
      mutable r_incl_s : float;
      mutable r_children : int list (* reversed creation order *) }

  type t =
    { mutable values : F.t array; (* growable; slot 0 = one *)
      mutable kinds : kind array;
      mutable wire_regions : int array; (* region id per wire, parallel to values *)
      mutable n : int; (* wires allocated, including wire 0 *)
      mutable constraints : Cs.constr list; (* reversed *)
      mutable constr_regions : int list; (* region id per constraint, reversed *)
      regions : (int, region) Hashtbl.t; (* id 0 = root (unattributed) *)
      mutable nregions : int;
      mutable cur_region : int }

  let fresh_region ~path name =
    { r_name = name;
      r_path = path;
      r_constraints = 0;
      r_variables = 0;
      r_nnz_a = 0;
      r_nnz_b = 0;
      r_nnz_c = 0;
      r_incl_s = 0.;
      r_children = [] }

  let create () =
    let regions = Hashtbl.create 16 in
    Hashtbl.add regions 0 (fresh_region ~path:"" "all");
    { values = Array.make 16 F.zero;
      kinds = Array.make 16 Aux;
      wire_regions = Array.make 16 0;
      n = 1;
      constraints = [];
      constr_regions = [];
      regions;
      nregions = 1;
      cur_region = 0 }

  let grow b =
    if b.n = Array.length b.values then begin
      let values = Array.make (2 * b.n) F.zero in
      let kinds = Array.make (2 * b.n) Aux in
      let wire_regions = Array.make (2 * b.n) 0 in
      Array.blit b.values 0 values 0 b.n;
      Array.blit b.kinds 0 kinds 0 b.n;
      Array.blit b.wire_regions 0 wire_regions 0 b.n;
      b.values <- values;
      b.kinds <- kinds;
      b.wire_regions <- wire_regions
    end

  let region b id = Hashtbl.find b.regions id

  let alloc_kind b kind value =
    grow b;
    let v = b.n in
    b.values.(v) <- value;
    b.kinds.(v) <- kind;
    b.wire_regions.(v) <- b.cur_region;
    b.n <- b.n + 1;
    let r = region b b.cur_region in
    r.r_variables <- r.r_variables + 1;
    v

  (** Allocate a private witness wire holding [value]. *)
  let alloc b value = alloc_kind b Aux value

  (** Allocate a public input wire holding [value]. *)
  let alloc_input b value = alloc_kind b Input value

  (** The constant-one wire. *)
  let one_var = 0

  let value b v = if v = 0 then F.one else b.values.(v)

  let eval b lc =
    List.fold_left (fun acc (v, c) -> F.add acc (F.mul c (value b v))) F.zero (L.terms lc)

  (** Enforce [a * b = c]. *)
  let enforce b ?(label = "") a bb c =
    b.constraints <- { Cs.a; b = bb; c; label } :: b.constraints;
    b.constr_regions <- b.cur_region :: b.constr_regions;
    let r = region b b.cur_region in
    r.r_constraints <- r.r_constraints + 1;
    r.r_nnz_a <- r.r_nnz_a + L.num_terms a;
    r.r_nnz_b <- r.r_nnz_b + L.num_terms bb;
    r.r_nnz_c <- r.r_nnz_c + L.num_terms c

  let num_constraints b = List.length b.constraints

  (* Find-or-create the child of [b.cur_region] named [seg] and descend
     into it. Child lists are short (tens at most), so linear interning is
     fine. *)
  let descend b seg =
    let parent = region b b.cur_region in
    let existing =
      List.find_opt (fun id -> (region b id).r_name = seg) parent.r_children
    in
    let id =
      match existing with
      | Some id -> id
      | None ->
        let id = b.nregions in
        b.nregions <- id + 1;
        let path = if parent.r_path = "" then seg else parent.r_path ^ "/" ^ seg in
        Hashtbl.add b.regions id (fresh_region ~path seg);
        parent.r_children <- id :: parent.r_children;
        id
    in
    b.cur_region <- id

  (** [in_region b "attn/qk_matmul" f] runs [f ()] with a (nested, slash-
      separated) region pushed: constraints and wires it emits are
      attributed to the innermost segment, and its wall time accumulates
      on that segment. Re-entering an existing path accumulates rather
      than duplicating. Exception-safe; always restores the enclosing
      region. *)
  let in_region b name f =
    let segs = String.split_on_char '/' name |> List.filter (fun s -> s <> "") in
    let saved = b.cur_region in
    List.iter (descend b) segs;
    let entered = b.cur_region in
    let t0 = Zkvc_obs.Span.now () in
    Fun.protect
      ~finally:(fun () ->
        let r = region b entered in
        r.r_incl_s <- r.r_incl_s +. (Zkvc_obs.Span.now () -. t0);
        b.cur_region <- saved)
      f

  (** Fold the provenance ledger into an {!Attrib.t}. Counts are exact;
      per-node witness time is the region's inclusive time minus its
      children's (clamped at zero), so times also sum bottom-up. Safe to
      call at any point, including after [finalize] — attribution is by
      emission, not by wire index, so the canonical permutation does not
      disturb it. *)
  let region_tree b =
    let rec build id =
      let r = region b id in
      let children = List.rev_map build r.r_children in
      let child_incl =
        List.fold_left (fun acc cid -> acc +. (region b cid).r_incl_s) 0. r.r_children
      in
      let witness_s = Float.max 0. (r.r_incl_s -. child_incl) in
      Attrib.make ~witness_s ~name:r.r_name
        ~self:
          { Attrib.constraints = r.r_constraints;
            variables = r.r_variables;
            nnz_a = r.r_nnz_a;
            nnz_b = r.r_nnz_b;
            nnz_c = r.r_nnz_c }
        children
    in
    (* root inclusive time was never measured (no [in_region] wraps the
       whole build); leave its self time at the accumulated value. *)
    build 0

  (** Compile: wires are permuted to [one; inputs...; aux...] preserving
      relative allocation order within each class. Also returns the
      permutation (builder wire -> canonical wire). *)
  let finalize_perm b =
    let num_inputs = ref 0 and num_aux = ref 0 in
    for i = 1 to b.n - 1 do
      match b.kinds.(i) with
      | Input -> incr num_inputs
      | Aux -> incr num_aux
    done;
    let perm = Array.make b.n 0 in
    let next_input = ref 1 and next_aux = ref (1 + !num_inputs) in
    for i = 1 to b.n - 1 do
      match b.kinds.(i) with
      | Input ->
        perm.(i) <- !next_input;
        incr next_input
      | Aux ->
        perm.(i) <- !next_aux;
        incr next_aux
    done;
    let remap lc = L.map_vars (fun v -> perm.(v)) lc in
    let constraints =
      List.rev_map
        (fun { Cs.a; b = bb; c; label } -> { Cs.a = remap a; b = remap bb; c = remap c; label })
        b.constraints
      |> Array.of_list
    in
    let assignment = Array.make b.n F.one in
    for i = 1 to b.n - 1 do
      assignment.(perm.(i)) <- b.values.(i)
    done;
    ( { Cs.num_inputs = !num_inputs; num_aux = !num_aux; constraints },
      assignment,
      perm )

  let finalize b =
    let cs, assignment, _perm = finalize_perm b in
    (cs, assignment)

  (** [finalize] plus the provenance tree — the compiled system, full
      assignment and region attribution in one step. *)
  let finalize_attributed b =
    let cs, assignment = finalize b in
    (cs, assignment, region_tree b)

  (* Per-constraint / per-wire provenance in the compiled system's own
     numbering: region paths (slash-joined, "" = unattributed root) indexed
     by constraint index and by canonical wire index. Consumed by the
     optimiser so eliminations can be debited from their owning region. *)
  type provenance =
    { constraint_region : string array;
      wire_region : string array }

  let finalize_with_provenance b =
    let cs, assignment, perm = finalize_perm b in
    let path id = (region b id).r_path in
    let constraint_region =
      List.rev_map path b.constr_regions |> Array.of_list
    in
    let wire_region = Array.make b.n "" in
    for i = 1 to b.n - 1 do
      wire_region.(perm.(i)) <- path b.wire_regions.(i)
    done;
    (cs, assignment, region_tree b, { constraint_region; wire_region })

  (** Public-input vector in canonical order (excluding the one wire),
      as the verifier would receive it. *)
  let public_inputs b =
    let rec collect i acc =
      if i >= b.n then List.rev acc
      else collect (i + 1) (match b.kinds.(i) with Input -> b.values.(i) :: acc | Aux -> acc)
    in
    collect 1 []
end
