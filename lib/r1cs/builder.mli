(** Mutable circuit builder: gadgets allocate wires together with their
    witness values (single-pass synthesis); [finalize] permutes wires into
    the canonical input-first layout of {!Constraint_system} and returns
    the compiled system plus the full assignment.

    The circuit {e shape} produced by all gadgets in this repository
    depends only on structural parameters (matrix sizes, bit widths),
    never on witness values, so a builder run with dummy values yields the
    same compiled system — which is what the Groth16 trusted setup uses.

    Provenance: wrap synthesis in nestable {!Make.in_region} scopes and
    every constraint and wire emitted inside is attributed to the
    innermost region; {!Make.region_tree} folds the ledger into a
    {!Zkvc_obs.Attrib.t}. Attribution happens at emission time, so the
    canonical wire permutation of [finalize] cannot disturb it. *)

module Make (F : Zkvc_field.Field_intf.S) : sig
  module L : module type of Lc.Make (F)
  module Cs : module type of Constraint_system.Make (F)

  type t

  val create : unit -> t

  (** Allocate a private witness wire holding [value]. *)
  val alloc : t -> F.t -> L.var

  (** Allocate a public input wire holding [value]. *)
  val alloc_input : t -> F.t -> L.var

  (** The constant-one wire. *)
  val one_var : L.var

  (** Current value of a wire. *)
  val value : t -> L.var -> F.t

  (** Evaluate a linear combination against the current assignment. *)
  val eval : t -> L.t -> F.t

  (** Enforce [a * b = c]. *)
  val enforce : t -> ?label:string -> L.t -> L.t -> L.t -> unit

  val num_constraints : t -> int

  (** [in_region b "attn/qk_matmul" f] runs [f ()] with a (slash-nested)
      provenance region pushed: constraints and wires emitted inside are
      attributed to the innermost segment and its synthesis wall time
      accumulates there. Re-entering an existing path accumulates into
      the same node. Exception-safe. *)
  val in_region : t -> string -> (unit -> 'a) -> 'a

  (** Fold the provenance ledger into a region tree. The root (named
      ["all"]) holds unattributed cost — anything emitted outside every
      [in_region] scope. Counts are exact and independent of the wire
      permutation; may be called before or after [finalize]. *)
  val region_tree : t -> Zkvc_obs.Attrib.t

  (** Compile: wires permuted to [one; inputs...; aux...], preserving the
      relative allocation order within each class. *)
  val finalize : t -> Cs.t * F.t array

  (** [finalize] plus {!region_tree}: the compiled system, the full
      assignment, and the provenance tree in one step. *)
  val finalize_attributed : t -> Cs.t * F.t array * Zkvc_obs.Attrib.t

  (** Fine-grained provenance in the {e compiled} system's numbering:
      the owning region path (slash-joined segments below the root, [""]
      for unattributed) per constraint index and per canonical wire
      index (entry 0, the constant wire, is always [""]). This is what
      the optimiser threads through its remaps so eliminated work can be
      debited from the region that emitted it. *)
  type provenance =
    { constraint_region : string array;
      wire_region : string array }

  (** {!finalize_attributed} plus {!provenance}. *)
  val finalize_with_provenance :
    t -> Cs.t * F.t array * Zkvc_obs.Attrib.t * provenance

  (** Public-input values in canonical order (excluding the one wire). *)
  val public_inputs : t -> F.t list
end
