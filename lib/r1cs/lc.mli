(** Sparse linear combinations of R1CS wires.

    Wire 0 is the constant-one wire by convention, so constants are terms
    on wire 0. Combinations are kept sorted by wire with no zero
    coefficients and no duplicates, which keeps [add] linear-time. *)

module Make (F : Zkvc_field.Field_intf.S) : sig
  type var = int

  type t

  val zero : t
  val constant : F.t -> t

  (** [term c v] is the single-term combination [c·v]. *)
  val term : F.t -> var -> t

  val of_var : var -> t

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val scale : F.t -> t -> t

  (** [add_term lc c v = add lc (term c v)]. *)
  val add_term : t -> F.t -> var -> t

  (** Terms in increasing wire order. *)
  val terms : t -> (var * F.t) list

  (** Canonicalise an arbitrary term list: sort by wire, merge duplicate
      wires, drop zero coefficients. [of_terms (terms a) = a]. *)
  val of_terms : (var * F.t) list -> t

  (** Number of non-zero terms ("wires" in the paper's PSQ accounting). *)
  val num_terms : t -> int

  val is_zero : t -> bool

  (** Evaluate against a full assignment (index 0 must hold one). *)
  val eval : t -> F.t array -> F.t

  (** Rename wires; the result is re-canonicalised, so a renaming that
      aliases two wires merges their coefficients (and drops the term if
      they cancel). *)
  val map_vars : (var -> var) -> t -> t

  val pp : Format.formatter -> t -> unit
end
