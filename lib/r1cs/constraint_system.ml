(** Compiled Rank-1 Constraint Systems. Canonical wire layout:
    wire 0 = constant one, wires 1..num_inputs = public inputs,
    the remaining [num_aux] wires are private witness. A satisfying full
    assignment [z] fulfils [⟨A_i, z⟩ · ⟨B_i, z⟩ = ⟨C_i, z⟩] for every
    constraint [i]. *)

module Make (F : Zkvc_field.Field_intf.S) = struct
  module L = Lc.Make (F)

  type constr = { a : L.t; b : L.t; c : L.t; label : string }

  type t =
    { num_inputs : int; (* public inputs, excluding the constant wire *)
      num_aux : int;
      constraints : constr array }

  (** Total wires including the constant-one wire. *)
  let num_vars t = 1 + t.num_inputs + t.num_aux

  let num_constraints t = Array.length t.constraints

  let num_inputs t = t.num_inputs
  let num_aux t = t.num_aux

  exception Unsatisfied of int * string

  (** Checks every constraint; raises {!Unsatisfied} with the index and
      label of the first violated one. *)
  let check_satisfied t assignment =
    if Array.length assignment <> num_vars t then
      invalid_arg "Constraint_system.check_satisfied: assignment length";
    if not (F.is_one assignment.(0)) then
      invalid_arg "Constraint_system.check_satisfied: wire 0 must be 1";
    Array.iteri
      (fun i { a; b; c; label } ->
        let av = L.eval a assignment
        and bv = L.eval b assignment
        and cv = L.eval c assignment in
        if not (F.equal (F.mul av bv) cv) then raise (Unsatisfied (i, label)))
      t.constraints

  let is_satisfied t assignment =
    match check_satisfied t assignment with
    | () -> true
    | exception Unsatisfied _ -> false

  (** Statistics that the zkVC paper's PSQ section reasons about: total
      non-zero entries per matrix, and "left wires" = non-zero terms on the
      A side. Fewer left wires means sparser QAP A-polynomials and a
      cheaper prover. *)
  type stats =
    { constraints : int;
      variables : int;
      nonzero_a : int;
      nonzero_b : int;
      nonzero_c : int }

  let stats (t : t) =
    let count f = Array.fold_left (fun acc c -> acc + L.num_terms (f c)) 0 t.constraints in
    let s =
      { constraints = num_constraints t;
        variables = num_vars t;
        nonzero_a = count (fun c -> c.a);
        nonzero_b = count (fun c -> c.b);
        nonzero_c = count (fun c -> c.c) }
    in
    let module M = Zkvc_obs.Metrics in
    M.set (M.gauge "r1cs.constraints") (float_of_int s.constraints);
    M.set (M.gauge "r1cs.variables") (float_of_int s.variables);
    M.set (M.gauge "r1cs.nonzero_a") (float_of_int s.nonzero_a);
    M.set (M.gauge "r1cs.nonzero_b") (float_of_int s.nonzero_b);
    M.set (M.gauge "r1cs.nonzero_c") (float_of_int s.nonzero_c);
    s

  let pp_stats fmt s =
    Format.fprintf fmt
      "constraints=%d variables=%d nnz(A)=%d nnz(B)=%d nnz(C)=%d"
      s.constraints s.variables s.nonzero_a s.nonzero_b s.nonzero_c
end
