module Fr = Zkvc_field.Fr
module G1 = Zkvc_curve.G1
module Api = Zkvc.Api
module Mc = Zkvc.Matmul_circuit
module Mspec = Zkvc.Matmul_spec
module Spec = Mspec.Make (Fr)
module Bld = Zkvc_r1cs.Builder.Make (Fr)
module McM = Mc.Make (Fr)
module Groth16 = Zkvc_groth16.Groth16
module Aggregate = Zkvc_groth16.Aggregate
module Spartan = Zkvc_spartan.Spartan
module Wire = Zkvc_serve.Wire
module Key_cache = Zkvc_serve.Key_cache
module Batch = Zkvc_serve.Batch

type target =
  { backend : Api.backend;
    strategy : Mc.strategy;
    dims : Mspec.dims;
    seed : int }

type outcome =
  | Rejected
  | Rejected_error of string
  | Accepted
  | Crashed of string

let outcome_is_sound = function
  | Rejected | Rejected_error _ -> true
  | Accepted | Crashed _ -> false

type case =
  { family : string;
    mutation : string;
    outcome : outcome;
    detail : string }

let case_name c = c.family ^ "." ^ c.mutation

type report =
  { target : target;
    honest_verified : bool;
    cases : case list }

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  if n = 0 then true
  else begin
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  end

(* ---- fixture: one honestly proved statement per target ---- *)

type fixture =
  { t : target;
    opt : Api.Opt.config option;  (* optimiser the fixture was built under *)
    x : Fr.t array array;
    w : Fr.t array array;
    prep : Api.prepared;
    keys : Api.keys;
    proof : Api.proof;
    public_inputs : Fr.t list }

(* Independent deterministic streams so adding mutations to one family
   never shifts the randomness another family sees. *)
let stream t salt = Random.State.make [| t.seed; salt |]

let make_fixture ?optimize t =
  let rng = stream t 0 in
  let d = t.dims in
  let x = Spec.random_matrix rng ~rows:d.Mspec.a ~cols:d.Mspec.n ~bound:256 in
  let w = Spec.random_matrix rng ~rows:d.Mspec.n ~cols:d.Mspec.b ~bound:256 in
  let prep = Api.prepare ?optimize t.strategy ~x ~w d in
  let keys = Api.keygen ~rng t.backend prep.Api.cs in
  let proof = Api.prove_with ~rng keys prep.Api.assignment in
  let public_inputs =
    Array.to_list (Array.sub prep.Api.assignment 1 (Api.Cs.num_inputs prep.Api.cs))
  in
  { t; opt = optimize; x; w; prep; keys; proof; public_inputs }

let verify_fixture fx proof = Api.verify_with fx.keys ~public_inputs:fx.public_inputs proof

(* verdict of a verifier that returned a boolean: [true] means the
   mutation was accepted *)
let verdict ok = if ok then Accepted else Rejected

let proof_bytes = function
  | Api.Groth16_proof p -> Groth16.proof_to_bytes p
  | Api.Spartan_proof p -> Spartan.proof_to_bytes p

(* ---- case collection ---- *)

type collector = { only : string option; mutable acc : case list }

let emit col family mutation f =
  if (match col.only with Some s -> contains ~sub:s (family ^ "." ^ mutation) | None -> true)
  then begin
    let outcome, detail =
      try f () with e -> (Crashed (Printexc.to_string e), "")
    in
    col.acc <- { family; mutation; outcome; detail } :: col.acc
  end

(* ---- Groth16: proof-point tampering and proof splicing ---- *)

let groth16_cases col fx p =
  List.iter
    (fun site ->
      emit col "groth16.point" (Groth16.Mutate.site_name site) (fun () ->
          let p' = Groth16.Mutate.apply site p in
          (verdict (verify_fixture fx (Api.Groth16_proof p')), "")))
    Groth16.Mutate.all;
  (* same statement, fresh prover randomness: A/B from one run spliced
     with C from the other — the (r, s) randomisers no longer match *)
  let rng = stream fx.t 1 in
  let p2 =
    match Api.prove_with ~rng fx.keys fx.prep.Api.assignment with
    | Api.Groth16_proof p2 -> p2
    | Api.Spartan_proof _ -> assert false
  in
  List.iter
    (fun (name, spliced) ->
      emit col "groth16.splice" name (fun () ->
          (verdict (verify_fixture fx (Api.Groth16_proof spliced)), "")))
    [ ("rerand-a", { p with Groth16.a = p2.Groth16.a });
      ("rerand-b", { p with Groth16.b = p2.Groth16.b });
      ("rerand-c", { p with Groth16.c = p2.Groth16.c }) ];
  (* cross-statement splicing needs shared keys, i.e. a challenge-free
     circuit (CRPC circuits bake the statement's challenge into the
     coefficients, so a second statement has different keys) *)
  if not (Mc.uses_challenge fx.t.strategy) then begin
    let rng = stream fx.t 2 in
    let d = fx.t.dims in
    let x2 = Spec.random_matrix rng ~rows:d.Mspec.a ~cols:d.Mspec.n ~bound:256 in
    let w2 = Spec.random_matrix rng ~rows:d.Mspec.n ~cols:d.Mspec.b ~bound:256 in
    let prep2 = Api.prepare ?optimize:fx.opt fx.t.strategy ~x:x2 ~w:w2 d in
    let q =
      match Api.prove_with ~rng fx.keys prep2.Api.assignment with
      | Api.Groth16_proof q -> q
      | Api.Spartan_proof _ -> assert false
    in
    List.iter
      (fun (name, spliced) ->
        emit col "groth16.splice" name (fun () ->
            (verdict (verify_fixture fx (Api.Groth16_proof spliced)), "")))
      [ ("cross-a", { p with Groth16.a = q.Groth16.a });
        ("cross-bc", { q with Groth16.a = p.Groth16.a });
        ("transplant", q) ]
  end

(* ---- Spartan: per-component mutation in both opening modes ---- *)

let spartan_cases col fx p =
  List.iter
    (fun site ->
      emit col "spartan.proof" (Spartan.Mutate.site_name site) (fun () ->
          let p' = Spartan.Mutate.apply site p in
          (verdict (verify_fixture fx (Api.Spartan_proof p')), "")))
    (Spartan.Mutate.sites p);
  (* cross-statement transplant (keys are shared for challenge-free
     circuits): a proof of Y₂ = X₂·W₂ replayed against statement 1 *)
  if not (Mc.uses_challenge fx.t.strategy) then begin
    let rng = stream fx.t 2 in
    let d = fx.t.dims in
    let x2 = Spec.random_matrix rng ~rows:d.Mspec.a ~cols:d.Mspec.n ~bound:256 in
    let w2 = Spec.random_matrix rng ~rows:d.Mspec.n ~cols:d.Mspec.b ~bound:256 in
    let prep2 = Api.prepare ?optimize:fx.opt fx.t.strategy ~x:x2 ~w:w2 d in
    let q = Api.prove_with ~rng fx.keys prep2.Api.assignment in
    emit col "spartan.splice" "transplant" (fun () ->
        (verdict (verify_fixture fx q), ""))
  end

(* the IPA opening is not reachable through [Api.prove_with]; prove
   directly and mutate only the opening sites (the sumcheck/commitment
   prefix is already covered by the Hyrax-fold run) *)
let spartan_ipa_cases col fx inst key =
  let rng = stream fx.t 3 in
  let p = Spartan.prove ~opening_mode:`Ipa rng key inst fx.prep.Api.assignment in
  let honest = Spartan.verify key inst ~public_inputs:fx.public_inputs p in
  List.iter
    (fun site ->
      let name = Spartan.Mutate.site_name site in
      if contains ~sub:"opening." name then
        emit col "spartan.ipa" name (fun () ->
            let p' = Spartan.Mutate.apply site p in
            (verdict (Spartan.verify key inst ~public_inputs:fx.public_inputs p'), "")))
    (Spartan.Mutate.sites p);
  honest

(* ---- witness-level attacks: re-prove from a corrupted assignment ---- *)

let bump_assignment a i =
  let a' = Array.copy a in
  a'.(i) <- Fr.add a'.(i) Fr.one;
  a'

let witness_cases col fx =
  let d = fx.t.dims in
  let rng = stream fx.t 4 in
  let num_inputs = Api.Cs.num_inputs fx.prep.Api.cs in
  (* one wrong output: forge y_ij as both witness and claimed statement *)
  let i = Random.State.int rng d.Mspec.a and j = Random.State.int rng d.Mspec.b in
  emit col "witness" (Printf.sprintf "y[%d,%d]+1" i j) (fun () ->
      let idx = 1 + (i * d.Mspec.b) + j in
      let asg = bump_assignment fx.prep.Api.assignment idx in
      let publics = Array.to_list (Array.sub asg 1 num_inputs) in
      let proof = Api.prove_with ~rng:(stream fx.t 5) fx.keys asg in
      (verdict (Api.verify_with fx.keys ~public_inputs:publics proof), ""));
  (* one corrupted internal wire (the prefix-sum link s_k for the PSQ
     strategies, a product / CRPC term wire otherwise). Skipped under the
     optimiser: compaction renumbers aux wires, so the structural index
     below no longer names a binding wire — it could land on a private
     x/w entry whose +1 bump is absorbed by a zero partner coefficient,
     a sound acceptance the harness would misread as a forgery. *)
  let first_internal = 1 + num_inputs + (d.Mspec.a * d.Mspec.n) + (d.Mspec.n * d.Mspec.b) in
  if fx.opt = None && Array.length fx.prep.Api.assignment > first_internal then begin
    let internal_count = Array.length fx.prep.Api.assignment - first_internal in
    let idx = first_internal + Random.State.int rng internal_count in
    let name =
      match fx.t.strategy with
      | Mc.Vanilla_psq | Mc.Crpc_psq -> "s_k-link+1"
      | Mc.Vanilla | Mc.Crpc -> "internal-wire+1"
    in
    emit col "witness" name (fun () ->
        let asg = bump_assignment fx.prep.Api.assignment idx in
        let proof = Api.prove_with ~rng:(stream fx.t 5) fx.keys asg in
        (verdict (verify_fixture fx proof), ""))
  end;
  (* forged public input: the honest proof replayed against a claimed Y
     that was never proved *)
  let k = Random.State.int rng num_inputs in
  emit col "statement" (Printf.sprintf "public-input[%d]+1" k) (fun () ->
      let publics =
        List.mapi (fun n v -> if n = k then Fr.add v Fr.one else v) fx.public_inputs
      in
      (verdict (Api.verify_with fx.keys ~public_inputs:publics fx.proof), ""))

(* ---- CRPC challenge attacks ---- *)

(* Build the CRPC circuit for [challenge] with a forged public Y and an
   honest X, W; mirrors [Matmul_circuit.build]'s allocation order. *)
let crpc_statement backend strategy ~challenge ~x ~w ~forged_y d ~rng =
  let b = Bld.create () in
  let y_wires =
    Array.map (fun row -> Array.map (fun v -> Bld.alloc_input b v) row) forged_y
  in
  let alloc_matrix m = Array.map (Array.map (fun v -> Bld.alloc b v)) m in
  let x_wires = alloc_matrix x and w_wires = alloc_matrix w in
  McM.constrain b strategy ~challenge ~x:x_wires ~w:w_wires ~y:y_wires d;
  let cs, asg = Bld.finalize b in
  let keys = Api.keygen ~rng backend cs in
  let proof = Api.prove_with ~rng keys asg in
  let publics = Array.to_list (Array.sub asg 1 (Api.Cs.num_inputs cs)) in
  (keys, proof, publics)

let crpc_cases col fx =
  let d = fx.t.dims in
  let y = Spec.multiply fx.x fx.w in
  (* chosen challenge: with z fixed before Y, the prover can move mass
     between two outputs along z's weights and still satisfy the
     polynomial identity Σ z^{ib+j}·y_ij = Σ_k L_k·R_k *)
  if d.Mspec.a * d.Mspec.b >= 2 then
    emit col "crpc" "chosen-challenge" (fun () ->
        let z = Fr.of_int 0xC0FFEE in
        let forged_y = Array.map Array.copy y in
        let delta = Fr.one in
        (* second output slot and its weight z^{i·b+j} *)
        let (i2, j2), weight =
          if d.Mspec.b >= 2 then ((0, 1), z) else ((1, 0), Fr.pow_int z d.Mspec.b)
        in
        forged_y.(0).(0) <- Fr.add forged_y.(0).(0) delta;
        forged_y.(i2).(j2) <- Fr.sub forged_y.(i2).(j2) (Fr.div delta weight);
        let keys, proof, publics =
          crpc_statement fx.t.backend fx.t.strategy ~challenge:z ~x:fx.x ~w:fx.w
            ~forged_y d ~rng:(stream fx.t 6)
        in
        let backend_accepts = Api.verify_with keys ~public_inputs:publics proof in
        let fs_authentic =
          Fr.equal (McM.derive_challenge ~x:fx.x ~w:fx.w ~y:forged_y) z
        in
        ( verdict (backend_accepts && fs_authentic),
          Printf.sprintf
            "SNARK %s the identity at the chosen z; Fiat-Shamir recomputation %s"
            (if backend_accepts then "accepts" else "rejects")
            (if fs_authentic then "MATCHES (forgery!)" else "rejects the challenge") ));
  (* challenge reuse: an honest second statement proved under the first
     statement's challenge — sound as a polynomial identity, but the
     challenge no longer authenticates this (X, W, Y) *)
  emit col "crpc" "challenge-reuse" (fun () ->
      let z1 =
        match fx.prep.Api.challenge with Some z -> z | None -> assert false
      in
      let rng = stream fx.t 7 in
      let x2 = Spec.random_matrix rng ~rows:d.Mspec.a ~cols:d.Mspec.n ~bound:256 in
      let w2 = Spec.random_matrix rng ~rows:d.Mspec.n ~cols:d.Mspec.b ~bound:256 in
      let y2 = Spec.multiply x2 w2 in
      let keys, proof, publics =
        crpc_statement fx.t.backend fx.t.strategy ~challenge:z1 ~x:x2 ~w:w2
          ~forged_y:y2 d ~rng
      in
      let backend_accepts = Api.verify_with keys ~public_inputs:publics proof in
      let fs_authentic = Fr.equal (McM.derive_challenge ~x:x2 ~w:w2 ~y:y2) z1 in
      ( verdict (backend_accepts && fs_authentic),
        Printf.sprintf "SNARK %s; reused challenge %s"
          (if backend_accepts then "accepts" else "rejects")
          (if fs_authentic then "MATCHES (forgery!)" else "fails authentication") ))

(* ---- bit-flip machinery (shared by the wire and aggregate families) ---- *)

let flip_bit bytes pos =
  let b = Bytes.copy bytes in
  let byte = pos / 8 and bit = pos mod 8 in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
  b

(* Aggregate many bit flips into one case: every flip must be caught by
   a typed decode error, a statement/key-id check or a [false] verdict. *)
let flip_sweep ~rng ~flips bytes classify =
  let err = ref 0 and desc = ref 0 and reject = ref 0 and benign = ref 0 in
  let bad = ref None in
  for _ = 1 to flips do
    let pos = Random.State.int rng (8 * Bytes.length bytes) in
    match classify (flip_bit bytes pos) with
    | `Err -> incr err
    | `Desc -> incr desc
    | `Reject -> incr reject
    | `Benign -> incr benign
    | `Accept -> if !bad = None then bad := Some (pos, Accepted)
    | `Crash msg -> if !bad = None then bad := Some (pos, Crashed msg)
    | exception e -> if !bad = None then bad := Some (pos, Crashed (Printexc.to_string e))
  done;
  match !bad with
  | Some (pos, outcome) -> (outcome, Printf.sprintf "bit %d of %d bytes" pos (Bytes.length bytes))
  | None ->
    ( Rejected,
      Printf.sprintf "%d flips: %d decode-error, %d descriptor/key-id, %d verify-false%s"
        flips !err !desc !reject
        (if !benign > 0 then Printf.sprintf ", %d benign" !benign else "") )

(* ---- batch verification and SnarkPack aggregation attacks ---- *)

(* one-site proof tampering, backend-generic (used wherever a batch or
   key-file case needs "some corrupted member") *)
let tamper_proof = function
  | Api.Groth16_proof p ->
    Api.Groth16_proof (Groth16.Mutate.apply Groth16.Mutate.C_bump p)
  | Api.Spartan_proof p ->
    (match Spartan.Mutate.sites p with
     | s :: _ -> Api.Spartan_proof (Spartan.Mutate.apply s p)
     | [] -> assert false)

(* [n] (statement, proof) members under the fixture's keys. Challenge-free
   strategies get [n] distinct statements; CRPC keys are statement-bound,
   so there the batch is the fixture statement re-proved with fresh prover
   randomness — still distinct proofs, same key. *)
let batch_members fx n =
  let d = fx.t.dims in
  let rng = stream fx.t 15 in
  List.init n (fun i ->
      if i = 0 then (fx.public_inputs, fx.proof)
      else if Mc.uses_challenge fx.t.strategy then
        (fx.public_inputs, Api.prove_with ~rng fx.keys fx.prep.Api.assignment)
      else begin
        let x = Spec.random_matrix rng ~rows:d.Mspec.a ~cols:d.Mspec.n ~bound:256 in
        let w = Spec.random_matrix rng ~rows:d.Mspec.n ~cols:d.Mspec.b ~bound:256 in
        let prep = Api.prepare ?optimize:fx.opt fx.t.strategy ~x ~w d in
        let publics =
          Array.to_list (Array.sub prep.Api.assignment 1 (Api.Cs.num_inputs prep.Api.cs))
        in
        (publics, Api.prove_with ~rng fx.keys prep.Api.assignment)
      end)

let replace_nth l k v = List.mapi (fun i x -> if i = k then v else x) l

let io_equal a b =
  List.length a = List.length b && List.for_all2 Fr.equal a b

let batch_cases col fx =
  let members = batch_members fx 3 in
  let honest = Batch.verify_each fx.keys members in
  let path_name = function
    | Batch.Batched -> "batched"
    | Batch.Aggregated -> "aggregated"
    | Batch.Fallback -> "fallback"
    | Batch.Per_item -> "per-item"
  in
  (* one corrupted member: the combined check must reject the batch, and
     the per-item fallback must isolate the fault — honest members still
     pass, the corrupted one fails *)
  emit col "batch" "one-bad-member" (fun () ->
      if not (List.for_all Fun.id honest.Batch.verdicts) then
        (Crashed "honest batch rejected", path_name honest.Batch.path)
      else begin
        let io1, p1 = List.nth members 1 in
        let out = Batch.verify_each fx.keys (replace_nth members 1 (io1, tamper_proof p1)) in
        let honest_ok = List.nth out.Batch.verdicts 0 && List.nth out.Batch.verdicts 2 in
        ( verdict (List.nth out.Batch.verdicts 1),
          Printf.sprintf "path=%s, honest members %s" (path_name out.Batch.path)
            (if honest_ok then "isolated (pass)" else "REJECTED with it") )
      end);
  (* statements swapped between two members: every proof is individually
     well-formed, but neither proves the statement now claimed for it *)
  (match members with
   | (io0, p0) :: (io1, p1) :: rest when not (io_equal io0 io1) ->
     emit col "batch" "statement-swap" (fun () ->
         let out = Batch.verify_each fx.keys ((io1, p0) :: (io0, p1) :: rest) in
         ( verdict (List.nth out.Batch.verdicts 0 || List.nth out.Batch.verdicts 1),
           "path=" ^ path_name out.Batch.path ))
   | _ -> ());
  (* wrong-arity member: must be flagged as structurally malformed (an
     attributable fault), not silently dropped or accepted *)
  emit col "batch" "arity-truncate" (fun () ->
      let io1, p1 = List.nth members 1 in
      match io1 with
      | [] -> (Rejected, "no inputs to truncate")
      | _ :: tl ->
        let out = Batch.verify_each fx.keys (replace_nth members 1 (tl, p1)) in
        if List.nth out.Batch.verdicts 1 then (Accepted, "")
        else if List.mem 1 out.Batch.malformed then
          (Rejected_error "flagged malformed", "path=" ^ path_name out.Batch.path)
        else (Rejected, "rejected but not attributed as malformed"));
  (* the empty batch has no sound verdict; it must refuse, not accept *)
  emit col "batch" "empty" (fun () ->
      match Batch.verify_each fx.keys [] with
      | _ -> (Accepted, "empty batch produced a verdict")
      | exception Invalid_argument _ -> (Rejected_error "Invalid_argument", ""))

let aggregate_cases col fx =
  match fx.keys with
  | Api.Spartan_keys _ -> ()
  | Api.Groth16_keys { vk; _ } ->
    (* two members keep the family affordable at ~40 pairings per verify;
       the full 17-site tamper matrix at n=4 runs in test/test_snark.ml *)
    let members =
      List.map
        (function
          | io, Api.Groth16_proof p -> (io, p)
          | _, Api.Spartan_proof _ -> assert false)
        (batch_members fx 2)
    in
    let ios = List.map fst members in
    let srs = Aggregate.setup (stream fx.t 16) ~max_proofs:2 in
    let agg = Aggregate.aggregate srs vk members in
    if not (Aggregate.verify_aggregate srs vk ios agg) then
      emit col "aggregate" "honest" (fun () ->
          (Crashed "honest aggregate rejected", ""))
    else begin
      (* one tamper site per proof-component class (commitment, Groth16
         target, GIPA cross term, final vector element, KZG witness, MIPP
         final) — the exhaustive per-site matrix runs in test_snark *)
      let wanted =
        [ "comm_a"; "z0"; "tipp.round[0].zl"; "tipp.a"; "tipp.v_wit"; "mipp.c" ]
      in
      List.iter
        (fun site ->
          let name = Aggregate.Mutate.site_name site in
          if List.mem name wanted then
            emit col "aggregate" ("tamper." ^ name) (fun () ->
                let agg' = Aggregate.Mutate.apply site agg in
                (verdict (Aggregate.verify_aggregate srs vk ios agg'), "")))
        (Aggregate.Mutate.sites agg);
      (* the honest aggregate replayed against a forged statement list *)
      emit col "aggregate" "statement-forge" (fun () ->
          let ios' =
            match ios with
            | (v :: tl0) :: tl -> (Fr.add v Fr.one :: tl0) :: tl
            | _ -> assert false
          in
          (verdict (Aggregate.verify_aggregate srs vk ios' agg), ""));
      (* one invalid member hidden inside an otherwise honest aggregation:
         compression must not launder it into an accepted proof *)
      emit col "aggregate" "bad-member" (fun () ->
          let io1, p1 = List.nth members 1 in
          let members' =
            replace_nth members 1 (io1, Groth16.Mutate.apply Groth16.Mutate.C_bump p1)
          in
          let agg' = Aggregate.aggregate srs vk members' in
          (verdict (Aggregate.verify_aggregate srs vk ios agg'), ""));
      (* a wrong-seed SRS: the verifier's structured keys no longer match
         the ones the proof was built against *)
      emit col "aggregate" "srs-mismatch" (fun () ->
          let srs' = Aggregate.setup (stream fx.t 17) ~max_proofs:2 in
          (verdict (Aggregate.verify_aggregate srs' vk ios agg), ""));
      (* bit flips over the aggregate-file codec: every flip must end in a
         typed decode error, a key-id mismatch, or a false verdict *)
      emit col "aggregate" "file-bitflip" (fun () ->
          let key_id =
            Key_cache.id_of ?opt:fx.opt fx.t.backend fx.t.strategy fx.t.dims
              ~challenge:fx.prep.Api.challenge fx.prep.Api.cs
          in
          let af =
            { Wire.af_key_id = key_id; af_statements = ios; af_proof = agg }
          in
          let honest_blob = Aggregate.proof_to_bytes agg in
          let bytes = Wire.encode_aggregate_file af in
          flip_sweep ~rng:(stream fx.t 18) ~flips:12 bytes (fun b ->
              match Wire.decode_aggregate_file b with
              | Error _ -> `Err
              | Ok af' ->
                if af'.Wire.af_key_id <> key_id then `Desc
                else if
                  Aggregate.verify_aggregate srs vk af'.Wire.af_statements
                    af'.Wire.af_proof
                then begin
                  let unchanged =
                    List.length af'.Wire.af_statements = List.length ios
                    && List.for_all2 io_equal af'.Wire.af_statements ios
                    && Bytes.equal (Aggregate.proof_to_bytes af'.Wire.af_proof) honest_blob
                  in
                  if unchanged then `Benign else `Accept
                end
                else `Reject))
    end

(* ---- wire-level attacks through the Zkvc_serve codecs ---- *)

let wire_cases col fx =
  let challenge = fx.prep.Api.challenge in
  let key_id =
    Key_cache.id_of ?opt:fx.opt fx.t.backend fx.t.strategy fx.t.dims ~challenge
      fx.prep.Api.cs
  in
  let descriptor_matches ~backend ~strategy ~dims ~challenge:ch =
    backend = fx.t.backend && strategy = fx.t.strategy && dims = fx.t.dims
    && (match (ch, challenge) with
        | None, None -> true
        | Some a, Some b -> Fr.equal a b
        | _ -> false)
  in
  emit col "wire" "proof-file-bitflip" (fun () ->
      let pf =
        { Wire.pf_backend = fx.t.backend;
          pf_strategy = fx.t.strategy;
          pf_dims = fx.t.dims;
          pf_challenge = challenge;
          pf_key_id = key_id;
          pf_public_inputs = fx.public_inputs;
          pf_proof = fx.proof }
      in
      let bytes = Wire.encode_proof_file pf in
      flip_sweep ~rng:(stream fx.t 8) ~flips:32 bytes (fun b ->
          match Wire.decode_proof_file b with
          | Error _ -> `Err
          | Ok pf' ->
            if
              not
                (descriptor_matches ~backend:pf'.Wire.pf_backend
                   ~strategy:pf'.Wire.pf_strategy ~dims:pf'.Wire.pf_dims
                   ~challenge:pf'.Wire.pf_challenge)
            then `Desc
            else if pf'.Wire.pf_key_id <> key_id then `Desc
            else if
              Api.verify_with fx.keys ~public_inputs:pf'.Wire.pf_public_inputs
                pf'.Wire.pf_proof
            then `Accept
            else `Reject));
  emit col "wire" "key-file-bitflip" (fun () ->
      let kf =
        { Wire.kf_backend = fx.t.backend;
          kf_strategy = fx.t.strategy;
          kf_dims = fx.t.dims;
          kf_challenge = challenge;
          kf_opt = fx.opt;
          kf_key_id = key_id;
          kf_keys = fx.keys }
      in
      let bytes = Wire.encode_key_file kf in
      (* a tampered proof must stay rejected whatever survives decoding:
         a flip that only hits the proving-key half leaves verification
         intact (benign), a flip in the verifying key fails closed *)
      let tampered =
        match fx.proof with
        | Api.Groth16_proof p ->
          Api.Groth16_proof (Groth16.Mutate.apply Groth16.Mutate.C_bump p)
        | Api.Spartan_proof p ->
          (match Spartan.Mutate.sites p with
           | s :: _ -> Api.Spartan_proof (Spartan.Mutate.apply s p)
           | [] -> assert false)
      in
      flip_sweep ~rng:(stream fx.t 9) ~flips:24 bytes (fun b ->
          match Wire.decode_key_file b with
          | Error _ -> `Err
          | Ok kf' ->
            if
              not
                (descriptor_matches ~backend:kf'.Wire.kf_backend
                   ~strategy:kf'.Wire.kf_strategy ~dims:kf'.Wire.kf_dims
                   ~challenge:kf'.Wire.kf_challenge)
              || kf'.Wire.kf_key_id <> key_id
            then `Desc
            else if
              try
                Api.verify_with kf'.Wire.kf_keys ~public_inputs:fx.public_inputs
                  tampered
              with Invalid_argument _ -> false
            then `Accept
            else `Reject));
  let adv_trace =
    Some
      { Wire.tr_request_id = String.init 16 (fun i -> Char.chr (i * 7 land 0xff));
        tr_origin = "adversary" }
  in
  let verify_request =
    Wire.Request
      ( adv_trace,
        Wire.Verify
          { key_id;
            public_inputs = fx.public_inputs;
            proof = fx.proof;
            deadline_ms = 0 } )
  in
  (* shared classifier for verify-request frames at either wire version:
     a flip must yield a typed decode error, a changed descriptor, a
     [false] verdict, or leave the statement untouched — never an
     accepted forgery. Flips in the v2 trace block only alter telemetry,
     so they land in the unchanged-statement (benign) bucket. *)
  let classify_verify_frame b =
    let honest_proof = proof_bytes fx.proof in
    match Wire.decode_frame b with
    | Error _ -> `Err
    | Ok (Wire.Request (_, Wire.Verify { key_id = kid; public_inputs; proof; _ })) ->
      if kid <> key_id then `Desc
      else begin
        let statement_unchanged =
          List.length public_inputs = List.length fx.public_inputs
          && List.for_all2 Fr.equal public_inputs fx.public_inputs
          && Bytes.equal (proof_bytes proof) honest_proof
        in
        match Api.verify_with fx.keys ~public_inputs proof with
        | true -> if statement_unchanged then `Benign else `Accept
        | false -> `Reject
        | exception Invalid_argument _ -> `Err
      end
    | Ok _ -> `Desc
  in
  emit col "wire" "frame-bitflip" (fun () ->
      let bytes = Wire.encode_frame verify_request in
      flip_sweep ~rng:(stream fx.t 10) ~flips:48 bytes classify_verify_frame);
  emit col "wire" "frame-bitflip-v1" (fun () ->
      (* the legacy encodings must fail just as closed; in particular no
         single-bit flip of a version byte reaches another accepted
         version *)
      let bytes = Wire.encode_frame ~version:1 verify_request in
      flip_sweep ~rng:(stream fx.t 11) ~flips:48 bytes classify_verify_frame);
  emit col "wire" "frame-bitflip-v2" (fun () ->
      let bytes = Wire.encode_frame ~version:2 verify_request in
      flip_sweep ~rng:(stream fx.t 14) ~flips:48 bytes classify_verify_frame);
  emit col "wire" "batch-frame-bitflip" (fun () ->
      (* a two-member [Batch_verify] request frame: every flip must end in
         a typed decode error, a changed key id, a refused (empty/oversized)
         batch, a [false] member verdict, or leave both statements
         untouched — never a batch that accepts a changed statement *)
      let members = [ (fx.public_inputs, fx.proof); (fx.public_inputs, fx.proof) ] in
      let frame =
        Wire.Request
          (adv_trace, Wire.Batch_verify { key_id; items = members; deadline_ms = 0 })
      in
      let honest_proof = proof_bytes fx.proof in
      let bytes = Wire.encode_frame frame in
      flip_sweep ~rng:(stream fx.t 19) ~flips:24 bytes (fun b ->
          match Wire.decode_frame b with
          | Error _ -> `Err
          | Ok (Wire.Request (_, Wire.Batch_verify { key_id = kid; items; _ })) ->
            if kid <> key_id then `Desc
            else begin
              match Batch.verify_each fx.keys items with
              | exception Invalid_argument _ -> `Err
              | out ->
                let unchanged (io, p) =
                  io_equal io fx.public_inputs
                  && Bytes.equal (proof_bytes p) honest_proof
                in
                let forged_accepted =
                  List.exists2
                    (fun item ok -> ok && not (unchanged item))
                    items out.Batch.verdicts
                in
                if forged_accepted then `Accept
                else if List.for_all Fun.id out.Batch.verdicts then `Benign
                else `Reject
            end
          | Ok _ -> `Desc));
  emit col "wire" "status-detail-request-bitflip" (fun () ->
      let bytes = Wire.encode_frame (Wire.Request (adv_trace, Wire.Status_detail)) in
      flip_sweep ~rng:(stream fx.t 12) ~flips:32 bytes (fun b ->
          match Wire.decode_frame b with
          | Error _ -> `Err
          | Ok (Wire.Request (_, Wire.Status_detail)) -> `Benign
          | Ok _ -> `Desc));
  emit col "wire" "status-detail-response-bitflip" (fun () ->
      let stat =
        { Wire.uptime_s = 12.5;
          requests = 9;
          queue_depth = 1;
          queue_capacity = 16;
          cache_hits = 3;
          cache_misses = 2;
          cache_entries = 2;
          timeouts = 0;
          rejections = 1;
          batched = 4;
          workers = 2;
          workers_busy = 1;
          queue_depth_verify = 0;
          queue_depth_prove = 1 }
      in
      let timing =
        Some
          { Wire.tm_request_id = String.init 16 (fun i -> Char.chr (i * 11 land 0xff));
            tm_queue_wait_s = 0.001;
            tm_exec_s = 0.25;
            tm_phases = [ ("serve.prepare", 0., 0.01); ("serve.prove", 0.01, 0.2) ] }
      in
      let resp =
        Wire.Response
          ( timing,
            Wire.Status_detail_ok
              { status = stat;
                metrics_text = "# TYPE zkvc_serve_requests_total counter\nzkvc_serve_requests_total 9\n";
                flight_jsonl = "{\"request_id\":\"00\",\"kind\":\"prove\",\"outcome\":\"ok\"}\n" } )
      in
      let bytes = Wire.encode_frame resp in
      flip_sweep ~rng:(stream fx.t 13) ~flips:32 bytes (fun b ->
          match Wire.decode_frame b with
          | Error _ -> `Err
          | Ok (Wire.Response (_, Wire.Status_detail_ok _)) -> `Benign
          | Ok _ -> `Desc))

(* ---- driver ---- *)

let run_target ?only ?optimize t =
  let fx = make_fixture ?optimize t in
  let honest = verify_fixture fx fx.proof in
  let col = { only; acc = [] } in
  let honest_ipa =
    match (fx.proof, fx.keys) with
    | Api.Groth16_proof p, _ ->
      groth16_cases col fx p;
      true
    | Api.Spartan_proof p, Api.Spartan_keys { inst; key } ->
      spartan_cases col fx p;
      spartan_ipa_cases col fx inst key
    | Api.Spartan_proof _, Api.Groth16_keys _ -> assert false
  in
  witness_cases col fx;
  if Mc.uses_challenge t.strategy then crpc_cases col fx;
  batch_cases col fx;
  aggregate_cases col fx;
  wire_cases col fx;
  { target = t; honest_verified = honest && honest_ipa; cases = List.rev col.acc }

let failures r = List.filter (fun c -> not (outcome_is_sound c.outcome)) r.cases

let is_clean r = r.honest_verified && failures r = []

(* ---- reporting ---- *)

let pp_target fmt t =
  Format.fprintf fmt "%s/%s %a seed=%d"
    (Api.backend_name t.backend) (Mc.strategy_name t.strategy) Mspec.pp_dims t.dims
    t.seed

let pp_outcome fmt = function
  | Rejected -> Format.pp_print_string fmt "rejected"
  | Rejected_error e -> Format.fprintf fmt "rejected (%s)" e
  | Accepted -> Format.pp_print_string fmt "ACCEPTED-FORGERY"
  | Crashed e -> Format.fprintf fmt "CRASHED (%s)" e

let pp_case fmt c =
  Format.fprintf fmt "%-28s %a%s" (case_name c) pp_outcome c.outcome
    (if c.detail = "" then "" else "  [" ^ c.detail ^ "]")

let pp_report fmt r =
  Format.fprintf fmt "@[<v>== %a: %d mutations, %d failures%s@," pp_target r.target
    (List.length r.cases)
    (List.length (failures r))
    (if r.honest_verified then "" else "  (HONEST PROOF REJECTED)");
  List.iter (fun c -> Format.fprintf fmt "   %a@," pp_case c) r.cases;
  Format.fprintf fmt "@]"

let repro_hint ?optimize t c =
  Printf.sprintf
    "zkvc_cli adversary --seed %d --backend %s --strategy %s --dims %d,%d,%d%s --only '%s'"
    t.seed (Api.backend_name t.backend) (Mc.strategy_name t.strategy)
    t.dims.Mspec.a t.dims.Mspec.n t.dims.Mspec.b
    (match optimize with Some _ -> " --optimize" | None -> "")
    (case_name c)

let shrink ?optimize t c =
  let { Mspec.a; n; b } = t.dims in
  let candidates = ref [] in
  for a' = 1 to a do
    for n' = 1 to n do
      for b' = 1 to b do
        if a' * n' * b' < a * n * b then
          candidates := Mspec.dims ~a:a' ~n:n' ~b:b' :: !candidates
      done
    done
  done;
  let sorted =
    List.sort
      (fun d1 d2 ->
        compare
          (d1.Mspec.a * d1.Mspec.n * d1.Mspec.b, (d1.Mspec.a, d1.Mspec.n, d1.Mspec.b))
          (d2.Mspec.a * d2.Mspec.n * d2.Mspec.b, (d2.Mspec.a, d2.Mspec.n, d2.Mspec.b)))
      !candidates
  in
  List.fold_left
    (fun found d ->
      match found with
      | Some _ -> found
      | None ->
        let t' = { t with dims = d } in
        let r = run_target ~only:(case_name c) ?optimize t' in
        (match
           List.find_opt
             (fun c' -> case_name c' = case_name c && not (outcome_is_sound c'.outcome))
             r.cases
         with
         | Some c' -> Some (t', c')
         | None -> None))
    None sorted

let default_dims = [ Mspec.dims ~a:2 ~n:2 ~b:2; Mspec.dims ~a:3 ~n:3 ~b:2 ]
let default_strategies = Mc.all_strategies

let sweep ?(out = Format.std_formatter) ?only ?optimize
    ?(backends = [ Api.Backend_groth16; Api.Backend_spartan ])
    ?(strategies = default_strategies) ?(dims = default_dims) ~seed () =
  let reports = ref [] in
  List.iter
    (fun backend ->
      List.iter
        (fun strategy ->
          List.iter
            (fun d ->
              let t = { backend; strategy; dims = d; seed } in
              let r = run_target ?only ?optimize t in
              reports := r :: !reports;
              Format.fprintf out "%a" pp_report r;
              List.iter
                (fun c ->
                  Format.fprintf out "   repro: %s@." (repro_hint ?optimize t c);
                  match shrink ?optimize t c with
                  | Some (t', c') ->
                    Format.fprintf out "   shrunk: %s@." (repro_hint ?optimize t' c')
                  | None -> ())
                (failures r);
              Format.pp_print_flush out ())
            dims)
        strategies)
    backends;
  let reports = List.rev !reports in
  (reports, List.for_all is_clean reports)
