(** Deterministic fault-injection harness: forge, tamper and corrupt in
    every way the codebase knows how, and assert the verifier rejects
    each one.

    A {!target} fixes (backend, strategy, dims, seed); everything the
    harness does — instance sampling, mutation choices, bit-flip
    positions, splice randomness — is derived from the seed, so any
    verdict reproduces from the printed {!repro_hint} line.

    Mutation families:
    - [groth16.point] — each proof point replaced, negated or set to the
      identity, and the two G1 points swapped
      ({!Zkvc_groth16.Groth16.Mutate});
    - [groth16.splice] / [spartan.splice] — proof parts mixed across
      re-randomised proofs of the same statement, and whole/partial
      proofs transplanted across different statements;
    - [spartan.proof] / [spartan.ipa] — every sumcheck-round polynomial,
      row commitment, claimed evaluation and opening element perturbed,
      in both the Hyrax-fold and IPA opening modes
      ({!Zkvc_spartan.Spartan.Mutate});
    - [witness] — proofs honestly re-proved from a corrupted assignment
      (one wrong [y_ij]; one corrupted internal wire — the prefix-sum
      link [s_k] for the PSQ strategies);
    - [statement] — an honest proof replayed against forged public
      inputs;
    - [crpc] — proving under a chosen (non-Fiat–Shamir) challenge with a
      [Y' ≠ X·W] that satisfies the polynomial identity at that
      challenge, and reusing a challenge derived from a different
      statement. The SNARK accepts both (the circuit {e is} satisfied) —
      the harness asserts the Fiat–Shamir challenge {e authentication}
      ([derive_challenge] recomputation) catches them, which is exactly
      the reduction step CRPC soundness stands on;
    - [batch] — attacks on batched verification
      ({!Zkvc_serve.Batch.verify_each}): one corrupted member must sink
      the combined check while the per-item fallback isolates it,
      statements swapped between well-formed members must reject,
      wrong-arity members must be flagged as attributable malformed
      faults, and the empty batch must refuse to produce a verdict;
    - [aggregate] — attacks on SnarkPack-style aggregation
      ({!Zkvc_groth16.Aggregate}, Groth16 targets only): every
      commitment, GIPA round, final value and KZG witness in the
      aggregate proof bumped one at a time, the honest aggregate
      replayed against forged statements, one invalid member hidden in
      an otherwise honest aggregation, a wrong-seed SRS, and bit flips
      over the aggregate-file codec;
    - [wire] — bit-flipped proof files, key files and request/response
      frames (at both wire versions, including v2 trace/timing blocks,
      the [Status_detail] operation and [Batch_verify] requests) pushed
      through the {!Zkvc_serve.Wire} codecs: every flip must end in a
      typed decode error, a descriptor/key-id mismatch, a refused batch,
      a [false] verdict or an unchanged statement — never [true] on a
      changed statement, never an exception. *)

module Api = Zkvc.Api

type target =
  { backend : Api.backend;
    strategy : Zkvc.Matmul_circuit.strategy;
    dims : Zkvc.Matmul_spec.dims;
    seed : int }

(** What the verifier said about one mutation. [Rejected_error] is a
    typed decode/validation failure (still a sound rejection);
    [Accepted] is an accepted forgery; [Crashed] is an unexpected
    exception escaping a verification path. *)
type outcome =
  | Rejected
  | Rejected_error of string
  | Accepted
  | Crashed of string

(** [true] for [Rejected] and [Rejected_error]. *)
val outcome_is_sound : outcome -> bool

type case =
  { family : string;  (** mutation family, e.g. ["groth16.point"] *)
    mutation : string;  (** specific site/strategy, e.g. ["a.neg"] *)
    outcome : outcome;
    detail : string  (** free-form context, e.g. flip statistics *) }

(** ["family.mutation"] — the name {!run_target}'s [only] filters on. *)
val case_name : case -> string

type report =
  { target : target;
    honest_verified : bool;
        (** the unmutated proof(s) verified — if [false] the fixture
            itself is broken and the rejections prove nothing *)
    cases : case list }

(** Run every applicable mutation against one target. [only] keeps just
    the cases whose {!case_name} contains it as a substring. [optimize]
    builds the fixture through the R1CS optimiser ([Api.prepare
    ?optimize]) — keys, proofs and key files all come from the optimised
    system, asserting that optimisation never widens the acceptance set.
    The structural internal-wire witness mutation is skipped under the
    optimiser (aux compaction renumbers wires, so its index no longer
    names the wire the mutation is about); every other family runs
    unchanged. *)
val run_target : ?only:string -> ?optimize:Api.Opt.config -> target -> report

(** Cases whose outcome is [Accepted] or [Crashed]. *)
val failures : report -> case list

(** Honest proofs verified and no mutation was accepted or crashed. *)
val is_clean : report -> bool

(** One [zkvc_cli adversary ...] command line reproducing the case
    (with [--optimize] when the sweep ran optimised). *)
val repro_hint : ?optimize:Api.Opt.config -> target -> case -> string

(** Re-run a failing case at strictly smaller dimensions and return the
    smallest target (by [a·n·b], then lexicographically) where the same
    mutation still fails, with that failing case. [None] if it only
    fails at the original size. *)
val shrink : ?optimize:Api.Opt.config -> target -> case -> (target * case) option

val pp_target : Format.formatter -> target -> unit
val pp_case : Format.formatter -> case -> unit

(** Full report: one line per case, failures flagged, shrunk repro lines
    printed by {!sweep}. *)
val pp_report : Format.formatter -> report -> unit

(** The two dimension scales the CI sweep covers. *)
val default_dims : Zkvc.Matmul_spec.dims list

val default_strategies : Zkvc.Matmul_circuit.strategy list

(** Run the full grid (backends × strategies × dims), printing each
    report to [out] (default std_formatter) plus a shrunk repro line for
    every failure. Returns the reports and whether everything was
    clean. *)
val sweep :
  ?out:Format.formatter ->
  ?only:string ->
  ?optimize:Api.Opt.config ->
  ?backends:Api.backend list ->
  ?strategies:Zkvc.Matmul_circuit.strategy list ->
  ?dims:Zkvc.Matmul_spec.dims list ->
  seed:int ->
  unit ->
  report list * bool
