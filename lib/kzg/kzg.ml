module Fr = Zkvc_field.Fr
module G1 = Zkvc_curve.G1
module G2 = Zkvc_curve.G2
module Fq12 = Zkvc_curve.Fq12
module Pairing = Zkvc_curve.Pairing
module Msm = Zkvc_curve.Msm.Make (G1)
module Msm_g2 = Zkvc_curve.Msm.Make (G2)
module Fb = Zkvc_curve.Fixed_base.Make (G1)
module Fb_g2 = Zkvc_curve.Fixed_base.Make (G2)
module P = Zkvc_poly.Dense_poly.Make (Fr)
module T = Zkvc_transcript.Transcript
module Ch = T.Challenge (Fr)

type srs =
  { powers_g1 : G1.t array; (* τ^i · G1, i = 0..degree *)
    tau_g2 : G2.t (* τ · G2 *) }

let setup st ~degree =
  if degree < 0 then invalid_arg "Kzg.setup: negative degree";
  let tau = Fr.random st in
  let table = Fb.create G1.generator in
  let powers_g1 =
    let acc = ref Fr.one in
    Array.init (degree + 1) (fun i ->
        if i > 0 then acc := Fr.mul !acc tau;
        Fb.mul table !acc)
  in
  { powers_g1; tau_g2 = G2.mul_fr G2.generator tau }

let max_degree srs = Array.length srs.powers_g1 - 1

type commitment = G1.t

let commit srs p =
  let coeffs = P.coeffs p in
  if Array.length coeffs > Array.length srs.powers_g1 then
    invalid_arg "Kzg.commit: polynomial exceeds SRS degree";
  if Array.length coeffs = 0 then G1.zero
  else Msm.msm (Array.sub srs.powers_g1 0 (Array.length coeffs)) coeffs

type opening =
  { point : Fr.t;
    value : Fr.t;
    witness : G1.t }

(* q(x) = (p(x) - p(z)) / (x - z): exact division by construction. *)
let open_at srs p point =
  let value = P.eval p point in
  let shifted = P.sub p (P.constant value) in
  let divisor = P.of_list [ Fr.neg point; Fr.one ] in
  let q, rem = P.divmod shifted divisor in
  assert (P.is_zero rem);
  { point; value; witness = commit srs q }

(* e(C − value·G, G2) = e(W, τ·G2 − point·G2)
   ⇔ e(C − value·G, G2) · e(−W, τ·G2 − point·G2) = 1 *)
let verify srs c opening =
  let lhs_g1 = G1.add c (G1.neg (G1.mul_fr G1.generator opening.value)) in
  let rhs_g2 = G2.add srs.tau_g2 (G2.neg (G2.mul_fr G2.generator opening.point)) in
  Fq12.is_one
    (Pairing.multi_pairing
       [ (lhs_g1, G2.generator); (G1.neg opening.witness, rhs_g2) ])

(* ---- G2-side mirror ----
   Same scheme with the roles of the groups swapped: the SRS carries
   powers of the trapdoor in G2 and a single trapdoor point in G1, so a
   polynomial commits to a G2 element and the opening is checked as
     e(G1, C − value·G2) = e(τ·G1 − point·G1, W).
   SnarkPack-style aggregation needs both sides: its structured
   commitment keys live in G2 (for the A/C vectors) and in G1 (for the
   B vector), and the final GIPA key check is a KZG opening in each
   group. *)

type srs_g2 =
  { powers_g2 : G2.t array; (* τ^i · G2, i = 0..degree *)
    tau_g1 : G1.t (* τ · G1 *) }

let setup_g2 st ~degree =
  if degree < 0 then invalid_arg "Kzg.setup_g2: negative degree";
  let tau = Fr.random st in
  let table = Fb_g2.create G2.generator in
  let powers_g2 =
    let acc = ref Fr.one in
    Array.init (degree + 1) (fun i ->
        if i > 0 then acc := Fr.mul !acc tau;
        Fb_g2.mul table !acc)
  in
  { powers_g2; tau_g1 = G1.mul_fr G1.generator tau }

let max_degree_g2 srs = Array.length srs.powers_g2 - 1

type commitment_g2 = G2.t

let commit_g2 srs p =
  let coeffs = P.coeffs p in
  if Array.length coeffs > Array.length srs.powers_g2 then
    invalid_arg "Kzg.commit_g2: polynomial exceeds SRS degree";
  if Array.length coeffs = 0 then G2.zero
  else Msm_g2.msm (Array.sub srs.powers_g2 0 (Array.length coeffs)) coeffs

type opening_g2 =
  { point_g2 : Fr.t;
    value_g2 : Fr.t;
    witness_g2 : G2.t }

let open_at_g2 srs p point =
  let value = P.eval p point in
  let shifted = P.sub p (P.constant value) in
  let divisor = P.of_list [ Fr.neg point; Fr.one ] in
  let q, rem = P.divmod shifted divisor in
  assert (P.is_zero rem);
  { point_g2 = point; value_g2 = value; witness_g2 = commit_g2 srs q }

(* e(G1, C − value·G2) = e(τ·G1 − point·G1, W)
   ⇔ e(G1, C − value·G2) · e(point·G1 − τ·G1, W) = 1 *)
let verify_g2 srs c opening =
  let rhs_g2 = G2.add c (G2.neg (G2.mul_fr G2.generator opening.value_g2)) in
  let lhs_g1 =
    G1.add (G1.mul_fr G1.generator opening.point_g2) (G1.neg srs.tau_g1)
  in
  Fq12.is_one
    (Pairing.multi_pairing
       [ (G1.generator, rhs_g2); (lhs_g1, opening.witness_g2) ])

let powers srs = srs.powers_g1
let powers_g2 srs = srs.powers_g2

let commit_matrix srs m =
  let coeffs = Array.concat (Array.to_list m) in
  commit srs (P.of_coeffs coeffs)

let derive_challenge c ~x ~y =
  let tr = T.create ~label:"zkvc.crpc.kzg-challenge" in
  T.absorb_bytes tr ~label:"w-comm" (G1.to_bytes c);
  let absorb_matrix label m =
    T.absorb_int tr ~label:(label ^ ".rows") (Array.length m);
    Array.iter (fun row -> Ch.absorb_array tr ~label row) m
  in
  absorb_matrix "x" x;
  absorb_matrix "y" y;
  Ch.challenge tr ~label:"z"
