(** KZG polynomial commitments (Kate–Zaverucha–Goldberg, ASIACRYPT 2010)
    over BN254: constant-size commitments and opening proofs, verified
    with one pairing equation.

    Two roles in this repository: (1) the binding weight commitment of the
    CRPC commit-then-challenge flow — the model owner commits to W once
    and every proof's challenge is derived from that commitment; (2) the
    commitment layer of the halo2/vCNN-style systems the paper compares
    against. *)

module Fr = Zkvc_field.Fr
module G1 = Zkvc_curve.G1
module G2 = Zkvc_curve.G2
module P : module type of Zkvc_poly.Dense_poly.Make (Fr)

type srs

(** Powers-of-tau setup supporting polynomials of degree ≤ [degree].
    The trapdoor τ is sampled from the PRNG and dropped. *)
val setup : Random.State.t -> degree:int -> srs

val max_degree : srs -> int

type commitment = G1.t

(** Constant-size (one G1 point) commitment.
    Raises [Invalid_argument] beyond the SRS degree. *)
val commit : srs -> P.t -> commitment

type opening =
  { point : Fr.t;
    value : Fr.t;
    witness : G1.t }

(** Opening proof for [p(point)]. *)
val open_at : srs -> P.t -> Fr.t -> opening

(** One pairing check: [e(C − value·G, G2) = e(W, τG2 − point·G2)]. *)
val verify : srs -> commitment -> opening -> bool

(** {2 G2-side mirror}

    The same scheme with the group roles swapped: τ-powers in G2, one
    trapdoor point in G1, commitments in G2, and the opening checked as
    [e(G1, C − value·G2) = e(τG1 − point·G1, W)]. Needed by the
    SnarkPack-style aggregator ({!Zkvc_groth16.Aggregate}), whose
    structured commitment keys live in both groups and whose final GIPA
    key consistency check is a KZG opening on each side. *)

type srs_g2

val setup_g2 : Random.State.t -> degree:int -> srs_g2
val max_degree_g2 : srs_g2 -> int

type commitment_g2 = G2.t

(** Raises [Invalid_argument] beyond the SRS degree. *)
val commit_g2 : srs_g2 -> P.t -> commitment_g2

type opening_g2 =
  { point_g2 : Fr.t;
    value_g2 : Fr.t;
    witness_g2 : G2.t }

val open_at_g2 : srs_g2 -> P.t -> Fr.t -> opening_g2
val verify_g2 : srs_g2 -> commitment_g2 -> opening_g2 -> bool

(** The raw τ-power arrays, exposed so pairing-based protocols can reuse
    them as structured commitment keys (the SnarkPack pattern: the
    AFGHO commitment key v_i = τ^i·G2 IS the G2 SRS, and the GIPA final
    key check is a KZG opening against the same powers). Callers must
    not mutate the returned arrays. *)
val powers : srs -> G1.t array

val powers_g2 : srs_g2 -> G2.t array

(** Commit to a weight matrix (rows flattened into one polynomial) — the
    reusable binding commitment for CRPC challenge derivation. *)
val commit_matrix : srs -> Fr.t array array -> commitment

(** Fiat–Shamir challenge bound to a weight commitment and the
    (public or claimed) X and Y matrices. *)
val derive_challenge :
  commitment -> x:Fr.t array array -> y:Fr.t array array -> Fr.t
