(** Groth16 zk-SNARK (EUROCRYPT 2016) over BN254 — zkVC's "zkVC-G"
    backend. Constant-size proofs (two G1 points and one G2 point),
    constant-time verification (one multi-pairing), trusted setup.

    Prover cost is dominated by multi-scalar multiplications of size
    [num_vars] / [num_constraints] and by the NTTs computing the QAP
    quotient — precisely the quantities CRPC and PSQ shrink. *)

module Fr = Zkvc_field.Fr
module Qap : module type of Zkvc_qap.Qap.Make (Fr)
module Cs : module type of Zkvc_r1cs.Constraint_system.Make (Fr)

type proving_key

type verifying_key

type proof =
  { a : Zkvc_curve.G1.t;
    b : Zkvc_curve.G2.t;
    c : Zkvc_curve.G1.t }

(** Canonical (uncompressed affine) proof size: 2·64 + 128 bytes. *)
val proof_size_bytes : proof -> int

(** Wire encoding (tagged uncompressed points; 259 bytes). *)
val proof_to_bytes : proof -> Bytes.t

(** Parses {!proof_to_bytes} output. Validates lengths, curve membership
    of all three points and the G2 subgroup check; raises
    [Invalid_argument] on any failure. *)
val proof_of_bytes_exn : Bytes.t -> proof

(** Compressed wire encoding (131 bytes: x-coordinates + parity tags). *)
val proof_to_bytes_compressed : proof -> Bytes.t

(** Decompresses and validates (curve equations + G2 subgroup). *)
val proof_of_bytes_compressed_exn : Bytes.t -> proof

(** Trusted setup for one circuit. The "toxic waste" (tau, alpha, beta,
    gamma, delta) is sampled from the given PRNG and dropped. *)
val setup : Random.State.t -> Qap.t -> proving_key * verifying_key

(** Produce a proof from a full satisfying assignment (as returned by
    {!Zkvc_r1cs.Builder}). Randomised: proofs are perfectly
    zero-knowledge. *)
val prove : Random.State.t -> proving_key -> Qap.t -> Fr.t array -> proof

(** [verify vk ~public_inputs proof]: public inputs in canonical wire
    order, excluding the constant-one wire. *)
val verify : verifying_key -> public_inputs:Fr.t list -> proof -> bool

(** Verdict of a batched verification. [Batch_malformed] lists the
    0-based indices of instances whose public-input arity does not match
    the key — a structural fault attributable to specific members, as
    opposed to [Batch_rejected], where the weighted combination failed
    and identifying the culprit needs a per-item retry. *)
type batch_result =
  | Batch_accepted
  | Batch_rejected
  | Batch_malformed of int list

(** Batch verification of several (public_inputs, proof) pairs under one
    verifying key: (k + 3) Miller loops and a single final exponentiation
    instead of k independent 4-pairing checks. Random weights are derived
    by Fiat–Shamir from the statements, so a batch that verifies contains
    only valid proofs (up to soundness error k/|F_r|).

    Raises [Invalid_argument] on an empty batch: there is no sound
    verdict for zero instances, and the previous behaviour (vacuous
    [true]) let a dropped-to-empty batch "verify". *)
val verify_batch : verifying_key -> (Fr.t list * proof) list -> batch_result

(** Byte size of the verifying key (grows only with the public input
    count). *)
val verifying_key_size_bytes : verifying_key -> int

(** {2 Verifying-key components}

    Read-only accessors for protocols layered on top of the plain
    verifier — the SnarkPack-style aggregator ({!Aggregate}) re-derives
    the right-hand side of the Groth16 equation from these. *)

val vk_alpha : verifying_key -> Zkvc_curve.G1.t
val vk_beta : verifying_key -> Zkvc_curve.G2.t
val vk_gamma : verifying_key -> Zkvc_curve.G2.t
val vk_delta : verifying_key -> Zkvc_curve.G2.t
val vk_num_inputs : verifying_key -> int

(** [ic_sum vk io = IC_0 + Σ io_i·IC_i] — the public-input term of the
    verification equation. *)
val ic_sum : verifying_key -> Fr.t list -> Zkvc_curve.G1.t

(** {2 Key wire encodings}

    Length-prefixed arrays of tagged uncompressed points. Parsing
    validates every point's curve equation and every G2 point's r-order
    subgroup membership (the discipline of {!proof_of_bytes_exn});
    raises [Invalid_argument] on any failure, truncation, oversized
    array count or trailing bytes. The subgroup checks make parsing a
    large proving key O([num_vars]) G2 scalar multiplications — intended
    for key files and the proof service's disk cache, not a hot path. *)

val proving_key_to_bytes : proving_key -> Bytes.t
val proving_key_of_bytes_exn : Bytes.t -> proving_key
val verifying_key_to_bytes : verifying_key -> Bytes.t
val verifying_key_of_bytes_exn : Bytes.t -> verifying_key

(** {2 Fault injection}

    Single-component proof corruptions for the adversary harness
    ({!Zkvc_adversary}): replace, negate or identity-out each of A, B, C,
    or swap the two G1 points. Perturbations are group-structured so the
    mutated points remain valid curve/subgroup elements — a sound
    verifier must reject them in the pairing check, not in point
    validation. Test-only; never part of a proving flow. *)
module Mutate : sig
  type site =
    | A_bump  (** A := A + G1 generator *)
    | A_neg
    | A_identity
    | B_bump
    | B_neg
    | B_identity
    | C_bump
    | C_neg
    | C_identity
    | Swap_a_c

  val all : site list
  val site_name : site -> string

  (** Copy of the proof with exactly one component corrupted. *)
  val apply : site -> proof -> proof
end
