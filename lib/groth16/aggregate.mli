(** SnarkPack-style aggregation (Gailly–Maller–Nitulescu, FC 2022) of N
    Groth16 proofs under one verifying key into a single
    O(log N)-size proof.

    The aggregator commits to the A/B/C proof vectors with AFGHO pairing
    commitments whose structured keys are the τ-power SRSes of
    {!Zkvc_kzg.Kzg} (G2 powers for the A and C vectors, G1 powers for
    B), derives per-instance weights z_i = r^i by Fiat–Shamir from the
    key, statements and commitments, and proves the two inner products

    - TIPP: Z = Π e(A_i, z_i·B_i)   (the batched Groth16 left-hand side)
    - MIPP: C_agg = Σ z_i·C_i       (the batched C term)

    by a GIPA recursion of log N halving rounds. The verifier folds the
    GT commitments through the rounds, checks the final single-element
    relations with a constant number of pairings, validates the claimed
    folded commitment keys with one KZG opening each (their coefficient
    vectors are the structured polynomials Π (1 + c_j·X^{2^{k−1−j}}),
    evaluable in O(log N)), and finally checks the aggregated Groth16
    equation Z = e(α,β)^{Σz_i} · e(Σ z_i·IC(io_i), γ) · e(C_agg, δ).

    Soundness rests on the algebraic binding of the AFGHO commitments
    under q-type assumptions in the two-trapdoor SRS; unlike full
    SnarkPack this implementation uses single commitment keys per group
    (see DESIGN.md). The SRS trapdoors must be unknown to the
    aggregator — setup is a local powers-of-tau ceremony. *)

module Fr = Zkvc_field.Fr

(** Two independent-trapdoor KZG SRSes (a: G2 side, b: G1 side). *)
type srs

(** [setup st ~max_proofs:n] supports aggregating up to [n] (rounded up
    to a power of two, minimum 2) proofs. Trapdoors are sampled from
    [st] and dropped. Raises [Invalid_argument] if [n < 2]. *)
val setup : Random.State.t -> max_proofs:int -> srs

(** Largest batch the SRS supports (a power of two). *)
val max_proofs : srs -> int

type proof

(** Wire size of the aggregate proof (grows with log N). *)
val proof_size_bytes : proof -> int

(** [aggregate srs vk instances] aggregates [(public_inputs, proof)]
    pairs sharing one verifying key. The batch is padded to a power of
    two by repeating the last instance. Aggregation does not verify the
    member proofs; an invalid member yields an aggregate proof that
    {!verify_aggregate} rejects. Raises [Invalid_argument] on an empty
    batch, a public-input arity mismatch, or a batch exceeding
    [max_proofs srs]. *)
val aggregate :
  srs -> Groth16.verifying_key -> (Fr.t list * Groth16.proof) list -> proof

(** [verify_aggregate srs vk ios proof] checks the aggregate proof
    against the statement list (same order as aggregation). O(log N)
    GT exponentiations, a constant number of pairings and one O(N)
    G1 pass over the statements. Raises [Invalid_argument] on an empty
    statement list; returns [false] on any count/shape mismatch or
    failed check. *)
val verify_aggregate :
  srs -> Groth16.verifying_key -> Fr.t list list -> proof -> bool

(** {2 Wire encoding}

    Length-prefixed binary blob: tagged uncompressed points (validated
    on parse: curve equations, G2 subgroup membership) and canonical
    384-byte GT elements. *)

val proof_to_bytes : proof -> Bytes.t

(** Parses {!proof_to_bytes} output; raises [Invalid_argument] on
    truncation, trailing bytes, invalid points or non-canonical field
    encodings. *)
val proof_of_bytes_exn : Bytes.t -> proof

(** {2 Fault injection}

    Single-component corruptions of an aggregate proof for the
    adversary harness. Every mutation produces a structurally valid
    proof (points stay on-curve and in-subgroup, GT elements stay in
    the target group), so rejection must come from the verification
    equations, not parsing. Test-only. *)
module Mutate : sig
  type site =
    | Comm_a  (** bump the A-vector commitment *)
    | Comm_b
    | Comm_c
    | Z0  (** bump the claimed batched pairing product *)
    | C_agg  (** bump the claimed aggregated C *)
    | Tipp_round of int  (** bump round [i]'s Z_L cross term *)
    | Tipp_final_a
    | Tipp_final_b
    | Tipp_final_v
    | Tipp_final_w
    | Tipp_v_wit  (** bump the v* KZG opening witness *)
    | Tipp_w_wit
    | Mipp_round of int  (** bump round [i]'s U_L cross term *)
    | Mipp_final_c
    | Mipp_final_v
    | Mipp_v_wit

  (** All sites applicable to this proof (round sites depend on N). *)
  val sites : proof -> site list

  val site_name : site -> string

  (** Copy of the proof with exactly one component corrupted. *)
  val apply : site -> proof -> proof
end
