module Fr = Zkvc_field.Fr
module Bigint = Zkvc_num.Bigint
module G1 = Zkvc_curve.G1
module G2 = Zkvc_curve.G2
module Fq12 = Zkvc_curve.Fq12
module Pairing = Zkvc_curve.Pairing
module Qap = Zkvc_qap.Qap.Make (Fr)
module Cs = Zkvc_r1cs.Constraint_system.Make (Fr)
module Msm_g1 = Zkvc_curve.Msm.Make (G1)
module Msm_g2 = Zkvc_curve.Msm.Make (G2)
module Fb_g1 = Zkvc_curve.Fixed_base.Make (G1)
module Fb_g2 = Zkvc_curve.Fixed_base.Make (G2)
module Span = Zkvc_obs.Span

type proving_key =
  { alpha_g1 : G1.t;
    beta_g1 : G1.t;
    beta_g2 : G2.t;
    delta_g1 : G1.t;
    delta_g2 : G2.t;
    a_query : G1.t array; (* per wire: A_j(tau)·G1 *)
    b_g1_query : G1.t array;
    b_g2_query : G2.t array;
    h_query : G1.t array; (* tau^i Z(tau)/delta · G1 *)
    l_query : G1.t array (* per aux wire: (beta A_j + alpha B_j + C_j)/delta · G1 *) }

type verifying_key =
  { vk_alpha_g1 : G1.t;
    vk_beta_g2 : G2.t;
    vk_gamma_g2 : G2.t;
    vk_delta_g2 : G2.t;
    vk_ic : G1.t array (* per public wire incl. constant: (beta A_j + alpha B_j + C_j)/gamma · G1 *) }

type proof = { a : G1.t; b : G2.t; c : G1.t }

let g1_bytes = 64 (* uncompressed affine: 2 × 32-byte Fq *)
let g2_bytes = 128

let proof_size_bytes (_ : proof) = (2 * g1_bytes) + g2_bytes

(* Wire format: tagged uncompressed points (see Weierstrass.to_bytes);
   3 tag bytes longer than the canonical 256-byte size reported above. *)
let proof_to_bytes p =
  Bytes.concat Bytes.empty [ G1.to_bytes p.a; G2.to_bytes p.b; G1.to_bytes p.c ]

let proof_of_bytes_exn bytes =
  let g1w = G1.size_in_bytes and g2w = G2.size_in_bytes in
  if Bytes.length bytes <> (2 * g1w) + g2w then
    invalid_arg "Groth16.proof_of_bytes_exn: length";
  let a = G1.of_bytes_exn (Bytes.sub bytes 0 g1w) in
  let b = G2.of_bytes_exn (Bytes.sub bytes g1w g2w) in
  let c = G1.of_bytes_exn (Bytes.sub bytes (g1w + g2w) g1w) in
  if not (G2.in_subgroup b) then
    invalid_arg "Groth16.proof_of_bytes_exn: B outside the r-order subgroup";
  { a; b; c }

(* Compressed wire format: 33 + 65 + 33 = 131 bytes. *)
let proof_to_bytes_compressed p =
  Bytes.concat Bytes.empty
    [ G1.to_bytes_compressed p.a; G2.to_bytes_compressed p.b; G1.to_bytes_compressed p.c ]

let proof_of_bytes_compressed_exn bytes =
  let g1w = G1.size_in_bytes_compressed and g2w = G2.size_in_bytes_compressed in
  if Bytes.length bytes <> (2 * g1w) + g2w then
    invalid_arg "Groth16.proof_of_bytes_compressed_exn: length";
  let a = G1.of_bytes_compressed_exn (Bytes.sub bytes 0 g1w) in
  let b = G2.of_bytes_compressed_exn (Bytes.sub bytes g1w g2w) in
  let c = G1.of_bytes_compressed_exn (Bytes.sub bytes (g1w + g2w) g1w) in
  { a; b; c }

let verifying_key_size_bytes vk =
  g1_bytes + (3 * g2_bytes) + (Array.length vk.vk_ic * g1_bytes)

(* ---- key wire encodings ----
   Length-prefixed point arrays over the tagged uncompressed point
   formats. Parsing validates every point's curve equation (via
   [of_bytes_exn]) and the r-order subgroup of every G2 point, matching
   the discipline of [proof_of_bytes_exn]. *)

let w_u32 buf n =
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (n land 0xff))

let w_g1 buf p = Buffer.add_bytes buf (G1.to_bytes p)
let w_g2 buf p = Buffer.add_bytes buf (G2.to_bytes p)

let w_g1_array buf a =
  w_u32 buf (Array.length a);
  Array.iter (w_g1 buf) a

let w_g2_array buf a =
  w_u32 buf (Array.length a);
  Array.iter (w_g2 buf) a

type cursor = { buf : Bytes.t; mutable pos : int }

let need what c n =
  if c.pos + n > Bytes.length c.buf then
    invalid_arg (Printf.sprintf "Groth16.%s: truncated input" what)

let r_u32 what c =
  need what c 4;
  let b i = Char.code (Bytes.get c.buf (c.pos + i)) in
  let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  c.pos <- c.pos + 4;
  n

let r_g1 what c =
  need what c G1.size_in_bytes;
  let p = G1.of_bytes_exn (Bytes.sub c.buf c.pos G1.size_in_bytes) in
  c.pos <- c.pos + G1.size_in_bytes;
  p

let r_g2 what c =
  need what c G2.size_in_bytes;
  let p = G2.of_bytes_exn (Bytes.sub c.buf c.pos G2.size_in_bytes) in
  if not (G2.in_subgroup p) then
    invalid_arg (Printf.sprintf "Groth16.%s: G2 point outside the r-order subgroup" what);
  c.pos <- c.pos + G2.size_in_bytes;
  p

let r_array what c width read =
  let n = r_u32 what c in
  if n > (Bytes.length c.buf - c.pos) / width then
    invalid_arg (Printf.sprintf "Groth16.%s: oversized array count" what);
  Array.init n (fun _ -> read what c)

let finished what c =
  if c.pos <> Bytes.length c.buf then
    invalid_arg (Printf.sprintf "Groth16.%s: trailing bytes" what)

let proving_key_to_bytes pk =
  let buf = Buffer.create (1 lsl 16) in
  w_g1 buf pk.alpha_g1;
  w_g1 buf pk.beta_g1;
  w_g2 buf pk.beta_g2;
  w_g1 buf pk.delta_g1;
  w_g2 buf pk.delta_g2;
  w_g1_array buf pk.a_query;
  w_g1_array buf pk.b_g1_query;
  w_g2_array buf pk.b_g2_query;
  w_g1_array buf pk.h_query;
  w_g1_array buf pk.l_query;
  Buffer.to_bytes buf

let proving_key_of_bytes_exn bytes =
  let what = "proving_key_of_bytes_exn" in
  let c = { buf = bytes; pos = 0 } in
  let alpha_g1 = r_g1 what c in
  let beta_g1 = r_g1 what c in
  let beta_g2 = r_g2 what c in
  let delta_g1 = r_g1 what c in
  let delta_g2 = r_g2 what c in
  let a_query = r_array what c G1.size_in_bytes r_g1 in
  let b_g1_query = r_array what c G1.size_in_bytes r_g1 in
  let b_g2_query = r_array what c G2.size_in_bytes r_g2 in
  let h_query = r_array what c G1.size_in_bytes r_g1 in
  let l_query = r_array what c G1.size_in_bytes r_g1 in
  finished what c;
  { alpha_g1; beta_g1; beta_g2; delta_g1; delta_g2; a_query; b_g1_query;
    b_g2_query; h_query; l_query }

let verifying_key_to_bytes vk =
  let buf = Buffer.create 1024 in
  w_g1 buf vk.vk_alpha_g1;
  w_g2 buf vk.vk_beta_g2;
  w_g2 buf vk.vk_gamma_g2;
  w_g2 buf vk.vk_delta_g2;
  w_g1_array buf vk.vk_ic;
  Buffer.to_bytes buf

let verifying_key_of_bytes_exn bytes =
  let what = "verifying_key_of_bytes_exn" in
  let c = { buf = bytes; pos = 0 } in
  let vk_alpha_g1 = r_g1 what c in
  let vk_beta_g2 = r_g2 what c in
  let vk_gamma_g2 = r_g2 what c in
  let vk_delta_g2 = r_g2 what c in
  let vk_ic = r_array what c G1.size_in_bytes r_g1 in
  finished what c;
  { vk_alpha_g1; vk_beta_g2; vk_gamma_g2; vk_delta_g2; vk_ic }

let rec nonzero st = let x = Fr.random st in if Fr.is_zero x then nonzero st else x

let setup st qap =
  let _tau, ev =
    Span.with_span "setup.qap_eval" (fun () ->
        let rec sample_tau () =
          let tau = nonzero st in
          match Qap.evaluate_at qap tau with
          | ev -> (tau, ev)
          | exception Invalid_argument _ -> sample_tau ()
        in
        sample_tau ())
  in
  let alpha = nonzero st
  and beta = nonzero st
  and gamma = nonzero st
  and delta = nonzero st in
  let gamma_inv = Fr.inv gamma and delta_inv = Fr.inv delta in
  let t1, t2 =
    Span.with_span "setup.fixed_base_tables" (fun () ->
        (Fb_g1.create G1.generator, Fb_g2.create G2.generator))
  in
  let g1 = Fb_g1.mul t1 and g2 = Fb_g2.mul t2 in
  let nv = Qap.num_vars qap in
  let ni = Qap.num_inputs qap in
  let beta_a_alpha_b_c j =
    Fr.add (Fr.add (Fr.mul beta ev.Qap.a_at.(j)) (Fr.mul alpha ev.Qap.b_at.(j))) ev.Qap.c_at.(j)
  in
  let pk =
    Span.with_span "setup.pk_queries" (fun () ->
        { alpha_g1 = g1 alpha;
          beta_g1 = g1 beta;
          beta_g2 = g2 beta;
          delta_g1 = g1 delta;
          delta_g2 = g2 delta;
          a_query = Array.init nv (fun j -> g1 ev.Qap.a_at.(j));
          b_g1_query = Array.init nv (fun j -> g1 ev.Qap.b_at.(j));
          b_g2_query = Array.init nv (fun j -> g2 ev.Qap.b_at.(j));
          h_query =
            Array.map
              (fun tp -> g1 (Fr.mul (Fr.mul tp ev.Qap.z_at) delta_inv))
              ev.Qap.tau_powers;
          l_query =
            Array.init (nv - ni - 1) (fun k ->
                g1 (Fr.mul (beta_a_alpha_b_c (ni + 1 + k)) delta_inv)) })
  in
  let vk =
    Span.with_span "setup.vk_ic" (fun () ->
        { vk_alpha_g1 = pk.alpha_g1;
          vk_beta_g2 = pk.beta_g2;
          vk_gamma_g2 = g2 gamma;
          vk_delta_g2 = pk.delta_g2;
          vk_ic = Array.init (ni + 1) (fun j -> g1 (Fr.mul (beta_a_alpha_b_c j) gamma_inv)) })
  in
  (pk, vk)

(* The per-phase spans below mirror the paper's prover cost model: one
   witness-quotient computation (coset NTTs) and five MSMs. *)
let prove st pk qap assignment =
  let nv = Qap.num_vars qap in
  if Array.length assignment <> nv then invalid_arg "Groth16.prove: assignment length";
  let ni = Qap.num_inputs qap in
  let r = Fr.random st and s = Fr.random st in
  let h = Span.with_span "prove.h_coeffs" (fun () -> Qap.h_coeffs qap assignment) in
  let msm_a =
    Span.with_span "prove.msm_a" (fun () -> Msm_g1.msm pk.a_query assignment)
  in
  let a = G1.add pk.alpha_g1 (G1.add msm_a (G1.mul_fr pk.delta_g1 r)) in
  let msm_b2 =
    Span.with_span "prove.msm_b_g2" (fun () -> Msm_g2.msm pk.b_g2_query assignment)
  in
  let b2 = G2.add pk.beta_g2 (G2.add msm_b2 (G2.mul_fr pk.delta_g2 s)) in
  let msm_b1 =
    Span.with_span "prove.msm_b_g1" (fun () -> Msm_g1.msm pk.b_g1_query assignment)
  in
  let b1 = G1.add pk.beta_g1 (G1.add msm_b1 (G1.mul_fr pk.delta_g1 s)) in
  let aux = Array.sub assignment (ni + 1) (nv - ni - 1) in
  let c =
    let l_part = Span.with_span "prove.msm_l" (fun () -> Msm_g1.msm pk.l_query aux) in
    let h_part = Span.with_span "prove.msm_h" (fun () -> Msm_g1.msm pk.h_query h) in
    G1.add
      (G1.add l_part h_part)
      (G1.add
         (G1.add (G1.mul_fr a s) (G1.mul_fr b1 r))
         (G1.neg (G1.mul_fr pk.delta_g1 (Fr.mul r s))))
  in
  { a; b = b2; c }

(* Read-only component accessors for protocols layered on top of plain
   verification (the SnarkPack-style aggregator in Aggregate). *)
let vk_alpha vk = vk.vk_alpha_g1
let vk_beta vk = vk.vk_beta_g2
let vk_gamma vk = vk.vk_gamma_g2
let vk_delta vk = vk.vk_delta_g2
let vk_num_inputs vk = Array.length vk.vk_ic - 1

let ic_sum vk public_inputs =
  List.fold_left
    (fun (acc, j) x -> (G1.add acc (G1.mul_fr vk.vk_ic.(j) x), j + 1))
    (vk.vk_ic.(0), 1) public_inputs
  |> fst

(* Batch verification: with random weights z_i, the k pairing equations
   collapse into (k + 3) Miller loops sharing one final exponentiation:
     Π e(−z_i·A_i, B_i) · e((Σz_i)·α, β) · e(Σ z_i·IC_i, γ)
       · e(Σ z_i·C_i, δ) = 1.
   Weights are derived by Fiat–Shamir from the statements and proofs, so
   no trusted randomness is needed.

   The result distinguishes structurally malformed instances (wrong
   public-input arity for this key — reported by index, cheap to detect,
   and attributable to a specific submitter) from honest cryptographic
   rejection (some weighted combination failed; the batch says nothing
   about which member without a per-item retry). An empty batch has no
   sound verdict — "all zero members verified" is exactly the vacuous
   acceptance this API used to ship — so it is a caller error. *)
type batch_result =
  | Batch_accepted
  | Batch_rejected
  | Batch_malformed of int list

let malformed_indices ~arity_of instances =
  let _, bad =
    List.fold_left
      (fun (i, acc) inst -> (i + 1, if arity_of inst then acc else i :: acc))
      (0, []) instances
  in
  List.rev bad

let verify_batch vk instances =
  if instances = [] then invalid_arg "Groth16.verify_batch: empty batch";
  let expected = Array.length vk.vk_ic - 1 in
  match
    malformed_indices ~arity_of:(fun (io, _) -> List.length io = expected) instances
  with
  | _ :: _ as bad -> Batch_malformed bad
  | [] ->
    let module T = Zkvc_transcript.Transcript in
    let module Ch = T.Challenge (Fr) in
    let tr = T.create ~label:"zkvc.groth16.batch" in
    List.iter
      (fun (io, proof) ->
        Ch.absorb_list tr ~label:"io" io;
        T.absorb_bytes tr ~label:"proof" (proof_to_bytes proof))
      instances;
    let weighted = List.map (fun inst -> (Ch.challenge tr ~label:"z", inst)) instances in
    let sum_g1 f =
      List.fold_left (fun acc (z, inst) -> G1.add acc (G1.mul_fr (f inst) z)) G1.zero weighted
    in
    let alpha_scale = List.fold_left (fun acc (z, _) -> Fr.add acc z) Fr.zero weighted in
    let pairs =
      List.map (fun (z, (_, proof)) -> (G1.neg (G1.mul_fr proof.a z), proof.b)) weighted
      @ [ (G1.mul_fr vk.vk_alpha_g1 alpha_scale, vk.vk_beta_g2);
          (sum_g1 (fun (io, _) -> ic_sum vk io), vk.vk_gamma_g2);
          (sum_g1 (fun (_, proof) -> proof.c), vk.vk_delta_g2) ]
    in
    if Fq12.is_one (Pairing.multi_pairing pairs) then Batch_accepted else Batch_rejected

let verify vk ~public_inputs proof =
  if List.length public_inputs <> Array.length vk.vk_ic - 1 then false
  else begin
    (* e(A,B) = e(alpha,beta) · e(ic,gamma) · e(C,delta)  ⇔
       e(-A,B) · e(alpha,beta) · e(ic,gamma) · e(C,delta) = 1 *)
    let ic = Span.with_span "verify.ic_sum" (fun () -> ic_sum vk public_inputs) in
    let check =
      Span.with_span "verify.pairing" (fun () ->
          Pairing.multi_pairing
            [ (G1.neg proof.a, proof.b);
              (vk.vk_alpha_g1, vk.vk_beta_g2);
              (ic, vk.vk_gamma_g2);
              (proof.c, vk.vk_delta_g2) ])
    in
    Fq12.is_one check
  end

(* Fault-injection sites for the adversary harness (lib/adversary): each
   site is one way to corrupt exactly one component of a proof. The
   perturbations are group-structured (add the generator / negate /
   replace with the identity) so the mutated points stay on the curve and
   in the right subgroup — the forgery must be caught by the pairing
   check itself, not by point validation. *)
module Mutate = struct
  type site =
    | A_bump
    | A_neg
    | A_identity
    | B_bump
    | B_neg
    | B_identity
    | C_bump
    | C_neg
    | C_identity
    | Swap_a_c

  let all =
    [ A_bump; A_neg; A_identity;
      B_bump; B_neg; B_identity;
      C_bump; C_neg; C_identity;
      Swap_a_c ]

  let site_name = function
    | A_bump -> "a+g"
    | A_neg -> "a.neg"
    | A_identity -> "a=0"
    | B_bump -> "b+g"
    | B_neg -> "b.neg"
    | B_identity -> "b=0"
    | C_bump -> "c+g"
    | C_neg -> "c.neg"
    | C_identity -> "c=0"
    | Swap_a_c -> "swap(a,c)"

  let apply site p =
    match site with
    | A_bump -> { p with a = G1.add p.a G1.generator }
    | A_neg -> { p with a = G1.neg p.a }
    | A_identity -> { p with a = G1.zero }
    | B_bump -> { p with b = G2.add p.b G2.generator }
    | B_neg -> { p with b = G2.neg p.b }
    | B_identity -> { p with b = G2.zero }
    | C_bump -> { p with c = G1.add p.c G1.generator }
    | C_neg -> { p with c = G1.neg p.c }
    | C_identity -> { p with c = G1.zero }
    | Swap_a_c -> { p with a = p.c; c = p.a }
end
