(* SnarkPack-style aggregation of N Groth16 proofs (Gailly–Maller–
   Nitulescu, FC 2022) into one logarithmic-size proof.

   With Fiat–Shamir weights z_i = r^i, the N verification equations
   collapse into one:

     Π e(A_i, B_i)^{z_i}
       = e(α, β)^{Σ z_i} · e(Σ z_i·IC_i, γ) · e(Σ z_i·C_i, δ).

   The verifier can compute the right-hand side itself in O(N) G1 work
   (it holds the statements), but the left-hand side and the aggregated
   C involve data only the aggregator holds. So the aggregator commits
   to the A/B/C proof vectors with structured AFGHO pairing commitments
   whose keys are KZG τ-power SRSes:

     v_i = a^i·G2   (commits G1 vectors:  T = Π e(X_i, v_i))
     w_i = b^i·G1   (commits G2 vectors:  S = Π e(w_i, Y_i))

   and proves, by a GIPA recursion of log N rounds:
   - TIPP: Z = Π e(A_i, B̂_i) against commitments T_A, S_B, with the
     weights folded into B̂_i = z_i·B_i and the key rescaled
     ŵ_i = z_i⁻¹·w_i so that S_B is unchanged;
   - MIPP: C_agg = Σ z_i·C_i against commitment T_C.

   Each round halves the vectors and emits cross terms. The final
   single-element checks need the folded commitment keys v*, ŵ*, which
   the verifier cannot compute in O(log N) — but their coefficient
   vectors are structured: with round challenges x_j,

     f_v(X) = Π_j (1 + x_j⁻¹ · X^{2^{k−1−j}})
     f_w(X) = Π_j (1 + x_j · r^{−2^{k−1−j}} · X^{2^{k−1−j}})

   so v* = f_v(a)·G2 IS the KZG commitment of f_v under the G2 SRS, and
   one KZG opening at a Fiat–Shamir point ρ (against the value f_v(ρ),
   which the verifier computes itself in O(log N)) proves the claimed
   v* well-formed. This is where the existing lib/kzg layer is reused,
   on both its G1 and G2 sides.

   Verifier cost: O(log N) GT exponentiations, a constant number of
   pairings (3 TIPP finals + 1 MIPP final + 3 KZG openings at 2
   pairings each + the final 3-term Groth16 multi-pairing) and one O(N)
   ic_sum pass — versus 4N Miller loops for N independent checks.

   Simplification vs the paper: single commitment keys per group
   instead of SnarkPack's double-key commitments (computationally
   binding under q-type assumptions rather than extractable), and the
   trusted setup is a locally sampled two-trapdoor SRS (stood in for by
   a seed at the CLI). See DESIGN.md. *)

module Fr = Zkvc_field.Fr
module G1 = Zkvc_curve.G1
module G2 = Zkvc_curve.G2
module Fq12 = Zkvc_curve.Fq12
module Pairing = Zkvc_curve.Pairing
module Msm_g1 = Zkvc_curve.Msm.Make (G1)
module Kzg = Zkvc_kzg.Kzg
module T = Zkvc_transcript.Transcript
module Ch = T.Challenge (Fr)
module Span = Zkvc_obs.Span

type srs =
  { srs_a : Kzg.srs_g2; (* trapdoor a: v-keys + final-v KZG checks *)
    srs_b : Kzg.srs (* trapdoor b: w-keys + final-w KZG check *) }

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let max_proofs srs =
  min (Kzg.max_degree_g2 srs.srs_a + 1) (Kzg.max_degree srs.srs_b + 1)

let setup st ~max_proofs:n =
  if n < 2 then invalid_arg "Aggregate.setup: need max_proofs >= 2";
  let n = next_pow2 n in
  { srs_a = Kzg.setup_g2 st ~degree:(n - 1); srs_b = Kzg.setup st ~degree:(n - 1) }

type tipp_round =
  { zl : Fq12.t;
    zr : Fq12.t;
    tl : Fq12.t;
    tr : Fq12.t;
    sl : Fq12.t;
    sr : Fq12.t }

type mipp_round =
  { mtl : Fq12.t;
    mtr : Fq12.t;
    ul : G1.t;
    ur : G1.t }

type proof =
  { agg_n : int; (* unpadded instance count *)
    comm_a : Fq12.t;
    comm_b : Fq12.t;
    comm_c : Fq12.t;
    z0 : Fq12.t; (* claimed Π e(A_i, B̂_i) *)
    c_agg : G1.t; (* claimed Σ z_i·C_i *)
    tipp_rounds : tipp_round array;
    tipp_a : G1.t; (* folded A* *)
    tipp_b : G2.t; (* folded B̂* *)
    tipp_v : G2.t; (* claimed folded key v* *)
    tipp_w : G1.t; (* claimed folded key ŵ* *)
    tipp_v_wit : G2.t; (* KZG witness: v* opens to f_v(ρ) at ρ *)
    tipp_w_wit : G1.t; (* KZG witness: ŵ* opens to f_w(ρ) at ρ *)
    mipp_rounds : mipp_round array;
    mipp_c : G1.t; (* folded C* *)
    mipp_v : G2.t; (* claimed folded key (MIPP challenges) *)
    mipp_v_wit : G2.t }

(* ---- shared helpers ---- *)

let gt_pow g x = Fq12.pow g (Fr.to_bigint x)

let absorb_gt tr ~label g = T.absorb_bytes tr ~label (Fq12.to_bytes g)

let rec nonzero_challenge tr ~label =
  let x = Ch.challenge tr ~label in
  if Fr.is_zero x then nonzero_challenge tr ~label else x

(* weights z_i = r^i, i = 0..n-1 *)
let powers_of r n =
  let acc = ref Fr.one in
  Array.init n (fun i ->
      if i > 0 then acc := Fr.mul !acc r;
      !acc)

(* Π_{j=0..k-1} (1 + c_j · X^{2^{k-1-j}}) as dense coefficients of
   length 2^k. The monomials pick disjoint subsets of the shifts, so
   supports never collide and the shift-adds are order-independent. *)
let fold_poly ~k coeff =
  let n = 1 lsl k in
  let c = Array.make n Fr.zero in
  c.(0) <- Fr.one;
  for j = 0 to k - 1 do
    let shift = 1 lsl (k - 1 - j) in
    let cj = coeff j in
    for i = n - 1 - shift downto 0 do
      if not (Fr.is_zero c.(i)) then c.(i + shift) <- Fr.add c.(i + shift) (Fr.mul cj c.(i))
    done
  done;
  c

(* The same product evaluated directly at x, O(k). *)
let fold_eval ~k coeff x =
  let pows = Array.make (max k 1) x in
  for i = 1 to k - 1 do
    pows.(i) <- Fr.sqr pows.(i - 1)
  done;
  let acc = ref Fr.one in
  for j = 0 to k - 1 do
    acc := Fr.mul !acc (Fr.add Fr.one (Fr.mul (coeff j) pows.(k - 1 - j)))
  done;
  !acc

(* The transcript binds only verifier-visible data: the key, the
   statements and (as the protocol proceeds) the vector commitments —
   never the individual proofs, which the verifier does not hold. *)
let transcript_begin vk ios =
  let tr = T.create ~label:"zkvc.groth16.aggregate" in
  T.absorb_bytes tr ~label:"vk" (Groth16.verifying_key_to_bytes vk);
  T.absorb_int tr ~label:"n" (List.length ios);
  List.iter (fun io -> Ch.absorb_list tr ~label:"io" io) ios;
  tr

(* Pad a list to the next power of two (>= 2) by repeating its last
   element. The verifier pads the statement list the same way, so each
   padded slot is a real (statement, proof) pair counted twice —
   harmless for soundness, and it keeps the GIPA recursion on exact
   halves. *)
let pad_pow2 xs =
  match List.rev xs with
  | [] -> invalid_arg "Aggregate.pad_pow2: empty"
  | last :: _ ->
    let n = List.length xs in
    let m = max 2 (next_pow2 n) in
    let arr = Array.make m last in
    List.iteri (fun i x -> arr.(i) <- x) xs;
    arr

let log2_exact n =
  let rec go i = if 1 lsl i >= n then i else go (i + 1) in
  go 1

let halves a =
  let h = Array.length a / 2 in
  (Array.sub a 0 h, Array.sub a h h)

let fold_points add mul x l r =
  Array.init (Array.length l) (fun i -> add l.(i) (mul r.(i) x))

let pair_up xs ys = Array.to_list (Array.map2 (fun x y -> (x, y)) xs ys)

(* ---- aggregation (prover side) ---- *)

let aggregate srs vk instances =
  if instances = [] then invalid_arg "Aggregate.aggregate: empty batch";
  let agg_n = List.length instances in
  let expected_io = Groth16.vk_num_inputs vk in
  List.iter
    (fun (io, _) ->
      if List.length io <> expected_io then
        invalid_arg "Aggregate.aggregate: public-input arity mismatch")
    instances;
  let padded = pad_pow2 instances in
  let n = Array.length padded in
  if n > max_proofs srs then invalid_arg "Aggregate.aggregate: batch exceeds SRS size";
  let k = log2_exact n in
  let a_vec = Array.map (fun (_, p) -> p.Groth16.a) padded in
  let b_vec = Array.map (fun (_, p) -> p.Groth16.b) padded in
  let c_vec = Array.map (fun (_, p) -> p.Groth16.c) padded in
  let v_key = Array.sub (Kzg.powers_g2 srs.srs_a) 0 n in
  let w_key = Array.sub (Kzg.powers srs.srs_b) 0 n in
  (* AFGHO commitments to the proof vectors; independent of r, absorbed
     before r is drawn so the weights bind the committed vectors *)
  let comm_a, comm_b, comm_c =
    Span.with_span "aggregate.commit" (fun () ->
        ( Pairing.multi_pairing (pair_up a_vec v_key),
          Pairing.multi_pairing (pair_up w_key b_vec),
          Pairing.multi_pairing (pair_up c_vec v_key) ))
  in
  let tr = transcript_begin vk (List.map fst instances) in
  absorb_gt tr ~label:"comm-a" comm_a;
  absorb_gt tr ~label:"comm-b" comm_b;
  absorb_gt tr ~label:"comm-c" comm_c;
  let r = nonzero_challenge tr ~label:"r" in
  let z = powers_of r n in
  let rinv = Fr.inv r in
  let zinv = powers_of rinv n in
  (* fold the weights into the B side; rescale the w-key so S_B stands *)
  let bh_vec = Array.mapi (fun i b -> G2.mul_fr b z.(i)) b_vec in
  let wh_key = Array.mapi (fun i w -> G1.mul_fr w zinv.(i)) w_key in
  let z0 =
    Span.with_span "aggregate.z0" (fun () ->
        Pairing.multi_pairing (pair_up a_vec bh_vec))
  in
  let c_agg = Msm_g1.msm c_vec z in
  absorb_gt tr ~label:"z0" z0;
  T.absorb_bytes tr ~label:"c-agg" (G1.to_bytes c_agg);
  (* TIPP recursion: prove Z = Π e(A_i, B̂_i) against T_A, S_B *)
  let tipp_rounds = ref [] and xs = ref [] in
  let a_cur = ref a_vec and bh_cur = ref bh_vec in
  let v_cur = ref v_key and wh_cur = ref wh_key in
  Span.with_span "aggregate.tipp" (fun () ->
      while Array.length !a_cur > 1 do
        let al, ar = halves !a_cur in
        let bl, br = halves !bh_cur in
        let vl, vr = halves !v_cur in
        let wl, wr = halves !wh_cur in
        let zl = Pairing.multi_pairing (pair_up ar bl) in
        let zr = Pairing.multi_pairing (pair_up al br) in
        let tl = Pairing.multi_pairing (pair_up ar vl) in
        let tr_ = Pairing.multi_pairing (pair_up al vr) in
        let sl = Pairing.multi_pairing (pair_up wr bl) in
        let sr = Pairing.multi_pairing (pair_up wl br) in
        absorb_gt tr ~label:"tipp-zl" zl;
        absorb_gt tr ~label:"tipp-zr" zr;
        absorb_gt tr ~label:"tipp-tl" tl;
        absorb_gt tr ~label:"tipp-tr" tr_;
        absorb_gt tr ~label:"tipp-sl" sl;
        absorb_gt tr ~label:"tipp-sr" sr;
        let x = nonzero_challenge tr ~label:"x" in
        let xinv = Fr.inv x in
        (* A' = A_L + x·A_R; B̂' = B̂_L + x⁻¹·B̂_R; v' = v_L + x⁻¹·v_R;
           ŵ' = ŵ_L + x·ŵ_R *)
        a_cur := fold_points G1.add G1.mul_fr x al ar;
        bh_cur := fold_points G2.add G2.mul_fr xinv bl br;
        v_cur := fold_points G2.add G2.mul_fr xinv vl vr;
        wh_cur := fold_points G1.add G1.mul_fr x wl wr;
        tipp_rounds := { zl; zr; tl; tr = tr_; sl; sr } :: !tipp_rounds;
        xs := x :: !xs
      done);
  let tipp_rounds = Array.of_list (List.rev !tipp_rounds) in
  let xs = Array.of_list (List.rev !xs) in
  let tipp_a = !a_cur.(0) and tipp_b = !bh_cur.(0) in
  let tipp_v = !v_cur.(0) and tipp_w = !wh_cur.(0) in
  T.absorb_bytes tr ~label:"tipp-a" (G1.to_bytes tipp_a);
  T.absorb_bytes tr ~label:"tipp-b" (G2.to_bytes tipp_b);
  T.absorb_bytes tr ~label:"tipp-v" (G2.to_bytes tipp_v);
  T.absorb_bytes tr ~label:"tipp-w" (G1.to_bytes tipp_w);
  (* MIPP recursion: prove C_agg = Σ z_i·C_i against T_C *)
  let mipp_rounds = ref [] and ys = ref [] in
  let c_cur = ref c_vec and z_cur = ref z and v2_cur = ref v_key in
  Span.with_span "aggregate.mipp" (fun () ->
      while Array.length !c_cur > 1 do
        let cl, cr = halves !c_cur in
        let zls, zrs = halves !z_cur in
        let vl, vr = halves !v2_cur in
        let mtl = Pairing.multi_pairing (pair_up cr vl) in
        let mtr = Pairing.multi_pairing (pair_up cl vr) in
        let ul = Msm_g1.msm cr zls in
        let ur = Msm_g1.msm cl zrs in
        absorb_gt tr ~label:"mipp-tl" mtl;
        absorb_gt tr ~label:"mipp-tr" mtr;
        T.absorb_bytes tr ~label:"mipp-ul" (G1.to_bytes ul);
        T.absorb_bytes tr ~label:"mipp-ur" (G1.to_bytes ur);
        let y = nonzero_challenge tr ~label:"y" in
        let yinv = Fr.inv y in
        (* C' = C_L + y·C_R; z' = z_L + y⁻¹·z_R; v' = v_L + y⁻¹·v_R *)
        c_cur := fold_points G1.add G1.mul_fr y cl cr;
        z_cur := Array.map2 (fun l r' -> Fr.add l (Fr.mul yinv r')) zls zrs;
        v2_cur := fold_points G2.add G2.mul_fr yinv vl vr;
        mipp_rounds := { mtl; mtr; ul; ur } :: !mipp_rounds;
        ys := y :: !ys
      done);
  let mipp_rounds = Array.of_list (List.rev !mipp_rounds) in
  let ys = Array.of_list (List.rev !ys) in
  let mipp_c = !c_cur.(0) and mipp_v = !v2_cur.(0) in
  T.absorb_bytes tr ~label:"mipp-c" (G1.to_bytes mipp_c);
  T.absorb_bytes tr ~label:"mipp-v" (G2.to_bytes mipp_v);
  let rho = Ch.challenge tr ~label:"rho" in
  (* KZG openings of the three structured key polynomials at ρ *)
  let rinv_pows = Array.make k rinv in
  for i = 1 to k - 1 do
    rinv_pows.(i) <- Fr.mul rinv_pows.(i - 1) rinv_pows.(i - 1)
  done;
  let f_v = fold_poly ~k (fun j -> Fr.inv xs.(j)) in
  let f_w = fold_poly ~k (fun j -> Fr.mul xs.(j) rinv_pows.(k - 1 - j)) in
  let f_vm = fold_poly ~k (fun j -> Fr.inv ys.(j)) in
  let v_op, w_op, vm_op =
    Span.with_span "aggregate.kzg_open" (fun () ->
        ( Kzg.open_at_g2 srs.srs_a (Kzg.P.of_coeffs f_v) rho,
          Kzg.open_at srs.srs_b (Kzg.P.of_coeffs f_w) rho,
          Kzg.open_at_g2 srs.srs_a (Kzg.P.of_coeffs f_vm) rho ))
  in
  { agg_n;
    comm_a;
    comm_b;
    comm_c;
    z0;
    c_agg;
    tipp_rounds;
    tipp_a;
    tipp_b;
    tipp_v;
    tipp_w;
    tipp_v_wit = v_op.Kzg.witness_g2;
    tipp_w_wit = w_op.Kzg.witness;
    mipp_rounds;
    mipp_c;
    mipp_v;
    mipp_v_wit = vm_op.Kzg.witness_g2 }

(* ---- verification ---- *)

let verify_aggregate srs vk ios proof =
  if ios = [] then invalid_arg "Aggregate.verify_aggregate: empty statement list";
  let expected_io = Groth16.vk_num_inputs vk in
  if proof.agg_n <> List.length ios then false
  else if List.exists (fun io -> List.length io <> expected_io) ios then false
  else begin
    let padded_ios = pad_pow2 ios in
    let n = Array.length padded_ios in
    if n > max_proofs srs then false
    else begin
      let k = log2_exact n in
      if Array.length proof.tipp_rounds <> k || Array.length proof.mipp_rounds <> k
      then false
      else begin
        let tr = transcript_begin vk ios in
        absorb_gt tr ~label:"comm-a" proof.comm_a;
        absorb_gt tr ~label:"comm-b" proof.comm_b;
        absorb_gt tr ~label:"comm-c" proof.comm_c;
        let r = nonzero_challenge tr ~label:"r" in
        absorb_gt tr ~label:"z0" proof.z0;
        T.absorb_bytes tr ~label:"c-agg" (G1.to_bytes proof.c_agg);
        (* replay TIPP: fold the three GT targets with each challenge *)
        let zf = ref proof.z0 and tf = ref proof.comm_a and sf = ref proof.comm_b in
        let xs = Array.make k Fr.zero in
        Span.with_span "verify_aggregate.tipp_fold" (fun () ->
            Array.iteri
              (fun j rd ->
                absorb_gt tr ~label:"tipp-zl" rd.zl;
                absorb_gt tr ~label:"tipp-zr" rd.zr;
                absorb_gt tr ~label:"tipp-tl" rd.tl;
                absorb_gt tr ~label:"tipp-tr" rd.tr;
                absorb_gt tr ~label:"tipp-sl" rd.sl;
                absorb_gt tr ~label:"tipp-sr" rd.sr;
                let x = nonzero_challenge tr ~label:"x" in
                let xinv = Fr.inv x in
                xs.(j) <- x;
                zf := Fq12.mul (gt_pow rd.zl x) (Fq12.mul !zf (gt_pow rd.zr xinv));
                tf := Fq12.mul (gt_pow rd.tl x) (Fq12.mul !tf (gt_pow rd.tr xinv));
                sf := Fq12.mul (gt_pow rd.sl x) (Fq12.mul !sf (gt_pow rd.sr xinv)))
              proof.tipp_rounds);
        T.absorb_bytes tr ~label:"tipp-a" (G1.to_bytes proof.tipp_a);
        T.absorb_bytes tr ~label:"tipp-b" (G2.to_bytes proof.tipp_b);
        T.absorb_bytes tr ~label:"tipp-v" (G2.to_bytes proof.tipp_v);
        T.absorb_bytes tr ~label:"tipp-w" (G1.to_bytes proof.tipp_w);
        (* replay MIPP: fold T_C in GT and the aggregate in G1 *)
        let mtf = ref proof.comm_c and uf = ref proof.c_agg in
        let ys = Array.make k Fr.zero in
        Span.with_span "verify_aggregate.mipp_fold" (fun () ->
            Array.iteri
              (fun j rd ->
                absorb_gt tr ~label:"mipp-tl" rd.mtl;
                absorb_gt tr ~label:"mipp-tr" rd.mtr;
                T.absorb_bytes tr ~label:"mipp-ul" (G1.to_bytes rd.ul);
                T.absorb_bytes tr ~label:"mipp-ur" (G1.to_bytes rd.ur);
                let y = nonzero_challenge tr ~label:"y" in
                let yinv = Fr.inv y in
                ys.(j) <- y;
                mtf := Fq12.mul (gt_pow rd.mtl y) (Fq12.mul !mtf (gt_pow rd.mtr yinv));
                uf := G1.add (G1.mul_fr rd.ul y) (G1.add !uf (G1.mul_fr rd.ur yinv)))
              proof.mipp_rounds);
        T.absorb_bytes tr ~label:"mipp-c" (G1.to_bytes proof.mipp_c);
        T.absorb_bytes tr ~label:"mipp-v" (G2.to_bytes proof.mipp_v);
        let rho = Ch.challenge tr ~label:"rho" in
        let rinv = Fr.inv r in
        let rinv_pows = Array.make k rinv in
        for i = 1 to k - 1 do
          rinv_pows.(i) <- Fr.sqr rinv_pows.(i - 1)
        done;
        let f_v_rho = fold_eval ~k (fun j -> Fr.inv xs.(j)) rho in
        let f_w_rho = fold_eval ~k (fun j -> xs.(j)) (Fr.mul rho rinv) in
        let f_vm_rho = fold_eval ~k (fun j -> Fr.inv ys.(j)) rho in
        (* z* = Π (1 + y_j⁻¹·r^{2^{k−1−j}}) — the folded weight vector *)
        let z_star = fold_eval ~k (fun j -> Fr.inv ys.(j)) r in
        (* structured-key checks: one KZG opening per claimed final key *)
        let keys_ok =
          Span.with_span "verify_aggregate.kzg" (fun () ->
              Kzg.verify_g2 srs.srs_a proof.tipp_v
                { Kzg.point_g2 = rho; value_g2 = f_v_rho; witness_g2 = proof.tipp_v_wit }
              && Kzg.verify srs.srs_b proof.tipp_w
                   { Kzg.point = rho; value = f_w_rho; witness = proof.tipp_w_wit }
              && Kzg.verify_g2 srs.srs_a proof.mipp_v
                   { Kzg.point_g2 = rho; value_g2 = f_vm_rho; witness_g2 = proof.mipp_v_wit })
        in
        if not keys_ok then false
        else begin
          (* GIPA finals *)
          let finals_ok =
            Span.with_span "verify_aggregate.finals" (fun () ->
                Fq12.equal (Pairing.pairing proof.tipp_a proof.tipp_b) !zf
                && Fq12.equal (Pairing.pairing proof.tipp_a proof.tipp_v) !tf
                && Fq12.equal (Pairing.pairing proof.tipp_w proof.tipp_b) !sf
                && Fq12.equal (Pairing.pairing proof.mipp_c proof.mipp_v) !mtf
                && G1.equal !uf (G1.mul_fr proof.mipp_c z_star))
          in
          if not finals_ok then false
          else begin
            (* the aggregated Groth16 equation itself *)
            let z = powers_of r n in
            let sum_z = Array.fold_left Fr.add Fr.zero z in
            let ic_agg =
              Span.with_span "verify_aggregate.ic_agg" (fun () ->
                  let acc = ref G1.zero in
                  Array.iteri
                    (fun i io ->
                      acc := G1.add !acc (G1.mul_fr (Groth16.ic_sum vk io) z.(i)))
                    padded_ios;
                  !acc)
            in
            let rhs =
              Span.with_span "verify_aggregate.final_pairing" (fun () ->
                  Pairing.multi_pairing
                    [ (G1.mul_fr (Groth16.vk_alpha vk) sum_z, Groth16.vk_beta vk);
                      (ic_agg, Groth16.vk_gamma vk);
                      (proof.c_agg, Groth16.vk_delta vk) ])
            in
            Fq12.equal proof.z0 rhs
          end
        end
      end
    end
  end

(* ---- wire encoding ----
   Same discipline as Groth16's codecs: length prefixes, tagged
   uncompressed points validated on parse (curve equation + G2
   subgroup), canonical 384-byte GT elements (limb canonicity checked;
   GT subgroup membership is not cheaply checkable and is not assumed —
   the verification equations hold or fail regardless). *)

let w_u32 buf n =
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (n land 0xff))

let proof_to_bytes p =
  let buf = Buffer.create (1 lsl 14) in
  let gt g = Buffer.add_bytes buf (Fq12.to_bytes g) in
  let g1 x = Buffer.add_bytes buf (G1.to_bytes x) in
  let g2 x = Buffer.add_bytes buf (G2.to_bytes x) in
  w_u32 buf p.agg_n;
  gt p.comm_a;
  gt p.comm_b;
  gt p.comm_c;
  gt p.z0;
  g1 p.c_agg;
  w_u32 buf (Array.length p.tipp_rounds);
  Array.iter
    (fun rd -> gt rd.zl; gt rd.zr; gt rd.tl; gt rd.tr; gt rd.sl; gt rd.sr)
    p.tipp_rounds;
  g1 p.tipp_a;
  g2 p.tipp_b;
  g2 p.tipp_v;
  g1 p.tipp_w;
  g2 p.tipp_v_wit;
  g1 p.tipp_w_wit;
  Array.iter (fun rd -> gt rd.mtl; gt rd.mtr; g1 rd.ul; g1 rd.ur) p.mipp_rounds;
  g1 p.mipp_c;
  g2 p.mipp_v;
  g2 p.mipp_v_wit;
  Buffer.to_bytes buf

let proof_size_bytes p = Bytes.length (proof_to_bytes p)

type cursor = { buf : Bytes.t; mutable pos : int }

let need what c n =
  if c.pos + n > Bytes.length c.buf then
    invalid_arg (Printf.sprintf "Aggregate.%s: truncated input" what)

let r_u32 what c =
  need what c 4;
  let b i = Char.code (Bytes.get c.buf (c.pos + i)) in
  let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  c.pos <- c.pos + 4;
  n

let r_gt what c =
  need what c Fq12.size_in_bytes;
  let g = Fq12.of_bytes_exn (Bytes.sub c.buf c.pos Fq12.size_in_bytes) in
  c.pos <- c.pos + Fq12.size_in_bytes;
  g

let r_g1 what c =
  need what c G1.size_in_bytes;
  let p = G1.of_bytes_exn (Bytes.sub c.buf c.pos G1.size_in_bytes) in
  c.pos <- c.pos + G1.size_in_bytes;
  p

let r_g2 what c =
  need what c G2.size_in_bytes;
  let p = G2.of_bytes_exn (Bytes.sub c.buf c.pos G2.size_in_bytes) in
  if not (G2.in_subgroup p) then
    invalid_arg (Printf.sprintf "Aggregate.%s: G2 point outside the r-order subgroup" what);
  c.pos <- c.pos + G2.size_in_bytes;
  p

let proof_of_bytes_exn bytes =
  let what = "proof_of_bytes_exn" in
  let c = { buf = bytes; pos = 0 } in
  let agg_n = r_u32 what c in
  let comm_a = r_gt what c in
  let comm_b = r_gt what c in
  let comm_c = r_gt what c in
  let z0 = r_gt what c in
  let c_agg = r_g1 what c in
  let k = r_u32 what c in
  if k > 32 then invalid_arg (Printf.sprintf "Aggregate.%s: oversized round count" what);
  let tipp_rounds =
    Array.init k (fun _ ->
        let zl = r_gt what c in
        let zr = r_gt what c in
        let tl = r_gt what c in
        let tr = r_gt what c in
        let sl = r_gt what c in
        let sr = r_gt what c in
        { zl; zr; tl; tr; sl; sr })
  in
  let tipp_a = r_g1 what c in
  let tipp_b = r_g2 what c in
  let tipp_v = r_g2 what c in
  let tipp_w = r_g1 what c in
  let tipp_v_wit = r_g2 what c in
  let tipp_w_wit = r_g1 what c in
  let mipp_rounds =
    Array.init k (fun _ ->
        let mtl = r_gt what c in
        let mtr = r_gt what c in
        let ul = r_g1 what c in
        let ur = r_g1 what c in
        { mtl; mtr; ul; ur })
  in
  let mipp_c = r_g1 what c in
  let mipp_v = r_g2 what c in
  let mipp_v_wit = r_g2 what c in
  if c.pos <> Bytes.length bytes then
    invalid_arg (Printf.sprintf "Aggregate.%s: trailing bytes" what);
  { agg_n; comm_a; comm_b; comm_c; z0; c_agg; tipp_rounds; tipp_a; tipp_b;
    tipp_v; tipp_w; tipp_v_wit; tipp_w_wit; mipp_rounds; mipp_c; mipp_v;
    mipp_v_wit }

(* ---- fault-injection sites for the adversary harness ----
   GT components are bumped multiplicatively by e(G1, G2) (a valid GT
   element, so the mutation survives parsing); points additively by the
   group generator. Every mutated proof is structurally valid and must
   be rejected by the verification equations themselves. *)
module Mutate = struct
  type site =
    | Comm_a
    | Comm_b
    | Comm_c
    | Z0
    | C_agg
    | Tipp_round of int (* bump the round's Z_L cross term *)
    | Tipp_final_a
    | Tipp_final_b
    | Tipp_final_v
    | Tipp_final_w
    | Tipp_v_wit
    | Tipp_w_wit
    | Mipp_round of int (* bump the round's U_L cross term *)
    | Mipp_final_c
    | Mipp_final_v
    | Mipp_v_wit

  let site_name = function
    | Comm_a -> "comm_a"
    | Comm_b -> "comm_b"
    | Comm_c -> "comm_c"
    | Z0 -> "z0"
    | C_agg -> "c_agg"
    | Tipp_round i -> Printf.sprintf "tipp.round[%d].zl" i
    | Tipp_final_a -> "tipp.a"
    | Tipp_final_b -> "tipp.b"
    | Tipp_final_v -> "tipp.v"
    | Tipp_final_w -> "tipp.w"
    | Tipp_v_wit -> "tipp.v_wit"
    | Tipp_w_wit -> "tipp.w_wit"
    | Mipp_round i -> Printf.sprintf "mipp.round[%d].ul" i
    | Mipp_final_c -> "mipp.c"
    | Mipp_final_v -> "mipp.v"
    | Mipp_v_wit -> "mipp.v_wit"

  let sites p =
    [ Comm_a; Comm_b; Comm_c; Z0; C_agg ]
    @ List.init (Array.length p.tipp_rounds) (fun i -> Tipp_round i)
    @ [ Tipp_final_a; Tipp_final_b; Tipp_final_v; Tipp_final_w; Tipp_v_wit; Tipp_w_wit ]
    @ List.init (Array.length p.mipp_rounds) (fun i -> Mipp_round i)
    @ [ Mipp_final_c; Mipp_final_v; Mipp_v_wit ]

  let gt_bump g = Fq12.mul g (Pairing.pairing G1.generator G2.generator)
  let g1_bump p = G1.add p G1.generator
  let g2_bump p = G2.add p G2.generator

  let bump_at i f a = Array.mapi (fun j v -> if i = j then f v else v) a

  let apply site p =
    match site with
    | Comm_a -> { p with comm_a = gt_bump p.comm_a }
    | Comm_b -> { p with comm_b = gt_bump p.comm_b }
    | Comm_c -> { p with comm_c = gt_bump p.comm_c }
    | Z0 -> { p with z0 = gt_bump p.z0 }
    | C_agg -> { p with c_agg = g1_bump p.c_agg }
    | Tipp_round i ->
      { p with
        tipp_rounds = bump_at i (fun rd -> { rd with zl = gt_bump rd.zl }) p.tipp_rounds }
    | Tipp_final_a -> { p with tipp_a = g1_bump p.tipp_a }
    | Tipp_final_b -> { p with tipp_b = g2_bump p.tipp_b }
    | Tipp_final_v -> { p with tipp_v = g2_bump p.tipp_v }
    | Tipp_final_w -> { p with tipp_w = g1_bump p.tipp_w }
    | Tipp_v_wit -> { p with tipp_v_wit = g2_bump p.tipp_v_wit }
    | Tipp_w_wit -> { p with tipp_w_wit = g1_bump p.tipp_w_wit }
    | Mipp_round i ->
      { p with
        mipp_rounds = bump_at i (fun rd -> { rd with ul = g1_bump rd.ul }) p.mipp_rounds }
    | Mipp_final_c -> { p with mipp_c = g1_bump p.mipp_c }
    | Mipp_final_v -> { p with mipp_v = g2_bump p.mipp_v }
    | Mipp_v_wit -> { p with mipp_v_wit = g2_bump p.mipp_v_wit }
end
