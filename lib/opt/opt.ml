(** A keelung-style R1CS optimiser pipeline. See opt.mli for the pass
    catalogue, the canonical-layout invariants and the witness remap
    contract; this file is organised as

    - an affine union-find over wires (the substitution engine shared by
      constant folding and unification),
    - the four passes over a mutable row list,
    - final aux-wire compaction emitting the optimised system, the
      witness map and (with provenance) the rebuilt attribution tree.

    Satisfiability equivalence rests on one invariant: every relation the
    union-find learns ([w = k], [v = a·w + b]) comes from a constraint of
    the current system, and a row is only dropped when — after rewriting
    through those relations — it is an identity. Rewriting preserves each
    row's value at any assignment consistent with the learned relations,
    and [restore_witness] forces exactly those relations, so dropped rows
    hold at restored assignments by construction. A row that folds to a
    false constant equation is kept: the optimised system must reject
    whatever the original rejected. *)

module Obs = Zkvc_obs
module Attrib = Obs.Attrib

module Make (F : Zkvc_field.Field_intf.S) = struct
  module L = Zkvc_r1cs.Lc.Make (F)
  module Cs = Zkvc_r1cs.Constraint_system.Make (F)

  type config =
    { const_fold : bool;
      unify : bool;
      dce : bool;
      cse : bool;
      max_rounds : int }

  let default =
    { const_fold = true; unify = true; dce = true; cse = true; max_rounds = 8 }

  let config_tag c =
    let b v = if v then '1' else '0' in
    Printf.sprintf "cf%c-uf%c-dce%c-cse%c-r%d" (b c.const_fold) (b c.unify)
      (b c.dce) (b c.cse) c.max_rounds

  type provenance =
    { constraint_region : string array;
      wire_region : string array;
      tree : Attrib.t }

  type witness_map =
    { n_orig : int;
      n_opt : int;
      expand : (int * F.t) list array; (* per optimised wire, over original *)
      restore : (int * F.t) list array (* per original wire, over optimised *) }

  let original_vars m = m.n_orig
  let optimized_vars m = m.n_opt

  let eval_terms terms z =
    List.fold_left (fun acc (v, c) -> F.add acc (F.mul c z.(v))) F.zero terms

  let expand_witness m z =
    if Array.length z <> m.n_orig then
      invalid_arg "Opt.expand_witness: assignment length";
    Array.init m.n_opt (fun i ->
        if i = 0 then F.one else eval_terms m.expand.(i) z)

  let restore_witness m z =
    if Array.length z <> m.n_opt then
      invalid_arg "Opt.restore_witness: assignment length";
    Array.init m.n_orig (fun i ->
        if i = 0 then F.one else eval_terms m.restore.(i) z)

  type delta =
    { d_constraints : int;
      d_wires : int;
      d_nnz : int }

  let zero_delta = { d_constraints = 0; d_wires = 0; d_nnz = 0 }

  let add_delta x y =
    { d_constraints = x.d_constraints + y.d_constraints;
      d_wires = x.d_wires + y.d_wires;
      d_nnz = x.d_nnz + y.d_nnz }

  type pass_delta =
    { pass : string;
      actions : int;
      delta : delta;
      by_region : (string * delta) list }

  type report =
    { passes : pass_delta list;
      rounds : int;
      before : Cs.stats;
      after : Cs.stats }

  let total_delta r =
    List.fold_left (fun acc p -> add_delta acc p.delta) zero_delta r.passes

  let pp_report fmt r =
    Format.fprintf fmt "@[<v>optimiser: %d fixed-point round%s@," r.rounds
      (if r.rounds = 1 then "" else "s");
    List.iter
      (fun p ->
        Format.fprintf fmt "  %-10s actions=%-6d constraints %+d  wires %+d  nnz %+d@,"
          p.pass p.actions (-p.delta.d_constraints) (-p.delta.d_wires)
          (-p.delta.d_nnz))
      r.passes;
    let nnz s = s.Cs.nonzero_a + s.Cs.nonzero_b + s.Cs.nonzero_c in
    Format.fprintf fmt "  total      constraints %d -> %d  variables %d -> %d  nnz %d -> %d@]"
      r.before.Cs.constraints r.after.Cs.constraints r.before.Cs.variables
      r.after.Cs.variables (nnz r.before) (nnz r.after)

  type result =
    { cs : Cs.t;
      map : witness_map;
      report : report;
      regions : Attrib.t option }

  (* ---------- affine union-find ------------------------------------ *)

  (* Relation of a wire to its parent: [w = slope·parent + shift]. Wire 0
     (constant one) is always a root; a class rooted at 0 is a pinned
     constant with value [slope + shift]. Representative preference:
     wire 0 > public input > aux (ties broken toward the lower index), so
     public wires are always class representatives — the canonical-layout
     guard. *)
  type uf =
    { parent : int array;
      slope : F.t array;
      shift : F.t array;
      pref : int array }

  let uf_create n num_inputs =
    { parent = Array.init n (fun i -> i);
      slope = Array.make n F.one;
      shift = Array.make n F.zero;
      pref =
        Array.init n (fun i ->
            if i = 0 then 3 else if i <= num_inputs then 2 else 1) }

  let rec find uf v =
    if v >= Array.length uf.parent then (v, F.one, F.zero)
      (* fresh CSE wire: born after the union-find, never unified *)
    else
    let p = uf.parent.(v) in
    if p = v then (v, F.one, F.zero)
    else begin
      let r, s, k = find uf p in
      let s' = F.mul uf.slope.(v) s in
      let k' = F.add (F.mul uf.slope.(v) k) uf.shift.(v) in
      uf.parent.(v) <- r;
      uf.slope.(v) <- s';
      uf.shift.(v) <- k';
      (r, s', k')
    end

  let is_root uf v = v >= Array.length uf.parent || uf.parent.(v) = v

  (* Outcome of feeding one linear relation to the union-find: [Consumed]
     means the constraint is now implied (and names the wire whose class
     lost its representative, if any); [Kept] means the relation was
     refused — it pins or merges public wires, or it is a contradiction
     that must stay in the system as a falsifier. *)
  type action = Consumed of int option | Kept

  let pin_root uf r value =
    uf.parent.(r) <- 0;
    uf.slope.(r) <- F.zero;
    uf.shift.(r) <- value

  (* [pin uf v value] learns [v = value]. *)
  let pin uf v value =
    let r, s, k = find uf v in
    if r = 0 then
      if F.equal (F.add s k) value then Consumed None else Kept
    else if uf.pref.(r) >= 2 then Kept
    else begin
      pin_root uf r (F.div (F.sub value k) s);
      Consumed (Some r)
    end

  (* [merge uf v1 v2 a b] learns [v1 = a·v2 + b] ([a ≠ 0]). *)
  let merge uf v1 v2 a bk =
    let r1, s1, k1 = find uf v1 in
    let r2, s2, k2 = find uf v2 in
    if r1 = r2 then begin
      (* (s1 − a·s2)·r = a·k2 + b − k1 *)
      let cr = F.sub s1 (F.mul a s2) in
      let ck = F.sub (F.add (F.mul a k2) bk) k1 in
      if F.is_zero cr then if F.is_zero ck then Consumed None else Kept
      else if r1 = 0 then
        if F.equal cr ck then Consumed None else Kept
      else if uf.pref.(r1) >= 2 then Kept
      else begin
        pin_root uf r1 (F.div ck cr);
        Consumed (Some r1)
      end
    end
    else if uf.pref.(r1) >= 2 && uf.pref.(r2) >= 2 then Kept
    else begin
      (* s1·r1 + k1 = a·s2·r2 + a·k2 + b, so r1 = ca·r2 + cb *)
      let ca = F.div (F.mul a s2) s1 in
      let cb = F.div (F.sub (F.add (F.mul a k2) bk) k1) s1 in
      let child_is_r1 =
        if uf.pref.(r1) <> uf.pref.(r2) then uf.pref.(r1) < uf.pref.(r2)
        else r1 > r2
      in
      if child_is_r1 then begin
        uf.parent.(r1) <- r2;
        uf.slope.(r1) <- ca;
        uf.shift.(r1) <- cb;
        Consumed (Some r1)
      end
      else begin
        uf.parent.(r2) <- r1;
        uf.slope.(r2) <- F.inv ca;
        uf.shift.(r2) <- F.neg (F.div cb ca);
        Consumed (Some r2)
      end
    end

  (* Rewrite an LC through the union-find. Physically equal result when
     nothing changed, so callers can detect progress with [==]. *)
  let subst_lc uf lc =
    let changed = ref false in
    let mapped =
      List.concat_map
        (fun (v, c) ->
          let r, s, k = find uf v in
          if r = v && F.is_one s && F.is_zero k then [ (v, c) ]
          else begin
            changed := true;
            if F.is_zero k then [ (r, F.mul c s) ]
            else [ (r, F.mul c s); (0, F.mul c k) ]
          end)
        (L.terms lc)
    in
    if !changed then L.of_terms mapped else lc

  (* ---------- pass machinery --------------------------------------- *)

  type row =
    { ra : L.t;
      rb : L.t;
      rc : L.t;
      rlabel : string;
      rregion : string (* owning region path, "" when unattributed *) }

  let row_nnz r = L.num_terms r.ra + L.num_terms r.rb + L.num_terms r.rc

  type st =
    { uf : uf;
      mutable rows : row list; (* in constraint order *)
      wire_region : string array; (* original canonical wire -> path *)
      n_orig : int;
      num_inputs : int;
      mutable next_wire : int; (* fresh CSE wires start at n_orig *)
      mutable cse_defs : (int * L.t * string) list; (* reversed *)
      debits : (string * string, delta ref) Hashtbl.t; (* (pass, region) *)
      actions : (string, int ref) Hashtbl.t }

  let debit st pass region d =
    if d <> zero_delta then begin
      match Hashtbl.find_opt st.debits (pass, region) with
      | Some r -> r := add_delta !r d
      | None -> Hashtbl.add st.debits (pass, region) (ref d)
    end

  let act st pass =
    match Hashtbl.find_opt st.actions pass with
    | Some r -> incr r
    | None -> Hashtbl.add st.actions pass (ref 1)

  (* Rewrite every row through the union-find, charging nonzero deltas to
     each row's owning region under [pass]. Returns whether any row
     changed. *)
  let substitute st pass =
    let changed = ref false in
    st.rows <-
      List.map
        (fun r ->
          let ra = subst_lc st.uf r.ra in
          let rb = subst_lc st.uf r.rb in
          let rc = subst_lc st.uf r.rc in
          if ra == r.ra && rb == r.rb && rc == r.rc then r
          else begin
            changed := true;
            let r' = { r with ra; rb; rc } in
            debit st pass r.rregion
              { zero_delta with d_nnz = row_nnz r - row_nnz r' };
            r'
          end)
        st.rows;
    !changed

  let as_const lc =
    match L.terms lc with
    | [] -> Some F.zero
    | [ (0, k) ] -> Some k
    | _ -> None

  (* The linear residual [l = 0] of a row whose A or B side is constant
     ([ka·B − C] resp. [kb·A − C]); [None] for genuinely multiplicative
     rows. *)
  let linear_residual r =
    match as_const r.ra with
    | Some ka -> Some (L.sub (L.scale ka r.rb) r.rc)
    | None -> (
      match as_const r.rb with
      | Some kb -> Some (L.sub (L.scale kb r.ra) r.rc)
      | None -> None)

  (* Split a linear residual into its constant part and its wire terms. *)
  let split_linear l =
    let k0 = ref F.zero in
    let wires =
      List.filter
        (fun (v, c) -> if v = 0 then (k0 := c; false) else true)
        (L.terms l)
    in
    (!k0, wires)

  let drop_row st pass r ~wire =
    act st pass;
    debit st pass r.rregion
      { d_constraints = 1; d_wires = 0; d_nnz = row_nnz r };
    match wire with
    | None -> ()
    | Some w ->
      debit st pass st.wire_region.(w) { zero_delta with d_wires = 1 }

  (* Pass 1: constant folding — rows whose residual has exactly one wire
     term pin that wire. *)
  let pass_const_fold st =
    let changed = substitute st "const_fold" in
    let progressed = ref changed in
    st.rows <-
      List.filter
        (fun r ->
          match linear_residual r with
          | Some l -> (
            match split_linear l with
            | k0, [ (v, c) ] -> (
              match pin st.uf v (F.neg (F.div k0 c)) with
              | Consumed wire ->
                progressed := true;
                drop_row st "const_fold" r ~wire;
                false
              | Kept -> true)
            | _ -> true)
          | None -> true)
        st.rows;
    !progressed

  (* Pass 2: union-find unification — rows whose residual has exactly two
     wire terms merge the two classes. *)
  let pass_unify st =
    let changed = substitute st "unify" in
    let progressed = ref changed in
    st.rows <-
      List.filter
        (fun r ->
          match linear_residual r with
          | Some l -> (
            match split_linear l with
            | k0, [ (v1, c1); (v2, c2) ] -> (
              (* c1·v1 + c2·v2 + k0 = 0  ⇒  v1 = (−c2/c1)·v2 − k0/c1 *)
              match
                merge st.uf v1 v2
                  (F.neg (F.div c2 c1))
                  (F.neg (F.div k0 c1))
              with
              | Consumed wire ->
                progressed := true;
                drop_row st "unify" r ~wire;
                false
              | Kept -> true)
            | _ -> true)
          | None -> true)
        st.rows;
    !progressed

  (* Pass 3: dead-constraint elimination — rows whose residual is the
     empty combination are identities. A residual that is a non-zero
     constant is a falsifier and is deliberately kept. *)
  let pass_dce st =
    let changed = substitute st "dce" in
    let progressed = ref changed in
    st.rows <-
      List.filter
        (fun r ->
          match linear_residual r with
          | Some l when L.is_zero l ->
            progressed := true;
            drop_row st "dce" r ~wire:None;
            false
          | _ -> true)
        st.rows;
    !progressed

  (* Pass 4: common linear-subexpression sharing. LCs are keyed up to a
     scalar multiple (scaled so the leading coefficient is one); a key
     seen [m] times with [t] terms is shared through a fresh wire only
     when the saving  m·t − (m + t + 2)  is positive (the defining row
     costs t + 2 nonzeros and the m uses one each). *)
  let pass_cse st =
    ignore (substitute st "cse");
    let rows = Array.of_list st.rows in
    let occs : (string, (int * [ `A | `B | `C ] * F.t * string) list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    let order = ref [] in
    let canon lc =
      match L.terms lc with
      | [] | [ _ ] -> None
      | (_, c1) :: _ ->
        let scaled = L.scale (F.inv c1) lc in
        let key =
          String.concat ","
            (List.map
               (fun (v, c) -> string_of_int v ^ ":" ^ F.to_string c)
               (L.terms scaled))
        in
        Some (key, scaled, c1)
    in
    Array.iteri
      (fun i r ->
        List.iter
          (fun (slot, lc) ->
            match canon lc with
            | None -> ()
            | Some (key, scaled, scale) -> (
              let occ = (i, slot, scale, r.rregion) in
              match Hashtbl.find_opt occs key with
              | Some l -> l := occ :: !l
              | None ->
                Hashtbl.add occs key (ref [ occ ]);
                order := (key, scaled) :: !order))
          [ (`A, r.ra); (`B, r.rb); (`C, r.rc) ])
      rows;
    let added = ref [] in
    List.iter
      (fun (key, scaled) ->
        let os = List.rev !(Hashtbl.find occs key) in
        let m = List.length os in
        let t = L.num_terms scaled in
        if m >= 2 && (m * t) - (m + t + 2) > 0 then begin
          let u = st.next_wire in
          st.next_wire <- u + 1;
          let _, _, _, region = List.hd os in
          st.cse_defs <- (u, scaled, region) :: st.cse_defs;
          act st "cse";
          List.iter
            (fun (i, slot, scale, oregion) ->
              let r = rows.(i) in
              let rep = L.term scale u in
              rows.(i) <-
                (match slot with
                | `A -> { r with ra = rep }
                | `B -> { r with rb = rep }
                | `C -> { r with rc = rep });
              debit st "cse" oregion { zero_delta with d_nnz = t - 1 })
            os;
          (* the defining row  scaled · 1 = u  adds a constraint, a wire
             and t + 2 nonzeros, all charged (negatively) to the region of
             the first occurrence *)
          added :=
            { ra = scaled;
              rb = L.constant F.one;
              rc = L.of_var u;
              rlabel = "cse";
              rregion = region }
            :: !added;
          debit st "cse" region
            { d_constraints = -1; d_wires = -1; d_nnz = -(t + 2) }
        end)
      (List.rev !order);
    st.rows <- Array.to_list rows @ List.rev !added

  (* ---------- compaction and output -------------------------------- *)

  let stats_of ~num_inputs ~num_aux rows =
    let a = ref 0 and b = ref 0 and c = ref 0 in
    List.iter
      (fun r ->
        a := !a + L.num_terms r.ra;
        b := !b + L.num_terms r.rb;
        c := !c + L.num_terms r.rc)
      rows;
    { Cs.constraints = List.length rows;
      variables = 1 + num_inputs + num_aux;
      nonzero_a = !a;
      nonzero_b = !b;
      nonzero_c = !c }

  let optimize ?(config = default) ?provenance (cs : Cs.t) =
    let n_orig = Cs.num_vars cs in
    let num_inputs = Cs.num_inputs cs in
    (match provenance with
    | Some p ->
      if
        Array.length p.constraint_region <> Cs.num_constraints cs
        || Array.length p.wire_region <> n_orig
      then invalid_arg "Opt.optimize: provenance arrays do not match system"
    | None -> ());
    let region_of_constraint i =
      match provenance with Some p -> p.constraint_region.(i) | None -> ""
    in
    let wire_region =
      match provenance with
      | Some p -> p.wire_region
      | None -> Array.make n_orig ""
    in
    let st =
      { uf = uf_create n_orig num_inputs;
        rows =
          Array.to_list
            (Array.mapi
               (fun i { Cs.a; b; c; label } ->
                 { ra = a; rb = b; rc = c; rlabel = label;
                   rregion = region_of_constraint i })
               cs.Cs.constraints);
        wire_region;
        n_orig;
        num_inputs;
        next_wire = n_orig;
        cse_defs = [];
        debits = Hashtbl.create 64;
        actions = Hashtbl.create 8 }
    in
    let before =
      stats_of ~num_inputs ~num_aux:(Cs.num_aux cs) st.rows
    in
    let span name f = Obs.Span.with_span ("opt." ^ name) f in
    (* fixed point of const_fold / unify / dce *)
    let rounds = ref 0 in
    let continue_ = ref (config.const_fold || config.unify || config.dce) in
    while !continue_ && !rounds < config.max_rounds do
      incr rounds;
      let c1 =
        if config.const_fold then span "const_fold" (fun () -> pass_const_fold st)
        else false
      in
      let c2 =
        if config.unify then span "unify" (fun () -> pass_unify st) else false
      in
      let c3 = if config.dce then span "dce" (fun () -> pass_dce st) else false in
      continue_ := c1 || c2 || c3
    done;
    if config.cse then span "cse" (fun () -> pass_cse st);
    (* late relations may not have reached every row when the loop hit
       max_rounds; one final rewrite guarantees rows mention roots only *)
    ignore (substitute st "dce");
    (* compaction: wire 0 and publics keep their indices; referenced aux
       roots are packed in order, then CSE wires; unreferenced aux roots
       are dead *)
    let used = Array.make n_orig false in
    let mark lc =
      (* CSE wires (>= n_orig) are used by construction *)
      List.iter (fun (v, _) -> if v < n_orig then used.(v) <- true) (L.terms lc)
    in
    List.iter
      (fun r ->
        mark r.ra;
        mark r.rb;
        mark r.rc)
      st.rows;
    List.iter (fun (_, lc, _) -> mark lc) (List.rev st.cse_defs);
    let old_to_new = Array.make st.next_wire (-1) in
    old_to_new.(0) <- 0;
    for v = 1 to num_inputs do
      old_to_new.(v) <- v
    done;
    let next = ref (num_inputs + 1) in
    for v = num_inputs + 1 to n_orig - 1 do
      if is_root st.uf v then
        if used.(v) then begin
          old_to_new.(v) <- !next;
          incr next
        end
        else begin
          (* dead: no surviving row constrains it *)
          act st "dce";
          debit st "dce" wire_region.(v) { zero_delta with d_wires = 1 }
        end
    done;
    let cse_defs = List.rev st.cse_defs in
    List.iter
      (fun (u, _, _) ->
        old_to_new.(u) <- !next;
        incr next)
      cse_defs;
    let n_opt = !next in
    let num_aux_new = n_opt - 1 - num_inputs in
    let remap lc = L.map_vars (fun v -> old_to_new.(v)) lc in
    let final_rows =
      List.map
        (fun r -> { r with ra = remap r.ra; rb = remap r.rb; rc = remap r.rc })
        st.rows
    in
    let constraints =
      Array.of_list
        (List.map
           (fun r -> { Cs.a = r.ra; b = r.rb; c = r.rc; label = r.rlabel })
           final_rows)
    in
    let optimized =
      { Cs.num_inputs; num_aux = num_aux_new; constraints }
    in
    (* witness map *)
    let expand = Array.make n_opt [] in
    for v = 1 to n_orig - 1 do
      let nv = old_to_new.(v) in
      if nv >= 0 && is_root st.uf v then expand.(nv) <- [ (v, F.one) ]
    done;
    List.iter
      (fun (u, lc, _) -> expand.(old_to_new.(u)) <- L.terms lc)
      cse_defs;
    let restore = Array.make n_orig [] in
    for v = 1 to n_orig - 1 do
      let r, s, k = find st.uf v in
      restore.(v) <-
        (if r = 0 then L.terms (L.constant (F.add s k))
         else
           let nr = old_to_new.(r) in
           if nr < 0 then L.terms (L.constant k)
           else L.terms (L.of_terms [ (nr, s); (0, k) ]))
    done;
    let map = { n_orig; n_opt; expand; restore } in
    let after = stats_of ~num_inputs ~num_aux:num_aux_new final_rows in
    (* report *)
    let pass_report name =
      let acc = ref zero_delta and by = ref [] in
      Hashtbl.iter
        (fun (p, region) d ->
          if p = name then begin
            acc := add_delta !acc !d;
            by := (region, !d) :: !by
          end)
        st.debits;
      let by_region =
        List.sort
          (fun (r1, d1) (r2, d2) ->
            match compare d2.d_nnz d1.d_nnz with
            | 0 -> compare r1 r2
            | c -> c)
          !by
      in
      { pass = name;
        actions =
          (match Hashtbl.find_opt st.actions name with
          | Some r -> !r
          | None -> 0);
        delta = !acc;
        by_region }
    in
    let report =
      { passes = List.map pass_report [ "const_fold"; "unify"; "dce"; "cse" ];
        rounds = !rounds;
        before;
        after }
    in
    let td = total_delta report in
    let module M = Obs.Metrics in
    M.set (M.gauge "opt.constraints_removed") (float_of_int td.d_constraints);
    M.set (M.gauge "opt.wires_removed") (float_of_int td.d_wires);
    M.set (M.gauge "opt.nnz_removed") (float_of_int td.d_nnz);
    M.set (M.gauge "opt.rounds") (float_of_int !rounds);
    (* rebuilt attribution tree: original structure and synthesis times,
       optimised counts *)
    let regions =
      match provenance with
      | None -> None
      | Some p ->
        let tbl : (string, Attrib.counts ref) Hashtbl.t = Hashtbl.create 64 in
        let bump path f =
          let c =
            match Hashtbl.find_opt tbl path with
            | Some r -> r
            | None ->
              let r = ref Attrib.zero_counts in
              Hashtbl.add tbl path r;
              r
          in
          c := f !c
        in
        List.iter
          (fun r ->
            bump r.rregion (fun c ->
                { c with
                  Attrib.constraints = c.Attrib.constraints + 1;
                  nnz_a = c.Attrib.nnz_a + L.num_terms r.ra;
                  nnz_b = c.Attrib.nnz_b + L.num_terms r.rb;
                  nnz_c = c.Attrib.nnz_c + L.num_terms r.rc }))
          final_rows;
        for v = 1 to n_orig - 1 do
          if old_to_new.(v) >= 0 && v > num_inputs && is_root st.uf v then
            bump wire_region.(v) (fun c ->
                { c with Attrib.variables = c.Attrib.variables + 1 })
        done;
        (* public inputs stay allocated to their original regions *)
        for v = 1 to num_inputs do
          bump wire_region.(v) (fun c ->
              { c with Attrib.variables = c.Attrib.variables + 1 })
        done;
        List.iter
          (fun (_, _, region) ->
            bump region (fun c ->
                { c with Attrib.variables = c.Attrib.variables + 1 }))
          cse_defs;
        let rec rebuild path (node : Attrib.t) =
          let self =
            match Hashtbl.find_opt tbl path with
            | Some r -> !r
            | None -> Attrib.zero_counts
          in
          let child_path child =
            if path = "" then child.Attrib.name
            else path ^ "/" ^ child.Attrib.name
          in
          Attrib.make ~witness_s:node.Attrib.witness_s ~name:node.Attrib.name
            ~self
            (List.map (fun ch -> rebuild (child_path ch) ch) node.Attrib.children)
        in
        Some (rebuild "" p.tree)
    in
    { cs = optimized; map; report; regions }
end
