(** A keelung-style R1CS optimiser: a fixed-point pass pipeline over
    {!Zkvc_r1cs.Constraint_system} that runs between circuit synthesis and
    the QAP / Spartan preprocessing.

    Passes, in pipeline order:

    - {b const_fold} — wires pinned to constants by [c·w + k = 0]-shaped
      constraints are substituted everywhere and the pinning constraint
      dropped.
    - {b unify} — union-find unification of affinely related wires:
      a linear constraint with exactly two wire terms
      [c1·v + c2·w + k = 0] merges [v] and [w] into one class
      ([v = (−c2/c1)·w − k/c1]), keeping one representative.
    - {b dce} — dead-constraint elimination (rows that are trivially
      satisfied after substitution, e.g. [0 = 0]) and, during the final
      compaction, dead-wire elimination (aux wires no surviving row
      references).
    - {b cse} — common linear-subexpression sharing: canonical [Lc.t]s
      (hash-consed up to a scalar multiple) that appear in several A/B/C
      slots are computed once on a fresh intermediate wire, when and only
      when the nonzero saving is positive.

    [const_fold]/[unify]/[dce] iterate to a fixed point (bounded by
    [max_rounds]); [cse] then runs once, followed by aux-wire compaction.

    {b Canonical-layout invariants.} Wire 0 and the public-input wires
    [1..num_inputs] are never substituted, merged away, or renumbered:
    a public wire is always its class representative and an equality
    between two public wires is left in place. [num_inputs] is preserved
    exactly, so the input-first permutation and the Groth16
    input-consistency column survive optimisation. Only aux wires are
    eliminated and compacted. A constraint that folds to a {e false}
    constant equation is kept (as an unsatisfiable marker), never
    dropped — the optimiser must not widen the acceptance set.

    {b Witness remap contract.} [optimize] returns a {!witness_map}:
    {!expand_witness} turns a full assignment for the original system
    into one for the optimised system (every optimised wire is a linear
    combination of original wires), and {!restore_witness} maps back
    (every original wire is a linear combination of optimised wires —
    eliminated wires are forced to the value their elimination implied).
    For every original assignment [z]:
    [is_satisfied optimised (expand z) ⇔ is_satisfied original
    (restore (expand z))], and both are implied by
    [is_satisfied original z]. For every assignment [z'] satisfying the
    optimised system, [restore z'] satisfies the original system with
    the same public inputs. *)

module Make (F : Zkvc_field.Field_intf.S) : sig
  module L : module type of Zkvc_r1cs.Lc.Make (F)
  module Cs : module type of Zkvc_r1cs.Constraint_system.Make (F)

  (** Which passes run; [max_rounds] bounds the fixed-point iteration of
      the [const_fold]/[unify]/[dce] loop. *)
  type config =
    { const_fold : bool;
      unify : bool;
      dce : bool;
      cse : bool;
      max_rounds : int }

  (** Everything on, [max_rounds = 8]. *)
  val default : config

  (** Short deterministic tag naming the configuration, e.g.
      ["cf1-uf1-dce1-cse1-r8"] — absorbed into service cache keys so
      optimised and unoptimised keys never collide. *)
  val config_tag : config -> string

  (** Per-constraint / per-wire owning region (paths as produced by
      {!Zkvc_r1cs.Builder.Make.finalize_with_provenance}) plus the
      original attribution tree. When supplied, eliminations are debited
      from their owning region and {!result.regions} carries the rebuilt
      (post-optimisation) tree. *)
  type provenance =
    { constraint_region : string array;
      wire_region : string array;
      tree : Zkvc_obs.Attrib.t }

  type witness_map

  (** Number of wires (including wire 0) in the original / optimised
      system. *)
  val original_vars : witness_map -> int

  val optimized_vars : witness_map -> int

  (** Map a full original assignment (length [original_vars], slot 0 = 1)
      to a full optimised assignment. *)
  val expand_witness : witness_map -> F.t array -> F.t array

  (** Map a full optimised assignment back to an original-layout
      assignment; eliminated wires take the value their elimination
      implied (constants, affine images of their representative; dead
      wires restore to zero). *)
  val restore_witness : witness_map -> F.t array -> F.t array

  (** Net removal attributed to one pass (positive = removed; CSE may go
      negative on constraints/wires since sharing {e adds} a defining row
      and a fresh wire while removing nonzeros). *)
  type delta =
    { d_constraints : int;
      d_wires : int;
      d_nnz : int }

  val zero_delta : delta
  val add_delta : delta -> delta -> delta

  type pass_delta =
    { pass : string;
      actions : int;  (** pins / merges / dropped rows / shared LCs *)
      delta : delta;
      by_region : (string * delta) list
          (** owning-region paths ([""] = unattributed), sorted by
              descending nonzero saving; empty without provenance *) }

  type report =
    { passes : pass_delta list;  (** fixed order: const_fold, unify, dce, cse *)
      rounds : int;  (** fixed-point rounds the loop ran *)
      before : Cs.stats;
      after : Cs.stats }

  val total_delta : report -> delta

  (** Multi-line human-readable report (one line per pass plus a total). *)
  val pp_report : Format.formatter -> report -> unit

  type result =
    { cs : Cs.t;
      map : witness_map;
      report : report;
      regions : Zkvc_obs.Attrib.t option
          (** post-optimisation attribution tree (structure and synthesis
              times of the original, counts of the optimised system);
              [None] without provenance *) }

  (** Run the pipeline. Pass-level spans are emitted as [opt.<pass>] and
      the totals published on [opt.*] gauges. *)
  val optimize : ?config:config -> ?provenance:provenance -> Cs.t -> result
end
