module Bigint = Zkvc_num.Bigint
module Parallel = Zkvc_parallel

(* Shared across field instantiations: radix-2 transform call count and
   the distribution of transform sizes. *)
let ntt_calls = Zkvc_obs.Metrics.counter "poly.ntt.calls"
let ntt_size = Zkvc_obs.Metrics.histogram "poly.ntt.size"

(* Transforms below this size are always sequential: one butterfly layer
   would not amortise a pool wake-up. *)
let parallel_min_size = 1 lsl 10

module Make (F : Zkvc_field.Field_intf.S) = struct
  module Batch = Zkvc_field.Batch.Make (F)

  type t =
    { size : int;
      log_size : int;
      omega : F.t;
      omega_inv : F.t;
      size_inv : F.t;
      elements : F.t array (* omega^0 .. omega^(size-1) *) }

  let create n =
    if n <= 0 || n land (n - 1) <> 0 then invalid_arg "Domain.create: size must be a power of two";
    let log_size =
      let rec go k p = if p = n then k else go (k + 1) (2 * p) in
      go 0 1
    in
    if log_size > F.two_adicity then invalid_arg "Domain.create: size exceeds field 2-adicity";
    (* omega = root^(2^(adicity - log)) has order exactly n *)
    let omega =
      F.pow F.two_adic_root (Bigint.shift_left Bigint.one (F.two_adicity - log_size))
    in
    let elements = Array.make n F.one in
    for i = 1 to n - 1 do
      elements.(i) <- F.mul elements.(i - 1) omega
    done;
    { size = n; log_size; omega; omega_inv = F.inv omega; size_inv = F.inv (F.of_int n); elements }

  let size d = d.size
  let omega d = d.omega
  let element d i = d.elements.(i mod d.size)

  let bit_reverse_permute a =
    let n = Array.length a in
    let j = ref 0 in
    for i = 1 to n - 1 do
      let bit = ref (n lsr 1) in
      while !j land !bit <> 0 do
        j := !j lxor !bit;
        bit := !bit lsr 1
      done;
      j := !j lor !bit;
      if i < !j then begin
        let tmp = a.(i) in
        a.(i) <- a.(!j);
        a.(!j) <- tmp
      end
    done

  (* Iterative Cooley–Tukey; [root] must have order [Array.length a].

     Parallelism: within a layer every butterfly touches a disjoint index
     pair, so blocks (early layers: many small blocks) or intra-block
     ranges (late layers: few big blocks) can run on the pool. A range
     starting at offset [j0] seeds its twiddle with [wlen^j0], which is
     the same canonical field element the sequential running product
     reaches — results are byte-identical for every job count. *)
  let ntt_with root a =
    let n = Array.length a in
    Zkvc_obs.Metrics.incr ntt_calls;
    Zkvc_obs.Metrics.observe_int ntt_size n;
    bit_reverse_permute a;
    let parallel = Parallel.jobs () > 1 && n >= parallel_min_size in
    let len = ref 2 in
    while !len <= n do
      let wlen = F.pow root (Bigint.of_int (n / !len)) in
      let half = !len / 2 in
      let nblocks = n / !len in
      (* butterflies [j_lo, j_hi) of the block starting at [base] *)
      let block_range base j_lo j_hi =
        let w = ref (if j_lo = 0 then F.one else F.pow wlen (Bigint.of_int j_lo)) in
        for j = j_lo to j_hi - 1 do
          let u = a.(base + j) in
          let v = F.mul a.(base + j + half) !w in
          a.(base + j) <- F.add u v;
          a.(base + j + half) <- F.sub u v;
          w := F.mul !w wlen
        done
      in
      if not parallel then
        for b = 0 to nblocks - 1 do
          block_range (b * !len) 0 half
        done
      else if nblocks >= 2 * Parallel.jobs () then
        Parallel.parallel_for nblocks (fun b -> block_range (b * !len) 0 half)
      else
        for b = 0 to nblocks - 1 do
          let base = b * !len in
          Parallel.parallel_for_ranges half (fun lo hi -> block_range base lo hi)
        done;
      len := !len * 2
    done

  let check_len d a name =
    if Array.length a <> d.size then invalid_arg (name ^ ": array length must equal domain size")

  let ntt d a =
    check_len d a "Domain.ntt";
    ntt_with d.omega a

  let scale_all d a =
    if Parallel.jobs () > 1 && d.size >= parallel_min_size then
      Parallel.parallel_for d.size (fun i -> a.(i) <- F.mul a.(i) d.size_inv)
    else
      for i = 0 to d.size - 1 do
        a.(i) <- F.mul a.(i) d.size_inv
      done

  let intt d a =
    check_len d a "Domain.intt";
    ntt_with d.omega_inv a;
    scale_all d a

  (* Coset pointwise scale a.(i) *= shift^i; each parallel range seeds
     its running power with F.pow (canonical, so chunking-invariant). *)
  let scale_by_powers shift a =
    let n = Array.length a in
    if Parallel.jobs () > 1 && n >= parallel_min_size then
      Parallel.parallel_for_ranges n (fun lo hi ->
          let s = ref (F.pow shift (Bigint.of_int lo)) in
          for i = lo to hi - 1 do
            a.(i) <- F.mul a.(i) !s;
            s := F.mul !s shift
          done)
    else begin
      let s = ref F.one in
      for i = 0 to n - 1 do
        a.(i) <- F.mul a.(i) !s;
        s := F.mul !s shift
      done
    end

  let eval_on_coset d shift a =
    check_len d a "Domain.eval_on_coset";
    scale_by_powers shift a;
    ntt_with d.omega a

  let interp_from_coset d shift a =
    check_len d a "Domain.interp_from_coset";
    ntt_with d.omega_inv a;
    scale_all d a;
    scale_by_powers (F.inv shift) a

  let vanishing_eval d x = F.sub (F.pow x (Bigint.of_int d.size)) F.one

  (* Barycentric form: P(x) = (x^n - 1)/n * sum_i evals_i * w^i / (x - w^i). *)
  let lagrange_eval d evals x =
    check_len d evals "Domain.lagrange_eval";
    (* if x is in the domain, return the tabulated value *)
    let n = d.size in
    let diffs = Array.init n (fun i -> F.sub x d.elements.(i)) in
    match Array.find_index (fun v -> F.is_zero v) diffs with
    | Some i -> evals.(i)
    | None ->
      Batch.invert_all diffs;
      let acc = ref F.zero in
      for i = 0 to n - 1 do
        acc := F.add !acc (F.mul evals.(i) (F.mul d.elements.(i) diffs.(i)))
      done;
      let z = F.sub (F.pow x (Bigint.of_int n)) F.one in
      F.mul (F.mul z d.size_inv) !acc
end
