(** Quadratic Arithmetic Program reduction of an R1CS
    (Gennaro–Gentry–Parno–Raykova, as used by Groth16/libsnark).

    Each R1CS matrix column becomes a polynomial interpolating that
    column's entries over a radix-2 domain; a satisfying assignment [z]
    makes [A(x)·B(x) − C(x)] divisible by the domain's vanishing
    polynomial, and the quotient [h] is what the prover commits to.
    As in libsnark, [num_inputs + 1] extra rows [(z_j)·0 = 0] are appended
    so the input columns of A stay linearly independent. *)

module Make (F : Zkvc_field.Field_intf.S) : sig
  module Cs : module type of Zkvc_r1cs.Constraint_system.Make (F)

  type t

  val create : Cs.t -> t

  val domain_size : t -> int
  val num_vars : t -> int
  val num_inputs : t -> int

  (** Number of quotient coefficients: [domain_size − 1]. *)
  val h_length : t -> int

  (** Sparsity of the QAP column families — the counts the bench's cost
      ledger records. [nnz_a/b/c] are nonzero entries per matrix over the
      {e padded} row set, i.e. the R1CS counts plus the [num_inputs + 1]
      input-consistency rows appended to A; [rows] is that padded row
      count and [domain] the power-of-two it is rounded up to. Fewer
      A-side nonzeros (the paper's "left wires", reduced by PSQ) mean
      sparser interpolated A-polynomials and a cheaper prover. *)
  type density =
    { rows : int;
      domain : int;
      nnz_a : int;
      nnz_b : int;
      nnz_c : int }

  val density : t -> density

  (** A-side nonzeros the reduction appends beyond the R1CS matrices: one
      per input-consistency row, i.e. [num_inputs + 1]. Lets provenance
      consumers reconcile builder-side nnz counts with {!density} without
      constructing a QAP. *)
  val input_consistency_nnz : num_inputs:int -> int

  (** Quotient polynomial coefficients for a satisfying assignment,
      computed with three inverse NTTs and three coset NTTs. *)
  val h_coeffs : t -> F.t array -> F.t array

  type evaluation =
    { a_at : F.t array; (** per wire: A_j(τ) *)
      b_at : F.t array;
      c_at : F.t array;
      z_at : F.t; (** vanishing polynomial at τ *)
      tau_powers : F.t array (** τ⁰ .. τ^(h_length−1) *) }

  (** Evaluate all wire polynomials at the setup's secret point, in
      O(rows + nnz). Raises [Invalid_argument] if τ lies in the domain. *)
  val evaluate_at : t -> F.t -> evaluation

  (** Test oracle: [(Σ z_j A_j)(Σ z_j B_j) − Σ z_j C_j = h·Z] at a point. *)
  val divisibility_holds : t -> F.t array -> F.t -> bool
end
