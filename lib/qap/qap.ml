(** Quadratic Arithmetic Program reduction of an R1CS (Gennaro–Gentry–
    Parno–Raykova as used by Groth16 / libsnark).

    Each R1CS matrix column becomes a polynomial interpolating that
    column's entries over a radix-2 domain; a satisfying assignment [z]
    makes [A(x)·B(x) − C(x)] divisible by the domain's vanishing
    polynomial, and the quotient [h(x)] is what the prover commits to.

    As in libsnark, [num_inputs + 1] extra rows [(z_j)·0 = 0] are appended
    so the input columns of A are linearly independent — required for
    Groth16's input-consistency argument. *)

module Bigint = Zkvc_num.Bigint
module Parallel = Zkvc_parallel

module Make (F : Zkvc_field.Field_intf.S) = struct
  module Cs = Zkvc_r1cs.Constraint_system.Make (F)
  module L = Zkvc_r1cs.Lc.Make (F)
  module D = Zkvc_poly.Domain.Make (F)
  module Batch = Zkvc_field.Batch.Make (F)

  type t =
    { cs : Cs.t;
      padded_rows : int; (* constraints + inputs + 1 *)
      domain : D.t;
      coset_shift : F.t }

  let next_pow2 n =
    let rec go p = if p >= n then p else go (2 * p) in
    go 1

  let create cs =
    let padded_rows = Cs.num_constraints cs + Cs.num_inputs cs + 1 in
    let n = next_pow2 padded_rows in
    let domain = D.create n in
    (* any point with g^n ≠ 1 generates a disjoint coset *)
    let rec find_shift c =
      let g = F.of_int c in
      if F.is_zero (D.vanishing_eval domain g) then find_shift (c + 1) else g
    in
    { cs; padded_rows; domain; coset_shift = find_shift 5 }

  let domain_size t = D.size t.domain
  let num_vars t = Cs.num_vars t.cs
  let num_inputs t = Cs.num_inputs t.cs

  (** Degree bound of the quotient [h]: [domain_size - 1] coefficients. *)
  let h_length t = domain_size t - 1

  (** Sparsity of the QAP column families over the padded row set: R1CS
      matrix nonzeros plus the [num_inputs + 1] input-consistency rows on
      the A side. The bench's cost ledger and the [qap.*] metric gauges
      read these. *)
  type density =
    { rows : int;
      domain : int;
      nnz_a : int;
      nnz_b : int;
      nnz_c : int }

  (* A-side nonzeros the reduction itself appends: one per input-
     consistency row [(z_j)·0 = 0]. The profiler reports these as a
     synthetic "(qap-padding)" region so the per-region nnz ledger sums
     exactly to [density.nnz_a]. *)
  let input_consistency_nnz ~num_inputs = num_inputs + 1

  let density t =
    let count f =
      Array.fold_left (fun acc c -> acc + L.num_terms (f c)) 0 t.cs.Cs.constraints
    in
    let d =
      { rows = t.padded_rows;
        domain = domain_size t;
        nnz_a = count (fun c -> c.Cs.a) + input_consistency_nnz ~num_inputs:(Cs.num_inputs t.cs);
        nnz_b = count (fun c -> c.Cs.b);
        nnz_c = count (fun c -> c.Cs.c) }
    in
    let module M = Zkvc_obs.Metrics in
    M.set (M.gauge "qap.domain_size") (float_of_int d.domain);
    M.set (M.gauge "qap.nnz_a") (float_of_int d.nnz_a);
    M.set (M.gauge "qap.nnz_b") (float_of_int d.nnz_b);
    M.set (M.gauge "qap.nnz_c") (float_of_int d.nnz_c);
    d

  (* Row evaluations ⟨M_i, z⟩ for every (padded) row. The input-consistency
     row for input j contributes z_j to A and zero to B, C. *)
  let row_evals t assignment =
    let n = domain_size t in
    let a = Array.make n F.zero
    and b = Array.make n F.zero
    and c = Array.make n F.zero in
    (* rows are independent dot products against the shared (read-only)
       assignment — the QAP column-evaluation parallel axis *)
    let rows = t.cs.Cs.constraints in
    let eval_row i =
      let { Cs.a = la; b = lb; c = lc; label = _ } = rows.(i) in
      a.(i) <- L.eval la assignment;
      b.(i) <- L.eval lb assignment;
      c.(i) <- L.eval lc assignment
    in
    if Parallel.jobs () > 1 && Array.length rows >= 256 then
      Parallel.parallel_for (Array.length rows) eval_row
    else Array.iteri (fun i _ -> eval_row i) rows;
    let base = Cs.num_constraints t.cs in
    for j = 0 to Cs.num_inputs t.cs do
      a.(base + j) <- assignment.(j)
    done;
    (a, b, c)

  (** Quotient polynomial coefficients (length [h_length]) for a satisfying
      assignment. Computed with three inverse NTTs and three coset NTTs;
      on the coset the vanishing polynomial is the constant [shift^n − 1]. *)
  let h_coeffs t assignment =
    let n = domain_size t in
    let a, b, c = row_evals t assignment in
    D.intt t.domain a;
    D.intt t.domain b;
    D.intt t.domain c;
    D.eval_on_coset t.domain t.coset_shift a;
    D.eval_on_coset t.domain t.coset_shift b;
    D.eval_on_coset t.domain t.coset_shift c;
    let zinv = F.inv (D.vanishing_eval t.domain t.coset_shift) in
    let h = Array.make n F.zero in
    let quotient i = h.(i) <- F.mul zinv (F.sub (F.mul a.(i) b.(i)) c.(i)) in
    if Parallel.jobs () > 1 && n >= 1024 then Parallel.parallel_for n quotient
    else
      for i = 0 to n - 1 do
        quotient i
      done;
    D.interp_from_coset t.domain t.coset_shift h;
    (* deg h ≤ n - 2 for a satisfying assignment *)
    Array.sub h 0 (n - 1)

  type evaluation =
    { a_at : F.t array; (* per wire: A_j(tau) *)
      b_at : F.t array;
      c_at : F.t array;
      z_at : F.t; (* vanishing polynomial at tau *)
      tau_powers : F.t array (* tau^0 .. tau^(h_length-1) *) }

  (** Evaluate all wire polynomials at a point (the setup's secret [tau])
      in O(rows + nnz) using the barycentric Lagrange kernels. Raises
      [Invalid_argument] if [tau] lies in the domain. *)
  let evaluate_at t tau =
    let n = domain_size t in
    let z_at = D.vanishing_eval t.domain tau in
    if F.is_zero z_at then invalid_arg "Qap.evaluate_at: tau in evaluation domain";
    (* lagrange.(i) = Z(tau) * w^i / (n * (tau - w^i)) *)
    let diffs = Array.init n (fun i -> F.sub tau (D.element t.domain i)) in
    Batch.invert_all diffs;
    let zn = F.mul z_at (F.inv (F.of_int n)) in
    let lagrange =
      Array.init n (fun i -> F.mul zn (F.mul (D.element t.domain i) diffs.(i)))
    in
    let nv = num_vars t in
    let a_at = Array.make nv F.zero
    and b_at = Array.make nv F.zero
    and c_at = Array.make nv F.zero in
    let accumulate dst row lc =
      List.iter (fun (v, k) -> dst.(v) <- F.add dst.(v) (F.mul k lagrange.(row))) (L.terms lc)
    in
    Array.iteri
      (fun i { Cs.a = la; b = lb; c = lc; label = _ } ->
        accumulate a_at i la;
        accumulate b_at i lb;
        accumulate c_at i lc)
      t.cs.Cs.constraints;
    let base = Cs.num_constraints t.cs in
    for j = 0 to Cs.num_inputs t.cs do
      a_at.(j) <- F.add a_at.(j) lagrange.(base + j)
    done;
    let tau_powers = Array.make (h_length t) F.one in
    for i = 1 to h_length t - 1 do
      tau_powers.(i) <- F.mul tau_powers.(i - 1) tau
    done;
    { a_at; b_at; c_at; z_at; tau_powers }

  (** Sanity identity used by tests:
      (Σ z_j A_j(τ))(Σ z_j B_j(τ)) − Σ z_j C_j(τ) = h(τ)·Z(τ). *)
  let divisibility_holds t assignment tau =
    let ev = evaluate_at t tau in
    let dot m =
      let acc = ref F.zero in
      Array.iteri (fun j v -> acc := F.add !acc (F.mul v m.(j))) assignment;
      !acc
    in
    let lhs = F.sub (F.mul (dot ev.a_at) (dot ev.b_at)) (dot ev.c_at) in
    let h = h_coeffs t assignment in
    let htau = ref F.zero in
    for i = Array.length h - 1 downto 0 do
      htau := F.add (F.mul !htau tau) h.(i)
    done;
    F.equal lhs (F.mul !htau ev.z_at)
end
