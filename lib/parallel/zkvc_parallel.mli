(** Fixed-size domain pool for the prover's embarrassingly-parallel
    kernels (Pippenger windows, NTT butterflies, QAP column evaluation,
    Pedersen row commitments, sumcheck table folds).

    Worker domains are spawned once, on first use, and kept for the
    process lifetime; work is distributed as contiguous index chunks
    grabbed from an atomic cursor, with the calling domain participating.
    The job count defaults to [1] — everything runs exactly as the
    sequential code — unless raised via {!set_jobs}, [--jobs] on the CLI
    and bench, or the [ZKVC_JOBS] environment variable ([0] means "one
    job per recommended domain").

    Determinism contract: every kernel parallelised through this module
    computes each output slot as a pure function of its index over
    canonical field representations, so results — and therefore proofs —
    are byte-identical for every job count. Chunking decides only who
    computes what, never what is computed.

    Concurrency: the pool has one task slot, acquired atomically. Any
    call that does not win the slot — a call from a worker domain, a
    nested call from inside a running [parallel_*] body, or a concurrent
    call from another thread while a task is in flight — degrades to
    sequential execution instead of deadlocking on or corrupting the
    shared pool. Concurrent submitters therefore always terminate with
    every index processed exactly once; at most one of them runs its
    indices on the pool. *)

(** Current job count (>= 1). *)
val jobs : unit -> int

(** Set the job count. [n <= 0] selects [Domain.recommended_domain_count],
    anything else is clamped to [1 .. 64]. Worker domains ([n - 1] of
    them) are spawned lazily by the first parallel call that needs them. *)
val set_jobs : int -> unit

(** The job count requested by the [ZKVC_JOBS] environment variable at
    startup (already applied), or [1] if unset/invalid. *)
val env_jobs : int

(** [parallel_for ?chunk n f] runs [f i] for every [i] in [0 .. n-1].
    [f] must only write state owned by index [i]. *)
val parallel_for : ?chunk:int -> int -> (int -> unit) -> unit

(** [parallel_for_ranges ?chunk n f] partitions [0 .. n-1] into chunks
    and calls [f lo hi] per chunk (half-open [lo, hi)). Useful when the
    body wants to hoist per-chunk state (e.g. a seeded twiddle factor). *)
val parallel_for_ranges : ?chunk:int -> int -> (int -> int -> unit) -> unit

(** [parallel_init n f] is [Array.init n f] with the elements computed in
    parallel ([f 0] runs first, on the caller, to seed the array). *)
val parallel_init : int -> (int -> 'a) -> 'a array

(** [parallel_map f a] is [Array.map f a] computed in parallel. *)
val parallel_map : ('a -> 'b) -> 'a array -> 'b array

(** [parallel_reduce ?chunk n ~init ~range ~combine] evaluates
    [range lo hi] on disjoint chunks covering [0 .. n-1] and folds the
    chunk results with [combine], seeded by [init], in ascending chunk
    order. [range] must not mutate [init]; with an associative exact
    [combine] (field addition) the result is independent of chunking. *)
val parallel_reduce :
  ?chunk:int -> int -> init:'a -> range:(int -> int -> 'a) -> combine:('a -> 'a -> 'a) -> 'a
