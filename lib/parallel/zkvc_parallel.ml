(* Chunk-grabbing domain pool. One shared task slot: the caller acquires
   the slot with a single compare-and-set, publishes a task under
   [mutex], bumps [generation] and broadcasts; workers (and the caller
   itself) pull chunks from the task's atomic cursor until it is drained.
   Completion is detected by counting finished chunks, so the caller
   never joins domains — workers are reused across calls and live for
   the whole process.

   Concurrent submitters are safe: whoever wins the compare-and-set owns
   the slot until its task drains; every loser (a second systhread, or a
   nested call from the slot holder's own chunk) degrades to sequential
   execution instead of corrupting [current]/[generation] or stealing
   the winner's completion broadcast.

   Determinism needs nothing from this file beyond "every index is
   processed exactly once": all parallelised kernels write disjoint slots
   holding canonical field representations. *)

type task =
  { run : int -> int -> unit; (* process the half-open range [lo, hi) *)
    hi : int;
    chunk : int;
    cursor : int Atomic.t;
    chunks_left : int Atomic.t;
    first_exn : exn option Atomic.t }

let mutex = Mutex.create ()
let work_cond = Condition.create ()
let done_cond = Condition.create ()
let current : task option ref = ref None
let generation = ref 0
let spawned = ref 0

(* true on pool workers (set once per worker domain); a parallel call from
   a worker runs sequentially rather than touching the shared task slot *)
let on_worker = Domain.DLS.new_key (fun () -> false)

(* true while the task slot is free. Acquired with one compare-and-set in
   [parallel_for_ranges]; a caller that loses the race — another thread
   mid-task, or a nested call from the holder's own chunk — runs
   sequentially. Released only after the task has fully drained, so the
   next acquirer finds [current] empty and no stale completion signals. *)
let slot_free = Atomic.make true

let max_jobs = 64

let clamp_jobs n =
  if n <= 0 then Stdlib.max 1 (Stdlib.min max_jobs (Domain.recommended_domain_count ()))
  else Stdlib.max 1 (Stdlib.min max_jobs n)

let env_jobs =
  match Sys.getenv_opt "ZKVC_JOBS" with
  | None -> 1
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n -> clamp_jobs n
     | None -> 1)

let current_jobs = ref env_jobs

let jobs () = !current_jobs
let set_jobs n = current_jobs := clamp_jobs n

let run_chunks t =
  let rec loop () =
    let lo = Atomic.fetch_and_add t.cursor t.chunk in
    if lo < t.hi then begin
      (try t.run lo (Stdlib.min (lo + t.chunk) t.hi)
       with e -> ignore (Atomic.compare_and_set t.first_exn None (Some e)));
      let left = Atomic.fetch_and_add t.chunks_left (-1) - 1 in
      if left = 0 then begin
        Mutex.lock mutex;
        Condition.broadcast done_cond;
        Mutex.unlock mutex
      end;
      loop ()
    end
  in
  loop ()

let worker_loop () =
  Domain.DLS.set on_worker true;
  let seen = ref 0 in
  while true do
    Mutex.lock mutex;
    while !generation = !seen do
      Condition.wait work_cond mutex
    done;
    seen := !generation;
    let t = !current in
    Mutex.unlock mutex;
    match t with Some t -> run_chunks t | None -> ()
  done

let ensure_workers n =
  while !spawned < n do
    ignore (Domain.spawn worker_loop);
    incr spawned
  done

let sequential n f = if n > 0 then f 0 n

let default_chunk n j = Stdlib.max 1 ((n + (4 * j) - 1) / (4 * j))

let parallel_for_ranges ?chunk n f =
  if n <= 0 then ()
  else begin
    let j = !current_jobs in
    if j <= 1 || n = 1 || Domain.DLS.get on_worker then sequential n f
    else begin
      let chunk =
        match chunk with Some c -> Stdlib.max 1 c | None -> default_chunk n j
      in
      let nchunks = (n + chunk - 1) / chunk in
      if nchunks <= 1 then sequential n f
      else if not (Atomic.compare_and_set slot_free true false) then
        (* slot held by a concurrent submitter or an enclosing call *)
        sequential n f
      else
        Fun.protect
          ~finally:(fun () -> Atomic.set slot_free true)
          (fun () ->
            (* only the slot holder spawns, so [spawned] needs no lock *)
            ensure_workers (j - 1);
            let t =
              { run = f;
                hi = n;
                chunk;
                cursor = Atomic.make 0;
                chunks_left = Atomic.make nchunks;
                first_exn = Atomic.make None }
            in
            Mutex.lock mutex;
            current := Some t;
            incr generation;
            Condition.broadcast work_cond;
            Mutex.unlock mutex;
            run_chunks t;
            Mutex.lock mutex;
            while Atomic.get t.chunks_left > 0 do
              Condition.wait done_cond mutex
            done;
            current := None;
            Mutex.unlock mutex;
            match Atomic.get t.first_exn with Some e -> raise e | None -> ())
    end
  end

let parallel_for ?chunk n f =
  parallel_for_ranges ?chunk n (fun lo hi ->
      for i = lo to hi - 1 do
        f i
      done)

let parallel_init n f =
  if n <= 0 then [||]
  else begin
    let out = Array.make n (f 0) in
    parallel_for (n - 1) (fun i -> out.(i + 1) <- f (i + 1));
    out
  end

let parallel_map f a = parallel_init (Array.length a) (fun i -> f a.(i))

let parallel_reduce ?chunk n ~init ~range ~combine =
  if n <= 0 then init
  else begin
    let j = !current_jobs in
    let chunk = match chunk with Some c -> Stdlib.max 1 c | None -> default_chunk n j in
    let nchunks = (n + chunk - 1) / chunk in
    if nchunks <= 1 then combine init (range 0 n)
    else begin
      let parts = Array.make nchunks init in
      parallel_for ~chunk:1 nchunks (fun ci ->
          let lo = ci * chunk in
          parts.(ci) <- range lo (Stdlib.min (lo + chunk) n));
      Array.fold_left combine init parts
    end
  end
