(** Lowering of a Transformer architecture (+ token-mixer variant) to the
    multiset of verifiable ops, with per-layer labels. Counting is purely
    structural — it needs the architecture spec, not the weights — so the
    full ImageNet-scale models are costed exactly without materialising
    billion-constraint circuits. *)

module Spec = Zkvc.Matmul_spec
module Tm = Zkvc_nn.Token_mixer
module Models = Zkvc_nn.Models

type layer_ops = { label : string; ops : Ops.t list }

let mm a n b = Ops.Op_matmul (Spec.dims ~a ~n ~b)

let mixer_ops kind ~tokens:t ~dim:d ~heads:h =
  let dh = d / h in
  match kind with
  | Tm.Softmax_attn ->
    [ mm t d d; mm t d d; mm t d d; Ops.Op_rescale (3 * t * d) ]
    @ List.concat
        (List.init h (fun _ ->
             [ mm t dh t; Ops.Op_rescale (2 * t * t) (* score rescale + 1/√d *) ]))
    @ [ Ops.Op_softmax { rows = h * t; len = t } ]
    @ List.concat (List.init h (fun _ -> [ mm t t dh; Ops.Op_rescale (t * dh) ]))
    @ [ mm t d d; Ops.Op_rescale (t * d) ]
  | Tm.Scaling_attn ->
    (* softmax-free: per head ctx = KᵀV/t (rescale + verified /t), then Q·ctx *)
    [ mm t d d; mm t d d; mm t d d; Ops.Op_rescale (3 * t * d) ]
    @ List.concat
        (List.init h (fun _ ->
             [ mm dh t dh;
               Ops.Op_rescale (dh * dh);
               Ops.Op_scale_div { elems = dh * dh; divisor = t };
               mm t dh dh;
               Ops.Op_rescale (t * dh) ]))
    @ [ mm t d d; Ops.Op_rescale (t * d) ]
  | Tm.Pooling -> [ Ops.Op_mean_pool { out_elems = d; window = t } ]
  | Tm.Linear_mix -> [ mm t t d; Ops.Op_rescale (t * d) ]

let block_ops kind ~tokens:t ~dim:d ~heads ~mlp_ratio =
  let md = mlp_ratio * d in
  [ Ops.Op_layernorm { rows = t; cols = d } ]
  @ mixer_ops kind ~tokens:t ~dim:d ~heads
  @ [ Ops.Op_layernorm { rows = t; cols = d };
      mm t d md;
      Ops.Op_rescale (t * md);
      Ops.Op_gelu (t * md);
      mm t md d;
      Ops.Op_rescale (t * d) ]

(** Per-layer op lists for an architecture under a mixer variant. *)
let compile (arch : Models.arch) variant =
  let total_blocks = List.fold_left (fun acc (nb, _, _) -> acc + nb) 0 arch.Models.stage_spec in
  let first_dim = match arch.Models.stage_spec with (_, d, _) :: _ -> d | [] -> assert false in
  let layers = ref [] in
  let push label ops = layers := { label; ops } :: !layers in
  push "embed"
    [ mm arch.Models.tokens arch.Models.patch_dim first_dim;
      Ops.Op_rescale (arch.Models.tokens * first_dim) ];
  let block_idx = ref 0 and tokens = ref arch.Models.tokens and prev_dim = ref first_dim in
  List.iteri
    (fun stage_idx (nblocks, dim, pool) ->
      if stage_idx > 0 then begin
        tokens := !tokens / pool;
        push
          (Printf.sprintf "stage%d-downsample" stage_idx)
          [ Ops.Op_mean_pool { out_elems = !tokens * !prev_dim; window = pool };
            mm !tokens !prev_dim dim;
            Ops.Op_rescale (!tokens * dim) ]
      end;
      for _ = 1 to nblocks do
        let kind =
          Models.mixer_for arch variant ~block_index:!block_idx ~total_blocks
            ~tokens:!tokens
        in
        push
          (Printf.sprintf "block%d-%s" !block_idx (Tm.kind_name kind))
          (block_ops kind ~tokens:!tokens ~dim ~heads:arch.Models.heads
             ~mlp_ratio:arch.Models.mlp_ratio);
        incr block_idx
      done;
      prev_dim := dim)
    arch.Models.stage_spec;
  let d_last = !prev_dim in
  push "head"
    [ Ops.Op_layernorm { rows = !tokens; cols = d_last };
      Ops.Op_mean_pool { out_elems = d_last; window = !tokens };
      mm 1 d_last arch.Models.num_classes;
      Ops.Op_rescale arch.Models.num_classes ];
  List.rev !layers

module Counter = Layer_circuit.Make (Zkvc_field.Fr)

(** Synthesize every layer of a compiled model into one builder, each
    layer's ops inside a provenance region named by its [label] — this is
    what makes the structural layer labels real, measurable regions. The
    result is live: callers can [finalize_attributed] it for the compiled
    system plus the per-layer region tree. Dummy-witness semantics are the
    same as {!Layer_circuit.Make.build_op}. *)
let synthesize ?strategy cfg layers =
  let b = Counter.B.create () in
  List.iter
    (fun { label; ops } ->
      Counter.B.in_region b label (fun () ->
          List.iter (fun op -> Counter.build_op ?strategy b cfg op) ops))
    layers;
  b

(** Total exact constraint/variable counts for a compiled model. *)
let total_counts ?strategy cfg layers =
  List.fold_left
    (fun acc { ops; _ } ->
      List.fold_left
        (fun acc op -> Ops.add_counts acc (Counter.count ?strategy cfg op))
        acc ops)
    Ops.zero_counts layers

(** Constraints attributable to matmuls vs everything else — the split the
    paper's CRPC section reasons about. *)
let matmul_split ?strategy cfg layers =
  List.fold_left
    (fun (matmul, other) { ops; _ } ->
      List.fold_left
        (fun (matmul, other) op ->
          let c = (Counter.count ?strategy cfg op).Ops.constraints in
          match op with
          | Ops.Op_matmul _ -> (matmul + c, other)
          | Ops.Op_rescale _ | Ops.Op_scale_div _ | Ops.Op_softmax _
          | Ops.Op_gelu _ | Ops.Op_layernorm _ | Ops.Op_mean_pool _ ->
            (matmul, other + c))
        (matmul, other) ops)
    (0, 0) layers
