(** Lowering of a Transformer architecture (+ token-mixer variant) to the
    multiset of verifiable ops, with per-layer labels. Counting is purely
    structural — it needs the architecture spec, not the weights — so the
    ImageNet-scale models are costed exactly without materialising
    billion-constraint circuits. *)

type layer_ops = { label : string; ops : Ops.t list }

(** Ops of one mixer at the given block geometry. *)
val mixer_ops : Zkvc_nn.Token_mixer.kind -> tokens:int -> dim:int -> heads:int -> Ops.t list

(** Ops of a full block: pre-LN + mixer + pre-LN + GELU MLP. *)
val block_ops :
  Zkvc_nn.Token_mixer.kind -> tokens:int -> dim:int -> heads:int -> mlp_ratio:int -> Ops.t list

(** Per-layer op lists for an architecture under a mixer variant
    (embedding, per-stage downsampling, blocks, classifier head). *)
val compile : Zkvc_nn.Models.arch -> Zkvc_nn.Models.variant -> layer_ops list

module Counter : module type of Layer_circuit.Make (Zkvc_field.Fr)

(** Synthesize every layer into one builder, each layer's ops inside a
    provenance region named by its [label]. Callers can
    [Counter.B.finalize_attributed] the result for the compiled system
    plus the per-layer region tree. Uses the same dummy-witness semantics
    as {!Layer_circuit.Make.build_op}; intended for profiling at shrunk
    dims, not full ImageNet scale. *)
val synthesize :
  ?strategy:Zkvc.Matmul_circuit.strategy ->
  Zkvc.Nonlinear.config ->
  layer_ops list ->
  Counter.B.t

(** Total exact constraint/variable counts for a compiled model. *)
val total_counts :
  ?strategy:Zkvc.Matmul_circuit.strategy ->
  Zkvc.Nonlinear.config ->
  layer_ops list ->
  Ops.counts

(** Constraints attributable to matmuls vs everything else — the split the
    paper's CRPC section reasons about. *)
val matmul_split :
  ?strategy:Zkvc.Matmul_circuit.strategy ->
  Zkvc.Nonlinear.config ->
  layer_ops list ->
  int * int
