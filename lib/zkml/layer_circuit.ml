(** R1CS constructions for each {!Ops.t}, on top of the generic gadgets and
    zkVC's non-linear approximations.

    Signed fixed-point values are embedded in the field as [v mod p]; every
    division-flavoured gadget shifts its dividend by a large constant
    multiple of the divisor first, which keeps floor-division semantics
    while making the dividend a genuine non-negative integer
    (floor((v + K·d)/d) − K = floor(v/d)). *)

module Bigint = Zkvc_num.Bigint
module Nl = Zkvc.Nonlinear

module Make (F : Zkvc_field.Field_intf.S) = struct
  module L = Zkvc_r1cs.Lc.Make (F)
  module B = Zkvc_r1cs.Builder.Make (F)
  module G = Zkvc_r1cs.Gadgets.Make (F)
  module NlG = Nl.Make (F)
  module Mc = Zkvc.Matmul_circuit.Make (F)
  module Spec = Zkvc.Matmul_spec.Make (F)
  module Cs = Zkvc_r1cs.Constraint_system.Make (F)

  (* Offset used to make signed dividends non-negative: values are assumed
     below 2^(value_bits + fractional_bits) in magnitude, with headroom. *)
  let offset_log cfg = cfg.Nl.value_bits + cfg.Nl.fractional_bits + 4

  (** Signed floor division by a positive constant [d]:
      returns a wire holding [floor(x / d)]. *)
  let signed_div_by_constant b cfg x d =
    let k = Bigint.shift_left Bigint.one (offset_log cfg) in
    let shifted = L.add x (L.constant (F.of_bigint (Bigint.mul k d))) in
    let q, _r =
      G.div_by_constant b ~q_width:(offset_log cfg + 2) shifted d
    in
    L.sub (L.of_var q) (L.constant (F.of_bigint k))

  (** Signed floor division by a positive wire divisor. *)
  let signed_div_rem b cfg x y ~r_width =
    let k = Bigint.shift_left Bigint.one (offset_log cfg) in
    let shifted = L.add x (L.scale (F.of_bigint k) y) in
    let q, _r =
      G.div_rem b ~q_width:(offset_log cfg + 2) ~r_width shifted y
    in
    L.sub (L.of_var q) (L.constant (F.of_bigint k))

  (** Fixed-point rescale: [floor(x / S)] for a (possibly signed) raw
      product at scale S². *)
  let rescale b cfg x =
    signed_div_by_constant b cfg x (Bigint.of_int (Nl.scale cfg))

  (** Softmax over signed score wires: shifts by 2^(value_bits−1) (softmax
      is shift-invariant) so the max/exp gadgets see non-negative values.
      Scores must satisfy |score| < 2^(value_bits−1). *)
  let softmax_row b cfg xs =
    let c = F.of_int (1 lsl (cfg.Nl.value_bits - 1)) in
    let shifted =
      List.map
        (fun x ->
          let v = B.alloc b (F.add (B.eval b (L.of_var x)) c) in
          G.assert_equal b (L.of_var v) (L.add (L.of_var x) (L.constant c));
          v)
        xs
    in
    NlG.softmax b cfg shifted

  let gelu = NlG.gelu

  (** Integer-sqrt gadget: wire [r] with r² ≤ v < (r+1)², v a non-negative
      LC below 2^(2·value_bits). *)
  let isqrt b cfg v =
    let width = 2 * cfg.Nl.value_bits in
    let vv =
      match Bigint.to_int_opt (F.to_bigint (B.eval b v)) with
      | Some x -> x
      | None -> invalid_arg "Layer_circuit.isqrt: witness out of int range"
    in
    let r = B.alloc b (F.of_int (Zkvc_nn.Quantize.isqrt vv)) in
    let rsq = G.mul b (L.of_var r) (L.of_var r) in
    (* v - r² ≥ 0 *)
    G.assert_in_range b ~width (L.sub v (L.of_var rsq));
    (* (r+1)² - 1 - v = r² + 2r - v ≥ 0 *)
    G.assert_in_range b ~width
      (L.sub (L.add (L.of_var rsq) (L.scale (F.of_int 2) (L.of_var r))) v);
    r

  (** Per-row layer normalisation, exactly {!Zkvc_nn.Quantize.layernorm}:
      mean and variance by verified floor division, σ by the isqrt gadget,
      then one signed division per element. Returns the output wires. *)
  let layernorm_row b cfg xs =
    let cols = List.length xs in
    if cols = 0 then invalid_arg "Layer_circuit.layernorm_row: empty";
    let s = Nl.scale cfg in
    let sum = List.fold_left (fun acc x -> L.add acc (L.of_var x)) L.zero xs in
    let mean = signed_div_by_constant b cfg sum (Bigint.of_int cols) in
    let diffs = List.map (fun x -> L.sub (L.of_var x) mean) xs in
    let sq_sum =
      List.fold_left (fun acc d -> L.add acc (L.of_var (G.mul b d d))) L.zero diffs
    in
    let var = signed_div_by_constant b cfg sq_sum (Bigint.of_int cols) in
    let sigma_raw = isqrt b cfg var in
    (* σ is clamped to ≥ 1 in the reference; enforce with a select on σ=0 *)
    let is_z = G.is_zero b (L.of_var sigma_raw) in
    let sigma = G.select b (L.of_var is_z) (L.constant F.one) (L.of_var sigma_raw) in
    List.map
      (fun d ->
        signed_div_rem b cfg
          (L.scale (F.of_int s) d)
          (L.of_var sigma)
          ~r_width:(2 * cfg.Nl.value_bits))
      diffs

  (** Average of [window] wires with verified floor division. *)
  let mean_pool b cfg xs =
    let window = List.length xs in
    let sum = List.fold_left (fun acc x -> L.add acc (L.of_var x)) L.zero xs in
    signed_div_by_constant b cfg sum (Bigint.of_int window)

  (* ------------------------------------------------------------------ *)
  (* Building a full (dummy-witness) circuit for one op                   *)

  let alloc_value b v = B.alloc b (F.of_int v)

  (** Construct a representative circuit for [op] with synthetic witness
      values. The circuit shape depends only on [op] and [cfg], never on
      the values, so this doubles as the exact constraint counter.

      Each op's synthesis runs inside a provenance region named after the
      op ({!Ops.name}), so profiled builds attribute constraints per op;
      [Op_matmul] relies on {!Zkvc.Matmul_circuit.build}'s own
      ["matmul/..."] regions instead of opening a duplicate. *)
  let build_op ?(strategy = Zkvc.Matmul_circuit.Crpc_psq) b cfg (op : Ops.t) =
    let st = Random.State.make [| 7; 77 |] in
    let in_op f = B.in_region b (Ops.name op) f in
    match op with
    | Ops.Op_matmul d ->
      let x = Spec.random_matrix st ~rows:d.Zkvc.Matmul_spec.a ~cols:d.Zkvc.Matmul_spec.n ~bound:64 in
      let w = Spec.random_matrix st ~rows:d.Zkvc.Matmul_spec.n ~cols:d.Zkvc.Matmul_spec.b ~bound:64 in
      let y = Spec.multiply x w in
      let challenge =
        if Zkvc.Matmul_circuit.uses_challenge strategy then
          Some (Mc.derive_challenge ~x ~w ~y)
        else None
      in
      let _ = Mc.build b strategy ?challenge ~x ~w ~y_public:false d in
      ()
    | Ops.Op_rescale n ->
      in_op (fun () ->
          for _ = 1 to n do
            let x = alloc_value b (Random.State.int st 10000 - 5000) in
            ignore (rescale b cfg (L.of_var x))
          done)
    | Ops.Op_scale_div { elems; divisor } ->
      in_op (fun () ->
          for _ = 1 to elems do
            let x = alloc_value b (Random.State.int st 10000 - 5000) in
            ignore (signed_div_by_constant b cfg (L.of_var x) (Bigint.of_int divisor))
          done)
    | Ops.Op_softmax { rows; len } ->
      in_op (fun () ->
          for _ = 1 to rows do
            let xs = List.init len (fun _ -> alloc_value b (Random.State.int st 512 - 256)) in
            ignore (softmax_row b cfg xs)
          done)
    | Ops.Op_gelu n ->
      in_op (fun () ->
          for _ = 1 to n do
            let x = alloc_value b (Random.State.int st 512 - 256) in
            ignore (gelu b cfg x)
          done)
    | Ops.Op_layernorm { rows; cols } ->
      in_op (fun () ->
          for _ = 1 to rows do
            let xs = List.init cols (fun _ -> alloc_value b (Random.State.int st 512 - 256)) in
            ignore (layernorm_row b cfg xs)
          done)
    | Ops.Op_mean_pool { out_elems; window } ->
      in_op (fun () ->
          for _ = 1 to out_elems do
            let xs = List.init window (fun _ -> alloc_value b (Random.State.int st 512 - 256)) in
            ignore (mean_pool b cfg xs)
          done)

  (* ------------------------------------------------------------------ *)
  (* Exact constraint counting without full-size builds                   *)

  let count_of_build ?strategy cfg op =
    let b = B.create () in
    build_op ?strategy b cfg op;
    let cs, _ = B.finalize b in
    { Ops.constraints = Cs.num_constraints cs; variables = Cs.num_vars cs }

  let memo :
      (Zkvc.Matmul_circuit.strategy option * Nl.config * Ops.t, Ops.counts) Hashtbl.t =
    Hashtbl.create 64

  let memo_count ?strategy cfg op =
    match Hashtbl.find_opt memo (strategy, cfg, op) with
    | Some c -> c
    | None ->
      let c = count_of_build ?strategy cfg op in
      Hashtbl.add memo (strategy, cfg, op) c;
      c

  (** Exact counts for an op, computed with O(1)-size circuit builds:
      every non-matmul op is affine in each of its size parameters
      (validated against direct builds by the test suite), so builds at
      parameter values 2 and 3 pin the closed form; matmul uses the
      analytic formulas of {!Zkvc.Matmul_circuit}. *)
  let count ?(strategy = Zkvc.Matmul_circuit.Crpc_psq) cfg (op : Ops.t) : Ops.counts =
    (* replicate a single-instance count [reps] times (wire 0 is shared;
       exact because instances never share other wires) *)
    let replicate reps (c : Ops.counts) =
      { Ops.constraints = reps * c.Ops.constraints;
        variables = 1 + (reps * (c.Ops.variables - 1)) }
    in
    (* per-unit cost from one real (memoized) build at the true inner size:
       division-gadget widths depend on the divisor's bit length, so the
       inner size must not be extrapolated *)
    let unit op = memo_count ~strategy cfg op in
    match op with
    | Ops.Op_matmul d ->
      let { Zkvc.Matmul_spec.a; n; b = bb } = d in
      let product_wires =
        match strategy with
        | Zkvc.Matmul_circuit.Vanilla -> a * bb * n
        | Vanilla_psq -> a * bb * (n - 1)
        | Crpc -> n
        | Crpc_psq -> n - 1
      in
      { Ops.constraints = Zkvc.Matmul_circuit.expected_constraints strategy d;
        variables = 1 + (a * n) + (n * bb) + (a * bb) + product_wires }
    | Ops.Op_rescale k -> replicate k (unit (Ops.Op_rescale 1))
    | Ops.Op_gelu k -> replicate k (unit (Ops.Op_gelu 1))
    | Ops.Op_scale_div { elems; divisor } ->
      replicate elems (unit (Ops.Op_scale_div { elems = 1; divisor }))
    | Ops.Op_softmax { rows; len } -> replicate rows (unit (Ops.Op_softmax { rows = 1; len }))
    | Ops.Op_layernorm { rows; cols } ->
      replicate rows (unit (Ops.Op_layernorm { rows = 1; cols }))
    | Ops.Op_mean_pool { out_elems; window } ->
      replicate out_elems (unit (Ops.Op_mean_pool { out_elems = 1; window }))
end
