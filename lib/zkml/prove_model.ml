(** End-to-end verifiable-inference measurements: real per-layer proofs at
    tractable sizes, and calibrated extrapolation to the paper's model
    scales through exact constraint counts (DESIGN.md, "Reproduction
    scaling"). *)

module Fr = Zkvc_field.Fr
module Nl = Zkvc.Nonlinear
module Q = Zkvc_nn.Quantize
module Lc = Layer_circuit.Make (Fr)
module Lin = Zkvc_r1cs.Lc.Make (Fr)
module Bld = Zkvc_r1cs.Builder.Make (Fr)
module Cs = Zkvc_r1cs.Constraint_system.Make (Fr)
module Groth16 = Zkvc_groth16.Groth16
module Spartan = Zkvc_spartan.Spartan
module Models = Zkvc_nn.Models

(* [Span.now] follows the installed span clock, so these measurements are
   wall time whenever the binary installed one (CPU time misreports
   multi-domain proving; see Zkvc_obs.Span.set_clock). *)
let time f =
  let t0 = Zkvc_obs.Span.now () in
  let r = f () in
  (r, Zkvc_obs.Span.now () -. t0)

(** Prove one op-circuit for real on the given backend; returns
    (constraints, prove seconds, verify seconds, proof bytes). *)
let prove_op ?strategy backend cfg op =
  let rng = Random.State.make [| 5; 55 |] in
  let b = Bld.create () in
  Lc.build_op ?strategy b cfg op;
  let cs, assignment = Bld.finalize b in
  Cs.check_satisfied cs assignment;
  let nc = Cs.num_constraints cs in
  let public_inputs = Array.to_list (Array.sub assignment 1 (Cs.num_inputs cs)) in
  match (backend : Cost_model.backend) with
  | Backend_groth16 ->
    let qap = Groth16.Qap.create cs in
    let pk, vk = Groth16.setup rng qap in
    let proof, t_prove = time (fun () -> Groth16.prove rng pk qap assignment) in
    let ok, t_verify = time (fun () -> Groth16.verify vk ~public_inputs proof) in
    if not ok then failwith "prove_op: groth16 verification failed";
    (nc, t_prove, t_verify, Groth16.proof_size_bytes proof)
  | Backend_spartan ->
    let inst = Spartan.preprocess cs in
    let key = Spartan.setup inst in
    let proof, t_prove = time (fun () -> Spartan.prove rng key inst assignment) in
    let ok, t_verify = time (fun () -> Spartan.verify key inst ~public_inputs proof) in
    if not ok then failwith "prove_op: spartan verification failed";
    (nc, t_prove, t_verify, Spartan.proof_size_bytes proof)

(** Full-model proving-time estimate from exact counts + calibration. *)
let estimate_model ?strategy ~calib cfg arch variant =
  let layers = Compiler.compile arch variant in
  let counts = Compiler.total_counts ?strategy cfg layers in
  (counts, Cost_model.estimate calib counts.Ops.constraints)

type table3_row =
  { dataset : string;
    variant : Models.variant;
    paper_top1 : float option;
    constraints : int;
    est_prove_g : float;
    est_prove_s : float;
    paper_prove_g : float option;
    paper_prove_s : float option }

let paper_row table dataset variant_name =
  List.find_map
    (fun (ds, v, _, pg, ps) -> if ds = dataset && v = variant_name then Some (pg, ps) else None)
    table

(** One Table-III-style row: exact counts + both backends' estimates +
    the paper's reported numbers for shape comparison. *)
let table3_row ?strategy ~calib_g ~calib_s cfg ~dataset arch variant =
  let layers = Compiler.compile arch variant in
  let counts = Compiler.total_counts ?strategy cfg layers in
  let vname = Models.variant_name variant in
  let paper = paper_row Cost_model.paper_table3 dataset vname in
  { dataset;
    variant;
    paper_top1 = Cost_model.paper_accuracy ~dataset ~variant:vname;
    constraints = counts.Ops.constraints;
    est_prove_g = Cost_model.estimate calib_g counts.Ops.constraints;
    est_prove_s = Cost_model.estimate calib_s counts.Ops.constraints;
    paper_prove_g = Option.map fst paper;
    paper_prove_s = Option.map snd paper }

(** A real, fully proven linear layer (matmul + per-element rescale) with
    witness values from the quantized model semantics; used by tests and
    the examples to demonstrate the complete flow. *)
let linear_layer_circuit ?(strategy = Zkvc.Matmul_circuit.Crpc_psq) cfg ~x ~w d =
  let b = Bld.create () in
  let xf = Array.map (Array.map Fr.of_int) x in
  let wf = Array.map (Array.map Fr.of_int) w in
  let yf = Lc.Spec.multiply xf wf in
  let challenge =
    if Zkvc.Matmul_circuit.uses_challenge strategy then
      Some (Lc.Mc.derive_challenge ~x:xf ~w:wf ~y:yf)
    else None
  in
  let wires, _ = Lc.Mc.build b strategy ?challenge ~y_public:false ~x:xf ~w:wf d in
  let outputs =
    Array.map (Array.map (fun yw -> Lc.rescale b cfg (Lin.of_var yw))) wires.Lc.Mc.y
  in
  let out_values = Array.map (Array.map (fun o -> Bld.eval b o)) outputs in
  let cs, assignment = Bld.finalize b in
  (cs, assignment, out_values)
