(** Prover-cost calibration and the paper's reported numbers.

    Calibration runs real proofs on synthetic squaring-chain circuits at
    two sizes and fits  [t(n) = α·n + β·n·log₂ n]  per backend, which the
    end-to-end tables use to extrapolate full-model proving time from the
    exact constraint counts produced by {!Compiler}. The fit is validated
    against held-out real proofs by the test suite.

    Prior systems that cannot be run here (vCNN, ZEN, zkML/halo2, zkCNN,
    pvCNN) are emulated from their paper-reported ratios against the
    measured vanilla baselines — rows carrying these values are labelled
    "(emulated)" in the bench output (DESIGN.md substitution 4). *)

module Fr = Zkvc_field.Fr
module L = Zkvc_r1cs.Lc.Make (Fr)
module Bld = Zkvc_r1cs.Builder.Make (Fr)
module G = Zkvc_r1cs.Gadgets.Make (Fr)
module Groth16 = Zkvc_groth16.Groth16
module Spartan = Zkvc_spartan.Spartan

type backend = Zkvc.Api.backend = Backend_groth16 | Backend_spartan

(* squaring chain: n constraints, n+2 wires *)
let synthetic_circuit n =
  let b = Bld.create () in
  let x = Bld.alloc b (Fr.of_int 3) in
  let acc = ref (L.of_var x) in
  for _ = 1 to n do
    acc := L.of_var (G.mul b !acc !acc)
  done;
  Bld.finalize b

(* [Span.now] follows the installed span clock, so these measurements are
   wall time whenever the binary installed one (CPU time misreports
   multi-domain proving; see Zkvc_obs.Span.set_clock). *)
let time f =
  let t0 = Zkvc_obs.Span.now () in
  let r = f () in
  (r, Zkvc_obs.Span.now () -. t0)

let measure_prove backend n =
  let rng = Random.State.make [| n; 17 |] in
  let cs, assignment = synthetic_circuit n in
  match backend with
  | Backend_groth16 ->
    let qap = Groth16.Qap.create cs in
    let pk, _vk = Groth16.setup rng qap in
    let _proof, t = time (fun () -> Groth16.prove rng pk qap assignment) in
    t
  | Backend_spartan ->
    let inst = Spartan.preprocess cs in
    let key = Spartan.setup inst in
    let _proof, t = time (fun () -> Spartan.prove rng key inst assignment) in
    t

type calibration = { alpha : float; beta : float (* t(n) = α·n + β·n·log2 n *) }

(* Two-point fit, clamped to non-negative coefficients: measurement noise
   at small sizes can otherwise produce a negative α that dominates (and
   flips the sign of) extrapolations to 10⁸-constraint models. *)
let fit (n1, t1) (n2, t2) =
  let n1f = float_of_int n1 and n2f = float_of_int n2 in
  let l1 = log n1f /. log 2. and l2 = log n2f /. log 2. in
  let det = (n1f *. n2f *. l2) -. (n2f *. n1f *. l1) in
  let candidate =
    if abs_float det < 1e-12 then { alpha = t1 /. n1f; beta = 0. }
    else begin
      let beta = ((t2 *. n1f) -. (t1 *. n2f)) /. det in
      let alpha = (t1 -. (beta *. n1f *. l1)) /. n1f in
      { alpha; beta }
    end
  in
  if candidate.alpha >= 0. && candidate.beta >= 0. then candidate
  else if candidate.beta < 0. then { alpha = t2 /. n2f; beta = 0. }
  else { alpha = 0.; beta = t2 /. (n2f *. l2) }

(** Calibrate a backend with real proofs at the two given circuit sizes. *)
let calibrate ?(n1 = 1 lsl 10) ?(n2 = 1 lsl 12) backend =
  let t1 = measure_prove backend n1 in
  let t2 = measure_prove backend n2 in
  fit (n1, t1) (n2, t2)

let estimate calib n =
  let nf = float_of_int (Stdlib.max 2 n) in
  (calib.alpha *. nf) +. (calib.beta *. nf *. (log nf /. log 2.))

(* ------------------------------------------------------------------ *)
(* Paper-reported data                                                   *)

(** Table II of the paper (matmul micro-benchmark ablation, seconds). *)
let paper_table2 =
  [ (* crpc, psq, groth16 prove, groth16 verify, spartan prove, spartan verify *)
    (false, false, 9.12, 0.002, 9.04, 0.36);
    (false, true, 8.69, 0.002, 8.95, 0.32);
    (true, false, 1.01, 0.002, 1.79, 0.08);
    (true, true, 0.73, 0.002, 1.75, 0.05) ]

(** Figure 3 / Figure 6 comparison schemes with paper-reported proving
    times at the [49,64]×[64,128] point, plus qualitative properties
    (Table I). *)
type scheme =
  { scheme_name : string;
    interactive : bool;
    constant_proof : bool;
    trusted_setup : bool;
    emulated : bool; (* true when we reproduce it from reported ratios *)
    paper_prove_s : float; (* at [49,64]x[64,128] *)
    paper_verify_s : float;
    paper_proof_kb : float }

let schemes =
  [ { scheme_name = "vCNN"; interactive = false; constant_proof = true; trusted_setup = true;
      emulated = true; paper_prove_s = 9.0; paper_verify_s = 0.002; paper_proof_kb = 0.127 };
    { scheme_name = "ZEN"; interactive = false; constant_proof = true; trusted_setup = true;
      emulated = true; paper_prove_s = 7.1; paper_verify_s = 0.002; paper_proof_kb = 0.127 };
    { scheme_name = "zkML(halo2)"; interactive = false; constant_proof = false; trusted_setup = true;
      emulated = true; paper_prove_s = 4.1; paper_verify_s = 0.01; paper_proof_kb = 3.2 };
    { scheme_name = "zkCNN"; interactive = true; constant_proof = false; trusted_setup = false;
      emulated = true; paper_prove_s = 0.38; paper_verify_s = 0.4; paper_proof_kb = 113.0 };
    { scheme_name = "groth16"; interactive = false; constant_proof = true; trusted_setup = true;
      emulated = false; paper_prove_s = 9.12; paper_verify_s = 0.002; paper_proof_kb = 0.127 };
    { scheme_name = "Spartan"; interactive = false; constant_proof = false; trusted_setup = false;
      emulated = false; paper_prove_s = 9.04; paper_verify_s = 0.36; paper_proof_kb = 48.0 };
    { scheme_name = "zkVC-G"; interactive = false; constant_proof = true; trusted_setup = true;
      emulated = false; paper_prove_s = 0.73; paper_verify_s = 0.002; paper_proof_kb = 0.127 };
    { scheme_name = "zkVC-S"; interactive = false; constant_proof = false; trusted_setup = false;
      emulated = false; paper_prove_s = 1.75; paper_verify_s = 0.05; paper_proof_kb = 32.0 } ]

(** Table III rows: (dataset, variant, paper top-1 %, paper P_G s, paper P_S s). *)
let paper_table3 =
  [ ("Cifar-10", "SoftApprox.", 93.5, 725.2, 1006.2);
    ("Cifar-10", "SoftFree-S", 88.3, 568.4, 742.8);
    ("Cifar-10", "SoftFree-P", 75.1, 262.7, 300.6);
    ("Cifar-10", "zkVC", 91.6, 458.6, 591.0);
    ("TinyImageNet", "SoftApprox.", 60.5, 1609.6, 2197.4);
    ("TinyImageNet", "SoftFree-S", 51.4, 1004.9, 1348.8);
    ("TinyImageNet", "SoftFree-P", 42.7, 443.7, 503.6);
    ("TinyImageNet", "zkVC", 55.8, 879.3, 1161.4);
    ("ImageNet", "SoftApprox.", 81.0, 10700.0, 12857.7);
    ("ImageNet", "SoftFree-S", 78.5, 4521.3, 5812.7);
    ("ImageNet", "SoftFree-P", 77.2, 2904.0, 3667.8);
    ("ImageNet", "zkVC", 80.3, 3457.1, 4417.1) ]

(** Table IV rows: (variant, MNLI, QNLI, SST-2, MRPC, P_G, P_S). *)
let paper_table4 =
  [ ("SoftApprox.", 74.5, 83.9, 85.8, 71.2, 1299.5, 1793.3);
    ("SoftFree-S", 72.7, 81.1, 85.2, 70.4, 917.1, 1201.4);
    ("SoftFree-L", 67.3, 75.3, 84.5, 68.7, 680.8, 782.0);
    ("zkVC", 70.8, 80.2, 84.7, 69.3, 798.9, 992.2) ]

(** Paper accuracy for (dataset, variant) — carried as recorded constants
    because no training data exists in this environment (DESIGN.md
    substitution 3). *)
let paper_accuracy ~dataset ~variant =
  List.find_map
    (fun (ds, v, acc, _, _) -> if ds = dataset && v = variant then Some acc else None)
    paper_table3
