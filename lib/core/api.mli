(** High-level zkVC API over the BN254 scalar field: build a matmul
    statement with any encoding strategy, prove it with either backend
    (zkVC-G = Groth16, zkVC-S = Spartan), verify, and collect the
    timing/size measurements the paper's tables report. *)

module Fr = Zkvc_field.Fr
module Cs : module type of Zkvc_r1cs.Constraint_system.Make (Fr)

type backend = Backend_groth16 | Backend_spartan

val backend_name : backend -> string

type timings = { setup_s : float; prove_s : float; verify_s : float }

(** Everything the bench's cost ledger records per proved statement.
    [nonzero_a/b/c] are nonzero entries per QAP column family (= R1CS
    matrix); [nonzero_a] is the paper's "left wires". [witness] is the
    private witness length ([num_aux]). [top_heap_words] is the GC's peak
    heap at the end of the run and [major_collections] the number of major
    GC cycles the run triggered — both measurement noise, never compared
    exactly across runs. *)
type measurement =
  { strategy : Matmul_circuit.strategy;
    backend : backend;
    dims : Matmul_spec.dims;
    constraints : int;
    variables : int;
    nonzero_a : int;
    nonzero_b : int;
    nonzero_c : int;
    witness : int;
    proof_bytes : int;
    top_heap_words : int;
    major_collections : int;
    timings : timings }

type proof =
  | Groth16_proof of Zkvc_groth16.Groth16.proof
  | Spartan_proof of Zkvc_spartan.Spartan.proof

(** Compile the statement: for CRPC strategies the challenge is derived by
    Fiat–Shamir from X, W and Y. Returns (system, full assignment, Y). *)
val build_circuit :
  Matmul_circuit.strategy ->
  x:Fr.t array array ->
  w:Fr.t array array ->
  Matmul_spec.dims ->
  Cs.t * Fr.t array * Fr.t array array

(** Prove and verify once; setup time is reported separately and — like
    the paper — excluded from proving time. Raises [Failure] if the
    produced proof does not verify. *)
val run :
  ?rng:Random.State.t ->
  backend ->
  Matmul_circuit.strategy ->
  x:Fr.t array array ->
  w:Fr.t array array ->
  Matmul_spec.dims ->
  proof * measurement

val pp_measurement : Format.formatter -> measurement -> unit
