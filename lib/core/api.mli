(** High-level zkVC API over the BN254 scalar field: build a matmul
    statement with any encoding strategy, prove it with either backend
    (zkVC-G = Groth16, zkVC-S = Spartan), verify, and collect the
    timing/size measurements the paper's tables report. *)

module Fr = Zkvc_field.Fr
module Cs : module type of Zkvc_r1cs.Constraint_system.Make (Fr)

(** The R1CS optimiser instantiated over the proof field; see
    {!Zkvc_opt.Opt}. Threaded through {!prepare}/{!run}/{!circuit_shape}
    via their [?optimize] argument. *)
module Opt : module type of Zkvc_opt.Opt.Make (Fr)

type backend = Backend_groth16 | Backend_spartan

val backend_name : backend -> string

type timings = { setup_s : float; prove_s : float; verify_s : float }

(** Everything the bench's cost ledger records per proved statement.
    [nonzero_a/b/c] are nonzero entries per QAP column family (= R1CS
    matrix); [nonzero_a] is the paper's "left wires". [witness] is the
    private witness length ([num_aux]). [verified] is the outcome of the
    verification pass — honest runs always produce [true]; the adversary
    harness proves from corrupted witnesses and reads rejection here.
    [top_heap_words] is the GC's peak
    heap at the end of the run and [major_collections] the number of major
    GC cycles the run triggered — both measurement noise, never compared
    exactly across runs. *)
type measurement =
  { strategy : Matmul_circuit.strategy;
    backend : backend;
    dims : Matmul_spec.dims;
    constraints : int;
    variables : int;
    nonzero_a : int;
    nonzero_b : int;
    nonzero_c : int;
    witness : int;
    proof_bytes : int;
    verified : bool;
    top_heap_words : int;
    major_collections : int;
    timings : timings;
    regions : Zkvc_obs.Attrib.t
        (** constraint-provenance tree: per-region counts, witness-
            generation time, and the measured prove time apportioned
            over regions by nonzero share *) }

type proof =
  | Groth16_proof of Zkvc_groth16.Groth16.proof
  | Spartan_proof of Zkvc_spartan.Spartan.proof

(** Compile the statement: for CRPC strategies the challenge is derived by
    Fiat–Shamir from X, W and Y. Returns (system, full assignment, Y). *)
val build_circuit :
  Matmul_circuit.strategy ->
  x:Fr.t array array ->
  w:Fr.t array array ->
  Matmul_spec.dims ->
  Cs.t * Fr.t array * Fr.t array array

(** Optimiser traces for a statement prepared with [?optimize]: the
    per-pass report and the witness map relating the original and
    optimised wire layouts. *)
type opt_info = { opt_report : Opt.report; opt_map : Opt.witness_map }

(** Everything {!build_circuit} computes, plus the Fiat–Shamir challenge
    the CRPC strategies bound into the constraint coefficients ([None]
    for the vanilla strategies). When prepared with [?optimize], [cs],
    [assignment] and [regions] all describe the {e optimised} system and
    [opt] records how it was derived. *)
type prepared =
  { cs : Cs.t;
    assignment : Fr.t array;
    y : Fr.t array array;
    challenge : Fr.t option;
    regions : Zkvc_obs.Attrib.t
        (** constraint-provenance tree of the build (witness time filled,
            prove share zero — no proving has happened yet) *);
    opt : opt_info option }

(** The CRPC challenge is derived from X, W and Y {e before} synthesis,
    so it is identical with and without [?optimize]. *)
val prepare :
  ?optimize:Opt.config ->
  Matmul_circuit.strategy ->
  x:Fr.t array array ->
  w:Fr.t array array ->
  Matmul_spec.dims ->
  prepared

(** Rebuild only the constraint system of a statement shape, without
    knowing X or W: circuit structure depends solely on (strategy, dims)
    plus — for CRPC — the challenge. Used by verifiers that receive keys
    and proofs from elsewhere (key files, the proof service disk cache).
    Raises [Invalid_argument] if a CRPC strategy is given no challenge.
    [?optimize] must match how the statement's keys were produced: the
    optimiser is deterministic, so the same config reproduces the same
    optimised shape. *)
val circuit_shape :
  ?optimize:Opt.config ->
  Matmul_circuit.strategy -> ?challenge:Fr.t -> Matmul_spec.dims -> Cs.t

(** Per-circuit proving/verifying material for one backend — the unit the
    proof service caches so setup runs once per circuit shape. *)
type keys =
  | Groth16_keys of
      { qap : Zkvc_groth16.Groth16.Qap.t;
        pk : Zkvc_groth16.Groth16.proving_key;
        vk : Zkvc_groth16.Groth16.verifying_key }
  | Spartan_keys of
      { inst : Zkvc_spartan.Spartan.instance; key : Zkvc_spartan.Spartan.key }

val keys_backend : keys -> backend

(** Run the backend's setup for one compiled circuit. Consumes [rng]
    exactly as {!run} does (Groth16 toxic-waste draws; Spartan setup is
    deterministic), so [keygen] followed by {!prove_with} on the same
    [rng] yields a proof byte-identical to {!run}'s. *)
val keygen : ?rng:Random.State.t -> backend -> Cs.t -> keys

val prove_with : ?rng:Random.State.t -> keys -> Fr.t array -> proof

(** Raises [Invalid_argument] when the proof and keys disagree on the
    backend. *)
val verify_with : keys -> public_inputs:Fr.t list -> proof -> bool

val proof_size : proof -> int

(** Prove and verify once; setup time is reported separately and — like
    the paper — excluded from proving time. Does not raise on a failed
    verification: the outcome is returned in [measurement.verified] so
    callers (bench, adversary harness) observe rejection as data. The
    CLI turns [verified = false] into a non-zero exit code. *)
val run :
  ?rng:Random.State.t ->
  ?optimize:Opt.config ->
  backend ->
  Matmul_circuit.strategy ->
  x:Fr.t array array ->
  w:Fr.t array array ->
  Matmul_spec.dims ->
  proof * measurement

val pp_measurement : Format.formatter -> measurement -> unit
