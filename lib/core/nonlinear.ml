(** zkVC's arithmetic approximations of the Transformer's non-linear
    functions (paper Section III-C), as R1CS gadgets over fixed-point
    values.

    Quantization convention: a real value [v] is carried as the wire value
    [round(v · S)] with scale [S = 2^fractional_bits]. SoftMax inputs are
    unsigned (softmax is shift-invariant, so logits are pre-offset);
    GELU inputs are signed, embedded in the field as [v mod p].

    The exponential on negative inputs uses the paper's iterated-squaring
    form  [e^{-d} ≈ (1 − d/2^n)^{2^n}]  with clipping to 0 for
    [d ≥ 2^clip_log2 / S] — three bit decompositions and [n] squarings,
    exactly the shape zkVC describes. *)

module Bigint = Zkvc_num.Bigint

type config =
  { fractional_bits : int; (* S = 2^fractional_bits *)
    value_bits : int; (* quantized magnitudes live below 2^value_bits *)
    exp_squarings : int; (* n in (1 - d/2^n)^(2^n) *)
    clip_log2 : int (* clip e^{-d} to 0 when d ≥ 2^clip_log2 (quantized) *) }

(** 8 fractional bits, inputs below 2^16, 5 squarings, clip beyond
    d/S ≥ 8 — a good accuracy/cost balance for Transformer logits. *)
let default_config =
  { fractional_bits = 8; value_bits = 16; exp_squarings = 5; clip_log2 = 11 }

let scale cfg = 1 lsl cfg.fractional_bits

let validate cfg =
  if cfg.clip_log2 >= cfg.value_bits then
    invalid_arg "Nonlinear: clip_log2 must be below value_bits";
  if cfg.clip_log2 > cfg.fractional_bits + cfg.exp_squarings then
    invalid_arg "Nonlinear: clip threshold too high for the squaring depth"

(** Float reference semantics of the circuit (bit-exact integer model),
    used by tests and by the quantized NN inference. *)
module Reference = struct
  (* The base (1 - d/(S·2^n)) is carried at the finer scale S' = S·2^n so
     that S' - d is exact; the n squarings stay at scale S' and the final
     shift by n bits returns to scale S. *)
  let exp_neg cfg d =
    validate cfg;
    let s' = 1 lsl (cfg.fractional_bits + cfg.exp_squarings) in
    if d >= 1 lsl cfg.clip_log2 then 0
    else begin
      let p = ref (s' - d) in
      for _ = 1 to cfg.exp_squarings do
        p := !p * !p / s'
      done;
      !p lsr cfg.exp_squarings
    end

  let softmax cfg xs =
    let m = Array.fold_left Stdlib.max xs.(0) xs in
    let es = Array.map (fun x -> exp_neg cfg (m - x)) xs in
    let total = Array.fold_left ( + ) 0 es in
    Array.map (fun e -> e * scale cfg / total) es

  let gelu cfg x =
    let s = scale cfg in
    ((x * x) + (2 * s * x) + (4 * s * s)) / (8 * s)
end

module Make (F : Zkvc_field.Field_intf.S) = struct
  module L = Zkvc_r1cs.Lc.Make (F)
  module B = Zkvc_r1cs.Builder.Make (F)
  module G = Zkvc_r1cs.Gadgets.Make (F)

  (** [exp_neg b cfg d] constrains and returns a wire holding
      [S·e^{-d/S}] (approximately), for a non-negative quantized
      difference [d < 2^value_bits]. *)
  let exp_neg b cfg d =
    validate cfg;
    B.in_region b "exp" (fun () ->
    (* finer scale S' = S·2^n: the base S' - d is exact (see Reference) *)
    let s' = 1 lsl (cfg.fractional_bits + cfg.exp_squarings) in
    let bits = G.bits_of b ~width:cfg.value_bits d in
    let bit_lc i = L.of_var (List.nth bits i) in
    (* hi = the bits at and above clip_log2; keep = (hi = 0) *)
    let hi =
      let acc = ref L.zero and coeff = ref F.one in
      for i = cfg.clip_log2 to cfg.value_bits - 1 do
        acc := L.add !acc (L.scale !coeff (bit_lc i));
        coeff := F.double !coeff
      done;
      !acc
    in
    let keep = G.is_zero b hi in
    (* lo = d mod 2^clip_log2 (free: reuse the decomposition) *)
    let lo =
      let acc = ref L.zero and coeff = ref F.one in
      for i = 0 to cfg.clip_log2 - 1 do
        acc := L.add !acc (L.scale !coeff (bit_lc i));
        coeff := F.double !coeff
      done;
      !acc
    in
    (* base = S' - lo > 0 because lo < 2^clip_log2 ≤ S' *)
    let base = L.sub (L.constant (F.of_int s')) lo in
    let p = ref base in
    for _ = 1 to cfg.exp_squarings do
      let sq = G.mul b !p !p in
      let quot, _rem =
        G.div_by_constant b
          ~q_width:(cfg.fractional_bits + cfg.exp_squarings + 2)
          (L.of_var sq) (Bigint.of_int s')
      in
      p := L.of_var quot
    done;
    (* back to scale S *)
    let e_full, _ =
      G.div_by_constant b ~q_width:(cfg.fractional_bits + 2) !p
        (Bigint.of_int (1 lsl cfg.exp_squarings))
    in
    G.select b (L.of_var keep) (L.of_var e_full) L.zero)

  (** SoftMax over a vector of quantized logit wires; returns wires holding
      quantized probabilities (scale S). Implements the paper's recipe:
      max via comparisons + membership product, normalisation by
      subtraction, clipped iterated-squaring exponentials, and one
      verified division per element. *)
  let softmax b cfg xs =
    if xs = [] then invalid_arg "Nonlinear.softmax: empty";
    B.in_region b "softmax" (fun () ->
        let s = scale cfg in
        let m = G.max_of b ~width:cfg.value_bits (List.map L.of_var xs) in
        let es =
          List.map (fun x -> exp_neg b cfg (L.sub (L.of_var m) (L.of_var x))) xs
        in
        B.in_region b "normalize" (fun () ->
            (* materialise the total on a wire: keeps every per-element
               division constraint O(1)-sized instead of dragging a
               |xs|-term combination *)
            let total_lc =
              List.fold_left (fun acc e -> L.add acc (L.of_var e)) L.zero es
            in
            let total_wire = B.alloc b (B.eval b total_lc) in
            G.assert_equal b (L.of_var total_wire) total_lc;
            let total = L.of_var total_wire in
            let count_bits =
              let rec go k p = if p >= List.length xs then k else go (k + 1) (2 * p) in
              go 0 1
            in
            List.map
              (fun e ->
                let q, _r =
                  G.div_rem b
                    ~q_width:(cfg.fractional_bits + 1)
                    ~r_width:(cfg.fractional_bits + count_bits + 1)
                    (L.scale (F.of_int s) (L.of_var e))
                    total
                in
                q)
              es))

  (** GELU(x) ≈ x²/8 + x/4 + 1/2 (the paper's polynomial), on a signed
      quantized wire with |x| < 2^(value_bits−1). The dividend
      x² + 2Sx + 4S² = (x+S)² + 3S² is always positive, so the division
      gadget sees a genuine non-negative integer. *)
  let gelu b cfg x =
    validate cfg;
    B.in_region b "gelu" (fun () ->
        let s = scale cfg in
        let x2 = G.mul b (L.of_var x) (L.of_var x) in
        let dividend =
          L.add (L.of_var x2)
            (L.add
               (L.scale (F.of_int (2 * s)) (L.of_var x))
               (L.constant (F.of_int (4 * s * s))))
        in
        let q, _r =
          G.div_by_constant b ~q_width:(2 * cfg.value_bits) dividend
            (Bigint.of_int (8 * s))
        in
        q)
end
