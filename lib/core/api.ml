(** High-level zkVC API over the BN254 scalar field: build a matmul
    statement with any strategy, prove it with either backend (zkVC-G =
    Groth16, zkVC-S = Spartan), verify, and collect the timing /
    size measurements the paper's tables report. *)

module Fr = Zkvc_field.Fr
module Groth16 = Zkvc_groth16.Groth16
module Spartan = Zkvc_spartan.Spartan
module Qap = Groth16.Qap
module Cs = Zkvc_r1cs.Constraint_system.Make (Fr)
module Bld = Zkvc_r1cs.Builder.Make (Fr)
module Mc = Matmul_circuit.Make (Fr)
module Spec = Matmul_spec.Make (Fr)

type backend = Backend_groth16 | Backend_spartan

let backend_name = function
  | Backend_groth16 -> "groth16"
  | Backend_spartan -> "spartan"

type timings =
  { setup_s : float;
    prove_s : float;
    verify_s : float }

(* Cost ledger per proved statement: circuit shape (deterministic) plus
   GC cost (noise — never compared exactly across runs). See api.mli. *)
type measurement =
  { strategy : Matmul_circuit.strategy;
    backend : backend;
    dims : Matmul_spec.dims;
    constraints : int;
    variables : int;
    nonzero_a : int;
    nonzero_b : int;
    nonzero_c : int;
    witness : int;
    proof_bytes : int;
    top_heap_words : int;
    major_collections : int;
    timings : timings }

type proof =
  | Groth16_proof of Groth16.proof
  | Spartan_proof of Spartan.proof

module Obs = Zkvc_obs

(* Uses whatever clock is installed via [Obs.Span.set_clock] — a
   monotonic wall clock in the bench harness. The default [Sys.time] is
   process CPU time, which sums across domains and would misreport a
   parallel prover as no faster. *)
let time f =
  let t0 = Obs.Span.now () in
  let r = f () in
  (r, Obs.Span.now () -. t0)

(* When the observability sink is recording, phase durations are read back
   from the span just closed, so the measurement record and any exported
   trace agree exactly; otherwise fall back to a plain clock delta. *)
let timed name f =
  if Obs.Span.recording () then begin
    let r = Obs.Span.with_span name f in
    match Obs.Span.last_completed () with
    | Some s -> (r, Obs.Span.duration_s s)
    | None -> (r, 0.)
  end
  else time f

(** Build the matmul circuit for the given strategy. For CRPC strategies
    the challenge is derived by Fiat–Shamir from X, W and Y (commit-then-
    prove flow); the same derivation runs on the verifier side. *)
let build_circuit strategy ~x ~w d =
  let y = Spec.multiply x w in
  let challenge =
    if Matmul_circuit.uses_challenge strategy then Some (Mc.derive_challenge ~x ~w ~y)
    else None
  in
  let b = Bld.create () in
  let _wires, _y = Mc.build b strategy ?challenge ~x ~w d in
  let cs, assignment = Bld.finalize b in
  (cs, assignment, y)

(** Prove + verify once, returning the proof and a full measurement row.
    The Groth16 setup time is reported separately and — like the paper —
    excluded from proving time. *)
let run ?(rng = Random.State.make [| 0x5eed |]) backend strategy ~x ~w d =
  let gc0 = Gc.quick_stat () in
  let (cs, assignment, _y), _build_time =
    timed "zkvc.build_circuit" (fun () -> build_circuit strategy ~x ~w d)
  in
  let stats = Cs.stats cs in
  let public_inputs =
    Array.to_list (Array.sub assignment 1 (Cs.num_inputs cs))
  in
  let proof, proof_bytes, timings =
    match backend with
    | Backend_groth16 ->
      let qap, t_qap = timed "groth16.qap" (fun () -> Qap.create cs) in
      (* publishes the qap.* density gauges next to the r1cs.* ones *)
      let (_ : Qap.density) = Qap.density qap in
      let (pk, vk), t_setup = timed "groth16.setup" (fun () -> Groth16.setup rng qap) in
      let proof, t_prove =
        timed "groth16.prove" (fun () -> Groth16.prove rng pk qap assignment)
      in
      let ok, t_verify =
        timed "groth16.verify" (fun () -> Groth16.verify vk ~public_inputs proof)
      in
      if not ok then failwith "zkvc: groth16 proof failed to verify";
      ( Groth16_proof proof,
        Groth16.proof_size_bytes proof,
        { setup_s = t_qap +. t_setup; prove_s = t_prove; verify_s = t_verify } )
    | Backend_spartan ->
      let inst, t_pre = timed "spartan.preprocess" (fun () -> Spartan.preprocess cs) in
      let key, t_key = timed "spartan.setup" (fun () -> Spartan.setup inst) in
      let proof, t_prove =
        timed "spartan.prove" (fun () -> Spartan.prove rng key inst assignment)
      in
      let ok, t_verify =
        timed "spartan.verify" (fun () -> Spartan.verify key inst ~public_inputs proof)
      in
      if not ok then failwith "zkvc: spartan proof failed to verify";
      ( Spartan_proof proof,
        Spartan.proof_size_bytes proof,
        { setup_s = t_pre +. t_key; prove_s = t_prove; verify_s = t_verify } )
  in
  let gc1 = Gc.quick_stat () in
  ( proof,
    { strategy;
      backend;
      dims = d;
      constraints = stats.Cs.constraints;
      variables = stats.Cs.variables;
      nonzero_a = stats.Cs.nonzero_a;
      nonzero_b = stats.Cs.nonzero_b;
      nonzero_c = stats.Cs.nonzero_c;
      witness = Cs.num_aux cs;
      proof_bytes;
      top_heap_words = gc1.Gc.top_heap_words;
      major_collections = gc1.Gc.major_collections - gc0.Gc.major_collections;
      timings } )

let pp_measurement fmt m =
  Format.fprintf fmt
    "%-12s %-8s %a  constraints=%-8d vars=%-8d nnz=%d/%d/%d witness=%-8d proof=%dB  setup=%.3fs prove=%.3fs verify=%.4fs"
    (Matmul_circuit.strategy_name m.strategy)
    (backend_name m.backend) Matmul_spec.pp_dims m.dims m.constraints m.variables
    m.nonzero_a m.nonzero_b m.nonzero_c m.witness m.proof_bytes m.timings.setup_s
    m.timings.prove_s m.timings.verify_s
