(** High-level zkVC API over the BN254 scalar field: build a matmul
    statement with any strategy, prove it with either backend (zkVC-G =
    Groth16, zkVC-S = Spartan), verify, and collect the timing /
    size measurements the paper's tables report. *)

module Fr = Zkvc_field.Fr
module Groth16 = Zkvc_groth16.Groth16
module Spartan = Zkvc_spartan.Spartan
module Qap = Groth16.Qap
module Cs = Zkvc_r1cs.Constraint_system.Make (Fr)
module Bld = Zkvc_r1cs.Builder.Make (Fr)
module Opt = Zkvc_opt.Opt.Make (Fr)
module Mc = Matmul_circuit.Make (Fr)
module Spec = Matmul_spec.Make (Fr)

type backend = Backend_groth16 | Backend_spartan

let backend_name = function
  | Backend_groth16 -> "groth16"
  | Backend_spartan -> "spartan"

type timings =
  { setup_s : float;
    prove_s : float;
    verify_s : float }

(* Cost ledger per proved statement: circuit shape (deterministic) plus
   GC cost (noise — never compared exactly across runs). See api.mli. *)
type measurement =
  { strategy : Matmul_circuit.strategy;
    backend : backend;
    dims : Matmul_spec.dims;
    constraints : int;
    variables : int;
    nonzero_a : int;
    nonzero_b : int;
    nonzero_c : int;
    witness : int;
    proof_bytes : int;
    verified : bool;
    top_heap_words : int;
    major_collections : int;
    timings : timings;
    regions : Zkvc_obs.Attrib.t
        (* provenance tree with witness time and the prove time
           apportioned over regions by nnz share *) }

type proof =
  | Groth16_proof of Groth16.proof
  | Spartan_proof of Spartan.proof

module Obs = Zkvc_obs

(* Uses whatever clock is installed via [Obs.Span.set_clock] — a
   monotonic wall clock in the bench harness. The default [Sys.time] is
   process CPU time, which sums across domains and would misreport a
   parallel prover as no faster. *)
let time f =
  let t0 = Obs.Span.now () in
  let r = f () in
  (r, Obs.Span.now () -. t0)

(* When the observability sink is recording, phase durations are read back
   from the span just closed, so the measurement record and any exported
   trace agree exactly; otherwise fall back to a plain clock delta. *)
let timed name f =
  if Obs.Span.recording () then begin
    let r = Obs.Span.with_span name f in
    match Obs.Span.last_completed () with
    | Some s -> (r, Obs.Span.duration_s s)
    | None -> (r, 0.)
  end
  else time f

(* Optimiser traces attached to a prepared statement: the pass report and
   the witness map relating original and optimised layouts. *)
type opt_info = { opt_report : Opt.report; opt_map : Opt.witness_map }

type prepared =
  { cs : Cs.t;
    assignment : Fr.t array;
    y : Fr.t array array;
    challenge : Fr.t option;
    regions : Obs.Attrib.t;
    opt : opt_info option }

(** Build the matmul circuit for the given strategy. For CRPC strategies
    the challenge is derived by Fiat–Shamir from X, W and Y (commit-then-
    prove flow) — {e before} synthesis, so an optimiser config cannot
    perturb it; the same derivation runs on the verifier side. With
    [?optimize] the compiled system, assignment and region tree are the
    optimised ones, ready for any key/prove/verify path. *)
let prepare ?optimize strategy ~x ~w d =
  let y = Spec.multiply x w in
  let challenge =
    if Matmul_circuit.uses_challenge strategy then Some (Mc.derive_challenge ~x ~w ~y)
    else None
  in
  let b = Bld.create () in
  let _wires, _y = Mc.build b strategy ?challenge ~x ~w d in
  match optimize with
  | None ->
    let cs, assignment, regions = Bld.finalize_attributed b in
    { cs; assignment; y; challenge; regions; opt = None }
  | Some config ->
    let cs, assignment, regions, prov = Bld.finalize_with_provenance b in
    let res =
      Obs.Span.with_span "zkvc.optimize" (fun () ->
          Opt.optimize ~config
            ~provenance:
              { Opt.constraint_region = prov.Bld.constraint_region;
                wire_region = prov.Bld.wire_region;
                tree = regions }
            cs)
    in
    { cs = res.Opt.cs;
      assignment = Opt.expand_witness res.Opt.map assignment;
      y;
      challenge;
      regions = (match res.Opt.regions with Some t -> t | None -> regions);
      opt = Some { opt_report = res.Opt.report; opt_map = res.Opt.map } }

let build_circuit strategy ~x ~w d =
  let p = prepare strategy ~x ~w d in
  (p.cs, p.assignment, p.y)

(* The circuit shape produced by every gadget in this repository depends
   only on structural parameters plus — for CRPC — the challenge, never on
   witness values (see Builder), so synthesising with all-zero matrices
   reproduces the exact constraint system. This is what a verifier that
   never saw X and W (a key-file consumer, the serve disk cache) uses. *)
let circuit_shape ?optimize strategy ?challenge d =
  (match (Matmul_circuit.uses_challenge strategy, challenge) with
   | true, None ->
     invalid_arg "Api.circuit_shape: CRPC strategies need the proof's challenge"
   | _ -> ());
  let challenge = if Matmul_circuit.uses_challenge strategy then challenge else None in
  let x = Array.make_matrix d.Matmul_spec.a d.Matmul_spec.n Fr.zero in
  let w = Array.make_matrix d.Matmul_spec.n d.Matmul_spec.b Fr.zero in
  let b = Bld.create () in
  let _wires, _y = Mc.build b strategy ?challenge ~x ~w d in
  let cs = fst (Bld.finalize b) in
  match optimize with
  | None -> cs
  | Some config -> (Opt.optimize ~config cs).Opt.cs

type keys =
  | Groth16_keys of
      { qap : Qap.t; pk : Groth16.proving_key; vk : Groth16.verifying_key }
  | Spartan_keys of { inst : Spartan.instance; key : Spartan.key }

let keys_backend = function
  | Groth16_keys _ -> Backend_groth16
  | Spartan_keys _ -> Backend_spartan

let default_rng () = Random.State.make [| 0x5eed |]

(* [keygen] consumes [rng] exactly as [run] historically did (Groth16
   setup draws; Spartan setup is deterministic), so [keygen] followed by
   [prove_with] on the same [rng] is byte-identical to [run]. *)
let keygen ?(rng = default_rng ()) backend cs =
  match backend with
  | Backend_groth16 ->
    let qap = Obs.Span.with_span "groth16.qap" (fun () -> Qap.create cs) in
    (* publishes the qap.* density gauges next to the r1cs.* ones *)
    let (_ : Qap.density) = Qap.density qap in
    let pk, vk = Obs.Span.with_span "groth16.setup" (fun () -> Groth16.setup rng qap) in
    Groth16_keys { qap; pk; vk }
  | Backend_spartan ->
    let inst = Obs.Span.with_span "spartan.preprocess" (fun () -> Spartan.preprocess cs) in
    let key = Obs.Span.with_span "spartan.setup" (fun () -> Spartan.setup inst) in
    Spartan_keys { inst; key }

let prove_with ?(rng = default_rng ()) keys assignment =
  match keys with
  | Groth16_keys { qap; pk; _ } -> Groth16_proof (Groth16.prove rng pk qap assignment)
  | Spartan_keys { inst; key } -> Spartan_proof (Spartan.prove rng key inst assignment)

let verify_with keys ~public_inputs proof =
  match (keys, proof) with
  | Groth16_keys { vk; _ }, Groth16_proof p -> Groth16.verify vk ~public_inputs p
  | Spartan_keys { inst; key }, Spartan_proof p ->
    Spartan.verify key inst ~public_inputs p
  | Groth16_keys _, Spartan_proof _ | Spartan_keys _, Groth16_proof _ ->
    invalid_arg "Api.verify_with: proof/key backend mismatch"

let proof_size = function
  | Groth16_proof p -> Groth16.proof_size_bytes p
  | Spartan_proof p -> Spartan.proof_size_bytes p

(** Prove + verify once, returning the proof and a full measurement row.
    The Groth16 setup time is reported separately and — like the paper —
    excluded from proving time. Verification failure is data
    ([measurement.verified]), not an exception: the adversary harness
    and the bench observe rejection without catching anything. *)
let run ?(rng = default_rng ()) ?optimize backend strategy ~x ~w d =
  let gc0 = Gc.quick_stat () in
  let prep, _build_time =
    timed "zkvc.build_circuit" (fun () -> prepare ?optimize strategy ~x ~w d)
  in
  let cs = prep.cs in
  let stats = Cs.stats cs in
  let public_inputs =
    Array.to_list (Array.sub prep.assignment 1 (Cs.num_inputs cs))
  in
  let name = backend_name backend in
  let keys, t_setup = timed (name ^ ".keygen") (fun () -> keygen ~rng backend cs) in
  let proof, t_prove =
    timed (name ^ ".prove") (fun () -> prove_with ~rng keys prep.assignment)
  in
  let ok, t_verify =
    timed (name ^ ".verify") (fun () -> verify_with keys ~public_inputs proof)
  in
  let proof_bytes = proof_size proof in
  let timings = { setup_s = t_setup; prove_s = t_prove; verify_s = t_verify } in
  let gc1 = Gc.quick_stat () in
  ( proof,
    { strategy;
      backend;
      dims = d;
      constraints = stats.Cs.constraints;
      variables = stats.Cs.variables;
      nonzero_a = stats.Cs.nonzero_a;
      nonzero_b = stats.Cs.nonzero_b;
      nonzero_c = stats.Cs.nonzero_c;
      witness = Cs.num_aux cs;
      proof_bytes;
      verified = ok;
      top_heap_words = gc1.Gc.top_heap_words;
      major_collections = gc1.Gc.major_collections - gc0.Gc.major_collections;
      timings;
      regions = Obs.Attrib.with_prove_share ~prove_s:t_prove prep.regions } )

let pp_measurement fmt m =
  Format.fprintf fmt
    "%-12s %-8s %a  constraints=%-8d vars=%-8d nnz=%d/%d/%d witness=%-8d proof=%dB  setup=%.3fs prove=%.3fs verify=%.4fs%s"
    (Matmul_circuit.strategy_name m.strategy)
    (backend_name m.backend) Matmul_spec.pp_dims m.dims m.constraints m.variables
    m.nonzero_a m.nonzero_b m.nonzero_c m.witness m.proof_bytes m.timings.setup_s
    m.timings.prove_s m.timings.verify_s
    (if m.verified then "" else "  VERIFY-FAILED")
