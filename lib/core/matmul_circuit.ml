(** The four matmul-to-R1CS encodings of the zkVC paper's ablation
    (Table II): vanilla circuits, PSQ, CRPC, and CRPC+PSQ.

    - {b Vanilla}: one constraint per scalar product plus one wide addition
      per output — [a·b·(n+1)] constraints, [a·b·n] product wires.
    - {b PSQ} (Prefix-Sum Query): carries dot-product accumulation on the
      C-side linear combination, [L_k·R_k = s_k − s_{k−1}] — removes the
      wide additions and the separate product wires.
    - {b CRPC} (Constraint-Reduced Polynomial Circuit): encodes the whole
      matrix product as a polynomial identity in a random challenge [Z]:

        Σ_{i,j} Z^{ib+j} y_ij = Σ_k (Σ_i Z^{ib} x_ik)(Σ_j Z^j w_kj)

      Both factors of each [k]-term are linear combinations with public
      coefficients (powers of Z), so only [n] multiplication constraints
      remain. The identity is exact as a polynomial in Z iff [Y = X·W], so
      instantiating Z at a Fiat–Shamir challenge sampled after committing
      to X, W, Y gives soundness error [(a·b − 1)/|F|] (Schwartz–Zippel).
    - {b CRPC+PSQ}: the CRPC product terms accumulate through prefix sums,
      removing the [u_k] wires and the final wide addition. *)

module Bigint = Zkvc_num.Bigint

type strategy = Vanilla | Vanilla_psq | Crpc | Crpc_psq

let all_strategies = [ Vanilla; Vanilla_psq; Crpc; Crpc_psq ]

let strategy_name = function
  | Vanilla -> "vanilla"
  | Vanilla_psq -> "vanilla+psq"
  | Crpc -> "crpc"
  | Crpc_psq -> "crpc+psq"

let uses_challenge = function
  | Vanilla | Vanilla_psq -> false
  | Crpc | Crpc_psq -> true

(** Closed-form constraint counts, used by documentation and the ZK-ML
    cost model; the tests check the compiled circuits match. *)
let expected_constraints strategy { Matmul_spec.a; n; b } =
  match strategy with
  | Vanilla -> a * b * (n + 1)
  | Vanilla_psq -> a * b * n
  | Crpc -> n + 1
  | Crpc_psq -> n

module Make (F : Zkvc_field.Field_intf.S) = struct
  module L = Zkvc_r1cs.Lc.Make (F)
  module B = Zkvc_r1cs.Builder.Make (F)
  module Spec = Matmul_spec.Make (F)
  module T = Zkvc_transcript.Transcript
  module Ch = T.Challenge (F)

  type wires =
    { x : int array array;
      w : int array array;
      y : int array array }

  (** Fiat–Shamir challenge for CRPC, bound to the full contents of X, W
      and Y. In the deployment flow W is bound once through a reusable
      commitment; hashing the values directly is the same binding for a
      single proof. *)
  let derive_challenge ~x ~w ~y =
    let tr = T.create ~label:"zkvc.crpc.challenge" in
    let absorb_matrix label m =
      T.absorb_int tr ~label:(label ^ ".rows") (Array.length m);
      Array.iter (fun row -> Ch.absorb_array tr ~label row) m
    in
    absorb_matrix "x" x;
    absorb_matrix "w" w;
    absorb_matrix "y" y;
    Ch.challenge tr ~label:"z"

  let alloc_matrix b ~public values =
    Array.map
      (Array.map (fun v -> if public then B.alloc_input b v else B.alloc b v))
      values

  let lc_of v = L.of_var v

  (* vanilla: products into fresh wires, then one wide addition per y_ij *)
  let constrain_vanilla b ~x ~w ~y d =
    let { Matmul_spec.a; n; b = bb } = d in
    for i = 0 to a - 1 do
      for j = 0 to bb - 1 do
        let products =
          List.init n (fun k ->
              let p =
                B.alloc b (F.mul (B.value b x.(i).(k)) (B.value b w.(k).(j)))
              in
              B.enforce b ~label:"mm-prod" (lc_of x.(i).(k)) (lc_of w.(k).(j)) (lc_of p);
              p)
        in
        let sum = List.fold_left (fun acc p -> L.add acc (lc_of p)) L.zero products in
        B.enforce b ~label:"mm-sum" sum (L.constant F.one) (lc_of y.(i).(j))
      done
    done

  (* vanilla + PSQ: x_ik·w_kj = s_k − s_{k−1}; the last prefix sum IS y_ij *)
  let constrain_vanilla_psq b ~x ~w ~y d =
    let { Matmul_spec.a; n; b = bb } = d in
    for i = 0 to a - 1 do
      for j = 0 to bb - 1 do
        let prev = ref L.zero and acc = ref F.zero in
        for k = 0 to n - 1 do
          let product = F.mul (B.value b x.(i).(k)) (B.value b w.(k).(j)) in
          acc := F.add !acc product;
          let s_k =
            if k = n - 1 then lc_of y.(i).(j)
            else lc_of (B.alloc b !acc)
          in
          B.enforce b ~label:"mm-psq" (lc_of x.(i).(k)) (lc_of w.(k).(j)) (L.sub s_k !prev);
          prev := s_k
        done
      done
    done

  (* CRPC factor LCs: L_k = Σ_i Z^{ib} x_ik and R_k = Σ_j Z^j w_kj. *)
  let crpc_factors ~challenge ~x ~w d k =
    let { Matmul_spec.a; n = _; b = bb } = d in
    let zb = F.pow_int challenge bb in
    let left =
      let coeff = ref F.one in
      let acc = ref L.zero in
      for i = 0 to a - 1 do
        acc := L.add_term !acc !coeff x.(i).(k);
        coeff := F.mul !coeff zb
      done;
      !acc
    in
    let right =
      let coeff = ref F.one in
      let acc = ref L.zero in
      for j = 0 to bb - 1 do
        acc := L.add_term !acc !coeff w.(k).(j);
        coeff := F.mul !coeff challenge
      done;
      !acc
    in
    (left, right)

  (* Σ_{i,j} Z^{ib+j} y_ij *)
  let crpc_output_lc ~challenge ~y d =
    let { Matmul_spec.a; n = _; b = bb } = d in
    let acc = ref L.zero and coeff = ref F.one in
    for i = 0 to a - 1 do
      for j = 0 to bb - 1 do
        acc := L.add_term !acc !coeff y.(i).(j);
        coeff := F.mul !coeff challenge
      done
    done;
    !acc

  let constrain_crpc b ~challenge ~x ~w ~y d =
    let { Matmul_spec.n; _ } = d in
    let terms =
      List.init n (fun k ->
          let left, right = crpc_factors ~challenge ~x ~w d k in
          let u = B.alloc b (F.mul (B.eval b left) (B.eval b right)) in
          B.enforce b ~label:"crpc-term" left right (lc_of u);
          lc_of u)
    in
    let sum = List.fold_left L.add L.zero terms in
    B.enforce b ~label:"crpc-bind" sum (L.constant F.one) (crpc_output_lc ~challenge ~y d)

  let constrain_crpc_psq b ~challenge ~x ~w ~y d =
    let { Matmul_spec.n; _ } = d in
    let prev = ref L.zero and acc = ref F.zero in
    for k = 0 to n - 1 do
      let left, right = crpc_factors ~challenge ~x ~w d k in
      acc := F.add !acc (F.mul (B.eval b left) (B.eval b right));
      let s_k =
        if k = n - 1 then crpc_output_lc ~challenge ~y d
        else lc_of (B.alloc b !acc)
      in
      B.enforce b ~label:"crpc-psq" left right (L.sub s_k !prev);
      prev := s_k
    done

  (** Add the constraints of the chosen [strategy] binding pre-allocated
      wire matrices [y = x·w]. This is the composition entry point: chained
      layers pass one matmul's output wires as the next one's inputs. *)
  let constrain b strategy ?challenge ~x ~w ~y d =
    B.in_region b ("matmul/" ^ strategy_name strategy) (fun () ->
        match strategy, challenge with
        | Vanilla, _ -> constrain_vanilla b ~x ~w ~y d
        | Vanilla_psq, _ -> constrain_vanilla_psq b ~x ~w ~y d
        | Crpc, Some challenge -> constrain_crpc b ~challenge ~x ~w ~y d
        | Crpc_psq, Some challenge -> constrain_crpc_psq b ~challenge ~x ~w ~y d
        | (Crpc | Crpc_psq), None ->
          invalid_arg "Matmul_circuit.constrain: CRPC strategies need a challenge")

  (** Allocate wires for X, W and Y = X·W and add the constraints of the
      chosen [strategy]. [challenge] is required by the CRPC variants.
      [x] and [w] default to private witness; [y] to public outputs. *)
  let build b strategy ?challenge ?(x_public = false) ?(w_public = false)
      ?(y_public = true) ~x:x_values ~w:w_values d =
    if not (Spec.check_dims d x_values w_values) then
      invalid_arg "Matmul_circuit.build: dimension mismatch";
    let y_values = Spec.multiply x_values w_values in
    let x, w, y =
      B.in_region b "matmul/alloc" (fun () ->
          let x = alloc_matrix b ~public:x_public x_values in
          let w = alloc_matrix b ~public:w_public w_values in
          let y = alloc_matrix b ~public:y_public y_values in
          (x, w, y))
    in
    constrain b strategy ?challenge ~x ~w ~y d;
    ({ x; w; y }, y_values)
end
