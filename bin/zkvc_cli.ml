(* zkvc command-line interface.

   $ zkvc_cli count  --dims 49,64,128 --strategy crpc+psq
   $ zkvc_cli prove  --dims 8,8,16 --strategy crpc+psq --backend spartan
   $ zkvc_cli prove  --dims 8,8,16 --backend groth16 --trace t.json --metrics
   $ zkvc_cli model  --arch cifar10 --variant zkvc
*)

module Fr = Zkvc_field.Fr
module Api = Zkvc.Api
module Mc = Zkvc.Matmul_circuit
module Mspec = Zkvc.Matmul_spec
module Spec = Mspec.Make (Fr)
module Models = Zkvc_nn.Models
module Compiler = Zkvc_zkml.Compiler
module Ops = Zkvc_zkml.Ops
module Obs = Zkvc_obs

open Cmdliner

let cfg = Zkvc.Nonlinear.default_config

(* ---- shared converters ---- *)

let dims_conv =
  let parse s =
    match String.split_on_char ',' s with
    | [ a; n; b ] ->
      (try Ok (Mspec.dims ~a:(int_of_string a) ~n:(int_of_string n) ~b:(int_of_string b))
       with _ -> Error (`Msg "dims must be three positive integers a,n,b"))
    | _ -> Error (`Msg "dims must look like 49,64,128")
  in
  let print fmt d = Mspec.pp_dims fmt d in
  Arg.conv (parse, print)

let strategy_conv =
  let assoc =
    List.map (fun s -> (Mc.strategy_name s, s)) Mc.all_strategies
  in
  Arg.enum assoc

let backend_conv =
  Arg.enum [ ("groth16", Api.Backend_groth16); ("spartan", Api.Backend_spartan) ]

let arch_conv =
  Arg.enum
    [ ("cifar10", Models.vit_cifar10);
      ("tiny-imagenet", Models.vit_tiny_imagenet);
      ("imagenet", Models.vit_imagenet);
      ("bert", Models.bert_glue) ]

let variant_conv =
  Arg.enum
    [ ("softapprox", Models.Soft_approx);
      ("softfree-s", Models.Soft_free_s);
      ("softfree-p", Models.Soft_free_p);
      ("softfree-l", Models.Soft_free_l);
      ("zkvc", Models.Zkvc_hybrid) ]

let dims_arg =
  Arg.(value & opt dims_conv (Mspec.dims ~a:8 ~n:8 ~b:16)
       & info [ "dims" ] ~docv:"A,N,B" ~doc:"Matrix dimensions [A,N]x[N,B].")

let strategy_arg =
  Arg.(value & opt strategy_conv Mc.Crpc_psq
       & info [ "strategy" ] ~docv:"STRATEGY"
           ~doc:"Matmul encoding: vanilla, vanilla+psq, crpc or crpc+psq.")

let jobs_arg =
  Arg.(value & opt int Zkvc_parallel.env_jobs
       & info [ "jobs" ] ~docv:"N"
           ~doc:"Prover worker domains (0 = one per core). Proofs are \
                 byte-identical for every value. Defaults to $(b,ZKVC_JOBS) \
                 or 1.")

(* ---- count ---- *)

let count_cmd =
  let run d =
    Printf.printf "%-12s %12s %12s %10s\n" "strategy" "constraints" "variables" "nnz(A)";
    List.iter
      (fun strategy ->
        let c = Compiler.Counter.count ~strategy cfg (Ops.Op_matmul d) in
        let x = Spec.random_matrix (Random.State.make [| 1 |]) ~rows:d.Mspec.a ~cols:d.Mspec.n ~bound:16 in
        let w = Spec.random_matrix (Random.State.make [| 2 |]) ~rows:d.Mspec.n ~cols:d.Mspec.b ~bound:16 in
        let cs, _, _ = Api.build_circuit strategy ~x ~w d in
        let s = Api.Cs.stats cs in
        Printf.printf "%-12s %12d %12d %10d\n" (Mc.strategy_name strategy) c.Ops.constraints
          c.Ops.variables s.Api.Cs.nonzero_a)
      Mc.all_strategies;
    0
  in
  let doc = "Report R1CS sizes of the four matmul encodings at given dimensions." in
  Cmd.v (Cmd.info "count" ~doc) Term.(const run $ dims_arg)

(* ---- prove ---- *)

let prove_cmd =
  let backend_arg =
    Arg.(value & opt backend_conv Api.Backend_groth16
         & info [ "backend" ] ~docv:"BACKEND" ~doc:"groth16 or spartan.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record hierarchical spans and write a Chrome trace_event \
                   JSON file (open in chrome://tracing or ui.perfetto.dev).")
  in
  let metrics_arg =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Record prover metrics (field mults, MSM sizes, NTT sizes, \
                   sumcheck rounds, R1CS shape) and print them with the span tree.")
  in
  let run d strategy backend seed trace metrics jobs =
    Zkvc_parallel.set_jobs jobs;
    let rng = Random.State.make [| seed |] in
    let x = Spec.random_matrix rng ~rows:d.Mspec.a ~cols:d.Mspec.n ~bound:256 in
    let w = Spec.random_matrix rng ~rows:d.Mspec.n ~cols:d.Mspec.b ~bound:256 in
    let observing = trace <> None || metrics in
    if observing then begin
      Obs.Span.set_clock Unix.gettimeofday;
      Obs.Span.reset ();
      Obs.Metrics.reset ();
      Obs.Sink.enable ()
    end;
    let _proof, m = Api.run ~rng backend strategy ~x ~w d in
    if observing then Obs.Sink.disable ();
    Format.printf "%a@." Api.pp_measurement m;
    (match trace with
     | Some file ->
       (try
          Obs.Export.write_chrome_trace file (Obs.Span.roots ());
          Printf.printf "trace: %d spans written to %s\n"
            (List.length (String.split_on_char '\n' (Obs.Export.to_jsonl (Obs.Span.roots ()))) - 1)
            file
        with Sys_error msg ->
          Printf.eprintf "zkvc_cli: cannot write trace: %s\n" msg;
          exit 1)
     | None -> ());
    if metrics then begin
      print_newline ();
      print_string (Obs.Export.tree_to_string (Obs.Span.roots ()));
      print_newline ();
      print_string (Obs.Metrics.to_string ())
    end;
    0
  in
  let doc = "Prove a random matmul instance and verify it (prints timings)." in
  Cmd.v (Cmd.info "prove" ~doc)
    Term.(const run $ dims_arg $ strategy_arg $ backend_arg $ seed_arg $ trace_arg
          $ metrics_arg $ jobs_arg)

(* ---- model ---- *)

let model_cmd =
  let arch_arg =
    Arg.(value & opt arch_conv Models.vit_cifar10
         & info [ "arch" ] ~docv:"ARCH" ~doc:"cifar10, tiny-imagenet, imagenet or bert.")
  in
  let variant_arg =
    Arg.(value & opt variant_conv Models.Zkvc_hybrid
         & info [ "variant" ] ~docv:"VARIANT"
             ~doc:"softapprox, softfree-s, softfree-p, softfree-l or zkvc.")
  in
  let run arch variant strategy =
    let layers = Compiler.compile arch variant in
    Printf.printf "%s / %s (matmuls: %s)\n" arch.Models.arch_name
      (Models.variant_name variant) (Mc.strategy_name strategy);
    List.iter
      (fun { Compiler.label; ops } ->
        let c =
          List.fold_left
            (fun acc op -> acc + (Compiler.Counter.count ~strategy cfg op).Ops.constraints)
            0 ops
        in
        Printf.printf "  %-24s %14d constraints\n" label c)
      layers;
    let total = Compiler.total_counts ~strategy cfg layers in
    let mm, other = Compiler.matmul_split ~strategy cfg layers in
    Printf.printf "total: %d constraints (%d matmul + %d non-linear/quantization), %d variables\n"
      total.Ops.constraints mm other total.Ops.variables;
    0
  in
  let doc = "Compile a paper model to verifiable ops and print exact budgets." in
  Cmd.v (Cmd.info "model" ~doc) Term.(const run $ arch_arg $ variant_arg $ strategy_arg)

(* ---- gkr ---- *)

let gkr_cmd =
  let run d seed =
    let rng = Random.State.make [| seed |] in
    let x = Spec.random_matrix rng ~rows:d.Mspec.a ~cols:d.Mspec.n ~bound:256 in
    let w = Spec.random_matrix rng ~rows:d.Mspec.n ~cols:d.Mspec.b ~bound:256 in
    let y = Spec.multiply x w in
    let t0 = Unix.gettimeofday () in
    let proof = Zkvc_gkr.Thaler_matmul.prove ~a:x ~b:w in
    let t_prove = Unix.gettimeofday () -. t0 in
    let t0 = Unix.gettimeofday () in
    let ok = Zkvc_gkr.Thaler_matmul.verify ~a:x ~b:w ~c:y proof in
    let t_verify = Unix.gettimeofday () -. t0 in
    Printf.printf
      "thaler-matmul %s: prove=%.4fs verify=%.4fs proof=%dB verified=%b\n"
      (Format.asprintf "%a" Mspec.pp_dims d)
      t_prove t_verify
      (Zkvc_gkr.Thaler_matmul.proof_size_bytes proof)
      ok;
    if ok then 0 else 1
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let doc = "Prove a matmul with the interactive-family Thaler'13 sumcheck (GKR baseline)." in
  Cmd.v (Cmd.info "gkr" ~doc) Term.(const run $ dims_arg $ seed_arg)

let () =
  let doc = "zkVC: fast zero-knowledge proofs for verifiable matrix multiplication" in
  let info = Cmd.info "zkvc_cli" ~doc ~version:"1.0.0" in
  exit (Cmd.eval' (Cmd.group info [ count_cmd; prove_cmd; model_cmd; gkr_cmd ]))
