(* zkvc command-line interface.

   $ zkvc_cli count  --dims 49,64,128 --strategy crpc+psq
   $ zkvc_cli prove  --dims 8,8,16 --strategy crpc+psq --backend spartan
   $ zkvc_cli prove  --dims 8,8,16 --backend groth16 --trace t.json --metrics
   $ zkvc_cli model  --arch cifar10 --variant zkvc
*)

module Fr = Zkvc_field.Fr
module Api = Zkvc.Api
module Mc = Zkvc.Matmul_circuit
module Mspec = Zkvc.Matmul_spec
module Spec = Mspec.Make (Fr)
module Models = Zkvc_nn.Models
module Compiler = Zkvc_zkml.Compiler
module Ops = Zkvc_zkml.Ops
module Obs = Zkvc_obs
module Wire = Zkvc_serve.Wire
module Server = Zkvc_serve.Server
module Client = Zkvc_serve.Client
module Key_cache = Zkvc_serve.Key_cache
module Batch = Zkvc_serve.Batch
module Groth16 = Zkvc_groth16.Groth16
module Aggregate = Zkvc_groth16.Aggregate

open Cmdliner

let cfg = Zkvc.Nonlinear.default_config

(* ---- shared converters ---- *)

let dims_conv =
  let parse s =
    match String.split_on_char ',' s with
    | [ a; n; b ] ->
      (try Ok (Mspec.dims ~a:(int_of_string a) ~n:(int_of_string n) ~b:(int_of_string b))
       with _ -> Error (`Msg "dims must be three positive integers a,n,b"))
    | _ -> Error (`Msg "dims must look like 49,64,128")
  in
  let print fmt d = Mspec.pp_dims fmt d in
  Arg.conv (parse, print)

let strategy_conv =
  let assoc =
    List.map (fun s -> (Mc.strategy_name s, s)) Mc.all_strategies
  in
  Arg.enum assoc

let backend_conv =
  Arg.enum [ ("groth16", Api.Backend_groth16); ("spartan", Api.Backend_spartan) ]

let arch_conv =
  Arg.enum
    [ ("cifar10", Models.vit_cifar10);
      ("tiny-imagenet", Models.vit_tiny_imagenet);
      ("imagenet", Models.vit_imagenet);
      ("bert", Models.bert_glue) ]

let variant_conv =
  Arg.enum
    [ ("softapprox", Models.Soft_approx);
      ("softfree-s", Models.Soft_free_s);
      ("softfree-p", Models.Soft_free_p);
      ("softfree-l", Models.Soft_free_l);
      ("zkvc", Models.Zkvc_hybrid) ]

let dims_arg =
  Arg.(value & opt dims_conv (Mspec.dims ~a:8 ~n:8 ~b:16)
       & info [ "dims" ] ~docv:"A,N,B" ~doc:"Matrix dimensions [A,N]x[N,B].")

let strategy_arg =
  Arg.(value & opt strategy_conv Mc.Crpc_psq
       & info [ "strategy" ] ~docv:"STRATEGY"
           ~doc:"Matmul encoding: vanilla, vanilla+psq, crpc or crpc+psq.")

let jobs_arg =
  Arg.(value & opt int Zkvc_parallel.env_jobs
       & info [ "jobs" ] ~docv:"N"
           ~doc:"Prover worker domains (0 = one per core). Proofs are \
                 byte-identical for every value. Defaults to $(b,ZKVC_JOBS) \
                 or 1.")

let backend_arg =
  Arg.(value & opt backend_conv Api.Backend_groth16
       & info [ "backend" ] ~docv:"BACKEND" ~doc:"groth16 or spartan.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let optimize_arg =
  Arg.(value & flag
       & info [ "optimize"; "O" ]
           ~doc:"Run the R1CS optimiser pipeline (constant folding, wire \
                 unification, dead-constraint elimination, linear-subexpression \
                 sharing) on the circuit before keygen/prove. Satisfiability \
                 and the CRPC challenge are unchanged; keys from an optimised \
                 circuit only verify proofs of the same optimised circuit.")

(* the CLI flag always selects the default pipeline; the library accepts
   finer-grained configs *)
let opt_of_flag b = if b then Some Api.Opt.default else None

(* ---- codec file IO ---- *)

let write_file path bytes =
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  b

(* ---- count ---- *)

let count_cmd =
  let run d =
    Printf.printf "%-12s %12s %12s %10s\n" "strategy" "constraints" "variables" "nnz(A)";
    List.iter
      (fun strategy ->
        let c = Compiler.Counter.count ~strategy cfg (Ops.Op_matmul d) in
        let x = Spec.random_matrix (Random.State.make [| 1 |]) ~rows:d.Mspec.a ~cols:d.Mspec.n ~bound:16 in
        let w = Spec.random_matrix (Random.State.make [| 2 |]) ~rows:d.Mspec.n ~cols:d.Mspec.b ~bound:16 in
        let cs, _, _ = Api.build_circuit strategy ~x ~w d in
        let s = Api.Cs.stats cs in
        Printf.printf "%-12s %12d %12d %10d\n" (Mc.strategy_name strategy) c.Ops.constraints
          c.Ops.variables s.Api.Cs.nonzero_a)
      Mc.all_strategies;
    0
  in
  let doc = "Report R1CS sizes of the four matmul encodings at given dimensions." in
  Cmd.v (Cmd.info "count" ~doc) Term.(const run $ dims_arg)

(* ---- prove ---- *)

let prove_cmd =
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record hierarchical spans and write a Chrome trace_event \
                   JSON file (open in chrome://tracing or ui.perfetto.dev).")
  in
  let metrics_arg =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Record prover metrics (field mults, MSM sizes, NTT sizes, \
                   sumcheck rounds, R1CS shape) and print them with the span tree.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write a self-contained proof file (codec-encoded proof + \
                   public inputs + statement descriptor) verifiable with \
                   $(b,zkvc_cli verify) on another machine.")
  in
  let key_arg =
    Arg.(value & opt (some string) None
         & info [ "key" ] ~docv:"FILE"
             ~doc:"Prove under the keys in this key file (from $(b,keygen)) \
                   instead of generating fresh ones. The statement's \
                   backend, strategy, dims and optimiser config come from \
                   the file; only $(b,--seed) picks the instance. Proofs \
                   from different seeds then share one key — required for \
                   $(b,verify --batch) and $(b,aggregate). CRPC keys are \
                   statement-bound, so this needs a challenge-free \
                   strategy (vanilla / vanilla+psq) or a matching seed.")
  in
  (* prove under an existing key file: same CRS for every seed, which is
     what batch verification and aggregation need offline. The generated
     statement must land on the key file's key id (CRPC challenges are
     statement-derived, so a mismatched seed fails loudly here instead of
     yielding an unverifiable proof). *)
  let run_with_key kf seed out =
    let d = kf.Wire.kf_dims and strategy = kf.Wire.kf_strategy in
    let backend = kf.Wire.kf_backend and optimize = kf.Wire.kf_opt in
    let rng = Random.State.make [| seed |] in
    let x = Spec.random_matrix rng ~rows:d.Mspec.a ~cols:d.Mspec.n ~bound:256 in
    let w = Spec.random_matrix rng ~rows:d.Mspec.n ~cols:d.Mspec.b ~bound:256 in
    let prep = Api.prepare ?optimize strategy ~x ~w d in
    let key_id =
      Key_cache.id_of ?opt:optimize backend strategy d ~challenge:prep.Api.challenge
        prep.Api.cs
    in
    if key_id <> kf.Wire.kf_key_id then begin
      Printf.eprintf
        "zkvc_cli: statement key %s does not match the key file's %s\n\
         (CRPC keys are statement-bound: reuse the keygen seed, or keygen \
         a vanilla-strategy key)\n"
        (Wire.hex_of_id key_id)
        (Wire.hex_of_id kf.Wire.kf_key_id);
      2
    end
    else begin
      let proof = Api.prove_with ~rng kf.Wire.kf_keys prep.Api.assignment in
      let public_inputs =
        Array.to_list (Array.sub prep.Api.assignment 1 (Api.Cs.num_inputs prep.Api.cs))
      in
      let ok = Api.verify_with kf.Wire.kf_keys ~public_inputs proof in
      Printf.printf "proved under key %s, verified: %b\n" (Wire.hex_of_id key_id) ok;
      (match out with
       | Some file ->
         let pf =
           { Wire.pf_backend = backend;
             pf_strategy = strategy;
             pf_dims = d;
             pf_challenge = prep.Api.challenge;
             pf_key_id = key_id;
             pf_public_inputs = public_inputs;
             pf_proof = proof }
         in
         write_file file (Wire.encode_proof_file pf);
         Printf.printf "proof file: %s (key %s)\n" file (Wire.hex_of_id key_id)
       | None -> ());
      if ok then 0 else 1
    end
  in
  let run d strategy backend seed trace metrics jobs out optimize key_file =
    Zkvc_parallel.set_jobs jobs;
    match key_file with
    | Some file -> (
      match Wire.decode_key_file (read_file file) with
      | Error e ->
        Printf.eprintf "zkvc_cli: bad key file %s: %s\n" file (Wire.error_to_string e);
        2
      | Ok kf -> run_with_key kf seed out)
    | None ->
    let optimize = opt_of_flag optimize in
    let rng = Random.State.make [| seed |] in
    let x = Spec.random_matrix rng ~rows:d.Mspec.a ~cols:d.Mspec.n ~bound:256 in
    let w = Spec.random_matrix rng ~rows:d.Mspec.n ~cols:d.Mspec.b ~bound:256 in
    let observing = trace <> None || metrics in
    if observing then begin
      Obs.Span.reset ();
      Obs.Metrics.reset ();
      Obs.Sink.enable ()
    end;
    let proof, m = Api.run ~rng ?optimize backend strategy ~x ~w d in
    if observing then Obs.Sink.disable ();
    Format.printf "%a@." Api.pp_measurement m;
    (* the statement descriptor for --out, also carrying the optimiser
       report (prepare is deterministic in x,w) *)
    let prep =
      if out <> None || optimize <> None then Some (Api.prepare ?optimize strategy ~x ~w d)
      else None
    in
    (match prep with
     | Some { Api.opt = Some { Api.opt_report; _ }; _ } ->
       Format.printf "%a@." Api.Opt.pp_report opt_report
     | _ -> ());
    (match (out, prep) with
     | Some file, Some prep ->
       let key_id =
         Key_cache.id_of ?opt:optimize backend strategy d ~challenge:prep.Api.challenge
           prep.Api.cs
       in
       let pf =
         { Wire.pf_backend = backend;
           pf_strategy = strategy;
           pf_dims = d;
           pf_challenge = prep.Api.challenge;
           pf_key_id = key_id;
           pf_public_inputs =
             Array.to_list (Array.sub prep.Api.assignment 1 (Api.Cs.num_inputs prep.Api.cs));
           pf_proof = proof }
       in
       write_file file (Wire.encode_proof_file pf);
       Printf.printf "proof file: %s (key %s)\n" file (Wire.hex_of_id key_id)
     | _ -> ());
    (match trace with
     | Some file ->
       (try
          Obs.Export.write_chrome_trace file (Obs.Span.roots ());
          Printf.printf "trace: %d spans written to %s\n"
            (List.length (String.split_on_char '\n' (Obs.Export.to_jsonl (Obs.Span.roots ()))) - 1)
            file
        with Sys_error msg ->
          Printf.eprintf "zkvc_cli: cannot write trace: %s\n" msg;
          exit 1)
     | None -> ());
    if metrics then begin
      print_newline ();
      print_string (Obs.Export.tree_to_string (Obs.Span.roots ()));
      print_newline ();
      print_string (Obs.Metrics.to_string ())
    end;
    if m.Api.verified then 0 else 1
  in
  let doc = "Prove a random matmul instance and verify it (prints timings)." in
  Cmd.v (Cmd.info "prove" ~doc)
    Term.(const run $ dims_arg $ strategy_arg $ backend_arg $ seed_arg $ trace_arg
          $ metrics_arg $ jobs_arg $ out_arg $ optimize_arg $ key_arg)

(* ---- model ---- *)

let model_cmd =
  let arch_arg =
    Arg.(value & opt arch_conv Models.vit_cifar10
         & info [ "arch" ] ~docv:"ARCH" ~doc:"cifar10, tiny-imagenet, imagenet or bert.")
  in
  let variant_arg =
    Arg.(value & opt variant_conv Models.Zkvc_hybrid
         & info [ "variant" ] ~docv:"VARIANT"
             ~doc:"softapprox, softfree-s, softfree-p, softfree-l or zkvc.")
  in
  let run arch variant strategy =
    let layers = Compiler.compile arch variant in
    Printf.printf "%s / %s (matmuls: %s)\n" arch.Models.arch_name
      (Models.variant_name variant) (Mc.strategy_name strategy);
    List.iter
      (fun { Compiler.label; ops } ->
        let c =
          List.fold_left
            (fun acc op -> acc + (Compiler.Counter.count ~strategy cfg op).Ops.constraints)
            0 ops
        in
        Printf.printf "  %-24s %14d constraints\n" label c)
      layers;
    let total = Compiler.total_counts ~strategy cfg layers in
    let mm, other = Compiler.matmul_split ~strategy cfg layers in
    Printf.printf "total: %d constraints (%d matmul + %d non-linear/quantization), %d variables\n"
      total.Ops.constraints mm other total.Ops.variables;
    0
  in
  let doc = "Compile a paper model to verifiable ops and print exact budgets." in
  Cmd.v (Cmd.info "model" ~doc) Term.(const run $ arch_arg $ variant_arg $ strategy_arg)

(* ---- profile ---- *)

let iso8601_utc_now () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

(* [profile --compare A.json B.json]: per-region delta of two reports'
   attribution trees. Regions are flattened to slash-joined paths (self
   counts, so parents and children never double-count); the union of
   paths is diffed and sorted by nonzero saving. *)
let profile_compare ~baseline ~candidate =
  match candidate with
  | None ->
    Printf.eprintf "zkvc_cli: --compare needs a second report file argument\n";
    2
  | Some candidate -> (
    let flatten tree =
      (* path -> (constraints, nnz) of the region's self cost *)
      let tbl = Hashtbl.create 64 in
      let rec go prefix node =
        let path =
          if prefix = "" then node.Obs.Attrib.name
          else prefix ^ "/" ^ node.Obs.Attrib.name
        in
        let c = node.Obs.Attrib.self in
        Hashtbl.replace tbl path
          ( c.Obs.Attrib.constraints,
            c.Obs.Attrib.nnz_a + c.Obs.Attrib.nnz_b + c.Obs.Attrib.nnz_c );
        List.iter (go path) node.Obs.Attrib.children
      in
      go "" tree;
      tbl
    in
    let load path =
      match Obs.Report.of_string (Bytes.to_string (read_file path)) with
      | exception Sys_error msg -> Error msg
      | Error e -> Error (path ^ ": " ^ e)
      | Ok r -> (
        match
          List.find_map (fun m -> m.Obs.Report.regions) r.Obs.Report.measurements
        with
        | Some tree -> Ok (flatten tree)
        | None -> Error (path ^ ": no measurement carries a region tree"))
    in
    match (load baseline, load candidate) with
    | Error e, _ | _, Error e ->
      Printf.eprintf "zkvc_cli: %s\n" e;
      2
    | Ok a, Ok b ->
      let paths = Hashtbl.create 64 in
      Hashtbl.iter (fun p _ -> Hashtbl.replace paths p ()) a;
      Hashtbl.iter (fun p _ -> Hashtbl.replace paths p ()) b;
      let get tbl p = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl p) in
      let rows =
        Hashtbl.fold
          (fun p () acc ->
            let ca, na = get a p and cb, nb = get b p in
            if ca = cb && na = nb then acc else (p, cb - ca, nb - na) :: acc)
          paths []
        (* largest nonzero saving first; ties by path for stable output *)
        |> List.sort (fun (p1, _, n1) (p2, _, n2) ->
               match compare n1 n2 with 0 -> compare p1 p2 | c -> c)
      in
      Printf.printf "%-40s %14s %14s\n" "region" "d-constraints" "d-nnz";
      if rows = [] then print_string "(no per-region differences)\n";
      List.iter
        (fun (p, dc, dn) -> Printf.printf "%-40s %+14d %+14d\n" p dc dn)
        rows;
      let tc, tn =
        List.fold_left (fun (tc, tn) (_, dc, dn) -> (tc + dc, tn + dn)) (0, 0) rows
      in
      Printf.printf "%-40s %+14d %+14d\n" "total" tc tn;
      0)

let profile_cmd =
  let folded_arg =
    Arg.(value & opt (some string) None
         & info [ "folded" ] ~docv:"FILE"
             ~doc:"Write the region tree as collapsed-stack text (one \
                   $(i,path;to;region N) line per region, weight = self \
                   constraint count) — feed straight to flamegraph.pl or \
                   speedscope.")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write a zkvc-bench/3 report (one measurement, section \
                   $(b,profile)) with the region tree embedded, diffable \
                   with $(b,perf_diff).")
  in
  let arch_arg =
    Arg.(value & opt (some arch_conv) None
         & info [ "arch" ] ~docv:"ARCH"
             ~doc:"Profile a whole compiled model (shrunk by $(b,--shrink)) \
                   instead of one matmul: cifar10, tiny-imagenet, imagenet \
                   or bert. Layer labels become regions.")
  in
  let variant_arg =
    Arg.(value & opt variant_conv Models.Zkvc_hybrid
         & info [ "variant" ] ~docv:"VARIANT" ~doc:"Model variant (with --arch).")
  in
  let shrink_arg =
    Arg.(value & opt int 8
         & info [ "shrink" ] ~docv:"N"
             ~doc:"Divide model widths/depths by N before synthesis (with \
                   --arch); keeps whole-model profiling tractable.")
  in
  let compare_arg =
    Arg.(value & opt (some string) None
         & info [ "compare" ] ~docv:"BASELINE.json"
             ~doc:"Diff two zkvc-bench/3 reports instead of profiling: \
                   $(b,zkvc_cli profile --compare A.json B.json) prints the \
                   per-region constraint and nonzero deltas of B relative to \
                   A, sorted by nonzero saving. Both files need embedded \
                   region trees ($(b,--json) output, $(b,bench --profile)).")
  in
  let compare_to_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"NEW.json" ~doc:"Second report for $(b,--compare).")
  in
  let run d strategy backend seed jobs arch variant shrink folded json_file optimize
      compare compare_to =
    match compare with
    | Some baseline -> profile_compare ~baseline ~candidate:compare_to
    | None ->
    Zkvc_parallel.set_jobs jobs;
    let optimize = opt_of_flag optimize in
    let rng = Random.State.make [| seed |] in
    let cs, assignment, tree, opt_report, dims, section =
      match arch with
      | None ->
        (* the same seeded instance [prove] uses *)
        let x = Spec.random_matrix rng ~rows:d.Mspec.a ~cols:d.Mspec.n ~bound:256 in
        let w = Spec.random_matrix rng ~rows:d.Mspec.n ~cols:d.Mspec.b ~bound:256 in
        let prep = Api.prepare ?optimize strategy ~x ~w d in
        let report = Option.map (fun o -> o.Api.opt_report) prep.Api.opt in
        (prep.Api.cs, prep.Api.assignment, prep.Api.regions, report, d, "profile")
      | Some arch ->
        let arch = Models.shrink arch ~factor:shrink in
        let layers = Compiler.compile arch variant in
        let b = Compiler.synthesize ~strategy cfg layers in
        let section = "profile-" ^ arch.Models.arch_name in
        (match optimize with
         | None ->
           let cs, assignment, tree = Compiler.Counter.B.finalize_attributed b in
           (cs, assignment, tree, None, d, section)
         | Some config ->
           let cs, assignment, tree, prov =
             Compiler.Counter.B.finalize_with_provenance b
           in
           let res =
             Api.Opt.optimize ~config
               ~provenance:
                 { Api.Opt.constraint_region =
                     prov.Compiler.Counter.B.constraint_region;
                   wire_region = prov.Compiler.Counter.B.wire_region;
                   tree }
               cs
           in
           let tree = Option.value ~default:tree res.Api.Opt.regions in
           ( res.Api.Opt.cs,
             Api.Opt.expand_witness res.Api.Opt.map assignment,
             tree, Some res.Api.Opt.report, d, section ))
    in
    (match opt_report with
     | Some r -> Format.printf "%a@.@." Api.Opt.pp_report r
     | None -> ());
    let stats = Api.Cs.stats cs in
    let public_inputs = Array.to_list (Array.sub assignment 1 (Api.Cs.num_inputs cs)) in
    let t0 = Obs.Span.now () in
    let keys = Api.keygen ~rng backend cs in
    let t1 = Obs.Span.now () in
    let proof = Api.prove_with ~rng keys assignment in
    let t2 = Obs.Span.now () in
    let ok = Api.verify_with keys ~public_inputs proof in
    let t3 = Obs.Span.now () in
    let prove_s = t2 -. t1 in
    let tree = Obs.Attrib.with_prove_share ~prove_s tree in
    (* Groth16's QAP reduction appends input-consistency rows on the A
       side; surface them as a synthetic zero-constraint region so the
       per-region nnz_a ledger reconciles with Qap.density. *)
    let tree =
      match backend with
      | Api.Backend_groth16 ->
        let pad =
          Zkvc_groth16.Groth16.Qap.input_consistency_nnz
            ~num_inputs:(Api.Cs.num_inputs cs)
        in
        { tree with
          Obs.Attrib.children =
            tree.Obs.Attrib.children
            @ [ Obs.Attrib.make ~name:"(qap-padding)"
                  ~self:{ Obs.Attrib.zero_counts with Obs.Attrib.nnz_a = pad }
                  [] ] }
      | Api.Backend_spartan -> tree
    in
    let total = Obs.Attrib.total tree in
    Printf.printf "%s  %s  %s  prove=%.3fs setup=%.3fs verify=%.4fs%s\n\n" section
      (Mc.strategy_name strategy) (Api.backend_name backend) prove_s (t1 -. t0) (t3 -. t2)
      (if ok then "" else "  VERIFY-FAILED");
    print_string (Obs.Attrib.to_table tree);
    let sum_ok = total.Obs.Attrib.constraints = stats.Api.Cs.constraints in
    Printf.printf "\nregion constraints total: %d; global ledger: %d (%s)\n"
      total.Obs.Attrib.constraints stats.Api.Cs.constraints
      (if sum_ok then "exact match" else "MISMATCH");
    let unattrib = Obs.Attrib.unattributed_pct tree in
    Printf.printf "unattributed constraints: %.2f%% (target < 5%%)%s\n" unattrib
      (if unattrib >= 5. then "  WARNING" else "");
    (match Obs.Attrib.top_regions ~n:3 tree with
     | [] -> ()
     | tops ->
       Printf.printf "hot regions: %s\n"
         (String.concat ", "
            (List.map (fun (p, c) -> Printf.sprintf "%s (%d)" p c) tops)));
    (match folded with
     | Some file ->
       let oc = open_out file in
       output_string oc (Obs.Attrib.to_folded tree);
       close_out oc;
       Printf.printf "folded stacks: %s\n" file
     | None -> ());
    (match json_file with
     | Some file ->
       let ledger =
         { Obs.Report.constraints = stats.Api.Cs.constraints;
           variables = stats.Api.Cs.variables;
           nonzero_a = stats.Api.Cs.nonzero_a;
           nonzero_b = stats.Api.Cs.nonzero_b;
           nonzero_c = stats.Api.Cs.nonzero_c;
           witness = Api.Cs.num_aux cs;
           top_heap_words = (Gc.quick_stat ()).Gc.top_heap_words;
           major_collections = (Gc.quick_stat ()).Gc.major_collections }
       in
       let m =
         Obs.Report.summarize
           ~regions:(Obs.Attrib.strip_timing tree)
           ~section ~scheme:"profile" ~strategy:(Mc.strategy_name strategy)
           ~backend:(Api.backend_name backend)
           ~dims:(dims.Mspec.a, dims.Mspec.n, dims.Mspec.b)
           ~reps:[ { Obs.Report.setup_s = t1 -. t0; prove_s; verify_s = t3 -. t2 } ]
           ~proof_bytes:(Api.proof_size proof) ~ledger ()
       in
       let report =
         { Obs.Report.env =
             { Obs.Report.git_rev = "unknown";
               ocaml_version = Sys.ocaml_version;
               nproc = Domain.recommended_domain_count ();
               jobs = Zkvc_parallel.jobs ();
               scale = 1;
               full = false;
               clock = "monotonic";
               date = iso8601_utc_now () };
           sections = [ section ];
           measurements = [ m ] }
       in
       let oc = open_out file in
       output_string oc (Obs.Json.to_string_pretty (Obs.Report.to_json report));
       close_out oc;
       Printf.printf "report: %s\n" file
     | None -> ());
    if not ok then 1 else if not sum_ok then 3 else 0
  in
  let doc =
    "Attribute constraints, nonzeros and prove time to circuit regions \
     (per gadget, per layer with --arch) and export the cost profile."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run $ dims_arg $ strategy_arg $ backend_arg $ seed_arg $ jobs_arg
          $ arch_arg $ variant_arg $ shrink_arg $ folded_arg $ json_arg
          $ optimize_arg $ compare_arg $ compare_to_arg)

(* ---- gkr ---- *)

let gkr_cmd =
  let run d seed =
    let rng = Random.State.make [| seed |] in
    let x = Spec.random_matrix rng ~rows:d.Mspec.a ~cols:d.Mspec.n ~bound:256 in
    let w = Spec.random_matrix rng ~rows:d.Mspec.n ~cols:d.Mspec.b ~bound:256 in
    let y = Spec.multiply x w in
    let t0 = Unix.gettimeofday () in
    let proof = Zkvc_gkr.Thaler_matmul.prove ~a:x ~b:w in
    let t_prove = Unix.gettimeofday () -. t0 in
    let t0 = Unix.gettimeofday () in
    let ok = Zkvc_gkr.Thaler_matmul.verify ~a:x ~b:w ~c:y proof in
    let t_verify = Unix.gettimeofday () -. t0 in
    Printf.printf
      "thaler-matmul %s: prove=%.4fs verify=%.4fs proof=%dB verified=%b\n"
      (Format.asprintf "%a" Mspec.pp_dims d)
      t_prove t_verify
      (Zkvc_gkr.Thaler_matmul.proof_size_bytes proof)
      ok;
    if ok then 0 else 1
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let doc = "Prove a matmul with the interactive-family Thaler'13 sumcheck (GKR baseline)." in
  Cmd.v (Cmd.info "gkr" ~doc) Term.(const run $ dims_arg $ seed_arg)

(* ---- keygen ---- *)

let keygen_cmd =
  let out_arg =
    Arg.(required & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Write the key file here.")
  in
  let run d strategy backend seed jobs out optimize =
    Zkvc_parallel.set_jobs jobs;
    let optimize = opt_of_flag optimize in
    let rng = Random.State.make [| seed |] in
    let x = Spec.random_matrix rng ~rows:d.Mspec.a ~cols:d.Mspec.n ~bound:256 in
    let w = Spec.random_matrix rng ~rows:d.Mspec.n ~cols:d.Mspec.b ~bound:256 in
    let prep = Api.prepare ?optimize strategy ~x ~w d in
    (match prep.Api.opt with
     | Some { Api.opt_report; _ } -> Format.printf "%a@." Api.Opt.pp_report opt_report
     | None -> ());
    let keys = Api.keygen ~rng backend prep.Api.cs in
    let key_id =
      Key_cache.id_of ?opt:optimize backend strategy d ~challenge:prep.Api.challenge
        prep.Api.cs
    in
    write_file out
      (Wire.encode_key_file
         { Wire.kf_backend = backend;
           kf_strategy = strategy;
           kf_dims = d;
           kf_challenge = prep.Api.challenge;
           kf_opt = optimize;
           kf_key_id = key_id;
           kf_keys = keys });
    Printf.printf "key file: %s (key %s)\n" out (Wire.hex_of_id key_id);
    0
  in
  let doc =
    "Generate backend keys for a circuit and write them as a key file \
     (CRPC challenges are seed-dependent, so use the same seed as prove)."
  in
  Cmd.v (Cmd.info "keygen" ~doc)
    Term.(const run $ dims_arg $ strategy_arg $ backend_arg $ seed_arg $ jobs_arg
          $ out_arg $ optimize_arg)

(* ---- verify ---- *)

(* Aggregation SRS policy shared by [aggregate] and [verify --aggregate]:
   derive both trapdoors from a seed. [Kzg.setup_g2]/[Kzg.setup] each
   draw exactly one scalar before any degree-dependent work, so SRSes
   from one seed are prefix-compatible: a verifier sized for any
   [max_proofs >= n] reproduces the aggregator's commitment keys. *)
let aggregation_srs ~seed ~n =
  let rec np2 p = if p >= n then p else np2 (2 * p) in
  Aggregate.setup (Random.State.make [| seed |]) ~max_proofs:(Stdlib.max 2 (np2 2))

let srs_seed_arg =
  Arg.(value & opt int 1
       & info [ "srs-seed" ] ~docv:"SEED"
           ~doc:"Seed the aggregation SRS trapdoors are derived from (must \
                 match between $(b,aggregate) and $(b,verify --aggregate)).")

(* Load a proof file and require it to target [kf]'s key. *)
let load_proof_for kf proof_file =
  match Wire.decode_proof_file (read_file proof_file) with
  | Error e ->
    Printf.eprintf "zkvc_cli: bad proof file %s: %s\n" proof_file
      (Wire.error_to_string e);
    None
  | Ok pf ->
    if pf.Wire.pf_key_id <> kf.Wire.kf_key_id then begin
      Printf.eprintf
        "zkvc_cli: proof %s was made for key %s but the key file holds %s\n"
        proof_file
        (Wire.hex_of_id pf.Wire.pf_key_id)
        (Wire.hex_of_id kf.Wire.kf_key_id);
      None
    end
    else Some pf

let verify_cmd =
  let key_arg =
    Arg.(required & opt (some string) None
         & info [ "key" ] ~docv:"FILE" ~doc:"Key file from $(b,keygen).")
  in
  let proof_arg =
    Arg.(value & opt (some string) None
         & info [ "proof" ] ~docv:"FILE" ~doc:"Proof file from $(b,prove --out).")
  in
  let batch_arg =
    Arg.(value & opt_all string []
         & info [ "batch" ] ~docv:"FILE"
             ~doc:"Proof file to verify as part of one batch (repeat for each \
                   member; all must target the key file's key). The batch is \
                   checked with the backend's combined verifier; on rejection \
                   each member is re-verified alone and reported.")
  in
  let aggregate_file_arg =
    Arg.(value & opt (some string) None
         & info [ "aggregate" ] ~docv:"FILE"
             ~doc:"Aggregate proof file from $(b,zkvc_cli aggregate); verified \
                   with the SRS re-derived from $(b,--srs-seed).")
  in
  let verify_single kf proof_file =
    match load_proof_for kf proof_file with
    | None -> 2
    | Some pf ->
      let ok =
        try
          Api.verify_with kf.Wire.kf_keys ~public_inputs:pf.Wire.pf_public_inputs
            pf.Wire.pf_proof
        with Invalid_argument _ -> false
      in
      Printf.printf "verified: %b\n" ok;
      if ok then 0 else 1
  in
  let verify_batch kf files =
    let pfs = List.map (load_proof_for kf) files in
    if List.exists (( = ) None) pfs then 2
    else begin
      let items =
        List.filter_map
          (Option.map (fun pf -> (pf.Wire.pf_public_inputs, pf.Wire.pf_proof)))
          pfs
      in
      let o = Batch.verify_each kf.Wire.kf_keys items in
      let path =
        match o.Batch.path with
        | Batch.Batched -> "batched"
        | Batch.Aggregated -> "aggregated"
        | Batch.Fallback -> "fallback"
        | Batch.Per_item -> "per-item"
      in
      List.iter2
        (fun file ok -> Printf.printf "%s: verified: %b\n" file ok)
        files o.Batch.verdicts;
      Printf.printf "batch of %d: %s%s\n" (List.length files) path
        (match o.Batch.malformed with
         | [] -> ""
         | bad ->
           Printf.sprintf " (malformed: %s)"
             (String.concat "," (List.map string_of_int bad)));
      if List.for_all Fun.id o.Batch.verdicts then 0 else 1
    end
  in
  let verify_aggregate kf agg_file srs_seed =
    match Wire.decode_aggregate_file (read_file agg_file) with
    | Error e ->
      Printf.eprintf "zkvc_cli: bad aggregate file %s: %s\n" agg_file
        (Wire.error_to_string e);
      2
    | Ok af ->
      if af.Wire.af_key_id <> kf.Wire.kf_key_id then begin
        Printf.eprintf
          "zkvc_cli: aggregate was made for key %s but the key file holds %s\n"
          (Wire.hex_of_id af.Wire.af_key_id)
          (Wire.hex_of_id kf.Wire.kf_key_id);
        2
      end
      else begin
        match kf.Wire.kf_keys with
        | Api.Spartan_keys _ ->
          Printf.eprintf "zkvc_cli: aggregate proofs are Groth16-only\n";
          2
        | Api.Groth16_keys { vk; _ } ->
          let srs =
            aggregation_srs ~seed:srs_seed ~n:(List.length af.Wire.af_statements)
          in
          let ok =
            try Aggregate.verify_aggregate srs vk af.Wire.af_statements af.Wire.af_proof
            with Invalid_argument _ -> false
          in
          Printf.printf "aggregate of %d: verified: %b\n"
            (List.length af.Wire.af_statements) ok;
          if ok then 0 else 1
      end
  in
  let run key_file proof_file batch_files aggregate_file srs_seed =
    match Wire.decode_key_file (read_file key_file) with
    | Error e ->
      Printf.eprintf "zkvc_cli: bad key file %s: %s\n" key_file (Wire.error_to_string e);
      2
    | Ok kf -> (
      match (proof_file, batch_files, aggregate_file) with
      | Some pf, [], None -> verify_single kf pf
      | None, (_ :: _ as files), None -> verify_batch kf files
      | None, [], Some agg -> verify_aggregate kf agg srs_seed
      | None, [], None ->
        Printf.eprintf "zkvc_cli: give one of --proof, --batch or --aggregate\n";
        2
      | _ ->
        Printf.eprintf
          "zkvc_cli: --proof, --batch and --aggregate are mutually exclusive\n";
        2)
  in
  let doc =
    "Verify proof files against a key file (no witness needed): one proof \
     ($(b,--proof)), a batch sharing one combined check ($(b,--batch), \
     repeated), or a SnarkPack-style aggregate ($(b,--aggregate))."
  in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(const run $ key_arg $ proof_arg $ batch_arg $ aggregate_file_arg
          $ srs_seed_arg)

(* ---- aggregate ---- *)

let aggregate_cmd =
  let key_arg =
    Arg.(required & opt (some string) None
         & info [ "key" ] ~docv:"FILE" ~doc:"Key file from $(b,keygen) (Groth16).")
  in
  let out_arg =
    Arg.(required & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Write the aggregate proof file here.")
  in
  let proofs_arg =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"PROOF_FILE" ~doc:"Proof files to aggregate (in order).")
  in
  let run key_file out srs_seed proof_files =
    match Wire.decode_key_file (read_file key_file) with
    | Error e ->
      Printf.eprintf "zkvc_cli: bad key file %s: %s\n" key_file (Wire.error_to_string e);
      2
    | Ok kf -> (
      match kf.Wire.kf_keys with
      | Api.Spartan_keys _ ->
        Printf.eprintf "zkvc_cli: aggregation is Groth16-only\n";
        2
      | Api.Groth16_keys { vk; _ } ->
        let pfs = List.map (load_proof_for kf) proof_files in
        if List.exists (( = ) None) pfs then 2
        else begin
          let instances =
            List.filter_map
              (Option.map (fun pf ->
                   match pf.Wire.pf_proof with
                   | Api.Groth16_proof p -> (pf.Wire.pf_public_inputs, p)
                   | Api.Spartan_proof _ ->
                     (* unreachable: a Groth16 key id never matches a
                        Spartan proof file *)
                     invalid_arg "spartan proof under groth16 key"))
              pfs
          in
          let srs = aggregation_srs ~seed:srs_seed ~n:(List.length instances) in
          let agg = Aggregate.aggregate srs vk instances in
          let individual_bytes =
            List.fold_left
              (fun acc (_, p) -> acc + Groth16.proof_size_bytes p)
              0 instances
          in
          write_file out
            (Wire.encode_aggregate_file
               { Wire.af_key_id = kf.Wire.kf_key_id;
                 af_statements = List.map fst instances;
                 af_proof = agg });
          Printf.printf "aggregate file: %s (%d proofs, %dB aggregate vs %dB individual)\n"
            out (List.length instances)
            (Aggregate.proof_size_bytes agg)
            individual_bytes;
          0
        end)
  in
  let doc =
    "Aggregate Groth16 proof files sharing one key into a single \
     O(log N)-size SnarkPack-style proof (verify with $(b,zkvc_cli verify \
     --aggregate))."
  in
  Cmd.v (Cmd.info "aggregate" ~doc)
    Term.(const run $ key_arg $ out_arg $ srs_seed_arg $ proofs_arg)

(* ---- serve ---- *)

let socket_arg =
  Arg.(value & opt string "/tmp/zkvc.sock"
       & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let queue_arg =
    Arg.(value & opt int 16
         & info [ "queue" ] ~docv:"N" ~doc:"Job queue capacity (backpressure bound).")
  in
  let cache_arg =
    Arg.(value & opt int Key_cache.default_capacity
         & info [ "cache" ] ~docv:"N" ~doc:"In-memory key cache capacity (LRU).")
  in
  let cache_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Spill generated keys to key files in DIR and reload evicted \
                   ones from there.")
  in
  let workers_arg =
    Arg.(value & opt int 1
         & info [ "workers" ] ~docv:"N"
             ~doc:"Worker threads serving jobs under fair scheduling (verifies \
                   dispatch ahead of queued proves). The default 1 keeps the \
                   single-worker behaviour.")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record a span per request and write a Chrome trace on shutdown.")
  in
  let metrics_arg =
    Arg.(value & flag
         & info [ "metrics" ] ~doc:"Print serve.* and prover metrics on shutdown.")
  in
  let job_delay_arg =
    Arg.(value & opt float 0.
         & info [ "job-delay" ] ~docv:"SECONDS"
             ~doc:"Testing hook: sleep before each job to make queue-full and \
                   deadline behaviour deterministic.")
  in
  let metrics_file_arg =
    Arg.(value & opt (some string) None
         & info [ "metrics-file" ] ~docv:"PATH"
             ~doc:"Write a Prometheus text-exposition snapshot of all metrics \
                   here periodically (atomic rename; scrape with any file \
                   collector or $(b,zkvc_cli top --file)). Implies metric \
                   recording.")
  in
  let metrics_interval_arg =
    Arg.(value & opt float 1.
         & info [ "metrics-interval" ] ~docv:"SECONDS"
             ~doc:"Seconds between $(b,--metrics-file) snapshots.")
  in
  let flight_arg =
    Arg.(value & opt int 128
         & info [ "flight" ] ~docv:"N"
             ~doc:"Flight-recorder capacity: the last N completed or failed \
                   requests, dumped by $(b,zkvc_cli client status --detail).")
  in
  let flight_file_arg =
    Arg.(value & opt (some string) None
         & info [ "flight-file" ] ~docv:"PATH"
             ~doc:"Dump the flight recorder (JSON lines) here when the worker \
                   drains or crashes.")
  in
  let batch_aggregate_arg =
    Arg.(value & flag
         & info [ "batch-aggregate" ]
             ~doc:"Verify homogeneous Groth16 batches by SnarkPack-style \
                   aggregation (one short aggregate proof checked instead of \
                   the weighted multi-pairing).")
  in
  let run socket queue cache cache_dir workers jobs trace metrics job_delay
      metrics_file metrics_interval flight flight_file optimize batch_aggregate =
    let cfg =
      { Server.socket_path = socket;
        queue_capacity = queue;
        cache_capacity = cache;
        cache_dir;
        workers;
        jobs;
        job_delay_s = job_delay;
        observe = trace <> None || metrics || metrics_file <> None;
        clock = None;
        metrics_file;
        metrics_interval_s = metrics_interval;
        flight_capacity = flight;
        flight_file;
        optimize = opt_of_flag optimize;
        batch_aggregate }
    in
    if cfg.Server.observe then begin
      Obs.Span.reset ();
      Obs.Metrics.reset ()
    end;
    let t = Server.start cfg in
    Printf.printf
      "zkvc serve: listening on %s (queue=%d cache=%d workers=%d jobs=%d)\n%!"
      socket queue cache (Stdlib.max 1 workers) (Zkvc_parallel.jobs ());
    Server.wait t;
    let s = Server.status t in
    Printf.printf
      "zkvc serve: stopped after %d requests (cache %d hits / %d misses, %d \
       timeouts, %d rejected, %d batched)\n"
      s.Wire.requests s.Wire.cache_hits s.Wire.cache_misses s.Wire.timeouts
      s.Wire.rejections s.Wire.batched;
    (match trace with
     | Some file ->
       (try Obs.Export.write_chrome_trace file (Obs.Span.roots ())
        with Sys_error msg -> Printf.eprintf "zkvc serve: cannot write trace: %s\n" msg)
     | None -> ());
    if metrics then print_string (Obs.Metrics.to_string ());
    0
  in
  let doc =
    "Run the persistent proof service on a Unix-domain socket (keys stay \
     cached across requests; talk to it with $(b,zkvc_cli client))."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ socket_arg $ queue_arg $ cache_arg $ cache_dir_arg
          $ workers_arg $ jobs_arg $ trace_arg $ metrics_arg $ job_delay_arg
          $ metrics_file_arg $ metrics_interval_arg $ flight_arg $ flight_file_arg
          $ optimize_arg $ batch_aggregate_arg)

(* ---- client ---- *)

let deadline_arg =
  Arg.(value & opt int 0
       & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Abort the request server-side after MS milliseconds (0 = none).")

let client_fail code message =
  Printf.eprintf "zkvc_cli: server error (%s): %s\n"
    (Wire.error_code_to_string code) message;
  3

let client_transport_fail e =
  Printf.eprintf "zkvc_cli: transport error: %s\n" (Wire.error_to_string e);
  3

let unexpected_response () =
  Printf.eprintf "zkvc_cli: unexpected response type\n";
  3

let client_prove_cmd =
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Write the returned proof as a proof file.")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record the request as a span tree — with the server's own \
                   phase timings stitched in from the response — and write a \
                   Chrome trace_event file: one trace shows the whole \
                   cross-process request, joined by request id.")
  in
  let run socket d strategy backend seed deadline_ms out trace =
    if trace <> None then begin
      Obs.Span.reset ();
      Obs.Sink.enable ()
    end;
    let status =
      Client.with_connection socket (fun c ->
          match
            Client.request c
              (Wire.Prove
                 { backend;
                   strategy;
                   dims = d;
                   input = Wire.Seeded { seed; bound = 256 };
                   deadline_ms })
          with
          | Error e -> client_transport_fail e
          | Ok (Wire.Error { code; message }) -> client_fail code message
          | Ok (Wire.Prove_ok { key_id; cache_hit; challenge; public_inputs; proof; prove_s })
            ->
            Printf.printf "proved in %.4fs (key %s, cache %s, proof %dB)\n" prove_s
              (Wire.hex_of_id key_id)
              (if cache_hit then "hit" else "miss")
              (Api.proof_size proof);
            (match Client.last_request_id c with
             | Some id -> Printf.printf "request %s\n" (Wire.hex_of_id id)
             | None -> ());
            (match out with
             | Some file ->
               write_file file
                 (Wire.encode_proof_file
                    { Wire.pf_backend = backend;
                      pf_strategy = strategy;
                      pf_dims = d;
                      pf_challenge = challenge;
                      pf_key_id = key_id;
                      pf_public_inputs = public_inputs;
                      pf_proof = proof });
               Printf.printf "proof file: %s\n" file
             | None -> ());
            0
          | Ok _ -> unexpected_response ())
    in
    (match trace with
     | Some file ->
       Obs.Sink.disable ();
       (try
          Obs.Export.write_chrome_trace file (Obs.Span.roots ());
          Printf.printf "trace: %s\n" file
        with Sys_error msg -> Printf.eprintf "zkvc_cli: cannot write trace: %s\n" msg)
     | None -> ());
    status
  in
  let doc = "Prove a seeded matmul instance on the server." in
  Cmd.v (Cmd.info "prove" ~doc)
    Term.(const run $ socket_arg $ dims_arg $ strategy_arg $ backend_arg $ seed_arg
          $ deadline_arg $ out_arg $ trace_arg)

let client_keygen_cmd =
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Save the returned key file here.")
  in
  let run socket d strategy backend seed deadline_ms out =
    Client.with_connection socket (fun c ->
        match
          Client.request c
            (Wire.Keygen { backend; strategy; dims = d; seed; bound = 256; deadline_ms })
        with
        | Error e -> client_transport_fail e
        | Ok (Wire.Error { code; message }) -> client_fail code message
        | Ok (Wire.Keygen_ok { key_id; cache_hit; key_bytes }) ->
          Printf.printf "key %s (cache %s, %dB)\n" (Wire.hex_of_id key_id)
            (if cache_hit then "hit" else "miss")
            (Bytes.length key_bytes);
          (match out with
           | Some file ->
             write_file file key_bytes;
             Printf.printf "key file: %s\n" file
           | None -> ());
          0
        | Ok _ -> unexpected_response ())
  in
  let doc = "Generate (or fetch cached) keys on the server." in
  Cmd.v (Cmd.info "keygen" ~doc)
    Term.(const run $ socket_arg $ dims_arg $ strategy_arg $ backend_arg $ seed_arg
          $ deadline_arg $ out_arg)

let client_verify_cmd =
  let proof_arg =
    Arg.(value & opt (some string) None
         & info [ "proof" ] ~docv:"FILE" ~doc:"Proof file to verify on the server.")
  in
  let batch_arg =
    Arg.(value & opt_all string []
         & info [ "batch" ] ~docv:"FILE"
             ~doc:"Proof file to include in one server-side $(b,Batch_verify) \
                   request (repeat for each member; all must target the same \
                   key).")
  in
  let verify_one socket proof_file deadline_ms =
    match Wire.decode_proof_file (read_file proof_file) with
    | Error e ->
      Printf.eprintf "zkvc_cli: bad proof file %s: %s\n" proof_file
        (Wire.error_to_string e);
      2
    | Ok pf ->
      Client.with_connection socket (fun c ->
          match
            Client.request c
              (Wire.Verify
                 { key_id = pf.Wire.pf_key_id;
                   public_inputs = pf.Wire.pf_public_inputs;
                   proof = pf.Wire.pf_proof;
                   deadline_ms })
          with
          | Error e -> client_transport_fail e
          | Ok (Wire.Error { code; message }) -> client_fail code message
          | Ok (Wire.Verify_ok ok) ->
            Printf.printf "verified: %b\n" ok;
            if ok then 0 else 1
          | Ok _ -> unexpected_response ())
  in
  let verify_batch socket files deadline_ms =
    let pfs =
      List.map
        (fun file ->
          match Wire.decode_proof_file (read_file file) with
          | Error e ->
            Printf.eprintf "zkvc_cli: bad proof file %s: %s\n" file
              (Wire.error_to_string e);
            None
          | Ok pf -> Some pf)
        files
    in
    if List.exists (( = ) None) pfs then 2
    else begin
      let pfs = List.filter_map Fun.id pfs in
      let key_id = (List.hd pfs).Wire.pf_key_id in
      if List.exists (fun pf -> pf.Wire.pf_key_id <> key_id) pfs then begin
        Printf.eprintf "zkvc_cli: batch members target different keys\n";
        2
      end
      else
        Client.with_connection socket (fun c ->
            match
              Client.request c
                (Wire.Batch_verify
                   { key_id;
                     items =
                       List.map
                         (fun pf -> (pf.Wire.pf_public_inputs, pf.Wire.pf_proof))
                         pfs;
                     deadline_ms })
            with
            | Error e -> client_transport_fail e
            | Ok (Wire.Error { code; message }) -> client_fail code message
            | Ok (Wire.Batch_ok verdicts) ->
              List.iter2
                (fun file ok -> Printf.printf "%s: verified: %b\n" file ok)
                files verdicts;
              if List.for_all Fun.id verdicts then 0 else 1
            | Ok _ -> unexpected_response ())
    end
  in
  let run socket proof_file batch_files deadline_ms =
    match (proof_file, batch_files) with
    | Some pf, [] -> verify_one socket pf deadline_ms
    | None, (_ :: _ as files) -> verify_batch socket files deadline_ms
    | None, [] ->
      Printf.eprintf "zkvc_cli: give --proof or --batch\n";
      2
    | Some _, _ :: _ ->
      Printf.eprintf "zkvc_cli: --proof and --batch are mutually exclusive\n";
      2
  in
  let doc =
    "Verify proof files against the server's key cache: one proof \
     ($(b,--proof)) or a batch in one $(b,Batch_verify) request \
     ($(b,--batch), repeated)."
  in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(const run $ socket_arg $ proof_arg $ batch_arg $ deadline_arg)

let print_status out (s : Wire.status) =
  Printf.fprintf out
    "uptime_s=%.1f requests=%d queue=%d/%d (verify=%d prove=%d) \
     workers=%d/%d cache_hits=%d cache_misses=%d cache_entries=%d timeouts=%d \
     rejections=%d batched=%d\n"
    s.Wire.uptime_s s.Wire.requests s.Wire.queue_depth s.Wire.queue_capacity
    s.Wire.queue_depth_verify s.Wire.queue_depth_prove s.Wire.workers_busy
    s.Wire.workers s.Wire.cache_hits s.Wire.cache_misses s.Wire.cache_entries
    s.Wire.timeouts s.Wire.rejections s.Wire.batched

let client_status_cmd =
  let detail_arg =
    Arg.(value & flag
         & info [ "detail" ]
             ~doc:"Dump the server's flight recorder — one JSON object per \
                   completed request, oldest first — to stdout (counters go \
                   to stderr).")
  in
  let run socket detail =
    Client.with_connection socket (fun c ->
        if detail then
          match Client.request c Wire.Status_detail with
          | Error e -> client_transport_fail e
          | Ok (Wire.Error { code; message }) -> client_fail code message
          | Ok (Wire.Status_detail_ok { status; flight_jsonl; _ }) ->
            print_status stderr status;
            print_string flight_jsonl;
            0
          | Ok _ -> unexpected_response ()
        else
          match Client.request c Wire.Status with
          | Error e -> client_transport_fail e
          | Ok (Wire.Error { code; message }) -> client_fail code message
          | Ok (Wire.Status_ok s) ->
            print_status stdout s;
            0
          | Ok _ -> unexpected_response ())
  in
  Cmd.v (Cmd.info "status" ~doc:"Print the server's status counters.")
    Term.(const run $ socket_arg $ detail_arg)

let client_shutdown_cmd =
  let run socket =
    Client.with_connection socket (fun c ->
        match Client.request c Wire.Shutdown with
        | Error e -> client_transport_fail e
        | Ok (Wire.Error { code; message }) -> client_fail code message
        | Ok Wire.Shutdown_ok ->
          Printf.printf "server stopped\n";
          0
        | Ok _ -> unexpected_response ())
  in
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Drain in-flight jobs and stop the server gracefully.")
    Term.(const run $ socket_arg)

let client_cmd =
  let doc = "Talk to a running $(b,zkvc_cli serve) instance." in
  Cmd.group (Cmd.info "client" ~doc)
    [ client_prove_cmd; client_keygen_cmd; client_verify_cmd; client_status_cmd;
      client_shutdown_cmd ]

(* ---- top ---- *)

let top_cmd =
  let watch_arg =
    Arg.(value & opt (some float) None
         & info [ "watch" ] ~docv:"SECS"
             ~doc:"Refresh every $(docv) seconds until interrupted instead of \
                   printing once.")
  in
  let file_arg =
    Arg.(value & opt (some string) None
         & info [ "file" ] ~docv:"PATH"
             ~doc:"Read a metrics snapshot file (written by $(b,serve \
                   --metrics-file)) instead of querying a live server; the \
                   text is validated against the exposition grammar.")
  in
  let render_file path =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error msg ->
      Printf.eprintf "zkvc_cli: %s\n" msg;
      1
    | text -> (
      match Obs.Expose.parse text with
      | Error msg ->
        Printf.eprintf "zkvc_cli: invalid exposition text: %s\n" msg;
        1
      | Ok samples ->
        List.iter
          (fun { Obs.Expose.metric; labels; value } ->
            let labels =
              match labels with
              | [] -> ""
              | l ->
                "{"
                ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) l)
                ^ "}"
            in
            Printf.printf "%s%s %s\n" metric labels (Obs.Expose.float_str value))
          samples;
        0)
  in
  let render_live socket =
    Client.with_connection socket (fun c ->
        match Client.request c Wire.Status_detail with
        | Error e -> client_transport_fail e
        | Ok (Wire.Error { code; message }) -> client_fail code message
        | Ok (Wire.Status_detail_ok { status; metrics_text; _ }) ->
          print_status stdout status;
          print_string metrics_text;
          0
        | Ok _ -> unexpected_response ())
  in
  let run socket watch file =
    match file with
    | Some path -> render_file path
    | None -> (
      match watch with
      | None -> render_live socket
      | Some period ->
        let period = Float.max 0.05 period in
        let rec loop () =
          (* clear screen + home, like top(1) *)
          print_string "\027[2J\027[H";
          let rc = render_live socket in
          flush stdout;
          if rc <> 0 then rc
          else begin
            Thread.delay period;
            loop ()
          end
        in
        loop ())
  in
  let doc =
    "Render a server's metrics in Prometheus exposition format — from a live \
     server ($(b,--watch) to refresh) or from a $(b,--metrics-file) snapshot."
  in
  Cmd.v (Cmd.info "top" ~doc) Term.(const run $ socket_arg $ watch_arg $ file_arg)

(* ---- adversary ---- *)

let adversary_cmd =
  let module Adv = Zkvc_adversary.Adversary in
  let backend_opt_arg =
    Arg.(value & opt (some backend_conv) None
         & info [ "backend" ] ~docv:"BACKEND"
             ~doc:"Restrict to one backend (default: both).")
  in
  let strategy_opt_arg =
    Arg.(value & opt (some strategy_conv) None
         & info [ "strategy" ] ~docv:"STRATEGY"
             ~doc:"Restrict to one encoding strategy (default: all four).")
  in
  let dims_opt_arg =
    Arg.(value & opt (some dims_conv) None
         & info [ "dims" ] ~docv:"A,N,B"
             ~doc:"Restrict to one dimension scale (default: the harness's \
                   two built-in scales).")
  in
  let only_arg =
    Arg.(value & opt (some string) None
         & info [ "only" ] ~docv:"SUBSTR"
             ~doc:"Run only mutations whose name (family.mutation) contains \
                   this substring — as printed in a failure's repro line.")
  in
  let run seed backend strategy dims only optimize =
    let opt_list v defaults = match v with Some v -> [ v ] | None -> defaults in
    let backends = opt_list backend [ Api.Backend_groth16; Api.Backend_spartan ] in
    let strategies = opt_list strategy Adv.default_strategies in
    let dims = opt_list dims Adv.default_dims in
    let optimize = opt_of_flag optimize in
    Printf.printf "adversary sweep: seed=%d%s\n%!" seed
      (if optimize <> None then " (optimised circuits)" else "");
    let reports, clean = Adv.sweep ?only ?optimize ~backends ~strategies ~dims ~seed () in
    let mutations =
      List.fold_left (fun acc r -> acc + List.length r.Adv.cases) 0 reports
    in
    if clean then begin
      Printf.printf "all clean: %d mutations across %d targets rejected (seed=%d)\n"
        mutations (List.length reports) seed;
      0
    end
    else begin
      let failed =
        List.fold_left (fun acc r -> acc + List.length (Adv.failures r)) 0 reports
      in
      Printf.eprintf "FORGERY: %d of %d mutations accepted or crashed (seed=%d)\n"
        failed mutations seed;
      1
    end
  in
  let doc =
    "Fault-injection sweep: mutate proofs, witnesses, challenges and wire \
     bytes, and fail unless the verifier rejects every one."
  in
  Cmd.v (Cmd.info "adversary" ~doc)
    Term.(const run $ seed_arg $ backend_opt_arg $ strategy_opt_arg $ dims_opt_arg
          $ only_arg $ optimize_arg)

let () =
  (* span timestamps must be wall time everywhere (Sys.time is per-process
     CPU time and sums across prover domains) *)
  Obs.Span.set_clock Unix.gettimeofday;
  let doc = "zkVC: fast zero-knowledge proofs for verifiable matrix multiplication" in
  let info = Cmd.info "zkvc_cli" ~doc ~version:"1.0.0" in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ count_cmd; prove_cmd; model_cmd; profile_cmd; gkr_cmd; keygen_cmd;
            verify_cmd; aggregate_cmd; serve_cmd; client_cmd; top_cmd;
            adversary_cmd ]))
