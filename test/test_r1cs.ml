module B = Zkvc_num.Bigint

module Make_suite (F : Zkvc_field.Field_intf.S) (Name : sig
  val name : string
end) =
struct
  module L = Zkvc_r1cs.Lc.Make (F)
  module Cs = Zkvc_r1cs.Constraint_system.Make (F)
  module Bld = Zkvc_r1cs.Builder.Make (F)
  module G = Zkvc_r1cs.Gadgets.Make (F)

  let st = Random.State.make [| 3; 5; 8 |]
  let check_bool = Alcotest.(check bool)
  let n s = Name.name ^ " " ^ s

  let finalize_checked b =
    let cs, assignment = Bld.finalize b in
    Cs.check_satisfied cs assignment;
    (cs, assignment)

  let test_lc () =
    let lc1 = L.add (L.term (F.of_int 2) 1) (L.term (F.of_int 3) 2) in
    let lc2 = L.add (L.term (F.of_int 5) 2) (L.constant (F.of_int 7)) in
    let sum = L.add lc1 lc2 in
    let assignment = [| F.one; F.of_int 10; F.of_int 100 |] in
    (* 2*10 + 8*100 + 7 = 827 *)
    Alcotest.(check string) "eval" "827" (F.to_string (L.eval sum assignment));
    check_bool "cancellation" true
      (L.is_zero (L.add (L.term (F.of_int 4) 3) (L.term (F.of_int (-4)) 3)));
    Alcotest.(check int) "terms merged" 3 (L.num_terms sum)

  let test_mul_gadget () =
    let b = Bld.create () in
    let x = Bld.alloc_input b (F.of_int 6) in
    let y = Bld.alloc b (F.of_int 7) in
    let z = G.mul b (L.of_var x) (L.of_var y) in
    Alcotest.(check string) "6*7" "42" (F.to_string (Bld.value b z));
    let cs, assignment = finalize_checked b in
    Alcotest.(check int) "one constraint" 1 (Cs.num_constraints cs);
    Alcotest.(check int) "one input" 1 (Cs.num_inputs cs);
    (* tampering breaks satisfaction *)
    let bad = Array.copy assignment in
    bad.(Array.length bad - 1) <- F.of_int 43;
    check_bool "tamper detected" false (Cs.is_satisfied cs bad)

  let test_wire_permutation () =
    (* interleave aux and input allocations; inputs must come first after
       finalize *)
    let b = Bld.create () in
    let a1 = Bld.alloc b (F.of_int 3) in
    let i1 = Bld.alloc_input b (F.of_int 4) in
    let p = G.mul b (L.of_var a1) (L.of_var i1) in
    ignore p;
    let cs, assignment = finalize_checked b in
    Alcotest.(check int) "inputs" 1 (Cs.num_inputs cs);
    (* canonical order: [1; input=4; aux=3; aux=12] *)
    Alcotest.(check string) "slot1 is input" "4" (F.to_string assignment.(1));
    Alcotest.(check string) "slot2 is first aux" "3" (F.to_string assignment.(2))

  let test_boolean () =
    let b = Bld.create () in
    ignore (G.alloc_boolean b true);
    ignore (G.alloc_boolean b false);
    ignore (finalize_checked b);
    (* a non-boolean value must violate the constraint *)
    let b = Bld.create () in
    let v = Bld.alloc b (F.of_int 2) in
    G.assert_boolean b (L.of_var v);
    let cs, assignment = Bld.finalize b in
    check_bool "2 is not boolean" false (Cs.is_satisfied cs assignment)

  let test_bits () =
    let b = Bld.create () in
    let x = Bld.alloc b (F.of_int 0b1011) in
    let bits = G.bits_of b ~width:4 (L.of_var x) in
    Alcotest.(check int) "width" 4 (List.length bits);
    let bitvals = List.map (fun v -> F.to_string (Bld.value b v)) bits in
    Alcotest.(check (list string)) "lsb first" [ "1"; "1"; "0"; "1" ] bitvals;
    ignore (finalize_checked b);
    (* out-of-range witness rejected eagerly *)
    let b = Bld.create () in
    let x = Bld.alloc b (F.of_int 16) in
    check_bool "eager range error" true
      (match G.bits_of b ~width:4 (L.of_var x) with
       | _ -> false
       | exception Invalid_argument _ -> true)

  let test_le () =
    let b = Bld.create () in
    let x = Bld.alloc b (F.of_int 13) and y = Bld.alloc b (F.of_int 200) in
    G.assert_le b ~width:8 (L.of_var x) (L.of_var y);
    ignore (finalize_checked b)

  let test_is_zero () =
    let b = Bld.create () in
    let z = Bld.alloc b F.zero and nz = Bld.alloc b (F.of_int 9) in
    let f1 = G.is_zero b (L.of_var z) in
    let f0 = G.is_zero b (L.of_var nz) in
    Alcotest.(check string) "flag for zero" "1" (F.to_string (Bld.value b f1));
    Alcotest.(check string) "flag for nonzero" "0" (F.to_string (Bld.value b f0));
    ignore (finalize_checked b)

  let test_select () =
    let b = Bld.create () in
    let c1 = G.alloc_boolean b true and c0 = G.alloc_boolean b false in
    let x = L.constant (F.of_int 11) and y = L.constant (F.of_int 22) in
    let r1 = G.select b (L.of_var c1) x y in
    let r0 = G.select b (L.of_var c0) x y in
    Alcotest.(check string) "true branch" "11" (F.to_string (Bld.value b r1));
    Alcotest.(check string) "false branch" "22" (F.to_string (Bld.value b r0));
    ignore (finalize_checked b)

  let test_max () =
    let b = Bld.create () in
    let xs = List.map (fun v -> L.of_var (Bld.alloc b (F.of_int v))) [ 12; 99; 5; 63 ] in
    let m = G.max_of b ~width:8 xs in
    Alcotest.(check string) "max" "99" (F.to_string (Bld.value b m));
    ignore (finalize_checked b)

  let test_div_by_constant () =
    let b = Bld.create () in
    let x = Bld.alloc b (F.of_int 1234) in
    let q, r = G.div_by_constant b ~q_width:12 (L.of_var x) (B.of_int 100) in
    Alcotest.(check string) "q" "12" (F.to_string (Bld.value b q));
    Alcotest.(check string) "r" "34" (F.to_string (Bld.value b r));
    ignore (finalize_checked b)

  let test_div_rem () =
    let b = Bld.create () in
    let x = Bld.alloc b (F.of_int 1000) and y = Bld.alloc b (F.of_int 30) in
    let q, r = G.div_rem b ~q_width:10 ~r_width:8 (L.of_var x) (L.of_var y) in
    Alcotest.(check string) "q" "33" (F.to_string (Bld.value b q));
    Alcotest.(check string) "r" "10" (F.to_string (Bld.value b r));
    ignore (finalize_checked b)

  let test_product () =
    let b = Bld.create () in
    let xs = List.map (fun v -> L.of_var (Bld.alloc b (F.of_int v))) [ 2; 3; 4; 5 ] in
    let p = G.product b xs in
    Alcotest.(check string) "product" "120" (F.to_string (Bld.eval b p));
    ignore (finalize_checked b)

  let prop_random_linear_circuits =
    QCheck.Test.make ~name:(n "random circuits satisfied") ~count:50
      (QCheck.list_of_size (QCheck.Gen.int_range 1 20) (QCheck.int_range (-100) 100))
      (fun xs ->
        let b = Bld.create () in
        let vars = List.map (fun v -> Bld.alloc b (F.of_int v)) xs in
        (* chain of products and sums *)
        let acc =
          List.fold_left
            (fun acc v -> L.of_var (G.mul b acc (L.add (L.of_var v) (L.constant F.one))))
            (L.constant F.one) vars
        in
        ignore (G.is_zero b acc);
        let cs, assignment = Bld.finalize b in
        Cs.is_satisfied cs assignment)

  (* Regression: [of_terms] must canonicalise at construction — merge
     duplicate wires, drop zero coefficients, sort by wire — like the
     [add]-built equivalent. The original implementation trusted its
     input, so a duplicated wire fed to [map_vars] double-counted. *)
  let prop_of_terms_canonical =
    QCheck.Test.make ~name:(n "of_terms canonicalises") ~count:200
      (QCheck.list_of_size (QCheck.Gen.int_range 0 12)
         (QCheck.pair (QCheck.int_range 0 5) (QCheck.int_range (-3) 3)))
      (fun raw ->
        let terms = List.map (fun (v, c) -> (v, F.of_int c)) raw in
        let lc = L.of_terms terms in
        let naive =
          List.fold_left (fun acc (v, c) -> L.add acc (L.term c v)) L.zero terms
        in
        let assign = Array.init 8 (fun i -> F.of_int (i + 2)) in
        let at l = F.to_string (L.eval l assign) in
        (* same value as the add-built canonical form, and same shape *)
        at lc = at naive
        && L.num_terms lc = L.num_terms naive
        && (let ws = List.map fst (L.terms lc) in
            ws = List.sort_uniq compare ws)
        && List.for_all (fun (_, c) -> not (F.equal c F.zero)) (L.terms lc)
        (* collapsing every wire onto one must merge, never duplicate *)
        && (let collapsed = L.map_vars (fun _ -> 1) lc in
            L.num_terms collapsed <= 1
            && at collapsed = F.to_string (L.eval lc (Array.make 8 assign.(1)))))

  let test_stats () =
    let b = Bld.create () in
    let x = Bld.alloc b (F.of_int 2) in
    ignore (G.mul b (L.of_var x) (L.of_var x));
    let cs, _ = Bld.finalize b in
    let s = Cs.stats cs in
    Alcotest.(check int) "constraints" 1 s.Cs.constraints;
    Alcotest.(check int) "nnz(A)" 1 s.Cs.nonzero_a;
    Alcotest.(check int) "variables" 3 s.Cs.variables

  let suite =
    ( Name.name,
      [ Alcotest.test_case (n "lc") `Quick test_lc;
        Alcotest.test_case (n "mul gadget") `Quick test_mul_gadget;
        Alcotest.test_case (n "wire permutation") `Quick test_wire_permutation;
        Alcotest.test_case (n "boolean") `Quick test_boolean;
        Alcotest.test_case (n "bits") `Quick test_bits;
        Alcotest.test_case (n "le") `Quick test_le;
        Alcotest.test_case (n "is_zero") `Quick test_is_zero;
        Alcotest.test_case (n "select") `Quick test_select;
        Alcotest.test_case (n "max") `Quick test_max;
        Alcotest.test_case (n "div by constant") `Quick test_div_by_constant;
        Alcotest.test_case (n "div rem") `Quick test_div_rem;
        Alcotest.test_case (n "product") `Quick test_product;
        Alcotest.test_case (n "stats") `Quick test_stats;
        QCheck_alcotest.to_alcotest prop_of_terms_canonical;
        QCheck_alcotest.to_alcotest prop_random_linear_circuits ] )

  let _ = st
end

module Small = Make_suite (Zkvc_field.Fsmall) (struct let name = "fsmall" end)
module Big = Make_suite (Zkvc_field.Fr) (struct let name = "fr" end)

let () = Alcotest.run "zkvc_r1cs" [ Small.suite; Big.suite ]
