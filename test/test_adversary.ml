(* Adversarial soundness tests: the rejection-side complement of the
   honest-path suites. Drives the Zkvc_adversary fault-injection harness
   over both backends at two dimension scales, qcheck-randomises the
   mutation seeds, exercises wire attacks end-to-end through a live
   proof service, and pins the two bugfixes that shipped with the
   harness (transcript challenge-label ambiguity, serve deadlines on a
   non-monotonic clock). *)

module Fr = Zkvc_field.Fr
module Bigint = Zkvc_num.Bigint
module T = Zkvc_transcript.Transcript
module Ch = T.Challenge (Fr)
module Api = Zkvc.Api
module Mc = Zkvc.Matmul_circuit
module Mspec = Zkvc.Matmul_spec
module Spec = Mspec.Make (Fr)
module Adv = Zkvc_adversary.Adversary
module Spartan = Zkvc_spartan.Spartan
module Wire = Zkvc_serve.Wire
module Server = Zkvc_serve.Server
module Client = Zkvc_serve.Client
module Span = Zkvc_obs.Span

let check_bool = Alcotest.(check bool)

let qtest ?(count = 5) name prop gen =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name prop gen)

let tiny = Mspec.dims ~a:2 ~n:2 ~b:2

(* ------------------------------------------------------------------ *)
(* Regression: challenge-label ambiguity in the transcript            *)
(* ------------------------------------------------------------------ *)

(* The old scheme concatenated label and index ("r" ^ "11" = "r1" ^ "1")
   and tagged the wide challenge's hi half by appending to the label, so
   distinct derivations could absorb identical byte strings. The fix
   absorbs each component length-prefixed; these four spellings of the
   same concatenated bytes must now all land on distinct challenges. *)
let transcript_tests =
  let fresh () = T.create ~label:"collide" in
  [ Alcotest.test_case "(r,11) / (r1,1) / r11 are distinct" `Quick (fun () ->
        let c_r_11 = List.nth (Ch.challenges (fresh ()) ~label:"r" 12) 11 in
        let c_r1_1 = List.nth (Ch.challenges (fresh ()) ~label:"r1" 2) 1 in
        let c_r11 = Ch.challenge (fresh ()) ~label:"r11" in
        check_bool "(r,11) <> (r1,1)" false (Fr.equal c_r_11 c_r1_1);
        check_bool "(r,11) <> r11" false (Fr.equal c_r_11 c_r11);
        check_bool "(r1,1) <> r11" false (Fr.equal c_r1_1 c_r11));
    Alcotest.test_case "user '/hi' label cannot replay the wide challenge" `Quick
      (fun () ->
        (* a wide challenge draws two 32-byte blocks; a user spelling the
           hi half's old internal label must not reproduce it *)
        let c_wide = Ch.challenge (fresh ()) ~label:"x" in
        let forge hi_label =
          let t = fresh () in
          let b1 = T.challenge_bytes t ~label:"x" in
          let b2 = T.challenge_bytes t ~label:hi_label in
          Fr.of_bigint (Bigint.of_bytes_be (Bytes.cat b1 b2))
        in
        check_bool "label x/hi" false (Fr.equal c_wide (forge "x/hi"));
        check_bool "label xhi" false (Fr.equal c_wide (forge "xhi")));
    Alcotest.test_case "prover/verifier replay still agrees" `Quick (fun () ->
        let t1 = fresh () in
        Ch.absorb t1 ~label:"v" (Fr.of_int 7);
        let t2 = T.clone t1 in
        let c1 = Ch.challenges t1 ~label:"r" 3 in
        let c2 = Ch.challenges t2 ~label:"r" 3 in
        check_bool "replay equal" true (List.for_all2 Fr.equal c1 c2)) ]

(* ------------------------------------------------------------------ *)
(* Regression: serve deadlines/uptime on an injectable clock          *)
(* ------------------------------------------------------------------ *)

let temp_socket name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "zkvc-adv-%s-%d.sock" name (Unix.getpid ()))

let with_server cfg f =
  let t = Server.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown t;
      Server.wait t;
      (* Server.start installed cfg.clock globally; restore the default *)
      Span.set_clock Sys.time)
    (fun () -> f t)

let clock_tests =
  [ Alcotest.test_case "uptime follows the injected clock" `Quick (fun () ->
        let now = ref 1000. in
        let cfg =
          { (Server.default_config ~socket_path:(temp_socket "uptime")) with
            Server.clock = Some (fun () -> !now) }
        in
        with_server cfg (fun srv ->
            now := 1042.;
            let st = Server.status srv in
            check_bool "uptime tracks simulated clock" true
              (st.Wire.uptime_s > 41.9 && st.Wire.uptime_s < 42.1)));
    Alcotest.test_case "deadline fires on a simulated clock step" `Slow (fun () ->
        (* an NTP-style forward step used to expire every queued job when
           deadlines read Unix.gettimeofday; with the span clock routed
           through config this is now an explicit, testable behaviour *)
        let now = ref 5000. in
        let socket = temp_socket "deadline" in
        let cfg =
          { (Server.default_config ~socket_path:socket) with
            Server.clock = Some (fun () -> !now);
            job_delay_s = 1.0 }
        in
        with_server cfg (fun _ ->
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX socket);
            Fun.protect
              ~finally:(fun () -> Unix.close fd)
              (fun () ->
                Wire.write_frame fd
                  (Wire.Request
                     ( None,
                       Wire.Prove
                         { backend = Api.Backend_spartan;
                           strategy = Mc.Vanilla;
                           dims = tiny;
                           input = Wire.Seeded { seed = 1; bound = 16 };
                           deadline_ms = 1000 } ));
                (* Give the reader thread real time to stamp the job's
                   arrival at [!now] (stepping first would push the
                   deadline past the step too), then jump the clock 10
                   simulated seconds past the 1 s deadline while the
                   worker is still inside job_delay_s. *)
                Thread.delay 0.25;
                now := !now +. 10.;
                match Wire.read_frame fd with
                | Ok (Wire.Response (_, Wire.Error { code = Wire.Deadline_exceeded; _ }))
                  ->
                  ()
                | Ok f ->
                  Alcotest.failf "expected Deadline_exceeded, got %s"
                    (match f with
                     | Wire.Response (_, Wire.Prove_ok _) -> "Prove_ok"
                     | _ -> "another frame")
                | Error e -> Alcotest.failf "transport: %s" (Wire.error_to_string e))));
    Alcotest.test_case "steady simulated clock does not expire deadlines" `Slow
      (fun () ->
        let now = ref 9000. in
        let socket = temp_socket "steady" in
        let cfg =
          { (Server.default_config ~socket_path:socket) with
            Server.clock = Some (fun () -> !now) }
        in
        with_server cfg (fun _ ->
            Client.with_connection socket (fun c ->
                match
                  Client.request_exn c
                    (Wire.Prove
                       { backend = Api.Backend_spartan;
                         strategy = Mc.Vanilla;
                         dims = tiny;
                         input = Wire.Seeded { seed = 1; bound = 16 };
                         deadline_ms = 60_000 })
                with
                | Wire.Prove_ok _ -> ()
                | _ -> Alcotest.fail "expected Prove_ok"))) ]

(* ------------------------------------------------------------------ *)
(* Api.run reports rejection as data                                  *)
(* ------------------------------------------------------------------ *)

let api_tests =
  [ Alcotest.test_case "honest run has verified = true" `Quick (fun () ->
        let rng = Random.State.make [| 11 |] in
        let x = Spec.random_matrix rng ~rows:2 ~cols:2 ~bound:64 in
        let w = Spec.random_matrix rng ~rows:2 ~cols:2 ~bound:64 in
        let _proof, m = Api.run ~rng Api.Backend_spartan Mc.Crpc_psq ~x ~w tiny in
        check_bool "verified" true m.Api.verified);
    Alcotest.test_case "corrupt witness yields verified = false, no raise" `Quick
      (fun () ->
        let rng = Random.State.make [| 12 |] in
        let x = Spec.random_matrix rng ~rows:2 ~cols:2 ~bound:64 in
        let w = Spec.random_matrix rng ~rows:2 ~cols:2 ~bound:64 in
        let prep = Api.prepare Mc.Vanilla ~x ~w tiny in
        let keys = Api.keygen ~rng Api.Backend_spartan prep.Api.cs in
        let bad = Array.copy prep.Api.assignment in
        bad.(1) <- Fr.add bad.(1) Fr.one;
        let proof = Api.prove_with ~rng keys bad in
        let publics =
          Array.to_list (Array.sub prep.Api.assignment 1 (Api.Cs.num_inputs prep.Api.cs))
        in
        check_bool "rejected" false (Api.verify_with keys ~public_inputs:publics proof)) ]

(* ------------------------------------------------------------------ *)
(* Harness sweeps: every mutation class rejected, both backends, two  *)
(* dimension scales                                                   *)
(* ------------------------------------------------------------------ *)

let clean_or_fail t =
  let r = Adv.run_target t in
  check_bool "honest proof verified" true r.Adv.honest_verified;
  List.iter
    (fun c -> Alcotest.failf "forgery: %s — %s" (Adv.case_name c) (Adv.repro_hint t c))
    (Adv.failures r)

let adversary_tests =
  [ Alcotest.test_case "spartan: all strategies x both scales reject everything"
      `Slow (fun () ->
        List.iter
          (fun strategy ->
            List.iter
              (fun dims ->
                clean_or_fail
                  { Adv.backend = Api.Backend_spartan; strategy; dims; seed = 42 })
              Adv.default_dims)
          Mc.all_strategies);
    Alcotest.test_case "groth16: full mutation set rejected (crpc+psq)" `Slow
      (fun () ->
        clean_or_fail
          { Adv.backend = Api.Backend_groth16;
            strategy = Mc.Crpc_psq;
            dims = tiny;
            seed = 42 });
    Alcotest.test_case "groth16: full mutation set at the second scale" `Slow
      (fun () ->
        (* vanilla runs every family incl. the cross-statement splices
           (challenge-bearing strategies skip those); the crpc challenge
           family at this scale is covered by a filtered crpc+psq run *)
        clean_or_fail
          { Adv.backend = Api.Backend_groth16;
            strategy = Mc.Vanilla;
            dims = Mspec.dims ~a:3 ~n:3 ~b:2;
            seed = 43 };
        let r =
          Adv.run_target ~only:"crpc."
            { Adv.backend = Api.Backend_groth16;
              strategy = Mc.Crpc_psq;
              dims = Mspec.dims ~a:3 ~n:3 ~b:2;
              seed = 43 }
        in
        check_bool "honest proof verified" true r.Adv.honest_verified;
        check_bool "has both crpc challenge cases" true (List.length r.Adv.cases >= 2);
        List.iter
          (fun c -> Alcotest.failf "forgery: %s" (Adv.case_name c))
          (Adv.failures r));
    Alcotest.test_case "optimised circuits reject the full mutation set" `Slow
      (fun () ->
        (* the whole sweep against optimiser-transformed systems: a pass
           that widened the acceptance set would let a mutation through *)
        List.iter
          (fun (backend, strategy) ->
            let r =
              Adv.run_target ~optimize:Api.Opt.default
                { Adv.backend; strategy; dims = tiny; seed = 42 }
            in
            check_bool "honest optimised proof verified" true r.Adv.honest_verified;
            List.iter
              (fun c ->
                Alcotest.failf "forgery on optimised circuit: %s — %s"
                  (Adv.case_name c)
                  (Adv.repro_hint ~optimize:Api.Opt.default
                     { Adv.backend; strategy; dims = tiny; seed = 42 }
                     c))
              (Adv.failures r))
          [ (Api.Backend_spartan, Mc.Crpc_psq);
            (Api.Backend_spartan, Mc.Vanilla);
            (Api.Backend_groth16, Mc.Crpc_psq) ]);
    Alcotest.test_case "same seed reproduces the same verdicts" `Quick (fun () ->
        let t =
          { Adv.backend = Api.Backend_spartan;
            strategy = Mc.Crpc;
            dims = tiny;
            seed = 7 }
        in
        let names r = List.map Adv.case_name r.Adv.cases in
        let r1 = Adv.run_target t and r2 = Adv.run_target t in
        check_bool "same case list" true (names r1 = names r2);
        check_bool "same verdicts" true
          (List.for_all2
             (fun a b -> Adv.outcome_is_sound a.Adv.outcome = Adv.outcome_is_sound b.Adv.outcome)
             r1.Adv.cases r2.Adv.cases));
    Alcotest.test_case "repro hint carries the full target" `Quick (fun () ->
        let t =
          { Adv.backend = Api.Backend_spartan;
            strategy = Mc.Crpc_psq;
            dims = Mspec.dims ~a:3 ~n:2 ~b:2;
            seed = 99 }
        in
        let c =
          { Adv.family = "witness"; mutation = "y[0,0]+1"; outcome = Adv.Accepted;
            detail = "" }
        in
        let hint = Adv.repro_hint t c in
        let contains needle =
          let n = String.length needle and m = String.length hint in
          let rec go i = i + n <= m && (String.sub hint i n = needle || go (i + 1)) in
          go 0
        in
        List.iter
          (fun needle ->
            check_bool (Printf.sprintf "hint has %S" needle) true (contains needle))
          [ "--seed 99"; "spartan"; "crpc+psq"; "3,2,2"; "witness.y[0,0]+1" ]) ]

(* ------------------------------------------------------------------ *)
(* qcheck: random mutation seeds                                      *)
(* ------------------------------------------------------------------ *)

let gen_small_dims =
  QCheck.Gen.oneofl
    [ Mspec.dims ~a:2 ~n:2 ~b:2;
      Mspec.dims ~a:3 ~n:2 ~b:2;
      Mspec.dims ~a:2 ~n:3 ~b:2;
      Mspec.dims ~a:2 ~n:2 ~b:3 ]

let gen_strategy3 = QCheck.Gen.oneofl [ Mc.Vanilla; Mc.Crpc; Mc.Crpc_psq ]

let gen_seed = QCheck.Gen.int_bound 100_000

let qcheck_tests =
  [ qtest ~count:6 "spartan: random seeds, all mutations rejected"
      QCheck.(make Gen.(triple gen_seed gen_strategy3 gen_small_dims))
      (fun (seed, strategy, dims) ->
        Adv.is_clean
          (Adv.run_target { Adv.backend = Api.Backend_spartan; strategy; dims; seed }));
    qtest ~count:2 "groth16: random seeds, point/splice mutations rejected"
      QCheck.(make Gen.(triple gen_seed gen_strategy3 gen_small_dims))
      (fun (seed, strategy, dims) ->
        let r =
          Adv.run_target ~only:"groth16."
            { Adv.backend = Api.Backend_groth16; strategy; dims; seed }
        in
        r.Adv.honest_verified && Adv.failures r = []) ]

(* ------------------------------------------------------------------ *)
(* Wire attacks end-to-end through a live server                      *)
(* ------------------------------------------------------------------ *)

let e2e_tests =
  [ Alcotest.test_case "mutated proof over the socket answers false, never true"
      `Slow (fun () ->
        let socket = temp_socket "e2e" in
        let cfg = Server.default_config ~socket_path:socket in
        with_server cfg (fun _ ->
            Client.with_connection socket (fun c ->
                match
                  Client.request_exn c
                    (Wire.Prove
                       { backend = Api.Backend_spartan;
                         strategy = Mc.Crpc_psq;
                         dims = tiny;
                         input = Wire.Seeded { seed = 5; bound = 64 };
                         deadline_ms = 0 })
                with
                | Wire.Prove_ok { key_id; public_inputs; proof; _ } ->
                  let verify proof =
                    match
                      Client.request_exn c
                        (Wire.Verify { key_id; public_inputs; proof; deadline_ms = 0 })
                    with
                    | Wire.Verify_ok ok -> ok
                    | _ -> Alcotest.fail "expected Verify_ok"
                  in
                  check_bool "honest proof accepted" true (verify proof);
                  let sp = match proof with
                    | Api.Spartan_proof p -> p
                    | Api.Groth16_proof _ -> Alcotest.fail "expected spartan proof"
                  in
                  List.iteri
                    (fun i site ->
                      if i < 4 then
                        check_bool
                          (Printf.sprintf "server rejects %s"
                             (Spartan.Mutate.site_name site))
                          false
                          (verify (Api.Spartan_proof (Spartan.Mutate.apply site sp))))
                    (Spartan.Mutate.sites sp);
                  (* a bit flip inside the proof bytes of the raw frame:
                     the server must answer a typed error or false *)
                  let frame =
                    Wire.encode_frame
                      (Wire.Request
                         (None, Wire.Verify { key_id; public_inputs; proof; deadline_ms = 0 }))
                  in
                  let flipped = Bytes.copy frame in
                  let pos = Bytes.length flipped - 9 in
                  Bytes.set flipped pos
                    (Char.chr (Char.code (Bytes.get flipped pos) lxor 0x10));
                  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
                  Unix.connect fd (Unix.ADDR_UNIX socket);
                  Fun.protect
                    ~finally:(fun () -> Unix.close fd)
                    (fun () ->
                      let n = Unix.write fd flipped 0 (Bytes.length flipped) in
                      check_bool "frame written" true (n = Bytes.length flipped);
                      match Wire.read_frame fd with
                      | Ok (Wire.Response (_, Wire.Verify_ok ok)) ->
                        check_bool "flipped frame never verifies true" false ok
                      | Ok (Wire.Response (_, Wire.Error _)) -> ()
                      | Ok _ -> Alcotest.fail "unexpected response frame"
                      | Error e ->
                        Alcotest.failf "transport: %s" (Wire.error_to_string e))
                | _ -> Alcotest.fail "expected Prove_ok"))) ]

let () =
  Alcotest.run "zkvc_adversary"
    [ ("transcript-regression", transcript_tests);
      ("serve-clock-regression", clock_tests);
      ("api-verified", api_tests);
      ("harness", adversary_tests);
      ("qcheck-seeds", qcheck_tests);
      ("serve-e2e", e2e_tests) ]
