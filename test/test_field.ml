module B = Zkvc_num.Bigint

(* Generic field law suite, instantiated for Fr, Fq and Fsmall. *)
module Make_suite (F : Zkvc_field.Field_intf.S) (Name : sig
  val name : string
end) =
struct
  let st = Random.State.make [| 7; 11; 13 |]

  let arb =
    let gen _ = F.random st in
    QCheck.make ~print:F.to_string (gen)

  let t name f = QCheck.Test.make ~name:(Name.name ^ ": " ^ name) ~count:200 arb f
  let t2 name f = QCheck.Test.make ~name:(Name.name ^ ": " ^ name) ~count:200 (QCheck.pair arb arb) f
  let t3 name f = QCheck.Test.make ~name:(Name.name ^ ": " ^ name) ~count:200 (QCheck.triple arb arb arb) f

  let props =
    [ t2 "add commutative" (fun (x, y) -> F.equal (F.add x y) (F.add y x));
      t3 "add associative" (fun (x, y, z) -> F.equal (F.add (F.add x y) z) (F.add x (F.add y z)));
      t "add zero" (fun x -> F.equal (F.add x F.zero) x);
      t "sub self" (fun x -> F.is_zero (F.sub x x));
      t "neg" (fun x -> F.is_zero (F.add x (F.neg x)));
      t2 "mul commutative" (fun (x, y) -> F.equal (F.mul x y) (F.mul y x));
      t3 "mul associative" (fun (x, y, z) -> F.equal (F.mul (F.mul x y) z) (F.mul x (F.mul y z)));
      t "mul one" (fun x -> F.equal (F.mul x F.one) x);
      t3 "distributivity" (fun (x, y, z) ->
          F.equal (F.mul x (F.add y z)) (F.add (F.mul x y) (F.mul x z)));
      t "sqr = mul self" (fun x -> F.equal (F.sqr x) (F.mul x x));
      t "double = add self" (fun x -> F.equal (F.double x) (F.add x x));
      t "inverse" (fun x -> F.is_zero x || F.is_one (F.mul x (F.inv x)));
      t2 "div" (fun (x, y) -> F.is_zero y || F.equal (F.mul (F.div x y) y) x);
      t "bigint roundtrip" (fun x -> F.equal x (F.of_bigint (F.to_bigint x)));
      t "string roundtrip" (fun x -> F.equal x (F.of_string (F.to_string x)));
      t "bytes roundtrip" (fun x -> F.equal x (F.of_bytes_exn (F.to_bytes x)));
      t "canonical range" (fun x ->
          let n = F.to_bigint x in
          B.ge n B.zero && B.lt n F.modulus);
      t "fermat little" (fun x ->
          F.is_zero x || F.is_one (F.pow x (B.sub F.modulus B.one)));
      t "pow matches repeated mul" (fun x ->
          let rec naive acc i = if i = 0 then acc else naive (F.mul acc x) (i - 1) in
          F.equal (F.pow_int x 13) (naive F.one 13));
      t2 "mul matches bigint" (fun (x, y) ->
          B.equal
            (F.to_bigint (F.mul x y))
            (B.erem (B.mul (F.to_bigint x) (F.to_bigint y)) F.modulus));
      t2 "add matches bigint" (fun (x, y) ->
          B.equal
            (F.to_bigint (F.add x y))
            (B.erem (B.add (F.to_bigint x) (F.to_bigint y)) F.modulus)) ]

  module Sqrt = Zkvc_field.Sqrt.Make (F)

  let sqrt_props =
    [ t "sqrt of square" (fun x ->
          let sq = F.sqr x in
          match Sqrt.sqrt sq with
          | None -> false
          | Some r -> F.equal (F.sqr r) sq);
      t "is_square consistent" (fun x ->
          Sqrt.is_square (F.sqr x)
          && (match Sqrt.sqrt x with
              | Some r -> Sqrt.is_square x && F.equal (F.sqr r) x
              | None -> not (Sqrt.is_square x))) ]

  let unit_tests =
    [ Alcotest.test_case "constants" `Quick (fun () ->
          Alcotest.(check bool) "zero" true (F.is_zero F.zero);
          Alcotest.(check bool) "one" true (F.is_one F.one);
          Alcotest.(check bool) "one <> zero" false (F.equal F.one F.zero);
          Alcotest.(check string) "of_int 5" "5" (F.to_string (F.of_int 5));
          Alcotest.(check string) "of_int -1"
            (B.to_string (B.sub F.modulus B.one))
            (F.to_string (F.of_int (-1))));
      Alcotest.test_case "two-adic root order" `Quick (fun () ->
          let s = F.two_adicity in
          Alcotest.(check bool) "adicity >= 1" true (s >= 1);
          let w = F.two_adic_root in
          let pow2 k = F.pow w (B.shift_left B.one k) in
          Alcotest.(check bool) "w^(2^s) = 1" true (F.is_one (pow2 s));
          Alcotest.(check bool) "w^(2^(s-1)) <> 1" true (not (F.is_one (pow2 (s - 1)))));
      Alcotest.test_case "inv zero raises" `Quick (fun () ->
          Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (F.inv F.zero))) ]

  let suite =
    (Name.name, unit_tests @ List.map QCheck_alcotest.to_alcotest (props @ sqrt_props))
end

module Fr_suite = Make_suite (Zkvc_field.Fr) (struct let name = "Fr" end)
module Fq_suite = Make_suite (Zkvc_field.Fq) (struct let name = "Fq" end)
module Fsmall_suite = Make_suite (Zkvc_field.Fsmall) (struct let name = "Fsmall" end)

module Fr = Zkvc_field.Fr
module Fr_batch = Zkvc_field.Batch.Make (Fr)

let batch_tests =
  let st = Random.State.make [| 3; 1; 4 |] in
  (* (length, zero mask) — masks include all-zero and no-zero extremes *)
  let arb =
    QCheck.make
      ~print:(fun (n, mask) ->
        Printf.sprintf "n=%d mask=%s" n
          (String.concat "" (List.map (fun b -> if b then "0" else "x") mask)))
      QCheck.Gen.(
        1 -- 40 >>= fun n ->
        list_repeat n (frequency [ (3, return false); (1, return true) ]) >>= fun mask ->
        return (n, mask))
  in
  let qcheck_zeros =
    QCheck.Test.make ~name:"invert_all skips zeros, inverts the rest" ~count:300 arb
      (fun (n, mask) ->
        let mask = Array.of_list mask in
        let a =
          Array.init n (fun i ->
              if mask.(i) then Fr.zero
              else
                let rec nz () =
                  let x = Fr.random st in
                  if Fr.is_zero x then nz () else x
                in
                nz ())
        in
        let orig = Array.copy a in
        Fr_batch.invert_all a;
        Array.for_all2
          (fun x y ->
            if Fr.is_zero x then Fr.is_zero y else Fr.is_one (Fr.mul x y))
          orig a)
  in
  [ Alcotest.test_case "invert_all: all zeros is a no-op" `Quick (fun () ->
        let a = Array.make 5 Fr.zero in
        Fr_batch.invert_all a;
        Alcotest.(check bool) "all zero" true (Array.for_all Fr.is_zero a));
    Alcotest.test_case "invert_all: zero in first and last slot" `Quick (fun () ->
        let x = Fr.of_int 7 in
        let a = [| Fr.zero; x; Fr.zero |] in
        Fr_batch.invert_all a;
        Alcotest.(check bool) "a.(0)" true (Fr.is_zero a.(0));
        Alcotest.(check bool) "a.(1)" true (Fr.is_one (Fr.mul a.(1) x));
        Alcotest.(check bool) "a.(2)" true (Fr.is_zero a.(2)));
    Alcotest.test_case "invert_all: empty array" `Quick (fun () ->
        let a = [||] in
        Fr_batch.invert_all a;
        Alcotest.(check int) "len" 0 (Array.length a));
    QCheck_alcotest.to_alcotest qcheck_zeros ]

let known_value_tests =
  [ Alcotest.test_case "Fr modulus bits" `Quick (fun () ->
        Alcotest.(check int) "254" 254 (B.num_bits Zkvc_field.Fr.modulus);
        Alcotest.(check int) "bytes" 32 Zkvc_field.Fr.size_in_bytes);
    Alcotest.test_case "Fq modulus bits" `Quick (fun () ->
        Alcotest.(check int) "254" 254 (B.num_bits Zkvc_field.Fq.modulus));
    Alcotest.test_case "Fr two-adicity is 28" `Quick (fun () ->
        Alcotest.(check int) "28" 28 Zkvc_field.Fr.two_adicity);
    Alcotest.test_case "Fsmall two-adicity is 27" `Quick (fun () ->
        Alcotest.(check int) "27" 27 Zkvc_field.Fsmall.two_adicity);
    Alcotest.test_case "Fr known product" `Quick (fun () ->
        (* (r-1) * (r-1) mod r = 1 *)
        let m1 = Zkvc_field.Fr.of_int (-1) in
        Alcotest.(check bool) "(-1)^2 = 1" true Zkvc_field.Fr.(is_one (mul m1 m1)));
    Alcotest.test_case "cross-check Fr mul vs bigint on fixed values" `Quick (fun () ->
        let x = Zkvc_field.Fr.of_string "123456789123456789123456789123456789" in
        let y = Zkvc_field.Fr.of_string "987654321987654321987654321987654321" in
        let expect =
          B.erem
            (B.mul (B.of_string "123456789123456789123456789123456789")
               (B.of_string "987654321987654321987654321987654321"))
            Zkvc_field.Fr.modulus
        in
        Alcotest.(check string) "product" (B.to_string expect)
          Zkvc_field.Fr.(to_string (mul x y))) ]

let () =
  Alcotest.run "zkvc_field"
    [ Fr_suite.suite;
      Fq_suite.suite;
      Fsmall_suite.suite;
      ("known-values", known_value_tests);
      ("batch-inversion", batch_tests) ]
