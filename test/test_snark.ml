(* End-to-end QAP + Groth16 tests: completeness, soundness against
   tampering, and the QAP divisibility identity. *)

module Fr = Zkvc_field.Fr
module G1 = Zkvc_curve.G1
module G2 = Zkvc_curve.G2
module Groth16 = Zkvc_groth16.Groth16
module Qap = Groth16.Qap
module L = Zkvc_r1cs.Lc.Make (Fr)
module Bld = Zkvc_r1cs.Builder.Make (Fr)
module G = Zkvc_r1cs.Gadgets.Make (Fr)

let st = Random.State.make [| 31337 |]
let check_bool = Alcotest.(check bool)

(* knowledge of x with x^3 + x + 5 = out (the classic example circuit) *)
let cubic_circuit x =
  let b = Bld.create () in
  let xv = Bld.alloc b (Fr.of_int x) in
  let x2 = G.mul b (L.of_var xv) (L.of_var xv) in
  let x3 = G.mul b (L.of_var x2) (L.of_var xv) in
  let out_val = Fr.add (Fr.add (Bld.value b x3) (Fr.of_int x)) (Fr.of_int 5) in
  let out = Bld.alloc_input b out_val in
  G.assert_equal b (L.of_var out)
    (L.add (L.add (L.of_var x3) (L.of_var xv)) (L.constant (Fr.of_int 5)));
  (b, out_val)

(* ---------------- QAP-level tests over the small field ---------------- *)

module Sq = Zkvc_qap.Qap.Make (Zkvc_field.Fsmall)
module Sbld = Zkvc_r1cs.Builder.Make (Zkvc_field.Fsmall)
module Sg = Zkvc_r1cs.Gadgets.Make (Zkvc_field.Fsmall)
module Sl = Zkvc_r1cs.Lc.Make (Zkvc_field.Fsmall)
module Scs = Zkvc_r1cs.Constraint_system.Make (Zkvc_field.Fsmall)

let small_circuit () =
  let module F = Zkvc_field.Fsmall in
  let b = Sbld.create () in
  let xs = Array.init 10 (fun i -> Sbld.alloc b (F.of_int (i + 2))) in
  let acc = ref (Sl.of_var xs.(0)) in
  for i = 1 to 9 do
    acc := Sl.of_var (Sg.mul b !acc (Sl.of_var xs.(i)))
  done;
  let out = Sbld.alloc_input b (Sbld.eval b !acc) in
  Sg.assert_equal b (Sl.of_var out) !acc;
  Sbld.finalize b

let qap_tests =
  let module F = Zkvc_field.Fsmall in
  [ Alcotest.test_case "divisibility identity" `Quick (fun () ->
        let cs, assignment = small_circuit () in
        Scs.check_satisfied cs assignment;
        let qap = Sq.create cs in
        for _ = 1 to 5 do
          let tau = F.random st in
          check_bool "A·B - C = h·Z at random tau" true
            (Sq.divisibility_holds qap assignment tau)
        done);
    Alcotest.test_case "divisibility fails on bad witness" `Quick (fun () ->
        let cs, assignment = small_circuit () in
        let qap = Sq.create cs in
        let bad = Array.copy assignment in
        bad.(3) <- F.add bad.(3) F.one;
        (* With an unsatisfying witness, (AB - C) is not divisible by Z, so
           the identity at a random point fails with overwhelming
           probability. *)
        let ok = ref 0 in
        for _ = 1 to 5 do
          if Sq.divisibility_holds qap bad (F.random st) then incr ok
        done;
        Alcotest.(check int) "no lucky points" 0 !ok);
    Alcotest.test_case "domain sized to constraints" `Quick (fun () ->
        let cs, _ = small_circuit () in
        let qap = Sq.create cs in
        check_bool "pow2" true
          (let n = Sq.domain_size qap in
           n land (n - 1) = 0 && n >= Scs.num_constraints cs)) ]

(* ---------------- Groth16 end-to-end ---------------- *)

let groth16_tests =
  [ Alcotest.test_case "complete (prove/verify roundtrip)" `Slow (fun () ->
        let b, out = cubic_circuit 3 in
        let cs, assignment = Bld.finalize b in
        let qap = Qap.create cs in
        let pk, vk = Groth16.setup st qap in
        let proof = Groth16.prove st pk qap assignment in
        check_bool "verifies" true (Groth16.verify vk ~public_inputs:[ out ] proof);
        Alcotest.(check int) "proof is 256 bytes" 256 (Groth16.proof_size_bytes proof));
    Alcotest.test_case "sound (wrong public input rejected)" `Slow (fun () ->
        let b, _out = cubic_circuit 3 in
        let cs, assignment = Bld.finalize b in
        let qap = Qap.create cs in
        let pk, vk = Groth16.setup st qap in
        let proof = Groth16.prove st pk qap assignment in
        check_bool "wrong statement rejected" false
          (Groth16.verify vk ~public_inputs:[ Fr.of_int 36 ] proof));
    Alcotest.test_case "sound (tampered proof rejected)" `Slow (fun () ->
        let b, out = cubic_circuit 5 in
        let cs, assignment = Bld.finalize b in
        let qap = Qap.create cs in
        let pk, vk = Groth16.setup st qap in
        let proof = Groth16.prove st pk qap assignment in
        let tampered = { proof with Groth16.a = G1.double proof.Groth16.a } in
        check_bool "tampered a" false (Groth16.verify vk ~public_inputs:[ out ] tampered);
        let tampered = { proof with Groth16.c = G1.add proof.Groth16.c G1.generator } in
        check_bool "tampered c" false (Groth16.verify vk ~public_inputs:[ out ] tampered);
        let tampered = { proof with Groth16.b = G2.double proof.Groth16.b } in
        check_bool "tampered b" false (Groth16.verify vk ~public_inputs:[ out ] tampered));
    Alcotest.test_case "zero knowledge (proofs re-randomised)" `Slow (fun () ->
        let b, out = cubic_circuit 4 in
        let cs, assignment = Bld.finalize b in
        let qap = Qap.create cs in
        let pk, vk = Groth16.setup st qap in
        let p1 = Groth16.prove st pk qap assignment in
        let p2 = Groth16.prove st pk qap assignment in
        check_bool "distinct proofs" false (G1.equal p1.Groth16.a p2.Groth16.a);
        check_bool "both verify" true
          (Groth16.verify vk ~public_inputs:[ out ] p1
           && Groth16.verify vk ~public_inputs:[ out ] p2));
    Alcotest.test_case "multi-input circuit" `Slow (fun () ->
        (* public: x, y; witness: w with (x + w)(y + w) = public z *)
        let bld = Bld.create () in
        let x = Bld.alloc_input bld (Fr.of_int 3) in
        let y = Bld.alloc_input bld (Fr.of_int 8) in
        let w = Bld.alloc bld (Fr.of_int 2) in
        let prod =
          G.mul bld
            (L.add (L.of_var x) (L.of_var w))
            (L.add (L.of_var y) (L.of_var w))
        in
        let z = Bld.alloc_input bld (Bld.value bld prod) in
        G.assert_equal bld (L.of_var z) (L.of_var prod);
        let cs, assignment = Bld.finalize bld in
        let qap = Qap.create cs in
        let pk, vk = Groth16.setup st qap in
        let proof = Groth16.prove st pk qap assignment in
        check_bool "verifies with (3,8,50)" true
          (Groth16.verify vk ~public_inputs:[ Fr.of_int 3; Fr.of_int 8; Fr.of_int 50 ] proof);
        check_bool "rejected with (3,8,51)" false
          (Groth16.verify vk ~public_inputs:[ Fr.of_int 3; Fr.of_int 8; Fr.of_int 51 ] proof)) ]

let batch_tests =
  [ Alcotest.test_case "batch verification" `Slow (fun () ->
        (* three statements under one key: batch accepts them together,
           and rejects the batch if any single proof is corrupted *)
        let b, out = cubic_circuit 3 in
        let cs, _ = Bld.finalize b in
        let qap = Qap.create cs in
        let pk, vk = Groth16.setup st qap in
        let instances =
          List.map
            (fun x ->
              let b, out = cubic_circuit x in
              let _, assignment = Bld.finalize b in
              let proof = Groth16.prove st pk qap assignment in
              ([ out ], proof))
            [ 2; 3; 7 ]
        in
        ignore out;
        let accepted = function Groth16.Batch_accepted -> true | _ -> false in
        check_bool "batch accepts" true (accepted (Groth16.verify_batch vk instances));
        (* the empty batch has no sound verdict: it must raise, not
           vacuously accept (the bug shipped in the first version) *)
        check_bool "empty batch raises" true
          (match Groth16.verify_batch vk [] with
          | exception Invalid_argument _ -> true
          | _ -> false);
        (* corrupt one statement's claimed output *)
        let bad =
          match instances with
          | (io, p) :: rest -> ([ Fr.add (List.hd io) Fr.one ], p) :: rest
          | [] -> assert false
        in
        check_bool "batch with one bad statement rejects" false
          (accepted (Groth16.verify_batch vk bad));
        (* corrupt one proof point *)
        let bad =
          match instances with
          | (io, p) :: rest -> (io, { p with Groth16.c = G1.double p.Groth16.c }) :: rest
          | [] -> assert false
        in
        check_bool "batch with one bad proof rejects" false
          (accepted (Groth16.verify_batch vk bad));
        (* arity mismatch is malformed (with the culprit index), not a
           mere rejection *)
        let bad =
          match instances with
          | (io, p) :: rest -> ((Fr.one :: io), p) :: rest
          | [] -> assert false
        in
        check_bool "arity mismatch flagged malformed" true
          (Groth16.verify_batch vk bad = Groth16.Batch_malformed [ 0 ]));
    Alcotest.test_case "batch faster than sequential" `Slow (fun () ->
        let b, out = cubic_circuit 5 in
        let cs, assignment = Bld.finalize b in
        let qap = Qap.create cs in
        let pk, vk = Groth16.setup st qap in
        let instances =
          List.init 4 (fun _ -> ([ out ], Groth16.prove st pk qap assignment))
        in
        let time f =
          let t0 = Sys.time () in
          let r = f () in
          (r, Sys.time () -. t0)
        in
        let ok_b, t_batch =
          time (fun () -> Groth16.verify_batch vk instances = Groth16.Batch_accepted)
        in
        let ok_s, t_seq =
          time (fun () ->
              List.for_all (fun (io, p) -> Groth16.verify vk ~public_inputs:io p) instances)
        in
        check_bool "both accept" true (ok_b && ok_s);
        check_bool
          (Printf.sprintf "batch %.3fs < sequential %.3fs" t_batch t_seq)
          true (t_batch < t_seq)) ]

(* ---------------- SnarkPack-style aggregation ---------------- *)

module Aggregate = Zkvc_groth16.Aggregate

let aggregate_tests =
  (* One shared setup for the whole suite: a circuit, its keys, an
     aggregation SRS for up to 8 proofs, and a pool of valid instances. *)
  let setup_once =
    lazy
      (let b, _ = cubic_circuit 3 in
       let cs, _ = Bld.finalize b in
       let qap = Qap.create cs in
       let pk, vk = Groth16.setup st qap in
       let srs = Aggregate.setup st ~max_proofs:8 in
       let make x =
         let b, out = cubic_circuit x in
         let _, assignment = Bld.finalize b in
         ([ out ], Groth16.prove st pk qap assignment)
       in
       (vk, srs, List.map make [ 2; 3; 5; 7; 11 ]))
  in
  [ Alcotest.test_case "aggregate roundtrip (incl. padding)" `Slow (fun () ->
        let vk, srs, instances = Lazy.force setup_once in
        (* n = 5 exercises the pad-to-8 path; n = 4 the exact-power path;
           n = 1 pads to the minimum batch of 2 *)
        List.iter
          (fun n ->
            let insts = List.filteri (fun i _ -> i < n) instances in
            let agg = Aggregate.aggregate srs vk insts in
            check_bool
              (Printf.sprintf "aggregate of %d verifies" n)
              true
              (Aggregate.verify_aggregate srs vk (List.map fst insts) agg))
          [ 1; 4; 5 ]);
    Alcotest.test_case "aggregate rejects wrong statement" `Slow (fun () ->
        let vk, srs, instances = Lazy.force setup_once in
        let agg = Aggregate.aggregate srs vk instances in
        let ios = List.map fst instances in
        check_bool "honest statements accepted" true
          (Aggregate.verify_aggregate srs vk ios agg);
        let bad_ios =
          match ios with
          | io :: rest -> [ Fr.add (List.hd io) Fr.one ] :: rest
          | [] -> assert false
        in
        check_bool "corrupted statement rejected" false
          (Aggregate.verify_aggregate srs vk bad_ios agg);
        check_bool "statement count mismatch rejected" false
          (Aggregate.verify_aggregate srs vk (List.tl ios) agg));
    Alcotest.test_case "aggregate of one invalid member rejects" `Slow (fun () ->
        let vk, srs, instances = Lazy.force setup_once in
        (* aggregation itself must not detect anything (it never verifies
           members); the verifier must *)
        let bad =
          match instances with
          | (io, p) :: rest ->
            (io, { p with Groth16.c = G1.add p.Groth16.c G1.generator }) :: rest
          | [] -> assert false
        in
        let agg = Aggregate.aggregate srs vk bad in
        check_bool "aggregate of corrupt member rejected" false
          (Aggregate.verify_aggregate srs vk (List.map fst bad) agg));
    Alcotest.test_case "wire roundtrip" `Slow (fun () ->
        let vk, srs, instances = Lazy.force setup_once in
        let agg = Aggregate.aggregate srs vk instances in
        let bytes = Aggregate.proof_to_bytes agg in
        Alcotest.(check int)
          "declared size matches" (Bytes.length bytes)
          (Aggregate.proof_size_bytes agg);
        let agg' = Aggregate.proof_of_bytes_exn bytes in
        check_bool "decoded proof verifies" true
          (Aggregate.verify_aggregate srs vk (List.map fst instances) agg');
        (* truncation and trailing garbage must raise *)
        check_bool "truncated raises" true
          (match
             Aggregate.proof_of_bytes_exn (Bytes.sub bytes 0 (Bytes.length bytes - 1))
           with
          | exception Invalid_argument _ -> true
          | _ -> false);
        check_bool "trailing byte raises" true
          (match
             Aggregate.proof_of_bytes_exn (Bytes.cat bytes (Bytes.make 1 '\000'))
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
    Alcotest.test_case "every mutation site rejected" `Slow (fun () ->
        let vk, srs, instances = Lazy.force setup_once in
        let insts = List.filteri (fun i _ -> i < 4) instances in
        let agg = Aggregate.aggregate srs vk insts in
        let ios = List.map fst insts in
        List.iter
          (fun site ->
            let mutated = Aggregate.Mutate.apply site agg in
            check_bool
              (Printf.sprintf "mutated %s rejected" (Aggregate.Mutate.site_name site))
              false
              (Aggregate.verify_aggregate srs vk ios mutated))
          (Aggregate.Mutate.sites agg)) ]

let () =
  Alcotest.run "zkvc_snark"
    [ ("qap", qap_tests);
      ("groth16", groth16_tests);
      ("batch", batch_tests);
      ("aggregate", aggregate_tests) ]
