(* The R1CS optimiser: pass-exact eliminations on an injected-redundancy
   circuit, satisfiability equivalence on random circuits, witness-map
   round trips, canonical-layout preservation, and end-to-end proofs of
   optimised systems on both backends. *)

module Fr = Zkvc_field.Fr
module Api = Zkvc.Api
module Opt = Api.Opt
module Mc = Zkvc.Matmul_circuit
module Mspec = Zkvc.Matmul_spec
module Spec = Mspec.Make (Fr)
module Bld = Zkvc_r1cs.Builder.Make (Fr)
module G = Zkvc_r1cs.Gadgets.Make (Fr)
module L = Zkvc_r1cs.Lc.Make (Fr)
module Cs = Zkvc_r1cs.Constraint_system.Make (Fr)
module Wire = Zkvc_serve.Wire
module Compiler = Zkvc_zkml.Compiler
module Ops = Zkvc_zkml.Ops
module Nl = Zkvc.Nonlinear

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let fr = Fr.of_int

(* Structural fingerprint of a system, for determinism checks. *)
let cs_fingerprint (cs : Cs.t) =
  let lc l =
    String.concat "+"
      (List.map (fun (v, c) -> Fr.to_string c ^ "w" ^ string_of_int v) (L.terms l))
  in
  let row { Cs.a; b; c; label } =
    Printf.sprintf "%s|%s|%s|%s" label (lc a) (lc b) (lc c)
  in
  Printf.sprintf "i%d/x%d/%s" cs.Cs.num_inputs cs.Cs.num_aux
    (String.concat ";" (Array.to_list (Array.map row cs.Cs.constraints)))

let pass_named (r : Opt.report) name =
  List.find (fun (p : Opt.pass_delta) -> p.Opt.pass = name) r.Opt.passes

(* ---- injected-redundancy circuit: exact per-pass eliminations ---- *)

(* One instance of each redundancy the pipeline targets:
   - [pin]: a wire equated to a constant        -> const_fold drops 1 row
   - [dup]: two wires equated, twice            -> unify drops 2 rows
   - [deadrow]: (u - v)*x = 0, an identity once u = v -> dce drops it
   - [shared]: the same 4-term LC in three A slots     -> cse shares it *)
let build_redundant () =
  let b = Bld.create () in
  let y = Bld.alloc_input b (fr 30) in
  ignore y;
  Bld.in_region b "pin" (fun () ->
      let w = Bld.alloc b (fr 5) in
      Bld.enforce b ~label:"pin"
        (L.sub (L.of_var w) (L.constant (fr 5)))
        (L.constant Fr.one) L.zero);
  let u, v =
    Bld.in_region b "dup" (fun () ->
        let u = Bld.alloc b (fr 7) and v = Bld.alloc b (fr 7) in
        let eq = L.sub (L.of_var u) (L.of_var v) in
        Bld.enforce b ~label:"dup" eq (L.constant Fr.one) L.zero;
        Bld.enforce b ~label:"dup" eq (L.constant Fr.one) L.zero;
        (u, v))
  in
  Bld.in_region b "deadrow" (fun () ->
      let x = Bld.alloc b (fr 11) in
      Bld.enforce b ~label:"deadrow"
        (L.sub (L.of_var u) (L.of_var v))
        (L.of_var x) L.zero);
  Bld.in_region b "shared" (fun () ->
      let xs = List.map (fun i -> Bld.alloc b (fr i)) [ 1; 2; 3; 4 ] in
      let s = List.fold_left (fun acc x -> L.add acc (L.of_var x)) L.zero xs in
      List.iter
        (fun i ->
          let a = Bld.alloc b (fr i) in
          ignore (G.mul b s (L.of_var a)))
        [ 2; 3; 4 ]);
  b

let test_injected_redundancy () =
  let b = build_redundant () in
  let cs, assignment, tree, prov = Bld.finalize_with_provenance b in
  Cs.check_satisfied cs assignment;
  let res =
    Opt.optimize
      ~provenance:
        { Opt.constraint_region = prov.Bld.constraint_region;
          wire_region = prov.Bld.wire_region;
          tree }
      cs
  in
  let r = res.Opt.report in
  (* per-pass action counts: 1 pin, 2 unify hits (merge + implied dup),
     1 dead row, 1 shared LC *)
  check_int "const_fold actions" 1 (pass_named r "const_fold").Opt.actions;
  check_int "unify actions" 2 (pass_named r "unify").Opt.actions;
  check_int "dce actions" 3 (pass_named r "dce").Opt.actions;
  (* the dead row plus the two dead aux wires it was holding alive *)
  check_int "cse actions" 1 (pass_named r "cse").Opt.actions;
  (* per-pass constraint eliminations: cse *adds* its defining row *)
  check_int "const_fold rows" 1 (pass_named r "const_fold").Opt.delta.Opt.d_constraints;
  check_int "unify rows" 2 (pass_named r "unify").Opt.delta.Opt.d_constraints;
  check_int "dce rows" 1 (pass_named r "dce").Opt.delta.Opt.d_constraints;
  check_int "cse rows" (-1) (pass_named r "cse").Opt.delta.Opt.d_constraints;
  (* ledger: 7 rows before, 3 mul rows + 1 cse definition after *)
  check_int "before rows" 7 r.Opt.before.Cs.constraints;
  check_int "after rows" 4 r.Opt.after.Cs.constraints;
  check_int "after rows (cs)" 4 (Cs.num_constraints res.Opt.cs);
  (* every action lands in its own region *)
  let region_of pass =
    match (pass_named r pass).Opt.by_region with
    | (path, _) :: _ -> path
    | [] -> "(none)"
  in
  Alcotest.(check string) "pin debited to its region" "pin" (region_of "const_fold");
  Alcotest.(check string) "dup debited to its region" "dup" (region_of "unify");
  Alcotest.(check string) "share debited to its region" "shared" (region_of "cse");
  (* the rebuilt attribution tree matches the optimised ledger exactly *)
  (match res.Opt.regions with
   | None -> Alcotest.fail "no rebuilt region tree"
   | Some t ->
     let total = Zkvc_obs.Attrib.total t in
     check_int "tree constraints" (Cs.num_constraints res.Opt.cs)
       total.Zkvc_obs.Attrib.constraints;
     let s = Cs.stats res.Opt.cs in
     check_int "tree nnz"
       (s.Cs.nonzero_a + s.Cs.nonzero_b + s.Cs.nonzero_c)
       (total.Zkvc_obs.Attrib.nnz_a + total.Zkvc_obs.Attrib.nnz_b
      + total.Zkvc_obs.Attrib.nnz_c));
  (* witness equivalence both ways *)
  let z' = Opt.expand_witness res.Opt.map assignment in
  check_bool "optimised satisfied" true (Cs.is_satisfied res.Opt.cs z');
  let z'' = Opt.restore_witness res.Opt.map z' in
  check_bool "restored satisfies original" true (Cs.is_satisfied cs z'');
  check_bool "publics preserved" true (Fr.equal z'.(1) assignment.(1))

(* A contradictory constant row must be kept as a falsifier: the
   acceptance set never widens. *)
let test_contradiction_kept () =
  let b = Bld.create () in
  let w = Bld.alloc b (fr 5) in
  (* w = 5 and w = 6: the second pin must survive as an unsatisfiable row *)
  Bld.enforce b (L.sub (L.of_var w) (L.constant (fr 5))) (L.constant Fr.one) L.zero;
  Bld.enforce b (L.sub (L.of_var w) (L.constant (fr 6))) (L.constant Fr.one) L.zero;
  let cs, assignment = Bld.finalize b in
  check_bool "original unsatisfied" false (Cs.is_satisfied cs assignment);
  let res = Opt.optimize cs in
  let z' = Opt.expand_witness res.Opt.map assignment in
  check_bool "optimised still unsatisfiable" false (Cs.is_satisfied res.Opt.cs z');
  check_bool "some row survives" true (Cs.num_constraints res.Opt.cs >= 1)

(* Publics are never merged away: an equality between two public wires
   stays, and num_inputs is exact. *)
let test_public_guard () =
  let b = Bld.create () in
  let p1 = Bld.alloc_input b (fr 9) and p2 = Bld.alloc_input b (fr 9) in
  Bld.enforce b (L.sub (L.of_var p1) (L.of_var p2)) (L.constant Fr.one) L.zero;
  let q = Bld.alloc b (fr 9) in
  Bld.enforce b (L.sub (L.of_var p1) (L.of_var q)) (L.constant Fr.one) L.zero;
  let cs, assignment = Bld.finalize b in
  let res = Opt.optimize cs in
  check_int "num_inputs preserved" (Cs.num_inputs cs) (Cs.num_inputs res.Opt.cs);
  (* the public-public equality row is refused; the public-aux one merges *)
  check_int "public equality kept" 1 (Cs.num_constraints res.Opt.cs);
  let z' = Opt.expand_witness res.Opt.map assignment in
  check_bool "satisfied" true (Cs.is_satisfied res.Opt.cs z');
  check_bool "public 1 value" true (Fr.equal z'.(1) (fr 9));
  check_bool "public 2 value" true (Fr.equal z'.(2) (fr 9))

(* ---- qcheck: satisfiability equivalence on random circuits ---- *)

(* Random circuits over the repository's gadgets with redundancies
   sprinkled in: for the honest witness z,
     optimised(expand z) /\ original(restore (expand z))
   and a corrupted expanded witness never satisfies the optimised system
   while the honest one does not satisfy the corrupted statement. *)
let prop_equivalence =
  QCheck.Test.make ~name:"optimiser preserves satisfiability" ~count:60
    QCheck.(
      pair (list_of_size (Gen.int_range 1 8) (int_range 1 50)) (int_range 0 5))
    (fun (xs, shape) ->
      let b = Bld.create () in
      let vars = List.map (fun v -> Bld.alloc b (fr v)) xs in
      let first = List.hd vars in
      let p = Bld.alloc_input b (fr (List.hd xs)) in
      G.assert_equal b (L.of_var p) (L.of_var first);
      (* a chain of products, with duplicated bindings along the way *)
      let acc =
        List.fold_left
          (fun acc v ->
            let prod = G.mul b acc (L.add (L.of_var v) (L.constant Fr.one)) in
            if shape land 1 = 0 then begin
              (* redundant alias of the product *)
              let alias = Bld.alloc b (Bld.value b prod) in
              G.assert_equal b (L.of_var alias) (L.of_var prod);
              L.of_var alias
            end
            else L.of_var prod)
          (L.of_var first) vars
      in
      if shape land 2 = 0 then begin
        (* wire pinned to a constant *)
        let k = Bld.alloc b (fr 41) in
        G.assert_equal b (L.of_var k) (L.constant (fr 41));
        ignore (G.mul b acc (L.of_var k))
      end
      else ignore (G.is_zero b acc);
      if shape land 4 = 0 then
        (* shared multi-term LC (cse fodder) *)
        List.iter
          (fun v -> ignore (G.mul b acc (L.of_var v)))
          (match vars with v :: w :: _ -> [ v; w; v ] | _ -> vars);
      let cs, z = Bld.finalize b in
      let res = Opt.optimize cs in
      let z' = Opt.expand_witness res.Opt.map z in
      let z'' = Opt.restore_witness res.Opt.map z' in
      Cs.is_satisfied cs z
      && Cs.is_satisfied res.Opt.cs z'
      && Cs.is_satisfied cs z''
      && Fr.equal z'.(1) z.(1)
      (* corrupting the public input must break the optimised system too *)
      &&
      let bad = Array.copy z' in
      bad.(1) <- Fr.add bad.(1) Fr.one;
      not (Cs.is_satisfied res.Opt.cs bad))

(* Matmul pipeline at shrunk dims: optimisation commutes with the CRPC
   challenge and the optimised witness satisfies the optimised system,
   for every strategy. *)
let prop_matmul_pipeline =
  QCheck.Test.make ~name:"matmul pipeline equivalence" ~count:20
    QCheck.(
      quad (int_range 1 3) (int_range 1 3) (int_range 1 3) (int_range 0 3))
    (fun (a, n, bb, si) ->
      let d = Mspec.dims ~a ~n ~b:bb in
      let strategy = List.nth Mc.all_strategies si in
      let rng = Random.State.make [| a; n; bb; si |] in
      let x = Spec.random_matrix rng ~rows:a ~cols:n ~bound:64 in
      let w = Spec.random_matrix rng ~rows:n ~cols:bb ~bound:64 in
      let plain = Api.prepare strategy ~x ~w d in
      let opt = Api.prepare ~optimize:Opt.default strategy ~x ~w d in
      (* Fiat-Shamir challenge is derived before synthesis: identical *)
      (match (plain.Api.challenge, opt.Api.challenge) with
       | None, None -> true
       | Some c1, Some c2 -> Fr.equal c1 c2
       | _ -> false)
      && Cs.is_satisfied opt.Api.cs opt.Api.assignment
      && Cs.num_inputs opt.Api.cs = Cs.num_inputs plain.Api.cs
      (* restored witness satisfies the unoptimised system *)
      && (match opt.Api.opt with
          | None -> false
          | Some { Api.opt_map; _ } ->
            Cs.is_satisfied plain.Api.cs
              (Opt.restore_witness opt_map opt.Api.assignment))
      (* optimised publics = plain publics *)
      && List.for_all2 Fr.equal
           (Array.to_list (Array.sub plain.Api.assignment 1 (Cs.num_inputs plain.Api.cs)))
           (Array.to_list (Array.sub opt.Api.assignment 1 (Cs.num_inputs opt.Api.cs))))

(* zkml-compiled circuits at shrunk dims: the optimiser preserves
   satisfiability of every op the model compiler emits, under every
   matmul strategy. *)
let prop_zkml_equivalence =
  QCheck.Test.make ~name:"zkml compiled op equivalence" ~count:16
    QCheck.(pair (int_range 0 3) (int_range 0 3))
    (fun (opi, si) ->
      let cfg = Nl.default_config in
      let strategy = List.nth Mc.all_strategies si in
      let op =
        List.nth
          [ Ops.Op_softmax { rows = 1; len = 4 };
            Ops.Op_gelu 8;
            Ops.Op_layernorm { rows = 1; cols = 4 };
            Ops.Op_matmul (Mspec.dims ~a:2 ~n:2 ~b:2) ]
          opi
      in
      let b = Compiler.Counter.B.create () in
      Compiler.Counter.build_op ~strategy b cfg op;
      let cs, z = Compiler.Counter.B.finalize b in
      let res = Opt.optimize cs in
      let z' = Opt.expand_witness res.Opt.map z in
      Cs.is_satisfied cs z
      && Cs.is_satisfied res.Opt.cs z'
      && Cs.is_satisfied cs (Opt.restore_witness res.Opt.map z'))

(* ...and an optimised compiled circuit actually proves and verifies on
   both backends, straight through keygen/prove_with/verify_with. *)
let test_zkml_prove_optimised () =
  let cfg = Nl.default_config in
  let b = Compiler.Counter.B.create () in
  Compiler.Counter.build_op b cfg (Ops.Op_softmax { rows = 1; len = 4 });
  let cs, z = Compiler.Counter.B.finalize b in
  let res = Opt.optimize cs in
  let z' = Opt.expand_witness res.Opt.map z in
  check_bool "optimised compiled circuit satisfied" true
    (Cs.is_satisfied res.Opt.cs z');
  let publics = Array.to_list (Array.sub z' 1 (Cs.num_inputs res.Opt.cs)) in
  List.iter
    (fun backend ->
      let rng = Random.State.make [| 3 |] in
      let keys = Api.keygen ~rng backend res.Opt.cs in
      let proof = Api.prove_with ~rng keys z' in
      check_bool
        (Api.backend_name backend ^ " optimised softmax circuit verifies")
        true
        (Api.verify_with keys ~public_inputs:publics proof))
    [ Api.Backend_groth16; Api.Backend_spartan ]

(* ---- end-to-end: prove and verify optimised circuits, both backends ---- *)

let test_prove_both_backends () =
  let d = Mspec.dims ~a:2 ~n:2 ~b:2 in
  List.iter
    (fun backend ->
      List.iter
        (fun strategy ->
          let rng = Random.State.make [| 77 |] in
          let x = Spec.random_matrix rng ~rows:2 ~cols:2 ~bound:64 in
          let w = Spec.random_matrix rng ~rows:2 ~cols:2 ~bound:64 in
          let _, m = Api.run ~rng ~optimize:Opt.default backend strategy ~x ~w d in
          check_bool
            (Printf.sprintf "%s/%s optimised proof verifies"
               (Api.backend_name backend) (Mc.strategy_name strategy))
            true m.Api.verified)
        Mc.all_strategies)
    [ Api.Backend_groth16; Api.Backend_spartan ]

(* circuit_shape ?optimize reproduces prepare ?optimize's system exactly
   (the verifier-side resynthesis key files rely on) *)
let test_shape_determinism () =
  List.iter
    (fun strategy ->
      let d = Mspec.dims ~a:2 ~n:3 ~b:2 in
      let rng = Random.State.make [| 5 |] in
      let x = Spec.random_matrix rng ~rows:2 ~cols:3 ~bound:64 in
      let w = Spec.random_matrix rng ~rows:3 ~cols:2 ~bound:64 in
      let prep = Api.prepare ~optimize:Opt.default strategy ~x ~w d in
      let shape =
        Api.circuit_shape ~optimize:Opt.default strategy
          ?challenge:prep.Api.challenge d
      in
      Alcotest.(check string)
        (Mc.strategy_name strategy ^ " shape deterministic")
        (cs_fingerprint prep.Api.cs) (cs_fingerprint shape))
    Mc.all_strategies

(* key files carry the optimiser config and resynthesise the optimised
   shape on decode; unoptimised files stay byte-identical to the
   pre-optimiser format *)
let test_key_file_roundtrip () =
  let d = Mspec.dims ~a:2 ~n:2 ~b:2 in
  let strategy = Mc.Crpc_psq in
  let rng = Random.State.make [| 9 |] in
  let x = Spec.random_matrix rng ~rows:2 ~cols:2 ~bound:64 in
  let w = Spec.random_matrix rng ~rows:2 ~cols:2 ~bound:64 in
  let prep = Api.prepare ~optimize:Opt.default strategy ~x ~w d in
  let keys = Api.keygen ~rng Api.Backend_spartan prep.Api.cs in
  let proof = Api.prove_with ~rng keys prep.Api.assignment in
  let publics =
    Array.to_list (Array.sub prep.Api.assignment 1 (Cs.num_inputs prep.Api.cs))
  in
  let kf =
    { Wire.kf_backend = Api.Backend_spartan;
      kf_strategy = strategy;
      kf_dims = d;
      kf_challenge = prep.Api.challenge;
      kf_opt = Some Opt.default;
      kf_key_id = String.make 32 'k';
      kf_keys = keys }
  in
  match Wire.decode_key_file (Wire.encode_key_file kf) with
  | Error e -> Alcotest.failf "decode failed: %s" (Wire.error_to_string e)
  | Ok kf' ->
    check_bool "config survives" true (kf'.Wire.kf_opt = Some Opt.default);
    check_bool "decoded keys verify the optimised proof" true
      (Api.verify_with kf'.Wire.kf_keys ~public_inputs:publics proof);
    (* an unoptimised file must not grow the format *)
    let plain = Api.prepare strategy ~x ~w d in
    let keys0 = Api.keygen ~rng Api.Backend_spartan plain.Api.cs in
    let kf0 = { kf with Wire.kf_opt = None; kf_keys = keys0 } in
    (match Wire.decode_key_file (Wire.encode_key_file kf0) with
     | Ok kf0' -> check_bool "no config decodes as None" true (kf0'.Wire.kf_opt = None)
     | Error e -> Alcotest.failf "plain decode failed: %s" (Wire.error_to_string e))

let () =
  Alcotest.run "zkvc_opt"
    [ ( "passes",
        [ Alcotest.test_case "injected redundancy" `Quick test_injected_redundancy;
          Alcotest.test_case "contradiction kept" `Quick test_contradiction_kept;
          Alcotest.test_case "public guard" `Quick test_public_guard ] );
      ( "equivalence",
        [ QCheck_alcotest.to_alcotest prop_equivalence;
          QCheck_alcotest.to_alcotest prop_matmul_pipeline;
          QCheck_alcotest.to_alcotest prop_zkml_equivalence ] );
      ( "pipeline",
        [ Alcotest.test_case "prove both backends" `Slow test_prove_both_backends;
          Alcotest.test_case "zkml optimised prove" `Slow test_zkml_prove_optimised;
          Alcotest.test_case "shape determinism" `Quick test_shape_determinism;
          Alcotest.test_case "key file roundtrip" `Quick test_key_file_roundtrip ] ) ]
