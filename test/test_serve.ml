(* Proof-service tests: wire-codec round trips over every frame type,
   malformed-input fuzzing (decoding is total: typed errors, never
   exceptions, never over-reads), key-cache LRU + disk spill + per-key
   single-flight, batched verification with corrupted members, the
   two-lane fair scheduler, and end-to-end socket sessions including
   queue-full backpressure, deadlines, verify coalescing, lane priority
   and multi-worker byte-identity. *)

module Fr = Zkvc_field.Fr
module Api = Zkvc.Api
module Mc = Zkvc.Matmul_circuit
module Mspec = Zkvc.Matmul_spec
module Spec = Mspec.Make (Fr)
module Spartan = Zkvc_spartan.Spartan
module Wire = Zkvc_serve.Wire
module Key_cache = Zkvc_serve.Key_cache
module Jobs = Zkvc_serve.Jobs
module Batch = Zkvc_serve.Batch
module Server = Zkvc_serve.Server
module Client = Zkvc_serve.Client
module Span = Zkvc_obs.Span
module Sink = Zkvc_obs.Sink
module Expose = Zkvc_obs.Expose

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let tiny = Mspec.dims ~a:2 ~n:2 ~b:2

let instance_of_seed seed =
  let rng = Random.State.make [| seed |] in
  let x = Spec.random_matrix rng ~rows:tiny.Mspec.a ~cols:tiny.Mspec.n ~bound:16 in
  let w = Spec.random_matrix rng ~rows:tiny.Mspec.n ~cols:tiny.Mspec.b ~bound:16 in
  (rng, x, w)

(* one real statement + keys + proof per backend, shared by the suites *)
let fixture backend strategy seed =
  let rng, x, w = instance_of_seed seed in
  let prep = Api.prepare strategy ~x ~w tiny in
  let keys = Api.keygen ~rng backend prep.Api.cs in
  let proof = Api.prove_with ~rng keys prep.Api.assignment in
  let public_inputs =
    Array.to_list (Array.sub prep.Api.assignment 1 (Api.Cs.num_inputs prep.Api.cs))
  in
  (prep, keys, public_inputs, proof)

let groth16_fix = lazy (fixture Api.Backend_groth16 Mc.Vanilla 3)
let spartan_fix = lazy (fixture Api.Backend_spartan Mc.Vanilla 3)
let crpc_fix = lazy (fixture Api.Backend_spartan Mc.Crpc_psq 3)

(* a Spartan proof with the IPA opening, to cover both opening codecs *)
let spartan_ipa_proof =
  lazy
    (let rng, x, w = instance_of_seed 4 in
     let prep = Api.prepare Mc.Vanilla ~x ~w tiny in
     let inst = Spartan.preprocess prep.Api.cs in
     let key = Spartan.setup inst in
     Api.Spartan_proof (Spartan.prove ~opening_mode:`Ipa rng key inst prep.Api.assignment))

let sample_proofs =
  lazy
    (let _, _, _, g = Lazy.force groth16_fix in
     let _, _, _, s = Lazy.force spartan_fix in
     [| g; s; Lazy.force spartan_ipa_proof |])

(* ---------------- generators ---------------- *)

let gen_fr =
  QCheck.Gen.(
    oneof
      [ map Fr.of_int (int_bound 1_000_000);
        map (fun seed -> Fr.random (Random.State.make [| seed; 99 |])) (int_bound 10_000) ])

let gen_fr_list = QCheck.Gen.(list_size (int_bound 5) gen_fr)

let gen_dims =
  QCheck.Gen.(
    map3 (fun a n b -> Mspec.dims ~a:(a + 1) ~n:(n + 1) ~b:(b + 1)) (int_bound 3)
      (int_bound 3) (int_bound 3))

let gen_matrix rows cols =
  QCheck.Gen.(
    map
      (fun seed ->
        let st = Random.State.make [| seed; 7 |] in
        Array.init rows (fun _ -> Array.init cols (fun _ -> Fr.random st)))
      (int_bound 10_000))

let gen_backend = QCheck.Gen.oneofl [ Api.Backend_groth16; Api.Backend_spartan ]
let gen_strategy = QCheck.Gen.oneofl Mc.all_strategies
let gen_proof = QCheck.Gen.(map (fun i -> (Lazy.force sample_proofs).(i)) (int_bound 2))
let gen_key_id = QCheck.Gen.(map (fun s -> Bytes.to_string (Zkvc_hash.Sha256.digest_string s)) string)
let gen_deadline = QCheck.Gen.int_bound 10_000

let gen_request =
  let open QCheck.Gen in
  let gen_input dims =
    oneof
      [ map2 (fun seed bound -> Wire.Seeded { seed; bound = bound + 1 }) int (int_bound 500);
        (fun st ->
          let x = gen_matrix dims.Mspec.a dims.Mspec.n st in
          let w = gen_matrix dims.Mspec.n dims.Mspec.b st in
          Wire.Explicit { seed = int st; x; w }) ]
  in
  oneof
    [ (fun st ->
        let backend = gen_backend st and strategy = gen_strategy st in
        let dims = gen_dims st in
        Wire.Keygen
          { backend; strategy; dims; seed = int st; bound = 1 + int_bound 500 st;
            deadline_ms = gen_deadline st });
      (fun st ->
        let backend = gen_backend st and strategy = gen_strategy st in
        let dims = gen_dims st in
        Wire.Prove
          { backend; strategy; dims; input = gen_input dims st;
            deadline_ms = gen_deadline st });
      (fun st ->
        Wire.Verify
          { key_id = gen_key_id st; public_inputs = gen_fr_list st; proof = gen_proof st;
            deadline_ms = gen_deadline st });
      (fun st ->
        let items =
          list_size (int_bound 3) (pair gen_fr_list gen_proof) st
        in
        Wire.Batch_verify { key_id = gen_key_id st; items; deadline_ms = gen_deadline st });
      return Wire.Status;
      return Wire.Status_detail;
      return Wire.Shutdown ]

let gen_status =
  QCheck.Gen.(
    map
      (fun seed ->
        let st = Random.State.make [| seed; 13 |] in
        let i () = Random.State.int st 1_000_000 in
        { Wire.uptime_s = Random.State.float st 1.0e6;
          requests = i ();
          queue_depth = i ();
          queue_capacity = i ();
          cache_hits = i ();
          cache_misses = i ();
          cache_entries = i ();
          timeouts = i ();
          rejections = i ();
          batched = i ();
          workers = i ();
          workers_busy = i ();
          queue_depth_verify = i ();
          queue_depth_prove = i () })
      int)

let gen_error_code =
  QCheck.Gen.oneofl
    [ Wire.Queue_full; Wire.Deadline_exceeded; Wire.Bad_request; Wire.Unknown_key;
      Wire.Shutting_down; Wire.Internal ]

let gen_response =
  let open QCheck.Gen in
  oneof
    [ (fun st ->
        Wire.Keygen_ok
          { key_id = gen_key_id st; cache_hit = bool st;
            key_bytes = Bytes.of_string (string_size (int_bound 64) st) });
      (fun st ->
        Wire.Prove_ok
          { key_id = gen_key_id st;
            cache_hit = bool st;
            challenge = (if bool st then Some (gen_fr st) else None);
            public_inputs = gen_fr_list st;
            proof = gen_proof st;
            prove_s = float_bound_inclusive 1.0e9 st });
      map (fun b -> Wire.Verify_ok b) bool;
      map (fun bs -> Wire.Batch_ok bs) (list_size (int_bound 6) bool);
      map (fun s -> Wire.Status_ok s) gen_status;
      (fun st ->
        Wire.Status_detail_ok
          { status = gen_status st;
            metrics_text = string_size (int_bound 120) st;
            flight_jsonl = string_size (int_bound 120) st });
      return Wire.Shutdown_ok;
      (fun st ->
        Wire.Error { code = gen_error_code st; message = string_size (int_bound 80) st }) ]

let gen_request_id =
  QCheck.Gen.(
    map
      (fun seed ->
        String.sub
          (Bytes.to_string (Zkvc_hash.Sha256.digest_string (string_of_int seed)))
          0 Wire.request_id_bytes)
      int)

let gen_trace =
  QCheck.Gen.(
    map2
      (fun id origin -> { Wire.tr_request_id = id; tr_origin = origin })
      gen_request_id
      (string_size (int_bound 40)))

let gen_timing =
  let open QCheck.Gen in
  fun st ->
    let phase _ =
      ( string_size (int_bound 24) st,
        float_bound_inclusive 10.0 st,
        float_bound_inclusive 10.0 st )
    in
    { Wire.tm_request_id = gen_request_id st;
      tm_queue_wait_s = float_bound_inclusive 5.0 st;
      tm_exec_s = float_bound_inclusive 5.0 st;
      tm_phases = List.init (int_bound 4 st) phase }

let gen_opt g = QCheck.Gen.(oneof [ return None; map Option.some g ])

let gen_frame =
  QCheck.Gen.(
    oneof
      [ map2 (fun tr r -> Wire.Request (tr, r)) (gen_opt gen_trace) gen_request;
        map2 (fun tm r -> Wire.Response (tm, r)) (gen_opt gen_timing) gen_response ])

let arb_frame = QCheck.make gen_frame

(* frames are compared through their canonical encoding: the codec is
   deterministic, so byte equality is frame equality *)
let roundtrips f =
  let b = Wire.encode_frame f in
  match Wire.decode_frame b with
  | Error e -> Alcotest.failf "decode failed: %s" (Wire.error_to_string e)
  | Ok g -> Bytes.equal (Wire.encode_frame g) b

(* ---------------- codec suites ---------------- *)

let qtest ?(count = 30) name prop gen = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name prop gen)

(* v1/v2 payloads predate the v3 scheduler block, so a status decoded
   from them carries zeroed scheduler fields *)
let zero_sched (s : Wire.status) =
  { s with
    Wire.workers = 0;
    workers_busy = 0;
    queue_depth_verify = 0;
    queue_depth_prove = 0 }

let drop_sched = function
  | Wire.Status_ok s -> Wire.Status_ok (zero_sched s)
  | Wire.Status_detail_ok { status; metrics_text; flight_jsonl } ->
    Wire.Status_detail_ok { status = zero_sched status; metrics_text; flight_jsonl }
  | r -> r

(* the frame as a v1 peer would see it: telemetry blocks and the
   scheduler block dropped; [None] for the two v2-only operations that
   cannot be spoken at v1 at all *)
let downgrade = function
  | Wire.Request (_, Wire.Status_detail) | Wire.Response (_, Wire.Status_detail_ok _) ->
    None
  | Wire.Request (_, r) -> Some (Wire.Request (None, r))
  | Wire.Response (_, r) -> Some (Wire.Response (None, drop_sched r))

let codec_tests =
  [ qtest "every frame type round-trips" arb_frame roundtrips;
    qtest "v1 encoding drops telemetry and still round-trips" arb_frame (fun f ->
        match downgrade f with
        | None -> true (* v2-only ops: covered by the Invalid_argument case below *)
        | Some f1 -> (
          let b = Wire.encode_frame ~version:1 f in
          match Wire.decode_frame b with
          | Error e -> Alcotest.failf "v1 decode failed: %s" (Wire.error_to_string e)
          | Ok g ->
            Bytes.equal (Wire.encode_frame g) (Wire.encode_frame f1)
            && Bytes.equal (Wire.encode_frame ~version:1 g) b));
    qtest "v2 encoding drops the scheduler block and still round-trips" arb_frame
      (fun f ->
        let f2 =
          match f with
          | Wire.Request _ -> f
          | Wire.Response (tm, r) -> Wire.Response (tm, drop_sched r)
        in
        let b = Wire.encode_frame ~version:2 f in
        match Wire.decode_frame b with
        | Error e -> Alcotest.failf "v2 decode failed: %s" (Wire.error_to_string e)
        | Ok g ->
          Bytes.equal (Wire.encode_frame g) (Wire.encode_frame f2)
          && Bytes.equal (Wire.encode_frame ~version:2 g) b);
    Alcotest.test_case "fixed frames round-trip" `Quick (fun () ->
        let _, _, io, proof = Lazy.force groth16_fix in
        let trace =
          Some { Wire.tr_request_id = String.make Wire.request_id_bytes 'r';
                 tr_origin = "pid:42" }
        in
        let timing =
          Some
            { Wire.tm_request_id = String.make Wire.request_id_bytes 'r';
              tm_queue_wait_s = 0.25;
              tm_exec_s = 1.5;
              tm_phases = [ ("serve.request.prove", 0.0, 1.4); ("keygen", 0.1, 0.9) ] }
        in
        let frames =
          [ Wire.Request (None, Wire.Status);
            Wire.Request (trace, Wire.Status);
            Wire.Request (trace, Wire.Status_detail);
            Wire.Request (None, Wire.Shutdown);
            Wire.Request
              ( trace,
                Wire.Verify
                  { key_id = String.make 32 'k'; public_inputs = io; proof;
                    deadline_ms = 0 } );
            Wire.Response (None, Wire.Shutdown_ok);
            Wire.Response (timing, Wire.Verify_ok true);
            Wire.Response
              ( timing,
                Wire.Status_detail_ok
                  { status =
                      { Wire.uptime_s = 1.0; requests = 3; queue_depth = 0;
                        queue_capacity = 64; cache_hits = 1; cache_misses = 2;
                        cache_entries = 2; timeouts = 0; rejections = 0; batched = 0;
                        workers = 2; workers_busy = 1; queue_depth_verify = 0;
                        queue_depth_prove = 1 };
                    metrics_text = "# TYPE zkvc_serve_requests counter\n";
                    flight_jsonl = "{\"kind\":\"prove\"}\n" } );
            Wire.Response
              (None, Wire.Error { code = Wire.Queue_full; message = "job queue is full" }) ]
        in
        List.iter (fun f -> check_bool "roundtrip" true (roundtrips f)) frames);
    Alcotest.test_case "Status_detail frames cannot encode at v1" `Quick (fun () ->
        let must_raise f =
          match Wire.encode_frame ~version:1 f with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "expected Invalid_argument"
        in
        must_raise (Wire.Request (None, Wire.Status_detail));
        must_raise
          (Wire.Response
             ( None,
               Wire.Status_detail_ok
                 { status =
                     { Wire.uptime_s = 0.; requests = 0; queue_depth = 0;
                       queue_capacity = 0; cache_hits = 0; cache_misses = 0;
                       cache_entries = 0; timeouts = 0; rejections = 0; batched = 0;
                       workers = 0; workers_busy = 0; queue_depth_verify = 0;
                       queue_depth_prove = 0 };
                   metrics_text = "";
                   flight_jsonl = "" } )));
    Alcotest.test_case "status floats keep all 64 bits" `Quick (fun () ->
        (* uptimes above 4.0 have float bit patterns past 2^62: a codec
           that squeezes them through a 63-bit int corrupts the sign *)
        List.iter
          (fun u ->
            let s =
              { Wire.uptime_s = u; requests = 0; queue_depth = 0; queue_capacity = 0;
                cache_hits = 0; cache_misses = 0; cache_entries = 0; timeouts = 0;
                rejections = 0; batched = 0; workers = 0; workers_busy = 0;
                queue_depth_verify = 0; queue_depth_prove = 0 }
            in
            match
              Wire.decode_frame (Wire.encode_frame (Wire.Response (None, Wire.Status_ok s)))
            with
            | Ok (Wire.Response (None, Wire.Status_ok s')) ->
              if s'.Wire.uptime_s <> u then
                Alcotest.failf "uptime %.17g decoded as %.17g" u s'.Wire.uptime_s
            | _ -> Alcotest.fail "decode failed")
          [ 0.; 0.5; 3.9999; 4.3; 1.0e9; Float.max_float ]) ]

(* ---------------- malformed input ---------------- *)

let decode_never_raises b =
  match Wire.decode_frame b with
  | Ok _ | Error _ -> true
  | exception e -> Alcotest.failf "decode raised %s" (Printexc.to_string e)

let sample_frame () =
  let _, _, io, proof = Lazy.force groth16_fix in
  Wire.encode_frame
    (Wire.Request
       ( None,
         Wire.Verify
           { key_id = String.make 32 'i'; public_inputs = io; proof; deadline_ms = 9 } ))

let malformed_tests =
  [ Alcotest.test_case "every truncation is a typed error" `Quick (fun () ->
        let b = sample_frame () in
        for i = 0 to Bytes.length b - 1 do
          match Wire.decode_frame (Bytes.sub b 0 i) with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "prefix of %d bytes decoded" i
          | exception e ->
            Alcotest.failf "prefix of %d bytes raised %s" i (Printexc.to_string e)
        done);
    Alcotest.test_case "bad magic" `Quick (fun () ->
        let b = sample_frame () in
        Bytes.set b 0 'X';
        match Wire.decode_frame b with
        | Error Wire.Bad_magic -> ()
        | _ -> Alcotest.fail "expected Bad_magic");
    Alcotest.test_case "unknown version" `Quick (fun () ->
        let b = sample_frame () in
        Bytes.set b 4 '\042';
        match Wire.decode_frame b with
        | Error (Wire.Unsupported_version 42) -> ()
        | _ -> Alcotest.fail "expected Unsupported_version 42");
    Alcotest.test_case "unknown kind" `Quick (fun () ->
        let b = sample_frame () in
        Bytes.set b 5 '\055';
        match Wire.decode_frame b with
        | Error (Wire.Bad_tag { what = "frame kind"; tag = 55 }) -> ()
        | _ -> Alcotest.fail "expected Bad_tag");
    Alcotest.test_case "oversized length never allocates or over-reads" `Quick (fun () ->
        (* header declares a payload far past the buffer and the bound *)
        let b = Bytes.of_string "ZKVC\001\005\255\255\255\255" in
        match Wire.decode_frame b with
        | Error (Wire.Oversized _) -> ()
        | _ -> Alcotest.fail "expected Oversized");
    Alcotest.test_case "trailing bytes rejected" `Quick (fun () ->
        let b = sample_frame () in
        let b' = Bytes.cat b (Bytes.of_string "x") in
        match Wire.decode_frame b' with
        | Error (Wire.Malformed _) -> ()
        | _ -> Alcotest.fail "expected Malformed trailing");
    qtest ~count:200 "single-byte mutations never raise"
      QCheck.(pair (make gen_frame) (pair small_nat small_nat))
      (fun (f, (pos, v)) ->
        let b = Wire.encode_frame f in
        let pos = pos mod Bytes.length b in
        Bytes.set b pos (Char.chr (v land 0xff));
        decode_never_raises b);
    qtest ~count:100 "random garbage never raises"
      QCheck.(string_of_size (QCheck.Gen.int_bound 300))
      (fun s -> decode_never_raises (Bytes.of_string s));
    Alcotest.test_case "read_frame: clean close is Eof, mid-frame is Truncated" `Quick
      (fun () ->
        let check_stream bytes expect =
          let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          let n = Bytes.length bytes in
          if n > 0 then assert (Unix.write a bytes 0 n = n);
          Unix.close a;
          let r = Wire.read_frame b in
          Unix.close b;
          match (r, expect) with
          | Error e, `Err e' when e = e' -> ()
          | Ok _, `Ok -> ()
          | _ -> Alcotest.fail "unexpected read_frame result"
        in
        check_stream Bytes.empty (`Err Wire.Eof);
        let f = sample_frame () in
        check_stream (Bytes.sub f 0 3) (`Err Wire.Truncated);
        check_stream (Bytes.sub f 0 (Bytes.length f - 1)) (`Err Wire.Truncated);
        check_stream f `Ok) ]

(* ---------------- codec files ---------------- *)

let file_tests =
  [ Alcotest.test_case "proof file round-trips (incl. CRPC challenge)" `Quick (fun () ->
        List.iter
          (fun (backend, strategy, (lazy (prep, _, io, proof))) ->
            let pf =
              { Wire.pf_backend = backend;
                pf_strategy = strategy;
                pf_dims = tiny;
                pf_challenge = prep.Api.challenge;
                pf_key_id = String.make 32 'p';
                pf_public_inputs = io;
                pf_proof = proof }
            in
            let b = Wire.encode_proof_file pf in
            match Wire.decode_proof_file b with
            | Error e -> Alcotest.failf "decode: %s" (Wire.error_to_string e)
            | Ok pf' -> check_bool "bytes" true (Bytes.equal (Wire.encode_proof_file pf') b))
          [ (Api.Backend_groth16, Mc.Vanilla, groth16_fix);
            (Api.Backend_spartan, Mc.Vanilla, spartan_fix);
            (Api.Backend_spartan, Mc.Crpc_psq, crpc_fix) ]);
    Alcotest.test_case "key file verifies a proof after reload" `Quick (fun () ->
        List.iter
          (fun (backend, strategy, (lazy (prep, keys, io, proof))) ->
            let id = Key_cache.id_of backend strategy tiny ~challenge:prep.Api.challenge prep.Api.cs in
            let b =
              Wire.encode_key_file
                { Wire.kf_backend = backend;
                  kf_strategy = strategy;
                  kf_dims = tiny;
                  kf_challenge = prep.Api.challenge;
                  kf_opt = None;
                  kf_key_id = id;
                  kf_keys = keys }
            in
            match Wire.decode_key_file b with
            | Error e -> Alcotest.failf "decode: %s" (Wire.error_to_string e)
            | Ok kf ->
              check_bool "verifies with rebuilt keys" true
                (Api.verify_with kf.Wire.kf_keys ~public_inputs:io proof))
          [ (Api.Backend_groth16, Mc.Vanilla, groth16_fix);
            (Api.Backend_spartan, Mc.Vanilla, spartan_fix);
            (Api.Backend_spartan, Mc.Crpc_psq, crpc_fix) ]);
    Alcotest.test_case "truncated files are typed errors" `Quick (fun () ->
        let lazy (prep, keys, io, proof) = Lazy.force spartan_fix |> Lazy.from_val in
        ignore io;
        let kb =
          Wire.encode_key_file
            { Wire.kf_backend = Api.Backend_spartan;
              kf_strategy = Mc.Vanilla;
              kf_dims = tiny;
              kf_challenge = prep.Api.challenge;
              kf_opt = None;
              kf_key_id = String.make 32 'z';
              kf_keys = keys }
        in
        let pb =
          Wire.encode_proof_file
            { Wire.pf_backend = Api.Backend_spartan;
              pf_strategy = Mc.Vanilla;
              pf_dims = tiny;
              pf_challenge = None;
              pf_key_id = String.make 32 'z';
              pf_public_inputs = [];
              pf_proof = proof }
        in
        let step = 7 in
        let rec chop b i =
          if i < Bytes.length b then begin
            (match Wire.decode_key_file (Bytes.sub b 0 i) with
             | Error _ -> ()
             | Ok _ -> Alcotest.failf "key prefix %d decoded" i);
            chop b (i + step)
          end
        in
        chop kb 0;
        let rec chop_p i =
          if i < Bytes.length pb then begin
            (match Wire.decode_proof_file (Bytes.sub pb 0 i) with
             | Error _ -> ()
             | Ok _ -> Alcotest.failf "proof prefix %d decoded" i);
            chop_p (i + step)
          end
        in
        chop_p 0) ]

(* ---------------- key cache ---------------- *)

let cache_temp_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "zkvc-cache-%d-%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Unix.mkdir d 0o700;
  d

let cs_of_dims d =
  let rng = Random.State.make [| 11 |] in
  let x = Spec.random_matrix rng ~rows:d.Mspec.a ~cols:d.Mspec.n ~bound:8 in
  let w = Spec.random_matrix rng ~rows:d.Mspec.n ~cols:d.Mspec.b ~bound:8 in
  Api.prepare Mc.Vanilla ~x ~w d

let cache_tests =
  [ Alcotest.test_case "id is stable and challenge-sensitive" `Quick (fun () ->
        let lazy (prep, _, _, _) = crpc_fix in
        let id c = Key_cache.id_of Api.Backend_spartan Mc.Crpc_psq tiny ~challenge:c prep.Api.cs in
        check_bool "stable" true (id prep.Api.challenge = id prep.Api.challenge);
        check_bool "challenge changes the id" false
          (id prep.Api.challenge = id (Some (Fr.of_int 123456)));
        check_int "id is 32 bytes" 32 (String.length (id prep.Api.challenge)));
    Alcotest.test_case "LRU: hit, miss, eviction order" `Quick (fun () ->
        let t = Key_cache.create ~capacity:2 () in
        let dims_list =
          [ Mspec.dims ~a:2 ~n:2 ~b:2; Mspec.dims ~a:2 ~n:2 ~b:3; Mspec.dims ~a:2 ~n:3 ~b:2 ]
        in
        let made = ref 0 in
        let insert d =
          let prep = cs_of_dims d in
          Key_cache.find_or_add t Api.Backend_spartan Mc.Vanilla d
            ~challenge:prep.Api.challenge ~cs:prep.Api.cs
            ~make:(fun () ->
              incr made;
              Api.keygen Api.Backend_spartan prep.Api.cs)
        in
        let e1, h1 = insert (List.nth dims_list 0) in
        let _e2, h2 = insert (List.nth dims_list 1) in
        check_bool "first is a miss" true (h1 = `Miss && h2 = `Miss);
        let _e1', h1' = insert (List.nth dims_list 0) in
        check_bool "second ask is a memory hit" true (h1' = `Hit_mem);
        check_int "no extra keygen on hit" 2 !made;
        (* dims2 is now LRU; inserting dims3 evicts it *)
        let _e3, _ = insert (List.nth dims_list 2) in
        check_int "capacity bound" 2 (Key_cache.length t);
        let _e2', h2' = insert (List.nth dims_list 1) in
        check_bool "evicted entry is a miss without disk" true (h2' = `Miss);
        check_int "rebuilt after eviction" 4 !made;
        check_bool "most recent first" true
          (List.hd (Key_cache.ids t) = (fst (insert (List.nth dims_list 1))).Key_cache.id);
        ignore e1);
    Alcotest.test_case "disk spill: evicted keys reload without keygen" `Quick (fun () ->
        let dir = cache_temp_dir () in
        let t = Key_cache.create ~capacity:1 ~dir () in
        let made = ref 0 in
        let insert d =
          let prep = cs_of_dims d in
          Key_cache.find_or_add t Api.Backend_spartan Mc.Vanilla d
            ~challenge:prep.Api.challenge ~cs:prep.Api.cs
            ~make:(fun () ->
              incr made;
              Api.keygen Api.Backend_spartan prep.Api.cs)
        in
        let d1 = Mspec.dims ~a:2 ~n:2 ~b:2 and d2 = Mspec.dims ~a:2 ~n:2 ~b:3 in
        let e1, _ = insert d1 in
        let _ = insert d2 in
        (* d1 was evicted (capacity 1) but spilled to disk *)
        let e1', h = insert d1 in
        check_bool "disk hit" true (h = `Hit_disk);
        check_int "no keygen on disk hit" 2 !made;
        check_bool "same id" true (e1.Key_cache.id = e1'.Key_cache.id);
        (* find_by_id also reaches the disk *)
        let _ = insert d2 in
        check_bool "find_by_id reloads from disk" true
          (Key_cache.find_by_id t e1.Key_cache.id <> None));
    Alcotest.test_case "find_by_id misses unknown ids" `Quick (fun () ->
        let t = Key_cache.create ~capacity:2 () in
        check_bool "unknown" true (Key_cache.find_by_id t (String.make 32 'q') = None));
    Alcotest.test_case "concurrent misses run keygen once (single-flight)" `Quick
      (fun () ->
        let t = Key_cache.create ~capacity:2 () in
        let prep = cs_of_dims tiny in
        let made = Atomic.make 0 in
        let results = Array.make 2 None in
        let go i () =
          let e, outcome =
            Key_cache.find_or_add t Api.Backend_spartan Mc.Vanilla tiny
              ~challenge:prep.Api.challenge ~cs:prep.Api.cs
              ~make:(fun () ->
                Atomic.incr made;
                (* keep the slot occupied long enough for the second
                   thread to land on the same id mid-flight *)
                Thread.delay 0.15;
                Api.keygen Api.Backend_spartan prep.Api.cs)
          in
          results.(i) <- Some (e.Key_cache.id, outcome)
        in
        let t1 = Thread.create (go 0) () in
        Thread.delay 0.05;
        let t2 = Thread.create (go 1) () in
        Thread.join t1;
        Thread.join t2;
        check_int "keygen ran exactly once" 1 (Atomic.get made);
        match (results.(0), results.(1)) with
        | Some (id0, o0), Some (id1, o1) ->
          check_bool "both got the same entry" true (id0 = id1);
          check_bool "one miss, one memory hit" true
            ((o0 = `Miss && o1 = `Hit_mem) || (o0 = `Hit_mem && o1 = `Miss))
        | _ -> Alcotest.fail "a thread never settled") ]

(* ---------------- batch verification ---------------- *)

let batch_fixture =
  lazy
    (let lazy (prep1, keys, io1, p1) = groth16_fix in
     (* second honest statement over the same circuit shape (vanilla
        structure only depends on dims), proved with the same keys *)
     let rng2, x2, w2 = instance_of_seed 8 in
     let prep2 = Api.prepare Mc.Vanilla ~x:x2 ~w:w2 tiny in
     let p2 = Api.prove_with ~rng:rng2 keys prep2.Api.assignment in
     let io2 =
       Array.to_list (Array.sub prep2.Api.assignment 1 (Api.Cs.num_inputs prep2.Api.cs))
     in
     ignore prep1;
     (keys, [| (io1, p1); (io2, p2) |]))

let batch_tests =
  [ Alcotest.test_case "honest groth16 batch takes the fast path" `Quick (fun () ->
        let keys, honest = Lazy.force batch_fixture in
        let items = [ honest.(0); honest.(1); honest.(0) ] in
        let o = Batch.verify_each keys items in
        check_bool "fast path" true (o.Batch.path = Batch.Batched);
        check_bool "none malformed" true (o.Batch.malformed = []);
        check_bool "all true" true (List.for_all Fun.id o.Batch.verdicts));
    Alcotest.test_case "empty batch raises" `Quick (fun () ->
        let keys, _ = Lazy.force batch_fixture in
        check_bool "Invalid_argument" true
          (match Batch.verify_each keys [] with
          | exception Invalid_argument _ -> true
          | _ -> false));
    qtest ~count:4 "a corrupted member is rejected, honest members pass"
      QCheck.(pair (int_range 2 4) small_nat)
      (fun (n, pos) ->
        let keys, honest = Lazy.force batch_fixture in
        let pos = pos mod n in
        let items =
          List.init n (fun i ->
              if i = pos then
                (* proof paired with the other statement's inputs *)
                (fst honest.((i + 1) mod 2), snd honest.(i mod 2))
              else honest.(i mod 2))
        in
        let o = Batch.verify_each keys items in
        o.Batch.path = Batch.Fallback
        && o.Batch.malformed = []
        && List.for_all2 (fun i ok -> if i = pos then not ok else ok)
             (List.init n Fun.id) o.Batch.verdicts);
    Alcotest.test_case "arity mismatch flagged malformed, not just rejected" `Quick
      (fun () ->
        let keys, honest = Lazy.force batch_fixture in
        let io0, p0 = honest.(0) in
        let items = [ honest.(1); (Zkvc_field.Fr.one :: io0, p0) ] in
        let o = Batch.verify_each keys items in
        check_bool "fell back" true (o.Batch.path = Batch.Fallback);
        check_bool "culprit attributed" true (o.Batch.malformed = [ 1 ]);
        check_bool "honest member passes, malformed fails" true
          (o.Batch.verdicts = [ true; false ]));
    Alcotest.test_case "honest spartan batch takes the fast path" `Quick (fun () ->
        let lazy (_, keys, io, p) = spartan_fix in
        let o = Batch.verify_each keys [ (io, p); (io, p) ] in
        check_bool "fast path" true (o.Batch.path = Batch.Batched);
        check_bool "all true" true (List.for_all Fun.id o.Batch.verdicts));
    Alcotest.test_case "singleton verifies per item" `Quick (fun () ->
        let lazy (_, keys, io, p) = spartan_fix in
        let o = Batch.verify_each keys [ (io, p) ] in
        check_bool "per-item path" true (o.Batch.path = Batch.Per_item);
        check_bool "true" true (o.Batch.verdicts = [ true ])) ]

(* ---------------- job scheduler ---------------- *)

(* pop + complete in one step: dispatch order for tests where each job
   "finishes" immediately *)
let pop_done q =
  match Jobs.pop q with
  | Some tk ->
    Jobs.complete q ~client:tk.Jobs.t_client;
    tk.Jobs.t_item
  | None -> Alcotest.fail "scheduler ran dry"

let jobs_tests =
  [ Alcotest.test_case "per-client FIFO, backpressure, close" `Quick (fun () ->
        let q = Jobs.create ~capacity:2 () in
        let push x = Jobs.push q ~client:1 ~lane:Jobs.Lane_prove x in
        check_bool "push 1" true (push 1 = `Ok);
        check_bool "push 2" true (push 2 = `Ok);
        check_bool "push 3 rejected" true (push 3 = `Full);
        (match Jobs.pop q with
         | Some { Jobs.t_item = 1; t_client = 1; t_lane = Jobs.Lane_prove } -> ()
         | _ -> Alcotest.fail "expected item 1 from client 1");
        check_bool "push 3 after pop" true (push 3 = `Ok);
        Jobs.close q;
        check_bool "push after close" true (push 4 = `Closed);
        (* client 1 still has a job in flight: nothing else dispatches
           for it until [complete] — that is the per-connection ordering
           guarantee *)
        Jobs.complete q ~client:1;
        check_int "drains in order" 2 (pop_done q);
        check_int "drains in order (2)" 3 (pop_done q);
        check_bool "empty after drain" true (Jobs.pop q = None));
    Alcotest.test_case "verify lane dispatches ahead of earlier proves" `Quick
      (fun () ->
        let q = Jobs.create ~capacity:8 () in
        ignore (Jobs.push q ~client:1 ~lane:Jobs.Lane_prove ~cost:4 "p1");
        ignore (Jobs.push q ~client:2 ~lane:Jobs.Lane_prove ~cost:4 "p2");
        ignore (Jobs.push q ~client:3 ~lane:Jobs.Lane_verify "v");
        check_int "prove lane depth" 2 (Jobs.lane_depth q Jobs.Lane_prove);
        check_int "verify lane depth" 1 (Jobs.lane_depth q Jobs.Lane_verify);
        let order = List.init 3 (fun _ -> pop_done q) in
        check_bool "verify first, then proves in arrival order" true
          (order = [ "v"; "p1"; "p2" ]));
    Alcotest.test_case "a flooding client cannot starve a quiet one" `Quick (fun () ->
        let q = Jobs.create ~capacity:16 () in
        for i = 1 to 8 do
          ignore (Jobs.push q ~client:1 ~lane:Jobs.Lane_prove ~cost:4 (i * 10))
        done;
        ignore (Jobs.push q ~client:2 ~lane:Jobs.Lane_prove ~cost:4 1);
        let order = List.init 9 (fun _ -> pop_done q) in
        (* round robin: the quiet client's single job is served on the
           next rotation, not behind the whole flood *)
        check_int "quiet client served promptly" 1 (List.nth order 1);
        check_int "flood still fully served" 80 (List.nth order 8));
    Alcotest.test_case "an expensive head accumulates credit and dispatches" `Quick
      (fun () ->
        (* cost 9 > quantum 4: the head is starved twice, earns credit
           across rescans, and must dispatch without blocking *)
        let q = Jobs.create ~quantum:4 ~capacity:4 () in
        ignore (Jobs.push q ~client:1 ~lane:Jobs.Lane_prove ~cost:9 "big");
        check_bool "big job dispatched" true (pop_done q = "big"));
    Alcotest.test_case "drain_where takes idle matching heads, oldest first" `Quick
      (fun () ->
        let q = Jobs.create ~capacity:8 () in
        List.iter
          (fun i -> ignore (Jobs.push q ~client:i ~lane:Jobs.Lane_verify i))
          [ 1; 2; 3; 4; 5; 6 ];
        let evens = Jobs.drain_where q ~lane:Jobs.Lane_verify (fun i -> i mod 2 = 0) in
        check_bool "drained the matching clients" true
          (List.sort compare (List.map (fun tk -> tk.Jobs.t_item) evens) = [ 2; 4; 6 ]);
        check_int "rest length" 3 (Jobs.length q);
        let rest = List.init 3 (fun _ -> pop_done q) in
        check_bool "rest dispatches in arrival order" true (rest = [ 1; 3; 5 ]));
    Alcotest.test_case "drain_where never reorders within a connection" `Quick
      (fun () ->
        let q = Jobs.create ~capacity:8 () in
        ignore (Jobs.push q ~client:1 ~lane:Jobs.Lane_prove "p");
        ignore (Jobs.push q ~client:1 ~lane:Jobs.Lane_verify "v1");
        ignore (Jobs.push q ~client:2 ~lane:Jobs.Lane_verify "v2");
        (* client 1's verify sits behind its prove, so coalescing must
           not take it *)
        let got = Jobs.drain_where q ~lane:Jobs.Lane_verify (fun _ -> true) in
        check_bool "only the idle head verify drained" true
          (List.map (fun tk -> tk.Jobs.t_item) got = [ "v2" ]);
        check_int "client 1 keeps both jobs" 2 (Jobs.length q));
    Alcotest.test_case "pop blocks until a push arrives" `Quick (fun () ->
        let q = Jobs.create ~capacity:1 () in
        let got = ref None in
        let th = Thread.create (fun () -> got := Jobs.pop q) () in
        Thread.delay 0.05;
        check_bool "still blocked" true (!got = None);
        ignore (Jobs.push q ~client:7 ~lane:Jobs.Lane_verify 42);
        Thread.join th;
        check_bool "woke with the job" true
          (match !got with Some tk -> tk.Jobs.t_item = 42 | None -> false)) ]

(* ---------------- end-to-end socket sessions ---------------- *)

let temp_socket name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "zkvc-%s-%d.sock" name (Unix.getpid ()))

let with_server cfg f =
  let t = Server.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown t;
      Server.wait t)
    (fun () -> f t)

let raw_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let e2e_tests =
  [ Alcotest.test_case "prove/verify round trip, cache hit, byte-identity" `Slow (fun () ->
        let socket = temp_socket "e2e" in
        let cfg = Server.default_config ~socket_path:socket in
        with_server cfg (fun srv ->
            List.iter
              (fun backend ->
                Client.with_connection socket (fun c ->
                    let prove () =
                      Client.request_exn c
                        (Wire.Prove
                           { backend;
                             strategy = Mc.Crpc_psq;
                             dims = tiny;
                             input = Wire.Seeded { seed = 5; bound = 256 };
                             deadline_ms = 0 })
                    in
                    match (prove (), prove ()) with
                    | ( Wire.Prove_ok
                          { cache_hit = h1; proof = p1; key_id = id1;
                            public_inputs = io1; _ },
                        Wire.Prove_ok { cache_hit = h2; key_id; _ } ) ->
                      check_bool "first prove misses" false h1;
                      check_bool "second prove hits the key cache" true h2;
                      check_bool "same key id" true (id1 = key_id);
                      (* the cache-miss proof must equal the in-process one *)
                      let rng = Random.State.make [| 5 |] in
                      let x =
                        Spec.random_matrix rng ~rows:tiny.Mspec.a ~cols:tiny.Mspec.n
                          ~bound:256
                      in
                      let w =
                        Spec.random_matrix rng ~rows:tiny.Mspec.n ~cols:tiny.Mspec.b
                          ~bound:256
                      in
                      let local, _ = Api.run ~rng backend Mc.Crpc_psq ~x ~w tiny in
                      let bytes p =
                        match p with
                        | Api.Groth16_proof g -> Zkvc_groth16.Groth16.proof_to_bytes g
                        | Api.Spartan_proof s -> Spartan.proof_to_bytes s
                      in
                      check_bool "byte-identical to Api.run" true
                        (Bytes.equal (bytes p1) (bytes local));
                      (* server-side verify through the proof's key id *)
                      (match
                         Client.request_exn c
                           (Wire.Verify
                              { key_id; public_inputs = io1; proof = p1; deadline_ms = 0 })
                       with
                       | Wire.Verify_ok ok -> check_bool "server verifies" true ok
                       | _ -> Alcotest.fail "expected Verify_ok")
                    | _ -> Alcotest.fail "expected Prove_ok"))
              [ Api.Backend_spartan; Api.Backend_groth16 ];
            let s = Server.status srv in
            check_int "two cache hits" 2 s.Wire.cache_hits;
            check_int "two cache misses" 2 s.Wire.cache_misses));
    Alcotest.test_case "full queue answers Queue_full, not a crash" `Slow (fun () ->
        let socket = temp_socket "full" in
        let cfg =
          { (Server.default_config ~socket_path:socket) with
            Server.queue_capacity = 1;
            job_delay_s = 0.4 }
        in
        with_server cfg (fun srv ->
            let prove_req =
              Wire.Request
                ( None,
                  Wire.Prove
                    { backend = Api.Backend_spartan;
                      strategy = Mc.Vanilla;
                      dims = tiny;
                      input = Wire.Seeded { seed = 1; bound = 16 };
                      deadline_ms = 0 } )
            in
            let fd1 = raw_connect socket and fd2 = raw_connect socket in
            let fd3 = raw_connect socket in
            Wire.write_frame fd1 prove_req;
            Thread.delay 0.15;
            (* worker busy with #1 *)
            Wire.write_frame fd2 prove_req;
            Thread.delay 0.1;
            (* queue now holds #2 = capacity *)
            Wire.write_frame fd3 prove_req;
            (match Wire.read_frame fd3 with
             | Ok (Wire.Response (_, Wire.Error { code = Wire.Queue_full; _ })) -> ()
             | _ -> Alcotest.fail "expected Queue_full");
            (match (Wire.read_frame fd1, Wire.read_frame fd2) with
             | ( Ok (Wire.Response (_, Wire.Prove_ok _)),
                 Ok (Wire.Response (_, Wire.Prove_ok _)) ) ->
               ()
             | _ -> Alcotest.fail "queued proves should still succeed");
            List.iter Unix.close [ fd1; fd2; fd3 ];
            check_int "one rejection counted" 1 (Server.status srv).Wire.rejections));
    Alcotest.test_case "deadline exceeded is a typed error" `Slow (fun () ->
        let socket = temp_socket "deadline" in
        let cfg =
          { (Server.default_config ~socket_path:socket) with Server.job_delay_s = 0.3 }
        in
        with_server cfg (fun srv ->
            Client.with_connection socket (fun c ->
                match
                  Client.request c
                    (Wire.Prove
                       { backend = Api.Backend_spartan;
                         strategy = Mc.Vanilla;
                         dims = tiny;
                         input = Wire.Seeded { seed = 1; bound = 16 };
                         deadline_ms = 50 })
                with
                | Ok (Wire.Error { code = Wire.Deadline_exceeded; _ }) -> ()
                | _ -> Alcotest.fail "expected Deadline_exceeded");
            check_int "timeout counted" 1 (Server.status srv).Wire.timeouts));
    Alcotest.test_case "queued verifies coalesce into one batch" `Slow (fun () ->
        let socket = temp_socket "coalesce" in
        let cfg =
          { (Server.default_config ~socket_path:socket) with Server.job_delay_s = 0.25 }
        in
        with_server cfg (fun srv ->
            (* seed the cache and obtain a server-side proof *)
            let key_id, io, proof =
              Client.with_connection socket (fun c ->
                  match
                    Client.request_exn c
                      (Wire.Prove
                         { backend = Api.Backend_groth16;
                           strategy = Mc.Vanilla;
                           dims = tiny;
                           input = Wire.Seeded { seed = 3; bound = 16 };
                           deadline_ms = 0 })
                  with
                  | Wire.Prove_ok { key_id; public_inputs; proof; _ } ->
                    (key_id, public_inputs, proof)
                  | _ -> Alcotest.fail "expected Prove_ok")
            in
            let verify_req =
              Wire.Request
                (None, Wire.Verify { key_id; public_inputs = io; proof; deadline_ms = 0 })
            in
            (* occupy the worker, then queue two verifies behind it *)
            let fd_busy = raw_connect socket in
            Wire.write_frame fd_busy
              (Wire.Request
                 ( None,
                   Wire.Prove
                     { backend = Api.Backend_groth16;
                       strategy = Mc.Vanilla;
                       dims = tiny;
                       input = Wire.Seeded { seed = 3; bound = 16 };
                       deadline_ms = 0 } ));
            Thread.delay 0.1;
            let fd_a = raw_connect socket and fd_b = raw_connect socket in
            Wire.write_frame fd_a verify_req;
            Wire.write_frame fd_b verify_req;
            (match (Wire.read_frame fd_a, Wire.read_frame fd_b) with
             | ( Ok (Wire.Response (_, Wire.Verify_ok true)),
                 Ok (Wire.Response (_, Wire.Verify_ok true)) ) ->
               ()
             | _ -> Alcotest.fail "coalesced verifies should both pass");
            ignore (Wire.read_frame fd_busy);
            List.iter Unix.close [ fd_busy; fd_a; fd_b ];
            check_int "both counted as batched" 2 (Server.status srv).Wire.batched));
    Alcotest.test_case "shutdown drains in-flight work" `Slow (fun () ->
        let socket = temp_socket "drain" in
        let cfg =
          { (Server.default_config ~socket_path:socket) with Server.job_delay_s = 0.2 }
        in
        let srv = Server.start cfg in
        let fd = raw_connect socket in
        Wire.write_frame fd
          (Wire.Request
             ( None,
               Wire.Prove
                 { backend = Api.Backend_spartan;
                   strategy = Mc.Vanilla;
                   dims = tiny;
                   input = Wire.Seeded { seed = 2; bound = 16 };
                   deadline_ms = 0 } ));
        Thread.delay 0.05;
        (* the job is in flight; shutdown must wait for its response *)
        let sh = raw_connect socket in
        Wire.write_frame sh (Wire.Request (None, Wire.Shutdown));
        (match Wire.read_frame fd with
         | Ok (Wire.Response (_, Wire.Prove_ok _)) -> ()
         | _ -> Alcotest.fail "in-flight prove should complete during drain");
        (match Wire.read_frame sh with
         | Ok (Wire.Response (_, Wire.Shutdown_ok)) -> ()
         | _ -> Alcotest.fail "expected Shutdown_ok");
        Unix.close fd;
        Unix.close sh;
        Server.wait srv;
        check_bool "socket removed" false (Sys.file_exists socket));
    Alcotest.test_case "a queued verify overtakes a queued prove" `Slow (fun () ->
        let socket = temp_socket "lanes" in
        let cfg =
          { (Server.default_config ~socket_path:socket) with Server.job_delay_s = 0.3 }
        in
        with_server cfg (fun srv ->
            (* seed the cache and obtain a proof to verify *)
            let prove_payload =
              Wire.Prove
                { backend = Api.Backend_groth16;
                  strategy = Mc.Vanilla;
                  dims = tiny;
                  input = Wire.Seeded { seed = 3; bound = 16 };
                  deadline_ms = 0 }
            in
            let key_id, io, proof =
              Client.with_connection socket (fun c ->
                  match Client.request_exn c prove_payload with
                  | Wire.Prove_ok { key_id; public_inputs; proof; _ } ->
                    (key_id, public_inputs, proof)
                  | _ -> Alcotest.fail "expected Prove_ok")
            in
            let prove_req = Wire.Request (None, prove_payload) in
            let fd1 = raw_connect socket in
            let fd2 = raw_connect socket in
            let fd3 = raw_connect socket in
            Wire.write_frame fd1 prove_req;
            Thread.delay 0.1;
            (* the worker is inside fd1's prove; both of these queue *)
            Wire.write_frame fd2 prove_req;
            Wire.write_frame fd3
              (Wire.Request
                 ( None,
                   Wire.Verify { key_id; public_inputs = io; proof; deadline_ms = 0 } ));
            (match Wire.read_frame fd3 with
             | Ok (Wire.Response (_, Wire.Verify_ok true)) -> ()
             | _ -> Alcotest.fail "expected Verify_ok");
            (match (Wire.read_frame fd1, Wire.read_frame fd2) with
             | ( Ok (Wire.Response (_, Wire.Prove_ok _)),
                 Ok (Wire.Response (_, Wire.Prove_ok _)) ) ->
               ()
             | _ -> Alcotest.fail "both proves should still complete");
            List.iter Unix.close [ fd1; fd2; fd3 ];
            (* the flight recorder (oldest first) shows the verify lane
               jumping the queued prove *)
            let lines = String.split_on_char '\n' (String.trim (Server.flight_jsonl srv)) in
            check_int "four records" 4 (List.length lines);
            check_bool "third completion is the verify" true
              (contains ~sub:"\"kind\":\"verify\"" (List.nth lines 2));
            check_bool "records carry their lane" true
              (contains ~sub:"\"lane\":\"verify\"" (List.nth lines 2));
            check_bool "records carry their worker" true
              (contains ~sub:"\"worker\":" (List.nth lines 2));
            check_bool "verify records carry no hot region" true
              (contains ~sub:"\"hot_region\":\"-\"" (List.nth lines 2))));
    Alcotest.test_case "workers=4: concurrent proves are byte-identical" `Slow
      (fun () ->
        let socket = temp_socket "workers4" in
        let cfg =
          { (Server.default_config ~socket_path:socket) with Server.workers = 4 }
        in
        with_server cfg (fun srv ->
            let cases =
              [| (Mspec.dims ~a:2 ~n:2 ~b:2, 21);
                 (Mspec.dims ~a:2 ~n:2 ~b:3, 22);
                 (Mspec.dims ~a:2 ~n:3 ~b:2, 23) |]
            in
            let results = Array.make (Array.length cases) None in
            let run i =
              let dims, seed = cases.(i) in
              Client.with_connection socket (fun c ->
                  match
                    Client.request_exn c
                      (Wire.Prove
                         { backend = Api.Backend_spartan;
                           strategy = Mc.Vanilla;
                           dims;
                           input = Wire.Seeded { seed; bound = 16 };
                           deadline_ms = 0 })
                  with
                  | Wire.Prove_ok { proof; _ } -> results.(i) <- Some proof
                  | _ -> ())
            in
            let ths =
              List.init (Array.length cases) (fun i -> Thread.create run i)
            in
            List.iter Thread.join ths;
            let bytes p =
              match p with
              | Api.Groth16_proof g -> Zkvc_groth16.Groth16.proof_to_bytes g
              | Api.Spartan_proof s -> Spartan.proof_to_bytes s
            in
            Array.iteri
              (fun i r ->
                let dims, seed = cases.(i) in
                match r with
                | None -> Alcotest.failf "concurrent prove %d failed" i
                | Some p ->
                  let rng = Random.State.make [| seed |] in
                  let x =
                    Spec.random_matrix rng ~rows:dims.Mspec.a ~cols:dims.Mspec.n
                      ~bound:16
                  in
                  let w =
                    Spec.random_matrix rng ~rows:dims.Mspec.n ~cols:dims.Mspec.b
                      ~bound:16
                  in
                  let local, _ = Api.run ~rng Api.Backend_spartan Mc.Vanilla ~x ~w dims in
                  check_bool "byte-identical to Api.run" true
                    (Bytes.equal (bytes p) (bytes local)))
              results;
            let s = Server.status srv in
            check_int "all three proves missed the cache" 3 s.Wire.cache_misses;
            check_int "worker pool size reported" 4 s.Wire.workers));
    Alcotest.test_case "shutdown is prompt despite a long metrics interval" `Slow
      (fun () ->
        let socket = temp_socket "promptstop" in
        let metrics_file = Filename.temp_file "zkvc-prompt" ".prom" in
        let cfg =
          { (Server.default_config ~socket_path:socket) with
            Server.metrics_file = Some metrics_file;
            metrics_interval_s = 300. }
        in
        let srv = Server.start cfg in
        let t0 = Unix.gettimeofday () in
        Server.shutdown srv;
        Server.wait srv;
        let dt = Unix.gettimeofday () -. t0 in
        if dt >= 5. then
          Alcotest.failf "shutdown took %.1fs — snapshot loop slept the interval" dt;
        Sys.remove metrics_file) ]

(* ---------------- telemetry e2e ---------------- *)

let wait_for_socket path =
  let rec go n =
    if Sys.file_exists path then ()
    else if n = 0 then Alcotest.fail "server socket never appeared"
    else begin
      Thread.delay 0.05;
      go (n - 1)
    end
  in
  go 100

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let telemetry_tests =
  [ Alcotest.test_case "trace context propagates and timing stitches" `Slow (fun () ->
        let socket = temp_socket "trace" in
        let cfg =
          { (Server.default_config ~socket_path:socket) with Server.observe = true }
        in
        (* the server must live on its own domain: systhreads share their
           domain's span stack, so an in-domain server would interleave
           its serve.request.* spans with the client's client.request *)
        let srv_domain =
          Domain.spawn (fun () ->
              let srv = Server.start cfg in
              Server.wait srv)
        in
        wait_for_socket socket;
        Span.reset ();
        Sink.enable ();
        Fun.protect
          ~finally:(fun () -> Sink.disable ())
          (fun () ->
            Client.with_connection ~origin:"test-e2e" socket (fun c ->
                match
                  Client.request_exn c
                    (Wire.Prove
                       { backend = Api.Backend_spartan;
                         strategy = Mc.Vanilla;
                         dims = tiny;
                         input = Wire.Seeded { seed = 6; bound = 16 };
                         deadline_ms = 0 })
                with
                | Wire.Prove_ok _ ->
                  let id =
                    match Client.last_request_id c with
                    | Some id -> id
                    | None -> Alcotest.fail "client kept no request id"
                  in
                  let tm =
                    match Client.last_timing c with
                    | Some tm -> tm
                    | None -> Alcotest.fail "v2 response carried no timing block"
                  in
                  check_bool "timing echoes the request id" true
                    (tm.Wire.tm_request_id = id);
                  check_bool "server reported at least one phase" true
                    (tm.Wire.tm_phases <> []);
                  check_bool "phases include the request span" true
                    (List.exists
                       (fun (n, _, _) -> n = "serve.request.prove")
                       tm.Wire.tm_phases);
                  List.iter
                    (fun (_, off_s, dur_s) ->
                      check_bool "phase offsets/durations are sane" true
                        (off_s >= 0. && dur_s >= 0.
                        && off_s +. dur_s <= tm.Wire.tm_exec_s +. 1e-6))
                    tm.Wire.tm_phases;
                  (* the client span tree now holds the whole request *)
                  let root =
                    match Span.find_root "client.request" with
                    | Some r -> r
                    | None -> Alcotest.fail "no client.request span recorded"
                  in
                  check_bool "root carries the request id" true
                    (List.assoc_opt "request_id" (Span.args root)
                    = Some (Wire.hex_of_id id));
                  let stitched n =
                    match Span.find_rec root n with
                    | Some s -> s
                    | None -> Alcotest.failf "span %s not stitched under the root" n
                  in
                  let exec = stitched "server.exec" in
                  ignore (stitched "server.queue.wait");
                  ignore (stitched "serve.request.prove");
                  check_bool "stitched spans carry the request id" true
                    (List.assoc_opt "request_id" (Span.args exec)
                    = Some (Wire.hex_of_id id));
                  check_bool "stitched spans sit on their own track" true
                    (Span.domain_id exec <> Span.domain_id root)
                | _ -> Alcotest.fail "expected Prove_ok"));
        Client.with_connection socket (fun c ->
            ignore (Client.request_exn c Wire.Shutdown));
        Domain.join srv_domain);
    Alcotest.test_case "v1 clients still speak to a v2 server" `Slow (fun () ->
        let socket = temp_socket "v1compat" in
        let cfg = Server.default_config ~socket_path:socket in
        with_server cfg (fun _ ->
            let fd = raw_connect socket in
            Fun.protect
              ~finally:(fun () -> Unix.close fd)
              (fun () ->
                Wire.write_frame ~version:1 fd
                  (Wire.Request
                     ( None,
                       Wire.Prove
                         { backend = Api.Backend_spartan;
                           strategy = Mc.Vanilla;
                           dims = tiny;
                           input = Wire.Seeded { seed = 7; bound = 16 };
                           deadline_ms = 0 } ));
                (match Wire.read_frame' fd with
                 | Ok (Wire.Response (timing, Wire.Prove_ok _), meta) ->
                   check_int "server answered at v1" 1 meta.Wire.frame_version;
                   check_bool "no timing block at v1" true (timing = None)
                 | Ok _ -> Alcotest.fail "expected Prove_ok"
                 | Error e -> Alcotest.failf "transport: %s" (Wire.error_to_string e));
                Wire.write_frame ~version:1 fd (Wire.Request (None, Wire.Status));
                match Wire.read_frame' fd with
                | Ok (Wire.Response (None, Wire.Status_ok s), meta) ->
                  check_int "status answered at v1" 1 meta.Wire.frame_version;
                  (* the prove plus this status request itself *)
                  check_int "requests counted" 2 s.Wire.requests
                | _ -> Alcotest.fail "expected Status_ok")));
    Alcotest.test_case "malformed frames are answered at the peer's version" `Slow
      (fun () ->
        let socket = temp_socket "badframe" in
        let cfg = Server.default_config ~socket_path:socket in
        with_server cfg (fun _ ->
            let fd = raw_connect socket in
            Fun.protect
              ~finally:(fun () -> Unix.close fd)
              (fun () ->
                Wire.write_frame ~version:1 fd (Wire.Request (None, Wire.Status));
                (match Wire.read_frame' fd with
                 | Ok (Wire.Response (None, Wire.Status_ok _), meta) ->
                   check_int "status answered at v1" 1 meta.Wire.frame_version
                 | _ -> Alcotest.fail "expected Status_ok");
                (* an unknown frame kind under valid v1 framing: the
                   error reply must stay at the version this peer last
                   spoke, not the server's newest *)
                let junk = Bytes.of_string "ZKVC\001\231\000\000\000\000" in
                let n = Bytes.length junk in
                assert (Unix.write fd junk 0 n = n);
                match Wire.read_frame' fd with
                | Ok (Wire.Response (_, Wire.Error { code = Wire.Bad_request; _ }), meta)
                  ->
                  check_int "error reply at the peer's version" 1
                    meta.Wire.frame_version
                | _ -> Alcotest.fail "expected a v1 Bad_request reply")));
    Alcotest.test_case "flight recorder: detail dump, ring bound, shutdown flush" `Slow
      (fun () ->
        let socket = temp_socket "flight" in
        let flight_file = Filename.temp_file "zkvc-flight" ".jsonl" in
        let metrics_file = Filename.temp_file "zkvc-metrics" ".prom" in
        let cfg =
          { (Server.default_config ~socket_path:socket) with
            Server.flight_capacity = 2;
            flight_file = Some flight_file;
            metrics_file = Some metrics_file;
            metrics_interval_s = 0.1 }
        in
        let dump = ref "" in
        with_server cfg (fun _ ->
            Client.with_connection socket (fun c ->
                (* same statement three times: the first keygen misses,
                   the two reruns hit the key cache *)
                for _ = 1 to 3 do
                  match
                    Client.request_exn c
                      (Wire.Prove
                         { backend = Api.Backend_spartan;
                           strategy = Mc.Vanilla;
                           dims = tiny;
                           input = Wire.Seeded { seed = 1; bound = 16 };
                           deadline_ms = 0 })
                  with
                  | Wire.Prove_ok _ -> ()
                  | _ -> Alcotest.fail "expected Prove_ok"
                done;
                match Client.request_exn c Wire.Status_detail with
                | Wire.Status_detail_ok { status; metrics_text; flight_jsonl } ->
                  (* three proves plus this status request itself *)
                  check_int "status counts every request" 4 status.Wire.requests;
                  dump := flight_jsonl;
                  let lines = String.split_on_char '\n' (String.trim flight_jsonl) in
                  check_int "ring keeps the last capacity records" 2 (List.length lines);
                  List.iter
                    (fun l ->
                      check_bool "record is a prove" true (contains ~sub:"\"kind\":\"prove\"" l);
                      check_bool "record has an outcome" true
                        (contains ~sub:"\"outcome\":\"ok\"" l);
                      check_bool "prove record names its hot region" true
                        (contains ~sub:"\"hot_region\":\"matmul/" l))
                    lines;
                  (* the oldest surviving record is the second prove: a
                     cache miss was overwritten, the hit survived *)
                  List.iter
                    (fun l ->
                      check_bool "survivors hit the key cache" true
                        (contains ~sub:"\"cache\":\"hit\"" l))
                    lines;
                  (match Expose.parse metrics_text with
                   | Error msg -> Alcotest.failf "exposition text invalid: %s" msg
                   | Ok samples ->
                     check_bool "request counter exposed" true
                       (List.exists
                          (fun s ->
                            s.Expose.metric = "zkvc_serve_requests_total"
                            && s.Expose.value >= 3.)
                          samples);
                     check_bool "queue depth gauge exposed" true
                       (List.exists
                          (fun s -> s.Expose.metric = "zkvc_serve_queue_depth")
                          samples);
                     check_bool "queue wait quantiles exposed" true
                       (List.exists
                          (fun s ->
                            s.Expose.metric = "zkvc_serve_queue_wait_s"
                            && List.mem_assoc "quantile" s.Expose.labels)
                          samples))
                | _ -> Alcotest.fail "expected Status_detail_ok"));
        (* shutdown (inside with_server's finally) flushed the ring *)
        check_bool "flight file equals the live dump" true (read_file flight_file = !dump);
        (match Expose.parse (read_file metrics_file) with
         | Ok _ -> ()
         | Error msg -> Alcotest.failf "metrics snapshot invalid: %s" msg);
        Sys.remove flight_file;
        Sys.remove metrics_file) ]

let () =
  Alcotest.run "serve"
    [ ("codec", codec_tests);
      ("malformed", malformed_tests);
      ("files", file_tests);
      ("cache", cache_tests);
      ("batch", batch_tests);
      ("jobs", jobs_tests);
      ("e2e", e2e_tests);
      ("telemetry", telemetry_tests) ]
