(* Constraint provenance: qcheck invariants on region trees and their
   exporters, builder-level attribution (nesting, interning, the
   canonical wire permutation, --jobs), and the structural cross-check
   between the zkml compiler's closed-form counts and a real
   region-attributed synthesis of the same model. *)

module Fr = Zkvc_field.Fr
module Attrib = Zkvc_obs.Attrib
module Json = Zkvc_obs.Json
module L = Zkvc_r1cs.Lc.Make (Fr)
module Cs = Zkvc_r1cs.Constraint_system.Make (Fr)
module Bld = Zkvc_r1cs.Builder.Make (Fr)
module G = Zkvc_r1cs.Gadgets.Make (Fr)
module Api = Zkvc.Api
module Mc = Zkvc.Matmul_circuit
module Mspec = Zkvc.Matmul_spec
module Spec_fr = Zkvc.Matmul_spec.Make (Fr)
module Nl = Zkvc.Nonlinear
module Models = Zkvc_nn.Models
module Ops = Zkvc_zkml.Ops
module Compiler = Zkvc_zkml.Compiler

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* qcheck: tree invariants and exporter round-trips                    *)

let gen_counts =
  let open QCheck.Gen in
  int_bound 50 >>= fun constraints ->
  int_bound 50 >>= fun variables ->
  int_bound 99 >>= fun nnz_a ->
  int_bound 99 >>= fun nnz_b ->
  int_bound 99 >|= fun nnz_c -> { Attrib.constraints; variables; nnz_a; nnz_b; nnz_c }

(* names deliberately include the characters the folded format must
   escape (';' and whitespace) *)
let gen_name = QCheck.Gen.oneofl [ "matmul"; "bits"; "soft max"; "a;b"; "x" ]

(* dyadic timing values so [=] stays exact through the JSON codec *)
let gen_time = QCheck.Gen.(map (fun k -> float_of_int k /. 1024.) (int_bound 4095))

let rec gen_tree depth =
  let open QCheck.Gen in
  gen_name >>= fun name ->
  gen_counts >>= fun self ->
  gen_time >>= fun witness_s ->
  gen_time >>= fun prove_share_s ->
  (if depth = 0 then return [] else list_size (int_bound 3) (gen_tree (depth - 1)))
  >|= fun children -> Attrib.make ~witness_s ~prove_share_s ~name ~self children

let tree_arb = QCheck.make ~print:Attrib.to_folded (gen_tree 3)

let qcheck_tree =
  [ QCheck.Test.make ~count:200 ~name:"total = self + sum of child totals" tree_arb
      (fun t ->
        let rec ok n =
          Attrib.total n
          = List.fold_left
              (fun acc c -> Attrib.add_counts acc (Attrib.total c))
              n.Attrib.self n.Attrib.children
          && List.for_all ok n.Attrib.children
        in
        ok t);
    QCheck.Test.make ~count:200 ~name:"folded text round-trips through the parser"
      tree_arb (fun t ->
        Attrib.parse_folded (Attrib.to_folded t) = Ok (Attrib.folded_entries t));
    QCheck.Test.make ~count:200 ~name:"folded weights sum to total constraints" tree_arb
      (fun t ->
        List.fold_left (fun acc (_, w) -> acc + w) 0 (Attrib.folded_entries t)
        = (Attrib.total t).Attrib.constraints);
    QCheck.Test.make ~count:200 ~name:"JSON round-trip is exact" tree_arb (fun t ->
        Attrib.of_json (Attrib.to_json t) = Ok t);
    QCheck.Test.make ~count:200 ~name:"strip_timing zeroes clocks, keeps structure"
      tree_arb (fun t ->
        let s = Attrib.strip_timing t in
        Attrib.total s = Attrib.total t
        && Attrib.total_witness_s s = 0.
        && Attrib.total_prove_s s = 0.
        && Attrib.strip_timing s = s);
    QCheck.Test.make ~count:200 ~name:"prove share apportions the whole measurement"
      tree_arb (fun t ->
        let nnz (c : Attrib.counts) = c.Attrib.nnz_a + c.Attrib.nnz_b + c.Attrib.nnz_c in
        let shared = Attrib.with_prove_share ~prove_s:1. t in
        if nnz (Attrib.total t) = 0 then shared = t
        else Float.abs (Attrib.total_prove_s shared -. 1.) < 1e-9);
    QCheck.Test.make ~count:200 ~name:"identical trees produce no drift notes" tree_arb
      (fun t -> Attrib.drift_notes ~old_:t ~new_:t = []) ]

let test_parse_folded_rejects () =
  check_bool "missing weight" true (Result.is_error (Attrib.parse_folded "a;b"));
  check_bool "non-integer weight" true (Result.is_error (Attrib.parse_folded "a;b x"));
  check_bool "negative weight" true (Result.is_error (Attrib.parse_folded "a;b -3"));
  check_bool "blank lines tolerated" true (Attrib.parse_folded "\n\na 1\n\n" = Ok ([ ([ "a" ], 1) ]))

let test_top_regions () =
  let c n = { Attrib.constraints = n; variables = 0; nnz_a = 0; nnz_b = 0; nnz_c = 0 } in
  let t =
    Attrib.make ~name:"all" ~self:(c 0)
      [ Attrib.make ~name:"matmul" ~self:(c 0) [ Attrib.make ~name:"crpc" ~self:(c 90) [] ];
        Attrib.make ~name:"softmax" ~self:(c 40) [];
        Attrib.make ~name:"gelu" ~self:(c 10) [] ]
  in
  Alcotest.(check (list (pair string int)))
    "hottest first, root segment dropped"
    [ ("matmul/crpc", 90); ("softmax", 40) ]
    (Attrib.top_regions ~n:2 t)

(* ------------------------------------------------------------------ *)
(* builder attribution                                                 *)

(* a tiny circuit with two regions: 1 mul in "left", 2 muls in
   "right/deep", one unattributed mul at top level *)
let build_sample () =
  let b = Bld.create () in
  let x = Bld.alloc_input b (Fr.of_int 3) in
  let y = Bld.alloc b (Fr.of_int 5) in
  Bld.in_region b "left" (fun () -> ignore (G.mul b (L.of_var x) (L.of_var y)));
  Bld.in_region b "right/deep" (fun () ->
      let p = G.mul b (L.of_var x) (L.of_var x) in
      ignore (G.mul b (L.of_var p) (L.of_var y)));
  ignore (G.mul b (L.of_var y) (L.of_var y));
  b

let find_child name t =
  match List.find_opt (fun c -> c.Attrib.name = name) t.Attrib.children with
  | Some c -> c
  | None -> Alcotest.failf "region %S not found" name

let test_builder_regions () =
  let b = build_sample () in
  let cs, assignment, tree = Bld.finalize_attributed b in
  Cs.check_satisfied cs assignment;
  check_int "every constraint attributed to the tree" (Cs.num_constraints cs)
    (Attrib.total tree).Attrib.constraints;
  check_int "left has one constraint" 1 (find_child "left" tree).Attrib.self.Attrib.constraints;
  let right = find_child "right" tree in
  check_int "right is pure nesting" 0 right.Attrib.self.Attrib.constraints;
  check_int "right/deep has two constraints" 2
    (find_child "deep" right).Attrib.self.Attrib.constraints;
  check_int "top-level mul lands on the root" 1 tree.Attrib.self.Attrib.constraints;
  check_bool "unattributed pct = 1/4" true (Attrib.unattributed_pct tree = 25.);
  (* wires: inputs x,y then one product per region-mul *)
  check_int "variables attributed" (Cs.num_vars cs - 1) (Attrib.total tree).Attrib.variables

let test_attribution_survives_permutation () =
  (* region_tree before finalize (builder order) and after (canonical
     input-first permutation) must agree: attribution is positional in
     synthesis order, not wire index *)
  let b = build_sample () in
  let before = Attrib.strip_timing (Bld.region_tree b) in
  let _cs, _assignment, tree = Bld.finalize_attributed b in
  check_bool "tree unchanged by the wire permutation" true
    (Attrib.strip_timing tree = before)

let test_reentered_region_accumulates () =
  let b = Bld.create () in
  let x = Bld.alloc b (Fr.of_int 2) in
  for _ = 1 to 3 do
    Bld.in_region b "loop" (fun () -> ignore (G.mul b (L.of_var x) (L.of_var x)))
  done;
  let tree = Bld.region_tree b in
  check_int "one interned child" 1 (List.length tree.Attrib.children);
  check_int "three constraints accumulated" 3
    (find_child "loop" tree).Attrib.self.Attrib.constraints

let prepared_tree ~jobs strategy =
  Zkvc_parallel.set_jobs jobs;
  let rng = Random.State.make [| 11 |] in
  let dims = Mspec.dims ~a:3 ~n:4 ~b:2 in
  let x = Spec_fr.random_matrix rng ~rows:3 ~cols:4 ~bound:64 in
  let w = Spec_fr.random_matrix rng ~rows:4 ~cols:2 ~bound:64 in
  let prep = Api.prepare strategy ~x ~w dims in
  Attrib.strip_timing prep.Api.regions

let test_jobs_invariance () =
  let saved = Zkvc_parallel.jobs () in
  Fun.protect
    ~finally:(fun () -> Zkvc_parallel.set_jobs saved)
    (fun () ->
      List.iter
        (fun strategy ->
          check_bool
            (Mc.strategy_name strategy ^ " tree invariant under --jobs")
            true
            (prepared_tree ~jobs:1 strategy = prepared_tree ~jobs:4 strategy))
        Mc.all_strategies)

(* ------------------------------------------------------------------ *)
(* compiler cross-check: closed-form counts vs attributed synthesis    *)

let test_compiler_cross_check () =
  let cfg = Nl.default_config in
  let arch = Models.shrink Models.vit_cifar10 ~factor:16 in
  let strategy = Mc.Crpc_psq in
  List.iter
    (fun variant ->
      let layers = Compiler.compile arch variant in
      let total = Compiler.total_counts ~strategy cfg layers in
      let b = Compiler.synthesize ~strategy cfg layers in
      let cs, assignment, tree = Compiler.Counter.B.finalize_attributed b in
      Cs.check_satisfied cs assignment;
      let name = Models.variant_name variant in
      check_int (name ^ ": constraints match the closed form") total.Ops.constraints
        (Cs.num_constraints cs);
      check_int (name ^ ": every constraint is region-attributed") total.Ops.constraints
        (Attrib.total tree).Attrib.constraints;
      check_bool (name ^ ": under 5% unattributed") true
        (Attrib.unattributed_pct tree < 5.);
      (* the closed form counts the constant-one wire once per op; a
         single shared builder allocates it once overall *)
      let nops = List.fold_left (fun acc l -> acc + List.length l.Compiler.ops) 0 layers in
      check_int (name ^ ": variables match the closed form")
        (total.Ops.variables - (nops - 1))
        (Cs.num_vars cs);
      (* one region per compiled layer, in layer order *)
      check_int (name ^ ": one region per layer") (List.length layers)
        (List.length tree.Attrib.children);
      List.iter2
        (fun (l : Compiler.layer_ops) (c : Attrib.t) ->
          check_bool (name ^ ": region named after its layer") true (l.Compiler.label = c.Attrib.name))
        layers tree.Attrib.children)
    [ Models.Soft_approx; Models.Soft_free_s; Models.Soft_free_p; Models.Zkvc_hybrid ]

let () =
  Alcotest.run "attrib"
    [ ( "tree",
        Alcotest.test_case "parse_folded rejects malformed input" `Quick
          test_parse_folded_rejects
        :: Alcotest.test_case "top_regions orders by self constraints" `Quick test_top_regions
        :: List.map QCheck_alcotest.to_alcotest qcheck_tree );
      ( "builder",
        [ Alcotest.test_case "regions attribute every constraint" `Quick test_builder_regions;
          Alcotest.test_case "attribution survives the wire permutation" `Quick
            test_attribution_survives_permutation;
          Alcotest.test_case "re-entered regions accumulate" `Quick
            test_reentered_region_accumulates;
          Alcotest.test_case "attribution invariant under --jobs" `Quick test_jobs_invariance ] );
      ( "compiler",
        [ Alcotest.test_case "closed-form counts = attributed synthesis" `Slow
            test_compiler_cross_check ] ) ]
