(* Domain-pool unit tests plus the cross-jobs determinism suite: every
   parallelised kernel, and both backends end-to-end, must produce
   byte-identical results for every job count. *)

module Parallel = Zkvc_parallel
module Fr = Zkvc_field.Fr
module G1 = Zkvc_curve.G1
module Msm = Zkvc_curve.Msm.Make (G1)
module D = Zkvc_poly.Domain.Make (Fr)
module Groth16 = Zkvc_groth16.Groth16
module Spartan = Zkvc_spartan.Spartan
module Bld = Zkvc_r1cs.Builder.Make (Fr)
module Gg = Zkvc_r1cs.Gadgets.Make (Fr)
module L = Zkvc_r1cs.Lc.Make (Fr)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* run [f] at a given job count, restoring the previous setting *)
let with_jobs n f =
  let saved = Parallel.jobs () in
  Parallel.set_jobs n;
  Fun.protect ~finally:(fun () -> Parallel.set_jobs saved) f

(* ---------------- pool mechanics ---------------- *)

let pool_tests =
  [ Alcotest.test_case "every index processed exactly once" `Quick (fun () ->
        with_jobs 4 (fun () ->
            let n = 10_000 in
            let hits = Array.init n (fun _ -> Atomic.make 0) in
            Parallel.parallel_for n (fun i -> Atomic.incr hits.(i));
            Array.iteri
              (fun i h ->
                if Atomic.get h <> 1 then
                  Alcotest.failf "index %d processed %d times" i (Atomic.get h))
              hits));
    Alcotest.test_case "parallel_init matches Array.init" `Quick (fun () ->
        with_jobs 4 (fun () ->
            let f i = (i * i) - (3 * i) in
            check_bool "equal" true
              (Parallel.parallel_init 777 f = Array.init 777 f)));
    Alcotest.test_case "parallel_map matches Array.map" `Quick (fun () ->
        with_jobs 3 (fun () ->
            let a = Array.init 500 string_of_int in
            check_bool "equal" true
              (Parallel.parallel_map String.length a = Array.map String.length a)));
    Alcotest.test_case "parallel_reduce combines chunks in order" `Quick (fun () ->
        with_jobs 4 (fun () ->
            (* string concatenation is not commutative: any out-of-order
               combine would be visible *)
            let n = 100 in
            let expect = String.concat "" (List.init n string_of_int) in
            let got =
              Parallel.parallel_reduce ~chunk:7 n ~init:""
                ~range:(fun lo hi ->
                  String.concat "" (List.init (hi - lo) (fun k -> string_of_int (lo + k))))
                ~combine:( ^ )
            in
            Alcotest.(check string) "ordered" expect got));
    Alcotest.test_case "exceptions propagate to the caller" `Quick (fun () ->
        with_jobs 4 (fun () ->
            Alcotest.check_raises "raises" Exit (fun () ->
                Parallel.parallel_for 1000 (fun i -> if i = 777 then raise Exit))));
    Alcotest.test_case "pool survives a failed call" `Quick (fun () ->
        with_jobs 4 (fun () ->
            (try Parallel.parallel_for 100 (fun _ -> raise Not_found)
             with Not_found -> ());
            let total = Atomic.make 0 in
            Parallel.parallel_for 100 (fun i -> ignore (Atomic.fetch_and_add total i));
            check_int "sum 0..99" 4950 (Atomic.get total)));
    Alcotest.test_case "nested calls degrade to sequential" `Quick (fun () ->
        with_jobs 4 (fun () ->
            let hits = Array.init 64 (fun _ -> Atomic.make 0) in
            Parallel.parallel_for 8 (fun i ->
                Parallel.parallel_for 8 (fun j -> Atomic.incr hits.((i * 8) + j)));
            Array.iter (fun h -> check_int "once" 1 (Atomic.get h)) hits));
    Alcotest.test_case "concurrent submitters: every index exactly once" `Quick
      (fun () ->
        (* several systhreads hammer the pool at once: one wins the
           submission slot per round, the rest degrade to sequential —
           either way each thread's range is processed exactly once,
           and nothing deadlocks *)
        with_jobs 4 (fun () ->
            let nthreads = 4 and n = 2_000 and rounds = 5 in
            let hits =
              Array.init nthreads (fun _ -> Array.init n (fun _ -> Atomic.make 0))
            in
            let failed = Atomic.make false in
            let body t () =
              try
                for _ = 1 to rounds do
                  Parallel.parallel_for n (fun i -> Atomic.incr hits.(t).(i))
                done
              with _ -> Atomic.set failed true
            in
            let ths = List.init nthreads (fun t -> Thread.create (body t) ()) in
            List.iter Thread.join ths;
            check_bool "no submitter raised" false (Atomic.get failed);
            Array.iteri
              (fun t per ->
                Array.iteri
                  (fun i h ->
                    if Atomic.get h <> rounds then
                      Alcotest.failf "thread %d index %d processed %d/%d times" t i
                        (Atomic.get h) rounds)
                  per)
              hits));
    Alcotest.test_case "set_jobs clamps" `Quick (fun () ->
        with_jobs 1 (fun () ->
            Parallel.set_jobs 0;
            check_bool "auto >= 1" true (Parallel.jobs () >= 1);
            Parallel.set_jobs (-5);
            check_bool "negative -> auto >= 1" true (Parallel.jobs () >= 1);
            Parallel.set_jobs 1_000_000;
            check_bool "huge clamped" true (Parallel.jobs () <= 64))) ]

(* ---------------- kernel determinism ---------------- *)

let fr_array_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun i x -> if not (Fr.equal x b.(i)) then ok := false) a;
      !ok)

let kernel_tests =
  let st = Random.State.make [| 2024; 7 |] in
  [ Alcotest.test_case "NTT identical for jobs 1/2/4 (size 4096)" `Quick (fun () ->
        let coeffs = Array.init 4096 (fun _ -> Fr.random st) in
        let dom = D.create 4096 in
        let run j =
          with_jobs j (fun () ->
              let a = Array.copy coeffs in
              D.ntt dom a;
              D.intt dom a;
              let b = Array.copy coeffs in
              D.eval_on_coset dom (Fr.of_int 5) b;
              D.interp_from_coset dom (Fr.of_int 5) b;
              (a, b))
        in
        let a1, b1 = run 1 and a2, b2 = run 2 and a4, b4 = run 4 in
        check_bool "ntt j2" true (fr_array_equal a1 a2);
        check_bool "ntt j4" true (fr_array_equal a1 a4);
        check_bool "coset j2" true (fr_array_equal b1 b2);
        check_bool "coset j4" true (fr_array_equal b1 b4);
        (* and the round-trips really are the identity *)
        check_bool "intt . ntt = id" true (fr_array_equal coeffs a1);
        check_bool "coset round-trip = id" true (fr_array_equal coeffs b1));
    Alcotest.test_case "MSM identical for jobs 1/2/4 (n=2048)" `Quick (fun () ->
        let points = Array.init 2048 (fun _ -> G1.random st) in
        let scalars = Array.init 2048 (fun _ -> Fr.random st) in
        let run j = with_jobs j (fun () -> G1.to_bytes (Msm.msm points scalars)) in
        let r1 = run 1 in
        check_bool "j2" true (Bytes.equal r1 (run 2));
        check_bool "j4" true (Bytes.equal r1 (run 4))) ]

let qcheck_kernel_tests =
  let st = Random.State.make [| 51; 52 |] in
  let fr_arr n = QCheck.make (fun _ -> Array.init n (fun _ -> Fr.random st)) in
  [ QCheck.Test.make ~name:"qcheck: parallel NTT = sequential NTT" ~count:8
      (fr_arr 2048) (fun coeffs ->
        let dom = D.create 2048 in
        let seq = with_jobs 1 (fun () -> let a = Array.copy coeffs in D.ntt dom a; a) in
        let par = with_jobs 4 (fun () -> let a = Array.copy coeffs in D.ntt dom a; a) in
        fr_array_equal seq par);
    QCheck.Test.make ~name:"qcheck: parallel MSM = sequential MSM" ~count:5
      (fr_arr 300) (fun scalars ->
        let points = Array.map (fun s -> G1.mul_fr G1.generator s) scalars in
        let seq = with_jobs 1 (fun () -> Msm.msm points scalars) in
        let par = with_jobs 4 (fun () -> Msm.msm points scalars) in
        Bytes.equal (G1.to_bytes seq) (G1.to_bytes par)) ]

(* ---------------- end-to-end proof determinism ---------------- *)

(* squaring chain: enough constraints to cross every parallel threshold
   (NTT >= 1024, QAP rows >= 256, MSM windows, sumcheck half >= 1024) *)
let chain_circuit n =
  let b = Bld.create () in
  let x0 = Bld.alloc b (Fr.of_int 3) in
  let acc = ref (L.of_var x0) in
  for _ = 1 to n do
    acc := L.of_var (Gg.mul b !acc !acc)
  done;
  Bld.finalize b

let proof_tests =
  [ Alcotest.test_case "Groth16 proof bytes identical for jobs 1/2/4" `Slow (fun () ->
        let cs, assignment = chain_circuit 1200 in
        let qap = Groth16.Qap.create cs in
        let pk, vk = Groth16.setup (Random.State.make [| 42 |]) qap in
        let run j =
          with_jobs j (fun () ->
              let rng = Random.State.make [| 1337 |] in
              Groth16.proof_to_bytes (Groth16.prove rng pk qap assignment))
        in
        let p1 = run 1 in
        check_bool "j2" true (Bytes.equal p1 (run 2));
        check_bool "j4" true (Bytes.equal p1 (run 4));
        let proof = Groth16.proof_of_bytes_exn p1 in
        check_bool "verifies" true (Groth16.verify vk ~public_inputs:[] proof));
    Alcotest.test_case "Spartan proof identical for jobs 1/2/4" `Slow (fun () ->
        let cs, assignment = chain_circuit 2048 in
        let inst = Spartan.preprocess cs in
        let key = Spartan.setup inst in
        let run j =
          with_jobs j (fun () ->
              let rng = Random.State.make [| 1337 |] in
              (* the proof is plain data (canonical field / point reprs),
                 so structural bytes compare across job counts *)
              Marshal.to_string (Spartan.prove rng key inst assignment) [])
        in
        let p1 = run 1 in
        check_bool "j2" true (String.equal p1 (run 2));
        check_bool "j4" true (String.equal p1 (run 4));
        let proof : Spartan.proof = Marshal.from_string p1 0 in
        check_bool "verifies" true (Spartan.verify key inst ~public_inputs:[] proof)) ]

let () =
  Alcotest.run "zkvc_parallel"
    [ ("pool", pool_tests);
      ("kernel-determinism",
       kernel_tests @ List.map QCheck_alcotest.to_alcotest qcheck_kernel_tests);
      ("proof-determinism", proof_tests) ]
