(* Zkvc_obs: spans, metrics, exporters — and the contract that Api.run's
   measurement record stays consistent with the span data it is rebuilt
   from when the sink is recording. *)

module Obs = Zkvc_obs
module Span = Zkvc_obs.Span
module Metrics = Zkvc_obs.Metrics
module Json = Zkvc_obs.Json
module Export = Zkvc_obs.Export
module Flight = Zkvc_obs.Flight
module Expose = Zkvc_obs.Expose

module Fr = Zkvc_field.Fr
module Api = Zkvc.Api
module Mc = Zkvc.Matmul_circuit
module Mspec = Zkvc.Matmul_spec
module Spec = Mspec.Make (Fr)

(* the duration/ordering assertions below are timing-sensitive: the
   Sys.time default has coarse granularity and counts CPU time, so
   install a wall clock before any span is recorded *)
let () = Span.set_clock Unix.gettimeofday

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* every test starts from a clean, disabled sink *)
let fresh () =
  Obs.Sink.disable ();
  Span.reset ();
  Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* spans                                                               *)

let test_span_nesting () =
  fresh ();
  Obs.Sink.enable ();
  let r =
    Span.with_span "outer" (fun () ->
        Span.with_span "first" (fun () -> ignore (Sys.opaque_identity 1));
        Span.with_span "second" (fun () ->
            Span.with_span "inner" (fun () -> ignore (Sys.opaque_identity 2)));
        42)
  in
  Obs.Sink.disable ();
  check_int "with_span returns the thunk's value" 42 r;
  let roots = Span.roots () in
  check_int "one root" 1 (List.length roots);
  let outer = List.hd roots in
  check_string "root name" "outer" (Span.name outer);
  let kids = Span.children outer in
  Alcotest.(check (list string))
    "children in execution order" [ "first"; "second" ]
    (List.map Span.name kids);
  let second = List.nth kids 1 in
  Alcotest.(check (list string))
    "grandchild under second" [ "inner" ]
    (List.map Span.name (Span.children second));
  check_bool "find_rec locates the grandchild" true (Span.find_rec outer "inner" <> None);
  check_bool "durations are non-negative" true
    (List.for_all (fun s -> Span.duration_s s >= 0.) (outer :: kids));
  (* children are nested inside the parent's interval, so their total
     duration cannot exceed the parent's *)
  let child_sum = List.fold_left (fun acc s -> acc +. Span.duration_s s) 0. kids in
  check_bool "child durations sum within parent" true
    (child_sum <= Span.duration_s outer +. 1e-9);
  check_int "stack empty after close" 0 (Span.depth ())

let test_span_exception_closes () =
  fresh ();
  Obs.Sink.enable ();
  (try Span.with_span "boom" (fun () -> failwith "expected") with Failure _ -> ());
  Obs.Sink.disable ();
  check_int "span recorded despite exception" 1 (List.length (Span.roots ()));
  check_int "stack unwound" 0 (Span.depth ())

let test_disabled_fast_path () =
  fresh ();
  check_bool "sink starts disabled" false (Obs.Sink.is_enabled ());
  let f () = Sys.opaque_identity 7 in
  (* warm up so any one-time allocation is out of the measured window *)
  ignore (Span.with_span "warm" f);
  let q0 = (Gc.quick_stat ()).Gc.minor_words in
  for _ = 1 to 1000 do
    ignore (Span.with_span "off" f)
  done;
  let allocated = (Gc.quick_stat ()).Gc.minor_words -. q0 in
  check_int "no span records created" 0 (List.length (Span.roots ()));
  check_bool "nothing marked completed" true (Span.last_completed () = None);
  (* a span record alone is >10 words; 1000 disabled calls must stay far
     below one record per call *)
  check_bool
    (Printf.sprintf "disabled calls do not allocate span records (%.0f words/1000 calls)"
       allocated)
    true
    (allocated < 1000.)

let test_metrics_gated_by_sink () =
  fresh ();
  let c = Metrics.counter "test.gated" in
  Metrics.incr c;
  Metrics.add c 10;
  check_int "counter unchanged while disabled" 0 (Metrics.counter_value c);
  Obs.Sink.enable ();
  Metrics.incr c;
  Metrics.add c 10;
  Obs.Sink.disable ();
  check_int "counter counts while enabled" 11 (Metrics.counter_value c);
  check_bool "same name interns to same instrument" true (Metrics.counter "test.gated" == c)

let test_histogram_percentiles () =
  fresh ();
  Obs.Sink.enable ();
  let h = Metrics.histogram "test.hist" in
  (* 1..100 in scrambled order: percentiles must not depend on insertion order *)
  for i = 0 to 99 do
    Metrics.observe_int h (((i * 37) mod 100) + 1)
  done;
  Obs.Sink.disable ();
  let p x = match Metrics.percentile h x with Some v -> v | None -> Float.nan in
  check_int "count" 100 (Metrics.hist_count h);
  check_bool "sum" true (Metrics.hist_sum h = 5050.);
  check_bool "min" true (p 0. = 1.);
  check_bool "p50 (nearest rank)" true (p 50. = 50.);
  check_bool "p90" true (p 90. = 90.);
  check_bool "p99" true (p 99. = 99.);
  check_bool "max" true (p 100. = 100.);
  check_bool "empty histogram has no percentile" true
    (Metrics.percentile (Metrics.histogram "test.empty") 50. = None)

let test_histogram_reservoir_bounds () =
  fresh ();
  Obs.Sink.enable ();
  let h = Metrics.histogram "test.reservoir" in
  let n = 10_000 in
  for i = 1 to n do
    Metrics.observe_int h i
  done;
  Obs.Sink.disable ();
  check_int "count stays exact past the cap" n (Metrics.hist_count h);
  check_bool "sum stays exact past the cap" true
    (Metrics.hist_sum h = float_of_int (n * (n + 1) / 2));
  check_bool "retention bounded" true
    (Metrics.hist_retained h <= Metrics.reservoir_capacity);
  check_int "full reservoir" Metrics.reservoir_capacity (Metrics.hist_retained h);
  (* sampled percentiles stay inside the observed range and ordered *)
  let p x = Option.get (Metrics.percentile h x) in
  check_bool "percentiles within range" true (p 0. >= 1. && p 100. <= float_of_int n);
  check_bool "percentiles monotone" true (p 10. <= p 50. && p 50. <= p 90.)

let test_histogram_cache_interleaving () =
  fresh ();
  Obs.Sink.enable ();
  let h = Metrics.histogram "test.cache" in
  (* percentile reads (which build the sorted cache) interleaved with
     observations must always reflect every observation so far *)
  Metrics.observe h 5.;
  check_bool "p100 after first" true (Metrics.percentile h 100. = Some 5.);
  Metrics.observe h 9.;
  check_bool "p100 sees new max" true (Metrics.percentile h 100. = Some 9.);
  check_bool "p0 unchanged" true (Metrics.percentile h 0. = Some 5.);
  Metrics.observe h 1.;
  Obs.Sink.disable ();
  check_bool "p0 sees new min" true (Metrics.percentile h 0. = Some 1.);
  check_int "count" 3 (Metrics.hist_count h)

let test_counters_atomic_across_domains () =
  fresh ();
  Obs.Sink.enable ();
  let c = Metrics.counter "test.multicore" in
  let h = Metrics.histogram "test.multicore.hist" in
  let per_domain = 20_000 and ndomains = 4 in
  let worker () =
    for i = 1 to per_domain do
      Metrics.incr c;
      (* histogram observes serialise on an internal lock *)
      if i land 1023 = 0 then Metrics.observe_int h i
    done
  in
  let ds = List.init (ndomains - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join ds;
  Obs.Sink.disable ();
  check_int "no lost increments" (ndomains * per_domain) (Metrics.counter_value c);
  check_int "no lost observations"
    (ndomains * (per_domain / 1024))
    (Metrics.hist_count h)

(* ------------------------------------------------------------------ *)
(* json                                                                *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [ ("s", Json.String "a\"b\\c\nd\te\r\x01");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("tiny", Json.Float 0.1);
        ("t", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.List []; Json.Obj [] ]) ]
  in
  (match Json.of_string (Json.to_string v) with
   | Ok v' -> check_bool "compact round-trip" true (v = v')
   | Error e -> Alcotest.failf "compact parse failed: %s" e);
  (match Json.of_string (Json.to_string_pretty v) with
   | Ok v' -> check_bool "pretty round-trip" true (v = v')
   | Error e -> Alcotest.failf "pretty parse failed: %s" e);
  check_bool "garbage rejected" true (Result.is_error (Json.of_string "{broken"));
  check_bool "trailing data rejected" true (Result.is_error (Json.of_string "1 2"))

let test_chrome_trace_valid () =
  fresh ();
  Obs.Sink.enable ();
  Span.with_span "root" (fun () ->
      Span.with_span "child-a" (fun () -> ());
      Span.with_span "child-b" (fun () -> ()));
  Obs.Sink.disable ();
  let spans = Span.roots () in
  let text = Json.to_string (Export.to_chrome_trace spans) in
  match Json.of_string text with
  | Error e -> Alcotest.failf "chrome trace is not valid JSON: %s" e
  | Ok parsed ->
    let events =
      match Json.member "traceEvents" parsed with
      | Some l -> (match Json.to_list_opt l with Some l -> l | None -> [])
      | None -> []
    in
    check_int "one event per span" 3 (List.length events);
    List.iter
      (fun ev ->
        check_bool "event has name" true (Json.member "name" ev <> None);
        check_bool "event is a complete event" true
          (Json.member "ph" ev = Some (Json.String "X"));
        check_bool "ts is a number" true
          (Option.bind (Json.member "ts" ev) Json.to_number_opt <> None);
        check_bool "dur is a number" true
          (Option.bind (Json.member "dur" ev) Json.to_number_opt <> None))
      events;
    (* jsonl: every line parses on its own *)
    let lines =
      Export.to_jsonl spans |> String.split_on_char '\n'
      |> List.filter (fun l -> l <> "")
    in
    check_int "jsonl line per span" 3 (List.length lines);
    List.iter
      (fun line ->
        match Json.of_string line with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "jsonl line failed to parse: %s" e)
      lines

let test_span_args_and_external () =
  fresh ();
  Obs.Sink.enable ();
  Span.with_span ~args:[ ("request_id", "abcd") ] "client.request" (fun () ->
      (* a completed remote span grafted under the open one *)
      Span.add_external ~name:"server.exec" ~start_s:(Span.now ()) ~dur_s:0.5
        ~args:[ ("request_id", "abcd") ]
        ~domain:1000 ());
  (* with no span open, an external lands as its own root *)
  Span.add_external ~name:"orphan" ~start_s:(Span.now ()) ~dur_s:0.1 ();
  Obs.Sink.disable ();
  let roots = Span.roots () in
  check_int "two roots" 2 (List.length roots);
  let req = Option.get (Span.find_root "client.request") in
  check_bool "args kept" true (List.assoc_opt "request_id" (Span.args req) = Some "abcd");
  (match Span.children req with
   | [ ext ] ->
     check_string "external nested under the open span" "server.exec" (Span.name ext);
     check_int "external keeps its synthetic track" 1000 (Span.domain_id ext);
     check_bool "external duration honoured" true
       (Float.abs (Span.duration_s ext -. 0.5) < 1e-9)
   | l -> Alcotest.failf "expected one child, got %d" (List.length l));
  check_bool "orphan external is a root" true (Span.find_root "orphan" <> None);
  (* disabled sink: add_external is a no-op *)
  Span.reset ();
  Span.add_external ~name:"ghost" ~start_s:0. ~dur_s:1. ();
  check_int "no-op while disabled" 0 (List.length (Span.roots ()))

let test_chrome_trace_tid_and_args () =
  fresh ();
  Obs.Sink.enable ();
  Span.with_span ~args:[ ("request_id", "beef") ] "serve.request.prove" (fun () -> ());
  Span.add_external ~name:"server.exec" ~start_s:(Span.now ()) ~dur_s:0.25 ~domain:1000 ();
  Obs.Sink.disable ();
  let text = Json.to_string (Export.to_chrome_trace (Span.roots ())) in
  match Json.of_string text with
  | Error e -> Alcotest.failf "chrome trace is not valid JSON: %s" e
  | Ok parsed ->
    let events =
      match Option.bind (Json.member "traceEvents" parsed) Json.to_list_opt with
      | Some l -> l
      | None -> []
    in
    let find name =
      match
        List.find_opt (fun ev -> Json.member "name" ev = Some (Json.String name)) events
      with
      | Some ev -> ev
      | None -> Alcotest.failf "no %s event" name
    in
    let prove = find "serve.request.prove" in
    check_bool "tid is the recording domain" true
      (Json.member "tid" prove = Some (Json.Int (Domain.self () :> int)));
    let arg_of ev k =
      Option.bind (Json.member "args" ev) (fun a -> Json.member k a)
    in
    check_bool "request id exported as an arg" true
      (arg_of prove "request_id" = Some (Json.String "beef"));
    let ext = find "server.exec" in
    check_bool "external keeps its synthetic tid" true
      (Json.member "tid" ext = Some (Json.Int 1000))

(* ------------------------------------------------------------------ *)
(* flight ring                                                          *)

let test_flight_ring () =
  (match Flight.create ~capacity:0 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "capacity 0 must be rejected");
  let t = Flight.create ~capacity:4 in
  check_int "empty length" 0 (Flight.length t);
  check_bool "empty snapshot" true (Flight.snapshot t = []);
  Flight.record t 1;
  Flight.record t 2;
  check_int "partial fill length" 2 (Flight.length t);
  check_bool "partial snapshot oldest first" true (Flight.snapshot t = [ 1; 2 ]);
  for i = 3 to 10 do
    Flight.record t i
  done;
  check_int "total counts every record" 10 (Flight.total t);
  check_int "length saturates at capacity" 4 (Flight.length t);
  check_bool "ring keeps the last capacity, oldest first" true
    (Flight.snapshot t = [ 7; 8; 9; 10 ]);
  check_int "capacity accessor" 4 (Flight.capacity t)

let test_flight_ring_concurrent () =
  (* records from racing domains never crash the ring and never exceed
     its bounds; every surviving slot is a real record *)
  let t = Flight.create ~capacity:8 in
  let per_domain = 5_000 and ndomains = 4 in
  let worker d = for i = 1 to per_domain do Flight.record t ((d * per_domain) + i) done in
  let ds = List.init (ndomains - 1) (fun d -> Domain.spawn (fun () -> worker (d + 1))) in
  worker 0;
  List.iter Domain.join ds;
  check_int "total exact under contention" (ndomains * per_domain) (Flight.total t);
  let snap = Flight.snapshot t in
  check_bool "snapshot bounded" true (List.length snap <= 8);
  check_bool "all slots hold real records" true
    (List.for_all (fun v -> v >= 1 && v <= ndomains * per_domain) snap)

(* ------------------------------------------------------------------ *)
(* prometheus exposition                                                *)

let test_expose_render_parse () =
  fresh ();
  Obs.Sink.enable ();
  let c = Metrics.counter "serve.requests" in
  Metrics.add c 7;
  Metrics.set (Metrics.gauge "serve.queue.depth") 3.;
  let h = Metrics.histogram "serve.queue.wait_s" in
  List.iter (Metrics.observe h) [ 0.1; 0.2; 0.3; 0.4 ];
  Obs.Sink.disable ();
  let text = Expose.render () in
  match Expose.parse text with
  | Error e -> Alcotest.failf "rendered text does not parse: %s" e
  | Ok samples ->
    let value ?quantile metric =
      List.find_map
        (fun s ->
          if
            s.Expose.metric = metric
            && List.assoc_opt "quantile" s.Expose.labels = quantile
          then Some s.Expose.value
          else None)
        samples
    in
    check_bool "counter exposed with _total" true
      (value "zkvc_serve_requests_total" = Some 7.);
    check_bool "gauge exposed" true (value "zkvc_serve_queue_depth" = Some 3.);
    check_bool "summary count" true (value "zkvc_serve_queue_wait_s_count" = Some 4.);
    check_bool "summary sum" true
      (match value "zkvc_serve_queue_wait_s_sum" with
       | Some v -> Float.abs (v -. 1.0) < 1e-9
       | None -> false);
    check_bool "median quantile exposed" true
      (match value ~quantile:"0.5" "zkvc_serve_queue_wait_s" with
       | Some v -> v >= 0.1 && v <= 0.4
       | None -> false)

let expose_qcheck =
  (* whatever instruments exist, render output always re-parses and
     every float survives the text round trip exactly *)
  QCheck.Test.make ~count:30 ~name:"render/parse round-trips"
    QCheck.(
      small_list
        (pair (pair small_nat bool)
           (small_list (make Gen.(float_bound_inclusive 1000.)))))
    (fun specs ->
      Obs.Sink.disable ();
      Span.reset ();
      Metrics.reset ();
      Obs.Sink.enable ();
      List.iteri
        (fun i ((n, as_gauge), obs) ->
          let name = Printf.sprintf "q.test-%d.%d!" i n in
          if as_gauge then Metrics.set (Metrics.gauge name) (float_of_int n)
          else begin
            let h = Metrics.histogram name in
            List.iter (Metrics.observe h) obs
          end)
        specs;
      Obs.Sink.disable ();
      match Expose.parse (Expose.render ()) with
      | Ok _ -> true
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e)

let test_expose_parse_rejects () =
  List.iter
    (fun bad ->
      match Expose.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" bad)
    [ "metric"; (* no value *)
      "metric notanumber\n";
      "{\"oops\"} 1\n"; (* no metric name *)
      "metric{unclosed=\"x\" 1\n" ];
  (* valid corner cases *)
  List.iter
    (fun good ->
      match Expose.parse good with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "rejected %S: %s" good e)
    [ ""; "# just a comment\n"; "m 1\n"; "m{a=\"b\",c=\"d\\\"e\"} 2.5 1699999999\n" ]

(* ------------------------------------------------------------------ *)
(* Api.run measurement consistency (both backends)                      *)

let run_backend_consistency backend prove_root =
  fresh ();
  let rng = Random.State.make [| 7 |] in
  let d = Mspec.dims ~a:2 ~n:4 ~b:2 in
  let x = Spec.random_matrix rng ~rows:d.Mspec.a ~cols:d.Mspec.n ~bound:64 in
  let w = Spec.random_matrix rng ~rows:d.Mspec.n ~cols:d.Mspec.b ~bound:64 in
  Obs.Sink.enable ();
  let _proof, m = Api.run ~rng backend Mc.Crpc_psq ~x ~w d in
  Obs.Sink.disable ();
  let span =
    match Span.find_root prove_root with
    | Some s -> s
    | None -> Alcotest.failf "missing %s root span" prove_root
  in
  (* the measurement's prove time is rebuilt from exactly this span *)
  check_bool "prove_s equals the prove span duration" true
    (Float.abs (m.Api.timings.Api.prove_s -. Span.duration_s span) < 1e-9);
  (* and the phase children partition (a subset of) it: no double counting *)
  let children = Span.children span in
  check_bool "prove span has phase children" true (children <> []);
  let child_sum = List.fold_left (fun acc c -> acc +. Span.duration_s c) 0. children in
  check_bool "child phases sum to at most prove_s" true
    (child_sum <= m.Api.timings.Api.prove_s +. 1e-9);
  (* field multiplications were counted while proving *)
  check_bool "field.mont_mul counted" true
    (Metrics.counter_value (Metrics.counter "field.mont_mul") > 0)

let test_api_groth16_consistency () =
  run_backend_consistency Api.Backend_groth16 "groth16.prove";
  (* the acceptance-criteria phases: all five MSMs appear under prove *)
  let span = Option.get (Span.find_root "groth16.prove") in
  let names = List.map Span.name (Span.children span) in
  List.iter
    (fun phase -> check_bool ("phase " ^ phase) true (List.mem phase names))
    [ "prove.h_coeffs"; "prove.msm_a"; "prove.msm_b_g2"; "prove.msm_b_g1";
      "prove.msm_l"; "prove.msm_h" ]

let test_api_spartan_consistency () =
  run_backend_consistency Api.Backend_spartan "spartan.prove";
  let span = Option.get (Span.find_root "spartan.prove") in
  (* per-sumcheck-round spans are nested under the sumcheck phases *)
  check_bool "sc1 round spans" true (Span.find_rec span "sc1.round1" <> None);
  check_bool "sc2 round spans" true (Span.find_rec span "sc2.round1" <> None);
  check_bool "sumcheck rounds counted" true
    (Metrics.counter_value (Metrics.counter "sumcheck.rounds") > 0)

let test_disabled_run_records_nothing () =
  fresh ();
  let rng = Random.State.make [| 8 |] in
  let d = Mspec.dims ~a:2 ~n:2 ~b:2 in
  let x = Spec.random_matrix rng ~rows:2 ~cols:2 ~bound:64 in
  let w = Spec.random_matrix rng ~rows:2 ~cols:2 ~bound:64 in
  let _proof, m = Api.run ~rng Api.Backend_spartan Mc.Vanilla ~x ~w d in
  check_bool "timings still measured" true (m.Api.timings.Api.prove_s >= 0.);
  check_int "no spans recorded" 0 (List.length (Span.roots ()));
  check_int "no field mults counted" 0
    (Metrics.counter_value (Metrics.counter "field.mont_mul"))

let () =
  Alcotest.run "obs"
    [ ( "span",
        [ Alcotest.test_case "nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "exception closes span" `Quick test_span_exception_closes;
          Alcotest.test_case "disabled fast path" `Quick test_disabled_fast_path;
          Alcotest.test_case "args and external grafting" `Quick
            test_span_args_and_external ] );
      ( "flight",
        [ Alcotest.test_case "ring overwrite semantics" `Quick test_flight_ring;
          Alcotest.test_case "concurrent records stay bounded" `Quick
            test_flight_ring_concurrent ] );
      ( "expose",
        [ Alcotest.test_case "render and re-parse" `Quick test_expose_render_parse;
          QCheck_alcotest.to_alcotest expose_qcheck;
          Alcotest.test_case "parser rejects malformed lines" `Quick
            test_expose_parse_rejects ] );
      ( "metrics",
        [ Alcotest.test_case "sink gating" `Quick test_metrics_gated_by_sink;
          Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "reservoir bounds retention" `Quick
            test_histogram_reservoir_bounds;
          Alcotest.test_case "sorted cache tracks observations" `Quick
            test_histogram_cache_interleaving;
          Alcotest.test_case "counters atomic across domains" `Quick
            test_counters_atomic_across_domains ] );
      ( "export",
        [ Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "chrome trace valid json" `Quick test_chrome_trace_valid;
          Alcotest.test_case "chrome trace tid and args" `Quick
            test_chrome_trace_tid_and_args ] );
      ( "api",
        [ Alcotest.test_case "groth16 timings from spans" `Quick test_api_groth16_consistency;
          Alcotest.test_case "spartan timings from spans" `Quick test_api_spartan_consistency;
          Alcotest.test_case "disabled run records nothing" `Quick
            test_disabled_run_records_nothing ] ) ]
