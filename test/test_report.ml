(* The perf-trajectory substrate: Stats invariants (qcheck), exact
   Report JSON round-trips (including the committed baseline when run
   from the repo root), and Diff verdicts on synthetic report pairs. *)

module Stats = Zkvc_obs.Stats
module Report = Zkvc_obs.Report
module Diff = Zkvc_obs.Diff
module Json = Zkvc_obs.Json
module Attrib = Zkvc_obs.Attrib

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Stats (qcheck)                                                      *)

let sample_gen =
  (* non-empty arrays of small positive dyadic rationals (k / 2^20,
     k < 2^24): shaped like timing samples, but every Stats operation —
     including translation by 1024 — stays exact in double precision, so
     the invariants below can use [=] instead of a tolerance *)
  QCheck.(
    array_of_size
      Gen.(int_range 1 40)
      (map (fun k -> float_of_int k /. 1048576.) (int_bound 16_777_215)))

let shuffle rng xs =
  let a = Array.copy xs in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let qcheck_stats =
  let rng = Random.State.make [| 0x57a7 |] in
  [ QCheck.Test.make ~count:200 ~name:"median and MAD invariant under permutation"
      sample_gen (fun xs ->
        let p = shuffle rng xs in
        Stats.median xs = Stats.median p && Stats.mad xs = Stats.mad p);
    QCheck.Test.make ~count:200 ~name:"median bounded by sample range" sample_gen (fun xs ->
        let m = Stats.median xs in
        Stats.minimum xs <= m && m <= Stats.maximum xs);
    QCheck.Test.make ~count:200 ~name:"duplicating every sample preserves the median"
      sample_gen (fun xs ->
        Stats.median (Array.append xs xs) = Stats.median xs);
    QCheck.Test.make ~count:200 ~name:"MAD non-negative and zero for constant samples"
      sample_gen (fun xs ->
        Stats.mad xs >= 0.
        && Stats.mad (Array.make (Array.length xs) xs.(0)) = 0.);
    QCheck.Test.make ~count:200 ~name:"MAD invariant under translation" sample_gen
      (fun xs ->
        let shifted = Array.map (fun x -> x +. 1024.) xs in
        Stats.mad shifted = Stats.mad xs);
    QCheck.Test.make ~count:200 ~name:"noise band monotone in k and zero at k=0"
      sample_gen (fun xs ->
        Stats.noise_band ~k:0. xs = 0.
        && Stats.noise_band ~k:2. xs <= Stats.noise_band ~k:4. xs
        && Stats.noise_band ~k:4. xs <= Stats.noise_band ~k:8. xs) ]

let test_stats_known_values () =
  check_bool "median of odd sample" true (Stats.median [| 3.; 1.; 2. |] = 2.);
  check_bool "median of even sample averages the middle pair" true
    (Stats.median [| 4.; 1.; 3.; 2. |] = 2.5);
  check_bool "mad of 1..5" true (Stats.mad [| 1.; 2.; 3.; 4.; 5. |] = 1.);
  check_bool "single sample: mad 0" true (Stats.mad [| 7. |] = 0.);
  Alcotest.check_raises "empty sample rejected" (Invalid_argument "Stats.median: empty sample")
    (fun () -> ignore (Stats.median [||]))

(* ------------------------------------------------------------------ *)
(* Report round-trip                                                   *)

let env =
  { Report.git_rev = "deadbeef";
    ocaml_version = Sys.ocaml_version;
    nproc = 1;
    jobs = 1;
    scale = 16;
    full = false;
    clock = "monotonic";
    date = "2026-08-05T00:00:00Z" }

let ledger ?(constraints = 120) ?(nonzero_a = 192) () =
  { Report.constraints;
    variables = 165;
    nonzero_a;
    nonzero_b = 120;
    nonzero_c = 120;
    witness = 140;
    top_heap_words = 2_000_000;
    major_collections = 2 }

let meas ?regions ?(scheme = "zkVC-G") ?(strategy = "crpc+psq") ?(prove = [ 0.061; 0.063; 0.059 ])
    ?(ledger = ledger ()) () =
  Report.summarize ?regions ~section:"tab2" ~scheme ~strategy ~backend:"groth16" ~dims:(3, 4, 8)
    ~reps:
      (List.map (fun p -> { Report.setup_s = 0.44; prove_s = p; verify_s = 0.57 }) prove)
    ~proof_bytes:256 ~ledger ()

let report ms = { Report.env; sections = [ "tab2" ]; measurements = ms }

(* A small two-level region tree; [matmul_c] perturbs one leaf to model
   a structural (per-region) cost change. *)
let region_tree ?(matmul_c = 96) () =
  let c ~constraints ~nnz =
    { Attrib.constraints; variables = constraints; nnz_a = nnz; nnz_b = nnz; nnz_c = nnz }
  in
  Attrib.make ~name:"all" ~self:(c ~constraints:0 ~nnz:0)
    [ Attrib.make ~name:"matmul" ~self:(c ~constraints:0 ~nnz:0)
        [ Attrib.make ~name:"crpc+psq" ~self:(c ~constraints:matmul_c ~nnz:(2 * matmul_c)) [] ];
      Attrib.make ~name:"softmax" ~self:(c ~constraints:24 ~nnz:60) [] ]

let test_report_roundtrip () =
  let r = report [ meas (); meas ~strategy:"vanilla" ~prove:[ 0.139 ] () ] in
  (match Report.of_json (Report.to_json r) with
   | Ok r' -> check_bool "of_json (to_json r) = r" true (r = r')
   | Error e -> Alcotest.failf "round-trip failed: %s" e);
  (* through text, both renderings *)
  (match Report.of_string (Json.to_string (Report.to_json r)) with
   | Ok r' -> check_bool "compact text round-trip" true (r = r')
   | Error e -> Alcotest.failf "compact text round-trip failed: %s" e);
  (match Report.of_string (Json.to_string_pretty (Report.to_json r)) with
   | Ok r' -> check_bool "pretty text round-trip" true (r = r')
   | Error e -> Alcotest.failf "pretty text round-trip failed: %s" e);
  check_bool "wrong schema rejected" true
    (Result.is_error (Report.of_string {|{"schema":"zkvc-bench/1"}|}));
  check_bool "missing field rejected" true
    (Result.is_error
       (Report.of_json
          (Json.Obj [ ("schema", Json.String Report.schema); ("sections", Json.List []) ])))

let test_report_regions_roundtrip () =
  (* a profiled measurement (regions attached) round-trips exactly,
     including the full tree *)
  let r = report [ meas ~regions:(region_tree ()) (); meas ~strategy:"vanilla" () ] in
  (match Report.of_string (Json.to_string (Report.to_json r)) with
   | Ok r' -> check_bool "v3 with regions round-trips" true (r = r')
   | Error e -> Alcotest.failf "v3 round-trip failed: %s" e);
  check_bool "writer stamps the v3 schema" true
    (Json.member "schema" (Report.to_json r) = Some (Json.String "zkvc-bench/3"))

let test_report_reads_v2 () =
  (* a v2 report (previous schema, no region blocks) must keep parsing:
     committed baselines outlive schema bumps *)
  let r = report [ meas () ] in
  let v2_json =
    (* rewrite the schema stamp; the body of a non-profiled report is
       identical between v2 and v3 *)
    match Report.to_json r with
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (function
             | "schema", _ -> ("schema", Json.String "zkvc-bench/2")
             | f -> f)
           fields)
    | j -> j
  in
  match Report.of_string (Json.to_string v2_json) with
  | Ok r' ->
    check_bool "v2 text parses" true (r = r');
    check_bool "regions absent" true
      (List.for_all (fun m -> m.Report.regions = None) r'.Report.measurements)
  | Error e -> Alcotest.failf "v2 report rejected: %s" e

let test_summarize () =
  (* binary-exact sample values so the expected median/MAD are exact *)
  let m = meas ~prove:[ 0.25; 1.0; 0.5 ] () in
  check_bool "prove_s is the median" true (m.Report.prove_s = 0.5);
  check_bool "prove MAD" true (m.Report.prove_mad_s = 0.25);
  check_int "reps kept" 3 (List.length m.Report.reps);
  check_bool "key" true
    (Report.key m = "tab2/zkVC-G/crpc+psq/groth16/3x4x8")

(* The committed perf baseline must stay readable and carry the paper's
   Table II mechanism: CRPC+PSQ strictly below vanilla groth16 in
   constraints and A/B-column nonzeros at the same dims. Skipped when the
   test does not run from the repository root (dune runtest does). *)
let test_committed_baseline () =
  let path = "../BENCH_0003.json" in
  let path = if Sys.file_exists path then path else "BENCH_0003.json" in
  if not (Sys.file_exists path) then ()
  else begin
    let ic = open_in_bin path in
    let text =
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          really_input_string ic (in_channel_length ic))
    in
    match Report.of_string text with
    | Error e -> Alcotest.failf "BENCH_0003.json unreadable: %s" e
    | Ok r ->
      (match Report.of_json (Report.to_json r) with
       | Ok r' -> check_bool "baseline round-trips exactly" true (r = r')
       | Error e -> Alcotest.failf "baseline re-parse failed: %s" e);
      let find strategy =
        List.find
          (fun m ->
            m.Report.section = "tab2" && m.Report.backend = "groth16"
            && m.Report.strategy = strategy)
          r.Report.measurements
      in
      let vanilla = (find "vanilla").Report.ledger
      and zkvc = (find "crpc+psq").Report.ledger in
      check_bool "CRPC+PSQ has strictly fewer constraints" true
        (zkvc.Report.constraints < vanilla.Report.constraints);
      check_bool "CRPC+PSQ has strictly fewer A-column nonzeros" true
        (zkvc.Report.nonzero_a < vanilla.Report.nonzero_a);
      check_bool "CRPC+PSQ has strictly fewer B-column nonzeros" true
        (zkvc.Report.nonzero_b < vanilla.Report.nonzero_b)
  end

(* The current baseline is region-profiled (zkvc-bench/3): every
   measurement must carry a provenance tree whose attributed constraint
   total equals the global ledger's — the self-consistency the profiler
   CLI also asserts at run time. *)
let test_committed_baseline_0008 () =
  let path = "../BENCH_0008.json" in
  let path = if Sys.file_exists path then path else "BENCH_0008.json" in
  if not (Sys.file_exists path) then ()
  else begin
    let ic = open_in_bin path in
    let text =
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          really_input_string ic (in_channel_length ic))
    in
    match Report.of_string text with
    | Error e -> Alcotest.failf "BENCH_0008.json unreadable: %s" e
    | Ok r ->
      (match Report.of_json (Report.to_json r) with
       | Ok r' -> check_bool "baseline round-trips exactly" true (r = r')
       | Error e -> Alcotest.failf "baseline re-parse failed: %s" e);
      List.iter
        (fun m ->
          match m.Report.regions with
          | None -> Alcotest.failf "measurement %s carries no region tree" (Report.key m)
          | Some tree ->
            check_int
              (Report.key m ^ ": region constraints sum to the ledger")
              m.Report.ledger.Report.constraints
              (Attrib.total tree).Attrib.constraints;
            check_bool
              (Report.key m ^ ": timing stripped for determinism")
              true
              (Attrib.strip_timing tree = tree))
        r.Report.measurements
  end

(* ------------------------------------------------------------------ *)
(* Diff verdicts on synthetic report pairs                             *)

let diff ?check_time old_ms new_ms =
  Diff.compare_reports ?check_time ~old_:(report old_ms) ~new_:(report new_ms) ()

let only_verdict r =
  match r.Diff.entries with
  | [ e ] -> e.Diff.verdict
  | es -> Alcotest.failf "expected one entry, got %d" (List.length es)

let test_diff_within_noise () =
  (* +3% wobble, well inside the 25% threshold band *)
  let r = diff [ meas ~prove:[ 0.100; 0.102; 0.098 ] () ] [ meas ~prove:[ 0.103; 0.104; 0.102 ] () ] in
  check_bool "ok" true r.Diff.ok;
  check_bool "within noise" true (only_verdict r = Diff.Ok_within_noise)

let test_diff_regression_beyond_band () =
  let r = diff [ meas ~prove:[ 0.100; 0.101; 0.099 ] () ] [ meas ~prove:[ 0.200; 0.201; 0.199 ] () ] in
  check_bool "gate fails" false r.Diff.ok;
  check_int "one regression" 1 r.Diff.regressions;
  check_bool "verdict" true (only_verdict r = Diff.Regressed)

let test_diff_improvement () =
  let r = diff [ meas ~prove:[ 0.200 ] () ] [ meas ~prove:[ 0.100 ] () ] in
  check_bool "gate passes" true r.Diff.ok;
  check_bool "verdict" true (only_verdict r = Diff.Improved)

let test_diff_noisy_baseline_widens_band () =
  (* the baseline itself wobbles ±30%: its MAD dominates the threshold,
     so a +40% median move is still attributed to noise *)
  let old_m = meas ~prove:[ 0.070; 0.100; 0.130 ] () in
  let new_m = meas ~prove:[ 0.140; 0.139; 0.141 ] () in
  let r = diff [ old_m ] [ new_m ] in
  check_bool "noisy baseline does not gate" true r.Diff.ok;
  (* the same move against a quiet baseline does *)
  let quiet = meas ~prove:[ 0.099; 0.100; 0.101 ] () in
  let r' = diff [ quiet ] [ new_m ] in
  check_bool "quiet baseline gates" false r'.Diff.ok

let test_diff_ledger_drift () =
  let r =
    diff
      [ meas ~ledger:(ledger ~constraints:120 ()) () ]
      [ meas ~ledger:(ledger ~constraints:121 ()) () ]
  in
  check_bool "drift fails the gate" false r.Diff.ok;
  check_int "one drift" 1 r.Diff.drifts;
  check_bool "verdict" true (only_verdict r = Diff.Ledger_drift);
  (* drift still fails with the wall-time comparison skipped, and a pure
     2x slowdown passes under --skip-time *)
  let r' =
    diff ~check_time:false
      [ meas ~ledger:(ledger ~constraints:120 ()) () ]
      [ meas ~ledger:(ledger ~constraints:121 ()) () ]
  in
  check_bool "drift gates even with check_time=false" false r'.Diff.ok;
  let r'' = diff ~check_time:false [ meas ~prove:[ 0.1 ] () ] [ meas ~prove:[ 0.2 ] () ] in
  check_bool "slowdown ignored with check_time=false" true r''.Diff.ok

let test_diff_region_drift () =
  (* same global ledger, but one region's structural counts moved: the
     region tree localises a drift the global ledger can't see *)
  let r =
    diff
      [ meas ~regions:(region_tree ~matmul_c:96 ()) () ]
      [ meas ~regions:(region_tree ~matmul_c:95 ()) () ]
  in
  check_bool "region drift fails the gate" false r.Diff.ok;
  check_int "counted as a ledger drift" 1 r.Diff.drifts;
  check_bool "verdict" true (only_verdict r = Diff.Ledger_drift);
  let notes = match r.Diff.entries with [ e ] -> e.Diff.notes | _ -> [] in
  check_bool "note names the owning region" true
    (List.exists
       (fun n ->
         (* substring check: the note carries the region path *)
         let sub = "matmul" in
         let rec find i =
           i + String.length sub <= String.length n
           && (String.sub n i (String.length sub) = sub || find (i + 1))
         in
         find 0)
       notes);
  (* identical trees do not gate; a v2 baseline against a profiled run
     skips the region comparison instead of failing *)
  let same =
    diff [ meas ~regions:(region_tree ()) () ] [ meas ~regions:(region_tree ()) () ]
  in
  check_bool "identical trees pass" true same.Diff.ok;
  let skewed = diff [ meas () ] [ meas ~regions:(region_tree ()) () ] in
  check_bool "missing baseline tree does not gate" true skewed.Diff.ok

let test_diff_key_mismatch_reports_but_does_not_gate () =
  let r = diff [ meas () ] [ meas ~strategy:"vanilla" () ] in
  check_bool "missing/new keys do not gate" true r.Diff.ok;
  check_int "two entries" 2 (List.length r.Diff.entries);
  check_bool "old key reported" true
    (List.exists (fun e -> e.Diff.verdict = Diff.Only_old) r.Diff.entries);
  check_bool "new key reported" true
    (List.exists (fun e -> e.Diff.verdict = Diff.Only_new) r.Diff.entries)

let test_diff_json_verdict_parses () =
  let r = diff [ meas () ] [ meas () ] in
  let text = Json.to_string (Diff.result_to_json r) in
  match Json.of_string text with
  | Error e -> Alcotest.failf "verdict JSON invalid: %s" e
  | Ok v ->
    check_bool "ok flag" true (Json.member "ok" v = Some (Json.Bool true));
    check_bool "entries listed" true
      (match Option.bind (Json.member "entries" v) Json.to_list_opt with
       | Some [ _ ] -> true
       | _ -> false)

let () =
  Alcotest.run "report"
    [ ( "stats",
        Alcotest.test_case "known values" `Quick test_stats_known_values
        :: List.map QCheck_alcotest.(to_alcotest) qcheck_stats );
      ( "report",
        [ Alcotest.test_case "json round-trip" `Quick test_report_roundtrip;
          Alcotest.test_case "regions round-trip (zkvc-bench/3)" `Quick
            test_report_regions_roundtrip;
          Alcotest.test_case "v2 reports still parse" `Quick test_report_reads_v2;
          Alcotest.test_case "summarize medians and MAD" `Quick test_summarize;
          Alcotest.test_case "committed baseline BENCH_0003" `Quick test_committed_baseline;
          Alcotest.test_case "committed baseline BENCH_0008" `Quick
            test_committed_baseline_0008 ] );
      ( "diff",
        [ Alcotest.test_case "within noise" `Quick test_diff_within_noise;
          Alcotest.test_case "regression beyond band" `Quick test_diff_regression_beyond_band;
          Alcotest.test_case "improvement" `Quick test_diff_improvement;
          Alcotest.test_case "noisy baseline widens band" `Quick
            test_diff_noisy_baseline_widens_band;
          Alcotest.test_case "ledger drift" `Quick test_diff_ledger_drift;
          Alcotest.test_case "region drift" `Quick test_diff_region_drift;
          Alcotest.test_case "key mismatch reports, does not gate" `Quick
            test_diff_key_mismatch_reports_but_does_not_gate;
          Alcotest.test_case "json verdict parses" `Quick test_diff_json_verdict_parses ] ) ]
