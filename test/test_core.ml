(* zkVC core: CRPC / PSQ matmul circuits and the non-linear gadgets. *)

module Mspec = Zkvc.Matmul_spec
module Mcirc = Zkvc.Matmul_circuit
module Nl = Zkvc.Nonlinear

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module Make_suite (F : Zkvc_field.Field_intf.S) (Name : sig
  val name : string
end) =
struct
  module Mc = Mcirc.Make (F)
  module Spec = Mspec.Make (F)
  module Bld = Zkvc_r1cs.Builder.Make (F)
  module Cs = Zkvc_r1cs.Constraint_system.Make (F)
  module Lc = Zkvc_r1cs.Lc.Make (F)
  module NlG = Nl.Make (F)

  let st = Random.State.make [| 41; 42 |]
  let n s = Name.name ^ " " ^ s

  let build_and_check strategy d =
    let x = Spec.random_matrix st ~rows:d.Mspec.a ~cols:d.Mspec.n ~bound:100 in
    let w = Spec.random_matrix st ~rows:d.Mspec.n ~cols:d.Mspec.b ~bound:100 in
    let y = Spec.multiply x w in
    let challenge =
      if Mcirc.uses_challenge strategy then Some (Mc.derive_challenge ~x ~w ~y)
      else None
    in
    let b = Bld.create () in
    let wires, y' = Mc.build b strategy ?challenge ~x ~w d in
    let cs, assignment = Bld.finalize b in
    Cs.check_satisfied cs assignment;
    (cs, assignment, wires, x, w, y, y')

  let dims_list = [ Mspec.dims ~a:2 ~n:3 ~b:2; Mspec.dims ~a:3 ~n:4 ~b:5; Mspec.dims ~a:1 ~n:1 ~b:1; Mspec.dims ~a:4 ~n:8 ~b:4 ]

  let test_all_strategies_satisfied () =
    List.iter
      (fun strategy ->
        List.iter
          (fun d ->
            let _ = build_and_check strategy d in
            ())
          dims_list)
      Mcirc.all_strategies

  let test_constraint_counts () =
    List.iter
      (fun strategy ->
        List.iter
          (fun d ->
            let cs, _, _, _, _, _, _ = build_and_check strategy d in
            check_int
              (n (Printf.sprintf "%s %s" (Mcirc.strategy_name strategy)
                    (Format.asprintf "%a" Mspec.pp_dims d)))
              (Mcirc.expected_constraints strategy d)
              (Cs.num_constraints cs))
          dims_list)
      Mcirc.all_strategies

  let test_crpc_fewer_constraints () =
    let d = Mspec.dims ~a:4 ~n:8 ~b:4 in
    let counts =
      List.map
        (fun s ->
          let cs, _, _, _, _, _, _ = build_and_check s d in
          (s, Cs.num_constraints cs))
        Mcirc.all_strategies
    in
    let get s = List.assoc s counts in
    check_bool (n "crpc << vanilla") true (get Mcirc.Crpc < get Mcirc.Vanilla / 10);
    check_bool (n "psq trims vanilla") true (get Mcirc.Vanilla_psq < get Mcirc.Vanilla);
    check_bool (n "crpc+psq smallest") true
      (List.for_all (fun (_, c) -> get Mcirc.Crpc_psq <= c) counts)

  let test_psq_reduces_variables_and_left_wires () =
    let d = Mspec.dims ~a:4 ~n:8 ~b:4 in
    let stats s =
      let cs, _, _, _, _, _, _ = build_and_check s d in
      Cs.stats cs
    in
    let vanilla = stats Mcirc.Vanilla and vpsq = stats Mcirc.Vanilla_psq in
    check_bool (n "psq fewer variables") true (vpsq.Cs.variables < vanilla.Cs.variables);
    check_bool (n "psq fewer left wires") true (vpsq.Cs.nonzero_a < vanilla.Cs.nonzero_a);
    let crpc = stats Mcirc.Crpc and cpsq = stats Mcirc.Crpc_psq in
    check_bool (n "crpc+psq fewer variables than crpc") true
      (cpsq.Cs.variables < crpc.Cs.variables)

  (* soundness: a wrong Y must be caught by every strategy (for CRPC, at a
     fresh honest challenge, i.e. the Fiat–Shamir binding) *)
  let test_wrong_output_unsatisfiable () =
    let d = Mspec.dims ~a:3 ~n:4 ~b:3 in
    List.iter
      (fun strategy ->
        let x = Spec.random_matrix st ~rows:3 ~cols:4 ~bound:50 in
        let w = Spec.random_matrix st ~rows:4 ~cols:3 ~bound:50 in
        let y = Spec.multiply x w in
        (* corrupt one output, then rerun the honest pipeline: the honest
           challenge is derived from the corrupted y *)
        let y_bad = Array.map Array.copy y in
        y_bad.(1).(2) <- F.add y_bad.(1).(2) F.one;
        let challenge =
          if Mcirc.uses_challenge strategy then
            Some (Mc.derive_challenge ~x ~w ~y:y_bad)
          else None
        in
        let b = Bld.create () in
        let wires, _ = Mc.build b strategy ?challenge ~x ~w d in
        (* overwrite the y wires' assignment with the corrupted values:
           rebuild manually by constructing a raw assignment *)
        let cs, assignment = Bld.finalize b in
        (* find the y wire positions: they are inputs (y_public default) *)
        let bad = Array.copy assignment in
        (* y wires were allocated as inputs in row-major order after x, w *)
        ignore wires;
        let ni = Cs.num_inputs cs in
        check_int (n "y are the only inputs") (3 * 3) ni;
        (* corrupt the same coordinate (row 1, col 2 → index 1*3+2) *)
        bad.(1 + (1 * 3) + 2) <- F.add bad.(1 + (1 * 3) + 2) F.one;
        check_bool
          (n (Mcirc.strategy_name strategy ^ " detects wrong y"))
          false (Cs.is_satisfied cs bad))
      Mcirc.all_strategies

  (* CRPC-specific: the polynomial identity must hold for EVERY challenge
     when Y is correct (exactness of the encoding, not just w.h.p.) *)
  let test_crpc_identity_exact () =
    let d = Mspec.dims ~a:3 ~n:5 ~b:4 in
    let x = Spec.random_matrix st ~rows:3 ~cols:5 ~bound:100 in
    let w = Spec.random_matrix st ~rows:5 ~cols:4 ~bound:100 in
    for _ = 1 to 10 do
      let challenge = F.random st in
      let b = Bld.create () in
      let _ = Mc.build b Mcirc.Crpc_psq ~challenge ~x ~w d in
      let cs, assignment = Bld.finalize b in
      Cs.check_satisfied cs assignment
    done

  (* ---- nonlinear gadgets ---- *)

  let cfg = Nl.default_config

  let test_exp_reference_accuracy () =
    let s = float_of_int (Nl.scale cfg) in
    List.iter
      (fun v ->
        let d = int_of_float (v *. s) in
        let approx = float_of_int (Nl.Reference.exp_neg cfg d) /. s in
        let exact = exp (-.v) in
        check_bool
          (n (Printf.sprintf "exp(-%.2f): |%.4f - %.4f| small" v approx exact))
          true
          (abs_float (approx -. exact) < 0.03))
      [ 0.0; 0.1; 0.5; 1.0; 2.0; 3.0; 5.0; 7.9; 8.5; 20.0 ]

  let test_exp_gadget_matches_reference () =
    List.iter
      (fun d ->
        let b = Bld.create () in
        let x = Bld.alloc b (F.of_int d) in
        let e = NlG.exp_neg b cfg (Lc.of_var x) in
        let got = Bld.value b e in
        check_bool
          (n (Printf.sprintf "exp gadget d=%d" d))
          true
          (F.equal got (F.of_int (Nl.Reference.exp_neg cfg d)));
        let cs, assignment = Bld.finalize b in
        Cs.check_satisfied cs assignment)
      [ 0; 1; 17; 255; 256; 1000; 2047; 2048; 4000; 65535 ]

  let test_softmax_gadget () =
    let xs_vals = [ 700; 512; 256; 640; 0 ] in
    let b = Bld.create () in
    let xs = List.map (fun v -> Bld.alloc b (F.of_int v)) xs_vals in
    let ys = NlG.softmax b cfg xs in
    let cs, assignment = Bld.finalize b in
    Cs.check_satisfied cs assignment;
    let got = List.map (fun y -> Bld.value b y) ys in
    let expect = Nl.Reference.softmax cfg (Array.of_list xs_vals) in
    List.iteri
      (fun i g ->
        check_bool (n (Printf.sprintf "softmax[%d]" i)) true (F.equal g (F.of_int expect.(i))))
      got;
    (* probabilities sum to ~1 (within quantization) *)
    let total = Array.fold_left ( + ) 0 expect in
    check_bool (n "sums to ~S") true (abs (total - Nl.scale cfg) < List.length xs_vals * 2)

  let test_gelu_gadget () =
    List.iter
      (fun v ->
        let b = Bld.create () in
        let x = Bld.alloc b (F.of_int v) in
        let y = NlG.gelu b cfg x in
        let cs, assignment = Bld.finalize b in
        Cs.check_satisfied cs assignment;
        check_bool
          (n (Printf.sprintf "gelu(%d)" v))
          true
          (F.equal (Bld.value b y) (F.of_int (Nl.Reference.gelu cfg v))))
      [ 0; 1; 128; 256; 1000 ]

  let prop_random_dims =
    let dims_gen st =
      Mspec.dims
        ~a:(1 + Random.State.int st 5)
        ~n:(1 + Random.State.int st 6)
        ~b:(1 + Random.State.int st 5)
    in
    let arb =
      QCheck.make
        ~print:(Format.asprintf "%a" Mspec.pp_dims)
        (fun st -> dims_gen st)
    in
    QCheck.Test.make ~name:(n "random dims: all strategies satisfiable + counts exact")
      ~count:30 arb (fun d ->
        List.for_all
          (fun strategy ->
            let cs, _, _, _, _, _, _ = build_and_check strategy d in
            Cs.num_constraints cs = Mcirc.expected_constraints strategy d)
          Mcirc.all_strategies)

  let suite =
    ( Name.name,
      [ QCheck_alcotest.to_alcotest prop_random_dims;
        Alcotest.test_case (n "all strategies satisfiable") `Quick test_all_strategies_satisfied;
        Alcotest.test_case (n "constraint count formulas") `Quick test_constraint_counts;
        Alcotest.test_case (n "crpc reduces constraints") `Quick test_crpc_fewer_constraints;
        Alcotest.test_case (n "psq reduces variables/left wires") `Quick
          test_psq_reduces_variables_and_left_wires;
        Alcotest.test_case (n "wrong output rejected") `Quick test_wrong_output_unsatisfiable;
        Alcotest.test_case (n "crpc identity exact") `Quick test_crpc_identity_exact;
        Alcotest.test_case (n "exp reference accuracy") `Quick test_exp_reference_accuracy;
        Alcotest.test_case (n "exp gadget = reference") `Quick test_exp_gadget_matches_reference;
        Alcotest.test_case (n "softmax gadget") `Quick test_softmax_gadget;
        Alcotest.test_case (n "gelu gadget") `Quick test_gelu_gadget ] )
end

module Small = Make_suite (Zkvc_field.Fsmall) (struct let name = "fsmall" end)
module Big = Make_suite (Zkvc_field.Fr) (struct let name = "fr" end)

(* end-to-end through the Api on both backends, small dims *)
let api_tests =
  let module Api = Zkvc.Api in
  let module Spec = Mspec.Make (Zkvc_field.Fr) in
  let st = Random.State.make [| 123 |] in
  let d = Mspec.dims ~a:3 ~n:4 ~b:3 in
  let x = Spec.random_matrix st ~rows:3 ~cols:4 ~bound:100 in
  let w = Spec.random_matrix st ~rows:4 ~cols:3 ~bound:100 in
  [ Alcotest.test_case "groth16 backend end-to-end (all strategies)" `Slow (fun () ->
        List.iter
          (fun strategy ->
            let _proof, m = Api.run Api.Backend_groth16 strategy ~x ~w d in
            check_bool "verified" true m.Api.verified;
            check_bool "groth16 proof size" true (m.Api.proof_bytes = 256))
          Mcirc.all_strategies);
    Alcotest.test_case "spartan backend end-to-end (all strategies)" `Slow (fun () ->
        List.iter
          (fun strategy ->
            let _proof, m = Api.run Api.Backend_spartan strategy ~x ~w d in
            check_bool "verified" true m.Api.verified;
            check_bool "nonzero proof" true (m.Api.proof_bytes > 0))
          Mcirc.all_strategies) ]

let () =
  Alcotest.run "zkvc_core"
    [ Small.suite; Big.suite; ("api", api_tests) ]
