module Fr = Zkvc_field.Fr
module Spartan = Zkvc_spartan.Spartan
module Sm = Zkvc_spartan.Sparse_matrix.Make (Fr)
module Sc = Zkvc_spartan.Sumcheck.Make (Fr)
module Ml = Zkvc_poly.Multilinear.Make (Fr)
module T = Zkvc_transcript.Transcript
module Ch = T.Challenge (Fr)
module L = Zkvc_r1cs.Lc.Make (Fr)
module Bld = Zkvc_r1cs.Builder.Make (Fr)
module G = Zkvc_r1cs.Gadgets.Make (Fr)
module Pedersen = Zkvc_spartan.Pedersen
module G1 = Zkvc_curve.G1

let st = Random.State.make [| 99; 100 |]
let check_bool = Alcotest.(check bool)

(* ---------------- sumcheck in isolation ---------------- *)

let sumcheck_tests =
  [ Alcotest.test_case "honest prover accepted" `Quick (fun () ->
        let mu = 5 in
        let t1 = Array.init (1 lsl mu) (fun _ -> Fr.random st) in
        let t2 = Array.init (1 lsl mu) (fun _ -> Fr.random st) in
        let claim =
          let acc = ref Fr.zero in
          Array.iteri (fun i v -> acc := Fr.add !acc (Fr.mul v t2.(i))) t1;
          !acc
        in
        let tr_p = T.create ~label:"sc-test" in
        let rounds, r_p, finals =
          Sc.prove tr_p ~label:"s" ~degree:2 [| t1; t2 |]
            ~combine:(fun v -> Fr.mul v.(0) v.(1))
        in
        let tr_v = T.create ~label:"sc-test" in
        (match Sc.verify tr_v ~label:"s" ~degree:2 ~claim rounds with
         | None -> Alcotest.fail "sumcheck rejected honest prover"
         | Some (final_claim, r_v) ->
           check_bool "same challenges" true (List.for_all2 Fr.equal r_p r_v);
           (* final claim must equal product of the tables' MLEs at r *)
           let m1 = Ml.of_evals t1 and m2 = Ml.of_evals t2 in
           check_bool "final claim correct" true
             (Fr.equal final_claim (Fr.mul (Ml.eval m1 r_v) (Ml.eval m2 r_v)));
           check_bool "finals match MLE" true
             (Fr.equal finals.(0) (Ml.eval m1 r_v) && Fr.equal finals.(1) (Ml.eval m2 r_v))));
    Alcotest.test_case "wrong claim rejected" `Quick (fun () ->
        let t1 = Array.init 16 (fun _ -> Fr.random st) in
        let tr_p = T.create ~label:"sc-test" in
        let rounds, _, _ =
          Sc.prove tr_p ~label:"s" ~degree:1 [| t1 |] ~combine:(fun v -> v.(0))
        in
        let tr_v = T.create ~label:"sc-test" in
        check_bool "reject" true
          (Sc.verify tr_v ~label:"s" ~degree:1 ~claim:(Fr.of_int 123456) rounds = None)) ]

(* ---------------- sparse matrices ---------------- *)

let sparse_tests =
  [ Alcotest.test_case "mul_vec and eval agree" `Quick (fun () ->
        let mu = 3 and nu = 4 in
        let entries =
          List.init 20 (fun _ ->
              { Sm.row = Random.State.int st (1 lsl mu);
                col = Random.State.int st (1 lsl nu);
                value = Fr.random st })
        in
        let m = Sm.create ~mu ~nu entries in
        let z = Array.init (1 lsl nu) (fun _ -> Fr.random st) in
        let mz = Sm.mul_vec m z in
        (* MLE of (Mz) at random rx must equal Σ_y M̃(rx,y) z̃(y);
           check by evaluating both sides on booleans *)
        let rx = List.init mu (fun _ -> Fr.random st) in
        let lhs = Ml.eval (Ml.of_evals mz) rx in
        let weights = Ml.evals (Ml.eq_table rx) in
        let folded = Sm.fold_rows m weights in
        let rhs = ref Fr.zero in
        Array.iteri (fun j v -> rhs := Fr.add !rhs (Fr.mul v z.(j))) folded;
        check_bool "fold_rows consistent" true (Fr.equal lhs !rhs);
        (* direct eval at boolean points matches entries *)
        let ry = List.init nu (fun _ -> Fr.random st) in
        let direct = Sm.eval m ~rx ~ry in
        let via_fold =
          let acc = ref Fr.zero in
          Array.iteri
            (fun j v ->
              let bits = List.init nu (fun i -> if (j lsr (nu - 1 - i)) land 1 = 1 then Fr.one else Fr.zero) in
              ignore bits;
              acc := Fr.add !acc (Fr.mul v (Ml.eval (Ml.of_evals (Array.init (1 lsl nu) (fun jj -> if jj = j then Fr.one else Fr.zero))) ry)))
            folded;
          !acc
        in
        check_bool "eval consistent" true (Fr.equal direct via_fold)) ]

(* ---------------- pedersen ---------------- *)

let pedersen_tests =
  [ Alcotest.test_case "commitments binding-ish and homomorphic" `Quick (fun () ->
        let key = Pedersen.create_key 8 in
        let v1 = Array.init 8 (fun _ -> Fr.random st) in
        let v2 = Array.init 8 (fun _ -> Fr.random st) in
        let b1 = Fr.random st and b2 = Fr.random st in
        let c1 = Pedersen.commit key v1 ~blind:b1 in
        let c2 = Pedersen.commit key v2 ~blind:b2 in
        check_bool "distinct" false (G1.equal c1 c2);
        (* homomorphism: C1 + C2 = commit(v1+v2; b1+b2) *)
        let sum = Array.init 8 (fun i -> Fr.add v1.(i) v2.(i)) in
        check_bool "homomorphic" true
          (G1.equal (G1.add c1 c2) (Pedersen.commit key sum ~blind:(Fr.add b1 b2)));
        (* check_fold accepts the honest fold and rejects a corrupted one *)
        let weights = [| Fr.of_int 2; Fr.of_int 3 |] in
        let folded = Array.init 8 (fun i -> Fr.add (Fr.mul weights.(0) v1.(i)) (Fr.mul weights.(1) v2.(i))) in
        let blind = Fr.add (Fr.mul weights.(0) b1) (Fr.mul weights.(1) b2) in
        check_bool "fold ok" true
          (Pedersen.check_fold key ~commitments:[| c1; c2 |] ~weights ~folded ~blind);
        folded.(0) <- Fr.add folded.(0) Fr.one;
        check_bool "bad fold rejected" false
          (Pedersen.check_fold key ~commitments:[| c1; c2 |] ~weights ~folded ~blind));
    Alcotest.test_case "hash_to_point on curve and deterministic" `Quick (fun () ->
        let p1 = Pedersen.hash_to_point "x" in
        let p2 = Pedersen.hash_to_point "x" in
        let p3 = Pedersen.hash_to_point "y" in
        check_bool "on curve" true (G1.is_on_curve p1);
        check_bool "deterministic" true (G1.equal p1 p2);
        check_bool "seed-dependent" false (G1.equal p1 p3)) ]

(* ---------------- inner-product argument ---------------- *)

module Ipa = Zkvc_spartan.Ipa

let ipa_tests =
  [ Alcotest.test_case "complete" `Quick (fun () ->
        List.iter
          (fun n ->
            let key = Pedersen.create_key n in
            let a = Array.init n (fun _ -> Fr.random st) in
            let b = Array.init n (fun _ -> Fr.random st) in
            let c =
              Array.to_list a |> List.mapi (fun i v -> Fr.mul v b.(i))
              |> List.fold_left Fr.add Fr.zero
            in
            (* P = <a,G> + c·Q *)
            let commitment =
              G1.add
                (Pedersen.commit key a ~blind:Fr.zero)
                (G1.mul_fr Ipa.q_generator c)
            in
            let tr_p = T.create ~label:"ipa-test" in
            let proof = Ipa.prove key tr_p ~a ~b in
            let tr_v = T.create ~label:"ipa-test" in
            check_bool
              (Printf.sprintf "n=%d verifies" n)
              true
              (Ipa.verify key tr_v ~b ~commitment proof);
            Alcotest.(check int)
              (Printf.sprintf "n=%d proof points" n)
              (2 * (proof.Ipa.ls |> Array.length))
              (Array.length proof.Ipa.ls + Array.length proof.Ipa.rs))
          [ 1; 2; 4; 8; 32 ]);
    Alcotest.test_case "wrong inner product rejected" `Quick (fun () ->
        let n = 8 in
        let key = Pedersen.create_key n in
        let a = Array.init n (fun _ -> Fr.random st) in
        let b = Array.init n (fun _ -> Fr.random st) in
        let c_bad = Fr.random st in
        let commitment =
          G1.add (Pedersen.commit key a ~blind:Fr.zero) (G1.mul_fr Ipa.q_generator c_bad)
        in
        let tr_p = T.create ~label:"ipa-test" in
        let proof = Ipa.prove key tr_p ~a ~b in
        let tr_v = T.create ~label:"ipa-test" in
        check_bool "rejected" false (Ipa.verify key tr_v ~b ~commitment proof));
    Alcotest.test_case "tampered round rejected" `Quick (fun () ->
        let n = 8 in
        let key = Pedersen.create_key n in
        let a = Array.init n (fun _ -> Fr.random st) in
        let b = Array.init n (fun _ -> Fr.random st) in
        let c =
          Array.to_list a |> List.mapi (fun i v -> Fr.mul v b.(i))
          |> List.fold_left Fr.add Fr.zero
        in
        let commitment =
          G1.add (Pedersen.commit key a ~blind:Fr.zero) (G1.mul_fr Ipa.q_generator c)
        in
        let tr_p = T.create ~label:"ipa-test" in
        let proof = Ipa.prove key tr_p ~a ~b in
        let bad = { proof with Ipa.ls = Array.copy proof.Ipa.ls } in
        bad.Ipa.ls.(1) <- G1.double bad.Ipa.ls.(1);
        let tr_v = T.create ~label:"ipa-test" in
        check_bool "rejected" false (Ipa.verify key tr_v ~b ~commitment bad));
    Alcotest.test_case "proof is logarithmic" `Quick (fun () ->
        let prove_size n =
          let key = Pedersen.create_key n in
          let a = Array.init n (fun _ -> Fr.random st) in
          let b = Array.init n (fun _ -> Fr.random st) in
          let tr = T.create ~label:"ipa-test" in
          Ipa.proof_size_bytes (Ipa.prove key tr ~a ~b)
        in
        (* doubling n adds exactly one round = 128 bytes *)
        Alcotest.(check int) "log growth" (prove_size 16 + 128) (prove_size 32)) ]

(* ---------------- end-to-end ---------------- *)

let circuit n_muls =
  let b = Bld.create () in
  let x = Bld.alloc b (Fr.of_int 3) in
  let acc = ref (L.of_var x) in
  for _ = 1 to n_muls do
    acc := L.of_var (G.mul b !acc (L.add (L.of_var x) (L.constant Fr.one)))
  done;
  let out = Bld.alloc_input b (Bld.eval b !acc) in
  G.assert_equal b (L.of_var out) !acc;
  Bld.finalize b

let e2e_tests =
  [ Alcotest.test_case "complete" `Quick (fun () ->
        let cs, assignment = circuit 10 in
        let inst = Spartan.preprocess cs in
        let key = Spartan.setup inst in
        let proof = Spartan.prove st key inst assignment in
        let io = [ assignment.(1) ] in
        check_bool "verifies" true (Spartan.verify key inst ~public_inputs:io proof);
        check_bool "proof has positive size" true (Spartan.proof_size_bytes proof > 0));
    Alcotest.test_case "wrong public input rejected" `Quick (fun () ->
        let cs, assignment = circuit 10 in
        let inst = Spartan.preprocess cs in
        let key = Spartan.setup inst in
        let proof = Spartan.prove st key inst assignment in
        check_bool "reject" false
          (Spartan.verify key inst ~public_inputs:[ Fr.of_int 1 ] proof));
    Alcotest.test_case "unsatisfying witness rejected" `Quick (fun () ->
        let cs, assignment = circuit 6 in
        let inst = Spartan.preprocess cs in
        let key = Spartan.setup inst in
        let bad = Array.copy assignment in
        bad.(2) <- Fr.add bad.(2) Fr.one;
        let proof = Spartan.prove st key inst bad in
        check_bool "reject" false
          (Spartan.verify key inst ~public_inputs:[ assignment.(1) ] proof));
    Alcotest.test_case "ipa opening mode" `Quick (fun () ->
        let cs, assignment = circuit 12 in
        let inst = Spartan.preprocess cs in
        let key = Spartan.setup inst in
        let io = [ assignment.(1) ] in
        let p_fold = Spartan.prove st key inst assignment in
        let p_ipa = Spartan.prove ~opening_mode:`Ipa st key inst assignment in
        check_bool "fold verifies" true (Spartan.verify key inst ~public_inputs:io p_fold);
        check_bool "ipa verifies" true (Spartan.verify key inst ~public_inputs:io p_ipa);
        check_bool "ipa rejected on wrong io" false
          (Spartan.verify key inst ~public_inputs:[ Fr.of_int 1 ] p_ipa);
        Printf.printf "proof sizes: fold=%dB ipa=%dB\n"
          (Spartan.proof_size_bytes p_fold) (Spartan.proof_size_bytes p_ipa));
    Alcotest.test_case "ipa opening with bad witness rejected" `Quick (fun () ->
        let cs, assignment = circuit 6 in
        let inst = Spartan.preprocess cs in
        let key = Spartan.setup inst in
        let bad = Array.copy assignment in
        bad.(2) <- Fr.add bad.(2) Fr.one;
        let proof = Spartan.prove ~opening_mode:`Ipa st key inst bad in
        check_bool "reject" false
          (Spartan.verify key inst ~public_inputs:[ assignment.(1) ] proof));
    Alcotest.test_case "batch verification" `Quick (fun () ->
        let cs, assignment = circuit 10 in
        let inst = Spartan.preprocess cs in
        let key = Spartan.setup inst in
        let io = [ assignment.(1) ] in
        (* mixed opening modes share the one batched MSM *)
        let instances =
          [ (io, Spartan.prove st key inst assignment);
            (io, Spartan.prove ~opening_mode:`Ipa st key inst assignment);
            (io, Spartan.prove st key inst assignment) ]
        in
        check_bool "honest batch accepted" true
          (Spartan.verify_batch key inst instances = Spartan.Batch_accepted);
        check_bool "empty batch raises" true
          (match Spartan.verify_batch key inst [] with
          | exception Invalid_argument _ -> true
          | _ -> false);
        (* one corrupted statement poisons the whole batch *)
        let bad =
          match instances with
          | (io, p) :: rest -> ([ Fr.add (List.hd io) Fr.one ], p) :: rest
          | [] -> assert false
        in
        check_bool "bad statement rejects batch" true
          (Spartan.verify_batch key inst bad = Spartan.Batch_rejected);
        (* wrong arity is attributable, not a mere rejection *)
        let bad =
          match instances with
          | first :: (io, p) :: rest -> first :: ((Fr.one :: io, p)) :: rest
          | _ -> assert false
        in
        check_bool "arity mismatch flagged malformed" true
          (Spartan.verify_batch key inst bad = Spartan.Batch_malformed [ 1 ]);
        (* a proof corrupted in a group element still rejects — the
           weighted combined MSM must catch it *)
        let bad =
          match instances with
          | (io, p) :: rest ->
            (io, Spartan.Mutate.apply (List.hd (Spartan.Mutate.sites p)) p) :: rest
          | [] -> assert false
        in
        check_bool "corrupt member rejects batch" true
          (Spartan.verify_batch key inst bad = Spartan.Batch_rejected));
    Alcotest.test_case "batch agrees with individual verification" `Quick (fun () ->
        let cs, assignment = circuit 8 in
        let inst = Spartan.preprocess cs in
        let key = Spartan.setup inst in
        let io = [ assignment.(1) ] in
        let ps = List.init 3 (fun _ -> Spartan.prove st key inst assignment) in
        let instances = List.map (fun p -> (io, p)) ps in
        let individually =
          List.for_all (fun p -> Spartan.verify key inst ~public_inputs:io p) ps
        in
        check_bool "both accept" true
          (individually
           && Spartan.verify_batch key inst instances = Spartan.Batch_accepted));
    Alcotest.test_case "proofs differ run to run (blinding)" `Quick (fun () ->
        let cs, assignment = circuit 4 in
        let inst = Spartan.preprocess cs in
        let key = Spartan.setup inst in
        let p1 = Spartan.prove st key inst assignment in
        let p2 = Spartan.prove st key inst assignment in
        check_bool "both verify" true
          (Spartan.verify key inst ~public_inputs:[ assignment.(1) ] p1
           && Spartan.verify key inst ~public_inputs:[ assignment.(1) ] p2);
        check_bool "proof bytes differ" true (p1 <> p2)) ]

let () =
  Alcotest.run "zkvc_spartan"
    [ ("sumcheck", sumcheck_tests);
      ("sparse", sparse_tests);
      ("pedersen", pedersen_tests);
      ("ipa", ipa_tests);
      ("e2e", e2e_tests) ]
