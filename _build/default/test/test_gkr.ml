module Fr = Zkvc_field.Fr
module Tm = Zkvc_gkr.Thaler_matmul
module Spec = Zkvc.Matmul_spec.Make (Fr)

let st = Random.State.make [| 1337 |]
let check_bool = Alcotest.(check bool)

let rand rows cols = Spec.random_matrix st ~rows ~cols ~bound:1000

let tests =
  [ Alcotest.test_case "complete on power-of-two dims" `Quick (fun () ->
        let a = rand 4 8 and b = rand 8 4 in
        let c = Spec.multiply a b in
        let proof = Tm.prove ~a ~b in
        check_bool "verifies" true (Tm.verify ~a ~b ~c proof);
        check_bool "positive size" true (Tm.proof_size_bytes proof > 0));
    Alcotest.test_case "complete on padded (non-pow2) dims" `Quick (fun () ->
        (* the paper's embedding-layer shape at 1/7 scale: [7,9]x[9,18] *)
        let a = rand 7 9 and b = rand 9 18 in
        let c = Spec.multiply a b in
        let proof = Tm.prove ~a ~b in
        check_bool "verifies" true (Tm.verify ~a ~b ~c proof));
    Alcotest.test_case "wrong product rejected" `Quick (fun () ->
        let a = rand 4 4 and b = rand 4 4 in
        let c = Spec.multiply a b in
        let proof = Tm.prove ~a ~b in
        let c_bad = Array.map Array.copy c in
        c_bad.(2).(1) <- Fr.add c_bad.(2).(1) Fr.one;
        check_bool "rejected" false (Tm.verify ~a ~b ~c:c_bad proof));
    Alcotest.test_case "wrong inputs rejected" `Quick (fun () ->
        let a = rand 4 4 and b = rand 4 4 in
        let c = Spec.multiply a b in
        let proof = Tm.prove ~a ~b in
        let a_bad = Array.map Array.copy a in
        a_bad.(0).(0) <- Fr.add a_bad.(0).(0) Fr.one;
        check_bool "rejected" false (Tm.verify ~a:a_bad ~b ~c proof));
    Alcotest.test_case "proof size is logarithmic" `Quick (fun () ->
        (* doubling the inner dimension adds one sumcheck round (3 field
           elements), unlike the constraint-based schemes *)
        let p1 = Tm.prove ~a:(rand 4 8) ~b:(rand 8 4) in
        let p2 = Tm.prove ~a:(rand 4 16) ~b:(rand 16 4) in
        Alcotest.(check int) "one extra round = 96 bytes"
          (Tm.proof_size_bytes p1 + 96)
          (Tm.proof_size_bytes p2));
    Alcotest.test_case "dimension mismatch raises" `Quick (fun () ->
        check_bool "raises" true
          (match Tm.prove ~a:(rand 4 5) ~b:(rand 6 4) with
           | _ -> false
           | exception Invalid_argument _ -> true)) ]

let () = Alcotest.run "zkvc_gkr" [ ("thaler-matmul", tests) ]
