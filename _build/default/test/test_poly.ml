module B = Zkvc_num.Bigint

(* Polynomial / domain / multilinear laws, instantiated over the fast small
   field and spot-checked over Fr. *)
module Make_suite (F : Zkvc_field.Field_intf.S) (Name : sig
  val name : string
  val max_log : int (* cap domain sizes to keep Fr runs quick *)
end) =
struct
  module P = Zkvc_poly.Dense_poly.Make (F)
  module D = Zkvc_poly.Domain.Make (F)
  module M = Zkvc_poly.Multilinear.Make (F)

  let st = Random.State.make [| 17; Name.max_log |]

  let poly_arb =
    let gen _ =
      let deg = Random.State.int st 30 - 1 in
      P.random st ~degree:deg
    in
    QCheck.make ~print:(Format.asprintf "%a" P.pp) gen

  let field_arb = QCheck.make ~print:F.to_string (fun _ -> F.random st)

  let t name f = QCheck.Test.make ~name:(Name.name ^ ": " ^ name) ~count:100 f
  let n name = Name.name ^ ": " ^ name

  let props =
    [ t "add is pointwise" (QCheck.triple poly_arb poly_arb field_arb) (fun (p, q, x) ->
          F.equal (P.eval (P.add p q) x) (F.add (P.eval p x) (P.eval q x)));
      t "mul is pointwise" (QCheck.triple poly_arb poly_arb field_arb) (fun (p, q, x) ->
          F.equal (P.eval (P.mul p q) x) (F.mul (P.eval p x) (P.eval q x)));
      t "schoolbook = ntt" (QCheck.pair poly_arb poly_arb) (fun (p, q) ->
          P.equal (P.mul_schoolbook p q) (P.mul_ntt p q));
      t "divmod reconstructs" (QCheck.pair poly_arb poly_arb) (fun (p, q) ->
          QCheck.assume (not (P.is_zero q));
          let quot, r = P.divmod p q in
          P.equal p (P.add (P.mul quot q) r) && P.degree r < P.degree q);
      t "sub self is zero" poly_arb (fun p -> P.is_zero (P.sub p p));
      t "degree of product adds" (QCheck.pair poly_arb poly_arb) (fun (p, q) ->
          QCheck.assume (not (P.is_zero p) && not (P.is_zero q));
          P.degree (P.mul p q) = P.degree p + P.degree q) ]

  let test_interpolate () =
    let pts = List.init 8 (fun i -> (F.of_int (i + 1), F.random st)) in
    let p = P.interpolate pts in
    List.iter
      (fun (x, y) ->
        Alcotest.(check bool) "interpolation hits points" true (F.equal (P.eval p x) y))
      pts;
    Alcotest.(check bool) "degree < npoints" true (P.degree p < 8)

  let test_ntt_roundtrip () =
    for log = 0 to Stdlib.min Name.max_log 8 do
      let nsz = 1 lsl log in
      let d = D.create nsz in
      let a = Array.init nsz (fun _ -> F.random st) in
      let b = Array.copy a in
      D.ntt d b;
      D.intt d b;
      Alcotest.(check bool) (Printf.sprintf "roundtrip size %d" nsz) true (b = a)
    done

  let test_ntt_is_evaluation () =
    let nsz = 16 in
    let d = D.create nsz in
    let coeffs = Array.init nsz (fun _ -> F.random st) in
    let p = P.of_coeffs coeffs in
    let evals = Array.copy coeffs in
    D.ntt d evals;
    for i = 0 to nsz - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "ntt[%d] = p(w^%d)" i i)
        true
        (F.equal evals.(i) (P.eval p (D.element d i)))
    done

  let test_coset () =
    let nsz = 16 in
    let d = D.create nsz in
    let shift = F.of_int 3 in
    let coeffs = Array.init nsz (fun _ -> F.random st) in
    let p = P.of_coeffs coeffs in
    let evals = Array.copy coeffs in
    D.eval_on_coset d shift evals;
    for i = 0 to nsz - 1 do
      Alcotest.(check bool) "coset eval" true
        (F.equal evals.(i) (P.eval p (F.mul shift (D.element d i))))
    done;
    D.interp_from_coset d shift evals;
    Alcotest.(check bool) "coset roundtrip" true (evals = coeffs)

  let test_vanishing () =
    let nsz = 8 in
    let d = D.create nsz in
    for i = 0 to nsz - 1 do
      Alcotest.(check bool) "vanishes on domain" true
        (F.is_zero (D.vanishing_eval d (D.element d i)))
    done;
    Alcotest.(check bool) "nonzero off domain" true
      (not (F.is_zero (D.vanishing_eval d (F.of_int 12345))))

  let test_lagrange_eval () =
    let nsz = 16 in
    let d = D.create nsz in
    let coeffs = Array.init nsz (fun _ -> F.random st) in
    let p = P.of_coeffs coeffs in
    let evals = Array.copy coeffs in
    D.ntt d evals;
    (* off-domain point *)
    let x = F.of_int 987654 in
    Alcotest.(check bool) "barycentric = direct" true
      (F.equal (D.lagrange_eval d evals x) (P.eval p x));
    (* on-domain point *)
    Alcotest.(check bool) "on-domain" true
      (F.equal (D.lagrange_eval d evals (D.element d 5)) evals.(5))

  let test_domain_errors () =
    Alcotest.check_raises "non power of two"
      (Invalid_argument "Domain.create: size must be a power of two") (fun () ->
        ignore (D.create 12));
    Alcotest.check_raises "too large"
      (Invalid_argument "Domain.create: size exceeds field 2-adicity") (fun () ->
        ignore (D.create (1 lsl (F.two_adicity + 1))))

  (* ---- multilinear ---- *)

  let test_mle_eval_on_cube () =
    let nv = 4 in
    let table = Array.init (1 lsl nv) (fun _ -> F.random st) in
    let m = M.of_evals table in
    for i = 0 to (1 lsl nv) - 1 do
      (* point = bits of i, MSB = variable 0 *)
      let point = List.init nv (fun j -> if (i lsr (nv - 1 - j)) land 1 = 1 then F.one else F.zero) in
      Alcotest.(check bool) (Printf.sprintf "agrees on vertex %d" i) true
        (F.equal (M.eval m point) table.(i))
    done

  let test_mle_sum () =
    let table = Array.init 8 (fun i -> F.of_int i) in
    let m = M.of_evals table in
    Alcotest.(check string) "sum" "28" (F.to_string (M.sum m))

  let test_eq_table () =
    let tau = List.init 3 (fun _ -> F.random st) in
    let eq = M.eq_table tau in
    for i = 0 to 7 do
      let point = List.init 3 (fun j -> if (i lsr (2 - j)) land 1 = 1 then F.one else F.zero) in
      Alcotest.(check bool) "eq table matches closed form" true
        (F.equal (M.get eq i) (M.eq_eval tau point))
    done;
    (* Σ_x eq(tau, x) = 1 *)
    Alcotest.(check bool) "eq sums to one" true (F.is_one (M.sum eq))

  let test_fix_first () =
    let nv = 3 in
    let table = Array.init (1 lsl nv) (fun _ -> F.random st) in
    let m = M.of_evals table in
    let r = F.random st in
    let fixed = M.fix_first m r in
    let p = [ F.random st; F.random st ] in
    Alcotest.(check bool) "fix_first = eval with prefix" true
      (F.equal (M.eval fixed p) (M.eval m (r :: p)))

  let suite =
    ( Name.name,
      [ Alcotest.test_case (n "interpolate") `Quick test_interpolate;
        Alcotest.test_case (n "ntt roundtrip") `Quick test_ntt_roundtrip;
        Alcotest.test_case (n "ntt = evaluation") `Quick test_ntt_is_evaluation;
        Alcotest.test_case (n "coset") `Quick test_coset;
        Alcotest.test_case (n "vanishing") `Quick test_vanishing;
        Alcotest.test_case (n "lagrange eval") `Quick test_lagrange_eval;
        Alcotest.test_case (n "domain errors") `Quick test_domain_errors;
        Alcotest.test_case (n "mle on cube") `Quick test_mle_eval_on_cube;
        Alcotest.test_case (n "mle sum") `Quick test_mle_sum;
        Alcotest.test_case (n "eq table") `Quick test_eq_table;
        Alcotest.test_case (n "fix_first") `Quick test_fix_first ]
      @ List.map QCheck_alcotest.to_alcotest props )
end

module Small_suite =
  Make_suite (Zkvc_field.Fsmall) (struct let name = "fsmall" let max_log = 12 end)

module Fr_suite =
  Make_suite (Zkvc_field.Fr) (struct let name = "fr" let max_log = 8 end)

let () = Alcotest.run "zkvc_poly" [ Small_suite.suite; Fr_suite.suite ]
