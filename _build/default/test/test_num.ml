module B = Zkvc_num.Bigint

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let b = B.of_string

(* ------------------------------------------------------------------ *)
(* Unit tests on known values                                           *)

let test_roundtrip_decimal () =
  let cases =
    [ "0"; "1"; "-1"; "42"; "-42"; "67108864" (* 2^26 *); "67108863";
      "18446744073709551616" (* 2^64 *);
      "21888242871839275222246405745257275088548364400416034343698204186575808495617";
      "-123456789012345678901234567890123456789012345678901234567890" ]
  in
  List.iter (fun s -> check_str s s (B.to_string (b s))) cases

let test_hex () =
  check_str "hex of 255" "0xff" (B.to_hex (B.of_int 255));
  check_str "hex parse" "255" (B.to_string (b "0xff"));
  check_str "hex parse big" "18446744073709551615" (B.to_string (b "0xffffffffffffffff"));
  check_str "neg hex" "-0x10" (B.to_hex (B.of_int (-16)))

let test_add_sub_known () =
  let x = b "99999999999999999999999999999999" in
  let y = b "1" in
  check_str "add" "100000000000000000000000000000000" (B.to_string (B.add x y));
  check_str "sub" "99999999999999999999999999999998" (B.to_string (B.sub x y));
  check_str "sub to neg" "-1" (B.to_string (B.sub y (B.of_int 2)))

let test_mul_known () =
  let x = b "123456789123456789123456789" in
  check_str "square"
    "15241578780673678546105778281054720515622620750190521"
    (B.to_string (B.mul x x))

let test_divmod_known () =
  let a = b "10000000000000000000000000000000000000001" in
  let d = b "333333333333333333333" in
  let q, r = B.divmod a d in
  check_bool "reconstruct" true (B.equal a (B.add (B.mul q d) r));
  check_bool "r < d" true (B.lt r d);
  check_str "q" "30000000000000000000" (B.to_string q);
  (* truncated semantics on negatives, like OCaml's (/) and (mod) *)
  let q, r = B.divmod (B.of_int (-7)) (B.of_int 2) in
  check_int "q trunc" (-3) (Option.get (B.to_int_opt q));
  check_int "r trunc" (-1) (Option.get (B.to_int_opt r));
  check_int "erem" 1 (Option.get (B.to_int_opt (B.erem (B.of_int (-7)) (B.of_int 2))))

let test_div_by_zero () =
  Alcotest.check_raises "divmod by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_shifts () =
  check_str "shl 100" (B.to_string (B.pow B.two 100)) (B.to_string (B.shift_left B.one 100));
  check_str "shr" "1" (B.to_string (B.shift_right (B.shift_left B.one 100) 100));
  check_str "shr to zero" "0" (B.to_string (B.shift_right (B.of_int 5) 3))

let test_bits () =
  let n = b "1025" in
  check_bool "bit0" true (B.bit n 0);
  check_bool "bit1" false (B.bit n 1);
  check_bool "bit10" true (B.bit n 10);
  check_int "num_bits" 11 (B.num_bits n);
  check_int "num_bits zero" 0 (B.num_bits B.zero)

let test_pow () =
  check_str "2^200"
    "1606938044258990275541962092341162602522202993782792835301376"
    (B.to_string (B.pow B.two 200));
  check_str "x^0" "1" (B.to_string (B.pow (b "12345") 0))

let test_gcd_inverse () =
  check_str "gcd" "6" (B.to_string (B.gcd (B.of_int 54) (B.of_int 24)));
  let m = b "21888242871839275222246405745257275088548364400416034343698204186575808495617" in
  let a = b "1234567891011121314151617181920" in
  let ainv = B.mod_inverse a m in
  check_str "a * a^-1 mod m" "1" (B.to_string (B.erem (B.mul a ainv) m))

let test_mod_pow () =
  (* Fermat: a^(p-1) = 1 mod p *)
  let p = b "2013265921" in
  check_str "fermat" "1" (B.to_string (B.mod_pow (B.of_int 31) (B.sub p B.one) p));
  check_str "mod_pow small" "445" (B.to_string (B.mod_pow (B.of_int 4) (B.of_int 13) (B.of_int 497)))

let test_bytes () =
  let n = b "1234567890123456789" in
  let bytes = B.to_bytes_be n 32 in
  check_int "len" 32 (Bytes.length bytes);
  check_str "roundtrip" (B.to_string n) (B.to_string (B.of_bytes_be bytes));
  Alcotest.check_raises "too large" (Invalid_argument "Bigint.to_bytes_be: value too large")
    (fun () -> ignore (B.to_bytes_be n 4))

let test_random_bounded () =
  let st = Random.State.make [| 42 |] in
  let bound = b "123456789123456789123456789" in
  for _ = 1 to 100 do
    let v = B.random st bound in
    if not (B.ge v B.zero && B.lt v bound) then Alcotest.fail "random out of range"
  done

(* ------------------------------------------------------------------ *)
(* Property tests: agreement with native int arithmetic                 *)

let int_arb = QCheck.int_range (-1_000_000_000) 1_000_000_000

let prop_of_to_int =
  QCheck.Test.make ~name:"of_int/to_int roundtrip" ~count:500 int_arb (fun n ->
      Option.get (B.to_int_opt (B.of_int n)) = n)

let prop_add_matches_int =
  QCheck.Test.make ~name:"add matches int" ~count:500 (QCheck.pair int_arb int_arb)
    (fun (x, y) -> Option.get (B.to_int_opt (B.add (B.of_int x) (B.of_int y))) = x + y)

let prop_mul_matches_int =
  QCheck.Test.make ~name:"mul matches int" ~count:500 (QCheck.pair int_arb int_arb)
    (fun (x, y) -> Option.get (B.to_int_opt (B.mul (B.of_int x) (B.of_int y))) = x * y)

let prop_divmod_matches_int =
  QCheck.Test.make ~name:"divmod matches int" ~count:500 (QCheck.pair int_arb int_arb)
    (fun (x, y) ->
      QCheck.assume (y <> 0);
      let q, r = B.divmod (B.of_int x) (B.of_int y) in
      Option.get (B.to_int_opt q) = x / y && Option.get (B.to_int_opt r) = x mod y)

let prop_compare_matches_int =
  QCheck.Test.make ~name:"compare matches int" ~count:500 (QCheck.pair int_arb int_arb)
    (fun (x, y) -> Stdlib.compare (B.compare (B.of_int x) (B.of_int y)) 0 = Stdlib.compare (Stdlib.compare x y) 0)

(* Property tests on big operands: algebraic laws *)

let big_arb =
  let gen st =
    let digits = 1 + Random.State.int st 60 in
    let s = String.init digits (fun i ->
        if i = 0 then Char.chr (Char.code '1' + Random.State.int st 9)
        else Char.chr (Char.code '0' + Random.State.int st 10))
    in
    let s = if Random.State.bool st then "-" ^ s else s in
    B.of_string s
  in
  QCheck.make ~print:B.to_string (gen)

let prop_add_assoc =
  QCheck.Test.make ~name:"big add associative" ~count:300 (QCheck.triple big_arb big_arb big_arb)
    (fun (x, y, z) -> B.equal (B.add (B.add x y) z) (B.add x (B.add y z)))

let prop_mul_distrib =
  QCheck.Test.make ~name:"big mul distributes" ~count:300 (QCheck.triple big_arb big_arb big_arb)
    (fun (x, y, z) -> B.equal (B.mul x (B.add y z)) (B.add (B.mul x y) (B.mul x z)))

let prop_divmod_reconstruct =
  QCheck.Test.make ~name:"big divmod reconstructs" ~count:300 (QCheck.pair big_arb big_arb)
    (fun (x, y) ->
      QCheck.assume (not (B.is_zero y));
      let q, r = B.divmod x y in
      B.equal x (B.add (B.mul q y) r) && B.lt (B.abs r) (B.abs y))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"big decimal roundtrip" ~count:300 big_arb
    (fun x -> B.equal x (B.of_string (B.to_string x)))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"big hex roundtrip" ~count:300 big_arb
    (fun x -> B.equal x (B.of_string (B.to_hex x)))

let prop_shift_is_pow2 =
  QCheck.Test.make ~name:"shift_left = mul 2^k" ~count:200
    (QCheck.pair big_arb (QCheck.int_range 0 120))
    (fun (x, s) -> B.equal (B.shift_left x s) (B.mul x (B.pow B.two s)))

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest
      [ prop_of_to_int; prop_add_matches_int; prop_mul_matches_int;
        prop_divmod_matches_int; prop_compare_matches_int; prop_add_assoc;
        prop_mul_distrib; prop_divmod_reconstruct; prop_string_roundtrip;
        prop_hex_roundtrip; prop_shift_is_pow2 ]
  in
  Alcotest.run "zkvc_num"
    [ ( "bigint",
        [ Alcotest.test_case "decimal roundtrip" `Quick test_roundtrip_decimal;
          Alcotest.test_case "hex" `Quick test_hex;
          Alcotest.test_case "add/sub known" `Quick test_add_sub_known;
          Alcotest.test_case "mul known" `Quick test_mul_known;
          Alcotest.test_case "divmod known" `Quick test_divmod_known;
          Alcotest.test_case "div by zero" `Quick test_div_by_zero;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "bits" `Quick test_bits;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "gcd/mod_inverse" `Quick test_gcd_inverse;
          Alcotest.test_case "mod_pow" `Quick test_mod_pow;
          Alcotest.test_case "bytes" `Quick test_bytes;
          Alcotest.test_case "random bounded" `Quick test_random_bounded ] );
      ("bigint-properties", qsuite) ]
