module Fr = Zkvc_field.Fr
module Nl = Zkvc.Nonlinear
module Q = Zkvc_nn.Quantize
module Models = Zkvc_nn.Models
module Ops = Zkvc_zkml.Ops
module Lc = Zkvc_zkml.Layer_circuit.Make (Fr)
module Compiler = Zkvc_zkml.Compiler
module Cost = Zkvc_zkml.Cost_model
module Pm = Zkvc_zkml.Prove_model
module Bld = Zkvc_r1cs.Builder.Make (Fr)
module Cs = Zkvc_r1cs.Constraint_system.Make (Fr)
module Lin = Zkvc_r1cs.Lc.Make (Fr)
module Mspec = Zkvc.Matmul_spec

let st = Random.State.make [| 777 |]
let cfg = Nl.default_config
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- gadget semantics vs quantized reference ---------------- *)

let gadget_tests =
  [ Alcotest.test_case "signed rescale matches fdiv" `Quick (fun () ->
        List.iter
          (fun v ->
            let b = Bld.create () in
            let x = Bld.alloc b (Fr.of_int v) in
            let out = Lc.rescale b cfg (Lin.of_var x) in
            let expect = Q.fdiv v (Nl.scale cfg) in
            check_bool
              (Printf.sprintf "rescale %d -> %d" v expect)
              true
              (Fr.equal (Bld.eval b out) (Fr.of_int expect));
            let cs, assignment = Bld.finalize b in
            Cs.check_satisfied cs assignment)
          [ 0; 1; 255; 256; 1000; -1; -255; -256; -1000; 123456; -123456 ]);
    Alcotest.test_case "isqrt gadget" `Quick (fun () ->
        List.iter
          (fun v ->
            let b = Bld.create () in
            let x = Bld.alloc b (Fr.of_int v) in
            let r = Lc.isqrt b cfg (Lin.of_var x) in
            check_bool (Printf.sprintf "isqrt %d" v) true
              (Fr.equal (Bld.value b r) (Fr.of_int (Q.isqrt v)));
            let cs, assignment = Bld.finalize b in
            Cs.check_satisfied cs assignment)
          [ 0; 1; 4; 10; 65535; 1000000 ]);
    Alcotest.test_case "layernorm row matches reference" `Quick (fun () ->
        let vals = [ 100; -250; 3000; 0; -1024; 777; 512; -90 ] in
        let b = Bld.create () in
        let xs = List.map (fun v -> Bld.alloc b (Fr.of_int v)) vals in
        let outs = Lc.layernorm_row b cfg xs in
        let m = Q.init 1 (List.length vals) (fun _ j -> List.nth vals j) in
        let expect = Q.layernorm cfg m in
        List.iteri
          (fun j o ->
            check_bool (Printf.sprintf "ln[%d]" j) true
              (Fr.equal (Bld.eval b o) (Fr.of_int (Q.get expect 0 j))))
          outs;
        let cs, assignment = Bld.finalize b in
        Cs.check_satisfied cs assignment);
    Alcotest.test_case "softmax on signed scores matches reference" `Quick (fun () ->
        let vals = [ -300; 150; 0; 720; -64 ] in
        let b = Bld.create () in
        let xs = List.map (fun v -> Bld.alloc b (Fr.of_int v)) vals in
        let outs = Lc.softmax_row b cfg xs in
        let expect = Nl.Reference.softmax cfg (Array.of_list vals) in
        List.iteri
          (fun j o ->
            check_bool (Printf.sprintf "softmax[%d]" j) true
              (Fr.equal (Bld.value b o) (Fr.of_int expect.(j))))
          outs;
        let cs, assignment = Bld.finalize b in
        Cs.check_satisfied cs assignment);
    Alcotest.test_case "mean pool matches reference" `Quick (fun () ->
        let vals = [ 10; -20; 35; 7 ] in
        let b = Bld.create () in
        let xs = List.map (fun v -> Bld.alloc b (Fr.of_int v)) vals in
        let out = Lc.mean_pool b cfg xs in
        check_bool "mean" true (Fr.equal (Bld.eval b out) (Fr.of_int (Q.fdiv 32 4)));
        let cs, assignment = Bld.finalize b in
        Cs.check_satisfied cs assignment) ]

(* ---------------- counting correctness ---------------- *)

let count_matches op =
  let direct =
    let b = Bld.create () in
    Lc.build_op b cfg op;
    let cs, assignment = Bld.finalize b in
    Cs.check_satisfied cs assignment;
    { Ops.constraints = Cs.num_constraints cs; variables = Cs.num_vars cs }
  in
  let predicted = Lc.count cfg op in
  (direct, predicted)

let counting_tests =
  [ Alcotest.test_case "affine extrapolation is exact" `Quick (fun () ->
        List.iter
          (fun op ->
            let direct, predicted = count_matches op in
            check_int
              (Format.asprintf "constraints %a" Ops.pp op)
              direct.Ops.constraints predicted.Ops.constraints;
            check_int
              (Format.asprintf "variables %a" Ops.pp op)
              direct.Ops.variables predicted.Ops.variables)
          [ Ops.Op_rescale 7;
            Ops.Op_gelu 5;
            Ops.Op_softmax { rows = 3; len = 6 };
            Ops.Op_layernorm { rows = 2; cols = 9 };
            Ops.Op_mean_pool { out_elems = 4; window = 5 };
            Ops.Op_matmul (Mspec.dims ~a:3 ~n:4 ~b:5) ]);
    Alcotest.test_case "matmul count honours strategy" `Quick (fun () ->
        let d = Mspec.dims ~a:4 ~n:6 ~b:4 in
        List.iter
          (fun strategy ->
            let direct =
              let b = Bld.create () in
              Lc.build_op ~strategy b cfg (Ops.Op_matmul d);
              let cs, _ = Bld.finalize b in
              Cs.num_constraints cs
            in
            check_int
              (Zkvc.Matmul_circuit.strategy_name strategy)
              direct
              (Lc.count ~strategy cfg (Ops.Op_matmul d)).Ops.constraints)
          Zkvc.Matmul_circuit.all_strategies) ]

(* ---------------- compiler ---------------- *)

let compiler_tests =
  [ Alcotest.test_case "compiles every arch x variant" `Quick (fun () ->
        List.iter
          (fun arch ->
            List.iter
              (fun variant ->
                let layers = Compiler.compile arch variant in
                check_bool "has layers" true (List.length layers > 2))
              [ Models.Soft_approx; Models.Soft_free_s; Models.Soft_free_p;
                Models.Soft_free_l; Models.Zkvc_hybrid ])
          Models.all_archs);
    Alcotest.test_case "variant cost ordering matches the paper" `Quick (fun () ->
        (* Table III shape: P < zkVC < S < SoftApprox on CIFAR-10 *)
        let total v =
          (Compiler.total_counts cfg (Compiler.compile Models.vit_cifar10 v)).Ops.constraints
        in
        let p = total Models.Soft_free_p
        and s = total Models.Soft_free_s
        and approx = total Models.Soft_approx
        and hybrid = total Models.Zkvc_hybrid in
        check_bool "pooling cheapest" true (p < s && p < approx && p < hybrid);
        check_bool "softapprox most expensive" true (approx > s && approx > hybrid);
        check_bool "hybrid between pooling and softapprox" true (p < hybrid && hybrid < approx));
    Alcotest.test_case "nlp ordering matches Table IV" `Quick (fun () ->
        (* L < zkVC < S < SoftApprox *)
        let total v =
          (Compiler.total_counts cfg (Compiler.compile Models.bert_glue v)).Ops.constraints
        in
        let l = total Models.Soft_free_l
        and s = total Models.Soft_free_s
        and approx = total Models.Soft_approx
        and hybrid = total Models.Zkvc_hybrid in
        check_bool "linear cheapest" true (l < s && l < approx);
        check_bool "hybrid between linear and scaling" true (l < hybrid && hybrid < s);
        check_bool "softapprox most expensive" true (approx > s));
    Alcotest.test_case "CRPC shrinks the matmul share" `Quick (fun () ->
        let layers = Compiler.compile Models.vit_cifar10 Models.Soft_approx in
        let mm_vanilla, other_v =
          Compiler.matmul_split ~strategy:Zkvc.Matmul_circuit.Vanilla cfg layers
        in
        let mm_crpc, other_c =
          Compiler.matmul_split ~strategy:Zkvc.Matmul_circuit.Crpc_psq cfg layers
        in
        check_int "non-matmul unchanged" other_v other_c;
        check_bool "matmul constraints collapse under CRPC" true
          (mm_crpc * 100 < mm_vanilla);
        check_bool "vanilla matmul dominates" true (mm_vanilla > other_v)) ]

(* ---------------- real proving of ops and layers ---------------- *)

let proving_tests =
  [ Alcotest.test_case "prove_op on both backends" `Slow (fun () ->
        List.iter
          (fun backend ->
            let nc, t_prove, _t_verify, bytes =
              Pm.prove_op backend cfg (Ops.Op_softmax { rows = 1; len = 4 })
            in
            check_bool "has constraints" true (nc > 50);
            check_bool "positive time" true (t_prove > 0.);
            check_bool "proof bytes" true (bytes > 0))
          [ Cost.Backend_groth16; Cost.Backend_spartan ]);
    Alcotest.test_case "linear layer circuit matches quantized reference" `Slow (fun () ->
        let d = Mspec.dims ~a:3 ~n:4 ~b:2 in
        let x = Array.init 3 (fun _ -> Array.init 4 (fun _ -> Random.State.int st 512 - 256)) in
        let w = Array.init 4 (fun _ -> Array.init 2 (fun _ -> Random.State.int st 512 - 256)) in
        let cs, assignment, out_values = Pm.linear_layer_circuit cfg ~x ~w d in
        Cs.check_satisfied cs assignment;
        let qx = Q.init 3 4 (fun i j -> x.(i).(j)) in
        let qw = Q.init 4 2 (fun i j -> w.(i).(j)) in
        let expect = Q.matmul_rescale cfg qx qw in
        Array.iteri
          (fun i row ->
            Array.iteri
              (fun j v ->
                check_bool
                  (Printf.sprintf "out[%d][%d]" i j)
                  true
                  (Fr.equal v (Fr.of_int (Q.get expect i j))))
              row)
          out_values);
    Alcotest.test_case "calibration predicts within 4x on held-out size" `Slow (fun () ->
        let calib = Cost.calibrate ~n1:256 ~n2:1024 Cost.Backend_spartan in
        let actual = Cost.measure_prove Cost.Backend_spartan 2048 in
        let predicted = Cost.estimate calib 2048 in
        check_bool
          (Printf.sprintf "predicted %.3f vs actual %.3f" predicted actual)
          true
          (predicted < 4. *. actual && actual < 4. *. Stdlib.max predicted 1e-6)) ]

let () =
  Alcotest.run "zkvc_zkml"
    [ ("gadgets", gadget_tests);
      ("counting", counting_tests);
      ("compiler", compiler_tests);
      ("proving", proving_tests) ]
