module Fq = Zkvc_field.Fq
module Fr = Zkvc_field.Fr
module B = Zkvc_num.Bigint
module Fq2 = Zkvc_curve.Fq2
module Fq6 = Zkvc_curve.Fq6
module Fq12 = Zkvc_curve.Fq12
module G1 = Zkvc_curve.G1
module G2 = Zkvc_curve.G2
module Pairing = Zkvc_curve.Pairing
module Params = Zkvc_curve.Bn_params

let st = Random.State.make [| 2024; 7 |]
let check_bool = Alcotest.(check bool)

(* ---------------- extension tower ---------------- *)

let tower_tests =
  let t name f = Alcotest.test_case name `Quick f in
  [ t "fq2 field laws" (fun () ->
        for _ = 1 to 50 do
          let a = Fq2.random st and b = Fq2.random st and c = Fq2.random st in
          check_bool "assoc" true Fq2.(equal (mul (mul a b) c) (mul a (mul b c)));
          check_bool "distrib" true Fq2.(equal (mul a (add b c)) (add (mul a b) (mul a c)));
          check_bool "sqr" true Fq2.(equal (sqr a) (mul a a));
          if not (Fq2.is_zero a) then
            check_bool "inv" true Fq2.(is_one (mul a (inv a)))
        done);
    t "fq2 u^2 = -1" (fun () ->
        let u = Fq2.make Fq.zero Fq.one in
        check_bool "u²" true (Fq2.equal (Fq2.sqr u) (Fq2.neg Fq2.one)));
    t "fq2 sqrt" (fun () ->
        for _ = 1 to 30 do
          let a = Fq2.random st in
          let sq = Fq2.sqr a in
          match Fq2.sqrt sq with
          | None -> Alcotest.fail "square must have a root"
          | Some r -> check_bool "root" true Fq2.(equal (sqr r) sq)
        done);
    t "fq6 field laws" (fun () ->
        for _ = 1 to 30 do
          let a = Fq6.random st and b = Fq6.random st and c = Fq6.random st in
          check_bool "assoc" true Fq6.(equal (mul (mul a b) c) (mul a (mul b c)));
          check_bool "distrib" true Fq6.(equal (mul a (add b c)) (add (mul a b) (mul a c)));
          if not (Fq6.is_zero a) then check_bool "inv" true Fq6.(is_one (mul a (inv a)))
        done);
    t "fq6 v^3 = xi" (fun () ->
        let v = Fq6.make Fq2.zero Fq2.one Fq2.zero in
        check_bool "v³" true
          (Fq6.equal (Fq6.mul v (Fq6.mul v v)) (Fq6.of_fq2 Fq2.xi)));
    t "fq6 mul_by_v" (fun () ->
        for _ = 1 to 20 do
          let a = Fq6.random st in
          let v = Fq6.make Fq2.zero Fq2.one Fq2.zero in
          check_bool "shift" true (Fq6.equal (Fq6.mul_by_v a) (Fq6.mul a v))
        done);
    t "fq12 field laws" (fun () ->
        for _ = 1 to 20 do
          let a = Fq12.random st and b = Fq12.random st and c = Fq12.random st in
          check_bool "assoc" true Fq12.(equal (mul (mul a b) c) (mul a (mul b c)));
          check_bool "sqr" true Fq12.(equal (sqr a) (mul a a));
          if not (Fq12.is_zero a) then check_bool "inv" true Fq12.(is_one (mul a (inv a)))
        done);
    t "fq12 w^6 = xi" (fun () ->
        let w = Fq12.make Fq6.zero Fq6.one in
        let w6 = Fq12.sqr (Fq12.mul w (Fq12.sqr w)) in
        let xi12 = Fq12.make (Fq6.of_fq2 Fq2.xi) Fq6.zero in
        check_bool "w⁶ = ξ" true (Fq12.equal w6 xi12));
    t "fq12 twist embeddings" (fun () ->
        (* of_twist_x x = x·w², of_twist_y y = y·w³ *)
        let w = Fq12.make Fq6.zero Fq6.one in
        let x = Fq2.random st and y = Fq2.random st in
        let embed2 v = Fq12.make (Fq6.of_fq2 v) Fq6.zero in
        check_bool "x·w²" true
          (Fq12.equal (Fq12.of_twist_x x) (Fq12.mul (embed2 x) (Fq12.sqr w)));
        check_bool "y·w³" true
          (Fq12.equal (Fq12.of_twist_y y) (Fq12.mul (embed2 y) (Fq12.mul w (Fq12.sqr w)))));
    t "fq12 pow homomorphism" (fun () ->
        let a = Fq12.random st in
        let e1 = B.of_int 12345 and e2 = B.of_int 678 in
        check_bool "a^(e1+e2)" true
          (Fq12.equal (Fq12.pow a (B.add e1 e2)) (Fq12.mul (Fq12.pow a e1) (Fq12.pow a e2)))) ]

(* ---------------- groups ---------------- *)

module Group_suite (G : sig
  type t

  val zero : t
  val generator : t
  val is_zero : t -> bool
  val is_on_curve : t -> bool
  val add : t -> t -> t
  val double : t -> t
  val neg : t -> t
  val equal : t -> t -> bool
  val mul : t -> B.t -> t
  val mul_fr : t -> Fr.t -> t
  val random : Random.State.t -> t
  val name : string
end) =
struct
  let rand () = G.random st

  let tests =
    let t name f = Alcotest.test_case (G.name ^ " " ^ name) `Quick f in
    [ t "generator on curve" (fun () -> check_bool "on curve" true (G.is_on_curve G.generator));
      t "group laws" (fun () ->
          for _ = 1 to 10 do
            let p = rand () and q = rand () and r = rand () in
            check_bool "closure" true (G.is_on_curve (G.add p q));
            check_bool "comm" true (G.equal (G.add p q) (G.add q p));
            check_bool "assoc" true (G.equal (G.add (G.add p q) r) (G.add p (G.add q r)));
            check_bool "identity" true (G.equal (G.add p G.zero) p);
            check_bool "inverse" true (G.is_zero (G.add p (G.neg p)));
            check_bool "double" true (G.equal (G.double p) (G.add p p))
          done);
      t "scalar mul" (fun () ->
          let p = rand () in
          check_bool "3P" true
            (G.equal (G.mul p (B.of_int 3)) (G.add p (G.add p p)));
          check_bool "0P" true (G.is_zero (G.mul p B.zero));
          let a = Fr.random st and b = Fr.random st in
          check_bool "(a+b)P = aP + bP" true
            (G.equal (G.mul_fr p (Fr.add a b)) (G.add (G.mul_fr p a) (G.mul_fr p b))));
      t "order r" (fun () ->
          check_bool "r·G = O" true (G.is_zero (G.mul G.generator Params.r));
          check_bool "G ≠ O" false (G.is_zero G.generator)) ]
end

module G1_suite = Group_suite (struct
  include G1
  let name = "G1"
end)

module G2_suite = Group_suite (struct
  include G2
  let name = "G2"
end)

(* ---------------- MSM ---------------- *)

module Msm_g1 = Zkvc_curve.Msm.Make (G1)

let msm_tests =
  [ Alcotest.test_case "pippenger = naive" `Quick (fun () ->
        List.iter
          (fun n ->
            let points = Array.init n (fun _ -> G1.random st) in
            let scalars = Array.init n (fun _ -> Fr.random st) in
            let fast = Msm_g1.msm points scalars in
            let slow = Msm_g1.msm_naive ~mul:G1.mul_fr points scalars in
            check_bool (Printf.sprintf "n=%d" n) true (G1.equal fast slow))
          [ 0; 1; 2; 3; 7; 33; 100 ]);
    Alcotest.test_case "msm with zero and repeated scalars" `Quick (fun () ->
        let p = G1.random st in
        let points = [| p; p; G1.generator |] in
        let scalars = [| Fr.of_int 5; Fr.of_int 0; Fr.of_int 1 |] in
        let expect = G1.add (G1.mul p (B.of_int 5)) G1.generator in
        check_bool "combo" true (G1.equal (Msm_g1.msm points scalars) expect)) ]

(* ---------------- pairing ---------------- *)

let pairing_tests =
  let e = Pairing.pairing in
  [ Alcotest.test_case "non-degeneracy" `Quick (fun () ->
        let g = e G1.generator G2.generator in
        check_bool "e(G1,G2) ≠ 1" false (Fq12.is_one g);
        check_bool "e(G1,G2)^r = 1" true
          (Fq12.is_one (Fq12.pow g Params.r)));
    Alcotest.test_case "identity slots" `Quick (fun () ->
        check_bool "e(O,Q)=1" true (Fq12.is_one (e G1.zero G2.generator));
        check_bool "e(P,O)=1" true (Fq12.is_one (e G1.generator G2.zero)));
    Alcotest.test_case "bilinearity in G1" `Quick (fun () ->
        let a = B.of_int 117 in
        let lhs = e (G1.mul G1.generator a) G2.generator in
        let rhs = Fq12.pow (e G1.generator G2.generator) a in
        check_bool "e(aP,Q) = e(P,Q)^a" true (Fq12.equal lhs rhs));
    Alcotest.test_case "bilinearity in G2" `Quick (fun () ->
        let b = B.of_int 2026 in
        let lhs = e G1.generator (G2.mul G2.generator b) in
        let rhs = Fq12.pow (e G1.generator G2.generator) b in
        check_bool "e(P,bQ) = e(P,Q)^b" true (Fq12.equal lhs rhs));
    Alcotest.test_case "full bilinearity" `Quick (fun () ->
        let a = Fr.random st and b = Fr.random st in
        let lhs = e (G1.mul_fr G1.generator a) (G2.mul_fr G2.generator b) in
        let rhs = e (G1.mul_fr G1.generator (Fr.mul a b)) G2.generator in
        check_bool "e(aP,bQ) = e(abP,Q)" true (Fq12.equal lhs rhs));
    Alcotest.test_case "multi-pairing cancellation" `Quick (fun () ->
        let p = G1.random st and q = G2.random st in
        let prod = Pairing.multi_pairing [ (p, q); (G1.neg p, q) ] in
        check_bool "e(P,Q)·e(-P,Q) = 1" true (Fq12.is_one prod)) ]

let () =
  Alcotest.run "zkvc_curve"
    [ ("tower", tower_tests);
      ("g1", G1_suite.tests);
      ("g2", G2_suite.tests);
      ("msm", msm_tests);
      ("pairing", pairing_tests) ]
