test/test_nn.ml: Alcotest Array List Printf Random Zkvc Zkvc_nn
