test/test_gkr.ml: Alcotest Array Random Zkvc Zkvc_field Zkvc_gkr
