test/test_poly.ml: Alcotest Array Format List Printf QCheck QCheck_alcotest Random Stdlib Zkvc_field Zkvc_num Zkvc_poly
