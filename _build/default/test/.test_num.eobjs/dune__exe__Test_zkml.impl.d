test/test_zkml.ml: Alcotest Array Format List Printf Random Stdlib Zkvc Zkvc_field Zkvc_nn Zkvc_r1cs Zkvc_zkml
