test/test_num.ml: Alcotest Bytes Char List Option QCheck QCheck_alcotest Random Stdlib String Zkvc_num
