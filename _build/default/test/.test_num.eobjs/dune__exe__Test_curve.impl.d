test/test_curve.ml: Alcotest Array List Printf Random Zkvc_curve Zkvc_field Zkvc_num
