test/test_zkml.mli:
