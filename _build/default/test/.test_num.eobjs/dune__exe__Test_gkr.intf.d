test/test_gkr.mli:
