test/test_spartan.ml: Alcotest Array List Printf Random Zkvc_curve Zkvc_field Zkvc_poly Zkvc_r1cs Zkvc_spartan Zkvc_transcript
