test/test_field.ml: Alcotest List QCheck QCheck_alcotest Random Zkvc_field Zkvc_num
