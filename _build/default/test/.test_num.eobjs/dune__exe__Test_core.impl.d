test/test_core.ml: Alcotest Array Format List Printf QCheck QCheck_alcotest Random Zkvc Zkvc_field Zkvc_r1cs
