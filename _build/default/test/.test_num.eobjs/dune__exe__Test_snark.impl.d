test/test_snark.ml: Alcotest Array List Printf Random Sys Zkvc_curve Zkvc_field Zkvc_groth16 Zkvc_qap Zkvc_r1cs
