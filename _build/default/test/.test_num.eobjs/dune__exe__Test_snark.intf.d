test/test_snark.mli:
