test/test_r1cs.ml: Alcotest Array List QCheck QCheck_alcotest Random Zkvc_field Zkvc_num Zkvc_r1cs
