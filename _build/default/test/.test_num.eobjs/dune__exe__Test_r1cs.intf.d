test/test_r1cs.mli:
