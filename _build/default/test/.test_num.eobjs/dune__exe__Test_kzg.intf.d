test/test_kzg.mli:
