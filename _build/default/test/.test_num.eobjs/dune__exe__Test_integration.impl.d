test/test_integration.ml: Alcotest Array Bytes Char List Printf Random Zkvc Zkvc_curve Zkvc_field Zkvc_groth16 Zkvc_num Zkvc_r1cs Zkvc_spartan Zkvc_transcript
