test/test_hash.ml: Alcotest Bytes Char List Printf QCheck QCheck_alcotest Stdlib String Zkvc_field Zkvc_hash Zkvc_transcript
