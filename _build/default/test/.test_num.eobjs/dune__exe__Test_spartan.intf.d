test/test_spartan.mli:
