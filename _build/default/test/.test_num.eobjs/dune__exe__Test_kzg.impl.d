test/test_kzg.ml: Alcotest Random Zkvc Zkvc_curve Zkvc_field Zkvc_kzg Zkvc_poly Zkvc_r1cs
