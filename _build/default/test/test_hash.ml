module Sha256 = Zkvc_hash.Sha256
module Merkle = Zkvc_hash.Merkle

let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* FIPS 180-4 / NIST CAVP vectors *)
let test_vectors () =
  check_str "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hex_of_string "");
  check_str "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hex_of_string "abc");
  check_str "448-bit"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hex_of_string "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_str "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex_of_string (String.make 1_000_000 'a'))

let test_incremental_matches_oneshot () =
  let data = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  let oneshot = Sha256.to_hex (Sha256.digest_string data) in
  (* feed in pieces of every size from 1 to 130 to cross block boundaries *)
  List.iter
    (fun chunk ->
      let ctx = Sha256.init () in
      let pos = ref 0 in
      while !pos < String.length data do
        let take = Stdlib.min chunk (String.length data - !pos) in
        Sha256.update_string ctx (String.sub data !pos take);
        pos := !pos + take
      done;
      check_str (Printf.sprintf "chunk %d" chunk) oneshot (Sha256.to_hex (Sha256.finalize ctx)))
    [ 1; 7; 31; 63; 64; 65; 127; 128; 130 ]

let prop_incremental =
  QCheck.Test.make ~name:"incremental = oneshot" ~count:100
    (QCheck.pair QCheck.string QCheck.string)
    (fun (a, b) ->
      let ctx = Sha256.init () in
      Sha256.update_string ctx a;
      Sha256.update_string ctx b;
      Bytes.equal (Sha256.finalize ctx) (Sha256.digest_string (a ^ b)))

let leaves n = List.init n (fun i -> Bytes.of_string (Printf.sprintf "leaf-%d" i))

let test_merkle_roundtrip () =
  List.iter
    (fun n ->
      let ls = leaves n in
      let tree = Merkle.of_leaves ls in
      List.iteri
        (fun i leaf ->
          let path = Merkle.path tree i in
          check_bool
            (Printf.sprintf "n=%d leaf=%d verifies" n i)
            true
            (Merkle.verify ~root:(Merkle.root tree) ~leaf ~index:i ~path))
        ls)
    [ 1; 2; 3; 4; 5; 7; 8; 16; 33 ]

let test_merkle_rejects_tamper () =
  let tree = Merkle.of_leaves (leaves 8) in
  let root = Merkle.root tree in
  let path = Merkle.path tree 3 in
  check_bool "wrong leaf" false
    (Merkle.verify ~root ~leaf:(Bytes.of_string "evil") ~index:3 ~path);
  check_bool "wrong index" false
    (Merkle.verify ~root ~leaf:(Bytes.of_string "leaf-3") ~index:4 ~path);
  let bad_root = Bytes.copy root in
  Bytes.set bad_root 0 (Char.chr (Char.code (Bytes.get bad_root 0) lxor 1));
  check_bool "wrong root" false
    (Merkle.verify ~root:bad_root ~leaf:(Bytes.of_string "leaf-3") ~index:3 ~path)

let test_merkle_distinct_roots () =
  let r1 = Merkle.root (Merkle.of_leaves (leaves 4)) in
  let r2 = Merkle.root (Merkle.of_leaves (leaves 5)) in
  check_bool "different leaf sets, different roots" false (Bytes.equal r1 r2)

module T = Zkvc_transcript.Transcript
module Ch = T.Challenge (Zkvc_field.Fr)

let test_transcript_determinism () =
  let run () =
    let t = T.create ~label:"test" in
    T.absorb_string t ~label:"a" "hello";
    Ch.absorb t ~label:"x" (Zkvc_field.Fr.of_int 42);
    Ch.challenge t ~label:"c"
  in
  check_bool "same inputs, same challenge" true (Zkvc_field.Fr.equal (run ()) (run ()))

let test_transcript_sensitivity () =
  let chal absorb_what =
    let t = T.create ~label:"test" in
    T.absorb_string t ~label:"a" absorb_what;
    Ch.challenge t ~label:"c"
  in
  check_bool "different absorptions, different challenges" false
    (Zkvc_field.Fr.equal (chal "hello") (chal "hellp"))

let test_transcript_label_sensitivity () =
  let chal label =
    let t = T.create ~label:"test" in
    T.absorb_string t ~label "payload";
    Ch.challenge t ~label:"c"
  in
  check_bool "labels matter" false (Zkvc_field.Fr.equal (chal "l1") (chal "l2"))

let test_transcript_challenges_differ () =
  let t = T.create ~label:"test" in
  let c1 = Ch.challenge t ~label:"c" in
  let c2 = Ch.challenge t ~label:"c" in
  check_bool "successive challenges differ" false (Zkvc_field.Fr.equal c1 c2)

let test_transcript_clone () =
  let t = T.create ~label:"test" in
  T.absorb_string t ~label:"a" "shared prefix";
  let t' = T.clone t in
  let c = Ch.challenge t ~label:"c" and c' = Ch.challenge t' ~label:"c" in
  check_bool "clone replays identically" true (Zkvc_field.Fr.equal c c')

let () =
  Alcotest.run "zkvc_hash"
    [ ( "sha256",
        [ Alcotest.test_case "NIST vectors" `Quick test_vectors;
          Alcotest.test_case "incremental" `Quick test_incremental_matches_oneshot;
          QCheck_alcotest.to_alcotest prop_incremental ] );
      ( "merkle",
        [ Alcotest.test_case "roundtrip" `Quick test_merkle_roundtrip;
          Alcotest.test_case "tamper rejected" `Quick test_merkle_rejects_tamper;
          Alcotest.test_case "distinct roots" `Quick test_merkle_distinct_roots ] );
      ( "transcript",
        [ Alcotest.test_case "determinism" `Quick test_transcript_determinism;
          Alcotest.test_case "input sensitivity" `Quick test_transcript_sensitivity;
          Alcotest.test_case "label sensitivity" `Quick test_transcript_label_sensitivity;
          Alcotest.test_case "fresh challenges" `Quick test_transcript_challenges_differ;
          Alcotest.test_case "clone" `Quick test_transcript_clone ] ) ]
