module T = Zkvc_nn.Tensor
module Q = Zkvc_nn.Quantize
module Tm = Zkvc_nn.Token_mixer
module Tf = Zkvc_nn.Transformer
module Models = Zkvc_nn.Models
module Nl = Zkvc.Nonlinear

let st = Random.State.make [| 2025; 7 |]
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let cfg = Nl.default_config

let close ?(eps = 1e-9) a b = abs_float (a -. b) < eps

let tensor_tests =
  [ Alcotest.test_case "matmul" `Quick (fun () ->
        let a = T.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
        let b = T.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
        let c = T.matmul a b in
        check_bool "c00" true (close (T.get c 0 0) 19.);
        check_bool "c11" true (close (T.get c 1 1) 50.));
    Alcotest.test_case "transpose involution" `Quick (fun () ->
        let a = T.random_gaussian st 5 7 ~std:1. in
        check_bool "tt = id" true (T.frobenius_diff a (T.transpose (T.transpose a)) < 1e-12));
    Alcotest.test_case "softmax rows normalised" `Quick (fun () ->
        let a = T.random_gaussian st 4 9 ~std:2. in
        let s = T.softmax_rows a in
        for i = 0 to 3 do
          let sum = ref 0. in
          for j = 0 to 8 do
            let v = T.get s i j in
            check_bool "prob in (0,1)" true (v > 0. && v < 1.);
            sum := !sum +. v
          done;
          check_bool "row sums to 1" true (close ~eps:1e-9 !sum 1.)
        done);
    Alcotest.test_case "layernorm stats" `Quick (fun () ->
        let a = T.random_gaussian st 3 64 ~std:3. in
        let gamma = Array.make 64 1. and beta = Array.make 64 0. in
        let l = T.layernorm a ~gamma ~beta in
        for i = 0 to 2 do
          let mean = ref 0. and var = ref 0. in
          for j = 0 to 63 do
            mean := !mean +. T.get l i j
          done;
          let mean = !mean /. 64. in
          for j = 0 to 63 do
            let d = T.get l i j -. mean in
            var := !var +. (d *. d)
          done;
          check_bool "mean ~0" true (abs_float mean < 1e-8);
          check_bool "var ~1" true (abs_float ((!var /. 64.) -. 1.) < 1e-2)
        done);
    Alcotest.test_case "pool_rows" `Quick (fun () ->
        let a = T.of_arrays [| [| 1. |]; [| 3. |]; [| 5. |]; [| 7. |] |] in
        let p = T.pool_rows a 2 in
        check_bool "avg1" true (close (T.get p 0 0) 2.);
        check_bool "avg2" true (close (T.get p 1 0) 6.)) ]

let quantize_tests =
  [ Alcotest.test_case "roundtrip error bounded" `Quick (fun () ->
        let a = T.random_gaussian st 8 8 ~std:1. in
        let q = Q.quantize cfg a in
        let a' = Q.dequantize cfg q in
        let s = float_of_int (Nl.scale cfg) in
        check_bool "max err < 1/S" true (T.frobenius_diff a a' < 8. *. 8. /. s));
    Alcotest.test_case "quantized matmul tracks float" `Quick (fun () ->
        let a = T.random_gaussian st 6 10 ~std:1. in
        let b = T.random_gaussian st 10 6 ~std:1. in
        let qc = Q.matmul_rescale cfg (Q.quantize cfg a) (Q.quantize cfg b) in
        let c = T.matmul a b in
        let diff = T.frobenius_diff c (Q.dequantize cfg qc) in
        check_bool "close" true (diff < 0.5));
    Alcotest.test_case "isqrt" `Quick (fun () ->
        List.iter
          (fun v ->
            let r = Q.isqrt v in
            check_bool (Printf.sprintf "isqrt %d" v) true (r * r <= v && (r + 1) * (r + 1) > v))
          [ 0; 1; 2; 3; 4; 15; 16; 17; 1000000; 999999999999 ]);
    Alcotest.test_case "fdiv is floor division" `Quick (fun () ->
        check_int "7/2" 3 (Q.fdiv 7 2);
        check_int "-7/2" (-4) (Q.fdiv (-7) 2);
        check_int "-8/2" (-4) (Q.fdiv (-8) 2));
    Alcotest.test_case "quantized softmax rows normalised" `Quick (fun () ->
        let m = Q.init 3 6 (fun _ _ -> Random.State.int st 1024 - 512) in
        let s = Q.softmax_rows cfg m in
        for i = 0 to 2 do
          let total = ref 0 in
          for j = 0 to 5 do
            total := !total + Q.get s i j
          done;
          check_bool "sums to ~S" true (abs (!total - Nl.scale cfg) < 16)
        done);
    Alcotest.test_case "quantized layernorm tracks float" `Quick (fun () ->
        let a = T.random_gaussian st 2 32 ~std:2. in
        let ql = Q.layernorm cfg (Q.quantize cfg a) in
        let gamma = Array.make 32 1. and beta = Array.make 32 0. in
        let fl = T.layernorm a ~gamma ~beta in
        let diff = T.frobenius_diff fl (Q.dequantize cfg ql) in
        check_bool "close" true (diff < 1.0)) ]

let mixer_tests =
  let tokens = 8 and dim = 16 and heads = 4 in
  let x = T.random_gaussian st tokens dim ~std:1. in
  let test kind =
    Alcotest.test_case (Tm.kind_name kind) `Quick (fun () ->
        let p = Tm.create st ~kind ~tokens ~dim ~heads in
        let y = Tm.forward p x in
        check_int "rows preserved" tokens (T.rows y);
        check_int "cols preserved" dim (T.cols y);
        (* quantized forward stays near the float forward *)
        let qp = Tm.quantize_params cfg p in
        let qy = Tm.forward_quantized cfg qp (Q.quantize cfg x) in
        let diff = T.frobenius_diff y (Q.dequantize cfg qy) in
        check_bool
          (Printf.sprintf "quantized close (%.3f)" diff)
          true
          (diff < 4.0))
  in
  List.map test [ Tm.Softmax_attn; Tm.Scaling_attn; Tm.Pooling; Tm.Linear_mix ]

let model_tests =
  [ Alcotest.test_case "paper architectures build and run (shrunk)" `Quick (fun () ->
        List.iter
          (fun arch ->
            let arch = Models.shrink arch ~factor:8 in
            let m = Models.build st arch Models.Zkvc_hybrid in
            let patches = T.random_gaussian st arch.Models.tokens arch.Models.patch_dim ~std:1. in
            let logits = Tf.forward m patches in
            check_int (arch.Models.arch_name ^ " classes") arch.Models.num_classes
              (T.cols logits))
          Models.all_archs);
    Alcotest.test_case "block counts match the paper configs" `Quick (fun () ->
        let m = Models.build st Models.vit_cifar10 Models.Soft_approx in
        check_int "cifar blocks" 7 (Tf.num_blocks m);
        let m = Models.build st Models.vit_tiny_imagenet Models.Soft_approx in
        check_int "tiny blocks" 9 (Tf.num_blocks m);
        let m = Models.build st Models.vit_imagenet Models.Soft_approx in
        check_int "imagenet blocks" 12 (Tf.num_blocks m);
        let m = Models.build st Models.bert_glue Models.Soft_approx in
        check_int "bert blocks" 4 (Tf.num_blocks m));
    Alcotest.test_case "variants select expected mixers" `Quick (fun () ->
        let kinds v = Tf.mixer_kinds (Models.build st (Models.shrink Models.vit_cifar10 ~factor:4) v) in
        check_bool "softapprox all softmax" true
          (List.for_all (( = ) Tm.Softmax_attn) (kinds Models.Soft_approx));
        check_bool "softfree-p all pooling" true
          (List.for_all (( = ) Tm.Pooling) (kinds Models.Soft_free_p));
        let hybrid = kinds Models.Zkvc_hybrid in
        check_bool "hybrid mixes" true
          (List.exists (( = ) Tm.Softmax_attn) hybrid
           && List.exists (fun k -> k <> Tm.Softmax_attn) hybrid));
    Alcotest.test_case "quantization agreement is high on a small model" `Quick (fun () ->
        let arch = Models.shrink Models.vit_cifar10 ~factor:8 in
        let m = Models.build st arch Models.Soft_free_p in
        let qm = Tf.quantize cfg m in
        let agreement = Tf.quantization_agreement st m qm ~samples:20 in
        check_bool (Printf.sprintf "agreement %.2f >= 0.5" agreement) true (agreement >= 0.5)) ]

let () =
  Alcotest.run "zkvc_nn"
    [ ("tensor", tensor_tests);
      ("quantize", quantize_tests);
      ("mixer", mixer_tests);
      ("models", model_tests) ]
